package coign

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// graph-cutting algorithm (lift-to-front vs BFS augmenting paths), the
// exponential message-size bucketing (vs exact byte accounting), the
// sampled network profile (vs oracle means), and the multiway-cut
// extension.

import (
	"context"
	"fmt"
	"os"
	"testing"

	"repro/internal/experiments"
	"repro/internal/graph"
)

// BenchmarkAblationMinCutLiftToFront times the paper's lift-to-front
// (relabel-to-front push-relabel) algorithm on synthetic ICC graphs.
func BenchmarkAblationMinCutLiftToFront(b *testing.B) {
	for _, n := range []int{500, 2000, 8000} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g := experiments.SyntheticCutInstance(n, 7)
				b.StartTimer()
				if _, err := g.MinCut(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMinCutEdmondsKarp times the BFS augmenting-path
// baseline on the same instances.
func BenchmarkAblationMinCutEdmondsKarp(b *testing.B) {
	for _, n := range []int{500, 2000, 8000} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g := experiments.SyntheticCutInstance(n, 7)
				b.StartTimer()
				if _, err := g.MinCutEdmondsKarp(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMinCutOnRealGraph cross-checks both algorithms on a
// real scenario's concrete graph and reports their wall times.
func BenchmarkAblationMinCutOnRealGraph(b *testing.B) {
	var cmp *experiments.MinCutComparison
	for i := 0; i < b.N; i++ {
		var err error
		cmp, err = experiments.CompareMinCut("o_oldbth")
		if err != nil {
			b.Fatal(err)
		}
		if !cmp.WeightsAgree {
			b.Fatalf("algorithms disagree: %v vs %v", cmp.WeightLTF, cmp.WeightEK)
		}
	}
	printOnce("ablation-mincut", func() {
		fmt.Fprintf(os.Stderr, "\nMin-cut ablation (%s, %d nodes, %d edges): lift-to-front %v, edmonds-karp %v\n",
			cmp.Scenario, cmp.Nodes, cmp.Edges, cmp.LiftToFront, cmp.EdmondsKarp)
	})
	b.ReportMetric(float64(cmp.Nodes), "nodes")
}

// BenchmarkAblationBucketing compares exponential-bucket pricing against
// exact byte accounting (storage-for-accuracy trade of paper §3.3).
func BenchmarkAblationBucketing(b *testing.B) {
	var cmp *experiments.BucketingComparison
	for i := 0; i < b.N; i++ {
		var err error
		cmp, err = experiments.CompareBucketing("o_oldwp7")
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("ablation-bucketing", func() {
		fmt.Fprintf(os.Stderr, "\nBucketing ablation (%s): bucketed=%v exact=%v error=%.1f%% same-placement=%v\n",
			cmp.Scenario, cmp.BucketedComm, cmp.ExactComm, cmp.RelativeError*100, cmp.SamePlacement)
	})
	b.ReportMetric(cmp.RelativeError*100, "pricing-error-%")
}

// BenchmarkAblationNetworkProfile compares the statistically sampled
// network profile against oracle model means.
func BenchmarkAblationNetworkProfile(b *testing.B) {
	var cmp *experiments.NetProfileComparison
	for i := 0; i < b.N; i++ {
		var err error
		cmp, err = experiments.CompareNetworkProfile("o_oldtb3", 25)
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("ablation-netprofile", func() {
		fmt.Fprintf(os.Stderr, "\nNetwork-profile ablation (%s): sampled=%v oracle=%v error=%.2f%% same-placement=%v\n",
			cmp.Scenario, cmp.SampledComm, cmp.OracleComm, cmp.RelativeError*100, cmp.SamePlacement)
	})
	b.ReportMetric(cmp.RelativeError*100, "sampling-error-%")
}

// BenchmarkAblationMultiwayCut times the isolation-heuristic multiway cut
// (the paper's future-work extension) on synthetic three-terminal graphs.
func BenchmarkAblationMultiwayCut(b *testing.B) {
	for _, n := range []int{500, 2000} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g := experiments.SyntheticCutInstance(n, 11)
				g.AddEdge("middle", "n00001", 3)
				b.StartTimer()
				_, _, err := g.MultiwayCut([]graph.MultiwayTerminal{
					{Machine: "client", Pinned: []string{"client"}},
					{Machine: "middle", Pinned: []string{"middle"}},
					{Machine: "server", Pinned: []string{"server"}},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCaching measures per-interface caching (semi-custom
// marshaling) on the Coign distribution of the 208-page text document:
// property queries repeat across paragraphs, so the proxy-side cache
// answers most of them locally.
func BenchmarkAblationCaching(b *testing.B) {
	var cmp *experiments.CachingComparison
	for i := 0; i < b.N; i++ {
		var err error
		cmp, err = experiments.CompareCaching("o_oldwp7")
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("ablation-caching", func() {
		fmt.Fprintf(os.Stderr, "\nCaching ablation (%s): plain=%v cached=%v hits=%d savings=%.0f%%\n",
			cmp.Scenario, cmp.Plain, cmp.Cached, cmp.CacheHits, cmp.Savings*100)
	})
	b.ReportMetric(float64(cmp.CacheHits), "cache-hits")
	b.ReportMetric(cmp.Savings*100, "extra-savings-%")
}

// BenchmarkAblationThreeTier times the full three-machine experiment: the
// multiway isolation-heuristic cut plus the executed distribution.
func BenchmarkAblationThreeTier(b *testing.B) {
	var res *experiments.ThreeTierResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.ThreeTier(context.Background())
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("ablation-threetier", func() {
		fmt.Fprintf(os.Stderr, "\nThree-tier: per-machine=%v comm=%v (two-way %v)\n",
			res.PerMachine, res.Comm, res.TwoWayComm)
	})
}

// BenchmarkAblationWhatIfReplay sweeps random distributions over one
// scenario's event trace, confirming empirically that the Coign cut is the
// communication floor (paper §3.3's trace-driven simulation put to work).
func BenchmarkAblationWhatIfReplay(b *testing.B) {
	var res *experiments.WhatIfResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.WhatIf(context.Background(), "o_oldwp7", 40, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("ablation-whatif", func() {
		fmt.Fprintf(os.Stderr, "\nWhat-if replay (%s): coign=%v best-random=%v worst-random=%v beaten=%d/%d\n",
			res.Scenario, res.CoignComm, res.BestRandom, res.WorstRandom, res.Beaten, res.Samples)
	})
	b.ReportMetric(float64(res.Beaten), "random-assignments-beating-coign")
}
