package coign

// Top-level regression gate: `go test .` asserts the headline results of
// the reproduction without running the full benchmark harness.

import (
	"context"
	"testing"

	"repro/internal/experiments"
)

func TestHeadlineFigure5(t *testing.T) {
	t.Parallel()
	row, err := experiments.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if row.ServerInstances != 2 {
		t.Errorf("Octarine text: %d server components, want 2 (paper Figure 5)", row.ServerInstances)
	}
	if row.Savings < 0.8 {
		t.Errorf("Octarine text savings = %.2f", row.Savings)
	}
}

func TestHeadlineFigure4(t *testing.T) {
	t.Parallel()
	row, err := experiments.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if row.ServerInstances != 8 {
		t.Errorf("PhotoDraw: %d server components, want 8 (paper Figure 4)", row.ServerInstances)
	}
	if row.TotalInstances < 280 || row.TotalInstances > 310 {
		t.Errorf("PhotoDraw components = %d, want ~295", row.TotalInstances)
	}
}

func TestHeadlineNeverWorseAndPredictionEnvelope(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("runs all 23 scenarios")
	}
	rows, err := experiments.Tables4And5(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 23 {
		t.Fatalf("rows = %d, want 23", len(rows))
	}
	for _, r := range rows {
		if float64(r.CoignComm) > float64(r.DefaultComm)*1.02 {
			t.Errorf("%s: Coign (%v) worse than default (%v)", r.Scenario, r.CoignComm, r.DefaultComm)
		}
		e := r.PredictionErr
		if e < 0 {
			e = -e
		}
		if e > 0.08 {
			t.Errorf("%s: prediction error %.1f%% outside the paper's ±8%%", r.Scenario, e*100)
		}
		if r.Violations != 0 {
			t.Errorf("%s: %d non-remotable crossings", r.Scenario, r.Violations)
		}
	}
}
