// Package com implements the synthetic component object model: classes,
// instances, first-class interface handles, and an activation environment
// with interception hooks.
//
// It reproduces the properties of Microsoft COM that Coign depends on:
// components are packaged, instantiated, and connected in binary form; all
// first-class communication passes through interfaces; and a runtime layer
// can transparently interpose on instantiation requests and interface
// calls without application cooperation.
package com

import (
	"fmt"
	"sort"

	"repro/internal/idl"
)

// CLSID identifies a component class.
type CLSID string

// Well-known API names used by the profile analysis engine's static
// analysis to derive location constraints (paper §2: components that access
// a set of known GUI or storage APIs are placed on the client or server
// respectively).
const (
	APIGdiPaint      = "gdi32.BitBlt"
	APIUserWindow    = "user32.CreateWindow"
	APIUserInput     = "user32.GetMessage"
	APIFileRead      = "kernel32.ReadFile"
	APIFileWrite     = "kernel32.WriteFile"
	APIFileOpen      = "kernel32.CreateFile"
	APIODBCConnect   = "odbc32.SQLConnect"
	APIODBCExec      = "odbc32.SQLExecDirect"
	APISharedMemory  = "kernel32.MapViewOfFile"
	APIRegistryRead  = "advapi32.RegQueryValue"
	APIClipboard     = "user32.OpenClipboard"
	APIPrintSpool    = "winspool.StartDoc"
	APIMemoryAlloc   = "kernel32.HeapAlloc"
	APINetworkSocket = "ws2_32.connect"
)

// Object is a component implementation: a dispatcher for interface method
// calls. Implementations receive a Call describing the invocation and
// return the out-parameter list.
type Object interface {
	Invoke(call *Call) ([]idl.Value, error)
}

// ObjectFunc adapts a plain function to the Object interface.
type ObjectFunc func(call *Call) ([]idl.Value, error)

// Invoke calls f.
func (f ObjectFunc) Invoke(call *Call) ([]idl.Value, error) { return f(call) }

// StateDesc declares the mutable state of a component class and which
// methods touch it — the state-mutability metadata the binary rewriter
// embeds as `.state$` sections and the purity analysis recovers by
// scanning the image. Bytes is the size of the instance state block;
// zero declares the class stateless. Reads and Writes list method names
// (across all implemented interfaces) that read or mutate the state.
// Like activation records, the declaration is over-approximate on the
// write side: a listed writer may never mutate at run time, but an
// unlisted one must never (the purity verifier reports an observed
// mutation through a method not declared as a writer as a static miss).
type StateDesc struct {
	Bytes  int      // size of the instance state block; 0 = stateless
	Reads  []string // methods that only read the state
	Writes []string // methods that may mutate the state
}

// ReadsMethod reports whether the descriptor declares method a reader.
func (s *StateDesc) ReadsMethod(m string) bool {
	for _, r := range s.Reads {
		if r == m {
			return true
		}
	}
	return false
}

// WritesMethod reports whether the descriptor declares method a writer.
func (s *StateDesc) WritesMethod(m string) bool {
	for _, w := range s.Writes {
		if w == m {
			return true
		}
	}
	return false
}

// Class describes a component class: its identity, the interfaces it
// implements, the system APIs its binary imports (input to constraint
// inference), and a constructor.
type Class struct {
	ID         CLSID
	Name       string
	Interfaces []string // IIDs implemented by instances of the class
	APIs       []string // imported system APIs, for static analysis
	CodeBytes  int      // granularity metadata: size of the component binary
	New        func() Object

	// Home is the machine the developer's default distribution assigns the
	// class to (the application "as shipped"). Zero value is the client.
	Home Machine
	// Infrastructure marks environment components with a fixed location
	// that Coign cannot move — the file server's storage, the ODBC
	// database engine behind its proprietary protocol. Instances always
	// run at Home and their classifications are pinned there during
	// analysis.
	Infrastructure bool

	// Activations lists every CLSID this class's code can pass to an
	// instantiation request — the static activation-site metadata the
	// binary rewriter embeds as relocation records and the reachability
	// analysis recovers by scanning the image. The list is
	// over-approximate: a listed CLSID may never be activated at run time,
	// but an unlisted one must never be (the reachability verifier reports
	// such an observation as a static miss).
	Activations []CLSID
	// DynamicActivation marks classes that compute CLSIDs at run time
	// (generic factories whose activation targets are data, not code).
	// The reachability analysis attributes an activation performed by such
	// a class to the innermost non-factory frame of the activation call
	// path, and grants the factory the interface types its own method
	// signatures can return.
	DynamicActivation bool

	// State declares the class's mutable state and per-method read/write
	// behaviour. Nil means the class ships no state metadata; the purity
	// analysis then treats every method as conservatively mutating.
	State *StateDesc
}

// Implements reports whether the class implements the interface.
func (c *Class) Implements(iid string) bool {
	for _, i := range c.Interfaces {
		if i == iid {
			return true
		}
	}
	return false
}

// UsesAPI reports whether the class's binary imports the named API.
func (c *Class) UsesAPI(api string) bool {
	for _, a := range c.APIs {
		if a == api {
			return true
		}
	}
	return false
}

// ClassRegistry maps CLSIDs to classes, the analog of the COM class table
// consulted by CoCreateInstance.
type ClassRegistry struct {
	byID   map[CLSID]*Class
	byName map[string]*Class
}

// NewClassRegistry returns an empty class registry.
func NewClassRegistry() *ClassRegistry {
	return &ClassRegistry{byID: make(map[CLSID]*Class), byName: make(map[string]*Class)}
}

// Register adds a class; duplicate CLSIDs or names are a build error and
// panic. Names must be unique because profiles and classifications refer
// to classes by name.
func (r *ClassRegistry) Register(c *Class) {
	if c.ID == "" {
		panic("com: class with empty CLSID")
	}
	if c.Name == "" {
		panic(fmt.Sprintf("com: class %s has no name", c.ID))
	}
	if _, dup := r.byID[c.ID]; dup {
		panic(fmt.Sprintf("com: duplicate class %s", c.ID))
	}
	if _, dup := r.byName[c.Name]; dup {
		panic(fmt.Sprintf("com: duplicate class name %s", c.Name))
	}
	if c.New == nil {
		panic(fmt.Sprintf("com: class %s has no constructor", c.ID))
	}
	r.byID[c.ID] = c
	r.byName[c.Name] = c
}

// LookupName returns the class with the given name, or nil.
func (r *ClassRegistry) LookupName(name string) *Class { return r.byName[name] }

// Lookup returns the class for id, or nil.
func (r *ClassRegistry) Lookup(id CLSID) *Class { return r.byID[id] }

// Len returns the number of registered classes.
func (r *ClassRegistry) Len() int { return len(r.byID) }

// Classes returns all classes sorted by CLSID for deterministic iteration.
func (r *ClassRegistry) Classes() []*Class {
	out := make([]*Class, 0, len(r.byID))
	for _, c := range r.byID {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// App bundles everything that constitutes an application built from
// components: its class and interface registries, the import table of its
// binary, and an entry point that drives a named usage scenario.
type App struct {
	Name       string
	Classes    *ClassRegistry
	Interfaces *idl.Registry
	Imports    []string // DLL import table of the application binary
	// MainActivations lists the CLSIDs the main program itself can pass to
	// an instantiation request — the activation roots of the reachability
	// analysis.
	MainActivations []CLSID
	// Main drives the application through the named scenario. seed makes
	// input-driven behaviour reproducible.
	Main func(env *Env, scenario string, seed int64) error
}
