package com_test

import (
	"fmt"

	"repro/internal/com"
	"repro/internal/idl"
)

// A minimal component application: one class, one interface, one call —
// everything the Coign runtime needs to interpose on.
func Example() {
	ifaces := idl.NewRegistry()
	ifaces.Register(&idl.InterfaceDesc{
		IID: "IGreeter", Remotable: true,
		Methods: []idl.MethodDesc{{
			Name:   "Greet",
			Params: []idl.ParamDesc{{Name: "who", Dir: idl.In, Type: idl.TString}},
			Result: idl.TString,
		}},
	})
	classes := com.NewClassRegistry()
	classes.Register(&com.Class{
		ID: "CLSID_Greeter", Name: "Greeter", Interfaces: []string{"IGreeter"},
		New: func() com.Object {
			return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
				return []idl.Value{idl.String("hello, " + c.Args[0].AsString())}, nil
			})
		},
	})
	app := &com.App{Name: "demo", Classes: classes, Interfaces: ifaces}

	env := com.NewEnv(app)
	inst, _ := env.CreateInstance(nil, "CLSID_Greeter")
	itf, _ := env.Query(inst, "IGreeter")
	out, _ := env.Call(nil, itf, "Greet", idl.String("coign"))
	fmt.Println(out[0].AsString())
	// Output:
	// hello, coign
}

// Interception hooks are what the runtime executive attaches to: every
// instantiation and every interface call can be observed and redirected.
func ExampleEnv_SetHooks() {
	ifaces := idl.NewRegistry()
	ifaces.Register(&idl.InterfaceDesc{IID: "IWork", Remotable: true,
		Methods: []idl.MethodDesc{{Name: "Do", Result: idl.TInt32}}})
	classes := com.NewClassRegistry()
	classes.Register(&com.Class{
		ID: "CLSID_W", Name: "W", Interfaces: []string{"IWork"},
		New: func() com.Object {
			return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
				return []idl.Value{idl.Int32(42)}, nil
			})
		},
	})
	env := com.NewEnv(&com.App{Name: "d", Classes: classes, Interfaces: ifaces})
	env.SetHooks(com.Hooks{
		CreateInstance: func(creator *com.Instance, class *com.Class,
			next func(com.Machine) *com.Instance) (*com.Instance, error) {
			fmt.Println("trapped instantiation of", class.Name)
			return next(com.Server), nil // relocate to the server
		},
		CallInterface: func(caller *com.Instance, target *com.Interface, method string,
			args []idl.Value, next func() ([]idl.Value, error)) ([]idl.Value, error) {
			fmt.Println("trapped call", target.IID()+"."+method)
			return next()
		},
	})
	inst, _ := env.CreateInstance(nil, "CLSID_W")
	itf, _ := env.Query(inst, "IWork")
	env.Call(nil, itf, "Do")
	fmt.Println("placed on", inst.Machine)
	// Output:
	// trapped instantiation of W
	// trapped call IWork.Do
	// placed on server
}
