package com

import (
	"fmt"
	"time"

	"repro/internal/idl"
)

// Machine identifies a placement target. The two-way cut uses Client and
// Server; the multiway extension adds Middle.
type Machine int

// Placement targets.
const (
	Client Machine = 0
	Server Machine = 1
	Middle Machine = 2
)

// String names the machine.
func (m Machine) String() string {
	switch m {
	case Client:
		return "client"
	case Server:
		return "server"
	case Middle:
		return "middle"
	default:
		return fmt.Sprintf("machine%d", int(m))
	}
}

// Instance is one live component instance.
type Instance struct {
	ID             uint64
	Class          *Class
	Object         Object
	Machine        Machine
	Classification string // assigned by the instance classifier, "" before
	Released       bool
	env            *Env
}

// Env returns the environment that owns the instance.
func (in *Instance) Env() *Env { return in.env }

// Interface is a first-class handle to one interface of one instance. All
// inter-component communication flows through Interface handles, which is
// what lets the runtime interpose transparently.
type Interface struct {
	iid     string
	inst    *Instance
	wrapped bool // true once the RTE has wrapped the handle
}

// IID implements idl.InterfacePtr.
func (i *Interface) IID() string { return i.iid }

// InstanceID implements idl.InterfacePtr.
func (i *Interface) InstanceID() uint64 { return i.inst.ID }

// Instance returns the owning instance. The runtime executive uses this to
// track interface ownership.
func (i *Interface) Instance() *Instance { return i.inst }

// Wrapped reports whether the handle has passed through runtime wrapping.
func (i *Interface) Wrapped() bool { return i.wrapped }

// MarkWrapped flags the handle as runtime-wrapped and returns it; used by
// the runtime executive's interface-wrapping hook.
func (i *Interface) MarkWrapped() *Interface {
	i.wrapped = true
	return i
}

// Call describes one in-flight interface invocation, passed to the target
// object's dispatcher.
type Call struct {
	Self   *Instance
	IID    string
	Method string
	Args   []idl.Value
	Env    *Env
}

// Invoke makes an outgoing call from the currently executing component to
// target. It routes through the environment so the runtime sees the call.
func (c *Call) Invoke(target *Interface, method string, args ...idl.Value) ([]idl.Value, error) {
	return c.Env.Call(c.Self, target, method, args...)
}

// Create instantiates a component on behalf of the currently executing
// component.
func (c *Call) Create(clsid CLSID) (*Instance, error) {
	return c.Env.CreateInstance(c.Self, clsid)
}

// Compute accrues d of CPU time on the machine where the current component
// executes. Behaviours use it to model their computational cost on the
// virtual clock.
func (c *Call) Compute(d time.Duration) {
	c.Env.Compute(c.Self, d)
}

// Mutate records that the currently executing method mutates its
// instance's state. Behaviours call it from state-writing methods so the
// runtime can observe mutations and cross-check static purity claims.
func (c *Call) Mutate() {
	c.Env.StateWrite(c.Self, c.Method)
}

// Hooks are the interception points the Coign runtime installs. A nil hook
// field means the default (un-instrumented) behaviour.
type Hooks struct {
	// CreateInstance intercepts instantiation requests. It must call next
	// to perform the actual activation (possibly after deciding placement).
	CreateInstance func(creator *Instance, class *Class, next func(Machine) *Instance) (*Instance, error)
	// CallInterface intercepts interface invocations. It must call next to
	// execute the target method.
	CallInterface func(caller *Instance, target *Interface, method string,
		args []idl.Value, next func() ([]idl.Value, error)) ([]idl.Value, error)
	// WrapInterface intercepts the creation of interface handles; the
	// default returns the handle unchanged.
	WrapInterface func(itf *Interface) *Interface
	// ReleaseInstance observes instance destruction.
	ReleaseInstance func(inst *Instance)
	// StateWrite observes a state mutation performed by the named method
	// of inst. The default discards the observation.
	StateWrite func(inst *Instance, method string)
}

// ComputeClock receives compute-time accruals. The distributed execution
// engine implements it with a virtual clock; the default discards them.
type ComputeClock interface {
	Compute(machine Machine, d time.Duration)
}

// Env is the component activation environment: the synthetic COM runtime.
// It owns live instances, dispatches interface calls, and exposes the
// interception hooks the Coign runtime attaches to.
type Env struct {
	app       *App
	hooks     Hooks
	clock     ComputeClock
	nextID    uint64
	instances map[uint64]*Instance
	liveCount int
	strict    bool // validate call parameters against IDL metadata
}

// NewEnv returns an environment for app with no instrumentation installed.
func NewEnv(app *App) *Env {
	return &Env{
		app:       app,
		instances: make(map[uint64]*Instance),
		strict:    true,
	}
}

// App returns the application this environment hosts.
func (e *Env) App() *App { return e.app }

// SetHooks installs runtime interception hooks. Passing the zero Hooks
// removes instrumentation.
func (e *Env) SetHooks(h Hooks) { e.hooks = h }

// Hooks returns the currently installed hooks.
func (e *Env) Hooks() Hooks { return e.hooks }

// SetClock installs a compute clock. A nil clock discards compute time.
func (e *Env) SetClock(c ComputeClock) { e.clock = c }

// SetStrict controls IDL validation of call parameters. Strict mode is the
// default; benchmarks may disable it.
func (e *Env) SetStrict(on bool) { e.strict = on }

// LiveInstances returns the number of live (unreleased) instances.
func (e *Env) LiveInstances() int { return e.liveCount }

// TotalInstances returns the number of instances ever created.
func (e *Env) TotalInstances() int { return int(e.nextID) }

// Instance returns the instance with the given id, or nil.
func (e *Env) Instance(id uint64) *Instance { return e.instances[id] }

// Instances returns all instances ever created, in creation order.
func (e *Env) Instances() []*Instance {
	out := make([]*Instance, 0, len(e.instances))
	for id := uint64(1); id <= e.nextID; id++ {
		if in, ok := e.instances[id]; ok {
			out = append(out, in)
		}
	}
	return out
}

// CreateInstance activates a new instance of clsid on behalf of creator
// (nil when the application's main program is the creator). The request is
// routed through the CreateInstance hook when installed, mirroring the
// RTE's trap on CoCreateInstance.
func (e *Env) CreateInstance(creator *Instance, clsid CLSID) (*Instance, error) {
	class := e.app.Classes.Lookup(clsid)
	if class == nil {
		return nil, fmt.Errorf("com: unknown class %s", clsid)
	}
	activate := func(m Machine) *Instance {
		e.nextID++
		in := &Instance{
			ID:      e.nextID,
			Class:   class,
			Object:  class.New(),
			Machine: m,
			env:     e,
		}
		e.instances[in.ID] = in
		e.liveCount++
		return in
	}
	if e.hooks.CreateInstance != nil {
		return e.hooks.CreateInstance(creator, class, activate)
	}
	// Default placement: components are created where their creator runs;
	// the original, non-distributed application runs entirely on the
	// client.
	m := Client
	if creator != nil {
		m = creator.Machine
	}
	return activate(m), nil
}

// Query returns an interface handle on inst for iid, routed through the
// WrapInterface hook. It fails if the class does not implement iid.
func (e *Env) Query(inst *Instance, iid string) (*Interface, error) {
	if inst == nil {
		return nil, fmt.Errorf("com: QueryInterface on nil instance")
	}
	if inst.Released {
		return nil, fmt.Errorf("com: QueryInterface on released instance %d (%s)", inst.ID, inst.Class.Name)
	}
	if !inst.Class.Implements(iid) {
		return nil, fmt.Errorf("com: class %s does not implement %s", inst.Class.Name, iid)
	}
	itf := &Interface{iid: iid, inst: inst}
	if e.hooks.WrapInterface != nil {
		return e.hooks.WrapInterface(itf), nil
	}
	return itf, nil
}

// MustQuery is Query for statically known-good requests; it panics on
// failure and exists for concise application code.
func (e *Env) MustQuery(inst *Instance, iid string) *Interface {
	itf, err := e.Query(inst, iid)
	if err != nil {
		panic(err)
	}
	return itf
}

// Call invokes method on the target interface on behalf of caller (nil for
// the main program). The invocation routes through the CallInterface hook
// when installed.
func (e *Env) Call(caller *Instance, target *Interface, method string, args ...idl.Value) ([]idl.Value, error) {
	if target == nil {
		return nil, fmt.Errorf("com: call through nil interface")
	}
	if target.inst.Released {
		return nil, fmt.Errorf("com: call to released instance %d (%s)", target.inst.ID, target.inst.Class.Name)
	}
	var mdesc *idl.MethodDesc
	if idesc := e.app.Interfaces.Lookup(target.iid); idesc != nil {
		mdesc = idesc.Method(method)
	}
	if e.strict {
		if mdesc == nil {
			return nil, fmt.Errorf("com: no metadata for %s.%s", target.iid, method)
		}
		ins := mdesc.InParams()
		if len(args) != len(ins) {
			return nil, fmt.Errorf("com: %s.%s called with %d args, want %d",
				target.iid, method, len(args), len(ins))
		}
		for i := range args {
			if args[i].Type == nil || args[i].Type.Kind != ins[i].Type.Kind {
				return nil, fmt.Errorf("com: %s.%s arg %d kind mismatch", target.iid, method, i)
			}
			if err := args[i].Validate(); err != nil {
				return nil, fmt.Errorf("com: %s.%s arg %d: %w", target.iid, method, i, err)
			}
		}
	}
	invoke := func() ([]idl.Value, error) {
		return target.inst.Object.Invoke(&Call{
			Self:   target.inst,
			IID:    target.iid,
			Method: method,
			Args:   args,
			Env:    e,
		})
	}
	if e.hooks.CallInterface != nil {
		return e.hooks.CallInterface(caller, target, method, args, invoke)
	}
	return invoke()
}

// Release destroys an instance. Further calls through its interfaces fail.
func (e *Env) Release(inst *Instance) {
	if inst == nil || inst.Released {
		return
	}
	inst.Released = true
	e.liveCount--
	if e.hooks.ReleaseInstance != nil {
		e.hooks.ReleaseInstance(inst)
	}
}

// Compute accrues CPU time for inst's machine on the installed clock.
func (e *Env) Compute(inst *Instance, d time.Duration) {
	if e.clock == nil {
		return
	}
	m := Client
	if inst != nil {
		m = inst.Machine
	}
	e.clock.Compute(m, d)
}

// StateWrite reports a state mutation by method on inst to the installed
// StateWrite hook. Without a hook the observation is discarded.
func (e *Env) StateWrite(inst *Instance, method string) {
	if e.hooks.StateWrite == nil {
		return
	}
	e.hooks.StateWrite(inst, method)
}
