package com

import (
	"errors"
	"testing"
	"time"

	"repro/internal/idl"
)

// testApp builds a two-class application: a Counter that accumulates, and a
// Caller that invokes the counter when poked.
func testApp() *App {
	ifaces := idl.NewRegistry()
	ifaces.Register(&idl.InterfaceDesc{
		IID: "ICounter", Name: "ICounter", Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Add", Params: []idl.ParamDesc{{Name: "n", Dir: idl.In, Type: idl.TInt32}}, Result: idl.TInt32},
			{Name: "Get", Result: idl.TInt32},
		},
	})
	ifaces.Register(&idl.InterfaceDesc{
		IID: "IPoke", Name: "IPoke", Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Poke", Params: []idl.ParamDesc{
				{Name: "target", Dir: idl.In, Type: idl.InterfaceType("ICounter")},
			}, Result: idl.TInt32},
		},
	})

	classes := NewClassRegistry()
	classes.Register(&Class{
		ID: "CLSID_Counter", Name: "Counter", Interfaces: []string{"ICounter"},
		APIs:      []string{APIFileRead},
		CodeBytes: 4096,
		New: func() Object {
			total := int64(0)
			return ObjectFunc(func(c *Call) ([]idl.Value, error) {
				switch c.Method {
				case "Add":
					total += c.Args[0].AsInt()
					return []idl.Value{idl.Int32(int32(total))}, nil
				case "Get":
					return []idl.Value{idl.Int32(int32(total))}, nil
				}
				return nil, errors.New("bad method")
			})
		},
	})
	classes.Register(&Class{
		ID: "CLSID_Caller", Name: "Caller", Interfaces: []string{"IPoke"},
		APIs:      []string{APIUserWindow},
		CodeBytes: 1024,
		New: func() Object {
			return ObjectFunc(func(c *Call) ([]idl.Value, error) {
				c.Compute(time.Millisecond)
				target, ok := c.Args[0].Iface.(*Interface)
				if !ok {
					return nil, errors.New("Caller: arg 0 is not an interface")
				}
				return c.Invoke(target, "Add", idl.Int32(5))
			})
		},
	})

	return &App{
		Name:       "testapp",
		Classes:    classes,
		Interfaces: ifaces,
		Imports:    []string{"testapp.exe", "widgets.dll"},
	}
}

func TestClassRegistry(t *testing.T) {
	t.Parallel()
	app := testApp()
	if app.Classes.Len() != 2 {
		t.Fatalf("Len = %d", app.Classes.Len())
	}
	c := app.Classes.Lookup("CLSID_Counter")
	if c == nil || c.Name != "Counter" {
		t.Fatalf("Lookup = %+v", c)
	}
	if app.Classes.Lookup("CLSID_None") != nil {
		t.Fatal("unknown class found")
	}
	all := app.Classes.Classes()
	if len(all) != 2 || all[0].ID > all[1].ID {
		t.Fatalf("Classes() not sorted: %v %v", all[0].ID, all[1].ID)
	}
	if !c.Implements("ICounter") || c.Implements("IPoke") {
		t.Error("Implements broken")
	}
	if !c.UsesAPI(APIFileRead) || c.UsesAPI(APIGdiPaint) {
		t.Error("UsesAPI broken")
	}
}

func TestClassRegistryPanics(t *testing.T) {
	t.Parallel()
	for name, reg := range map[string]func(*ClassRegistry){
		"empty clsid": func(r *ClassRegistry) {
			r.Register(&Class{New: func() Object { return nil }})
		},
		"no constructor": func(r *ClassRegistry) {
			r.Register(&Class{ID: "X"})
		},
		"duplicate": func(r *ClassRegistry) {
			c := &Class{ID: "X", New: func() Object { return nil }}
			r.Register(c)
			r.Register(c)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			reg(NewClassRegistry())
		}()
	}
}

func TestCreateAndCall(t *testing.T) {
	t.Parallel()
	env := NewEnv(testApp())
	counter, err := env.CreateInstance(nil, "CLSID_Counter")
	if err != nil {
		t.Fatal(err)
	}
	if counter.ID != 1 || counter.Machine != Client {
		t.Fatalf("instance = %+v", counter)
	}
	itf, err := env.Query(counter, "ICounter")
	if err != nil {
		t.Fatal(err)
	}
	if itf.IID() != "ICounter" || itf.InstanceID() != counter.ID || itf.Instance() != counter {
		t.Fatalf("interface = %+v", itf)
	}
	out, err := env.Call(nil, itf, "Add", idl.Int32(7))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].AsInt() != 7 {
		t.Fatalf("Add returned %v", out)
	}
	out, _ = env.Call(nil, itf, "Add", idl.Int32(3))
	if out[0].AsInt() != 10 {
		t.Fatalf("second Add returned %v", out)
	}
}

func TestNestedCallThroughComponent(t *testing.T) {
	t.Parallel()
	env := NewEnv(testApp())
	counter, _ := env.CreateInstance(nil, "CLSID_Counter")
	caller, _ := env.CreateInstance(nil, "CLSID_Caller")
	citf := env.MustQuery(counter, "ICounter")
	pitf := env.MustQuery(caller, "IPoke")
	out, err := env.Call(nil, pitf, "Poke", idl.IfacePtr(citf))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].AsInt() != 5 {
		t.Fatalf("Poke returned %v", out)
	}
	if env.TotalInstances() != 2 || env.LiveInstances() != 2 {
		t.Fatalf("counts: total=%d live=%d", env.TotalInstances(), env.LiveInstances())
	}
}

func TestStrictValidation(t *testing.T) {
	t.Parallel()
	env := NewEnv(testApp())
	counter, _ := env.CreateInstance(nil, "CLSID_Counter")
	itf := env.MustQuery(counter, "ICounter")
	if _, err := env.Call(nil, itf, "Add"); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := env.Call(nil, itf, "Add", idl.String("x")); err == nil {
		t.Error("kind mismatch accepted")
	}
	if _, err := env.Call(nil, itf, "NoSuch"); err == nil {
		t.Error("unknown method accepted")
	}
	env.SetStrict(false)
	if _, err := env.Call(nil, itf, "Get"); err != nil {
		t.Errorf("non-strict call failed: %v", err)
	}
}

func TestQueryErrors(t *testing.T) {
	t.Parallel()
	env := NewEnv(testApp())
	counter, _ := env.CreateInstance(nil, "CLSID_Counter")
	if _, err := env.Query(counter, "IPoke"); err == nil {
		t.Error("query for unimplemented interface succeeded")
	}
	if _, err := env.Query(nil, "ICounter"); err == nil {
		t.Error("query on nil instance succeeded")
	}
	env.Release(counter)
	if _, err := env.Query(counter, "ICounter"); err == nil {
		t.Error("query on released instance succeeded")
	}
}

func TestReleaseSemantics(t *testing.T) {
	t.Parallel()
	env := NewEnv(testApp())
	counter, _ := env.CreateInstance(nil, "CLSID_Counter")
	itf := env.MustQuery(counter, "ICounter")
	released := 0
	env.SetHooks(Hooks{ReleaseInstance: func(*Instance) { released++ }})
	env.Release(counter)
	env.Release(counter) // double release is a no-op
	env.Release(nil)
	if released != 1 {
		t.Fatalf("release hook ran %d times", released)
	}
	if env.LiveInstances() != 0 || env.TotalInstances() != 1 {
		t.Fatalf("counts after release: live=%d total=%d", env.LiveInstances(), env.TotalInstances())
	}
	if _, err := env.Call(nil, itf, "Get"); err == nil {
		t.Error("call to released instance succeeded")
	}
}

func TestCreateUnknownClass(t *testing.T) {
	t.Parallel()
	env := NewEnv(testApp())
	if _, err := env.CreateInstance(nil, "CLSID_None"); err == nil {
		t.Fatal("unknown class created")
	}
}

func TestHooksIntercept(t *testing.T) {
	t.Parallel()
	env := NewEnv(testApp())
	var created []CLSID
	var calls []string
	env.SetHooks(Hooks{
		CreateInstance: func(creator *Instance, class *Class, next func(Machine) *Instance) (*Instance, error) {
			created = append(created, class.ID)
			return next(Server), nil // relocate everything to the server
		},
		CallInterface: func(caller *Instance, target *Interface, method string,
			args []idl.Value, next func() ([]idl.Value, error)) ([]idl.Value, error) {
			calls = append(calls, target.IID()+"."+method)
			return next()
		},
		WrapInterface: func(itf *Interface) *Interface {
			itf.wrapped = true
			return itf
		},
	})
	counter, err := env.CreateInstance(nil, "CLSID_Counter")
	if err != nil {
		t.Fatal(err)
	}
	if counter.Machine != Server {
		t.Fatalf("hook placement ignored: %v", counter.Machine)
	}
	itf := env.MustQuery(counter, "ICounter")
	if !itf.Wrapped() {
		t.Fatal("interface not wrapped")
	}
	if _, err := env.Call(nil, itf, "Get"); err != nil {
		t.Fatal(err)
	}
	if len(created) != 1 || created[0] != "CLSID_Counter" {
		t.Fatalf("created = %v", created)
	}
	if len(calls) != 1 || calls[0] != "ICounter.Get" {
		t.Fatalf("calls = %v", calls)
	}
}

func TestDefaultPlacementFollowsCreator(t *testing.T) {
	t.Parallel()
	env := NewEnv(testApp())
	parent, _ := env.CreateInstance(nil, "CLSID_Counter")
	parent.Machine = Server
	child, _ := env.CreateInstance(parent, "CLSID_Counter")
	if child.Machine != Server {
		t.Fatalf("child machine = %v, want server", child.Machine)
	}
}

type recordingClock struct {
	total   time.Duration
	machine Machine
}

func (c *recordingClock) Compute(m Machine, d time.Duration) {
	c.machine = m
	c.total += d
}

func TestComputeClock(t *testing.T) {
	t.Parallel()
	env := NewEnv(testApp())
	clk := &recordingClock{}
	env.SetClock(clk)
	counter, _ := env.CreateInstance(nil, "CLSID_Counter")
	caller, _ := env.CreateInstance(nil, "CLSID_Caller")
	caller.Machine = Server
	citf := env.MustQuery(counter, "ICounter")
	pitf := env.MustQuery(caller, "IPoke")
	if _, err := env.Call(nil, pitf, "Poke", idl.IfacePtr(citf)); err != nil {
		t.Fatal(err)
	}
	if clk.total != time.Millisecond || clk.machine != Server {
		t.Fatalf("clock = %+v", clk)
	}
	// Compute with a nil clock or nil instance must not crash.
	env.SetClock(nil)
	env.Compute(nil, time.Second)
	env.SetClock(clk)
	env.Compute(nil, time.Second)
	if clk.machine != Client {
		t.Fatal("nil instance should accrue on client")
	}
}

func TestInstancesIteration(t *testing.T) {
	t.Parallel()
	env := NewEnv(testApp())
	a, _ := env.CreateInstance(nil, "CLSID_Counter")
	b, _ := env.CreateInstance(nil, "CLSID_Caller")
	env.Release(a)
	all := env.Instances()
	if len(all) != 2 || all[0] != a || all[1] != b {
		t.Fatalf("Instances = %v", all)
	}
	if env.Instance(a.ID) != a || env.Instance(999) != nil {
		t.Fatal("Instance lookup broken")
	}
}

func TestMachineString(t *testing.T) {
	t.Parallel()
	if Client.String() != "client" || Server.String() != "server" ||
		Middle.String() != "middle" || Machine(7).String() != "machine7" {
		t.Fatal("Machine.String broken")
	}
}

func TestMustQueryPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	env := NewEnv(testApp())
	counter, _ := env.CreateInstance(nil, "CLSID_Counter")
	env.MustQuery(counter, "INope")
}

func TestCallNilInterface(t *testing.T) {
	t.Parallel()
	env := NewEnv(testApp())
	if _, err := env.Call(nil, nil, "Get"); err == nil {
		t.Fatal("call through nil interface succeeded")
	}
}
