package octarine

import (
	"fmt"

	"repro/internal/com"
	"repro/internal/idl"
)

// Music engine. Sheet-music documents are entirely client-side: the music
// template is small, the editor swarm renders through the opaque device
// context, and nothing profits from the server (paper Table 4: 0% savings
// for o_newmus).

const (
	staves          = 8
	measuresPerLine = 12
)

func registerMusic(b *builder) {
	b.iface(&idl.InterfaceDesc{
		IID: iMusic, Name: iMusic, Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Build", Params: []idl.ParamDesc{
				{Name: "reader", Dir: idl.In, Type: idl.InterfaceType(iReader)},
				{Name: "canvas", Dir: idl.In, Type: idl.InterfaceType(iWidget)},
			}, Result: idl.TInt32},
		},
	})
	b.iface(&idl.InterfaceDesc{
		IID: iStaff, Name: iStaff, Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Fill", Params: []idl.ParamDesc{
				{Name: "canvas", Dir: idl.In, Type: idl.InterfaceType(iWidget)},
				{Name: "measures", Dir: idl.In, Type: idl.TInt32},
				{Name: "notes", Dir: idl.In, Type: idl.TBytes},
			}, Result: idl.TInt32},
		},
	})

	b.class("MusicModel", []string{iMusic}, nil, 52<<10, newMusicModel)
	b.class("Staff", []string{iStaff}, nil, 14<<10, newStaff)
	b.class("Measure", []string{iCell}, nil, 5<<10, newMusicLeaf)
	b.class("NoteRun", []string{iCell}, nil, 4<<10, newMusicLeaf)
	b.class("Clef", []string{iCell}, nil, 2<<10, newMusicLeaf)
	b.class("BeamGroup", []string{iCell}, nil, 3<<10, newMusicLeaf)
	b.class("Lyric", []string{iCell}, nil, 3<<10, newMusicLeaf)
	b.class("ChordSymbol", []string{iCell}, nil, 3<<10, newMusicLeaf)
	b.class("Dynamics", []string{iCell}, nil, 2<<10, newMusicLeaf)
	b.class("MusicLayout", []string{iCell}, nil, 18<<10, newMusicLeaf)
}

// newMusicModel builds the score: staves, which fill themselves with
// measures and note runs.
func newMusicModel() com.Object {
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
		if c.Method != "Build" {
			return nil, fmt.Errorf("MusicModel: bad method %s", c.Method)
		}
		reader := c.Args[0].Iface.(*com.Interface)
		canvas := c.Args[1].Iface.(*com.Interface)
		// Pull the parsed music template: the full score content comes to
		// the model and flows on to the staves, so nothing gains from
		// moving to the server (music documents show 0% savings, Table 4).
		var score []byte
		for p := 0; p < 2; p++ {
			out, err := c.Invoke(reader, "PageContent", idl.Int32(int32(p)))
			if err != nil {
				return nil, err
			}
			score = append(score, out[0].Bytes...)
		}
		if _, err := c.Invoke(reader, "GetRun", idl.Int32(0), idl.Int32(8*1024)); err != nil {
			return nil, err
		}
		// Layout helper and ornaments.
		for _, orn := range []com.CLSID{"CLSID_MusicLayout", "CLSID_Clef", "CLSID_Dynamics"} {
			inst, err := c.Create(orn)
			if err != nil {
				return nil, err
			}
			itf, err := c.Env.Query(inst, iCell)
			if err != nil {
				return nil, err
			}
			if _, err := c.Invoke(itf, "SetCells", idl.ByteBuf(make([]byte, 128))); err != nil {
				return nil, err
			}
		}
		total := 0
		for i := 0; i < staves; i++ {
			staff, err := c.Create("CLSID_Staff")
			if err != nil {
				return nil, err
			}
			total++
			sitf, err := c.Env.Query(staff, iStaff)
			if err != nil {
				return nil, err
			}
			notes := score[len(score)/staves*i : len(score)/staves*(i+1)]
			out, err := c.Invoke(sitf, "Fill",
				idl.IfacePtr(canvas), idl.Int32(measuresPerLine), idl.ByteBuf(notes))
			if err != nil {
				return nil, err
			}
			total += int(out[0].AsInt())
		}
		c.Compute(costMusic * 4)
		return []idl.Value{idl.Int32(int32(total))}, nil
	})
}

// newStaff fills one staff with measures; every other measure gets a note
// run, and beams and lyrics decorate some of them.
func newStaff() com.Object {
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
		if c.Method != "Fill" {
			return nil, fmt.Errorf("Staff: bad method %s", c.Method)
		}
		canvas := c.Args[0].Iface.(*com.Interface)
		measures := int(c.Args[1].AsInt())
		notes := len(c.Args[2].Bytes)
		_ = notes
		created := 0
		mk := func(clsid com.CLSID, payload int) error {
			inst, err := c.Create(clsid)
			if err != nil {
				return err
			}
			created++
			itf, err := c.Env.Query(inst, iCell)
			if err != nil {
				return err
			}
			if _, err := c.Invoke(itf, "SetCells", idl.ByteBuf(make([]byte, payload))); err != nil {
				return err
			}
			_, err = c.Invoke(itf, "Draw", idl.IfacePtr(canvas))
			return err
		}
		for m := 0; m < measures; m++ {
			if err := mk("CLSID_Measure", 192); err != nil {
				return nil, err
			}
			if m%2 == 0 {
				if err := mk("CLSID_NoteRun", 320); err != nil {
					return nil, err
				}
			}
			if m%3 == 0 {
				if err := mk("CLSID_BeamGroup", 96); err != nil {
					return nil, err
				}
			}
			if m%4 == 0 {
				if err := mk("CLSID_Lyric", 64); err != nil {
					return nil, err
				}
			}
		}
		c.Compute(costMusic)
		return []idl.Value{idl.Int32(int32(created))}, nil
	})
}

// newMusicLeaf is the shared behaviour of music ornaments: accept a
// payload, draw through the opaque context.
func newMusicLeaf() com.Object {
	size := 0
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
		switch c.Method {
		case "SetCells":
			size = len(c.Args[0].Bytes)
			c.Compute(costMusic / 2)
			return []idl.Value{idl.Int32(int32(size))}, nil
		case "Draw":
			canvas := c.Args[0].Iface.(*com.Interface)
			if _, err := c.Invoke(canvas, "Render", idl.OpaquePtr("hdc")); err != nil {
				return nil, err
			}
			return []idl.Value{idl.Int32(int32(size))}, nil
		}
		return nil, fmt.Errorf("music leaf: bad method %s", c.Method)
	})
}

// newMusicDocument creates a sheet-music document from the music template.
func (s *session) newMusicDocument() error {
	ritf, err := s.openReader(kindMusic, 2)
	if err != nil {
		return err
	}
	model, err := s.create("CLSID_MusicModel")
	if err != nil {
		return err
	}
	mitf, err := s.env.Query(model, iMusic)
	if err != nil {
		return err
	}
	_, err = s.call(mitf, "Build", idl.IfacePtr(ritf), idl.IfacePtr(s.canvas))
	return err
}
