package octarine

import (
	"fmt"

	"repro/internal/com"
	"repro/internal/idl"
)

// Table engine. A pure table document is read by the DocReader (which must
// scan every page to size columns) and rendered client-side by the
// TableModel and its cells; only the reader profits from moving to the
// server (paper Figure 7). A mixed text+table document additionally runs
// the page-placement negotiation: per page, a PagePlanner spawns
// TextNegotiator and TableNegotiator instances that repeatedly re-read
// document runs through the reader and exchange proposals with the
// planner, emitting only a tiny placement summary — the communication
// cluster that drags 280-odd components to the server in Figure 8.

const (
	embeddedTableCells = 6  // cells per embedded (small) table
	textNegsPerPage    = 15 // one per text block on the page
	tableNegsPerTable  = 20 // boundary candidates per embedded table
	tablesPerPage      = 2  // embedded tables influencing each page
	negotiationRounds  = 3
	embeddedTableBytes = 20 << 10
)

func registerTable(b *builder) {
	b.iface(&idl.InterfaceDesc{
		IID: iTable, Name: iTable, Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Build", Params: []idl.ParamDesc{
				{Name: "reader", Dir: idl.In, Type: idl.InterfaceType(iReader)},
				{Name: "canvas", Dir: idl.In, Type: idl.InterfaceType(iWidget)},
				{Name: "pages", Dir: idl.In, Type: idl.TInt32},
			}, Result: idl.TInt32},
			{Name: "BuildEmbedded", Params: []idl.ParamDesc{
				{Name: "reader", Dir: idl.In, Type: idl.InterfaceType(iReader)},
				{Name: "canvas", Dir: idl.In, Type: idl.InterfaceType(iWidget)},
				{Name: "index", Dir: idl.In, Type: idl.TInt32},
			}, Result: idl.TInt32},
			{Name: "BuildHeaderCell", Params: []idl.ParamDesc{
				{Name: "canvas", Dir: idl.In, Type: idl.InterfaceType(iWidget)},
				{Name: "sizer", Dir: idl.In, Type: idl.InterfaceType(iCell)},
				{Name: "data", Dir: idl.In, Type: idl.TBytes},
			}, Result: idl.TInt32},
			{Name: "BuildBodyCell", Params: []idl.ParamDesc{
				{Name: "canvas", Dir: idl.In, Type: idl.InterfaceType(iWidget)},
				{Name: "data", Dir: idl.In, Type: idl.TBytes},
			}, Result: idl.TInt32},
		},
	})
	b.iface(&idl.InterfaceDesc{
		IID: iCell, Name: iCell, Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "SetCells", Params: []idl.ParamDesc{{Name: "data", Dir: idl.In, Type: idl.TBytes}}, Result: idl.TInt32},
			{Name: "Draw", Params: []idl.ParamDesc{{Name: "canvas", Dir: idl.In, Type: idl.InterfaceType(iWidget)}}, Result: idl.TInt32},
			{Name: "DrawRuled", Params: []idl.ParamDesc{
				{Name: "canvas", Dir: idl.In, Type: idl.InterfaceType(iWidget)},
				{Name: "sizer", Dir: idl.In, Type: idl.InterfaceType(iCell)},
			}, Result: idl.TInt32},
		},
	})
	b.iface(&idl.InterfaceDesc{
		IID: iNegot, Name: iNegot, Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Propose", Params: []idl.ParamDesc{{Name: "proposal", Dir: idl.In, Type: idl.TBytes}}, Result: idl.TBytes},
			{Name: "Bind", Params: []idl.ParamDesc{{Name: "reader", Dir: idl.In, Type: idl.InterfaceType(iReader)}}, Result: idl.TInt32},
		},
	})
	b.iface(&idl.InterfaceDesc{
		IID: iPlanner, Name: iPlanner, Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Plan", Params: []idl.ParamDesc{
				{Name: "reader", Dir: idl.In, Type: idl.InterfaceType(iReader)},
				{Name: "page", Dir: idl.In, Type: idl.TInt32},
				{Name: "tables", Dir: idl.In, Type: idl.TInt32},
			}, Result: idl.TBytes},
		},
	})

	b.class("TableModel", []string{iTable}, nil, 40<<10, newTableModel)
	b.class("TableCell", []string{iCell}, nil, 6<<10, newTableCell)
	b.class("ColumnSizer", []string{iCell}, nil, 10<<10, newTableCell)
	b.class("RowBalancer", []string{iCell}, nil, 10<<10, newTableCell)
	b.class("PagePlanner", []string{iPlanner}, nil, 22<<10, newPagePlanner)
	b.class("TextNegotiator", []string{iNegot}, nil, 9<<10, newNegotiator)
	b.class("TableNegotiator", []string{iNegot}, nil, 9<<10, newNegotiator)
}

// newTableModel builds the rendered window of a table document: per page
// it pulls the cell payload from the reader and distributes it to cell
// components, which draw through the opaque device context.
func newTableModel() com.Object {
	var sizer *com.Interface
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
		mkCell := func(canvas *com.Interface, data idl.Value, ruled bool) error {
			cell, err := c.Create("CLSID_TableCell")
			if err != nil {
				return err
			}
			citf, err := c.Env.Query(cell, iCell)
			if err != nil {
				return err
			}
			if _, err := c.Invoke(citf, "SetCells", data); err != nil {
				return err
			}
			if ruled {
				_, err = c.Invoke(citf, "DrawRuled", idl.IfacePtr(canvas), idl.IfacePtr(sizer))
			} else {
				_, err = c.Invoke(citf, "Draw", idl.IfacePtr(canvas))
			}
			return err
		}
		switch c.Method {
		case "BuildHeaderCell":
			canvas := c.Args[0].Iface.(*com.Interface)
			if err := mkCell(canvas, c.Args[2], true); err != nil {
				return nil, err
			}
			return []idl.Value{idl.Int32(1)}, nil
		case "BuildBodyCell":
			canvas := c.Args[0].Iface.(*com.Interface)
			if err := mkCell(canvas, c.Args[1], false); err != nil {
				return nil, err
			}
			return []idl.Value{idl.Int32(1)}, nil
		case "Build":
			reader := c.Args[0].Iface.(*com.Interface)
			canvas := c.Args[1].Iface.(*com.Interface)
			pages := int(c.Args[2].AsInt())
			view := pages
			if view > viewWindowTB {
				view = viewWindowTB
			}
			// Column sizing consults two helper components once.
			for _, helper := range []com.CLSID{"CLSID_ColumnSizer", "CLSID_RowBalancer"} {
				h, err := c.Create(helper)
				if err != nil {
					return nil, err
				}
				hitf, err := c.Env.Query(h, iCell)
				if err != nil {
					return nil, err
				}
				if _, err := c.Invoke(hitf, "SetCells", idl.ByteBuf(make([]byte, 256))); err != nil {
					return nil, err
				}
				if helper == "CLSID_ColumnSizer" {
					sizer = hitf
				}
			}
			// Header cells consult the column sizer while body cells render
			// directly — distinct code paths for one cell class, separable
			// only by call-chain classifiers.
			self, err := c.Env.Query(c.Self, iTable)
			if err != nil {
				return nil, err
			}
			created := 0
			for p := 0; p < view; p++ {
				out, err := c.Invoke(reader, "PageCells", idl.Int32(int32(p)))
				if err != nil {
					return nil, err
				}
				per := len(out[0].Bytes) / cellsPerPage
				for i := 0; i < cellsPerPage; i++ {
					data := idl.ByteBuf(make([]byte, per))
					var berr error
					if i%6 == 0 {
						_, berr = c.Invoke(self, "BuildHeaderCell",
							idl.IfacePtr(canvas), idl.IfacePtr(sizer), data)
					} else {
						_, berr = c.Invoke(self, "BuildBodyCell",
							idl.IfacePtr(canvas), data)
					}
					if berr != nil {
						return nil, berr
					}
					created++
				}
			}
			// Off-window pages contribute only placement summaries.
			for p := view; p < pages; p++ {
				if _, err := c.Invoke(reader, "PageSummary", idl.Int32(int32(p))); err != nil {
					return nil, err
				}
			}
			return []idl.Value{idl.Int32(int32(created))}, nil

		case "BuildEmbedded":
			reader := c.Args[0].Iface.(*com.Interface)
			canvas := c.Args[1].Iface.(*com.Interface)
			// An embedded table pulls its fragment and renders few cells.
			out, err := c.Invoke(reader, "GetRun",
				idl.Int32(int32(c.Args[2].AsInt())*64), idl.Int32(embeddedTableBytes))
			if err != nil {
				return nil, err
			}
			per := len(out[0].Bytes) / embeddedTableCells
			for i := 0; i < embeddedTableCells; i++ {
				cell, err := c.Create("CLSID_TableCell")
				if err != nil {
					return nil, err
				}
				citf, err := c.Env.Query(cell, iCell)
				if err != nil {
					return nil, err
				}
				if _, err := c.Invoke(citf, "SetCells", idl.ByteBuf(make([]byte, per))); err != nil {
					return nil, err
				}
				if _, err := c.Invoke(citf, "Draw", idl.IfacePtr(canvas)); err != nil {
					return nil, err
				}
			}
			return []idl.Value{idl.Int32(embeddedTableCells)}, nil
		}
		return nil, fmt.Errorf("TableModel: bad method %s", c.Method)
	})
}

// newTableCell renders one cell block through the opaque device context.
func newTableCell() com.Object {
	size := 0
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
		switch c.Method {
		case "SetCells":
			size = len(c.Args[0].Bytes)
			c.Compute(costLayoutCell)
			return []idl.Value{idl.Int32(int32(size))}, nil
		case "Draw":
			canvas := c.Args[0].Iface.(*com.Interface)
			if _, err := c.Invoke(canvas, "Render", idl.OpaquePtr("hdc")); err != nil {
				return nil, err
			}
			return []idl.Value{idl.Int32(int32(size))}, nil
		case "DrawRuled":
			canvas := c.Args[0].Iface.(*com.Interface)
			ruler := c.Args[1].Iface.(*com.Interface)
			if _, err := c.Invoke(ruler, "SetCells", idl.ByteBuf(make([]byte, 96))); err != nil {
				return nil, err
			}
			if _, err := c.Invoke(canvas, "Render", idl.OpaquePtr("hdc")); err != nil {
				return nil, err
			}
			return []idl.Value{idl.Int32(int32(size))}, nil
		}
		return nil, fmt.Errorf("TableCell: bad method %s", c.Method)
	})
}

// newPagePlanner negotiates one page's placement: it spawns text and table
// negotiators and exchanges proposals with them over several rounds,
// returning only a small placement summary.
func newPagePlanner() com.Object {
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
		if c.Method != "Plan" {
			return nil, fmt.Errorf("PagePlanner: bad method %s", c.Method)
		}
		reader := c.Args[0].Iface.(*com.Interface)
		tables := int(c.Args[2].AsInt())
		var negotiators []*com.Interface
		spawn := func(clsid com.CLSID, n int) error {
			for i := 0; i < n; i++ {
				neg, err := c.Create(clsid)
				if err != nil {
					return err
				}
				nitf, err := c.Env.Query(neg, iNegot)
				if err != nil {
					return err
				}
				if _, err := c.Invoke(nitf, "Bind", idl.IfacePtr(reader)); err != nil {
					return err
				}
				negotiators = append(negotiators, nitf)
			}
			return nil
		}
		if err := spawn("CLSID_TextNegotiator", textNegsPerPage); err != nil {
			return nil, err
		}
		if err := spawn("CLSID_TableNegotiator", tables*tableNegsPerTable); err != nil {
			return nil, err
		}
		for round := 0; round < negotiationRounds; round++ {
			for _, n := range negotiators {
				if _, err := c.Invoke(n, "Propose",
					idl.ByteBuf(make([]byte, proposalBytes))); err != nil {
					return nil, err
				}
			}
		}
		return []idl.Value{idl.ByteBuf(make([]byte, summaryBytes))}, nil
	})
}

// newNegotiator answers proposals: each round it re-reads a content run
// through the reader, computes, and counter-proposes.
func newNegotiator() com.Object {
	var reader *com.Interface
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
		switch c.Method {
		case "Bind":
			reader = c.Args[0].Iface.(*com.Interface)
			return []idl.Value{idl.Int32(1)}, nil
		case "Propose":
			if reader == nil {
				return nil, fmt.Errorf("negotiator: Propose before Bind")
			}
			if _, err := c.Invoke(reader, "GetRun",
				idl.Int32(0), idl.Int32(runQueryBytes)); err != nil {
				return nil, err
			}
			c.Compute(costNegotiate)
			return []idl.Value{idl.ByteBuf(make([]byte, proposalBytes))}, nil
		}
		return nil, fmt.Errorf("negotiator: bad method %s", c.Method)
	})
}

// layoutEmbeddedTables builds the embedded tables of a mixed document.
func layoutEmbeddedTables(c *com.Call, reader, canvas *com.Interface, tables int) error {
	for t := 0; t < tables; t++ {
		model, err := c.Create("CLSID_TableModel")
		if err != nil {
			return err
		}
		mitf, err := c.Env.Query(model, iTable)
		if err != nil {
			return err
		}
		if _, err := c.Invoke(mitf, "BuildEmbedded",
			idl.IfacePtr(reader), idl.IfacePtr(canvas), idl.Int32(int32(t))); err != nil {
			return err
		}
	}
	return nil
}

// negotiatePlacement runs the per-page page-placement negotiation.
func negotiatePlacement(c *com.Call, reader *com.Interface, pages int) error {
	for p := 0; p < pages; p++ {
		planner, err := c.Create("CLSID_PagePlanner")
		if err != nil {
			return err
		}
		pitf, err := c.Env.Query(planner, iPlanner)
		if err != nil {
			return err
		}
		if _, err := c.Invoke(pitf, "Plan",
			idl.IfacePtr(reader), idl.Int32(int32(p)), idl.Int32(tablesPerPage)); err != nil {
			return err
		}
	}
	return nil
}

// --- table scenarios ---

// newTableDocument creates an empty table grid; only a tiny style sheet is
// read from storage.
func (s *session) newTableDocument() error {
	ritf, err := s.openReader(kindTable, 0)
	if err != nil {
		return err
	}
	if _, err := s.call(ritf, "GetRun", idl.Int32(0), idl.Int32(6*1024)); err != nil {
		return err
	}
	model, err := s.create("CLSID_TableModel")
	if err != nil {
		return err
	}
	mitf, err := s.env.Query(model, iTable)
	if err != nil {
		return err
	}
	_, err = s.call(mitf, "Build",
		idl.IfacePtr(ritf), idl.IfacePtr(s.canvas), idl.Int32(0))
	return err
}

// viewTableDocument opens and renders a table document of the given page
// count.
func (s *session) viewTableDocument(pages int) error {
	ritf, err := s.openReader(kindTable, pages)
	if err != nil {
		return err
	}
	model, err := s.create("CLSID_TableModel")
	if err != nil {
		return err
	}
	mitf, err := s.env.Query(model, iTable)
	if err != nil {
		return err
	}
	_, err = s.call(mitf, "Build",
		idl.IfacePtr(ritf), idl.IfacePtr(s.canvas), idl.Int32(int32(pages)))
	return err
}
