package octarine

import (
	bytes2 "bytes"
	"context"
	"testing"

	"repro/internal/classify"
	"repro/internal/com"
	"repro/internal/core"
	"repro/internal/dist"
)

func TestAppAssembly(t *testing.T) {
	t.Parallel()
	app := New()
	if app.Name != "octarine" {
		t.Errorf("name = %s", app.Name)
	}
	// The paper describes approximately 150 component classes.
	if n := app.Classes.Len(); n < 120 || n > 170 {
		t.Errorf("class count = %d, want ~150", n)
	}
	if app.Interfaces.Len() < 10 {
		t.Errorf("interfaces = %d", app.Interfaces.Len())
	}
	// Storage is server-pinned infrastructure.
	fs := app.Classes.LookupName("FileStore")
	if fs == nil || !fs.Infrastructure || fs.Home != com.Server {
		t.Fatalf("FileStore = %+v", fs)
	}
	// The widget interface is non-remotable (opaque device contexts).
	if app.Interfaces.Lookup(iWidget).Remotable {
		t.Error("IWidget should be non-remotable")
	}
	if !app.Interfaces.Lookup(iReader).Remotable {
		t.Error("IReader should be remotable")
	}
}

func TestScenarioInventory(t *testing.T) {
	t.Parallel()
	if len(Scenarios()) != 12 {
		t.Fatalf("scenario count = %d, want 12 (Table 1)", len(Scenarios()))
	}
	without := ScenariosWithoutBigone()
	if len(without) != 11 || without[len(without)-1] == ScenBigone {
		t.Fatalf("ScenariosWithoutBigone = %v", without)
	}
}

func TestUnknownScenarioFails(t *testing.T) {
	t.Parallel()
	_, err := dist.Run(dist.Config{App: New(), Scenario: "o_nope", Mode: dist.ModeBare})
	if err == nil {
		t.Fatal("unknown scenario ran")
	}
}

func TestAllScenariosRunCleanly(t *testing.T) {
	t.Parallel()
	for _, scen := range Scenarios() {
		res, err := dist.Run(dist.Config{
			App: New(), Scenario: scen, Mode: dist.ModeDefault,
			Classifier: classify.New(classify.IFCB, 0),
		})
		if err != nil {
			t.Fatalf("%s: %v", scen, err)
		}
		if res.Violations != 0 {
			t.Errorf("%s: %d non-remotable crossings in the default distribution", scen, res.Violations)
		}
		if res.AppInstances < 300 {
			t.Errorf("%s: only %d app instances", scen, res.AppInstances)
		}
	}
}

func TestFigure5TextDocumentShape(t *testing.T) {
	t.Parallel()
	// Viewing a text-only document instantiates 458 components; in the
	// Coign distribution only the reader and the text-properties
	// component belong on the server (paper Figure 5).
	adps := core.New(New())
	rep, err := adps.ScenarioExperiment(context.Background(), ScenOldWp0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalInstances != 458 {
		t.Errorf("instances = %d, want 458", rep.TotalInstances)
	}
	// Small document: default is optimal, no savings (Table 4).
	if rep.Savings > 0.02 {
		t.Errorf("o_oldwp0 savings = %v, want ~0", rep.Savings)
	}
	// The big document moves exactly the reader and text properties.
	rep7, err := adps.ScenarioExperiment(context.Background(), ScenOldWp7)
	if err != nil {
		t.Fatal(err)
	}
	if rep7.ServerInstances != 2 {
		t.Errorf("o_oldwp7 server components = %d, want 2", rep7.ServerInstances)
	}
	if rep7.Savings < 0.8 {
		t.Errorf("o_oldwp7 savings = %v, want >= 0.8", rep7.Savings)
	}
}

func TestFigure7TableDocumentShape(t *testing.T) {
	t.Parallel()
	adps := core.New(New())
	rep, err := adps.ScenarioExperiment(context.Background(), ScenOldTb0)
	if err != nil {
		t.Fatal(err)
	}
	// Only the reader moves; savings are marginal.
	if rep.ServerInstances != 1 {
		t.Errorf("o_oldtb0 server components = %d, want 1 (Figure 7)", rep.ServerInstances)
	}
	if rep.Savings > 0.15 {
		t.Errorf("o_oldtb0 savings = %v, want small", rep.Savings)
	}
	// The 150-page table is dominated by the scan: huge savings.
	rep3, err := adps.ScenarioExperiment(context.Background(), ScenOldTb3)
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Savings < 0.9 {
		t.Errorf("o_oldtb3 savings = %v, want >= 0.9 (paper: 99%%)", rep3.Savings)
	}
}

func TestFigure8MixedDocumentShape(t *testing.T) {
	t.Parallel()
	// Embedded tables flip the optimal distribution: the page-placement
	// negotiation cluster (hundreds of components) moves to the server.
	adps := core.New(New())
	rep, err := adps.ScenarioExperiment(context.Background(), ScenOldBth)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ServerInstances < 250 || rep.ServerInstances > 320 {
		t.Errorf("o_oldbth server components = %d, want ~281 (Figure 8)", rep.ServerInstances)
	}
	if rep.TotalInstances < 750 || rep.TotalInstances > 860 {
		t.Errorf("o_oldbth total components = %d, want ~786", rep.TotalInstances)
	}
	if rep.Savings < 0.5 || rep.Savings > 0.85 {
		t.Errorf("o_oldbth savings = %v, want ~0.68", rep.Savings)
	}
}

func TestCoignNeverWorseThanDefault(t *testing.T) {
	t.Parallel()
	adps := core.New(New())
	for _, scen := range []string{ScenNewDoc, ScenNewMus, ScenNewTbl, ScenOldWp0, ScenOldWp3, ScenOldTb0} {
		rep, err := adps.ScenarioExperiment(context.Background(), scen)
		if err != nil {
			t.Fatalf("%s: %v", scen, err)
		}
		// Allow a sliver of quantization slack.
		if float64(rep.CoignComm) > float64(rep.DefaultComm)*1.02 {
			t.Errorf("%s: coign %v worse than default %v", scen, rep.CoignComm, rep.DefaultComm)
		}
		if rep.Violations != 0 {
			t.Errorf("%s: %d violations", scen, rep.Violations)
		}
		if rep.Unknown != 0 {
			t.Errorf("%s: %d unknown classifications in the optimized scenario", scen, rep.Unknown)
		}
	}
}

func TestDeterminism(t *testing.T) {
	t.Parallel()
	run := func() *dist.Result {
		res, err := dist.Run(dist.Config{
			App: New(), Scenario: ScenOldBth, Mode: dist.ModeDefault,
			Classifier: classify.New(classify.IFCB, 0),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Instances != b.Instances {
		t.Errorf("instance counts differ: %d vs %d", a.Instances, b.Instances)
	}
	if a.Clock.CommTime() != b.Clock.CommTime() {
		t.Errorf("comm time differs: %v vs %v", a.Clock.CommTime(), b.Clock.CommTime())
	}
	if a.TrappedCalls != b.TrappedCalls {
		t.Errorf("calls differ: %d vs %d", a.TrappedCalls, b.TrappedCalls)
	}
}

func TestClassificationsStableAcrossRuns(t *testing.T) {
	t.Parallel()
	// The same scenario profiled twice yields identical classification
	// ids — the property the lightweight runtime depends on to correlate
	// instantiations with profiles.
	profileIDs := func() map[string]bool {
		res, err := dist.Run(dist.Config{
			App: New(), Scenario: ScenOldWp0, Mode: dist.ModeProfiling,
			Classifier: classify.New(classify.IFCB, 0),
		})
		if err != nil {
			t.Fatal(err)
		}
		ids := make(map[string]bool)
		for id := range res.Profile.Classifications {
			ids[id] = true
		}
		return ids
	}
	a, b := profileIDs(), profileIDs()
	if len(a) != len(b) {
		t.Fatalf("classification counts differ: %d vs %d", len(a), len(b))
	}
	for id := range a {
		if !b[id] {
			t.Fatalf("classification %s not reproduced", id)
		}
	}
}

func TestClassifierGranularityOrdering(t *testing.T) {
	t.Parallel()
	// ST sees only classes; call-chain classifiers see context. On a GUI
	// of hundreds of widgets, IFCB must find at least as many
	// classifications as ST.
	count := func(kind classify.Kind) int {
		res, err := dist.Run(dist.Config{
			App: New(), Scenario: ScenOldBth, Mode: dist.ModeProfiling,
			Classifier: classify.New(kind, 0),
		})
		if err != nil {
			t.Fatal(err)
		}
		return len(res.Profile.Classifications)
	}
	st := count(classify.ST)
	stcb := count(classify.STCB)
	ifcb := count(classify.IFCB)
	if !(st <= stcb && stcb <= ifcb) {
		t.Errorf("granularity ordering violated: st=%d stcb=%d ifcb=%d", st, stcb, ifcb)
	}
	if st < 30 {
		t.Errorf("st classifications = %d, should approximate classes used", st)
	}
}

func TestTextServicesStayWithDisplay(t *testing.T) {
	t.Parallel()
	// The flow's text services must not drift to the server.
	adps := core.New(New())
	if err := adps.Instrument(); err != nil {
		t.Fatal(err)
	}
	p, _, err := adps.ProfileScenario(ScenOldWp7, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := adps.Analyze(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	for _, cp := range res.ServerComponents(p) {
		switch cp.Class {
		case "DocReader", "TextProps", "FileStore":
		default:
			t.Errorf("unexpected server component %s", cp.Class)
		}
	}
}

func TestProfileStorageSublinearInExecutionLength(t *testing.T) {
	t.Parallel()
	// Paper §2: because communication is summarized online into
	// exponential size buckets per classification pair, profile storage
	// does not grow linearly with execution time. The 150-page table
	// performs ~20x the calls of the 5-page table but its profile is
	// barely larger.
	encSize := func(scen string) (calls int64, bytes int) {
		res, err := dist.Run(dist.Config{
			App: New(), Scenario: scen, Mode: dist.ModeProfiling,
			Classifier: classify.New(classify.IFCB, 0),
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes2.Buffer
		if err := res.Profile.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return res.Profile.TotalCalls(), buf.Len()
	}
	smallCalls, smallBytes := encSize(ScenOldTb0)
	bigCalls, bigBytes := encSize(ScenBigone)
	callRatio := float64(bigCalls) / float64(smallCalls)
	sizeRatio := float64(bigBytes) / float64(smallBytes)
	if callRatio < 3 {
		t.Fatalf("call ratio only %.1f; scenario sizes too similar", callRatio)
	}
	if sizeRatio > callRatio/2 {
		t.Errorf("profile storage grew near-linearly: calls x%.1f, bytes x%.1f",
			callRatio, sizeRatio)
	}
}
