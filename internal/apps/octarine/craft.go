package octarine

import (
	"fmt"

	"repro/internal/com"
	"repro/internal/idl"
)

// Creation-path diversity. Real applications do not instantiate their
// components from uniform loops: every menu is built by its own handler,
// every dialog by its own routine, text pages by frame chaining. These
// distinct code paths are precisely what gives the call-chain classifiers
// their granularity edge over the static-type classifier (paper Table 2:
// 80 ST classifications versus 1434 IFCB classifications), and the
// same-instance method chains (bar.Populate → bar.BuildFileMenu) are what
// separates IFCB from EPCB, which collapses them.

// Craft interface IDs.
const (
	iFactory    = "IWidgetFactory"
	iMenuCraft  = "IMenuCraft"
	iMenuAdd    = "IMenuEntries"
	iFrameCraft = "IFrameCraft"
	iPage       = "IPageFrame"
	iDocMgr     = "IDocManager"
)

// menuBuildMethods are the menu bar's per-menu construction handlers.
var menuBuildMethods = []string{
	"BuildFileMenu", "BuildEditMenu", "BuildViewMenu", "BuildInsertMenu",
	"BuildFormatMenu", "BuildToolsMenu", "BuildTableMenu", "BuildWindowMenu",
	"BuildHelpMenu",
}

// menuItemMethods are a menu's per-entry construction handlers.
var menuItemMethods = []string{
	"AddNew", "AddOpen", "AddSave", "AddClose", "AddCut", "AddCopy",
	"AddPaste", "AddUndo", "AddRedo", "AddFind", "AddReplace", "AddZoom",
	"AddAbout", "AddExit",
}

// frameCraftMethods are the frame's per-fixture construction handlers:
// four toolbars, two palettes, six dialogs.
var frameCraftMethods = []string{
	"BuildStdToolbar", "BuildFmtToolbar", "BuildDrawToolbar", "BuildTableToolbar",
	"BuildColorPalette", "BuildBrushPalette",
	"BuildOpenDialog", "BuildSaveDialog", "BuildPrintDialog",
	"BuildStyleDialog", "BuildSpellDialog", "BuildPrefsDialog",
}

// frameCraftTargets maps each frame craft method to the container class it
// constructs.
var frameCraftTargets = map[string]com.CLSID{
	"BuildStdToolbar":   "CLSID_Toolbar",
	"BuildFmtToolbar":   "CLSID_Toolbar",
	"BuildDrawToolbar":  "CLSID_Toolbar",
	"BuildTableToolbar": "CLSID_Toolbar",
	"BuildColorPalette": "CLSID_Palette",
	"BuildBrushPalette": "CLSID_Palette",
	"BuildOpenDialog":   "CLSID_DialogPane",
	"BuildSaveDialog":   "CLSID_DialogPane",
	"BuildPrintDialog":  "CLSID_DialogPane",
	"BuildStyleDialog":  "CLSID_DialogPane",
	"BuildSpellDialog":  "CLSID_DialogPane",
	"BuildPrefsDialog":  "CLSID_DialogPane",
}

// docOpenMethods map the document manager's per-type open handlers to
// reader document kinds.
var docOpenMethods = map[string]int{
	"OpenTemplate": kindTemplate,
	"OpenText":     kindText,
	"OpenTable":    kindTable,
	"OpenMusic":    kindMusic,
	"OpenMixed":    kindMixed,
}

func intMethods(names []string) []idl.MethodDesc {
	out := make([]idl.MethodDesc, len(names))
	for i, n := range names {
		out[i] = idl.MethodDesc{Name: n, Result: idl.TInt32}
	}
	return out
}

// registerCraftInterfaces declares the construction-handler interfaces.
func registerCraftInterfaces(b *builder) {
	b.iface(&idl.InterfaceDesc{
		IID: iMenuCraft, Name: iMenuCraft, Remotable: true,
		Methods: intMethods(menuBuildMethods),
	})
	b.iface(&idl.InterfaceDesc{
		IID: iMenuAdd, Name: iMenuAdd, Remotable: true,
		Methods: intMethods(menuItemMethods),
	})
	b.iface(&idl.InterfaceDesc{
		IID: iFrameCraft, Name: iFrameCraft, Remotable: true,
		Methods: intMethods(frameCraftMethods),
	})
	pageParams := []idl.ParamDesc{
		{Name: "props", Dir: idl.In, Type: idl.InterfaceType(iProps)},
		{Name: "canvas", Dir: idl.In, Type: idl.InterfaceType(iWidget)},
		{Name: "text", Dir: idl.In, Type: idl.TBytes},
	}
	b.iface(&idl.InterfaceDesc{
		IID: iPage, Name: iPage, Remotable: true,
		Methods: []idl.MethodDesc{
			{
				Name: "Continue",
				Params: []idl.ParamDesc{
					{Name: "reader", Dir: idl.In, Type: idl.InterfaceType(iReader)},
					{Name: "props", Dir: idl.In, Type: idl.InterfaceType(iProps)},
					{Name: "canvas", Dir: idl.In, Type: idl.InterfaceType(iWidget)},
					{Name: "page", Dir: idl.In, Type: idl.TInt32},
					{Name: "lastPage", Dir: idl.In, Type: idl.TInt32},
				},
				Result: idl.TInt32,
			},
			{Name: "AddBody", Params: pageParams, Result: idl.TInt32},
			{Name: "AddHeading", Params: pageParams, Result: idl.TInt32},
		},
	})
	var openMethods []idl.MethodDesc
	for _, name := range []string{"OpenTemplate", "OpenText", "OpenTable", "OpenMusic", "OpenMixed"} {
		openMethods = append(openMethods, idl.MethodDesc{
			Name: name,
			Params: []idl.ParamDesc{
				{Name: "pages", Dir: idl.In, Type: idl.TInt32},
				{Name: "frame", Dir: idl.In, Type: idl.InterfaceType(iFrame)},
			},
			Result: idl.InterfaceType(iReader),
		})
	}
	b.iface(&idl.InterfaceDesc{
		IID: iDocMgr, Name: iDocMgr, Remotable: true,
		Methods: openMethods,
	})
}

// newMenuBar builds its menus through one handler per menu, so every menu
// (and every item under it) gets a distinct call-chain context.
func newMenuBar() com.Object {
	var factory *com.Interface
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
		switch c.Method {
		case "Render":
			c.Compute(costWidget)
			return []idl.Value{}, nil
		case "Ping":
			return []idl.Value{idl.Int32(int32(c.Args[0].AsInt()))}, nil
		case "Populate":
			return []idl.Value{idl.Int32(0)}, nil
		case "PopulateVia":
			factory = c.Args[0].Iface.(*com.Interface)
			self, err := c.Env.Query(c.Self, iMenuCraft)
			if err != nil {
				return nil, err
			}
			total := 0
			for _, m := range menuBuildMethods {
				out, err := c.Invoke(self, m)
				if err != nil {
					return nil, err
				}
				total += int(out[0].AsInt())
			}
			return []idl.Value{idl.Int32(int32(total))}, nil
		default:
			for _, m := range menuBuildMethods {
				if c.Method != m {
					continue
				}
				if factory == nil {
					return nil, fmt.Errorf("MenuBar: %s before PopulateVia", m)
				}
				menu, err := c.Create("CLSID_Menu")
				if err != nil {
					return nil, err
				}
				w, err := c.Env.Query(menu, iWidget)
				if err != nil {
					return nil, err
				}
				if _, err := c.Invoke(w, "Render", idl.OpaquePtr("hdc")); err != nil {
					return nil, err
				}
				mc, err := c.Env.Query(menu, iContain)
				if err != nil {
					return nil, err
				}
				out, err := c.Invoke(mc, "PopulateVia", idl.IfacePtr(factory))
				if err != nil {
					return nil, err
				}
				return []idl.Value{idl.Int32(int32(1 + out[0].AsInt()))}, nil
			}
			return nil, fmt.Errorf("MenuBar: bad method %s", c.Method)
		}
	})
}

// newMenu populates itself one entry handler at a time.
func newMenu() com.Object {
	var factory *com.Interface
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
		switch c.Method {
		case "Render":
			c.Compute(costWidget)
			return []idl.Value{}, nil
		case "Ping":
			return []idl.Value{idl.Int32(int32(c.Args[0].AsInt()))}, nil
		case "Populate":
			return []idl.Value{idl.Int32(0)}, nil
		case "PopulateVia":
			factory = c.Args[0].Iface.(*com.Interface)
			self, err := c.Env.Query(c.Self, iMenuAdd)
			if err != nil {
				return nil, err
			}
			total := 0
			for _, m := range menuItemMethods {
				out, err := c.Invoke(self, m)
				if err != nil {
					return nil, err
				}
				total += int(out[0].AsInt())
			}
			return []idl.Value{idl.Int32(int32(total))}, nil
		default:
			for _, m := range menuItemMethods {
				if c.Method != m {
					continue
				}
				if factory == nil {
					return nil, fmt.Errorf("Menu: %s before PopulateVia", m)
				}
				if _, err := c.Invoke(factory, "CreateWidget",
					idl.String("CLSID_MenuItem")); err != nil {
					return nil, err
				}
				return []idl.Value{idl.Int32(1)}, nil
			}
			return nil, fmt.Errorf("Menu: bad method %s", c.Method)
		}
	})
}

// newPageFrame lays out one page's paragraphs and chains to the next page
// frame — text flows chain frames, so each page's components carry a
// lineage-specific call-chain context.
func newPageFrame() com.Object {
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
		switch c.Method {
		case "AddBody", "AddHeading":
			props := c.Args[0].Iface.(*com.Interface)
			canvas := c.Args[1].Iface.(*com.Interface)
			text := c.Args[2]
			para, err := c.Create("CLSID_Paragraph")
			if err != nil {
				return nil, err
			}
			pitf, err := c.Env.Query(para, iPara)
			if err != nil {
				return nil, err
			}
			if _, err := c.Invoke(pitf, "SetText", text); err != nil {
				return nil, err
			}
			if c.Method == "AddHeading" {
				_, err = c.Invoke(pitf, "Format", idl.IfacePtr(props), idl.IfacePtr(canvas))
			} else {
				_, err = c.Invoke(pitf, "FormatBody", idl.IfacePtr(canvas))
			}
			if err != nil {
				return nil, err
			}
			return []idl.Value{idl.Int32(1)}, nil
		case "Continue":
		default:
			return nil, fmt.Errorf("PageFrame: bad method %s", c.Method)
		}
		reader := c.Args[0].Iface.(*com.Interface)
		props := c.Args[1].Iface.(*com.Interface)
		canvas := c.Args[2].Iface.(*com.Interface)
		page := int(c.Args[3].AsInt())
		last := int(c.Args[4].AsInt())

		if _, err := c.Invoke(reader, "PageContent", idl.Int32(int32(page))); err != nil {
			return nil, err
		}
		// Heading and body paragraphs come from distinct layout paths and
		// behave differently: headings interrogate the properties
		// component, body text renders with cached defaults. The
		// static-type classifier cannot separate them — one of the ways
		// coarse classifiers lose correlation (paper Table 2).
		self, err := c.Env.Query(c.Self, iPage)
		if err != nil {
			return nil, err
		}
		created := 1
		for i := 0; i < parasPerPage; i++ {
			method := "AddBody"
			if i%7 == 0 {
				method = "AddHeading"
			}
			out, err := c.Invoke(self, method,
				idl.IfacePtr(props), idl.IfacePtr(canvas),
				idl.ByteBuf(make([]byte, pageContentBytes/parasPerPage)))
			if err != nil {
				return nil, err
			}
			created += int(out[0].AsInt())
		}
		if page+1 < last {
			next, err := c.Create("CLSID_PageFrame")
			if err != nil {
				return nil, err
			}
			nitf, err := c.Env.Query(next, iPage)
			if err != nil {
				return nil, err
			}
			out, err := c.Invoke(nitf, "Continue",
				idl.IfacePtr(reader), idl.IfacePtr(props), idl.IfacePtr(canvas),
				idl.Int32(int32(page+1)), idl.Int32(int32(last)))
			if err != nil {
				return nil, err
			}
			created += int(out[0].AsInt())
		}
		return []idl.Value{idl.Int32(int32(created))}, nil
	})
}

// newDocManager opens documents through one handler per document type, so
// readers for different document types have distinguishable classifications
// — which is what lets Coign place a table-document reader differently
// from a template reader within one distribution.
func newDocManager() com.Object {
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
		kind, ok := docOpenMethods[c.Method]
		if !ok {
			return nil, fmt.Errorf("DocManager: bad method %s", c.Method)
		}
		pages := c.Args[0]
		frame := c.Args[1]
		reader, err := c.Create("CLSID_DocReader")
		if err != nil {
			return nil, err
		}
		ritf, err := c.Env.Query(reader, iReader)
		if err != nil {
			return nil, err
		}
		if _, err := c.Invoke(ritf, "LoadDocument",
			idl.Int32(int32(kind)), pages, frame); err != nil {
			return nil, err
		}
		return []idl.Value{idl.IfacePtr(ritf)}, nil
	})
}
