package octarine

import (
	"fmt"

	"repro/internal/com"
)

// annotateActivations attaches the static activation-site metadata the
// binary rewriter embeds as relocation records (and the reachability
// analysis recovers). Each class lists every CLSID its code can mention in
// an instantiation request, including requests it routes through the
// generic widget factory: the factory computes its targets from data, so
// the mention belongs to the requesting class, and the factory itself is
// marked DynamicActivation so observed activations are attributed to the
// innermost non-factory frame of the call path.
//
// Classes absent from the table activate nothing. Registered classes no
// annotated class mentions (the latent text filters, ChordSymbol, the
// dormant print/macro services) are statically unreachable, mirroring
// binaries that ship code no scenario can reach.
func annotateActivations(r *com.ClassRegistry) {
	set := func(name string, targets ...com.CLSID) {
		r.LookupName(name).Activations = targets
	}

	// Generic construction services: targets are data, not code.
	r.LookupName("WidgetFactory").DynamicActivation = true
	r.LookupName("ControlKit").DynamicActivation = true

	// GUI swarm. AppFrame.Init builds the construction services, the menu
	// bar, the fixtures, the singleton widgets, and the chrome.
	frame := []com.CLSID{
		"CLSID_WidgetFactory", "CLSID_ControlKit", "CLSID_MenuBar",
		"CLSID_Toolbar", "CLSID_Palette", "CLSID_DialogPane",
	}
	for _, leaf := range guiLeafSingles {
		frame = append(frame, com.CLSID("CLSID_"+leaf))
	}
	for _, c := range chromeCLSIDs() {
		frame = append(frame, c)
	}
	set("AppFrame", frame...)
	set("MenuBar", "CLSID_Menu")
	set("Menu", "CLSID_MenuItem")        // via the widget factory
	set("Toolbar", "CLSID_ToolButton")   // via the widget factory
	set("Palette", "CLSID_Swatch")       // via the widget factory
	set("DialogPane", "CLSID_DialogCtl") // via control kit and factory

	// Text engine.
	set("DocManager", "CLSID_DocReader")
	set("DocReader", "CLSID_FileStore", "CLSID_TextProps")
	set("TextFlow",
		"CLSID_LineBreaker", "CLSID_FontMetrics", "CLSID_SpellScan",
		"CLSID_UndoLog", "CLSID_ClipFormat", "CLSID_PageFrame",
		// Mixed documents embed tables and negotiate page placement.
		"CLSID_TableModel", "CLSID_PagePlanner")
	set("PageFrame", "CLSID_Paragraph", "CLSID_PageFrame")

	// Table engine.
	set("TableModel", "CLSID_TableCell", "CLSID_ColumnSizer", "CLSID_RowBalancer")
	set("PagePlanner", "CLSID_TextNegotiator", "CLSID_TableNegotiator")

	// Music engine.
	set("MusicModel", "CLSID_MusicLayout", "CLSID_Clef", "CLSID_Dynamics", "CLSID_Staff")
	set("Staff", "CLSID_Measure", "CLSID_NoteRun", "CLSID_BeamGroup", "CLSID_Lyric")
}

// mainActivations lists the CLSIDs the main program itself instantiates:
// the frame during GUI construction and the per-document-type models of
// the scenario drivers.
func mainActivations() []com.CLSID {
	return []com.CLSID{
		"CLSID_AppFrame", "CLSID_DocManager", "CLSID_TextFlow",
		"CLSID_TableModel", "CLSID_MusicModel",
	}
}

// chromeCLSIDs enumerates the decorative chrome classes.
func chromeCLSIDs() []com.CLSID {
	out := make([]com.CLSID, 0, chromeClassCount)
	for i := 0; i < chromeClassCount; i++ {
		out = append(out, com.CLSID(fmt.Sprintf("CLSID_Chrome%02d", i)))
	}
	return out
}
