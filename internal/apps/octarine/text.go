package octarine

import (
	"fmt"
	"time"

	"repro/internal/com"
	"repro/internal/idl"
)

// Document kinds handled by the DocReader.
const (
	kindTemplate = 0
	kindText     = 1
	kindTable    = 2
	kindMusic    = 3
	kindMixed    = 4
)

// pageContentBytes is the parsed page delivered to layout: raw text plus
// expanded formatting objects, slightly larger than the on-disk form.
// Because delivered content exceeds the raw read, moving the reader to the
// server does not pay off until the document is much larger than the
// render window — which is why small text documents keep the default
// distribution (paper Table 4: 0% savings for o_oldwp0/o_oldwp3) while
// large ones move the reader and the text-properties component (Figure 5).
const pageContentBytes = 130 << 10

// readChunkBytes is the store's read granularity: two chunks per page.
const readChunkBytes = pageBytes / 2

// cellContentBytes is the rendered cell payload per table page: dense
// tables deliver almost exactly their raw size, so the reader's move to
// the server saves only the parse margin (paper: 1% on o_oldtb0).
const cellContentBytes = cellsPerPage * 4900 // ≈ 86.1 KB, under pageBytes by the parse margin

func registerText(b *builder) {
	b.iface(&idl.InterfaceDesc{
		IID: iReader, Name: iReader, Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "LoadDocument", Params: []idl.ParamDesc{
				{Name: "kind", Dir: idl.In, Type: idl.TInt32},
				{Name: "pages", Dir: idl.In, Type: idl.TInt32},
				{Name: "frame", Dir: idl.In, Type: idl.InterfaceType(iFrame)},
			}, Result: idl.TInt32},
			{Name: "PageContent", Params: []idl.ParamDesc{{Name: "page", Dir: idl.In, Type: idl.TInt32}}, Result: idl.TBytes},
			{Name: "PageCells", Params: []idl.ParamDesc{{Name: "page", Dir: idl.In, Type: idl.TInt32}}, Result: idl.TBytes},
			{Name: "PageSummary", Params: []idl.ParamDesc{{Name: "page", Dir: idl.In, Type: idl.TInt32}}, Result: idl.TBytes},
			{Name: "GetRun", Params: []idl.ParamDesc{
				{Name: "off", Dir: idl.In, Type: idl.TInt32},
				{Name: "n", Dir: idl.In, Type: idl.TInt32},
			}, Result: idl.TBytes},
			{Name: "GetProps", Result: idl.InterfaceType(iProps)},
		},
	})
	b.iface(&idl.InterfaceDesc{
		IID: iProps, Name: iProps, Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "PutRuns", Params: []idl.ParamDesc{{Name: "runs", Dir: idl.In, Type: idl.TBytes}}, Result: idl.TInt32},
			{Name: "Query", Cacheable: true,
				Params: []idl.ParamDesc{{Name: "para", Dir: idl.In, Type: idl.TInt32}},
				Result: idl.Struct("ParaProps",
					idl.Field("font", idl.TInt32),
					idl.Field("spacing", idl.TInt32),
					idl.Field("leading", idl.TFloat64))},
		},
	})
	b.iface(&idl.InterfaceDesc{
		IID: iFlow, Name: iFlow, Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "LayoutText", Params: []idl.ParamDesc{
				{Name: "reader", Dir: idl.In, Type: idl.InterfaceType(iReader)},
				{Name: "canvas", Dir: idl.In, Type: idl.InterfaceType(iWidget)},
				{Name: "pages", Dir: idl.In, Type: idl.TInt32},
			}, Result: idl.TInt32},
			{Name: "LayoutMixed", Params: []idl.ParamDesc{
				{Name: "reader", Dir: idl.In, Type: idl.InterfaceType(iReader)},
				{Name: "canvas", Dir: idl.In, Type: idl.InterfaceType(iWidget)},
				{Name: "pages", Dir: idl.In, Type: idl.TInt32},
				{Name: "tables", Dir: idl.In, Type: idl.TInt32},
			}, Result: idl.TInt32},
		},
	})
	b.iface(&idl.InterfaceDesc{
		IID: iPara, Name: iPara, Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "SetText", Params: []idl.ParamDesc{{Name: "text", Dir: idl.In, Type: idl.TBytes}}, Result: idl.TInt32},
			{Name: "Format", Params: []idl.ParamDesc{
				{Name: "props", Dir: idl.In, Type: idl.InterfaceType(iProps)},
				{Name: "canvas", Dir: idl.In, Type: idl.InterfaceType(iWidget)},
			}, Result: idl.TInt32},
			{Name: "FormatBody", Params: []idl.ParamDesc{
				{Name: "canvas", Dir: idl.In, Type: idl.InterfaceType(iWidget)},
			}, Result: idl.TInt32},
		},
	})

	b.class("DocReader", []string{iReader}, nil, 64<<10, newDocReader)
	b.class("DocManager", []string{iDocMgr}, nil, 24<<10, newDocManager)
	b.class("PageFrame", []string{iPage}, nil, 10<<10, newPageFrame)
	b.class("TextProps", []string{iProps}, nil, 32<<10, newTextProps)
	b.class("TextFlow", []string{iFlow}, nil, 48<<10, newTextFlow)
	b.class("Paragraph", []string{iPara}, nil, 8<<10, newParagraph)

	// Small text-service singletons the flow consults; they exist to give
	// the class registry the breadth of the real application.
	for _, svc := range []string{"LineBreaker", "FontMetrics", "SpellScan", "UndoLog", "ClipFormat"} {
		b.class(svc, []string{iProps}, nil, 12<<10, newTextProps)
	}
	// Latent import/export filter classes: registered, rarely
	// instantiated, mirroring Octarine's long tail of component classes.
	for i := 0; i < 35; i++ {
		b.class(fmt.Sprintf("Filter%02d", i), []string{iPara}, nil, 4<<10, newParagraph)
	}
	for _, latent := range []string{"PrintDriver", "PageSetup", "MacroEngine",
		"ThesaurusSvc", "AutoCorrect", "StyleGallery", "Bookmarks", "FieldCodes"} {
		b.class(latent, []string{iProps}, nil, 10<<10, newTextProps)
	}
}

// newDocReader is the document reader: it streams the raw document from
// server-side storage, feeds style runs to the text-properties component,
// and serves parsed content. It does not cache: GetRun re-reads from
// storage, which is what makes the page-placement negotiation expensive in
// the default distribution.
func newDocReader() com.Object {
	var store *com.Interface
	var props *com.Interface
	kind := kindTemplate
	pages := 0
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
		switch c.Method {
		case "LoadDocument":
			kind = int(c.Args[0].AsInt())
			pages = int(c.Args[1].AsInt())
			frame, _ := c.Args[2].Iface.(*com.Interface)
			if store == nil {
				st, err := c.Create("CLSID_FileStore")
				if err != nil {
					return nil, err
				}
				store, err = c.Env.Query(st, iStore)
				if err != nil {
					return nil, err
				}
			}
			if _, err := c.Invoke(store, "Open", idl.String("document.oct")); err != nil {
				return nil, err
			}
			needsProps := kind == kindText || kind == kindMixed
			if needsProps && props == nil {
				tp, err := c.Create("CLSID_TextProps")
				if err != nil {
					return nil, err
				}
				props, err = c.Env.Query(tp, iProps)
				if err != nil {
					return nil, err
				}
			}
			for p := 0; p < pages; p++ {
				// The store serves fixed-size chunks; a page is two reads.
				for off := 0; off < pageBytes; off += readChunkBytes {
					if _, err := c.Invoke(store, "ReadRange",
						idl.Int32(int32(p*pageBytes+off)), idl.Int32(readChunkBytes)); err != nil {
						return nil, err
					}
				}
				if kind == kindTable {
					c.Compute(costScanPage)
				} else {
					c.Compute(costParsePage)
				}
				if needsProps {
					if _, err := c.Invoke(props, "PutRuns",
						idl.ByteBuf(make([]byte, styleRunBytes))); err != nil {
						return nil, err
					}
				}
				if frame != nil && p%4 == 0 {
					if _, err := c.Invoke(frame, "Status",
						idl.String(fmt.Sprintf("loading page %d", p))); err != nil {
						return nil, err
					}
				}
			}
			return []idl.Value{idl.Int32(int32(pages))}, nil

		case "PageContent":
			c.Compute(costParsePage / 8)
			return []idl.Value{idl.ByteBuf(make([]byte, pageContentBytes))}, nil

		case "PageCells":
			c.Compute(costParsePage / 8)
			return []idl.Value{idl.ByteBuf(make([]byte, cellContentBytes))}, nil

		case "PageSummary":
			c.Compute(costParsePage / 64)
			return []idl.Value{idl.ByteBuf(make([]byte, summaryBytes))}, nil

		case "GetRun":
			if store == nil {
				return nil, fmt.Errorf("DocReader: GetRun before LoadDocument")
			}
			n := int(c.Args[1].AsInt())
			out, err := c.Invoke(store, "ReadRange", c.Args[0], c.Args[1])
			if err != nil {
				return nil, err
			}
			c.Compute(2 * time.Millisecond)
			_ = out
			return []idl.Value{idl.ByteBuf(make([]byte, n))}, nil

		case "GetProps":
			if props == nil {
				return nil, fmt.Errorf("DocReader: document has no text properties")
			}
			return []idl.Value{idl.IfacePtr(props)}, nil
		}
		return nil, fmt.Errorf("DocReader: bad method %s", c.Method)
	})
}

// newTextProps summarizes style runs and answers small property queries.
func newTextProps() com.Object {
	runs := 0
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
		switch c.Method {
		case "PutRuns":
			runs += len(c.Args[0].Bytes)
			c.Compute(costProps)
			return []idl.Value{idl.Int32(int32(runs / 1024))}, nil
		case "Query":
			c.Compute(costProps / 4)
			pp := idl.Struct("ParaProps",
				idl.Field("font", idl.TInt32),
				idl.Field("spacing", idl.TInt32),
				idl.Field("leading", idl.TFloat64))
			return []idl.Value{idl.StructVal(pp,
				idl.Int32(int32(c.Args[0].AsInt())%7), idl.Int32(12), idl.Float64(1.2))}, nil
		}
		return nil, fmt.Errorf("TextProps: bad method %s", c.Method)
	})
}

// newTextFlow lays out the rendered window of a document, creating one
// Paragraph per text block and consulting the text services.
func newTextFlow() com.Object {
	servicesBuilt := false
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
		buildServices := func() error {
			if servicesBuilt {
				return nil
			}
			servicesBuilt = true
			for _, svc := range []string{"LineBreaker", "FontMetrics", "SpellScan", "UndoLog", "ClipFormat"} {
				inst, err := c.Create(com.CLSID("CLSID_" + svc))
				if err != nil {
					return err
				}
				itf, err := c.Env.Query(inst, iProps)
				if err != nil {
					return err
				}
				if _, err := c.Invoke(itf, "Query", idl.Int32(0)); err != nil {
					return err
				}
			}
			return nil
		}
		layoutTextPages := func(reader, canvas *com.Interface, pages, view int) error {
			props, err := c.Invoke(reader, "GetProps")
			if err != nil {
				return err
			}
			propsItf := props[0].Iface.(*com.Interface)
			// The flow paints page frames and scroll state directly
			// through the device context, which ties it (and the text
			// services it owns) to the display: only the reader and the
			// properties component are free to move (paper Figure 5).
			if _, err := c.Invoke(canvas, "Render", idl.OpaquePtr("hdc")); err != nil {
				return err
			}
			// Pages chain: each page frame lays out its paragraphs and
			// creates the next frame, so per-page components carry
			// lineage-specific call-chain contexts.
			if view > 0 {
				first, err := c.Create("CLSID_PageFrame")
				if err != nil {
					return err
				}
				fitf, err := c.Env.Query(first, iPage)
				if err != nil {
					return err
				}
				if _, err := c.Invoke(fitf, "Continue",
					idl.IfacePtr(reader), idl.IfacePtr(propsItf), idl.IfacePtr(canvas),
					idl.Int32(0), idl.Int32(int32(view))); err != nil {
					return err
				}
			}
			for p := view; p < pages; p++ {
				if _, err := c.Invoke(reader, "PageSummary", idl.Int32(int32(p))); err != nil {
					return err
				}
			}
			return nil
		}

		switch c.Method {
		case "LayoutText":
			reader := c.Args[0].Iface.(*com.Interface)
			canvas := c.Args[1].Iface.(*com.Interface)
			pages := int(c.Args[2].AsInt())
			if err := buildServices(); err != nil {
				return nil, err
			}
			view := pages
			if view > viewWindowWP {
				view = viewWindowWP
			}
			if err := layoutTextPages(reader, canvas, pages, view); err != nil {
				return nil, err
			}
			return []idl.Value{idl.Int32(int32(view))}, nil

		case "LayoutMixed":
			reader := c.Args[0].Iface.(*com.Interface)
			canvas := c.Args[1].Iface.(*com.Interface)
			pages := int(c.Args[2].AsInt())
			tables := int(c.Args[3].AsInt())
			if err := buildServices(); err != nil {
				return nil, err
			}
			view := pages
			if view > viewWindowWP {
				view = viewWindowWP
			}
			if err := layoutTextPages(reader, canvas, pages, view); err != nil {
				return nil, err
			}
			// Embedded tables render through the table engine.
			if err := layoutEmbeddedTables(c, reader, canvas, tables); err != nil {
				return nil, err
			}
			// Page placement must now be negotiated between the table and
			// text components.
			if err := negotiatePlacement(c, reader, pages); err != nil {
				return nil, err
			}
			return []idl.Value{idl.Int32(int32(view))}, nil
		}
		return nil, fmt.Errorf("TextFlow: bad method %s", c.Method)
	})
}

// newParagraph holds one text block, consults the properties component,
// and renders through the opaque device context (pinning it with the GUI).
func newParagraph() com.Object {
	textLen := 0
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
		switch c.Method {
		case "SetText":
			textLen = len(c.Args[0].Bytes)
			c.Compute(costLayoutPara / 2)
			return []idl.Value{idl.Int32(int32(textLen))}, nil
		case "Format":
			props := c.Args[0].Iface.(*com.Interface)
			canvas := c.Args[1].Iface.(*com.Interface)
			for q := 0; q < 3; q++ {
				if _, err := c.Invoke(props, "Query", idl.Int32(int32(q))); err != nil {
					return nil, err
				}
			}
			c.Compute(costLayoutPara)
			if _, err := c.Invoke(canvas, "Render", idl.OpaquePtr("hdc")); err != nil {
				return nil, err
			}
			return []idl.Value{idl.Int32(int32(textLen))}, nil
		case "FormatBody":
			canvas := c.Args[0].Iface.(*com.Interface)
			c.Compute(costLayoutPara)
			if _, err := c.Invoke(canvas, "Render", idl.OpaquePtr("hdc")); err != nil {
				return nil, err
			}
			return []idl.Value{idl.Int32(int32(textLen))}, nil
		}
		return nil, fmt.Errorf("Paragraph: bad method %s", c.Method)
	})
}

// --- text scenarios ---

func (s *session) openReader(kind, pages int) (*com.Interface, error) {
	if s.docmgr == nil {
		dm, err := s.create("CLSID_DocManager")
		if err != nil {
			return nil, err
		}
		s.docmgr, err = s.env.Query(dm, iDocMgr)
		if err != nil {
			return nil, err
		}
	}
	var method string
	for m, k := range docOpenMethods {
		if k == kind {
			method = m
		}
	}
	out, err := s.call(s.docmgr, method,
		idl.Int32(int32(pages)), idl.IfacePtr(s.frameCtl))
	if err != nil {
		return nil, err
	}
	return out[0].Iface.(*com.Interface), nil
}

// newTextDocument creates a fresh text document from the application
// template: the template is read from storage and its content delivered to
// a one-page layout.
func (s *session) newTextDocument() error {
	ritf, err := s.openReader(kindText, 2) // template: two pages of styles
	if err != nil {
		return err
	}
	flow, err := s.create("CLSID_TextFlow")
	if err != nil {
		return err
	}
	fitf, err := s.env.Query(flow, iFlow)
	if err != nil {
		return err
	}
	_, err = s.call(fitf, "LayoutText",
		idl.IfacePtr(ritf), idl.IfacePtr(s.canvas), idl.Int32(2))
	return err
}

// viewTextDocument opens and renders a text-only document of the given
// page count.
func (s *session) viewTextDocument(pages int) error {
	ritf, err := s.openReader(kindText, pages)
	if err != nil {
		return err
	}
	flow, err := s.create("CLSID_TextFlow")
	if err != nil {
		return err
	}
	fitf, err := s.env.Query(flow, iFlow)
	if err != nil {
		return err
	}
	_, err = s.call(fitf, "LayoutText",
		idl.IfacePtr(ritf), idl.IfacePtr(s.canvas), idl.Int32(int32(pages)))
	return err
}

// viewMixedDocument opens a text document with embedded tables.
func (s *session) viewMixedDocument(pages, tables int) error {
	ritf, err := s.openReader(kindMixed, pages)
	if err != nil {
		return err
	}
	flow, err := s.create("CLSID_TextFlow")
	if err != nil {
		return err
	}
	fitf, err := s.env.Query(flow, iFlow)
	if err != nil {
		return err
	}
	_, err = s.call(fitf, "LayoutMixed",
		idl.IfacePtr(ritf), idl.IfacePtr(s.canvas),
		idl.Int32(int32(pages)), idl.Int32(int32(tables)))
	return err
}
