// Package octarine reconstructs the Octarine word processor of the
// paper's application suite: a component-granularity experiment from
// Microsoft Research with roughly 150 component classes ranging from
// user-interface buttons to sheet-music editors. Octarine manipulates
// three document types — word-processing text, sheet music, and tables —
// and fragments of all three can be combined in one document.
//
// The reconstruction reproduces the structural properties the Coign
// pipeline sees:
//
//   - a GUI composed of literally hundreds of component instances,
//     interconnected by non-remotable interfaces (opaque HDC-style
//     handles), which pins the entire display swarm to the client;
//   - a document reader that streams the raw document from server-side
//     storage and re-reads ranges on demand (it does not cache);
//   - a text-properties component fed bulk style runs by the reader and
//     queried with small requests by everyone else;
//   - layout that renders only a bounded window of pages, so big
//     documents move the reader (and friends) to the server while small
//     documents leave the default distribution optimal;
//   - the page-placement negotiation between table and text components
//     for mixed documents: many negotiator instances exchanging medium
//     messages with the reader and one another, with minimal output to
//     the rest of the application (paper Figure 8).
package octarine

import (
	"fmt"

	"repro/internal/com"
	"repro/internal/idl"
)

// Scenario names (paper Table 1).
const (
	ScenNewDoc = "o_newdoc"
	ScenNewMus = "o_newmus"
	ScenNewTbl = "o_newtbl"
	ScenOldTb0 = "o_oldtb0"
	ScenOldTb3 = "o_oldtb3"
	ScenOldWp0 = "o_oldwp0"
	ScenOldWp3 = "o_oldwp3"
	ScenOldWp7 = "o_oldwp7"
	ScenOldBth = "o_oldbth"
	ScenOffTb3 = "o_offtb3"
	ScenOffWp7 = "o_offwp7"
	ScenBigone = "o_bigone"
)

// Scenarios lists Octarine's profiling scenarios in Table 1 order.
func Scenarios() []string {
	return []string{
		ScenNewDoc, ScenNewMus, ScenNewTbl,
		ScenOldTb0, ScenOldTb3,
		ScenOldWp0, ScenOldWp3, ScenOldWp7,
		ScenOldBth, ScenOffTb3, ScenOffWp7,
		ScenBigone,
	}
}

// ScenariosWithoutBigone lists the profiling set used to train classifiers
// before evaluating on the bigone synthesis (paper §4.2).
func ScenariosWithoutBigone() []string {
	all := Scenarios()
	return all[:len(all)-1]
}

// Document geometry per scenario.
const (
	wpPagesSmall = 5
	wpPagesMid   = 13
	wpPagesBig   = 208
	tbPagesSmall = 5
	tbPagesBig   = 150
	bthPages     = 5
	bthTables    = 10
)

// New assembles the Octarine application.
func New() *com.App {
	b := newBuilder("octarine")
	registerStorage(b)
	registerGUI(b)
	registerText(b)
	registerTable(b)
	registerMusic(b)
	registerChrome(b)
	annotateActivations(b.classes)

	app := &com.App{
		Name:            "octarine",
		Classes:         b.classes,
		Interfaces:      b.ifaces,
		Imports:         []string{"octarine.exe", "octui.dll", "octtext.dll", "octtbl.dll", "octmus.dll"},
		MainActivations: mainActivations(),
	}
	app.Main = runScenario
	return app
}

// runScenario drives one usage scenario.
func runScenario(env *com.Env, scenario string, seed int64) error {
	s := &session{env: env}
	if err := s.buildGUI(); err != nil {
		return err
	}
	run := func(name string) error {
		switch name {
		case ScenNewDoc:
			return s.newTextDocument()
		case ScenNewMus:
			return s.newMusicDocument()
		case ScenNewTbl:
			return s.newTableDocument()
		case ScenOldTb0:
			return s.viewTableDocument(tbPagesSmall)
		case ScenOldTb3:
			return s.viewTableDocument(tbPagesBig)
		case ScenOldWp0:
			return s.viewTextDocument(wpPagesSmall)
		case ScenOldWp3:
			return s.viewTextDocument(wpPagesMid)
		case ScenOldWp7:
			return s.viewTextDocument(wpPagesBig)
		case ScenOldBth:
			return s.viewMixedDocument(bthPages, bthTables)
		case ScenOffTb3:
			if err := s.newTextDocument(); err != nil {
				return err
			}
			return s.viewTableDocument(tbPagesBig)
		case ScenOffWp7:
			if err := s.newTextDocument(); err != nil {
				return err
			}
			return s.viewTextDocument(wpPagesBig)
		default:
			return fmt.Errorf("octarine: unknown scenario %q", name)
		}
	}
	if scenario == ScenBigone {
		// The synthesis of all other scenarios in one execution.
		for _, name := range ScenariosWithoutBigone() {
			if err := run(name); err != nil {
				return err
			}
		}
		return nil
	}
	return run(scenario)
}

// session holds the live component handles of one execution.
type session struct {
	env       *com.Env
	frame     *com.Instance
	frameCtl  *com.Interface
	statusbar *com.Interface
	canvas    *com.Interface
	canvasRaw *com.Instance
	docmgr    *com.Interface
}

// call is a helper for main-program invocations.
func (s *session) call(target *com.Interface, method string, args ...idl.Value) ([]idl.Value, error) {
	return s.env.Call(nil, target, method, args...)
}

// create instantiates from the main program.
func (s *session) create(clsid com.CLSID) (*com.Instance, error) {
	return s.env.CreateInstance(nil, clsid)
}
