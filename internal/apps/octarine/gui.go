package octarine

import (
	"fmt"
	"time"

	"repro/internal/com"
	"repro/internal/idl"
)

// builder accumulates an application's classes and interfaces.
type builder struct {
	app     string
	classes *com.ClassRegistry
	ifaces  *idl.Registry
}

func newBuilder(app string) *builder {
	return &builder{
		app:     app,
		classes: com.NewClassRegistry(),
		ifaces:  idl.NewRegistry(),
	}
}

func (b *builder) iface(d *idl.InterfaceDesc) { b.ifaces.Register(d) }

// class registers a component class.
func (b *builder) class(name string, ifaces, apis []string, code int, mk func() com.Object) *com.Class {
	c := &com.Class{
		ID:         com.CLSID("CLSID_" + name),
		Name:       name,
		Interfaces: ifaces,
		APIs:       apis,
		CodeBytes:  code,
		New:        mk,
	}
	b.classes.Register(c)
	return c
}

// Interface IDs.
const (
	iStore   = "IStore"
	iWidget  = "IWidget"
	iContain = "IContainer"
	iCanvas  = "ICanvas"
	iFrame   = "IFrame"
	iReader  = "IReader"
	iProps   = "ITextProps"
	iFlow    = "IFlow"
	iPara    = "IPara"
	iTable   = "ITableModel"
	iCell    = "ICell"
	iNegot   = "INegotiate"
	iPlanner = "IPlanner"
	iMusic   = "IMusicModel"
	iStaff   = "IStaff"
)

// Message sizing constants. These calibrate the reproduction to the
// paper's regime: ~90 KB of raw document per page, a bounded render
// window, and chatty-but-small GUI traffic.
const (
	pageBytes     = 90 << 10 // raw document bytes per page
	styleRunBytes = 24 << 10 // style-run bytes per page fed to ITextProps
	cellBytes     = 4 << 10  // rendered table cell payload
	runQueryBytes = 1536     // negotiation content re-read size
	proposalBytes = 2048     // negotiation proposal payload
	summaryBytes  = 200      // per-page placement summary
	parasPerPage  = 14
	cellsPerPage  = 18
	viewWindowWP  = 8 // text pages actually rendered
	viewWindowTB  = 5 // table pages actually rendered
	templateBytes = 150 << 10
)

// Compute costs (virtual CPU time on the 200 MHz-class reference machine).
const (
	costParsePage  = 90 * time.Millisecond
	costScanPage   = 300 * time.Millisecond // full-table column scan
	costLayoutPara = 25 * time.Millisecond
	costLayoutCell = 60 * time.Millisecond
	costWidget     = 1500 * time.Microsecond
	costNegotiate  = 45 * time.Millisecond
	costProps      = 4 * time.Millisecond
	costMusic      = 8 * time.Millisecond
)

// registerStorage defines the server-side file store: infrastructure with
// a fixed location, the reason data files always live on the server.
func registerStorage(b *builder) {
	b.iface(&idl.InterfaceDesc{
		IID: iStore, Name: iStore, Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Open", Params: []idl.ParamDesc{{Name: "name", Dir: idl.In, Type: idl.TString}}, Result: idl.TInt32},
			{Name: "ReadRange", Params: []idl.ParamDesc{
				{Name: "off", Dir: idl.In, Type: idl.TInt32},
				{Name: "n", Dir: idl.In, Type: idl.TInt32},
			}, Result: idl.TBytes},
		},
	})
	cls := b.class("FileStore", []string{iStore}, []string{com.APIFileRead, com.APIFileOpen}, 16<<10,
		func() com.Object {
			return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
				switch c.Method {
				case "Open":
					c.Compute(2 * time.Millisecond)
					return []idl.Value{idl.Int32(0)}, nil
				case "ReadRange":
					n := int(c.Args[1].AsInt())
					if n < 0 {
						n = 0
					}
					c.Compute(time.Duration(n/4096+1) * 400 * time.Microsecond)
					return []idl.Value{idl.ByteBuf(make([]byte, n))}, nil
				}
				return nil, fmt.Errorf("FileStore: bad method %s", c.Method)
			})
		})
	cls.Home = com.Server
	cls.Infrastructure = true
}

// GUI interfaces. IWidget.Render passes an opaque device-context handle,
// which makes every interface on which it travels non-remotable — the
// black lines of the paper's distribution figures. Populate asks a widget
// to create its children and returns the number of descendants created;
// only container widgets implement IContainer, whose PopulateVia routes
// child creation through a construction service (keeping the factory
// callback off the leaf widgets keeps the static interface-flow analysis
// from predicting factory edges for every leaf).
func registerGUIInterfaces(b *builder) {
	b.iface(&idl.InterfaceDesc{
		IID: iWidget, Name: iWidget, Remotable: false,
		Methods: []idl.MethodDesc{
			{Name: "Render", Params: []idl.ParamDesc{{Name: "dc", Dir: idl.In, Type: idl.TOpaque}}, Result: idl.TVoid},
			{Name: "Ping", Params: []idl.ParamDesc{{Name: "code", Dir: idl.In, Type: idl.TInt32}}, Result: idl.TInt32},
			{Name: "Populate", Result: idl.TInt32},
		},
	})
	b.iface(&idl.InterfaceDesc{
		IID: iContain, Name: iContain, Remotable: false,
		Methods: []idl.MethodDesc{
			{Name: "PopulateVia", Params: []idl.ParamDesc{
				{Name: "factory", Dir: idl.In, Type: idl.InterfaceType(iFactory)},
			}, Result: idl.TInt32},
		},
	})
	// The canvas is the shared rendering surface the document engines draw
	// on; the frame hands it out through a dedicated interface.
	b.iface(&idl.InterfaceDesc{
		IID: iCanvas, Name: iCanvas, Remotable: false,
		Methods: []idl.MethodDesc{
			{Name: "AcquireDC", Result: idl.TOpaque},
		},
	})
	// The widget factory is the shared construction service every fixture
	// routes child creation through. Because the factory is a singleton,
	// shallow stack walks see only its generic CreateWidget frame and lump
	// creations together; deeper walks recover the requesting fixture —
	// which is why classifier accuracy grows with stack depth (Table 3).
	b.iface(&idl.InterfaceDesc{
		IID: iFactory, Name: iFactory, Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "CreateWidget", Params: []idl.ParamDesc{
				{Name: "clsid", Dir: idl.In, Type: idl.TString},
			}, Result: idl.InterfaceType(iWidget)},
			{Name: "Bind", Params: []idl.ParamDesc{
				{Name: "next", Dir: idl.In, Type: idl.InterfaceType(iFactory)},
			}, Result: idl.TInt32},
		},
	})
	b.iface(&idl.InterfaceDesc{
		IID: iFrame, Name: iFrame, Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Init", Result: idl.TInt32},
			{Name: "GetCanvas", Result: idl.InterfaceType(iCanvas)},
			{Name: "AddChild", Params: []idl.ParamDesc{{Name: "w", Dir: idl.In, Type: idl.InterfaceType(iWidget)}}, Result: idl.TInt32},
			{Name: "Status", Params: []idl.ParamDesc{{Name: "msg", Dir: idl.In, Type: idl.TString}}, Result: idl.TVoid},
		},
	})
}

// widgetObject is the common leaf-widget behaviour: render to the parent's
// device context, answer pings, create nothing.
func widgetObject() com.Object {
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
		switch c.Method {
		case "Render":
			c.Compute(costWidget)
			return []idl.Value{}, nil
		case "Ping":
			c.Compute(costWidget / 4)
			return []idl.Value{idl.Int32(int32(c.Args[0].AsInt()))}, nil
		case "Populate":
			return []idl.Value{idl.Int32(0)}, nil
		case "AcquireDC":
			return []idl.Value{idl.OpaquePtr("hdc")}, nil
		}
		return nil, fmt.Errorf("widget: bad method %s", c.Method)
	})
}

// containerObject creates `count` children of childCLSID on PopulateVia,
// routing each creation through the shared widget factory.
func containerObject(childCLSID com.CLSID, count int) func() com.Object {
	return func() com.Object {
		return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
			switch c.Method {
			case "Render":
				c.Compute(costWidget)
				return []idl.Value{}, nil
			case "Ping":
				c.Compute(costWidget / 4)
				return []idl.Value{idl.Int32(int32(c.Args[0].AsInt()))}, nil
			case "Populate":
				return []idl.Value{idl.Int32(0)}, nil
			case "PopulateVia":
				factory := c.Args[0].Iface.(*com.Interface)
				for i := 0; i < count; i++ {
					if _, err := c.Invoke(factory, "CreateWidget",
						idl.String(string(childCLSID))); err != nil {
						return nil, err
					}
				}
				c.Compute(costWidget)
				return []idl.Value{idl.Int32(int32(count))}, nil
			}
			return nil, fmt.Errorf("container: bad method %s", c.Method)
		})
	}
}

// newWidgetFactory is the shared construction service: create the widget,
// render it, return its interface.
func newWidgetFactory() com.Object {
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
		switch c.Method {
		case "CreateWidget":
			inst, err := c.Create(com.CLSID(c.Args[0].AsString()))
			if err != nil {
				return nil, err
			}
			w, err := c.Env.Query(inst, iWidget)
			if err != nil {
				return nil, err
			}
			if _, err := c.Invoke(w, "Render", idl.OpaquePtr("hdc")); err != nil {
				return nil, err
			}
			c.Compute(costWidget / 4)
			return []idl.Value{idl.IfacePtr(w)}, nil
		case "Bind":
			return []idl.Value{idl.Int32(0)}, nil
		}
		return nil, fmt.Errorf("WidgetFactory: bad method %s", c.Method)
	})
}

// newControlKit is a second generic construction layer (dialog controls
// route dialog → kit → factory), pushing their discriminating context one
// stack frame deeper.
func newControlKit() com.Object {
	var next *com.Interface
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
		switch c.Method {
		case "Bind":
			next = c.Args[0].Iface.(*com.Interface)
			return []idl.Value{idl.Int32(1)}, nil
		case "CreateWidget":
			if next == nil {
				return nil, fmt.Errorf("ControlKit: CreateWidget before Bind")
			}
			return c.Invoke(next, "CreateWidget", c.Args[0])
		}
		return nil, fmt.Errorf("ControlKit: bad method %s", c.Method)
	})
}

var guiAPIs = []string{com.APIUserWindow, com.APIUserInput, com.APIGdiPaint}

var guiLeafSingles = []string{
	"StatusBar", "Ruler", "ScrollBar", "FontList", "ColorWell", "Canvas",
}

// registerGUI defines Octarine's structured GUI classes.
func registerGUI(b *builder) {
	registerGUIInterfaces(b)
	registerCraftInterfaces(b)

	// Containers and their broods. The menu system builds through
	// per-menu and per-entry handlers (see craft.go) so classifiers see
	// distinct call chains.
	b.class("MenuBar", []string{iWidget, iContain, iMenuCraft}, guiAPIs, 24<<10, newMenuBar)
	b.class("Menu", []string{iWidget, iContain, iMenuAdd}, guiAPIs, 12<<10, newMenu)
	b.class("MenuItem", []string{iWidget}, guiAPIs, 3<<10, widgetObject)
	b.class("Toolbar", []string{iWidget, iContain}, guiAPIs, 24<<10, containerObject("CLSID_ToolButton", 18))
	b.class("ToolButton", []string{iWidget}, guiAPIs, 4<<10, widgetObject)
	b.class("Palette", []string{iWidget, iContain}, guiAPIs, 16<<10, containerObject("CLSID_Swatch", 10))
	b.class("Swatch", []string{iWidget}, guiAPIs, 2<<10, widgetObject)
	b.class("DialogPane", []string{iWidget, iContain}, guiAPIs, 20<<10, containerObject("CLSID_DialogCtl", 8))
	b.class("DialogCtl", []string{iWidget}, guiAPIs, 5<<10, widgetObject)
	b.class("WidgetFactory", []string{iFactory}, guiAPIs, 18<<10, newWidgetFactory)
	b.class("ControlKit", []string{iFactory}, guiAPIs, 12<<10, newControlKit)
	for _, leaf := range guiLeafSingles {
		ifaces := []string{iWidget}
		if leaf == "Canvas" {
			ifaces = []string{iWidget, iCanvas}
		}
		b.class(leaf, ifaces, guiAPIs, 8<<10, widgetObject)
	}

	// AppFrame builds the whole display swarm in its Init method, routing
	// each fixture through its own construction handler.
	b.class("AppFrame", []string{iFrame, iWidget, iFrameCraft}, guiAPIs, 96<<10, func() com.Object {
		children := 0
		var factory, kit, canvas *com.Interface
		return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
			switch c.Method {
			case "Init":
				c.Compute(5 * time.Millisecond)
				// The construction services come first: the shared widget
				// factory and the dialog control kit layered on top of it.
				f, err := c.Create("CLSID_WidgetFactory")
				if err != nil {
					return nil, err
				}
				if factory, err = c.Env.Query(f, iFactory); err != nil {
					return nil, err
				}
				k, err := c.Create("CLSID_ControlKit")
				if err != nil {
					return nil, err
				}
				if kit, err = c.Env.Query(k, iFactory); err != nil {
					return nil, err
				}
				if _, err := c.Invoke(kit, "Bind", idl.IfacePtr(factory)); err != nil {
					return nil, err
				}
				n, cv, err := buildFrameContents(c, factory)
				if err != nil {
					return nil, err
				}
				canvas = cv
				children = n + 2
				return []idl.Value{idl.Int32(int32(n))}, nil
			case "GetCanvas":
				if canvas == nil {
					return nil, fmt.Errorf("AppFrame: GetCanvas before Init")
				}
				return []idl.Value{idl.IfacePtr(canvas)}, nil
			case "AddChild":
				children++
				c.Compute(costWidget / 8)
				return []idl.Value{idl.Int32(int32(children))}, nil
			case "Status":
				c.Compute(costWidget / 8)
				return []idl.Value{}, nil
			case "Render":
				c.Compute(costWidget)
				return []idl.Value{}, nil
			case "Ping", "Populate":
				return []idl.Value{idl.Int32(0)}, nil
			}
			if clsid, ok := frameCraftTargets[c.Method]; ok {
				// Dialogs assemble their controls through the control kit;
				// toolbars and palettes go straight to the factory.
				via := factory
				if clsid == "CLSID_DialogPane" {
					via = kit
				}
				n, err := craftFixture(c, clsid, via)
				if err != nil {
					return nil, err
				}
				children += n
				return []idl.Value{idl.Int32(int32(n))}, nil
			}
			return nil, fmt.Errorf("AppFrame: bad method %s", c.Method)
		})
	})
}

// chromeClassCount decorative widget classes pad Octarine's class count to
// the paper's ~150 and its GUI to hundreds of instances.
const chromeClassCount = 60

func registerChrome(b *builder) {
	for i := 0; i < chromeClassCount; i++ {
		b.class(fmt.Sprintf("Chrome%02d", i), []string{iWidget}, guiAPIs, 2<<10, widgetObject)
	}
}

// buildFrameContents is AppFrame.Init: create the menu system, toolbars,
// palettes, dialogs, singleton widgets, and chrome. Returns the number of
// widgets created (excluding the frame itself and construction services)
// and the canvas handle the frame hands out through GetCanvas.
func buildFrameContents(c *com.Call, factory *com.Interface) (int, *com.Interface, error) {
	total := 0
	var canvas *com.Interface
	mk := func(clsid com.CLSID) error {
		inst, err := c.Create(clsid)
		if err != nil {
			return err
		}
		total++
		w, err := c.Env.Query(inst, iWidget)
		if err != nil {
			return err
		}
		if clsid == "CLSID_Canvas" {
			if canvas, err = c.Env.Query(inst, iCanvas); err != nil {
				return err
			}
		}
		if _, err := c.Invoke(w, "Render", idl.OpaquePtr("hdc")); err != nil {
			return err
		}
		out, err := c.Invoke(w, "Populate")
		if err != nil {
			return err
		}
		total += int(out[0].AsInt())
		return nil
	}

	// The menu bar builds its menus through per-menu handlers; the menus
	// create their items through the shared factory.
	bar, err := c.Create("CLSID_MenuBar")
	if err != nil {
		return 0, nil, err
	}
	total++
	barW, err := c.Env.Query(bar, iWidget)
	if err != nil {
		return 0, nil, err
	}
	if _, err := c.Invoke(barW, "Render", idl.OpaquePtr("hdc")); err != nil {
		return 0, nil, err
	}
	barC, err := c.Env.Query(bar, iContain)
	if err != nil {
		return 0, nil, err
	}
	out, err := c.Invoke(barC, "PopulateVia", idl.IfacePtr(factory))
	if err != nil {
		return 0, nil, err
	}
	total += int(out[0].AsInt()) // 9 + 126
	// Toolbars, palettes, and dialogs each come from their own
	// construction handler on the frame (4*(1+18) + 2*(1+10) + 6*(1+8)).
	self, err := c.Env.Query(c.Self, iFrameCraft)
	if err != nil {
		return 0, nil, err
	}
	for _, m := range frameCraftMethods {
		out, err := c.Invoke(self, m)
		if err != nil {
			return 0, nil, err
		}
		total += int(out[0].AsInt())
	}
	for _, leaf := range guiLeafSingles {
		n := 1
		switch leaf {
		case "Ruler", "ScrollBar":
			n = 2
		case "ColorWell":
			n = 15
		}
		for i := 0; i < n; i++ {
			if err := mk(com.CLSID("CLSID_" + leaf)); err != nil {
				return 0, nil, err
			}
		}
	}
	for i := 0; i < chromeClassCount; i++ {
		if err := mk(com.CLSID(fmt.Sprintf("CLSID_Chrome%02d", i))); err != nil {
			return 0, nil, err
		}
	}
	// One chrome class gets a second instance to fill out the swarm.
	for i := 0; i < 1; i++ {
		if err := mk(com.CLSID(fmt.Sprintf("CLSID_Chrome%02d", i))); err != nil {
			return 0, nil, err
		}
	}
	return total, canvas, nil
}

// craftFixture builds one frame fixture: create, render, populate its
// children through the given construction service.
func craftFixture(c *com.Call, clsid com.CLSID, via *com.Interface) (int, error) {
	inst, err := c.Create(clsid)
	if err != nil {
		return 0, err
	}
	w, err := c.Env.Query(inst, iWidget)
	if err != nil {
		return 0, err
	}
	if _, err := c.Invoke(w, "Render", idl.OpaquePtr("hdc")); err != nil {
		return 0, err
	}
	cn, err := c.Env.Query(inst, iContain)
	if err != nil {
		return 0, err
	}
	out, err := c.Invoke(cn, "PopulateVia", idl.IfacePtr(via))
	if err != nil {
		return 0, err
	}
	return 1 + int(out[0].AsInt()), nil
}

// buildGUI creates the application frame and populates the display.
func (s *session) buildGUI() error {
	frame, err := s.create("CLSID_AppFrame")
	if err != nil {
		return err
	}
	s.frame = frame
	s.frameCtl, err = s.env.Query(frame, iFrame)
	if err != nil {
		return err
	}
	if _, err := s.call(s.frameCtl, "Init"); err != nil {
		return err
	}
	// The frame hands out the shared rendering canvas; the status bar is
	// located by instance enumeration (it is never called from here).
	out, err := s.call(s.frameCtl, "GetCanvas")
	if err != nil {
		return err
	}
	cv := out[0].Iface.(*com.Interface)
	s.canvasRaw = cv.Instance()
	s.canvas, err = s.env.Query(s.canvasRaw, iWidget)
	if err != nil {
		return err
	}
	for _, in := range s.env.Instances() {
		if in.Class.Name == "StatusBar" {
			s.statusbar, err = s.env.Query(in, iWidget)
			if err != nil {
				return err
			}
		}
	}
	if s.canvas == nil || s.statusbar == nil {
		return fmt.Errorf("octarine: GUI did not produce canvas and status bar")
	}
	return nil
}
