package photodraw

import (
	"testing"

	"repro/internal/com"
)

// TestEveryDispatcherRejectsUnknownMethods drives each component class's
// dispatcher with a method no interface declares: every object must return
// an error rather than panic or silently succeed — the behaviour a COM
// server exhibits for an unknown vtable slot.
func TestEveryDispatcherRejectsUnknownMethods(t *testing.T) {
	t.Parallel()
	app := New()
	env := com.NewEnv(app)
	for _, cls := range app.Classes.Classes() {
		obj := cls.New()
		if obj == nil {
			t.Fatalf("%s: nil object", cls.Name)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%s: dispatcher panicked on unknown method: %v", cls.Name, r)
				}
			}()
			out, err := obj.Invoke(&com.Call{
				Method: "__no_such_method__",
				Env:    env,
			})
			if err == nil {
				t.Errorf("%s: unknown method accepted (returned %v)", cls.Name, out)
			}
		}()
	}
}
