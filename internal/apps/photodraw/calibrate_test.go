package photodraw

import (
	"context"
	"testing"

	"repro/internal/core"
)

// TestCalibrationPrintout runs every scenario through the full pipeline;
// run with -v to inspect the Table 4/5 shaped numbers.
func TestCalibrationPrintout(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("calibration printout")
	}
	app := New()
	t.Logf("classes: %d", app.Classes.Len())
	adps := core.New(app)
	for _, scen := range Scenarios() {
		rep, err := adps.ScenarioExperiment(context.Background(), scen)
		if err != nil {
			t.Fatalf("%s: %v", scen, err)
		}
		t.Logf("%-10s inst=%4d srv=%3d defComm=%8.3fs coignComm=%8.3fs save=%4.0f%% predExec=%8.1fs measExec=%8.1fs err=%+5.1f%%",
			scen, rep.TotalInstances, rep.ServerInstances,
			rep.DefaultComm.Seconds(), rep.CoignComm.Seconds(), rep.Savings*100,
			rep.PredictedExec.Seconds(), rep.MeasuredExec.Seconds(), rep.PredictionErr*100)
	}
}
