// Package photodraw reconstructs Microsoft PhotoDraw 2000 from the
// paper's application suite: a consumer image-composition application of
// roughly 112 COM component classes in 1.8 million lines of C++.
//
// The properties the Coign pipeline sees, reproduced here:
//
//   - sprite caches manage the pixels of hierarchical subsets of the
//     composition; most of their data moves through shared-memory regions
//     whose pointers pass opaquely through non-distributable interfaces,
//     welding the sprite mesh to the client-side UI (the ~50 black
//     interfaces of paper Figure 4);
//   - the composition reader streams the document from server storage and
//     fans it out: bulk pixel streams to the sprite caches (which must
//     reach the display no matter what) and property blobs to seven
//     high-level property-set components whose input sets exceed their
//     output sets — exactly the eight components Coign places on the
//     server (reader + 7 property sets, Figure 4);
//   - because the pixel bulk crosses the network in every distribution,
//     savings are modest (5–32%, Table 4), largest for vector-heavy line
//     drawings (p_oldcur) and smallest for new-document scenarios.
package photodraw

import (
	"fmt"
	"time"

	"repro/internal/com"
	"repro/internal/idl"
)

// Scenario names (paper Table 1).
const (
	ScenNewDoc = "p_newdoc"
	ScenNewMsr = "p_newmsr"
	ScenOldCur = "p_oldcur"
	ScenOldMsr = "p_oldmsr"
	ScenOffCur = "p_offcur"
	ScenOffMsr = "p_offmsr"
	ScenBigone = "p_bigone"
)

// Scenarios lists PhotoDraw's profiling scenarios in Table 1 order.
func Scenarios() []string {
	return []string{ScenNewDoc, ScenNewMsr, ScenOldCur, ScenOldMsr,
		ScenOffCur, ScenOffMsr, ScenBigone}
}

// ScenariosWithoutBigone lists the classifier-training scenarios.
func ScenariosWithoutBigone() []string {
	all := Scenarios()
	return all[:len(all)-1]
}

// Interface IDs.
const (
	iStore  = "IImageStore"
	iUI     = "IUIElement"
	iFrame  = "IStudioFrame"
	iReader = "ICompositionReader"
	iSprite = "ISpriteCache"
	iPixels = "IPixelSink"
	iProps  = "IPropertySet"
	iXform  = "ITransform"
)

// Geometry and sizing. A composition document splits into pixel tiles
// (bulk, must reach the display) and property streams (distilled
// server-side when the reader moves).
const (
	tileBytes      = 48 << 10 // one sprite tile of pixels
	propBlobBytes  = 72 << 10 // property stream per property set
	queryBytes     = 256      // property answer to the UI
	spriteFanout   = 4        // sprite-cache tree fanout
	guiQueryRounds = 8        // UI property queries per scenario
)

// Per-scenario document shapes: tiles of pixels and number of property
// blobs per property set.
type docShape struct {
	tiles     int // pixel tiles (each tileBytes)
	propBlobs int // blobs per property set (each propBlobBytes)
	depth     int // sprite tree depth
}

var shapes = map[string]docShape{
	ScenNewDoc: {tiles: 90, propBlobs: 1, depth: 2},  // template + effect gallery resources
	ScenNewMsr: {tiles: 290, propBlobs: 4, depth: 3}, // new composition: big resource pull
	ScenOldCur: {tiles: 36, propBlobs: 2, depth: 2},  // line drawing: vector display lists
	ScenOldMsr: {tiles: 230, propBlobs: 7, depth: 3}, // 3 MB composition + working set
}

// Compute costs.
const (
	costDecodeTile = 120 * time.Millisecond
	costProps      = 30 * time.Millisecond
	costUI         = 2 * time.Millisecond
	costTransform  = 60 * time.Millisecond
)

// propSetClasses are the seven high-level property-set components created
// directly from data in the file.
var propSetClasses = []string{
	"ColorProfile", "ExifData", "LayerIndex", "FontManifest",
	"EffectParams", "ThumbnailSet", "Annotations",
}

var guiAPIs = []string{com.APIUserWindow, com.APIUserInput, com.APIGdiPaint}

// New assembles the PhotoDraw application.
func New() *com.App {
	classes := com.NewClassRegistry()
	ifaces := idl.NewRegistry()

	registerInterfaces(ifaces)
	registerClasses(classes)
	annotateActivations(classes)

	app := &com.App{
		Name:       "photodraw",
		Classes:    classes,
		Interfaces: ifaces,
		Imports:    []string{"photodraw.exe", "pdui.dll", "pdcore.dll", "pdfx.dll"},
		// The main program builds the studio, the root sprite cache, the
		// composition reader, and the two selection transforms.
		MainActivations: []com.CLSID{
			"CLSID_StudioFrame", "CLSID_SpriteCache", "CLSID_CompositionReader",
			"CLSID_Transform00", "CLSID_Transform01",
		},
	}
	app.Main = runScenario
	return app
}

func registerInterfaces(r *idl.Registry) {
	r.Register(&idl.InterfaceDesc{
		IID: iStore, Name: iStore, Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Open", Params: []idl.ParamDesc{{Name: "name", Dir: idl.In, Type: idl.TString}}, Result: idl.TInt32},
			{Name: "ReadBlock", Params: []idl.ParamDesc{
				{Name: "off", Dir: idl.In, Type: idl.TInt32},
				{Name: "n", Dir: idl.In, Type: idl.TInt32},
			}, Result: idl.TBytes},
		},
	})
	// The sprite-cache interface passes shared-memory region pointers:
	// non-remotable, the black lines of Figure 4.
	r.Register(&idl.InterfaceDesc{
		IID: iSprite, Name: iSprite, Remotable: false,
		Methods: []idl.MethodDesc{
			{Name: "AttachRegion", Params: []idl.ParamDesc{{Name: "shm", Dir: idl.In, Type: idl.TOpaque}}, Result: idl.TInt32},
			{Name: "Composite", Params: []idl.ParamDesc{{Name: "shm", Dir: idl.In, Type: idl.TOpaque}}, Result: idl.TInt32},
			{Name: "Grow", Params: []idl.ParamDesc{{Name: "depth", Dir: idl.In, Type: idl.TInt32}}, Result: idl.TInt32},
		},
	})
	r.Register(&idl.InterfaceDesc{
		IID: iPixels, Name: iPixels, Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "PushTile", Params: []idl.ParamDesc{{Name: "pixels", Dir: idl.In, Type: idl.TBytes}}, Result: idl.TInt32},
		},
	})
	r.Register(&idl.InterfaceDesc{
		IID: iUI, Name: iUI, Remotable: false,
		Methods: []idl.MethodDesc{
			{Name: "Paint", Params: []idl.ParamDesc{{Name: "dc", Dir: idl.In, Type: idl.TOpaque}}, Result: idl.TVoid},
			{Name: "Populate", Result: idl.TInt32},
		},
	})
	r.Register(&idl.InterfaceDesc{
		IID: iFrame, Name: iFrame, Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Init", Result: idl.TInt32},
			{Name: "Status", Params: []idl.ParamDesc{{Name: "msg", Dir: idl.In, Type: idl.TString}}, Result: idl.TVoid},
		},
	})
	r.Register(&idl.InterfaceDesc{
		IID: iReader, Name: iReader, Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Load", Params: []idl.ParamDesc{
				{Name: "tiles", Dir: idl.In, Type: idl.TInt32},
				{Name: "blobs", Dir: idl.In, Type: idl.TInt32},
				{Name: "sink", Dir: idl.In, Type: idl.InterfaceType(iPixels)},
				{Name: "frame", Dir: idl.In, Type: idl.InterfaceType(iFrame)},
			}, Result: idl.TInt32},
			{Name: "PropSet", Params: []idl.ParamDesc{{Name: "idx", Dir: idl.In, Type: idl.TInt32}}, Result: idl.InterfaceType(iProps)},
		},
	})
	r.Register(&idl.InterfaceDesc{
		IID: iProps, Name: iProps, Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Ingest", Params: []idl.ParamDesc{{Name: "blob", Dir: idl.In, Type: idl.TBytes}}, Result: idl.TInt32},
			{Name: "Query", Cacheable: true,
				Params: []idl.ParamDesc{{Name: "key", Dir: idl.In, Type: idl.TInt32}}, Result: idl.TBytes},
		},
	})
	r.Register(&idl.InterfaceDesc{
		IID: iXform, Name: iXform, Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Apply", Params: []idl.ParamDesc{{Name: "pixels", Dir: idl.In, Type: idl.TBytes}}, Result: idl.TBytes},
		},
	})
}

func registerClasses(reg *com.ClassRegistry) {
	add := func(name string, ifaces, apis []string, code int, mk func() com.Object) *com.Class {
		c := &com.Class{
			ID: com.CLSID("CLSID_" + name), Name: name,
			Interfaces: ifaces, APIs: apis, CodeBytes: code, New: mk,
		}
		reg.Register(c)
		return c
	}

	st := add("ImageStore", []string{iStore}, []string{com.APIFileRead, com.APIFileOpen}, 20<<10, newImageStore)
	st.Home = com.Server
	st.Infrastructure = true

	add("StudioFrame", []string{iFrame, iUI}, guiAPIs, 120<<10, newStudioFrame)
	// UI containers and leaves.
	add("Toolbox", []string{iUI}, guiAPIs, 30<<10, uiContainer("CLSID_ToolIcon", 30))
	add("ToolIcon", []string{iUI}, guiAPIs, 3<<10, uiLeaf)
	add("EffectGallery", []string{iUI}, guiAPIs, 40<<10, uiContainer("CLSID_EffectTile", 24))
	add("EffectTile", []string{iUI}, guiAPIs, 4<<10, uiLeaf)
	add("ColorPicker", []string{iUI}, guiAPIs, 18<<10, uiContainer("CLSID_ColorSwatch", 16))
	add("ColorSwatch", []string{iUI}, guiAPIs, 2<<10, uiLeaf)
	add("LayerPanel", []string{iUI}, guiAPIs, 24<<10, uiContainer("CLSID_LayerRow", 12))
	add("LayerRow", []string{iUI}, guiAPIs, 3<<10, uiLeaf)
	for _, leaf := range []string{"ZoomBar", "HistogramView", "StatusLine", "RulerH", "RulerV", "WorkCanvas"} {
		add(leaf, []string{iUI}, guiAPIs, 8<<10, uiLeaf)
	}
	for i := 0; i < 45; i++ {
		add(fmt.Sprintf("Deco%02d", i), []string{iUI}, guiAPIs, 2<<10, uiLeaf)
	}

	add("CompositionReader", []string{iReader}, nil, 80<<10, newReader)
	for _, ps := range propSetClasses {
		add(ps, []string{iProps}, nil, 16<<10, newPropSet)
	}

	add("SpriteCache", []string{iSprite, iPixels}, []string{com.APISharedMemory}, 28<<10, newSpriteCache)
	add("SpriteIndex", []string{iSprite}, []string{com.APISharedMemory}, 12<<10, newSpriteLeaf)
	add("TileMap", []string{iSprite}, []string{com.APISharedMemory}, 12<<10, newSpriteLeaf)
	add("DirtyRegion", []string{iSprite}, []string{com.APISharedMemory}, 6<<10, newSpriteLeaf)

	for i := 0; i < 12; i++ {
		add(fmt.Sprintf("Transform%02d", i), []string{iXform}, nil, 9<<10, newTransform)
	}
	// Pixel-pipeline classes, instantiated sparsely.
	for _, p := range []string{"Compositor", "Blender", "ColorMatch", "DitherEngine",
		"ScanConverter", "PreviewGen", "ExportEngine", "ImportWizard"} {
		add(p, []string{iXform}, nil, 14<<10, newTransform)
	}
	// Latent filter classes to match the application's class breadth.
	for i := 0; i < 19; i++ {
		add(fmt.Sprintf("Codec%02d", i), []string{iXform}, nil, 5<<10, newTransform)
	}
}

// annotateActivations attaches the static activation-site metadata the
// binary rewriter embeds as relocation records. The latent codec and
// pixel-pipeline classes activate nothing and are mentioned by no one:
// they are statically unreachable, like shipped code no scenario reaches.
func annotateActivations(reg *com.ClassRegistry) {
	set := func(name string, targets ...com.CLSID) {
		reg.LookupName(name).Activations = targets
	}
	frame := []com.CLSID{
		"CLSID_Toolbox", "CLSID_EffectGallery", "CLSID_ColorPicker", "CLSID_LayerPanel",
		"CLSID_ZoomBar", "CLSID_HistogramView", "CLSID_StatusLine",
		"CLSID_RulerH", "CLSID_RulerV", "CLSID_WorkCanvas",
	}
	for i := 0; i < 45; i++ {
		frame = append(frame, com.CLSID(fmt.Sprintf("CLSID_Deco%02d", i)))
	}
	set("StudioFrame", frame...)
	set("Toolbox", "CLSID_ToolIcon")
	set("EffectGallery", "CLSID_EffectTile")
	set("ColorPicker", "CLSID_ColorSwatch")
	set("LayerPanel", "CLSID_LayerRow")

	reader := []com.CLSID{"CLSID_ImageStore"}
	for _, ps := range propSetClasses {
		reader = append(reader, com.CLSID("CLSID_"+ps))
	}
	set("CompositionReader", reader...)

	// The sprite tree grows recursively and wires per-level helpers.
	set("SpriteCache", "CLSID_SpriteCache", "CLSID_SpriteIndex", "CLSID_TileMap", "CLSID_DirtyRegion")
}

func newImageStore() com.Object {
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
		switch c.Method {
		case "Open":
			c.Compute(2 * time.Millisecond)
			return []idl.Value{idl.Int32(0)}, nil
		case "ReadBlock":
			n := int(c.Args[1].AsInt())
			c.Compute(time.Duration(n/4096+1) * 300 * time.Microsecond)
			return []idl.Value{idl.ByteBuf(make([]byte, n))}, nil
		}
		return nil, fmt.Errorf("ImageStore: bad method %s", c.Method)
	})
}

func uiLeaf() com.Object {
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
		switch c.Method {
		case "Paint":
			c.Compute(costUI)
			return []idl.Value{}, nil
		case "Populate":
			return []idl.Value{idl.Int32(0)}, nil
		}
		return nil, fmt.Errorf("ui leaf: bad method %s", c.Method)
	})
}

func uiContainer(child com.CLSID, count int) func() com.Object {
	return func() com.Object {
		return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
			switch c.Method {
			case "Paint":
				c.Compute(costUI)
				return []idl.Value{}, nil
			case "Populate":
				total := 0
				for i := 0; i < count; i++ {
					inst, err := c.Create(child)
					if err != nil {
						return nil, err
					}
					total++
					u, err := c.Env.Query(inst, iUI)
					if err != nil {
						return nil, err
					}
					if _, err := c.Invoke(u, "Paint", idl.OpaquePtr("hdc")); err != nil {
						return nil, err
					}
					out, err := c.Invoke(u, "Populate")
					if err != nil {
						return nil, err
					}
					total += int(out[0].AsInt())
				}
				return []idl.Value{idl.Int32(int32(total))}, nil
			}
			return nil, fmt.Errorf("ui container: bad method %s", c.Method)
		})
	}
}

func newStudioFrame() com.Object {
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
		switch c.Method {
		case "Init":
			total := 0
			mk := func(clsid com.CLSID) error {
				inst, err := c.Create(clsid)
				if err != nil {
					return err
				}
				total++
				u, err := c.Env.Query(inst, iUI)
				if err != nil {
					return err
				}
				if _, err := c.Invoke(u, "Paint", idl.OpaquePtr("hdc")); err != nil {
					return err
				}
				out, err := c.Invoke(u, "Populate")
				if err != nil {
					return err
				}
				total += int(out[0].AsInt())
				return nil
			}
			for _, clsid := range []com.CLSID{
				"CLSID_Toolbox", "CLSID_EffectGallery", "CLSID_ColorPicker", "CLSID_LayerPanel",
				"CLSID_ZoomBar", "CLSID_HistogramView", "CLSID_StatusLine",
				"CLSID_RulerH", "CLSID_RulerV", "CLSID_WorkCanvas",
			} {
				if err := mk(clsid); err != nil {
					return nil, err
				}
			}
			for i := 0; i < 45; i++ {
				if err := mk(com.CLSID(fmt.Sprintf("CLSID_Deco%02d", i))); err != nil {
					return nil, err
				}
			}
			return []idl.Value{idl.Int32(int32(total))}, nil
		case "Status":
			c.Compute(costUI / 4)
			return []idl.Value{}, nil
		case "Paint":
			c.Compute(costUI)
			return []idl.Value{}, nil
		case "Populate":
			return []idl.Value{idl.Int32(0)}, nil
		}
		return nil, fmt.Errorf("StudioFrame: bad method %s", c.Method)
	})
}

// newReader streams the composition: bulk tiles to the pixel sink, blobs
// to the seven property sets it creates.
func newReader() com.Object {
	var store *com.Interface
	var propSets []*com.Interface
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
		switch c.Method {
		case "Load":
			tiles := int(c.Args[0].AsInt())
			blobs := int(c.Args[1].AsInt())
			sink := c.Args[2].Iface.(*com.Interface)
			frame := c.Args[3].Iface.(*com.Interface)
			if store == nil {
				st, err := c.Create("CLSID_ImageStore")
				if err != nil {
					return nil, err
				}
				store, err = c.Env.Query(st, iStore)
				if err != nil {
					return nil, err
				}
				if _, err := c.Invoke(store, "Open", idl.String("composition.mix")); err != nil {
					return nil, err
				}
			}
			if propSets == nil {
				for _, ps := range propSetClasses {
					inst, err := c.Create(com.CLSID("CLSID_" + ps))
					if err != nil {
						return nil, err
					}
					itf, err := c.Env.Query(inst, iProps)
					if err != nil {
						return nil, err
					}
					propSets = append(propSets, itf)
				}
			}
			for t := 0; t < tiles; t++ {
				if _, err := c.Invoke(store, "ReadBlock",
					idl.Int32(int32(t*tileBytes)), idl.Int32(tileBytes)); err != nil {
					return nil, err
				}
				c.Compute(costDecodeTile)
				if _, err := c.Invoke(sink, "PushTile",
					idl.ByteBuf(make([]byte, tileBytes))); err != nil {
					return nil, err
				}
				if t%8 == 0 {
					if _, err := c.Invoke(frame, "Status", idl.String("decoding")); err != nil {
						return nil, err
					}
				}
			}
			for b := 0; b < blobs; b++ {
				for _, ps := range propSets {
					if _, err := c.Invoke(store, "ReadBlock",
						idl.Int32(0), idl.Int32(propBlobBytes)); err != nil {
						return nil, err
					}
					if _, err := c.Invoke(ps, "Ingest",
						idl.ByteBuf(make([]byte, propBlobBytes))); err != nil {
						return nil, err
					}
				}
			}
			return []idl.Value{idl.Int32(int32(tiles))}, nil
		case "PropSet":
			idx := int(c.Args[0].AsInt())
			if idx < 0 || idx >= len(propSets) {
				return nil, fmt.Errorf("CompositionReader: no property set %d", idx)
			}
			return []idl.Value{idl.IfacePtr(propSets[idx])}, nil
		}
		return nil, fmt.Errorf("CompositionReader: bad method %s", c.Method)
	})
}

func newPropSet() com.Object {
	ingested := 0
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
		switch c.Method {
		case "Ingest":
			ingested += len(c.Args[0].Bytes)
			c.Compute(costProps)
			return []idl.Value{idl.Int32(int32(ingested / 1024))}, nil
		case "Query":
			c.Compute(costProps / 8)
			return []idl.Value{idl.ByteBuf(make([]byte, queryBytes))}, nil
		}
		return nil, fmt.Errorf("property set: bad method %s", c.Method)
	})
}

// newSpriteCache receives pixel tiles and grows a tree of child caches
// wired together through shared-memory pointers.
func newSpriteCache() com.Object {
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
		switch c.Method {
		case "PushTile":
			c.Compute(costUI)
			return []idl.Value{idl.Int32(int32(len(c.Args[0].Bytes)))}, nil
		case "AttachRegion", "Composite":
			c.Compute(costUI)
			return []idl.Value{idl.Int32(1)}, nil
		case "Grow":
			depth := int(c.Args[0].AsInt())
			created := 0
			if depth <= 0 {
				return []idl.Value{idl.Int32(0)}, nil
			}
			for i := 0; i < spriteFanout; i++ {
				child, err := c.Create("CLSID_SpriteCache")
				if err != nil {
					return nil, err
				}
				created++
				sitf, err := c.Env.Query(child, iSprite)
				if err != nil {
					return nil, err
				}
				// Shared-memory hand-off: opaque, non-remotable.
				if _, err := c.Invoke(sitf, "AttachRegion", idl.OpaquePtr("shm")); err != nil {
					return nil, err
				}
				out, err := c.Invoke(sitf, "Grow", idl.Int32(int32(depth-1)))
				if err != nil {
					return nil, err
				}
				created += int(out[0].AsInt())
			}
			// Each level also wires an index and a tile map.
			for _, aux := range []com.CLSID{"CLSID_SpriteIndex", "CLSID_TileMap", "CLSID_DirtyRegion"} {
				inst, err := c.Create(aux)
				if err != nil {
					return nil, err
				}
				created++
				sitf, err := c.Env.Query(inst, iSprite)
				if err != nil {
					return nil, err
				}
				if _, err := c.Invoke(sitf, "Composite", idl.OpaquePtr("shm")); err != nil {
					return nil, err
				}
			}
			return []idl.Value{idl.Int32(int32(created))}, nil
		}
		return nil, fmt.Errorf("SpriteCache: bad method %s", c.Method)
	})
}

func newSpriteLeaf() com.Object {
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
		switch c.Method {
		case "AttachRegion", "Composite", "Grow":
			c.Compute(costUI / 2)
			return []idl.Value{idl.Int32(0)}, nil
		}
		return nil, fmt.Errorf("sprite leaf: bad method %s", c.Method)
	})
}

func newTransform() com.Object {
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
		if c.Method != "Apply" {
			return nil, fmt.Errorf("transform: bad method %s", c.Method)
		}
		c.Compute(costTransform)
		return []idl.Value{idl.ByteBuf(make([]byte, len(c.Args[0].Bytes)))}, nil
	})
}

// session wires a scenario run.
type session struct {
	env    *com.Env
	frame  *com.Interface
	canvas *com.Interface // root sprite cache as pixel sink
	sprite *com.Interface
}

func runScenario(env *com.Env, scenario string, seed int64) error {
	s := &session{env: env}
	if err := s.buildStudio(); err != nil {
		return err
	}
	run := func(name string) error {
		shape, ok := shapes[name]
		if !ok {
			return fmt.Errorf("photodraw: unknown scenario %q", name)
		}
		return s.openComposition(shape)
	}
	if scenario == ScenBigone {
		for _, name := range ScenariosWithoutBigone() {
			base := name
			switch name {
			case ScenOffCur:
				base = ScenOldCur
			case ScenOffMsr:
				base = ScenOldMsr
			}
			if err := run(base); err != nil {
				return err
			}
		}
		return nil
	}
	switch scenario {
	case ScenOffCur:
		if err := run(ScenNewDoc); err != nil {
			return err
		}
		return run(ScenOldCur)
	case ScenOffMsr:
		if err := run(ScenNewDoc); err != nil {
			return err
		}
		return run(ScenOldMsr)
	default:
		return run(scenario)
	}
}

func (s *session) buildStudio() error {
	frame, err := s.env.CreateInstance(nil, "CLSID_StudioFrame")
	if err != nil {
		return err
	}
	s.frame, err = s.env.Query(frame, iFrame)
	if err != nil {
		return err
	}
	if _, err := s.env.Call(nil, s.frame, "Init"); err != nil {
		return err
	}
	return nil
}

func (s *session) openComposition(shape docShape) error {
	// The root sprite cache is the pixel sink; it grows the sprite tree.
	root, err := s.env.CreateInstance(nil, "CLSID_SpriteCache")
	if err != nil {
		return err
	}
	s.sprite, err = s.env.Query(root, iSprite)
	if err != nil {
		return err
	}
	sink, err := s.env.Query(root, iPixels)
	if err != nil {
		return err
	}
	if _, err := s.env.Call(nil, s.sprite, "Grow", idl.Int32(int32(shape.depth))); err != nil {
		return err
	}

	reader, err := s.env.CreateInstance(nil, "CLSID_CompositionReader")
	if err != nil {
		return err
	}
	ritf, err := s.env.Query(reader, iReader)
	if err != nil {
		return err
	}
	if _, err := s.env.Call(nil, ritf, "Load",
		idl.Int32(int32(shape.tiles)), idl.Int32(int32(shape.propBlobs)),
		idl.IfacePtr(sink), idl.IfacePtr(s.frame)); err != nil {
		return err
	}

	// The UI interrogates the property sets: one handle fetch per set,
	// then rounds of small queries.
	handles := make([]*com.Interface, len(propSetClasses))
	for i := range propSetClasses {
		out, err := s.env.Call(nil, ritf, "PropSet", idl.Int32(int32(i)))
		if err != nil {
			return err
		}
		handles[i] = out[0].Iface.(*com.Interface)
	}
	for round := 0; round < guiQueryRounds; round++ {
		for _, ps := range handles {
			if _, err := s.env.Call(nil, ps, "Query", idl.Int32(int32(round))); err != nil {
				return err
			}
		}
	}

	// A couple of transforms are applied to the selection.
	for i := 0; i < 2; i++ {
		tf, err := s.env.CreateInstance(nil, com.CLSID(fmt.Sprintf("CLSID_Transform%02d", i)))
		if err != nil {
			return err
		}
		titf, err := s.env.Query(tf, iXform)
		if err != nil {
			return err
		}
		if _, err := s.env.Call(nil, titf, "Apply",
			idl.ByteBuf(make([]byte, tileBytes))); err != nil {
			return err
		}
	}
	return nil
}
