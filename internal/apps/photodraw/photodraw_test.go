package photodraw

import (
	"context"
	"testing"

	"repro/internal/classify"
	"repro/internal/com"
	"repro/internal/core"
	"repro/internal/dist"
)

func TestAppAssembly(t *testing.T) {
	t.Parallel()
	app := New()
	// The paper reports approximately 112 component classes.
	if n := app.Classes.Len(); n < 100 || n > 125 {
		t.Errorf("class count = %d, want ~112", n)
	}
	if app.Interfaces.Lookup(iSprite).Remotable {
		t.Error("ISpriteCache must be non-remotable (shared memory)")
	}
	if app.Interfaces.Lookup(iUI).Remotable {
		t.Error("IUIElement must be non-remotable")
	}
	st := app.Classes.LookupName("ImageStore")
	if st == nil || !st.Infrastructure || st.Home != com.Server {
		t.Fatalf("ImageStore = %+v", st)
	}
}

func TestScenarioInventory(t *testing.T) {
	t.Parallel()
	if len(Scenarios()) != 7 {
		t.Fatalf("scenario count = %d, want 7 (Table 1)", len(Scenarios()))
	}
}

func TestAllScenariosRunCleanly(t *testing.T) {
	t.Parallel()
	for _, scen := range Scenarios() {
		res, err := dist.Run(dist.Config{
			App: New(), Scenario: scen, Mode: dist.ModeDefault,
			Classifier: classify.New(classify.IFCB, 0),
		})
		if err != nil {
			t.Fatalf("%s: %v", scen, err)
		}
		if res.Violations != 0 {
			t.Errorf("%s: %d violations", scen, res.Violations)
		}
	}
}

func TestUnknownScenarioFails(t *testing.T) {
	t.Parallel()
	if _, err := dist.Run(dist.Config{App: New(), Scenario: "p_nope", Mode: dist.ModeBare}); err == nil {
		t.Fatal("unknown scenario ran")
	}
}

func TestFigure4CompositionShape(t *testing.T) {
	t.Parallel()
	// Of ~295 components viewing a composition, Coign places eight on the
	// server: the file reader and seven property sets (paper Figure 4).
	adps := core.New(New())
	rep, err := adps.ScenarioExperiment(context.Background(), ScenOldMsr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalInstances < 280 || rep.TotalInstances > 310 {
		t.Errorf("instances = %d, want ~295", rep.TotalInstances)
	}
	if rep.ServerInstances != 8 {
		t.Errorf("server components = %d, want 8", rep.ServerInstances)
	}
	// Savings are modest: the pixel bulk crosses regardless.
	if rep.Savings < 0.1 || rep.Savings > 0.35 {
		t.Errorf("savings = %v, want ~0.21", rep.Savings)
	}
	if rep.Violations != 0 {
		t.Errorf("violations = %d", rep.Violations)
	}
}

func TestServerComponentsAreReaderAndPropertySets(t *testing.T) {
	t.Parallel()
	adps := core.New(New())
	if err := adps.Instrument(); err != nil {
		t.Fatal(err)
	}
	p, _, err := adps.ProfileScenario(ScenOldMsr, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := adps.Analyze(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	allowed := map[string]bool{"CompositionReader": true, "ImageStore": true}
	for _, ps := range propSetClasses {
		allowed[ps] = true
	}
	for _, cp := range res.ServerComponents(p) {
		if !allowed[cp.Class] {
			t.Errorf("unexpected server component %s", cp.Class)
		}
		if cp.Class == "SpriteCache" {
			t.Error("sprite cache crossed the shared-memory boundary")
		}
	}
	// The sprite mesh produces a significant number of non-remotable
	// interface edges (paper: almost 50 significant non-distributable
	// interfaces).
	if res.NonRemotableEdges < 20 {
		t.Errorf("non-remotable edges = %d, want dozens", res.NonRemotableEdges)
	}
}

func TestVectorDocumentSavesMoreThanBitmap(t *testing.T) {
	t.Parallel()
	// Line drawings (vector-heavy, proportionally more property data) save
	// more than pixel-heavy compositions: 32% vs 21% in Table 4.
	adps := core.New(New())
	cur, err := adps.ScenarioExperiment(context.Background(), ScenOldCur)
	if err != nil {
		t.Fatal(err)
	}
	msr, err := adps.ScenarioExperiment(context.Background(), ScenOldMsr)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Savings <= msr.Savings {
		t.Errorf("oldcur savings %v not greater than oldmsr %v", cur.Savings, msr.Savings)
	}
}

func TestDeterminism(t *testing.T) {
	t.Parallel()
	run := func() *dist.Result {
		res, err := dist.Run(dist.Config{
			App: New(), Scenario: ScenOldMsr, Mode: dist.ModeDefault,
			Classifier: classify.New(classify.IFCB, 0),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Instances != b.Instances || a.Clock.CommTime() != b.Clock.CommTime() {
		t.Error("photodraw runs not deterministic")
	}
}
