package benefits

import (
	"context"
	"testing"

	"repro/internal/classify"
	"repro/internal/com"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/profile"
)

func TestAppAssembly(t *testing.T) {
	t.Parallel()
	app := New()
	// About a dozen middle-tier component classes plus the front end.
	if n := app.Classes.Len(); n < 18 || n > 32 {
		t.Errorf("class count = %d", n)
	}
	db := app.Classes.LookupName("Database")
	if db == nil || !db.Infrastructure || db.Home != com.Server {
		t.Fatalf("Database = %+v", db)
	}
	// Developer's 3-tier default: business logic on the middle tier.
	if app.Classes.LookupName("EmployeeManager").Home != com.Server {
		t.Error("manager not on middle tier by default")
	}
	if app.Classes.LookupName("BenefitsForm").Home != com.Client {
		t.Error("front end not on client")
	}
}

func TestScenarioInventory(t *testing.T) {
	t.Parallel()
	if len(Scenarios()) != 4 {
		t.Fatalf("scenario count = %d, want 4 (Table 1)", len(Scenarios()))
	}
}

func TestUnknownScenarioFails(t *testing.T) {
	t.Parallel()
	if _, err := dist.Run(dist.Config{App: New(), Scenario: "b_nope", Mode: dist.ModeBare}); err == nil {
		t.Fatal("unknown scenario ran")
	}
}

func TestAllScenariosRunCleanly(t *testing.T) {
	t.Parallel()
	for _, scen := range Scenarios() {
		res, err := dist.Run(dist.Config{
			App: New(), Scenario: scen, Mode: dist.ModeDefault,
			Classifier: classify.New(classify.IFCB, 0),
		})
		if err != nil {
			t.Fatalf("%s: %v", scen, err)
		}
		if res.Violations != 0 {
			t.Errorf("%s: %d violations", scen, res.Violations)
		}
	}
}

func TestFigure6DistributionShape(t *testing.T) {
	t.Parallel()
	// Of ~196 components in the client and middle tier, the developer
	// placed ~187 on the middle tier; Coign keeps ~135 there, moving the
	// caching components to the client and reducing communication ~35%.
	adps := core.New(New())
	rep, err := adps.ScenarioExperiment(context.Background(), ScenBigone)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalInstances < 180 || rep.TotalInstances > 215 {
		t.Errorf("total components = %d, want ~196", rep.TotalInstances)
	}
	coignMiddle := rep.ServerInstances
	if coignMiddle < 125 || coignMiddle > 150 {
		t.Errorf("Coign middle-tier components = %d, want ~135", coignMiddle)
	}
	defaultMiddle := rep.TotalInstances - 9 // nine front-end components
	if defaultMiddle < 175 || defaultMiddle > 205 {
		t.Errorf("default middle-tier components = %d, want ~187", defaultMiddle)
	}
	if rep.Savings < 0.15 || rep.Savings > 0.5 {
		t.Errorf("savings = %v, want ~0.19-0.35", rep.Savings)
	}
	if rep.Violations != 0 {
		t.Errorf("violations = %d", rep.Violations)
	}
}

func TestCachesMoveBusinessLogicStays(t *testing.T) {
	t.Parallel()
	adps := core.New(New())
	if err := adps.Instrument(); err != nil {
		t.Fatal(err)
	}
	p, _, err := adps.ProfileScenario(ScenVueOne, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := adps.Analyze(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	cacheByName := map[string]bool{}
	for _, c := range cacheClasses {
		cacheByName[string(c[len("CLSID_"):])] = true
	}
	placed := map[string]com.Machine{}
	for id, m := range res.Distribution {
		if ci := p.Classifications[id]; ci != nil {
			placed[ci.Class] = m
		}
	}
	// Every cache class on the client.
	for name := range cacheByName {
		if m, ok := placed[name]; ok && m != com.Client {
			t.Errorf("cache %s placed on %v, want client", name, m)
		}
	}
	// Business logic stays on the middle tier.
	for _, logic := range []string{"EmployeeManager", "Validator", "ReportBuilder", "RowFetcher"} {
		if m, ok := placed[logic]; ok && m != com.Server {
			t.Errorf("business logic %s placed on %v, want middle tier", logic, m)
		}
	}
}

func TestViewSavingsApproximatePaper(t *testing.T) {
	t.Parallel()
	adps := core.New(New())
	rep, err := adps.ScenarioExperiment(context.Background(), ScenVueOne)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 35% communication reduction on b_vueone.
	if rep.Savings < 0.2 || rep.Savings > 0.5 {
		t.Errorf("b_vueone savings = %v, want ~0.35", rep.Savings)
	}
}

// TestMultiwayThreeTier exercises the paper's future-work extension: a
// three-machine cut (client / middle / database server) via the isolation
// heuristic, treating the database as its own terminal.
func TestMultiwayThreeTier(t *testing.T) {
	t.Parallel()
	app := New()
	res, err := dist.Run(dist.Config{
		App: app, Scenario: ScenBigone, Mode: dist.ModeProfiling,
		Classifier: classify.New(classify.IFCB, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	np := netsim.ExactProfile(netsim.TenBaseT, netsim.DefaultSampleSizes)

	g := graph.New()
	var clientPins, middlePins, dbPins []string
	clientPins = append(clientPins, profile.MainProgram)
	g.Node(profile.MainProgram)
	for id, ci := range p.Classifications {
		g.Node(id)
		cl := app.Classes.LookupName(ci.Class)
		switch {
		case cl != nil && cl.Infrastructure:
			dbPins = append(dbPins, id)
		case cl != nil && cl.Home == com.Client:
			clientPins = append(clientPins, id)
		case ci.Class == "EmployeeManager":
			middlePins = append(middlePins, id)
		}
	}
	for k, e := range p.Edges {
		g.AddEdge(k.Src, k.Dst, e.Time(np).Seconds())
	}
	assign, weight, err := g.MultiwayCut([]graph.MultiwayTerminal{
		{Machine: "client", Pinned: clientPins},
		{Machine: "middle", Pinned: middlePins},
		{Machine: "dbserver", Pinned: dbPins},
	})
	if err != nil {
		t.Fatal(err)
	}
	if weight <= 0 {
		t.Fatalf("multiway weight = %v", weight)
	}
	counts := map[string]int{}
	for id, m := range assign {
		if ci := p.Classifications[id]; ci != nil {
			counts[m] += int(ci.Instances)
		}
	}
	if counts["middle"] == 0 || counts["client"] == 0 {
		t.Errorf("degenerate multiway assignment: %v", counts)
	}
	// The caches end up on the client here too.
	for id, m := range assign {
		if ci := p.Classifications[id]; ci != nil && ci.Class == "RecordCache" && m != "client" {
			t.Errorf("multiway put RecordCache on %s", m)
		}
	}
}

func TestDeterminism(t *testing.T) {
	t.Parallel()
	run := func() *dist.Result {
		res, err := dist.Run(dist.Config{
			App: New(), Scenario: ScenBigone, Mode: dist.ModeDefault,
			Classifier: classify.New(classify.IFCB, 0),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Instances != b.Instances || a.Clock.CommTime() != b.Clock.CommTime() {
		t.Error("benefits runs not deterministic")
	}
}
