// Package benefits reconstructs the MSDN Corporate Benefits Sample from
// the paper's application suite: a 3-tier client/server application with a
// Visual Basic front end (~5,300 lines), a middle tier of business-logic
// components (~32,000 lines of C++, about a dozen component classes), and
// a database reached through ODBC.
//
// Coign cannot analyze the proprietary connection between the ODBC driver
// and the database server, so — as in the paper — analysis focuses on the
// front end and middle tier: the database is infrastructure pinned behind
// the middle tier. The paper's surprising result is reproduced: many
// middle-tier components cache results for the client (pull one record,
// answer dozens of small field reads), so Coign moves the caching
// components — but not the business logic, whose database traffic pins it
// to the middle tier — to the client, reducing communication by roughly a
// third. Of ~196 components in the client and middle tier, the developer
// placed ~187 on the middle tier; Coign keeps ~135 there.
package benefits

import (
	"fmt"
	"time"

	"repro/internal/com"
	"repro/internal/idl"
)

// Scenario names (paper Table 1).
const (
	ScenVueOne = "b_vueone"
	ScenAddOne = "b_addone"
	ScenDelOne = "b_delone"
	ScenBigone = "b_bigone"
)

// Scenarios lists the Benefits profiling scenarios in Table 1 order.
func Scenarios() []string {
	return []string{ScenVueOne, ScenAddOne, ScenDelOne, ScenBigone}
}

// ScenariosWithoutBigone lists the classifier-training scenarios.
func ScenariosWithoutBigone() []string {
	all := Scenarios()
	return all[:len(all)-1]
}

// Interface IDs.
const (
	iDB     = "IDatabase"
	iForm   = "IBenefitsForm"
	iMgr    = "IEmployeeManager"
	iCache  = "IRecordCache"
	iLogic  = "IBusinessLogic"
	iReport = "IReportBuilder"
	iGraph  = "IGraphView"
)

// Shape constants, calibrated to the paper's Figure 6 and Table 4.
const (
	dbRowBytes     = 2048 // one database row
	recordBytes    = 3072 // assembled record fed to a cache
	fieldBytes     = 48   // one GetField answer
	fieldsPerCache = 16   // GUI field reads per cache component (viewing)
	fieldsPerDel   = 6    // field reads while confirming a deletion
	cacheKinds     = 4    // record, dependents, coverage, history
	employeesView  = 12   // employees browsed in b_vueone
	validationsPer = 16   // business-rule checks per employee browsed
	reportRows     = 180  // graph rows plotted per report
	reportRowBytes = 8192 // plotted row payload (chart series data)
)

// Compute costs.
const (
	costDB    = 15 * time.Millisecond
	costLogic = 8 * time.Millisecond
	costUI    = 2 * time.Millisecond
)

var guiAPIs = []string{com.APIUserWindow, com.APIUserInput, com.APIGdiPaint}

// cacheClasses are the caching component classes, by record kind.
var cacheClasses = []com.CLSID{
	"CLSID_RecordCache", "CLSID_DependentsCache", "CLSID_CoverageCache", "CLSID_HistoryCache",
}

// frontEndPanes are the Visual Basic front end's panes (plus the form
// itself and the commercial graph control: 9 client components).
var frontEndPanes = []string{
	"QueryPane", "ReportPane", "NavBar", "DetailPane",
	"StatusPane", "LoginPane", "MenuPane",
}

// New assembles the Corporate Benefits application.
func New() *com.App {
	classes := com.NewClassRegistry()
	ifaces := idl.NewRegistry()
	registerInterfaces(ifaces)
	registerClasses(classes)
	annotateActivations(classes)
	app := &com.App{
		Name:       "benefits",
		Classes:    classes,
		Interfaces: ifaces,
		Imports:    []string{"benefits.exe", "benefits_mt.dll", "msgraph.ocx", "odbc32.dll"},
		// The front end creates the form, the middle-tier managers, and the
		// per-operation logic workers it drives directly.
		MainActivations: []com.CLSID{
			"CLSID_BenefitsForm", "CLSID_EmployeeManager", "CLSID_SessionMgr",
			"CLSID_Validator", "CLSID_ReportBuilder", "CLSID_AuditLog",
			"CLSID_BenefitsList", "CLSID_QueryEngine",
		},
	}
	app.Main = runScenario
	return app
}

func registerInterfaces(r *idl.Registry) {
	r.Register(&idl.InterfaceDesc{
		IID: iDB, Name: iDB, Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Exec", Params: []idl.ParamDesc{{Name: "sql", Dir: idl.In, Type: idl.TString}}, Result: idl.TBytes},
		},
	})
	r.Register(&idl.InterfaceDesc{
		IID: iForm, Name: iForm, Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Init", Result: idl.TInt32},
			{Name: "GetGraph", Result: idl.InterfaceType(iGraph)},
			{Name: "ShowStatus", Params: []idl.ParamDesc{{Name: "msg", Dir: idl.In, Type: idl.TString}}, Result: idl.TVoid},
		},
	})
	r.Register(&idl.InterfaceDesc{
		IID: iMgr, Name: iMgr, Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Find", Params: []idl.ParamDesc{{Name: "who", Dir: idl.In, Type: idl.TInt32}}, Result: idl.TInt32},
			{Name: "OpenRecord", Params: []idl.ParamDesc{
				{Name: "who", Dir: idl.In, Type: idl.TInt32},
				{Name: "kind", Dir: idl.In, Type: idl.TInt32},
			}, Result: idl.InterfaceType(iCache)},
			{Name: "Add", Params: []idl.ParamDesc{{Name: "record", Dir: idl.In, Type: idl.TBytes}}, Result: idl.TInt32},
			{Name: "Delete", Params: []idl.ParamDesc{{Name: "who", Dir: idl.In, Type: idl.TInt32}}, Result: idl.TInt32},
		},
	})
	r.Register(&idl.InterfaceDesc{
		IID: iCache, Name: iCache, Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Fill", Params: []idl.ParamDesc{{Name: "record", Dir: idl.In, Type: idl.TBytes}}, Result: idl.TInt32},
			{Name: "GetField", Cacheable: true,
				Params: []idl.ParamDesc{{Name: "idx", Dir: idl.In, Type: idl.TInt32}}, Result: idl.TBytes},
		},
	})
	r.Register(&idl.InterfaceDesc{
		IID: iLogic, Name: iLogic, Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Run", Params: []idl.ParamDesc{{Name: "arg", Dir: idl.In, Type: idl.TBytes}}, Result: idl.TInt32},
		},
	})
	r.Register(&idl.InterfaceDesc{
		IID: iReport, Name: iReport, Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "BuildReport", Params: []idl.ParamDesc{
				{Name: "graph", Dir: idl.In, Type: idl.InterfaceType(iGraph)},
				{Name: "rows", Dir: idl.In, Type: idl.TInt32},
			}, Result: idl.TInt32},
		},
	})
	r.Register(&idl.InterfaceDesc{
		IID: iGraph, Name: iGraph, Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "PlotRow", Params: []idl.ParamDesc{{Name: "row", Dir: idl.In, Type: idl.TBytes}}, Result: idl.TInt32},
			{Name: "Paint", Params: []idl.ParamDesc{{Name: "dc", Dir: idl.In, Type: idl.TOpaque}}, Result: idl.TVoid},
		},
	})
}

func registerClasses(reg *com.ClassRegistry) {
	add := func(name string, ifaces, apis []string, home com.Machine, infra bool, mk func() com.Object) *com.Class {
		c := &com.Class{
			ID: com.CLSID("CLSID_" + name), Name: name,
			Interfaces: ifaces, APIs: apis, CodeBytes: 12 << 10,
			Home: home, Infrastructure: infra, New: mk,
		}
		reg.Register(c)
		return c
	}

	// The database engine behind ODBC: unanalyzable infrastructure.
	add("Database", []string{iDB}, []string{com.APIODBCConnect, com.APIODBCExec}, com.Server, true, newDatabase)

	// Client front end (Visual Basic): GUI-pinned.
	add("BenefitsForm", []string{iForm, iGraph}, guiAPIs, com.Client, false, newForm)
	for _, fe := range frontEndPanes {
		add(fe, []string{iGraph}, guiAPIs, com.Client, false, newGraphView)
	}
	// The commercial graphing component from Microsoft Office.
	add("GraphView", []string{iGraph}, guiAPIs, com.Client, false, newGraphView)

	// Middle-tier business logic (Home = Server is the middle tier in the
	// two-machine cut; the database sits behind it).
	add("EmployeeManager", []string{iMgr}, nil, com.Server, false, newEmployeeManager)
	add("SessionMgr", []string{iLogic}, nil, com.Server, false, newLogic)
	add("Validator", []string{iLogic}, nil, com.Server, false, newLogic)
	add("AuditLog", []string{iLogic}, nil, com.Server, false, newLogic)
	add("BenefitsList", []string{iLogic}, nil, com.Server, false, newLogic)
	add("QueryEngine", []string{iLogic}, nil, com.Server, false, newLogic)
	add("QueryWorker", []string{iLogic}, nil, com.Server, false, newLogic)
	add("RowFetcher", []string{iLogic}, nil, com.Server, false, newLogic)
	add("JoinWorker", []string{iLogic}, nil, com.Server, false, newLogic)
	add("RowAggregator", []string{iLogic}, nil, com.Server, false, newLogic)
	add("ReportBuilder", []string{iReport}, nil, com.Server, false, newReportBuilder)

	// The caching components Coign moves to the client.
	add("RecordCache", []string{iCache}, nil, com.Server, false, newCache)
	add("DependentsCache", []string{iCache}, nil, com.Server, false, newCache)
	add("CoverageCache", []string{iCache}, nil, com.Server, false, newCache)
	add("HistoryCache", []string{iCache}, nil, com.Server, false, newCache)
}

// annotateActivations attaches the static activation-site metadata the
// binary rewriter embeds as relocation records. Every business-logic
// worker lazily opens its own database connection, so they all list the
// database as an activation target.
func annotateActivations(reg *com.ClassRegistry) {
	set := func(name string, targets ...com.CLSID) {
		reg.LookupName(name).Activations = targets
	}
	form := make([]com.CLSID, 0, len(frontEndPanes)+1)
	for _, fe := range frontEndPanes {
		form = append(form, com.CLSID("CLSID_"+fe))
	}
	set("BenefitsForm", append(form, "CLSID_GraphView")...)
	set("EmployeeManager", append([]com.CLSID{
		"CLSID_Database", "CLSID_QueryWorker", "CLSID_RowFetcher", "CLSID_JoinWorker",
	}, cacheClasses...)...)
	set("ReportBuilder", "CLSID_Database", "CLSID_RowAggregator")
	for _, logic := range []string{
		"SessionMgr", "Validator", "AuditLog", "BenefitsList", "QueryEngine",
		"QueryWorker", "RowFetcher", "JoinWorker", "RowAggregator",
	} {
		set(logic, "CLSID_Database")
	}
}

func newDatabase() com.Object {
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
		if c.Method != "Exec" {
			return nil, fmt.Errorf("Database: bad method %s", c.Method)
		}
		c.Compute(costDB)
		return []idl.Value{idl.ByteBuf(make([]byte, dbRowBytes))}, nil
	})
}

func newForm() com.Object {
	var graph *com.Interface
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
		switch c.Method {
		case "Init":
			for _, pane := range frontEndPanes {
				inst, err := c.Create(com.CLSID("CLSID_" + pane))
				if err != nil {
					return nil, err
				}
				g, err := c.Env.Query(inst, iGraph)
				if err != nil {
					return nil, err
				}
				if _, err := c.Invoke(g, "Paint", idl.OpaquePtr("hdc")); err != nil {
					return nil, err
				}
			}
			gv, err := c.Create("CLSID_GraphView")
			if err != nil {
				return nil, err
			}
			g, err := c.Env.Query(gv, iGraph)
			if err != nil {
				return nil, err
			}
			if _, err := c.Invoke(g, "Paint", idl.OpaquePtr("hdc")); err != nil {
				return nil, err
			}
			graph = g
			return []idl.Value{idl.Int32(int32(len(frontEndPanes) + 1))}, nil
		case "GetGraph":
			if graph == nil {
				return nil, fmt.Errorf("BenefitsForm: GetGraph before Init")
			}
			return []idl.Value{idl.IfacePtr(graph)}, nil
		case "ShowStatus":
			c.Compute(costUI / 2)
			return []idl.Value{}, nil
		case "Paint":
			c.Compute(costUI)
			return []idl.Value{}, nil
		case "PlotRow":
			c.Compute(costUI)
			return []idl.Value{idl.Int32(0)}, nil
		}
		return nil, fmt.Errorf("BenefitsForm: bad method %s", c.Method)
	})
}

func newGraphView() com.Object {
	rows := 0
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
		switch c.Method {
		case "PlotRow":
			rows++
			c.Compute(costUI)
			return []idl.Value{idl.Int32(int32(rows))}, nil
		case "Paint":
			c.Compute(costUI)
			return []idl.Value{}, nil
		}
		return nil, fmt.Errorf("graph view: bad method %s", c.Method)
	})
}

// newEmployeeManager is the heart of the middle tier: it queries the
// database through per-request workers, assembles records, and spawns the
// cache components the GUI reads.
func newEmployeeManager() com.Object {
	var db *com.Interface
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
		ensureDB := func() error {
			if db != nil {
				return nil
			}
			inst, err := c.Create("CLSID_Database")
			if err != nil {
				return err
			}
			db, err = c.Env.Query(inst, iDB)
			return err
		}
		spawnLogic := func(clsid com.CLSID, payload int) error {
			inst, err := c.Create(clsid)
			if err != nil {
				return err
			}
			itf, err := c.Env.Query(inst, iLogic)
			if err != nil {
				return err
			}
			_, err = c.Invoke(itf, "Run", idl.ByteBuf(make([]byte, payload)))
			return err
		}
		query := func(n int) error {
			for i := 0; i < n; i++ {
				if _, err := c.Invoke(db, "Exec", idl.String("SELECT * FROM benefits")); err != nil {
					return err
				}
				c.Compute(costLogic)
			}
			return nil
		}
		switch c.Method {
		case "Find":
			if err := ensureDB(); err != nil {
				return nil, err
			}
			// A search runs in a dedicated query worker.
			if err := spawnLogic("CLSID_QueryWorker", 128); err != nil {
				return nil, err
			}
			if err := query(1); err != nil {
				return nil, err
			}
			return []idl.Value{idl.Int32(int32(c.Args[0].AsInt()))}, nil
		case "OpenRecord":
			if err := ensureDB(); err != nil {
				return nil, err
			}
			// Row assembly runs in a fetcher and a join worker; the cache
			// is filled once.
			if err := spawnLogic("CLSID_RowFetcher", 96); err != nil {
				return nil, err
			}
			if err := spawnLogic("CLSID_JoinWorker", 96); err != nil {
				return nil, err
			}
			if err := query(1); err != nil {
				return nil, err
			}
			kind := int(c.Args[1].AsInt()) % cacheKinds
			cache, err := c.Create(cacheClasses[kind])
			if err != nil {
				return nil, err
			}
			citf, err := c.Env.Query(cache, iCache)
			if err != nil {
				return nil, err
			}
			if _, err := c.Invoke(citf, "Fill", idl.ByteBuf(make([]byte, recordBytes))); err != nil {
				return nil, err
			}
			return []idl.Value{idl.IfacePtr(citf)}, nil
		case "Add":
			if err := ensureDB(); err != nil {
				return nil, err
			}
			if err := query(6); err != nil {
				return nil, err
			}
			return []idl.Value{idl.Int32(1)}, nil
		case "Delete":
			if err := ensureDB(); err != nil {
				return nil, err
			}
			if err := query(9); err != nil {
				return nil, err
			}
			return []idl.Value{idl.Int32(1)}, nil
		}
		return nil, fmt.Errorf("EmployeeManager: bad method %s", c.Method)
	})
}

func newLogic() com.Object {
	var db *com.Interface
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
		if c.Method != "Run" {
			return nil, fmt.Errorf("logic: bad method %s", c.Method)
		}
		if db == nil {
			inst, err := c.Create("CLSID_Database")
			if err != nil {
				return nil, err
			}
			db, err = c.Env.Query(inst, iDB)
			if err != nil {
				return nil, err
			}
		}
		// Business logic consults the database and answers tersely; its
		// database traffic exceeds its answer, pinning it near the data.
		for i := 0; i < 2; i++ {
			if _, err := c.Invoke(db, "Exec", idl.String("SELECT rule FROM policy")); err != nil {
				return nil, err
			}
		}
		c.Compute(costLogic)
		return []idl.Value{idl.Int32(1)}, nil
	})
}

func newReportBuilder() com.Object {
	var db *com.Interface
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
		if c.Method != "BuildReport" {
			return nil, fmt.Errorf("ReportBuilder: bad method %s", c.Method)
		}
		if db == nil {
			inst, err := c.Create("CLSID_Database")
			if err != nil {
				return nil, err
			}
			db, err = c.Env.Query(inst, iDB)
			if err != nil {
				return nil, err
			}
		}
		graph := c.Args[0].Iface.(*com.Interface)
		rows := int(c.Args[1].AsInt())
		// Aggregation workers scan the database near the data.
		for i := 0; i < 3; i++ {
			agg, err := c.Create("CLSID_RowAggregator")
			if err != nil {
				return nil, err
			}
			aitf, err := c.Env.Query(agg, iLogic)
			if err != nil {
				return nil, err
			}
			if _, err := c.Invoke(aitf, "Run", idl.ByteBuf(make([]byte, 64))); err != nil {
				return nil, err
			}
		}
		for i := 0; i < rows; i++ {
			// Read much, plot little: three row scans per chart point keep
			// the aggregation near the data.
			for j := 0; j < 3; j++ {
				if _, err := c.Invoke(db, "Exec", idl.String("SELECT agg FROM benefits")); err != nil {
					return nil, err
				}
			}
			c.Compute(costLogic)
			if _, err := c.Invoke(graph, "PlotRow",
				idl.ByteBuf(make([]byte, reportRowBytes))); err != nil {
				return nil, err
			}
		}
		return []idl.Value{idl.Int32(int32(rows))}, nil
	})
}

func newCache() com.Object {
	filled := 0
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
		switch c.Method {
		case "Fill":
			filled = len(c.Args[0].Bytes)
			c.Compute(costLogic / 2)
			return []idl.Value{idl.Int32(int32(filled))}, nil
		case "GetField":
			c.Compute(costUI / 4)
			return []idl.Value{idl.ByteBuf(make([]byte, fieldBytes))}, nil
		}
		return nil, fmt.Errorf("cache: bad method %s", c.Method)
	})
}

// session drives the front end.
type session struct {
	env       *com.Env
	form      *com.Interface
	graph     *com.Interface
	mgr       *com.Interface
	validator *com.Interface
}

func runScenario(env *com.Env, scenario string, seed int64) error {
	s := &session{env: env}
	if err := s.login(); err != nil {
		return err
	}
	switch scenario {
	case ScenVueOne:
		return s.viewEmployees(employeesView)
	case ScenAddOne:
		return s.addEmployee()
	case ScenDelOne:
		return s.deleteEmployee()
	case ScenBigone:
		if err := s.viewEmployees(employeesView); err != nil {
			return err
		}
		if err := s.addEmployee(); err != nil {
			return err
		}
		return s.deleteEmployee()
	default:
		return fmt.Errorf("benefits: unknown scenario %q", scenario)
	}
}

func (s *session) login() error {
	form, err := s.env.CreateInstance(nil, "CLSID_BenefitsForm")
	if err != nil {
		return err
	}
	s.form, err = s.env.Query(form, iForm)
	if err != nil {
		return err
	}
	if _, err := s.env.Call(nil, s.form, "Init"); err != nil {
		return err
	}
	// The form hands out its graph control through a typed accessor so the
	// static reachability analysis can follow the reference flow.
	gout, err := s.env.Call(nil, s.form, "GetGraph")
	if err != nil {
		return err
	}
	s.graph = gout[0].Iface.(*com.Interface)
	mgr, err := s.env.CreateInstance(nil, "CLSID_EmployeeManager")
	if err != nil {
		return err
	}
	s.mgr, err = s.env.Query(mgr, iMgr)
	if err != nil {
		return err
	}
	sess, err := s.env.CreateInstance(nil, "CLSID_SessionMgr")
	if err != nil {
		return err
	}
	sitf, err := s.env.Query(sess, iLogic)
	if err != nil {
		return err
	}
	if _, err := s.env.Call(nil, sitf, "Run", idl.ByteBuf(make([]byte, 64))); err != nil {
		return err
	}
	val, err := s.env.CreateInstance(nil, "CLSID_Validator")
	if err != nil {
		return err
	}
	s.validator, err = s.env.Query(val, iLogic)
	return err
}

// browseEmployee opens the four caches for one employee, reads them field
// by field, and runs the per-record business-rule checks.
func (s *session) browseEmployee(who int) error {
	return s.browseEmployeeFields(who, fieldsPerCache)
}

func (s *session) browseEmployeeFields(who, fields int) error {
	if _, err := s.env.Call(nil, s.mgr, "Find", idl.Int32(int32(who))); err != nil {
		return err
	}
	for kind := 0; kind < cacheKinds; kind++ {
		out, err := s.env.Call(nil, s.mgr, "OpenRecord",
			idl.Int32(int32(who)), idl.Int32(int32(kind)))
		if err != nil {
			return err
		}
		citf := out[0].Iface.(*com.Interface)
		for f := 0; f < fields; f++ {
			if _, err := s.env.Call(nil, citf, "GetField", idl.Int32(int32(f))); err != nil {
				return err
			}
		}
	}
	// Business-rule validation stays in the middle tier: its database
	// traffic exceeds the terse answers the client receives.
	for v := 0; v < validationsPer; v++ {
		if _, err := s.env.Call(nil, s.validator, "Run",
			idl.ByteBuf(make([]byte, 96))); err != nil {
			return err
		}
	}
	return s.statusUpdate("record loaded")
}

func (s *session) statusUpdate(msg string) error {
	_, err := s.env.Call(nil, s.form, "ShowStatus", idl.String(msg))
	return err
}

func (s *session) viewEmployees(n int) error {
	for who := 0; who < n; who++ {
		if err := s.browseEmployee(who); err != nil {
			return err
		}
	}
	rb, err := s.env.CreateInstance(nil, "CLSID_ReportBuilder")
	if err != nil {
		return err
	}
	ritf, err := s.env.Query(rb, iReport)
	if err != nil {
		return err
	}
	_, err = s.env.Call(nil, ritf, "BuildReport",
		idl.IfacePtr(s.graph), idl.Int32(reportRows))
	return err
}

func (s *session) addEmployee() error {
	if _, err := s.env.Call(nil, s.validator, "Run",
		idl.ByteBuf(make([]byte, 512))); err != nil {
		return err
	}
	if _, err := s.env.Call(nil, s.mgr, "Add",
		idl.ByteBuf(make([]byte, recordBytes))); err != nil {
		return err
	}
	a, err := s.env.CreateInstance(nil, "CLSID_AuditLog")
	if err != nil {
		return err
	}
	aitf, err := s.env.Query(a, iLogic)
	if err != nil {
		return err
	}
	if _, err := s.env.Call(nil, aitf, "Run", idl.ByteBuf(make([]byte, 128))); err != nil {
		return err
	}
	return s.browseEmployee(999)
}

func (s *session) deleteEmployee() error {
	// A deletion confirms only a few fields before acting.
	if err := s.browseEmployeeFields(3, fieldsPerDel); err != nil {
		return err
	}
	for _, logic := range []com.CLSID{"CLSID_BenefitsList", "CLSID_QueryEngine"} {
		inst, err := s.env.CreateInstance(nil, logic)
		if err != nil {
			return err
		}
		itf, err := s.env.Query(inst, iLogic)
		if err != nil {
			return err
		}
		if _, err := s.env.Call(nil, itf, "Run", idl.ByteBuf(make([]byte, 256))); err != nil {
			return err
		}
	}
	if _, err := s.env.Call(nil, s.mgr, "Delete", idl.Int32(3)); err != nil {
		return err
	}
	return s.statusUpdate("deleted")
}
