package benefits

import (
	"context"
	"testing"

	"repro/internal/com"
	"repro/internal/core"
)

// TestCalibrationPrintout runs every scenario through the full pipeline;
// run with -v to inspect the Table 4/5 and Figure 6 shaped numbers.
func TestCalibrationPrintout(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("calibration printout")
	}
	app := New()
	t.Logf("classes: %d", app.Classes.Len())
	adps := core.New(app)
	for _, scen := range Scenarios() {
		rep, err := adps.ScenarioExperiment(context.Background(), scen)
		if err != nil {
			t.Fatalf("%s: %v", scen, err)
		}
		middle := rep.TotalInstances - clientCount(rep)
		t.Logf("%-10s inst=%4d middle=%3d (default %3d) defComm=%7.3fs coignComm=%7.3fs save=%4.0f%% err=%+5.1f%%",
			scen, rep.TotalInstances, middle, defaultMiddle(rep),
			rep.DefaultComm.Seconds(), rep.CoignComm.Seconds(), rep.Savings*100,
			rep.PredictionErr*100)
	}
	_ = com.Client
}

func clientCount(rep *core.ScenarioReport) int { return rep.TotalInstances - rep.ServerInstances }

// defaultMiddle counts instances the developer's distribution places on
// the middle tier: everything except the 9 front-end components.
func defaultMiddle(rep *core.ScenarioReport) int { return rep.TotalInstances - 9 }
