// Package quickstart assembles the three-component demonstration
// application the quick-start example (and the coverage gate in CI) runs
// the pipeline on: a GUI viewer, a cruncher, and a server-side data
// store. The cruncher reads a lot and reports a little — exactly the
// component Coign should move to the server.
//
// The class metadata deliberately declares one activation site the
// default scenario never exercises: Crunch can create a View for a
// print-preview path that no training scenario drives. The reachability
// coverage report (coign coverage) flags the Crunch -> View site and ICC
// edge as statically reachable but unprofiled.
package quickstart

import (
	"fmt"
	"time"

	"repro/internal/com"
	"repro/internal/idl"
)

// New builds the quickstart application.
func New() *com.App {
	ifaces := idl.NewRegistry()
	ifaces.Register(&idl.InterfaceDesc{
		IID: "IStore", Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Read", Params: []idl.ParamDesc{{Name: "n", Dir: idl.In, Type: idl.TInt32}}, Result: idl.TBytes},
		},
	})
	ifaces.Register(&idl.InterfaceDesc{
		IID: "ICrunch", Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Summarize", Params: []idl.ParamDesc{{Name: "blocks", Dir: idl.In, Type: idl.TInt32}}, Result: idl.TString},
		},
	})
	ifaces.Register(&idl.InterfaceDesc{
		IID: "IView", Remotable: false, // paints through an opaque device context
		Methods: []idl.MethodDesc{
			{Name: "Show", Params: []idl.ParamDesc{
				{Name: "text", Dir: idl.In, Type: idl.TString},
				{Name: "dc", Dir: idl.In, Type: idl.TOpaque},
			}, Result: idl.TVoid},
		},
	})

	classes := com.NewClassRegistry()
	classes.Register(&com.Class{
		ID: "CLSID_Store", Name: "Store", Interfaces: []string{"IStore"},
		APIs: []string{com.APIFileRead}, Home: com.Server, Infrastructure: true,
		New: func() com.Object {
			return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
				c.Compute(time.Millisecond)
				return []idl.Value{idl.ByteBuf(make([]byte, c.Args[0].AsInt()))}, nil
			})
		},
	})
	classes.Register(&com.Class{
		ID: "CLSID_Crunch", Name: "Crunch", Interfaces: []string{"ICrunch"},
		// Crunch instantiates its Store on demand, and on the (never
		// profiled) print-preview path it could also instantiate a View.
		Activations: []com.CLSID{"CLSID_Store", "CLSID_View"},
		New: func() com.Object {
			var st *com.Interface
			return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
				if st == nil {
					inst, err := c.Create("CLSID_Store")
					if err != nil {
						return nil, err
					}
					if st, err = c.Env.Query(inst, "IStore"); err != nil {
						return nil, err
					}
				}
				total := 0
				for i := int64(0); i < c.Args[0].AsInt(); i++ {
					out, err := c.Invoke(st, "Read", idl.Int32(64<<10))
					if err != nil {
						return nil, err
					}
					total += len(out[0].Bytes)
					c.Compute(5 * time.Millisecond)
				}
				return []idl.Value{idl.String(fmt.Sprintf("crunched %d bytes", total))}, nil
			})
		},
	})
	classes.Register(&com.Class{
		ID: "CLSID_View", Name: "View", Interfaces: []string{"IView"},
		APIs: []string{com.APIGdiPaint, com.APIUserWindow},
		New: func() com.Object {
			return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
				c.Compute(time.Millisecond)
				return []idl.Value{}, nil
			})
		},
	})

	app := &com.App{
		Name: "quickstart", Classes: classes, Interfaces: ifaces,
		MainActivations: []com.CLSID{"CLSID_Crunch", "CLSID_View"},
	}
	app.Main = func(env *com.Env, scenario string, seed int64) error {
		crunch, err := env.CreateInstance(nil, "CLSID_Crunch")
		if err != nil {
			return err
		}
		view, err := env.CreateInstance(nil, "CLSID_View")
		if err != nil {
			return err
		}
		citf, err := env.Query(crunch, "ICrunch")
		if err != nil {
			return err
		}
		out, err := env.Call(nil, citf, "Summarize", idl.Int32(40))
		if err != nil {
			return err
		}
		vitf, err := env.Query(view, "IView")
		if err != nil {
			return err
		}
		_, err = env.Call(nil, vitf, "Show", out[0], idl.OpaquePtr("hdc"))
		return err
	}
	return app
}
