package binimg

import (
	"fmt"

	"repro/internal/com"
)

// BuildImage synthesizes the original (un-instrumented) binary image for
// an application: one code section per component class sized by the
// class's CodeBytes, plus the application's own import table.
func BuildImage(app *com.App) *Image {
	im := &Image{AppName: app.Name}
	im.Imports = append(im.Imports, app.Imports...)
	if len(im.Imports) == 0 {
		im.Imports = []string{app.Name + ".exe"}
	}
	for _, c := range app.Classes.Classes() {
		size := c.CodeBytes
		if size <= 0 {
			size = 1024
		}
		// Section contents are a deterministic fill; only sizes matter to
		// the pipeline, but real bytes make checksums meaningful.
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(len(c.Name) + i)
		}
		im.Sections = append(im.Sections, Section{Name: ".text$" + string(c.ID), Data: data})
		// Activation sites become relocation records the reachability
		// analysis scans back out of the image.
		if len(c.Activations) > 0 || c.DynamicActivation {
			im.Sections = append(im.Sections, Section{
				Name: RelocPrefix + string(c.ID),
				Data: EncodeReloc(c.DynamicActivation, c.Activations),
			})
		}
		// State descriptors become state-mutability records the purity
		// analysis scans back out of the image.
		if c.State != nil {
			im.Sections = append(im.Sections, Section{
				Name: StatePrefix + string(c.ID),
				Data: EncodeState(c.State),
			})
		}
	}
	if len(app.MainActivations) > 0 {
		im.Sections = append(im.Sections, Section{
			Name: RelocPrefix + MainRelocName,
			Data: EncodeReloc(false, app.MainActivations),
		})
	}
	return im
}

// Instrument performs the binary rewriter's two modifications: it inserts
// the Coign runtime into the first slot of the import table and appends a
// configuration record directing the runtime to profile with the given
// classifier. Instrumenting an already-instrumented image only replaces
// the configuration record.
func Instrument(im *Image, classifier string, depth int, ifaceMetadata map[string]string) (*Image, error) {
	if classifier == "" {
		return nil, fmt.Errorf("binimg: instrumentation requires a classifier")
	}
	out := im.clone()
	if !out.Instrumented() {
		out.Imports = append([]string{CoignRuntimeDLL}, out.Imports...)
	}
	cfg := &ConfigRecord{
		Mode:              ModeProfiling,
		Classifier:        classifier,
		ClassifierDepth:   depth,
		InterfaceMetadata: ifaceMetadata,
	}
	if out.Config != nil {
		// Preserve any accumulated in-binary profile.
		cfg.Profile = out.Config.Profile
	}
	out.Config = cfg
	return out, nil
}

// SetDistribution rewrites the configuration record for distributed
// execution: the profiling instrumentation is removed and in its place the
// lightweight runtime will load to realize (enforce) the distribution
// chosen by the graph-cutting algorithm.
func SetDistribution(im *Image, dist map[string]com.Machine, network string) (*Image, error) {
	if !im.Instrumented() {
		return nil, fmt.Errorf("binimg: cannot set a distribution on an un-instrumented image")
	}
	if im.Config == nil {
		return nil, fmt.Errorf("binimg: image has no configuration record")
	}
	if len(dist) == 0 {
		return nil, fmt.Errorf("binimg: empty distribution")
	}
	out := im.clone()
	cfg := *im.Config
	cfg.Mode = ModeDistribution
	cfg.Network = network
	cfg.Distribution = make(map[string]int, len(dist))
	for id, m := range dist {
		cfg.Distribution[id] = int(m)
	}
	out.Config = &cfg
	return out, nil
}

// DistributionMap extracts the distribution from a configuration record.
func (c *ConfigRecord) DistributionMap() map[string]com.Machine {
	if c == nil || len(c.Distribution) == 0 {
		return nil
	}
	out := make(map[string]com.Machine, len(c.Distribution))
	for id, m := range c.Distribution {
		out[id] = com.Machine(m)
	}
	return out
}

func (im *Image) clone() *Image {
	out := &Image{AppName: im.AppName}
	out.Imports = append([]string(nil), im.Imports...)
	out.Sections = append([]Section(nil), im.Sections...)
	if im.Config != nil {
		cfg := *im.Config
		out.Config = &cfg
	}
	return out
}
