package binimg

import (
	"bytes"
	"testing"
)

// FuzzDecode hardens the image decoder against arbitrary byte streams: it
// must never panic, and any successful decode must re-encode to a form
// that decodes to the same image (idempotence). Run with `go test -fuzz
// FuzzDecode ./internal/binimg` to explore beyond the seed corpus.
func FuzzDecode(f *testing.F) {
	// Seeds: a valid image, an instrumented image, and junk.
	im := BuildImage(testApp())
	var buf bytes.Buffer
	if err := im.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	inst, err := Instrument(im, "ifcb", 3, map[string]string{"I": "x"})
	if err != nil {
		f.Fatal(err)
	}
	buf.Reset()
	if err := inst.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("CoIm garbage"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(data)
		if err != nil {
			return
		}
		var re bytes.Buffer
		if err := got.Encode(&re); err != nil {
			t.Fatalf("decoded image failed to re-encode: %v", err)
		}
		again, err := Decode(re.Bytes())
		if err != nil {
			t.Fatalf("re-encoded image failed to decode: %v", err)
		}
		if again.AppName != got.AppName || len(again.Sections) != len(got.Sections) ||
			len(again.Imports) != len(got.Imports) {
			t.Fatal("decode/encode not idempotent")
		}
	})
}
