package binimg

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/com"
	"repro/internal/idl"
	"repro/internal/profile"
)

func testApp() *com.App {
	classes := com.NewClassRegistry()
	classes.Register(&com.Class{
		ID: "CLSID_A", Name: "A", CodeBytes: 2048,
		New: func() com.Object { return nil },
	})
	classes.Register(&com.Class{
		ID: "CLSID_B", Name: "B",
		New: func() com.Object { return nil },
	})
	return &com.App{
		Name:       "demo",
		Classes:    classes,
		Interfaces: idl.NewRegistry(),
		Imports:    []string{"demo.exe", "widgets.dll"},
	}
}

func TestBuildImage(t *testing.T) {
	t.Parallel()
	im := BuildImage(testApp())
	if im.AppName != "demo" {
		t.Errorf("name = %s", im.AppName)
	}
	if len(im.Imports) != 2 || im.Imports[0] != "demo.exe" {
		t.Errorf("imports = %v", im.Imports)
	}
	if len(im.Sections) != 2 {
		t.Fatalf("sections = %d", len(im.Sections))
	}
	if im.CodeBytes() != 2048+1024 { // B defaults to 1024
		t.Errorf("code bytes = %d", im.CodeBytes())
	}
	if im.Instrumented() {
		t.Error("fresh image claims instrumentation")
	}
}

func TestBuildImageDefaultImports(t *testing.T) {
	t.Parallel()
	app := testApp()
	app.Imports = nil
	im := BuildImage(app)
	if len(im.Imports) != 1 || im.Imports[0] != "demo.exe" {
		t.Errorf("imports = %v", im.Imports)
	}
}

func TestInstrumentInsertsFirstImportSlot(t *testing.T) {
	t.Parallel()
	im := BuildImage(testApp())
	inst, err := Instrument(im, "ifcb", 0, map[string]string{"IFoo": "Read(in l):v"})
	if err != nil {
		t.Fatal(err)
	}
	if !inst.Instrumented() {
		t.Fatal("not instrumented")
	}
	// The Coign runtime occupies the FIRST slot so it loads before the
	// application and all of its DLLs.
	if inst.Imports[0] != CoignRuntimeDLL || inst.Imports[1] != "demo.exe" {
		t.Errorf("imports = %v", inst.Imports)
	}
	if inst.Config == nil || inst.Config.Mode != ModeProfiling || inst.Config.Classifier != "ifcb" {
		t.Errorf("config = %+v", inst.Config)
	}
	if inst.Config.InterfaceMetadata["IFoo"] == "" {
		t.Error("interface metadata lost")
	}
	// The original image is untouched.
	if im.Instrumented() || im.Config != nil {
		t.Error("Instrument mutated its input")
	}
	// Re-instrumenting does not duplicate the import entry.
	again, err := Instrument(inst, "st", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if again.Imports[0] != CoignRuntimeDLL || again.Imports[1] != "demo.exe" || len(again.Imports) != 3 {
		t.Errorf("re-instrumented imports = %v", again.Imports)
	}
}

func TestInstrumentRequiresClassifier(t *testing.T) {
	t.Parallel()
	if _, err := Instrument(BuildImage(testApp()), "", 0, nil); err == nil {
		t.Fatal("empty classifier accepted")
	}
}

func TestSetDistribution(t *testing.T) {
	t.Parallel()
	im := BuildImage(testApp())
	inst, _ := Instrument(im, "ifcb", 0, nil)
	dist := map[string]com.Machine{"A@1": com.Client, "B@2": com.Server}
	d, err := SetDistribution(inst, dist, "10BaseT")
	if err != nil {
		t.Fatal(err)
	}
	if d.Config.Mode != ModeDistribution || d.Config.Network != "10BaseT" {
		t.Errorf("config = %+v", d.Config)
	}
	got := d.Config.DistributionMap()
	if got["A@1"] != com.Client || got["B@2"] != com.Server {
		t.Errorf("distribution = %v", got)
	}
	// Classifier survives: the lightweight runtime needs it to correlate
	// instantiations with profiled classifications.
	if d.Config.Classifier != "ifcb" {
		t.Errorf("classifier = %s", d.Config.Classifier)
	}
	// Errors.
	if _, err := SetDistribution(im, dist, "x"); err == nil {
		t.Error("un-instrumented image accepted")
	}
	if _, err := SetDistribution(inst, nil, "x"); err == nil {
		t.Error("empty distribution accepted")
	}
	broken := inst.clone()
	broken.Config = nil
	if _, err := SetDistribution(broken, dist, "x"); err == nil {
		t.Error("missing config accepted")
	}
}

func TestDistributionMapNil(t *testing.T) {
	t.Parallel()
	var c *ConfigRecord
	if c.DistributionMap() != nil {
		t.Error("nil config produced a map")
	}
	if (&ConfigRecord{}).DistributionMap() != nil {
		t.Error("empty config produced a map")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	t.Parallel()
	im := BuildImage(testApp())
	inst, _ := Instrument(im, "ifcb", 3, map[string]string{"I": "f"})
	var buf bytes.Buffer
	if err := inst.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.AppName != "demo" || !got.Instrumented() {
		t.Fatalf("decoded = %+v", got)
	}
	if len(got.Sections) != 2 || len(got.Sections[0].Data) != 2048 {
		t.Fatalf("sections lost: %d", len(got.Sections))
	}
	if got.Config.Classifier != "ifcb" || got.Config.ClassifierDepth != 3 {
		t.Fatalf("config lost: %+v", got.Config)
	}
	if !bytes.Equal(got.Sections[0].Data, inst.Sections[0].Data) {
		t.Error("section data corrupted")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	t.Parallel()
	im := BuildImage(testApp())
	var buf bytes.Buffer
	if err := im.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Flip a byte in the middle: checksum must catch it.
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/2] ^= 0xFF
	if _, err := Decode(corrupt); err == nil {
		t.Error("corrupted image decoded")
	}
	// Truncation.
	if _, err := Decode(data[:5]); err == nil {
		t.Error("truncated image decoded")
	}
	if _, err := Decode(nil); err == nil {
		t.Error("empty image decoded")
	}
	// Bad magic (fix up checksum so only the magic is wrong).
	bad := append([]byte(nil), data...)
	bad[0] ^= 1
	// Recompute trailing CRC over the modified body.
	body := bad[:len(bad)-4]
	var crcbuf bytes.Buffer
	crcbuf.Write(body)
	if _, err := Decode(bad); err == nil {
		t.Error("bad-magic image decoded (checksum should catch or magic check)")
	}
}

func TestImageFileRoundTrip(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	path := filepath.Join(dir, "demo.img")
	im := BuildImage(testApp())
	if err := im.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.AppName != im.AppName || got.CodeBytes() != im.CodeBytes() {
		t.Error("file round trip lost data")
	}
	if _, err := ReadFile(filepath.Join(dir, "nope.img")); err == nil {
		t.Error("missing file read")
	}
}

func TestProfileAccumulationInBinary(t *testing.T) {
	t.Parallel()
	im := BuildImage(testApp())
	inst, _ := Instrument(im, "ifcb", 0, nil)

	p1 := profile.New("demo", "ifcb")
	p1.Scenarios = []string{"s1"}
	p1.AddInstance(profile.InstanceRecord{ID: 1, Class: "A", Classification: "A@1"})
	p1.Edge(profile.MainProgram, "A@1").Record(100, 200, false)
	p1.InstEdge(0, 1).Record(100, 200, false)

	if err := inst.Config.AccumulateProfile(p1); err != nil {
		t.Fatal(err)
	}
	// Accumulate a second run.
	p2 := profile.New("demo", "ifcb")
	p2.Scenarios = []string{"s2"}
	p2.Edge(profile.MainProgram, "A@1").Record(50, 50, false)
	if err := inst.Config.AccumulateProfile(p2); err != nil {
		t.Fatal(err)
	}

	got, err := inst.Config.GetProfile()
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalCalls() != 2 {
		t.Errorf("accumulated calls = %d", got.TotalCalls())
	}
	if len(got.Scenarios) != 2 {
		t.Errorf("scenarios = %v", got.Scenarios)
	}
	// The in-binary summary drops instance detail.
	if len(got.InstEdges) != 0 || len(got.Instances) != 0 {
		t.Error("in-binary profile kept instance detail")
	}
	// Survives image serialization.
	var buf bytes.Buffer
	if err := inst.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	got2, err := decoded.Config.GetProfile()
	if err != nil {
		t.Fatal(err)
	}
	if got2.TotalCalls() != 2 {
		t.Error("embedded profile lost through serialization")
	}
}

func TestGetProfileEmpty(t *testing.T) {
	t.Parallel()
	c := &ConfigRecord{}
	p, err := c.GetProfile()
	if err != nil || p != nil {
		t.Fatalf("GetProfile on empty = %v, %v", p, err)
	}
}
