// Package binimg models application binaries and implements the Coign
// binary rewriter (paper §2).
//
// An Image is the synthetic analog of a Win32 PE file: a header, a DLL
// import table, code/data sections, and — after rewriting — a
// configuration record appended at the end of the binary. The rewriter
// makes exactly the two modifications the paper describes: it inserts an
// entry into the first slot of the import table to load the Coign runtime
// (which therefore always executes before the application or any of its
// DLLs), and it appends configuration information telling the runtime how
// to profile the application and classify components during execution.
package binimg

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/profile"
)

// Magic identifies the synthetic image format ("CoIm").
const Magic uint32 = 0x436f496d

// CoignRuntimeDLL is the import-table entry for the Coign runtime.
const CoignRuntimeDLL = "coign.rt"

// Mode tells the runtime what instrumentation to load.
type Mode string

// Instrumentation modes.
const (
	// ModeNone: the image has no configuration record.
	ModeNone Mode = ""
	// ModeProfiling loads the profiling informer and profiling logger.
	ModeProfiling Mode = "profiling"
	// ModeDistribution loads the lightweight distribution informer, the
	// null logger, and the component factory that realizes the chosen
	// distribution.
	ModeDistribution Mode = "distribution"
)

// Section is a named chunk of the binary.
type Section struct {
	Name string
	Data []byte
}

// ConfigRecord is the configuration information the rewriter appends to
// the binary. It tells the Coign runtime how to profile the application
// and how to classify components during execution; after analysis it
// additionally carries the distribution map that the lightweight runtime
// enforces.
type ConfigRecord struct {
	Mode            Mode   `json:"mode"`
	Classifier      string `json:"classifier"`
	ClassifierDepth int    `json:"classifierDepth"`
	// InterfaceMetadata maps IIDs to format strings so the runtime can
	// reconstruct static interface metadata without the original IDL.
	InterfaceMetadata map[string]string `json:"interfaceMetadata,omitempty"`
	// Distribution maps classification ids to machine numbers (the output
	// of the profile analysis engine).
	Distribution map[string]int `json:"distribution,omitempty"`
	// Network names the network profile the distribution was computed for.
	Network string `json:"network,omitempty"`
	// Profile optionally accumulates classification-level communication
	// summaries directly in the binary, the storage-saving alternative to
	// separate log files (paper §2).
	Profile *profileBlob `json:"profile,omitempty"`
}

// profileBlob wraps a profile's serialized form for embedding.
type profileBlob struct {
	Data []byte `json:"data"`
}

// Image is a synthetic application binary.
type Image struct {
	AppName  string
	Imports  []string
	Sections []Section
	Config   *ConfigRecord
}

// Instrumented reports whether the Coign runtime occupies the first import
// slot.
func (im *Image) Instrumented() bool {
	return len(im.Imports) > 0 && im.Imports[0] == CoignRuntimeDLL
}

// CodeBytes returns the total size of all sections.
func (im *Image) CodeBytes() int {
	n := 0
	for _, s := range im.Sections {
		n += len(s.Data)
	}
	return n
}

// SetProfile embeds a profile summary in the configuration record,
// replacing any previous one. Instance-level detail is dropped: the
// in-binary form accumulates communication from similar interface calls
// into single entries.
func (c *ConfigRecord) SetProfile(p *profile.Profile) error {
	compact := profile.New(p.App, p.Classifier)
	if err := compact.Merge(p); err != nil {
		return err
	}
	compact.DropInstanceDetail()
	var buf bytes.Buffer
	if err := compact.Encode(&buf); err != nil {
		return err
	}
	c.Profile = &profileBlob{Data: buf.Bytes()}
	return nil
}

// GetProfile extracts the embedded profile summary, or nil if none.
func (c *ConfigRecord) GetProfile() (*profile.Profile, error) {
	if c.Profile == nil {
		return nil, nil
	}
	return profile.Decode(bytes.NewReader(c.Profile.Data))
}

// AccumulateProfile merges a run's profile into the embedded summary,
// creating it if absent.
func (c *ConfigRecord) AccumulateProfile(p *profile.Profile) error {
	existing, err := c.GetProfile()
	if err != nil {
		return err
	}
	if existing == nil {
		return c.SetProfile(p)
	}
	if err := existing.Merge(p); err != nil {
		return err
	}
	return c.SetProfile(existing)
}

// --- serialization ---

// The container format is length-prefixed little-endian binary with a
// trailing CRC32: magic, app name, import table, sections, optional
// config record (JSON).

func writeString(w *countingWriter, s string) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(len(s)))
	w.Write(b[:])
	w.Write([]byte(s))
}

func writeBytes(w *countingWriter, p []byte) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(len(p)))
	w.Write(b[:])
	w.Write(p)
}

type countingWriter struct {
	w   io.Writer
	crc uint32
	err error
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	if cw.err != nil {
		return 0, cw.err
	}
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p)
	n, err := cw.w.Write(p)
	cw.err = err
	return n, err
}

// Encode writes the image in container format.
func (im *Image) Encode(w io.Writer) error {
	cw := &countingWriter{w: w}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], Magic)
	cw.Write(b[:])
	writeString(cw, im.AppName)
	binary.LittleEndian.PutUint32(b[:], uint32(len(im.Imports)))
	cw.Write(b[:])
	for _, imp := range im.Imports {
		writeString(cw, imp)
	}
	binary.LittleEndian.PutUint32(b[:], uint32(len(im.Sections)))
	cw.Write(b[:])
	for _, s := range im.Sections {
		writeString(cw, s.Name)
		writeBytes(cw, s.Data)
	}
	if im.Config != nil {
		cfg, err := json.Marshal(im.Config)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(b[:], 1)
		cw.Write(b[:])
		writeBytes(cw, cfg)
	} else {
		binary.LittleEndian.PutUint32(b[:], 0)
		cw.Write(b[:])
	}
	if cw.err != nil {
		return cw.err
	}
	// Trailing checksum (not itself checksummed).
	binary.LittleEndian.PutUint32(b[:], cw.crc)
	_, err := w.Write(b[:])
	return err
}

type reader struct {
	buf []byte
	off int
}

func (r *reader) u32() (uint32, error) {
	if r.off+4 > len(r.buf) {
		return 0, fmt.Errorf("binimg: truncated image at offset %d", r.off)
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if r.off+int(n) > len(r.buf) {
		return "", fmt.Errorf("binimg: truncated string at offset %d", r.off)
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if r.off+int(n) > len(r.buf) {
		return nil, fmt.Errorf("binimg: truncated data at offset %d", r.off)
	}
	p := make([]byte, n)
	copy(p, r.buf[r.off:])
	r.off += int(n)
	return p, nil
}

// Decode reads an image from container bytes, verifying the checksum.
func Decode(data []byte) (*Image, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("binimg: image too short (%d bytes)", len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	wantCRC := binary.LittleEndian.Uint32(tail)
	if got := crc32.ChecksumIEEE(body); got != wantCRC {
		return nil, fmt.Errorf("binimg: checksum mismatch (image corrupted)")
	}
	r := &reader{buf: body}
	magic, err := r.u32()
	if err != nil {
		return nil, err
	}
	if magic != Magic {
		return nil, fmt.Errorf("binimg: bad magic %#x", magic)
	}
	im := &Image{}
	if im.AppName, err = r.str(); err != nil {
		return nil, err
	}
	nImp, err := r.u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nImp; i++ {
		s, err := r.str()
		if err != nil {
			return nil, err
		}
		im.Imports = append(im.Imports, s)
	}
	nSec, err := r.u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nSec; i++ {
		name, err := r.str()
		if err != nil {
			return nil, err
		}
		data, err := r.bytes()
		if err != nil {
			return nil, err
		}
		im.Sections = append(im.Sections, Section{Name: name, Data: data})
	}
	hasCfg, err := r.u32()
	if err != nil {
		return nil, err
	}
	if hasCfg == 1 {
		raw, err := r.bytes()
		if err != nil {
			return nil, err
		}
		var cfg ConfigRecord
		if err := json.Unmarshal(raw, &cfg); err != nil {
			return nil, fmt.Errorf("binimg: config record: %w", err)
		}
		im.Config = &cfg
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("binimg: %d trailing bytes", len(body)-r.off)
	}
	return im, nil
}

// WriteFile writes the image to disk.
func (im *Image) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := im.Encode(f); err != nil {
		return err
	}
	return f.Close()
}

// ReadFile reads an image from disk.
func ReadFile(path string) (*Image, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
