package binimg

import (
	"fmt"
	"strings"

	"repro/internal/com"
)

// Activation-site relocation records.
//
// The rewriter embeds one ".reloc$<CLSID>" section per component class
// that performs instantiations (and ".reloc$<main>" for the main
// program's activation sites). The payload is a line-oriented record the
// reachability analysis parses back out of the binary:
//
//	coign-reloc v1
//	dynamic            (optional: the class computes CLSIDs at run time)
//	activate <CLSID>   (one line per statically known activation target)
//
// The format is deliberately strict — an unknown directive or a missing
// header is a parse error, never a guess — so corrupted images surface as
// errors in the scanner (see reach.FuzzReachScan).

// RelocPrefix is the naming convention for activation-record sections.
const RelocPrefix = ".reloc$"

// MainRelocName keys the main program's activation record; the full
// section name is RelocPrefix + MainRelocName.
const MainRelocName = "<main>"

// relocHeader is the first line of every activation record.
const relocHeader = "coign-reloc v1"

// EncodeReloc serializes an activation record payload.
func EncodeReloc(dynamic bool, targets []com.CLSID) []byte {
	var b strings.Builder
	b.WriteString(relocHeader)
	b.WriteByte('\n')
	if dynamic {
		b.WriteString("dynamic\n")
	}
	for _, t := range targets {
		b.WriteString("activate ")
		b.WriteString(string(t))
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// DecodeReloc parses an activation record payload. Malformed payloads
// produce errors, never panics.
func DecodeReloc(data []byte) (dynamic bool, targets []com.CLSID, err error) {
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || lines[0] != relocHeader {
		return false, nil, fmt.Errorf("binimg: activation record missing %q header", relocHeader)
	}
	for _, line := range lines[1:] {
		switch {
		case line == "":
			// Trailing newline / blank separators are harmless.
		case line == "dynamic":
			dynamic = true
		case strings.HasPrefix(line, "activate "):
			clsid := strings.TrimPrefix(line, "activate ")
			if clsid == "" {
				return false, nil, fmt.Errorf("binimg: activation record with empty target CLSID")
			}
			targets = append(targets, com.CLSID(clsid))
		default:
			return false, nil, fmt.Errorf("binimg: unknown activation-record directive %q", line)
		}
	}
	return dynamic, targets, nil
}
