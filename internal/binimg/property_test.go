package binimg

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomImage builds an arbitrary image from a seed.
func randomImage(seed int64) *Image {
	rng := rand.New(rand.NewSource(seed))
	im := &Image{AppName: "app" + string(rune('a'+rng.Intn(26)))}
	for i := 0; i < rng.Intn(5); i++ {
		im.Imports = append(im.Imports, string(rune('a'+i))+".dll")
	}
	for i := 0; i < rng.Intn(6); i++ {
		data := make([]byte, rng.Intn(512))
		rng.Read(data)
		im.Sections = append(im.Sections, Section{
			Name: ".s" + string(rune('0'+i)), Data: data,
		})
	}
	if rng.Intn(2) == 0 {
		im.Config = &ConfigRecord{
			Mode:            ModeProfiling,
			Classifier:      "ifcb",
			ClassifierDepth: rng.Intn(8),
		}
	}
	return im
}

func TestPropertyImageRoundTrip(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		im := randomImage(seed)
		var buf bytes.Buffer
		if err := im.Encode(&buf); err != nil {
			return false
		}
		got, err := Decode(buf.Bytes())
		if err != nil {
			return false
		}
		if got.AppName != im.AppName || len(got.Imports) != len(im.Imports) ||
			len(got.Sections) != len(im.Sections) {
			return false
		}
		for i := range im.Sections {
			if !bytes.Equal(got.Sections[i].Data, im.Sections[i].Data) {
				return false
			}
		}
		if (got.Config == nil) != (im.Config == nil) {
			return false
		}
		if im.Config != nil && got.Config.ClassifierDepth != im.Config.ClassifierDepth {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertySingleBitCorruptionDetected(t *testing.T) {
	t.Parallel()
	// Any single-bit flip anywhere in the container is rejected (either by
	// the checksum or by structural validation) — a decode never silently
	// yields a different image.
	f := func(seed int64, pos uint16, bit uint8) bool {
		im := randomImage(seed)
		var buf bytes.Buffer
		if err := im.Encode(&buf); err != nil {
			return false
		}
		data := append([]byte(nil), buf.Bytes()...)
		p := int(pos) % len(data)
		data[p] ^= 1 << (bit % 8)
		_, err := Decode(data)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
