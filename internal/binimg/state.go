package binimg

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/com"
)

// State-mutability records.
//
// The rewriter embeds one ".state$<CLSID>" section per component class
// that ships a state descriptor. The payload is a line-oriented record
// the purity analysis parses back out of the binary:
//
//	coign-state v1
//	bytes <N>        (size of the instance state block; 0 = stateless)
//	read <method>    (one line per declared state-reading method)
//	write <method>   (one line per declared state-writing method)
//
// Like activation records the format is deliberately strict — an unknown
// directive, a missing header, or a malformed size is a parse error,
// never a guess — so corrupted images surface as errors in the scanner
// (see purity.FuzzPurityScan).

// StatePrefix is the naming convention for state-descriptor sections.
const StatePrefix = ".state$"

// stateHeader is the first line of every state record.
const stateHeader = "coign-state v1"

// EncodeState serializes a state descriptor payload.
func EncodeState(s *com.StateDesc) []byte {
	var b strings.Builder
	b.WriteString(stateHeader)
	b.WriteByte('\n')
	b.WriteString("bytes ")
	b.WriteString(strconv.Itoa(s.Bytes))
	b.WriteByte('\n')
	for _, m := range s.Reads {
		b.WriteString("read ")
		b.WriteString(m)
		b.WriteByte('\n')
	}
	for _, m := range s.Writes {
		b.WriteString("write ")
		b.WriteString(m)
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// DecodeState parses a state record payload. Malformed payloads produce
// errors, never panics.
func DecodeState(data []byte) (*com.StateDesc, error) {
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || lines[0] != stateHeader {
		return nil, fmt.Errorf("binimg: state record missing %q header", stateHeader)
	}
	desc := &com.StateDesc{Bytes: -1}
	for _, line := range lines[1:] {
		switch {
		case line == "":
			// Trailing newline / blank separators are harmless.
		case strings.HasPrefix(line, "bytes "):
			n, err := strconv.Atoi(strings.TrimPrefix(line, "bytes "))
			if err != nil || n < 0 {
				return nil, fmt.Errorf("binimg: state record with bad size %q", line)
			}
			if desc.Bytes >= 0 {
				return nil, fmt.Errorf("binimg: state record with duplicate bytes directive")
			}
			desc.Bytes = n
		case strings.HasPrefix(line, "read "):
			m := strings.TrimPrefix(line, "read ")
			if m == "" {
				return nil, fmt.Errorf("binimg: state record with empty read method")
			}
			desc.Reads = append(desc.Reads, m)
		case strings.HasPrefix(line, "write "):
			m := strings.TrimPrefix(line, "write ")
			if m == "" {
				return nil, fmt.Errorf("binimg: state record with empty write method")
			}
			desc.Writes = append(desc.Writes, m)
		default:
			return nil, fmt.Errorf("binimg: unknown state-record directive %q", line)
		}
	}
	if desc.Bytes < 0 {
		return nil, fmt.Errorf("binimg: state record missing bytes directive")
	}
	return desc, nil
}
