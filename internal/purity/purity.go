// Package purity implements a conservative static state-mutability
// analysis over application binary images.
//
// Replicating a component onto several machines (so its ICC edges vanish
// from the cut network, per Papp et al.) is only sound when the component
// is stateless or read-mostly. This package supplies the static proof:
// the rewriter embeds every class's state declaration as a state record
// (".state$<CLSID>" sections, see binimg.EncodeState); the scanner here
// reads them back out of the image, joins them with per-method IDL
// metadata, and classifies every method read-only, mutating, or unknown
// — unknown is conservatively mutating. A fixed point over the
// reachability analysis's static ICC graph then closes transitive
// impurity: a component that can reach a mutating method is itself
// impure, because a replica invoking it would duplicate the mutation.
// Folding in profile evidence (observed per-method call and write
// counts) grades each profiled component Stateless, ReadMostly(θ), or
// Stateful with per-component provenance and emits the ReplicationSet
// the graph layer consumes (see graph.Replicate). A verifier diffs
// profile-observed mutations against the static read-only claims with
// the same zero-miss discipline as the coverage gate: any observed
// mutation through a method classified read-only is a hard error.
package purity

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/binimg"
	"repro/internal/com"
	"repro/internal/reach"
)

// MethodPurity classifies one method's effect on its instance's state.
type MethodPurity string

// Method purity lattice: ReadOnly < Unknown < Mutating in conservatism;
// Unknown is treated as Mutating everywhere it matters.
const (
	ReadOnly MethodPurity = "read-only"
	Mutating MethodPurity = "mutating"
	Unknown  MethodPurity = "unknown"
)

// MethodInfo is the classification of one method of one class, with the
// provenance of the decision.
type MethodInfo struct {
	Method     string       `json:"method"`
	Purity     MethodPurity `json:"purity"`
	Provenance string       `json:"provenance"`
}

// ClassInfo is the per-class output of the static analysis.
type ClassInfo struct {
	Class         string `json:"class"`
	HasDescriptor bool   `json:"hasDescriptor"`
	StateBytes    int    `json:"stateBytes"`
	// Methods lists every method of the class's interfaces, sorted by
	// name, with its local (pre-propagation) purity.
	Methods []MethodInfo `json:"methods"`
	// LocallyPure reports that every method is read-only before
	// propagation.
	LocallyPure bool `json:"locallyPure"`
	// ReachesImpure reports that the class can reach (via the static ICC
	// graph) another class with a mutating or unknown method.
	ReachesImpure bool `json:"reachesImpure,omitempty"`
	// Impure is LocallyPure's closure: locally impure or reaches impure.
	Impure bool `json:"impure"`
	// ImpureVia records the first derivation of transitive impurity.
	ImpureVia string `json:"impureVia,omitempty"`

	methodIndex map[string]*MethodInfo
}

// MethodPurity returns the local purity of the named method; Unknown for
// methods the analysis never saw.
func (ci *ClassInfo) MethodPurity(name string) MethodPurity {
	if m := ci.methodIndex[name]; m != nil {
		return m.Purity
	}
	return Unknown
}

// unknownMethods counts methods whose mutability is unknown.
func (ci *ClassInfo) unknownMethods() int {
	n := 0
	for i := range ci.Methods {
		if ci.Methods[i].Purity == Unknown {
			n++
		}
	}
	return n
}

// Report is the output of the static purity analysis.
type Report struct {
	App string `json:"app"`
	// Classes holds every registered class, sorted by name.
	Classes []*ClassInfo `json:"classes"`
	// UnknownClasses lists CLSIDs of state records whose class is absent
	// from the registry — stale state metadata.
	UnknownClasses []string `json:"unknownClasses,omitempty"`

	index map[string]*ClassInfo
}

// Class returns the per-class analysis for the named class, or nil.
func (r *Report) Class(name string) *ClassInfo { return r.index[name] }

// Scan runs the purity analysis: it parses the image's state records,
// joins them with the class and interface registries to classify every
// method, and closes transitive impurity over the reachability graph's
// static ICC edges. rg may be nil, in which case the reachability
// analysis runs internally. Malformed images produce errors, never
// panics.
func Scan(img *binimg.Image, app *com.App, rg *reach.Graph) (*Report, error) {
	return ScanAliased(img, app, rg, nil)
}

// ScanAliased is Scan with an alias-refined impurity closure: when may is
// non-nil, transitive impurity propagates across an ICC edge only when
// may(src, dst) reports the two classes may hold pointers into shared
// mutable state. The justification is replication with call routing:
// replicas serve read traffic and route downstream calls to the single
// authoritative callee instance, so a replica calling an impure component
// does not duplicate the mutation — the replication hazard is raw
// pointers into memory the callee mutates, which is exactly the may-alias
// relation. may == nil propagates across every edge (Scan's behavior).
// Because the refinement only removes propagation edges, the resulting
// replication set is always a superset of the unrefined one.
func ScanAliased(img *binimg.Image, app *com.App, rg *reach.Graph, may func(a, b string) bool) (*Report, error) {
	if img == nil {
		return nil, fmt.Errorf("purity: nil image")
	}
	if app == nil || app.Classes == nil || app.Interfaces == nil {
		return nil, fmt.Errorf("purity: purity analysis requires the class and interface registries")
	}
	if rg == nil {
		var err error
		rg, err = reach.Scan(img, app)
		if err != nil {
			return nil, fmt.Errorf("purity: %w", err)
		}
	}

	// Pass 1: parse state records, keyed by CLSID. Split records for one
	// class are rejected — a class has exactly one state declaration.
	states := make(map[com.CLSID]*com.StateDesc)
	var unknown []string
	for _, s := range img.Sections {
		key, ok := strings.CutPrefix(s.Name, binimg.StatePrefix)
		if !ok {
			continue
		}
		if key == "" {
			return nil, fmt.Errorf("purity: state section with empty owner")
		}
		desc, err := binimg.DecodeState(s.Data)
		if err != nil {
			return nil, fmt.Errorf("purity: section %s: %w", s.Name, err)
		}
		clsid := com.CLSID(key)
		if _, dup := states[clsid]; dup {
			return nil, fmt.Errorf("purity: duplicate state record for %s", clsid)
		}
		states[clsid] = desc
		if app.Classes.Lookup(clsid) == nil {
			unknown = append(unknown, key)
		}
	}
	sort.Strings(unknown)

	r := &Report{
		App:            img.AppName,
		UnknownClasses: unknown,
		index:          make(map[string]*ClassInfo),
	}

	// Pass 2: local method classification. A method name is classified
	// once per class even when several interfaces declare it; the IDL
	// cacheable fallback then requires every declaration to be cacheable.
	for _, c := range app.Classes.Classes() {
		desc := states[c.ID]
		ci := &ClassInfo{
			Class:         c.Name,
			HasDescriptor: desc != nil,
			methodIndex:   make(map[string]*MethodInfo),
		}
		if desc != nil {
			ci.StateBytes = desc.Bytes
		}
		cacheable := make(map[string]bool)
		var names []string
		for _, iid := range c.Interfaces {
			d := app.Interfaces.Lookup(iid)
			if d == nil {
				return nil, fmt.Errorf("purity: class %s implements unregistered interface %s", c.Name, iid)
			}
			for mi := range d.Methods {
				m := &d.Methods[mi]
				if _, seen := cacheable[m.Name]; !seen {
					names = append(names, m.Name)
					cacheable[m.Name] = m.Cacheable
				} else {
					cacheable[m.Name] = cacheable[m.Name] && m.Cacheable
				}
			}
		}
		sort.Strings(names)
		ci.LocallyPure = true
		for _, name := range names {
			mi := MethodInfo{Method: name}
			switch {
			case desc != nil && desc.WritesMethod(name):
				mi.Purity = Mutating
				mi.Provenance = "declared state writer"
			case desc != nil && desc.Bytes == 0:
				mi.Purity = ReadOnly
				mi.Provenance = "class declares no state"
			case desc != nil && desc.ReadsMethod(name):
				mi.Purity = ReadOnly
				mi.Provenance = "declared state reader"
			case cacheable[name]:
				mi.Purity = ReadOnly
				mi.Provenance = "IDL marks the method cacheable (results depend only on arguments)"
			case desc != nil:
				mi.Purity = Unknown
				mi.Provenance = "method not covered by the state descriptor"
			default:
				mi.Purity = Unknown
				mi.Provenance = "class ships no state descriptor"
			}
			if mi.Purity != ReadOnly {
				ci.LocallyPure = false
			}
			ci.Methods = append(ci.Methods, mi)
		}
		for i := range ci.Methods {
			ci.methodIndex[ci.Methods[i].Method] = &ci.Methods[i]
		}
		r.Classes = append(r.Classes, ci)
		r.index[c.Name] = ci
	}
	sort.Slice(r.Classes, func(i, j int) bool { return r.Classes[i].Class < r.Classes[j].Class })

	r.propagate(rg, may)
	return r, nil
}

// propagate closes transitive impurity over the static ICC graph: a
// class that holds an interface to an impure class can invoke a mutating
// method on it, so the holder is impure too — the provider-scoped
// propagation dual of reach's interface flows. Edges sourced at the main
// program are skipped (the main program is not a component and is never
// replicated). A non-nil may filter confines propagation to may-alias
// edges (see ScanAliased). Iteration is deterministic: the edge list is
// sorted and the worklist runs to a fixed point.
func (r *Report) propagate(rg *reach.Graph, may func(a, b string) bool) {
	impure := make(map[string]bool)
	for _, ci := range r.Classes {
		if !ci.LocallyPure {
			impure[ci.Class] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, e := range rg.Edges {
			ci := r.index[e.Src]
			if ci == nil || ci.ReachesImpure {
				continue
			}
			dst := r.index[e.Dst]
			if dst == nil || !impure[e.Dst] {
				continue
			}
			if may != nil && !may(e.Src, e.Dst) {
				continue
			}
			ci.ReachesImpure = true
			ci.ImpureVia = fmt.Sprintf("can call impure class %s via %s", e.Dst, e.IID)
			if !impure[e.Src] {
				impure[e.Src] = true
				changed = true
			}
		}
	}
	for _, ci := range r.Classes {
		ci.Impure = !ci.LocallyPure || ci.ReachesImpure
	}
}
