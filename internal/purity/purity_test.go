package purity

import (
	"strings"
	"testing"

	"repro/internal/binimg"
	"repro/internal/com"
	"repro/internal/idl"
	"repro/internal/profile"
	"repro/internal/reach"
	"repro/internal/staticanal"
)

// nullObject satisfies the class registry's constructor requirement; the
// purity analysis is static and never invokes it.
func nullObject() com.Object {
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) { return nil, nil })
}

// testApp builds a four-class application exercising every local
// classification branch:
//
//	Pure    stateless descriptor, one cacheable method      -> stateless
//	Cache   64B state, Peek declared a reader, never written -> read-mostly
//	Store   1KB state, Get reads / Put writes                -> profile-dependent
//	NoDesc  no state descriptor at all                       -> stateful
func testApp() *com.App {
	ifaces := idl.NewRegistry()
	ifaces.Register(&idl.InterfaceDesc{
		IID: "IPure", Name: "IPure", Remotable: true,
		Methods: []idl.MethodDesc{{Name: "Hash", Cacheable: true, Result: idl.TInt32}},
	})
	ifaces.Register(&idl.InterfaceDesc{
		IID: "ICache", Name: "ICache", Remotable: true,
		Methods: []idl.MethodDesc{{Name: "Peek", Result: idl.TInt32}},
	})
	ifaces.Register(&idl.InterfaceDesc{
		IID: "IStore", Name: "IStore", Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Get", Result: idl.TInt32},
			{Name: "Put", Params: []idl.ParamDesc{{Name: "v", Dir: idl.In, Type: idl.TInt32}}, Result: idl.TInt32},
		},
	})
	ifaces.Register(&idl.InterfaceDesc{
		IID: "IMisc", Name: "IMisc", Remotable: true,
		Methods: []idl.MethodDesc{{Name: "Do", Result: idl.TInt32}},
	})

	classes := com.NewClassRegistry()
	classes.Register(&com.Class{
		ID: "CLSID_Pure", Name: "Pure", Interfaces: []string{"IPure"},
		State: &com.StateDesc{Bytes: 0},
		New:   nullObject,
	})
	classes.Register(&com.Class{
		ID: "CLSID_Cache", Name: "Cache", Interfaces: []string{"ICache"},
		State: &com.StateDesc{Bytes: 64, Reads: []string{"Peek"}},
		New:   nullObject,
	})
	classes.Register(&com.Class{
		ID: "CLSID_Store", Name: "Store", Interfaces: []string{"IStore"},
		State: &com.StateDesc{Bytes: 1024, Reads: []string{"Get"}, Writes: []string{"Put"}},
		New:   nullObject,
	})
	classes.Register(&com.Class{
		ID: "CLSID_NoDesc", Name: "NoDesc", Interfaces: []string{"IMisc"},
		New: nullObject,
	})
	return &com.App{
		Name:       "puritytest",
		Classes:    classes,
		Interfaces: ifaces,
		Main:       func(env *com.Env, scenario string, seed int64) error { return nil },
	}
}

func mustScan(t *testing.T, app *com.App, rg *reach.Graph) *Report {
	t.Helper()
	r, err := Scan(binimg.BuildImage(app), app, rg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestScanLocalClassification(t *testing.T) {
	t.Parallel()
	r := mustScan(t, testApp(), &reach.Graph{})

	pure := r.Class("Pure")
	if pure == nil || !pure.LocallyPure || pure.MethodPurity("Hash") != ReadOnly {
		t.Fatalf("Pure = %+v, want locally pure with read-only Hash", pure)
	}
	cache := r.Class("Cache")
	if cache == nil || !cache.LocallyPure || cache.StateBytes != 64 {
		t.Fatalf("Cache = %+v, want locally pure with 64 state bytes", cache)
	}
	store := r.Class("Store")
	if store == nil || store.LocallyPure {
		t.Fatalf("Store = %+v, want locally impure (Put writes)", store)
	}
	if got := store.MethodPurity("Get"); got != ReadOnly {
		t.Fatalf("Store.Get purity = %s, want read-only", got)
	}
	if got := store.MethodPurity("Put"); got != Mutating {
		t.Fatalf("Store.Put purity = %s, want mutating", got)
	}
	nodesc := r.Class("NoDesc")
	if nodesc == nil || nodesc.LocallyPure || nodesc.MethodPurity("Do") != Unknown {
		t.Fatalf("NoDesc = %+v, want unknown-mutability methods", nodesc)
	}
	if nodesc.HasDescriptor {
		t.Fatal("NoDesc reports a state descriptor it does not have")
	}
}

func TestScanPropagatesImpurity(t *testing.T) {
	t.Parallel()
	// Pure can call Store (impure), Cache can call Pure: impurity must
	// close transitively, and edges from the main program are ignored.
	rg := &reach.Graph{Edges: []reach.Edge{
		{Src: "Pure", Dst: "Store", IID: "IStore"},
		{Src: "Cache", Dst: "Pure", IID: "IPure"},
		{Src: profile.MainProgram, Dst: "Store", IID: "IStore"},
	}}
	r := mustScan(t, testApp(), rg)
	if ci := r.Class("Pure"); !ci.ReachesImpure || !ci.Impure {
		t.Fatalf("Pure = %+v, want transitively impure via Store", ci)
	}
	if ci := r.Class("Cache"); !ci.ReachesImpure || !strings.Contains(ci.ImpureVia, "Pure") {
		t.Fatalf("Cache = %+v, want impure via Pure", ci)
	}
	if ci := r.Class("Store"); ci.ReachesImpure {
		t.Fatalf("Store = %+v: locally impure, must not also claim reach-impurity", ci)
	}
}

// gradeProfile builds a profile with one classification per class and the
// given call/write counts for Store.
func gradeProfile(storeCalls, storeWrites int64) *profile.Profile {
	p := &profile.Profile{
		App:             "puritytest",
		Classifications: make(map[string]*profile.ClassificationInfo),
		Methods:         make(map[profile.MethodKey]*profile.MethodStats),
	}
	for _, class := range []string{"Pure", "Cache", "Store", "NoDesc"} {
		id := class + "#0"
		p.Classifications[id] = &profile.ClassificationInfo{ID: id, Class: class, Instances: 1}
	}
	p.Classifications[profile.MainProgram] = &profile.ClassificationInfo{ID: profile.MainProgram, Class: profile.MainProgram}
	p.Methods[profile.MethodKey{Classification: "Store#0", Method: "Get"}] = &profile.MethodStats{Calls: storeCalls}
	p.Methods[profile.MethodKey{Classification: "Store#0", Method: "Put"}] = &profile.MethodStats{Calls: storeWrites, Writes: storeWrites}
	return p
}

func TestGradeThetaBoundary(t *testing.T) {
	t.Parallel()
	r := mustScan(t, testApp(), &reach.Graph{})

	// 2 writes over 100 calls = 0.02 <= 0.05: read-mostly.
	g := r.Grade(gradeProfile(98, 2), 0)
	if g.Theta != DefaultTheta {
		t.Fatalf("theta = %v, want default %v", g.Theta, DefaultTheta)
	}
	if cg := g.Component("Pure#0"); cg == nil || cg.Grade != GradeStateless {
		t.Fatalf("Pure#0 = %+v, want stateless", cg)
	}
	if cg := g.Component("Cache#0"); cg == nil || cg.Grade != GradeReadMostly {
		t.Fatalf("Cache#0 = %+v, want read-mostly (state never written)", cg)
	}
	if cg := g.Component("Store#0"); cg == nil || cg.Grade != GradeReadMostly {
		t.Fatalf("Store#0 = %+v, want read-mostly under theta", cg)
	}
	if cg := g.Component("NoDesc#0"); cg == nil || cg.Grade != GradeStateful {
		t.Fatalf("NoDesc#0 = %+v, want stateful", cg)
	}
	if g.Component(profile.MainProgram) != nil {
		t.Fatal("the main program must never be graded")
	}
	want := []string{"Cache#0", "Pure#0", "Store#0"}
	if got := g.Replication.Classifications; len(got) != len(want) ||
		got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("replication set = %v, want %v", got, want)
	}
	if !g.Replication.Eligible("Store#0") || g.Replication.Eligible("NoDesc#0") {
		t.Fatal("replication eligibility disagrees with the set")
	}

	// 30 writes over 60 calls = 0.5 > theta: stateful.
	g = r.Grade(gradeProfile(30, 30), 0)
	if cg := g.Component("Store#0"); cg == nil || cg.Grade != GradeStateful {
		t.Fatalf("Store#0 = %+v, want stateful above theta", cg)
	}

	// Declared writers with no profile evidence stay stateful.
	g = r.Grade(gradeProfile(0, 0), 0)
	if cg := g.Component("Store#0"); cg == nil || cg.Grade != GradeStateful {
		t.Fatalf("Store#0 with zero calls = %+v, want stateful", cg)
	}
}

func TestVerifyPurityMiss(t *testing.T) {
	t.Parallel()
	r := mustScan(t, testApp(), &reach.Graph{})
	p := gradeProfile(10, 1)

	if fs := r.Verify(p); len(fs) != 0 {
		t.Fatalf("clean profile produced findings: %v", fs)
	}

	// A mutation observed through Store.Get — statically claimed
	// read-only — must be a hard error.
	p.Methods[profile.MethodKey{Classification: "Store#0", Method: "Get"}].Writes = 3
	fs := r.Verify(p)
	if len(fs) != 1 || fs[0].Kind != KindPurityMiss || fs[0].Severity != staticanal.SeverityError {
		t.Fatalf("findings = %v, want one %s error", fs, KindPurityMiss)
	}
	if !strings.Contains(fs[0].Detail, "Store#0.Get") {
		t.Fatalf("finding does not name the method: %s", fs[0].Detail)
	}

	// Mutations through an unclassified component are warnings, not misses.
	p = gradeProfile(10, 1)
	p.Methods[profile.MethodKey{Classification: "Ghost#9", Method: "Do"}] = &profile.MethodStats{Calls: 1, Writes: 1}
	fs = r.Verify(p)
	if len(fs) != 1 || fs[0].Kind != staticanal.KindUnknownClass || fs[0].Severity != staticanal.SeverityWarning {
		t.Fatalf("findings = %v, want one unknown-class warning", fs)
	}
}

func TestScanRejectsMalformedImages(t *testing.T) {
	t.Parallel()
	app := testApp()
	corrupt := []struct {
		name string
		data []byte
	}{
		{"empty payload", nil},
		{"bad header", []byte("coign-state v9\nbytes 1\n")},
		{"bad size", []byte("coign-state v1\nbytes -4\n")},
		{"unknown directive", []byte("coign-state v1\nbytes 1\nzap Get\n")},
		{"missing bytes", []byte("coign-state v1\nread Get\n")},
	}
	for _, c := range corrupt {
		img := binimg.BuildImage(app)
		img.Sections = append(img.Sections, binimg.Section{Name: binimg.StatePrefix + "CLSID_X", Data: c.data})
		if _, err := Scan(img, app, &reach.Graph{}); err == nil {
			t.Errorf("%s: Scan accepted a corrupt state section", c.name)
		}
	}

	// A state record for an unregistered class is stale metadata, not an
	// error: it is reported, not rejected.
	img := binimg.BuildImage(app)
	img.Sections = append(img.Sections, binimg.Section{
		Name: binimg.StatePrefix + "CLSID_Stale",
		Data: binimg.EncodeState(&com.StateDesc{Bytes: 8}),
	})
	r, err := Scan(img, app, &reach.Graph{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.UnknownClasses) != 1 || r.UnknownClasses[0] != "CLSID_Stale" {
		t.Fatalf("UnknownClasses = %v, want [CLSID_Stale]", r.UnknownClasses)
	}
}

// FuzzPurityScan feeds arbitrary bytes through a state section: Scan must
// either parse or error, never panic, and duplicate records must be
// rejected.
func FuzzPurityScan(f *testing.F) {
	f.Add([]byte("coign-state v1\nbytes 64\nread Get\nwrite Put\n"))
	f.Add([]byte("coign-state v1\nbytes 0\n"))
	f.Add([]byte("coign-state v1\nbytes 9999999999999999999\n"))
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		app := testApp()
		img := binimg.BuildImage(app)
		img.Sections = append(img.Sections, binimg.Section{Name: binimg.StatePrefix + "CLSID_Fuzz", Data: data})
		r, err := Scan(img, app, &reach.Graph{})
		if err != nil {
			return
		}
		// Parsed: the decoded record must round-trip through the report.
		if len(r.UnknownClasses) != 1 {
			t.Fatalf("accepted record for unregistered class not reported: %v", r.UnknownClasses)
		}
	})
}

func TestScanAliasedShrinksImpurityClosure(t *testing.T) {
	t.Parallel()
	// Pure reaches impure Store, so the plain closure drags Pure (and
	// Cache, which calls Pure) into statefulness. An alias oracle proving
	// the Pure->Store edge carries no shared mutable state must free both
	// — and the refined replication set must be a superset of the plain
	// one.
	rg := &reach.Graph{Edges: []reach.Edge{
		{Src: "Pure", Dst: "Store", IID: "IStore"},
		{Src: "Cache", Dst: "Pure", IID: "IPure"},
	}}
	app := testApp()
	plain := mustScan(t, app, rg)

	may := func(a, b string) bool { return !(a == "Pure" && b == "Store") }
	refined, err := ScanAliased(binimg.BuildImage(app), app, rg, may)
	if err != nil {
		t.Fatal(err)
	}
	if ci := refined.Class("Pure"); ci.ReachesImpure || ci.Impure {
		t.Fatalf("Pure = %+v, want freed by the alias oracle", ci)
	}
	if ci := refined.Class("Cache"); ci.ReachesImpure {
		t.Fatalf("Cache = %+v, want freed transitively", ci)
	}
	// Store stays locally impure regardless of aliasing.
	if ci := refined.Class("Store"); ci.LocallyPure {
		t.Fatalf("Store = %+v, want locally impure", ci)
	}

	p := gradeProfile(98, 2)
	plainSet := plain.Grade(p, 0).Replication.Classifications
	refinedSet := refined.Grade(p, 0).Replication.Classifications
	eligible := make(map[string]bool, len(refinedSet))
	for _, id := range refinedSet {
		eligible[id] = true
	}
	for _, id := range plainSet {
		if !eligible[id] {
			t.Fatalf("refined replication set %v lost %s from plain set %v", refinedSet, id, plainSet)
		}
	}
	if len(refinedSet) <= len(plainSet) {
		t.Fatalf("refined set %v did not grow over plain %v", refinedSet, plainSet)
	}

	// A nil oracle must reproduce the plain closure exactly.
	same, err := ScanAliased(binimg.BuildImage(app), app, rg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := same.Class("Pure").ReachesImpure, plain.Class("Pure").ReachesImpure; got != want {
		t.Fatalf("nil-oracle ScanAliased diverges from Scan: %v vs %v", got, want)
	}
}
