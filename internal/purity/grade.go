package purity

import (
	"fmt"
	"sort"

	"repro/internal/profile"
	"repro/internal/staticanal"
)

// Grade levels for profiled components.
type Grade string

// Component grades: Stateless components carry no state at all,
// ReadMostly components carry state that is provably rarely written
// (observed write fraction ≤ θ, or never written), Stateful is the
// conservative default. Only Stateless and ReadMostly components are
// replication-eligible.
const (
	GradeStateless  Grade = "stateless"
	GradeReadMostly Grade = "read-mostly"
	GradeStateful   Grade = "stateful"
)

// DefaultTheta is the default read-mostly threshold: the largest
// observed write fraction still graded ReadMostly.
const DefaultTheta = 0.05

// KindPurityMiss is the verifier's finding kind: the profile observed a
// state mutation through a method the static analysis classified
// read-only — a hard error, same zero-miss discipline as the coverage
// gate.
const KindPurityMiss = "purity-miss"

// ComponentGrade is the grading of one profiled component.
type ComponentGrade struct {
	Classification string  `json:"classification"`
	Class          string  `json:"class"`
	Grade          Grade   `json:"grade"`
	Instances      int64   `json:"instances"`
	Calls          int64   `json:"calls"`
	Writes         int64   `json:"writes"`
	WriteFraction  float64 `json:"writeFraction"`
	Provenance     string  `json:"provenance"`
}

// ReplicationSet lists the replication-eligible components of a grading:
// the typed hand-off the graph layer consumes (see graph.Replicate).
type ReplicationSet struct {
	// Classifications lists eligible classification ids (graph node
	// names), sorted.
	Classifications []string `json:"classifications"`
	// Classes lists the distinct classes behind them, sorted.
	Classes []string `json:"classes,omitempty"`

	index map[string]bool
}

// Eligible reports whether the classification is replication-eligible.
func (rs *ReplicationSet) Eligible(classification string) bool {
	return rs.index[classification]
}

// Grading is the profile-folded output of the purity analysis: every
// profiled component graded, with counts and the replication set.
type Grading struct {
	App         string           `json:"app"`
	Theta       float64          `json:"theta"`
	Components  []ComponentGrade `json:"components"`
	Stateless   int              `json:"stateless"`
	ReadMostly  int              `json:"readMostly"`
	Stateful    int              `json:"stateful"`
	Replication ReplicationSet   `json:"replication"`
}

// Component returns the grade for a classification id, or nil.
func (g *Grading) Component(classification string) *ComponentGrade {
	for i := range g.Components {
		if g.Components[i].Classification == classification {
			return &g.Components[i]
		}
	}
	return nil
}

// Grade folds profile evidence into the static report and grades every
// profiled component. theta ≤ 0 selects DefaultTheta. The main program
// is never graded (it is not a component and never replicates).
func (r *Report) Grade(p *profile.Profile, theta float64) *Grading {
	if theta <= 0 {
		theta = DefaultTheta
	}
	g := &Grading{App: r.App, Theta: theta}
	g.Replication.index = make(map[string]bool)

	// Per-classification observed call/write totals.
	calls := make(map[string]int64)
	writes := make(map[string]int64)
	for k, m := range p.Methods {
		calls[k.Classification] += m.Calls
		writes[k.Classification] += m.Writes
	}

	classes := make(map[string]bool)
	for _, id := range p.ClassificationIDs() {
		if id == profile.MainProgram {
			continue
		}
		ci := p.Classifications[id]
		cg := ComponentGrade{
			Classification: id,
			Class:          ci.Class,
			Instances:      ci.Instances,
			Calls:          calls[id],
			Writes:         writes[id],
		}
		if cg.Calls > 0 {
			cg.WriteFraction = float64(cg.Writes) / float64(cg.Calls)
		}
		info := r.Class(ci.Class)
		switch {
		case info == nil:
			cg.Grade = GradeStateful
			cg.Provenance = "class absent from the static model"
		case info.ReachesImpure:
			cg.Grade = GradeStateful
			cg.Provenance = info.ImpureVia
		case info.unknownMethods() > 0:
			cg.Grade = GradeStateful
			cg.Provenance = fmt.Sprintf("%d method(s) of unknown mutability", info.unknownMethods())
		case info.LocallyPure && info.StateBytes == 0:
			cg.Grade = GradeStateless
			cg.Provenance = "stateless descriptor, every method read-only"
		case info.LocallyPure:
			cg.Grade = GradeReadMostly
			cg.Provenance = fmt.Sprintf("%d state bytes never written by any method", info.StateBytes)
		case cg.Calls == 0:
			cg.Grade = GradeStateful
			cg.Provenance = "declared state writers and no profile evidence of write rarity"
		case cg.WriteFraction <= theta:
			cg.Grade = GradeReadMostly
			cg.Provenance = fmt.Sprintf("observed write fraction %.4f <= theta %.2f over %d calls",
				cg.WriteFraction, theta, cg.Calls)
		default:
			cg.Grade = GradeStateful
			cg.Provenance = fmt.Sprintf("observed write fraction %.4f > theta %.2f", cg.WriteFraction, theta)
		}
		switch cg.Grade {
		case GradeStateless:
			g.Stateless++
		case GradeReadMostly:
			g.ReadMostly++
		default:
			g.Stateful++
		}
		if cg.Grade == GradeStateless || cg.Grade == GradeReadMostly {
			g.Replication.Classifications = append(g.Replication.Classifications, id)
			g.Replication.index[id] = true
			classes[ci.Class] = true
		}
		g.Components = append(g.Components, cg)
	}
	for c := range classes {
		g.Replication.Classes = append(g.Replication.Classes, c)
	}
	sort.Strings(g.Replication.Classes)
	return g
}

// Verify cross-checks the static purity claims against profile evidence
// with zero-miss discipline: every observed mutation must flow through a
// method the analysis classified mutating (or at worst unknown). A
// mutation through a method claimed read-only is an error — the static
// model lied, and a replica built on that claim would diverge. Mutations
// through methods or classes the static model cannot resolve are
// warnings.
func (r *Report) Verify(p *profile.Profile) []staticanal.Finding {
	var out []staticanal.Finding
	if p == nil {
		return out
	}
	keys := make([]profile.MethodKey, 0, len(p.Methods))
	for k := range p.Methods {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Classification != keys[j].Classification {
			return keys[i].Classification < keys[j].Classification
		}
		return keys[i].Method < keys[j].Method
	})
	for _, k := range keys {
		m := p.Methods[k]
		if m.Writes == 0 {
			continue
		}
		ci := p.Classifications[k.Classification]
		if ci == nil {
			out = append(out, staticanal.Finding{
				Kind: staticanal.KindUnknownClass, Severity: staticanal.SeverityWarning,
				Detail: fmt.Sprintf("observed %d mutation(s) on unclassified component %s", m.Writes, k.Classification),
			})
			continue
		}
		info := r.Class(ci.Class)
		if info == nil {
			out = append(out, staticanal.Finding{
				Kind: staticanal.KindUnknownClass, Severity: staticanal.SeverityWarning,
				Detail: fmt.Sprintf("observed %d mutation(s) on %s (class %s) absent from the static model",
					m.Writes, k.Classification, ci.Class),
			})
			continue
		}
		if info.MethodPurity(k.Method) == ReadOnly {
			out = append(out, staticanal.Finding{
				Kind: KindPurityMiss, Severity: staticanal.SeverityError,
				Detail: fmt.Sprintf("profile observed %d state mutation(s) through %s.%s, which the static analysis classified read-only",
					m.Writes, k.Classification, k.Method),
			})
		}
	}
	return out
}
