package profile

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/netsim"
)

// MainProgram is the classification id of the application's main program
// (the executable shell that drives components but is not itself a
// component). It is permanently constrained to the client.
const MainProgram = "<main>"

// PairKey identifies an ordered communication edge between two instance
// classifications.
type PairKey struct {
	Src string
	Dst string
}

// InstPairKey identifies an ordered communication edge between two
// concrete instances (instance-level detail, kept only when classifier
// evaluation needs it).
type InstPairKey struct {
	Src uint64
	Dst uint64
}

// EdgeSummary aggregates the messages that crossed one edge: request and
// reply size histograms, exact byte totals (for the bucketing ablation),
// and whether any call used a non-remotable interface, which forces
// co-location of the endpoints.
type EdgeSummary struct {
	Calls         int64
	In            BucketCounts
	Out           BucketCounts
	ExactInBytes  int64
	ExactOutBytes int64
	NonRemotable  bool
}

// NewEdgeSummary returns an empty summary.
func NewEdgeSummary() *EdgeSummary {
	return &EdgeSummary{In: make(BucketCounts), Out: make(BucketCounts)}
}

// Record adds one call with the given request/reply payload sizes.
func (e *EdgeSummary) Record(inBytes, outBytes int, nonRemotable bool) {
	e.Calls++
	e.In.Add(inBytes, 1)
	e.Out.Add(outBytes, 1)
	e.ExactInBytes += int64(inBytes)
	e.ExactOutBytes += int64(outBytes)
	if nonRemotable {
		e.NonRemotable = true
	}
}

// Merge folds other into e.
func (e *EdgeSummary) Merge(other *EdgeSummary) {
	e.Calls += other.Calls
	e.In.Merge(other.In)
	e.Out.Merge(other.Out)
	e.ExactInBytes += other.ExactInBytes
	e.ExactOutBytes += other.ExactOutBytes
	e.NonRemotable = e.NonRemotable || other.NonRemotable
}

// Time prices the edge under a network profile using bucket
// representatives: the cost of all calls if the endpoints were on opposite
// machines.
func (e *EdgeSummary) Time(np *netsim.Profile) time.Duration {
	var t time.Duration
	for idx, n := range e.In {
		t += time.Duration(n) * np.MessageTime(BucketRepresentative(idx))
	}
	for idx, n := range e.Out {
		t += time.Duration(n) * np.MessageTime(BucketRepresentative(idx))
	}
	return t
}

// ExactTime prices the edge using exact byte totals: calls * per-message
// cost + bytes at marginal cost. Used by the bucketing-accuracy ablation.
func (e *EdgeSummary) ExactTime(np *netsim.Profile) time.Duration {
	if e.Calls == 0 {
		return 0
	}
	perMsg := np.MessageTime(0)
	marginal := func(total int64) time.Duration {
		if total == 0 {
			return 0
		}
		// Price the average-size message and subtract the per-message base.
		avg := int(total / e.Calls)
		return time.Duration(e.Calls) * (np.MessageTime(avg) - perMsg)
	}
	return time.Duration(2*e.Calls)*perMsg + marginal(e.ExactInBytes) + marginal(e.ExactOutBytes)
}

// InstanceRecord describes one component instantiation observed during a
// run.
type InstanceRecord struct {
	ID                    uint64
	Class                 string
	Classification        string
	CreatorClassification string
	Order                 int
	// Path is the activation call path: the classes of the component
	// instances on the stack at the instantiation, innermost first (empty
	// when the main program activated directly). The reachability coverage
	// analysis joins it against static activation sites.
	Path []string
}

// ClassificationInfo aggregates the instances grouped under one
// classification.
type ClassificationInfo struct {
	ID        string
	Class     string
	Instances int64
	// Path is the activation call path observed at the classification's
	// first instantiation (see InstanceRecord.Path).
	Path []string
}

// MethodKey identifies one method of one instance classification, the
// granularity at which mutation evidence is aggregated.
type MethodKey struct {
	Classification string
	Method         string
}

// MethodStats aggregates per-method call and state-mutation counts — the
// profile evidence the purity analysis folds into component grading and
// the purity verifier diffs against static read-only claims.
type MethodStats struct {
	Calls  int64
	Writes int64
}

// Merge folds other into m.
func (m *MethodStats) Merge(other *MethodStats) {
	m.Calls += other.Calls
	m.Writes += other.Writes
}

// Profile is a complete ICC profile: the output of one or more profiling
// runs under a given classifier.
type Profile struct {
	App        string
	Scenarios  []string
	Classifier string

	// Edges aggregates communication between classifications.
	Edges map[PairKey]*EdgeSummary
	// Classifications indexes the instance classifications observed.
	Classifications map[string]*ClassificationInfo
	// Methods aggregates per-method call and mutation counts.
	Methods map[MethodKey]*MethodStats
	// Instances holds per-instance records (optional detail).
	Instances []InstanceRecord
	// InstEdges aggregates communication between concrete instances
	// (optional detail for classifier evaluation).
	InstEdges map[InstPairKey]*EdgeSummary
}

// New returns an empty profile.
func New(app, classifier string) *Profile {
	return &Profile{
		App:             app,
		Classifier:      classifier,
		Edges:           make(map[PairKey]*EdgeSummary),
		Classifications: make(map[string]*ClassificationInfo),
		Methods:         make(map[MethodKey]*MethodStats),
		InstEdges:       make(map[InstPairKey]*EdgeSummary),
	}
}

// Edge returns the (created-on-demand) summary for the ordered pair.
func (p *Profile) Edge(src, dst string) *EdgeSummary {
	k := PairKey{src, dst}
	e := p.Edges[k]
	if e == nil {
		e = NewEdgeSummary()
		p.Edges[k] = e
	}
	return e
}

// Method returns the (created-on-demand) per-method statistics for the
// given classification and method name.
func (p *Profile) Method(classification, method string) *MethodStats {
	k := MethodKey{classification, method}
	m := p.Methods[k]
	if m == nil {
		m = &MethodStats{}
		p.Methods[k] = m
	}
	return m
}

// InstEdge returns the (created-on-demand) instance-level summary.
func (p *Profile) InstEdge(src, dst uint64) *EdgeSummary {
	k := InstPairKey{src, dst}
	e := p.InstEdges[k]
	if e == nil {
		e = NewEdgeSummary()
		p.InstEdges[k] = e
	}
	return e
}

// AddInstance records an instantiation under the given classification.
func (p *Profile) AddInstance(rec InstanceRecord) {
	p.Instances = append(p.Instances, rec)
	ci := p.Classifications[rec.Classification]
	if ci == nil {
		ci = &ClassificationInfo{ID: rec.Classification, Class: rec.Class}
		p.Classifications[rec.Classification] = ci
	}
	if ci.Path == nil && len(rec.Path) > 0 {
		ci.Path = append([]string(nil), rec.Path...)
	}
	ci.Instances++
}

// Merge folds other into p: edges and classification counts accumulate,
// scenario lists concatenate. Instance-level detail is merged as-is;
// callers evaluating classifiers normally merge only classification-level
// data and keep instance detail per run.
func (p *Profile) Merge(other *Profile) error {
	if p.Classifier != other.Classifier {
		return fmt.Errorf("profile: cannot merge %s profile into %s profile",
			other.Classifier, p.Classifier)
	}
	if p.App != other.App {
		return fmt.Errorf("profile: cannot merge %s profile into %s profile", other.App, p.App)
	}
	p.Scenarios = append(p.Scenarios, other.Scenarios...)
	for k, e := range other.Edges {
		p.Edge(k.Src, k.Dst).Merge(e)
	}
	for id, ci := range other.Classifications {
		mine := p.Classifications[id]
		if mine == nil {
			p.Classifications[id] = &ClassificationInfo{
				ID: id, Class: ci.Class, Instances: ci.Instances,
				Path: append([]string(nil), ci.Path...),
			}
		} else {
			mine.Instances += ci.Instances
			if mine.Path == nil && len(ci.Path) > 0 {
				mine.Path = append([]string(nil), ci.Path...)
			}
		}
	}
	for k, m := range other.Methods {
		p.Method(k.Classification, k.Method).Merge(m)
	}
	p.Instances = append(p.Instances, other.Instances...)
	for k, e := range other.InstEdges {
		p.InstEdge(k.Src, k.Dst).Merge(e)
	}
	return nil
}

// TotalCalls returns the number of inter-component calls summarized.
func (p *Profile) TotalCalls() int64 {
	var t int64
	for _, e := range p.Edges {
		t += e.Calls
	}
	return t
}

// TotalInstances returns the number of instantiations recorded across
// classifications.
func (p *Profile) TotalInstances() int64 {
	var t int64
	for _, ci := range p.Classifications {
		t += ci.Instances
	}
	return t
}

// ClassificationIDs returns all classification ids sorted.
func (p *Profile) ClassificationIDs() []string {
	ids := make([]string, 0, len(p.Classifications))
	for id := range p.Classifications {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// MaxInstanceID returns the largest concrete instance id recorded.
func (p *Profile) MaxInstanceID() uint64 {
	var m uint64
	for _, r := range p.Instances {
		if r.ID > m {
			m = r.ID
		}
	}
	for k := range p.InstEdges {
		if k.Src > m {
			m = k.Src
		}
		if k.Dst > m {
			m = k.Dst
		}
	}
	return m
}

// OffsetInstanceIDs shifts every concrete instance id by delta (the main
// program, id 0, stays fixed). Profiles from separate executions reuse
// instance ids; offsetting before a merge keeps instance-level detail
// distinct so communication vectors stay per-instance.
func (p *Profile) OffsetInstanceIDs(delta uint64) {
	if delta == 0 {
		return
	}
	for i := range p.Instances {
		if p.Instances[i].ID != 0 {
			p.Instances[i].ID += delta
		}
	}
	shifted := make(map[InstPairKey]*EdgeSummary, len(p.InstEdges))
	for k, e := range p.InstEdges {
		nk := k
		if nk.Src != 0 {
			nk.Src += delta
		}
		if nk.Dst != 0 {
			nk.Dst += delta
		}
		shifted[nk] = e
	}
	p.InstEdges = shifted
}

// DropInstanceDetail discards per-instance records and edges, keeping only
// the classification-level summary — the compact form folded into the
// application binary's configuration record.
func (p *Profile) DropInstanceDetail() {
	p.Instances = nil
	p.InstEdges = make(map[InstPairKey]*EdgeSummary)
}
