package profile

import (
	"math"

	"repro/internal/netsim"
)

// Vector is an instance communication vector (paper §4.2): one dimension
// per peer classification, each quantifying the communication time the
// instance would spend with that peer if the peer were located remotely.
type Vector map[string]float64

// Correlation compares two communication vectors with the normalized dot
// product. 1 means equivalent communication behaviour (same peers in the
// same proportions); 0 means no shared behaviour. Two empty vectors — both
// silent instances — correlate perfectly.
func Correlation(a, b Vector) float64 {
	na, nb := a.norm(), b.norm()
	if na == 0 && nb == 0 {
		return 1
	}
	if na == 0 || nb == 0 {
		return 0
	}
	var dot float64
	for k, av := range a {
		if bv, ok := b[k]; ok {
			dot += av * bv
		}
	}
	return dot / (na * nb)
}

func (v Vector) norm() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Add accumulates other into v.
func (v Vector) Add(other Vector) {
	for k, x := range other {
		v[k] += x
	}
}

// Scale multiplies every component by f.
func (v Vector) Scale(f float64) {
	for k := range v {
		v[k] *= f
	}
}

// InstanceVectors computes the communication vector of every instance in
// the profile, pricing messages under the given network profile. Vector
// dimensions are peer classifications, so vectors are comparable across
// executions even though instance identities differ. Requires
// instance-level detail.
func (p *Profile) InstanceVectors(np *netsim.Profile) map[uint64]Vector {
	classOf := make(map[uint64]string, len(p.Instances))
	for _, r := range p.Instances {
		classOf[r.ID] = r.Classification
	}
	vecs := make(map[uint64]Vector)
	get := func(id uint64) Vector {
		v := vecs[id]
		if v == nil {
			v = make(Vector)
			vecs[id] = v
		}
		return v
	}
	for k, e := range p.InstEdges {
		t := float64(e.Time(np))
		if t == 0 {
			continue
		}
		srcClass, dstClass := classOf[k.Src], classOf[k.Dst]
		if k.Src == 0 {
			srcClass = MainProgram
		}
		if k.Dst == 0 {
			dstClass = MainProgram
		}
		// Communication is mutual: each endpoint sees time against the
		// other's classification.
		if k.Src != 0 {
			get(k.Src)[dstClass] += t
		}
		if k.Dst != 0 {
			get(k.Dst)[srcClass] += t
		}
	}
	// Instances that never communicated still get (empty) vectors.
	for _, r := range p.Instances {
		get(r.ID)
	}
	return vecs
}

// ClassificationVectors computes, for each classification, the mean
// communication vector of its member instances. This is the "profile"
// against which a later execution's instances are correlated.
func (p *Profile) ClassificationVectors(np *netsim.Profile) map[string]Vector {
	inst := p.InstanceVectors(np)
	classOf := make(map[uint64]string, len(p.Instances))
	for _, r := range p.Instances {
		classOf[r.ID] = r.Classification
	}
	sums := make(map[string]Vector)
	counts := make(map[string]int)
	for id, v := range inst {
		c := classOf[id]
		if c == "" {
			continue
		}
		s := sums[c]
		if s == nil {
			s = make(Vector)
			sums[c] = s
		}
		s.Add(v)
		counts[c]++
	}
	for c, s := range sums {
		if n := counts[c]; n > 1 {
			s.Scale(1 / float64(n))
		}
	}
	return sums
}
