package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Log file serialization. At the end of a profiling execution Coign writes
// the ICC profile to a file for later analysis; log files from multiple
// scenarios may be combined during analysis (paper §2). The format is
// line-oriented JSON of a stable, sorted mirror structure.

type edgeForm struct {
	Src          string        `json:"src"`
	Dst          string        `json:"dst"`
	Calls        int64         `json:"calls"`
	In           map[int]int64 `json:"in,omitempty"`
	Out          map[int]int64 `json:"out,omitempty"`
	ExactIn      int64         `json:"exactIn"`
	ExactOut     int64         `json:"exactOut"`
	NonRemotable bool          `json:"nonRemotable,omitempty"`
}

type instEdgeForm struct {
	Src          uint64        `json:"src"`
	Dst          uint64        `json:"dst"`
	Calls        int64         `json:"calls"`
	In           map[int]int64 `json:"in,omitempty"`
	Out          map[int]int64 `json:"out,omitempty"`
	ExactIn      int64         `json:"exactIn"`
	ExactOut     int64         `json:"exactOut"`
	NonRemotable bool          `json:"nonRemotable,omitempty"`
}

type methodForm struct {
	Classification string `json:"classification"`
	Method         string `json:"method"`
	Calls          int64  `json:"calls"`
	Writes         int64  `json:"writes,omitempty"`
}

type fileForm struct {
	App             string               `json:"app"`
	Classifier      string               `json:"classifier"`
	Scenarios       []string             `json:"scenarios"`
	Edges           []edgeForm           `json:"edges"`
	Classifications []ClassificationInfo `json:"classifications"`
	Methods         []methodForm         `json:"methods,omitempty"`
	Instances       []InstanceRecord     `json:"instances,omitempty"`
	InstEdges       []instEdgeForm       `json:"instEdges,omitempty"`
}

// Encode writes the profile as JSON.
func (p *Profile) Encode(w io.Writer) error {
	f := fileForm{
		App:        p.App,
		Classifier: p.Classifier,
		Scenarios:  p.Scenarios,
	}
	for k, e := range p.Edges {
		f.Edges = append(f.Edges, edgeForm{
			Src: k.Src, Dst: k.Dst, Calls: e.Calls,
			In: e.In, Out: e.Out,
			ExactIn: e.ExactInBytes, ExactOut: e.ExactOutBytes,
			NonRemotable: e.NonRemotable,
		})
	}
	sort.Slice(f.Edges, func(i, j int) bool {
		if f.Edges[i].Src != f.Edges[j].Src {
			return f.Edges[i].Src < f.Edges[j].Src
		}
		return f.Edges[i].Dst < f.Edges[j].Dst
	})
	for _, ci := range p.Classifications {
		f.Classifications = append(f.Classifications, *ci)
	}
	sort.Slice(f.Classifications, func(i, j int) bool {
		return f.Classifications[i].ID < f.Classifications[j].ID
	})
	for k, m := range p.Methods {
		f.Methods = append(f.Methods, methodForm{
			Classification: k.Classification, Method: k.Method,
			Calls: m.Calls, Writes: m.Writes,
		})
	}
	sort.Slice(f.Methods, func(i, j int) bool {
		if f.Methods[i].Classification != f.Methods[j].Classification {
			return f.Methods[i].Classification < f.Methods[j].Classification
		}
		return f.Methods[i].Method < f.Methods[j].Method
	})
	f.Instances = p.Instances
	for k, e := range p.InstEdges {
		f.InstEdges = append(f.InstEdges, instEdgeForm{
			Src: k.Src, Dst: k.Dst, Calls: e.Calls,
			In: e.In, Out: e.Out,
			ExactIn: e.ExactInBytes, ExactOut: e.ExactOutBytes,
			NonRemotable: e.NonRemotable,
		})
	}
	sort.Slice(f.InstEdges, func(i, j int) bool {
		if f.InstEdges[i].Src != f.InstEdges[j].Src {
			return f.InstEdges[i].Src < f.InstEdges[j].Src
		}
		return f.InstEdges[i].Dst < f.InstEdges[j].Dst
	})
	enc := json.NewEncoder(w)
	return enc.Encode(&f)
}

// Decode reads a profile previously written by Encode.
func Decode(r io.Reader) (*Profile, error) {
	var f fileForm
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("profile: decode: %w", err)
	}
	p := New(f.App, f.Classifier)
	p.Scenarios = f.Scenarios
	for _, ef := range f.Edges {
		e := p.Edge(ef.Src, ef.Dst)
		e.Calls = ef.Calls
		if ef.In != nil {
			e.In = BucketCounts(ef.In)
		}
		if ef.Out != nil {
			e.Out = BucketCounts(ef.Out)
		}
		e.ExactInBytes, e.ExactOutBytes = ef.ExactIn, ef.ExactOut
		e.NonRemotable = ef.NonRemotable
	}
	for _, ci := range f.Classifications {
		c := ci
		p.Classifications[ci.ID] = &c
	}
	for _, mf := range f.Methods {
		m := p.Method(mf.Classification, mf.Method)
		m.Calls = mf.Calls
		m.Writes = mf.Writes
	}
	p.Instances = f.Instances
	for _, ef := range f.InstEdges {
		e := p.InstEdge(ef.Src, ef.Dst)
		e.Calls = ef.Calls
		if ef.In != nil {
			e.In = BucketCounts(ef.In)
		}
		if ef.Out != nil {
			e.Out = BucketCounts(ef.Out)
		}
		e.ExactInBytes, e.ExactOutBytes = ef.ExactIn, ef.ExactOut
		e.NonRemotable = ef.NonRemotable
	}
	return p, nil
}

// WriteFile writes the profile log to a file.
func (p *Profile) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := p.Encode(f); err != nil {
		return err
	}
	return f.Close()
}

// ReadFile reads a profile log from a file.
func ReadFile(path string) (*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}
