// Package profile defines the inter-component communication (ICC) profiles
// Coign collects during scenario-based profiling: message summaries in
// exponentially growing size buckets, per-instance records, communication
// vectors, and the dot-product correlation metric of paper §4.2.
package profile

import "math/bits"

// Message sizes are summarized into buckets whose ranges grow
// exponentially (paper §3.3: "successive ranges grow in size
// exponentially"), which keeps profile storage bounded regardless of
// execution length while preserving network independence: the analysis can
// later price each bucket under any network profile.

// BucketIndex returns the bucket for a message of the given size. Bucket 0
// holds empty messages; bucket k (k >= 1) holds sizes in [2^(k-1), 2^k).
func BucketIndex(size int) int {
	if size <= 0 {
		return 0
	}
	return bits.Len(uint(size))
}

// BucketRepresentative returns the size used to price messages in a
// bucket: the midpoint of its range.
func BucketRepresentative(idx int) int {
	if idx <= 0 {
		return 0
	}
	lo := 1 << (idx - 1)
	hi := 1 << idx
	return (lo + hi) / 2
}

// NumBuckets is a safe upper bound on bucket indices for 32-bit message
// sizes.
const NumBuckets = 33

// BucketCounts is a sparse histogram of message counts per size bucket.
type BucketCounts map[int]int64

// Add records n messages of the given byte size.
func (b BucketCounts) Add(size int, n int64) {
	b[BucketIndex(size)] += n
}

// Merge folds other into b.
func (b BucketCounts) Merge(other BucketCounts) {
	for idx, n := range other {
		b[idx] += n
	}
}

// Total returns the total message count.
func (b BucketCounts) Total() int64 {
	var t int64
	for _, n := range b {
		t += n
	}
	return t
}

// ApproxBytes returns the total bytes implied by bucket representatives.
func (b BucketCounts) ApproxBytes() int64 {
	var t int64
	for idx, n := range b {
		t += n * int64(BucketRepresentative(idx))
	}
	return t
}

// Clone returns a deep copy.
func (b BucketCounts) Clone() BucketCounts {
	c := make(BucketCounts, len(b))
	for k, v := range b {
		c[k] = v
	}
	return c
}
