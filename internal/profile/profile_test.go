package profile

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netsim"
)

func TestBucketIndexRanges(t *testing.T) {
	t.Parallel()
	cases := []struct{ size, want int }{
		{-3, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{63, 6}, {64, 7}, {1024, 11}, {1 << 20, 21},
	}
	for _, c := range cases {
		if got := BucketIndex(c.size); got != c.want {
			t.Errorf("BucketIndex(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestBucketRepresentativeWithinRange(t *testing.T) {
	t.Parallel()
	if BucketRepresentative(0) != 0 {
		t.Error("bucket 0 rep nonzero")
	}
	for idx := 1; idx < 30; idx++ {
		rep := BucketRepresentative(idx)
		if BucketIndex(rep) != idx {
			t.Errorf("rep %d of bucket %d falls in bucket %d", rep, idx, BucketIndex(rep))
		}
	}
}

func TestPropertyBucketRoundTrip(t *testing.T) {
	t.Parallel()
	// Every size lands in a bucket whose range contains it, and ranges grow
	// exponentially: rep(idx+1) is about 2x rep(idx).
	f := func(sz uint32) bool {
		s := int(sz >> 2)
		idx := BucketIndex(s)
		if s == 0 {
			return idx == 0
		}
		lo := 1 << (idx - 1)
		hi := 1 << idx
		return s >= lo && s < hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestBucketCounts(t *testing.T) {
	t.Parallel()
	b := make(BucketCounts)
	b.Add(0, 2)
	b.Add(100, 3)
	b.Add(120, 1)
	if b.Total() != 6 {
		t.Errorf("Total = %d", b.Total())
	}
	if b[0] != 2 || b[BucketIndex(100)] != 4 {
		t.Errorf("buckets = %v", b)
	}
	c := b.Clone()
	c.Add(100, 1)
	if b[BucketIndex(100)] != 4 {
		t.Error("Clone aliases original")
	}
	other := make(BucketCounts)
	other.Add(0, 5)
	b.Merge(other)
	if b[0] != 7 {
		t.Errorf("Merge: %v", b)
	}
	// ApproxBytes sums representatives.
	ab := b.ApproxBytes()
	if ab != 4*int64(BucketRepresentative(BucketIndex(100))) {
		t.Errorf("ApproxBytes = %d", ab)
	}
}

func TestEdgeSummaryRecordAndTime(t *testing.T) {
	t.Parallel()
	np := netsim.ExactProfile(netsim.TenBaseT, netsim.DefaultSampleSizes)
	e := NewEdgeSummary()
	e.Record(100, 1000, false)
	e.Record(100, 1000, false)
	if e.Calls != 2 || e.ExactInBytes != 200 || e.ExactOutBytes != 2000 {
		t.Fatalf("summary = %+v", e)
	}
	if e.NonRemotable {
		t.Fatal("spurious non-remotable flag")
	}
	e.Record(0, 0, true)
	if !e.NonRemotable {
		t.Fatal("non-remotable flag not sticky")
	}
	bt := e.Time(np)
	et := e.ExactTime(np)
	if bt <= 0 || et <= 0 {
		t.Fatalf("times: bucketed=%v exact=%v", bt, et)
	}
	// Bucketed pricing should approximate exact pricing within the bucket
	// quantization (factor of ~2 worst case; much closer typically).
	ratio := float64(bt) / float64(et)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("bucketed %v vs exact %v (ratio %.2f)", bt, et, ratio)
	}
	if NewEdgeSummary().ExactTime(np) != 0 {
		t.Error("empty edge has nonzero exact time")
	}
}

func TestEdgeSummaryMerge(t *testing.T) {
	t.Parallel()
	a := NewEdgeSummary()
	a.Record(10, 20, false)
	b := NewEdgeSummary()
	b.Record(30, 40, true)
	a.Merge(b)
	if a.Calls != 2 || a.ExactInBytes != 40 || a.ExactOutBytes != 60 || !a.NonRemotable {
		t.Fatalf("merged = %+v", a)
	}
}

func buildTestProfile() *Profile {
	p := New("app", "ifcb")
	p.Scenarios = []string{"s1"}
	p.AddInstance(InstanceRecord{ID: 1, Class: "Reader", Classification: "c:reader", Order: 1})
	p.AddInstance(InstanceRecord{ID: 2, Class: "View", Classification: "c:view", Order: 2})
	p.AddInstance(InstanceRecord{ID: 3, Class: "View", Classification: "c:view", Order: 3})
	p.Edge(MainProgram, "c:reader").Record(64, 4096, false)
	p.Edge("c:reader", "c:view").Record(128, 16, false)
	p.InstEdge(0, 1).Record(64, 4096, false)
	p.InstEdge(1, 2).Record(128, 16, false)
	p.InstEdge(1, 3).Record(128, 16, false)
	return p
}

func TestProfileAccumulation(t *testing.T) {
	t.Parallel()
	p := buildTestProfile()
	if p.TotalInstances() != 3 {
		t.Errorf("TotalInstances = %d", p.TotalInstances())
	}
	if p.TotalCalls() != 2 {
		t.Errorf("TotalCalls = %d", p.TotalCalls())
	}
	ids := p.ClassificationIDs()
	if len(ids) != 2 || ids[0] != "c:reader" || ids[1] != "c:view" {
		t.Errorf("ClassificationIDs = %v", ids)
	}
	if p.Classifications["c:view"].Instances != 2 {
		t.Errorf("view instances = %d", p.Classifications["c:view"].Instances)
	}
}

func TestProfileMerge(t *testing.T) {
	t.Parallel()
	a := buildTestProfile()
	b := buildTestProfile()
	b.Scenarios = []string{"s2"}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if len(a.Scenarios) != 2 {
		t.Errorf("scenarios = %v", a.Scenarios)
	}
	if a.Edge(MainProgram, "c:reader").Calls != 2 {
		t.Errorf("merged edge calls = %d", a.Edge(MainProgram, "c:reader").Calls)
	}
	if a.Classifications["c:view"].Instances != 4 {
		t.Errorf("merged view instances = %d", a.Classifications["c:view"].Instances)
	}

	wrong := New("app", "st")
	if err := a.Merge(wrong); err == nil {
		t.Error("classifier mismatch merged")
	}
	wrongApp := New("other", "ifcb")
	if err := a.Merge(wrongApp); err == nil {
		t.Error("app mismatch merged")
	}
}

func TestDropInstanceDetail(t *testing.T) {
	t.Parallel()
	p := buildTestProfile()
	p.DropInstanceDetail()
	if len(p.Instances) != 0 || len(p.InstEdges) != 0 {
		t.Fatal("instance detail kept")
	}
	if p.TotalInstances() != 3 {
		t.Fatal("classification-level data lost")
	}
}

func TestCorrelation(t *testing.T) {
	t.Parallel()
	a := Vector{"x": 1, "y": 1}
	if got := Correlation(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("self correlation = %v", got)
	}
	b := Vector{"z": 5}
	if got := Correlation(a, b); got != 0 {
		t.Errorf("disjoint correlation = %v", got)
	}
	// Scale invariance.
	c := Vector{"x": 10, "y": 10}
	if got := Correlation(a, c); math.Abs(got-1) > 1e-12 {
		t.Errorf("scaled correlation = %v", got)
	}
	// Partial overlap lands strictly between.
	d := Vector{"x": 1}
	got := Correlation(a, d)
	if got <= 0 || got >= 1 {
		t.Errorf("partial correlation = %v", got)
	}
	// Empty vs empty: both silent, equivalent.
	if got := Correlation(Vector{}, Vector{}); got != 1 {
		t.Errorf("empty correlation = %v", got)
	}
	if got := Correlation(a, Vector{}); got != 0 {
		t.Errorf("empty-vs-nonempty = %v", got)
	}
}

func TestPropertyCorrelationBounds(t *testing.T) {
	t.Parallel()
	f := func(x1, y1, x2, y2 uint8) bool {
		a := Vector{"x": float64(x1), "y": float64(y1)}
		b := Vector{"x": float64(x2), "y": float64(y2)}
		c := Correlation(a, b)
		return c >= -1e-9 && c <= 1+1e-9 && math.Abs(Correlation(a, b)-Correlation(b, a)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestInstanceVectors(t *testing.T) {
	t.Parallel()
	np := netsim.ExactProfile(netsim.TenBaseT, netsim.DefaultSampleSizes)
	p := buildTestProfile()
	vecs := p.InstanceVectors(np)
	if len(vecs) != 3 {
		t.Fatalf("got %d vectors", len(vecs))
	}
	// Instance 1 (reader) talks to main and to both views.
	v1 := vecs[1]
	if v1[MainProgram] == 0 || v1["c:view"] == 0 {
		t.Fatalf("reader vector = %v", v1)
	}
	// Views 2 and 3 have identical behaviour: perfect correlation.
	if got := Correlation(vecs[2], vecs[3]); math.Abs(got-1) > 1e-12 {
		t.Errorf("twin views correlation = %v", got)
	}
	// Reader's vector differs from a view's.
	if got := Correlation(vecs[1], vecs[2]); got > 0.999 {
		t.Errorf("reader-view correlation = %v", got)
	}
}

func TestClassificationVectors(t *testing.T) {
	t.Parallel()
	np := netsim.ExactProfile(netsim.TenBaseT, netsim.DefaultSampleSizes)
	p := buildTestProfile()
	cv := p.ClassificationVectors(np)
	if len(cv) != 2 {
		t.Fatalf("got %d classification vectors", len(cv))
	}
	inst := p.InstanceVectors(np)
	// The view classification's mean vector equals each (identical) member.
	if got := Correlation(cv["c:view"], inst[2]); math.Abs(got-1) > 1e-12 {
		t.Errorf("mean vs member correlation = %v", got)
	}
}

func TestLogFileRoundTrip(t *testing.T) {
	t.Parallel()
	p := buildTestProfile()
	p.Edge("c:reader", "c:view").NonRemotable = true
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.App != "app" || got.Classifier != "ifcb" || len(got.Scenarios) != 1 {
		t.Fatalf("header = %+v", got)
	}
	if got.TotalCalls() != p.TotalCalls() || got.TotalInstances() != p.TotalInstances() {
		t.Fatal("totals differ after round trip")
	}
	e := got.Edge("c:reader", "c:view")
	if !e.NonRemotable || e.Calls != 1 || e.ExactInBytes != 128 {
		t.Fatalf("edge = %+v", e)
	}
	if len(got.Instances) != 3 || len(got.InstEdges) != 3 {
		t.Fatal("instance detail lost")
	}
	// Vectors survive serialization.
	np := netsim.ExactProfile(netsim.TenBaseT, netsim.DefaultSampleSizes)
	want := p.InstanceVectors(np)[1]
	have := got.InstanceVectors(np)[1]
	if got := Correlation(want, have); math.Abs(got-1) > 1e-12 {
		t.Errorf("vector after round trip correlates %v", got)
	}
}

func TestLogFileOnDisk(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	path := filepath.Join(dir, "o_newdoc.icc")
	p := buildTestProfile()
	if err := p.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalCalls() != p.TotalCalls() {
		t.Fatal("file round trip lost calls")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.icc")); err == nil {
		t.Fatal("missing file read")
	}
}

func TestDecodeGarbage(t *testing.T) {
	t.Parallel()
	if _, err := Decode(bytes.NewReader([]byte("not json"))); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestEdgeTimeUsesBuckets(t *testing.T) {
	t.Parallel()
	// Two messages in the same bucket price identically even if sizes
	// differ: network independence with bounded storage.
	np := netsim.ExactProfile(netsim.TenBaseT, netsim.DefaultSampleSizes)
	a := NewEdgeSummary()
	a.Record(1000, 0, false)
	b := NewEdgeSummary()
	b.Record(1023, 0, false)
	if a.Time(np) != b.Time(np) {
		t.Error("same-bucket messages priced differently")
	}
	// Messages a bucket apart price differently.
	c := NewEdgeSummary()
	c.Record(2048, 0, false)
	if a.Time(np) == c.Time(np) {
		t.Error("different buckets priced identically")
	}
	var zero time.Duration
	if NewEdgeSummary().Time(np) != zero {
		t.Error("empty edge nonzero time")
	}
}

func TestPropertyMergeCommutesOnTotals(t *testing.T) {
	t.Parallel()
	gen := func(seed int64) *Profile {
		rr := rand.New(rand.NewSource(seed))
		p := New("app", "ifcb")
		p.Scenarios = []string{"s"}
		for i := 0; i < 1+rr.Intn(6); i++ {
			src := string(rune('a' + rr.Intn(4)))
			dst := string(rune('a' + rr.Intn(4)))
			if src == dst {
				continue
			}
			p.Edge(src, dst).Record(rr.Intn(4096), rr.Intn(4096), rr.Intn(8) == 0)
		}
		for i := 0; i < rr.Intn(4); i++ {
			p.AddInstance(InstanceRecord{ID: uint64(i + 1),
				Class: "C", Classification: string(rune('a' + rr.Intn(4)))})
		}
		return p
	}
	f := func(s1, s2 int64) bool {
		ab := gen(s1)
		if err := ab.Merge(gen(s2)); err != nil {
			return false
		}
		ba := gen(s2)
		if err := ba.Merge(gen(s1)); err != nil {
			return false
		}
		if ab.TotalCalls() != ba.TotalCalls() || ab.TotalInstances() != ba.TotalInstances() {
			return false
		}
		// Edge-level equality both ways.
		for k, e := range ab.Edges {
			o := ba.Edges[k]
			if o == nil || o.Calls != e.Calls || o.ExactInBytes != e.ExactInBytes ||
				o.NonRemotable != e.NonRemotable {
				return false
			}
		}
		return len(ab.Edges) == len(ba.Edges)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestOffsetInstanceIDs(t *testing.T) {
	t.Parallel()
	p := buildTestProfile()
	maxBefore := p.MaxInstanceID()
	if maxBefore != 3 {
		t.Fatalf("max id = %d", maxBefore)
	}
	p.OffsetInstanceIDs(100)
	if p.MaxInstanceID() != 103 {
		t.Fatalf("max id after offset = %d", p.MaxInstanceID())
	}
	// Main program (id 0) stays fixed.
	if _, ok := p.InstEdges[InstPairKey{Src: 0, Dst: 101}]; !ok {
		t.Fatalf("main edge not preserved: %v", p.InstEdges)
	}
	// Zero offset is a no-op.
	p.OffsetInstanceIDs(0)
	if p.MaxInstanceID() != 103 {
		t.Fatal("zero offset changed ids")
	}
	// Vectors survive offsetting (same shape under new ids).
	np := netsim.ExactProfile(netsim.TenBaseT, netsim.DefaultSampleSizes)
	vecs := p.InstanceVectors(np)
	if len(vecs) != 3 {
		t.Fatalf("vectors after offset = %d", len(vecs))
	}
}
