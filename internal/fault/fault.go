// Package fault provides deterministic, seed-driven fault injection for
// net.Conn / net.Listener pairs. The distributed runtime's loopback-TCP
// transport is a stand-in for DCOM over a real network, and a real network
// delays, corrupts, truncates, and drops traffic; this package reproduces
// those failures on demand so the transport's deadlines, retries, and
// reconnection logic can be exercised — and so every chaos run is
// byte-for-byte reproducible from its seed.
//
// Faults are decided by a per-connection random stream derived from the
// injector seed and the connection's accept/wrap ordinal, consumed once
// per I/O operation in program order. To keep fault decisions independent
// of TCP segmentation, a wrapped connection's Read fills the caller's
// entire buffer (io.ReadFull semantics) before a fault is rolled; the
// framed transport always reads exact sizes, so the operation sequence —
// and therefore the fault sequence — is identical across runs.
package fault

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/netsim"
)

// Direction distinguishes the two fault directions of a connection.
type Direction int

// Fault directions: Send applies to data written by the wrapped side,
// Recv to data it reads.
const (
	Send Direction = iota
	Recv
)

// String returns the direction name.
func (d Direction) String() string {
	if d == Send {
		return "send"
	}
	return "recv"
}

// Kind enumerates injected fault kinds.
type Kind int

// Fault kinds.
const (
	// Delay holds an I/O operation for the configured extra latency.
	Delay Kind = iota
	// Drop blackholes the connection from this operation on: writes are
	// silently swallowed and reads never deliver data (a stalled peer).
	Drop
	// Corrupt flips one byte of the operation's payload.
	Corrupt
	// Truncate delivers a prefix of the operation and severs the
	// connection, so the peer observes a partial frame then EOF.
	Truncate
	// AcceptFail severs a connection immediately after accept.
	AcceptFail

	pass Kind = -1 // internal: no fault on this operation
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Delay:
		return "delay"
	case Drop:
		return "drop"
	case Corrupt:
		return "corrupt"
	case Truncate:
		return "truncate"
	case AcceptFail:
		return "accept-fail"
	}
	return "none"
}

// Rates configures one direction of fault injection. Probabilities are per
// I/O operation (one frame write, or one exact-size read of the framed
// transport); they need not sum to 1 — the remainder is fault-free.
type Rates struct {
	// Drop is the probability that the connection blackholes from this
	// operation on.
	Drop float64
	// Corrupt is the probability that one payload byte is flipped.
	Corrupt float64
	// Truncate is the probability that only a prefix is delivered before
	// the connection is severed.
	Truncate float64
	// Delay is fixed extra latency added to every operation.
	Delay time.Duration
	// DelayJitter adds a uniform random extra in [0, DelayJitter).
	DelayJitter time.Duration
}

func (r Rates) total() float64 { return r.Drop + r.Corrupt + r.Truncate }

// active reports whether this direction can inject anything at all.
func (r Rates) active() bool { return r.total() > 0 || r.Delay > 0 || r.DelayJitter > 0 }

// Config configures an Injector.
type Config struct {
	// Seed makes every fault decision reproducible. Two injectors with the
	// same seed, driven by the same operation sequence, inject the same
	// faults at the same points.
	Seed int64
	// Send and Recv are the per-direction fault rates, from the wrapped
	// side's point of view.
	Send Rates
	Recv Rates
	// AcceptFail is the probability that a connection accepted through a
	// wrapped listener is severed immediately (the client sees an instant
	// EOF; the listener keeps accepting).
	AcceptFail float64
	// OnEvent, when set, observes every injected fault.
	OnEvent func(Event)
}

// Event records one injected fault.
type Event struct {
	// Seq is the event's position in the injector's log.
	Seq int
	// Conn is the wrap ordinal of the affected connection.
	Conn int
	// Dir is the direction of the affected operation.
	Dir Direction
	// Kind is the fault kind.
	Kind Kind
	// Bytes is the size of the affected I/O operation.
	Bytes int
	// Keep is the number of bytes delivered before the fault took effect
	// (truncate), or the flipped byte's offset (corrupt).
	Keep int
}

// Injector wraps connections and listeners with seeded fault injection and
// records every injected fault.
type Injector struct {
	cfg Config

	mu       sync.Mutex
	nextConn int
	events   []Event
	counts   map[Kind]int64
}

// New returns an injector for the given configuration.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, counts: make(map[Kind]int64)}
}

// splitmix64 is the SplitMix64 mixer; it turns (seed, ordinal) pairs into
// independent well-distributed sub-seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// WrapConn wraps a connection with fault injection. Connections are
// numbered in wrap order; each gets an independent random stream derived
// from the injector seed and its ordinal.
func (in *Injector) WrapConn(c net.Conn) net.Conn {
	in.mu.Lock()
	id := in.nextConn
	in.nextConn++
	in.mu.Unlock()
	sub := splitmix64(uint64(in.cfg.Seed) ^ splitmix64(uint64(id)+1))
	return &faultConn{
		Conn: c,
		inj:  in,
		id:   id,
		rng:  rand.New(rand.NewSource(int64(sub))),
	}
}

// WrapListener wraps a listener so every accepted connection is wrapped,
// and a fraction of accepts fail (the connection is severed immediately).
func (in *Injector) WrapListener(ln net.Listener) net.Listener {
	return &faultListener{Listener: ln, inj: in}
}

// Events returns a copy of the injected-fault log, in injection order.
func (in *Injector) Events() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Event(nil), in.events...)
}

// Count returns the number of injected faults of one kind.
func (in *Injector) Count(k Kind) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[k]
}

// Total returns the total number of injected faults.
func (in *Injector) Total() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return int64(len(in.events))
}

func (in *Injector) record(ev Event) {
	in.mu.Lock()
	ev.Seq = len(in.events)
	in.events = append(in.events, ev)
	in.counts[ev.Kind]++
	cb := in.cfg.OnEvent
	in.mu.Unlock()
	if cb != nil {
		cb(ev)
	}
}

// acceptFails decides, purely from the seed and connection ordinal,
// whether an accepted connection fails at accept time.
func (in *Injector) acceptFails(id int) bool {
	p := in.cfg.AcceptFail
	if p <= 0 {
		return false
	}
	h := splitmix64(uint64(in.cfg.Seed) ^ splitmix64(uint64(id)+0xACC))
	return float64(h>>11)/float64(1<<53) < p
}

// FromModel derives wire-level fault rates from a simulated network model:
// the model's packet-loss probability becomes the drop rate (with smaller
// shares corrupted and truncated — loss on real links is more common than
// in-flight corruption), and the model's latency and jitter become
// injected delay. This lets a chaos run degrade the real transport the
// same way the simulator degrades the virtual clock.
func FromModel(m *netsim.Model) Rates {
	return Rates{
		Drop:        m.Loss,
		Corrupt:     m.Loss / 4,
		Truncate:    m.Loss / 8,
		Delay:       m.Latency,
		DelayJitter: time.Duration(m.Jitter * float64(m.Latency)),
	}
}

// errTruncated reports a write cut short by an injected truncation.
var errTruncated = errors.New("fault: connection severed after truncated write")

// faultConn injects faults on one connection. The transport serializes
// operations per connection, but mu still guards the random stream and
// blackhole state so misuse under -race stays clean.
type faultConn struct {
	net.Conn
	inj *Injector
	id  int

	mu   sync.Mutex
	rng  *rand.Rand
	dead bool
}

// plan consumes the connection's random stream for one operation and
// decides its fate. Called with mu held; the consumption order is fixed
// (jitter draw first when configured, then the fault roll, then the
// position draw when needed) so decisions are reproducible.
func (c *faultConn) plan(r Rates, n int) (kind Kind, pos int, delay time.Duration) {
	kind = pass
	delay = r.Delay
	if r.DelayJitter > 0 {
		delay += time.Duration(c.rng.Int63n(int64(r.DelayJitter)))
	}
	if t := r.total(); t > 0 {
		roll := c.rng.Float64()
		switch {
		case roll < r.Drop:
			kind = Drop
		case roll < r.Drop+r.Corrupt:
			kind = Corrupt
		case roll < t:
			kind = Truncate
		}
		if (kind == Corrupt || kind == Truncate) && n > 0 {
			pos = c.rng.Intn(n)
		}
	}
	if (kind == Corrupt || kind == Truncate) && n == 0 {
		kind = pass // nothing to corrupt or cut
	}
	return kind, pos, delay
}

func (c *faultConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return len(b), nil // blackholed: pretend the write succeeded
	}
	kind, pos, delay := c.plan(c.inj.cfg.Send, len(b))
	if kind == Drop {
		c.dead = true
	}
	c.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	switch kind {
	case Drop:
		c.inj.record(Event{Conn: c.id, Dir: Send, Kind: Drop, Bytes: len(b)})
		return len(b), nil
	case Corrupt:
		dup := append([]byte(nil), b...)
		dup[pos] ^= 0xA5
		c.inj.record(Event{Conn: c.id, Dir: Send, Kind: Corrupt, Bytes: len(b), Keep: pos})
		return c.Conn.Write(dup)
	case Truncate:
		n, _ := c.Conn.Write(b[:pos])
		c.Conn.Close()
		c.inj.record(Event{Conn: c.id, Dir: Send, Kind: Truncate, Bytes: len(b), Keep: n})
		return n, errTruncated
	}
	if delay > 0 {
		c.inj.record(Event{Conn: c.id, Dir: Send, Kind: Delay, Bytes: len(b)})
	}
	return c.Conn.Write(b)
}

// Read fills the entire buffer (io.ReadFull semantics) so the number of
// fault decisions per frame does not depend on how TCP chunked the stream.
func (c *faultConn) Read(b []byte) (int, error) {
	c.mu.Lock()
	dead := c.dead
	c.mu.Unlock()
	if dead {
		return c.blackhole()
	}
	n, err := io.ReadFull(c.Conn, b)
	if err != nil {
		return n, err
	}
	c.mu.Lock()
	kind, pos, delay := c.plan(c.inj.cfg.Recv, n)
	if kind == Drop {
		c.dead = true
	}
	c.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	switch kind {
	case Drop:
		// The data arrived but the injector pretends it never did.
		c.inj.record(Event{Conn: c.id, Dir: Recv, Kind: Drop, Bytes: n})
		return c.blackhole()
	case Corrupt:
		b[pos] ^= 0xA5
		c.inj.record(Event{Conn: c.id, Dir: Recv, Kind: Corrupt, Bytes: n, Keep: pos})
		return n, nil
	case Truncate:
		c.Conn.Close()
		c.inj.record(Event{Conn: c.id, Dir: Recv, Kind: Truncate, Bytes: n, Keep: pos})
		return pos, nil
	}
	if delay > 0 {
		c.inj.record(Event{Conn: c.id, Dir: Recv, Kind: Delay, Bytes: n})
	}
	return n, nil
}

// blackhole models a dead link: incoming data is discarded and the read
// blocks until the peer closes or the read deadline expires — exactly the
// stall that per-call deadlines exist to bound.
func (c *faultConn) blackhole() (int, error) {
	scratch := make([]byte, 4096)
	for {
		if _, err := c.Conn.Read(scratch); err != nil {
			return 0, err
		}
	}
}

// faultListener wraps every accepted connection and injects accept-time
// failures. An accept failure severs the new connection instead of
// returning an error, because transport servers treat Accept errors as
// shutdown; the client observes an immediate EOF and must retry.
type faultListener struct {
	net.Listener
	inj *Injector
}

func (l *faultListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	fc := l.inj.WrapConn(c).(*faultConn)
	if l.inj.acceptFails(fc.id) {
		c.Close()
		l.inj.record(Event{Conn: fc.id, Kind: AcceptFail})
	}
	return fc, nil
}
