package fault

import (
	"bytes"
	"io"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/netsim"
)

// tcpPair returns the two ends of a loopback TCP connection.
func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	type accepted struct {
		c   net.Conn
		err error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := ln.Accept()
		ch <- accepted{c, err}
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	a := <-ch
	if a.err != nil {
		t.Fatalf("accept: %v", a.err)
	}
	t.Cleanup(func() { client.Close(); a.c.Close() })
	return client, a.c
}

func TestPassthrough(t *testing.T) {
	t.Parallel()
	c, s := tcpPair(t)
	inj := New(Config{Seed: 1})
	fc := inj.WrapConn(c)

	msg := []byte("hello over a clean link")
	go func() { fc.Write(msg) }()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(s, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("payload changed: %q != %q", got, msg)
	}
	if n := inj.Total(); n != 0 {
		t.Fatalf("zero-rate injector recorded %d events", n)
	}
}

func TestCorruptFlipsExactlyOneByte(t *testing.T) {
	t.Parallel()
	c, s := tcpPair(t)
	inj := New(Config{Seed: 3, Send: Rates{Corrupt: 1}})
	fc := inj.WrapConn(c)

	msg := bytes.Repeat([]byte{0x11}, 64)
	go func() { fc.Write(msg) }()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(s, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	flipped := 0
	for i, b := range got {
		if b != 0x11 {
			flipped++
			if b != 0x11^0xA5 {
				t.Fatalf("byte %d is %#x, want %#x", i, b, 0x11^0xA5)
			}
		}
	}
	if flipped != 1 {
		t.Fatalf("%d bytes flipped, want exactly 1", flipped)
	}
	if inj.Count(Corrupt) != 1 {
		t.Fatalf("Count(Corrupt) = %d, want 1", inj.Count(Corrupt))
	}
}

func TestSendDropBlackholesConnection(t *testing.T) {
	t.Parallel()
	c, s := tcpPair(t)
	inj := New(Config{Seed: 5, Send: Rates{Drop: 1}})
	fc := inj.WrapConn(c)

	// The sender believes the write succeeded.
	if n, err := fc.Write([]byte("vanishes")); err != nil || n != 8 {
		t.Fatalf("dropped write returned (%d, %v), want (8, nil)", n, err)
	}
	// The peer never sees the data.
	s.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if _, err := s.Read(make([]byte, 8)); err == nil {
		t.Fatal("peer read succeeded after drop")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("peer read error = %v, want timeout", err)
	}
	// Subsequent writes are swallowed too.
	if n, err := fc.Write([]byte("also gone")); err != nil || n != 9 {
		t.Fatalf("post-drop write returned (%d, %v), want (9, nil)", n, err)
	}
	if inj.Count(Drop) != 1 {
		t.Fatalf("Count(Drop) = %d, want 1 (blackholed writes are not re-counted)", inj.Count(Drop))
	}
}

func TestRecvDropTimesOutAtDeadline(t *testing.T) {
	t.Parallel()
	c, s := tcpPair(t)
	inj := New(Config{Seed: 7, Recv: Rates{Drop: 1}})
	fc := inj.WrapConn(c)

	go func() { s.Write(make([]byte, 16)) }()
	fc.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	_, err := fc.Read(make([]byte, 16))
	if err == nil {
		t.Fatal("read succeeded despite recv drop")
	}
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("read error = %v, want deadline timeout", err)
	}
}

func TestTruncateSeversConnection(t *testing.T) {
	t.Parallel()
	c, s := tcpPair(t)
	inj := New(Config{Seed: 11, Send: Rates{Truncate: 1}})
	fc := inj.WrapConn(c)

	msg := bytes.Repeat([]byte{0x22}, 128)
	n, err := fc.Write(msg)
	if err == nil {
		t.Fatal("truncated write reported success")
	}
	if n >= len(msg) {
		t.Fatalf("truncated write delivered %d of %d bytes", n, len(msg))
	}
	// The peer sees the prefix, then EOF.
	got, rerr := io.ReadAll(s)
	if rerr != nil {
		t.Fatalf("peer read: %v", rerr)
	}
	if len(got) != n {
		t.Fatalf("peer got %d bytes, sender reported %d", len(got), n)
	}
	if inj.Count(Truncate) != 1 {
		t.Fatalf("Count(Truncate) = %d, want 1", inj.Count(Truncate))
	}
}

func TestDelayHoldsOperation(t *testing.T) {
	t.Parallel()
	c, s := tcpPair(t)
	inj := New(Config{Seed: 13, Send: Rates{Delay: 30 * time.Millisecond}})
	fc := inj.WrapConn(c)

	go io.Copy(io.Discard, s)
	start := time.Now()
	if _, err := fc.Write(make([]byte, 8)); err != nil {
		t.Fatalf("write: %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delayed write took %v, want >= 30ms", d)
	}
	if inj.Count(Delay) != 1 {
		t.Fatalf("Count(Delay) = %d, want 1", inj.Count(Delay))
	}
}

func TestAcceptFailSeversNewConnection(t *testing.T) {
	t.Parallel()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	inj := New(Config{Seed: 17, AcceptFail: 1})
	fln := inj.WrapListener(ln)
	defer fln.Close()

	go fln.Accept()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("client read error = %v, want EOF", err)
	}
	if inj.Count(AcceptFail) != 1 {
		t.Fatalf("Count(AcceptFail) = %d, want 1", inj.Count(AcceptFail))
	}
}

// driveSequence runs a fixed operation sequence against a fresh injector and
// returns its fault log.
func driveSequence(t *testing.T, seed int64) []Event {
	t.Helper()
	c, s := tcpPair(t)
	inj := New(Config{Seed: seed, Send: Rates{Corrupt: 0.5}})
	fc := inj.WrapConn(c)
	go io.Copy(io.Discard, s)
	buf := make([]byte, 32)
	for i := 0; i < 50; i++ {
		if _, err := fc.Write(buf); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	return inj.Events()
}

func TestSeededDeterminism(t *testing.T) {
	t.Parallel()
	a := driveSequence(t, 42)
	b := driveSequence(t, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different fault logs:\n%v\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("50 ops at 50% corruption injected nothing")
	}
	other := driveSequence(t, 43)
	if reflect.DeepEqual(a, other) {
		t.Fatal("different seeds produced identical fault logs")
	}
}

func TestFromModel(t *testing.T) {
	t.Parallel()
	r := FromModel(netsim.ISDN)
	if r.Drop != netsim.ISDN.Loss {
		t.Fatalf("Drop = %v, want model loss %v", r.Drop, netsim.ISDN.Loss)
	}
	if r.Corrupt >= r.Drop || r.Truncate >= r.Corrupt {
		t.Fatalf("want Drop > Corrupt > Truncate, got %+v", r)
	}
	if r.Delay != netsim.ISDN.Latency {
		t.Fatalf("Delay = %v, want model latency %v", r.Delay, netsim.ISDN.Latency)
	}
	if lb := FromModel(netsim.Loopback); lb.total() != 0 {
		t.Fatalf("loopback should be fault-free, got %+v", lb)
	}
}
