package idl

import (
	"fmt"
	"strings"
)

// This file is the inverse of format.go: it reconstructs interface
// descriptors from the compact format strings embedded in an instrumented
// binary's configuration record. The static constraint analyzer uses it to
// recover interface metadata from a binary image alone, without the
// original IDL registry — the analog of Coign reading MIDL-generated
// format strings out of a rewritten executable.

// ParseInterfaceFormat parses the encoding produced by
// (*InterfaceDesc).FormatString back into a descriptor. Field and
// parameter names are not encoded and come back empty; kinds, directions,
// IIDs, and the remotability marker round-trip exactly.
func ParseInterfaceFormat(s string) (*InterfaceDesc, error) {
	lines := strings.Split(s, "\n")
	head := strings.TrimSpace(lines[0])
	if head == "" {
		return nil, fmt.Errorf("idl: empty interface format string")
	}
	d := &InterfaceDesc{Remotable: true}
	if rest, ok := strings.CutSuffix(head, " [local]"); ok {
		d.Remotable = false
		head = rest
	}
	if strings.ContainsAny(head, " \t") {
		return nil, fmt.Errorf("idl: malformed interface head line %q", head)
	}
	d.IID = head
	d.Name = head
	for _, line := range lines[1:] {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		m, err := parseMethodFormat(line)
		if err != nil {
			return nil, fmt.Errorf("idl: interface %s: %w", d.IID, err)
		}
		d.Methods = append(d.Methods, *m)
	}
	return d, nil
}

// parseMethodFormat parses one "Name(in l,out y):v" method signature.
func parseMethodFormat(s string) (*MethodDesc, error) {
	open := strings.IndexByte(s, '(')
	if open <= 0 {
		return nil, fmt.Errorf("bad method format %q", s)
	}
	m := &MethodDesc{Name: s[:open]}
	p := &formatParser{src: s, off: open + 1}
	for !p.eof() && p.peek() != ')' {
		if len(m.Params) > 0 {
			if err := p.expect(','); err != nil {
				return nil, err
			}
		}
		dir, err := p.direction()
		if err != nil {
			return nil, err
		}
		t, err := p.typeDesc(0)
		if err != nil {
			return nil, err
		}
		m.Params = append(m.Params, ParamDesc{Dir: dir, Type: t})
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	if err := p.expect(':'); err != nil {
		return nil, err
	}
	t, err := p.typeDesc(0)
	if err != nil {
		return nil, err
	}
	m.Result = t
	if !p.eof() {
		return nil, fmt.Errorf("trailing characters in method format %q", s)
	}
	return m, nil
}

// formatParser is a recursive-descent parser over one method signature.
type formatParser struct {
	src string
	off int
}

func (p *formatParser) eof() bool  { return p.off >= len(p.src) }
func (p *formatParser) peek() byte { return p.src[p.off] }

func (p *formatParser) expect(c byte) error {
	if p.eof() || p.src[p.off] != c {
		return fmt.Errorf("expected %q at offset %d of %q", string(c), p.off, p.src)
	}
	p.off++
	return nil
}

func (p *formatParser) direction() (ParamDir, error) {
	for _, d := range []struct {
		prefix string
		dir    ParamDir
	}{{"inout ", InOut}, {"in ", In}, {"out ", Out}} {
		if strings.HasPrefix(p.src[p.off:], d.prefix) {
			p.off += len(d.prefix)
			return d.dir, nil
		}
	}
	return 0, fmt.Errorf("expected parameter direction at offset %d of %q", p.off, p.src)
}

// maxFormatDepth bounds type nesting so corrupted metadata cannot drive
// the parser into unbounded recursion.
const maxFormatDepth = 64

func (p *formatParser) typeDesc(depth int) (*TypeDesc, error) {
	if depth > maxFormatDepth {
		return nil, fmt.Errorf("type nesting exceeds %d levels", maxFormatDepth)
	}
	if p.eof() {
		return nil, fmt.Errorf("truncated type in %q", p.src)
	}
	c := p.src[p.off]
	p.off++
	switch c {
	case 'v':
		return TVoid, nil
	case 'b':
		return TBool, nil
	case 'l':
		return TInt32, nil
	case 'h':
		return TInt64, nil
	case 'd':
		return TFloat64, nil
	case 's':
		return TString, nil
	case 'y':
		return TBytes, nil
	case 'p':
		return TOpaque, nil
	case 'I':
		iid := ""
		if !p.eof() && p.peek() == '<' {
			end := strings.IndexByte(p.src[p.off:], '>')
			if end < 0 {
				return nil, fmt.Errorf("unterminated interface id in %q", p.src)
			}
			iid = p.src[p.off+1 : p.off+end]
			p.off += end + 1
		}
		return InterfaceType(iid), nil
	case 'S':
		if err := p.expect('{'); err != nil {
			return nil, err
		}
		t := &TypeDesc{Kind: KindStruct}
		for !p.eof() && p.peek() != '}' {
			if len(t.Fields) > 0 {
				if err := p.expect(','); err != nil {
					return nil, err
				}
			}
			ft, err := p.typeDesc(depth + 1)
			if err != nil {
				return nil, err
			}
			t.Fields = append(t.Fields, FieldDesc{Type: ft})
		}
		if err := p.expect('}'); err != nil {
			return nil, err
		}
		return t, nil
	case 'a':
		if err := p.expect('('); err != nil {
			return nil, err
		}
		elem, err := p.typeDesc(depth + 1)
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return &TypeDesc{Kind: KindArray, Elem: elem}, nil
	default:
		return nil, fmt.Errorf("unknown type code %q at offset %d of %q", string(c), p.off-1, p.src)
	}
}
