package idl

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	t.Parallel()
	cases := map[Kind]string{
		KindVoid:      "void",
		KindBool:      "boolean",
		KindInt32:     "long",
		KindInt64:     "hyper",
		KindFloat64:   "double",
		KindString:    "string",
		KindBytes:     "byte[]",
		KindStruct:    "struct",
		KindArray:     "array",
		KindInterface: "interface*",
		KindOpaque:    "void*",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestParamDirString(t *testing.T) {
	t.Parallel()
	if In.String() != "in" || Out.String() != "out" || InOut.String() != "in,out" {
		t.Errorf("unexpected ParamDir strings: %v %v %v", In, Out, InOut)
	}
}

func TestStructConstructor(t *testing.T) {
	t.Parallel()
	pt := Struct("Point", Field("x", TInt32), Field("y", TInt32))
	if pt.Kind != KindStruct || pt.Name != "Point" || len(pt.Fields) != 2 {
		t.Fatalf("bad struct descriptor: %+v", pt)
	}
	if pt.Fields[0].Name != "x" || pt.Fields[1].Type != TInt32 {
		t.Fatalf("bad fields: %+v", pt.Fields)
	}
}

func TestRemotable(t *testing.T) {
	t.Parallel()
	cases := []struct {
		t    *TypeDesc
		want bool
	}{
		{TInt32, true},
		{TString, true},
		{TOpaque, false},
		{Array(TBytes), true},
		{Array(TOpaque), false},
		{Struct("ok", Field("a", TInt64)), true},
		{Struct("bad", Field("a", TInt64), Field("p", TOpaque)), false},
		{Struct("nested", Field("s", Struct("inner", Field("p", TOpaque)))), false},
		{InterfaceType("IFoo"), true},
	}
	for _, c := range cases {
		if got := c.t.Remotable(); got != c.want {
			t.Errorf("Remotable(%s) = %v, want %v", c.t.FormatString(), got, c.want)
		}
	}
}

func TestMethodParamDirections(t *testing.T) {
	t.Parallel()
	m := MethodDesc{
		Name: "Transform",
		Params: []ParamDesc{
			{Name: "src", Dir: In, Type: TBytes},
			{Name: "opts", Dir: InOut, Type: TInt32},
			{Name: "dst", Dir: Out, Type: TBytes},
		},
		Result: TInt32,
	}
	if got := len(m.InParams()); got != 2 {
		t.Errorf("InParams = %d, want 2", got)
	}
	if got := len(m.OutParams()); got != 2 {
		t.Errorf("OutParams = %d, want 2", got)
	}
}

func TestInterfaceDescMethodLookup(t *testing.T) {
	t.Parallel()
	d := &InterfaceDesc{
		IID:       "ITest",
		Remotable: true,
		Methods: []MethodDesc{
			{Name: "A", Result: TVoid},
			{Name: "B", Result: TInt32},
		},
	}
	if m := d.Method("B"); m == nil || m.Name != "B" {
		t.Fatalf("Method(B) = %+v", m)
	}
	if m := d.Method("missing"); m != nil {
		t.Fatalf("Method(missing) = %+v, want nil", m)
	}
}

func TestRegistry(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	d := &InterfaceDesc{IID: "IFoo", Remotable: true}
	r.Register(d)
	if got := r.Lookup("IFoo"); got != d {
		t.Fatalf("Lookup returned %+v", got)
	}
	if got := r.Lookup("IBar"); got != nil {
		t.Fatalf("Lookup(IBar) = %+v, want nil", got)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	ids := r.IIDs()
	if len(ids) != 1 || ids[0] != "IFoo" {
		t.Fatalf("IIDs = %v", ids)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	r := NewRegistry()
	r.Register(&InterfaceDesc{IID: "IFoo"})
	r.Register(&InterfaceDesc{IID: "IFoo"})
}

func TestRegistryEmptyIIDPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty IID")
		}
	}()
	NewRegistry().Register(&InterfaceDesc{})
}

func TestFormatStrings(t *testing.T) {
	t.Parallel()
	pt := Struct("Point", Field("x", TInt32), Field("y", TFloat64))
	if got := pt.FormatString(); got != "S{l,d}" {
		t.Errorf("struct format = %q", got)
	}
	if got := Array(TBytes).FormatString(); got != "a(y)" {
		t.Errorf("array format = %q", got)
	}
	if got := InterfaceType("IDoc").FormatString(); got != "I<IDoc>" {
		t.Errorf("interface format = %q", got)
	}
	m := MethodDesc{
		Name: "Read",
		Params: []ParamDesc{
			{Name: "off", Dir: In, Type: TInt32},
			{Name: "data", Dir: Out, Type: TBytes},
		},
		Result: TInt32,
	}
	if got := m.FormatString(); got != "Read(in l,out y):l" {
		t.Errorf("method format = %q", got)
	}
	d := &InterfaceDesc{IID: "ISprite", Remotable: false,
		Methods: []MethodDesc{{Name: "Ptr", Params: []ParamDesc{{Dir: Out, Type: TOpaque}}}}}
	fs := d.FormatString()
	if !strings.Contains(fs, "[local]") || !strings.Contains(fs, "Ptr(out p):v") {
		t.Errorf("interface format = %q", fs)
	}
}
