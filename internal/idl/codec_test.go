package idl

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

type testResolver struct{ fail bool }

func (r testResolver) ResolveObjRef(iid string, id uint64) (InterfacePtr, error) {
	return fakePtr{iid, id}, nil
}

func roundTrip(t *testing.T, v Value) Value {
	t.Helper()
	e := NewEncoder()
	if err := e.Encode(v); err != nil {
		t.Fatalf("encode: %v", err)
	}
	d := NewDecoder(e.Bytes(), testResolver{})
	got, err := d.Decode(v.Type)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("trailing bytes: %d", d.Remaining())
	}
	return got
}

func TestCodecScalars(t *testing.T) {
	t.Parallel()
	cases := []Value{
		Bool(true), Bool(false),
		Int32(-123456), Int32(0),
		Int64(1<<50 + 17), Int64(-9),
		Float64(3.14159), Float64(-0.0),
		String(""), String("héllo wörld"),
		ByteBuf(nil), ByteBuf([]byte{0, 1, 2, 255}),
	}
	for _, v := range cases {
		got := roundTrip(t, v)
		if got.Int != v.Int || got.Float != v.Float || got.Str != v.Str {
			t.Errorf("round trip of %v: got %v", v, got)
		}
		if v.Type.Kind == KindBytes && len(v.Bytes) > 0 && !reflect.DeepEqual(got.Bytes, v.Bytes) {
			t.Errorf("bytes round trip: got %v want %v", got.Bytes, v.Bytes)
		}
	}
}

func TestCodecAggregates(t *testing.T) {
	t.Parallel()
	pt := Struct("Point", Field("x", TInt32), Field("y", TFloat64))
	v := StructVal(pt, Int32(3), Float64(4.5))
	got := roundTrip(t, v)
	if got.Elems[0].Int != 3 || got.Elems[1].Float != 4.5 {
		t.Errorf("struct round trip: %+v", got)
	}

	arr := ArrayVal(Array(TString), String("a"), String("bb"), String(""))
	got = roundTrip(t, arr)
	if len(got.Elems) != 3 || got.Elems[1].Str != "bb" {
		t.Errorf("array round trip: %+v", got)
	}
}

func TestCodecInterfacePointer(t *testing.T) {
	t.Parallel()
	v := IfacePtr(fakePtr{"IDocReader", 42})
	got := roundTrip(t, v)
	if got.Iface == nil || got.Iface.IID() != "IDocReader" || got.Iface.InstanceID() != 42 {
		t.Errorf("objref round trip: %+v", got.Iface)
	}
	// Null pointer.
	got = roundTrip(t, IfacePtr(nil))
	if got.Iface != nil {
		t.Errorf("null objref round trip: %+v", got.Iface)
	}
}

func TestCodecNullObjRefNeedsNoResolver(t *testing.T) {
	t.Parallel()
	e := NewEncoder()
	if err := e.Encode(IfacePtr(nil)); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(e.Bytes(), nil)
	if _, err := d.Decode(InterfaceType("")); err != nil {
		t.Fatalf("null objref should decode without resolver: %v", err)
	}
}

func TestCodecObjRefWithoutResolverFails(t *testing.T) {
	t.Parallel()
	e := NewEncoder()
	if err := e.Encode(IfacePtr(fakePtr{"I", 1})); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(e.Bytes(), nil)
	if _, err := d.Decode(InterfaceType("I")); err == nil {
		t.Fatal("expected resolver error")
	}
}

func TestCodecOpaqueRejected(t *testing.T) {
	t.Parallel()
	e := NewEncoder()
	if err := e.Encode(OpaquePtr("shm")); err == nil {
		t.Fatal("opaque pointer encoded")
	}
	d := NewDecoder(nil, nil)
	if _, err := d.Decode(TOpaque); err == nil {
		t.Fatal("opaque pointer decoded")
	}
}

func TestCodecTruncation(t *testing.T) {
	t.Parallel()
	e := NewEncoder()
	if err := e.Encode(String("hello")); err != nil {
		t.Fatal(err)
	}
	buf := e.Bytes()
	for cut := 0; cut < len(buf); cut++ {
		d := NewDecoder(buf[:cut], nil)
		if _, err := d.Decode(TString); err == nil {
			t.Errorf("decode of %d/%d bytes succeeded", cut, len(buf))
		}
	}
}

func TestCodecAbsurdArrayCountRejected(t *testing.T) {
	t.Parallel()
	e := NewEncoder()
	e.u32(1 << 30) // claimed count far exceeding stream
	d := NewDecoder(e.Bytes(), nil)
	if _, err := d.Decode(Array(TInt32)); err == nil {
		t.Fatal("absurd array count accepted")
	}
}

func TestEncodeParamsArityChecked(t *testing.T) {
	t.Parallel()
	if _, err := EncodeParams([]*TypeDesc{TInt32}, nil); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestDecodeParamsTrailingBytesRejected(t *testing.T) {
	t.Parallel()
	buf, err := EncodeParams([]*TypeDesc{TInt32, TInt32}, []Value{Int32(1), Int32(2)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeParams(buf, []*TypeDesc{TInt32}, nil); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	vals, err := DecodeParams(buf, []*TypeDesc{TInt32, TInt32}, nil)
	if err != nil || vals[0].Int != 1 || vals[1].Int != 2 {
		t.Fatalf("param round trip: %v %v", vals, err)
	}
}

func TestCodecUntypedValueRejected(t *testing.T) {
	t.Parallel()
	e := NewEncoder()
	if err := e.Encode(Value{}); err == nil {
		t.Fatal("untyped value encoded")
	}
}

func TestCodecStructArityMismatch(t *testing.T) {
	t.Parallel()
	pt := Struct("P", Field("x", TInt32), Field("y", TInt32))
	e := NewEncoder()
	if err := e.Encode(Value{Type: pt, Elems: []Value{Int32(1)}}); err == nil {
		t.Fatal("struct arity mismatch encoded")
	}
}

// equalValue compares decoded and original values structurally (interface
// pointers compare by iid+id).
func equalValue(a, b Value) bool {
	if a.Type.Kind != b.Type.Kind {
		return false
	}
	switch a.Type.Kind {
	case KindBool, KindInt32, KindInt64:
		return a.Int == b.Int
	case KindFloat64:
		return a.Float == b.Float || (a.Float != a.Float && b.Float != b.Float)
	case KindString:
		return a.Str == b.Str
	case KindBytes:
		if len(a.Bytes) != len(b.Bytes) {
			return false
		}
		for i := range a.Bytes {
			if a.Bytes[i] != b.Bytes[i] {
				return false
			}
		}
		return true
	case KindInterface:
		if (a.Iface == nil) != (b.Iface == nil) {
			return false
		}
		return a.Iface == nil ||
			(a.Iface.IID() == b.Iface.IID() && a.Iface.InstanceID() == b.Iface.InstanceID())
	case KindStruct, KindArray:
		if len(a.Elems) != len(b.Elems) {
			return false
		}
		for i := range a.Elems {
			if !equalValue(a.Elems[i], b.Elems[i]) {
				return false
			}
		}
		return true
	}
	return true
}

func TestPropertyCodecRoundTrip(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		v := genValue(rr, 3)
		e := NewEncoder()
		if err := e.Encode(v); err != nil {
			return false
		}
		d := NewDecoder(e.Bytes(), testResolver{})
		got, err := d.Decode(v.Type)
		if err != nil {
			return false
		}
		return d.Remaining() == 0 && equalValue(v, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyEncodedLenMatchesDeepSizeForPointerFreeValues(t *testing.T) {
	t.Parallel()
	// For values with no interface pointers, the encoded length equals the
	// deep-copy size: the informer's measurement is exactly what the wire
	// would carry.
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		v := genValue(rr, 3)
		e := NewEncoder()
		if err := e.Encode(v); err != nil {
			return false
		}
		return e.Len() == v.DeepSize()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
