// Package idl provides interface metadata for the synthetic component model:
// type descriptors, method signatures, typed values, deep-copy size
// measurement with DCOM semantics, and an NDR-like wire codec.
//
// In the original Coign system this role is played by the format strings and
// marshaling code emitted by the Microsoft IDL compiler; the profiling
// interface informer invokes that code in-process to measure exactly the
// number of bytes DCOM would transfer if a call crossed machines. This
// package reproduces that capability for the synthetic component model.
package idl

import (
	"fmt"
	"sort"
)

// Kind enumerates the wire type categories supported by the interface
// definition language.
type Kind int

const (
	// KindVoid is the absence of a value (procedures with no results).
	KindVoid Kind = iota
	// KindBool is a boolean, marshaled as a 4-byte integer as in NDR.
	KindBool
	// KindInt32 is a 32-bit signed integer.
	KindInt32
	// KindInt64 is a 64-bit signed integer.
	KindInt64
	// KindFloat64 is an IEEE-754 double.
	KindFloat64
	// KindString is a length-prefixed UTF-8 string.
	KindString
	// KindBytes is a length-prefixed byte buffer (conformant array of bytes).
	KindBytes
	// KindStruct is a record of named fields, marshaled field by field.
	KindStruct
	// KindArray is a conformant array of a single element type.
	KindArray
	// KindInterface is a COM-style interface pointer. Marshaling an
	// interface pointer transmits an object reference (OBJREF), not the
	// object itself.
	KindInterface
	// KindOpaque is a raw pointer or shared-memory handle passed through an
	// interface without IDL description. Opaque values cannot be marshaled
	// across machines; an interface carrying one is non-remotable.
	KindOpaque
)

// String returns the IDL keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindVoid:
		return "void"
	case KindBool:
		return "boolean"
	case KindInt32:
		return "long"
	case KindInt64:
		return "hyper"
	case KindFloat64:
		return "double"
	case KindString:
		return "string"
	case KindBytes:
		return "byte[]"
	case KindStruct:
		return "struct"
	case KindArray:
		return "array"
	case KindInterface:
		return "interface*"
	case KindOpaque:
		return "void*"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// TypeDesc describes a wire type. TypeDescs are immutable after
// construction and may be shared freely.
type TypeDesc struct {
	Kind   Kind
	Name   string      // optional type name (structs, named interfaces)
	Fields []FieldDesc // KindStruct only
	Elem   *TypeDesc   // KindArray only
	IID    string      // KindInterface only: expected interface id ("" = any)
}

// FieldDesc is a named struct field.
type FieldDesc struct {
	Name string
	Type *TypeDesc
}

// Predeclared scalar type descriptors.
var (
	TVoid    = &TypeDesc{Kind: KindVoid}
	TBool    = &TypeDesc{Kind: KindBool}
	TInt32   = &TypeDesc{Kind: KindInt32}
	TInt64   = &TypeDesc{Kind: KindInt64}
	TFloat64 = &TypeDesc{Kind: KindFloat64}
	TString  = &TypeDesc{Kind: KindString}
	TBytes   = &TypeDesc{Kind: KindBytes}
	TOpaque  = &TypeDesc{Kind: KindOpaque}
)

// Struct constructs a struct type descriptor.
func Struct(name string, fields ...FieldDesc) *TypeDesc {
	return &TypeDesc{Kind: KindStruct, Name: name, Fields: fields}
}

// Field constructs a struct field descriptor.
func Field(name string, t *TypeDesc) FieldDesc {
	return FieldDesc{Name: name, Type: t}
}

// Array constructs a conformant-array type descriptor.
func Array(elem *TypeDesc) *TypeDesc {
	return &TypeDesc{Kind: KindArray, Elem: elem}
}

// InterfaceType constructs an interface-pointer type descriptor. iid may be
// empty to accept any interface.
func InterfaceType(iid string) *TypeDesc {
	return &TypeDesc{Kind: KindInterface, Name: iid, IID: iid}
}

// Remotable reports whether values of the type can be marshaled across a
// machine boundary. Opaque pointers — and any aggregate containing one —
// cannot.
func (t *TypeDesc) Remotable() bool {
	switch t.Kind {
	case KindOpaque:
		return false
	case KindStruct:
		for _, f := range t.Fields {
			if !f.Type.Remotable() {
				return false
			}
		}
		return true
	case KindArray:
		return t.Elem.Remotable()
	default:
		return true
	}
}

// ParamDir is the direction of a method parameter.
type ParamDir int

const (
	// In parameters travel caller → callee.
	In ParamDir = iota
	// Out parameters travel callee → caller.
	Out
	// InOut parameters travel both directions.
	InOut
)

// String returns the IDL attribute spelling for the direction.
func (d ParamDir) String() string {
	switch d {
	case In:
		return "in"
	case Out:
		return "out"
	case InOut:
		return "in,out"
	default:
		return fmt.Sprintf("dir(%d)", int(d))
	}
}

// ParamDesc describes one method parameter.
type ParamDesc struct {
	Name string
	Dir  ParamDir
	Type *TypeDesc
}

// MethodDesc describes one interface method. Cacheable asserts that the
// method's results depend only on its arguments, permitting the runtime to
// answer repeated cross-machine calls from a proxy-side cache — the analog
// of enabling COM semi-custom marshaling on the interface.
type MethodDesc struct {
	Name      string
	Params    []ParamDesc
	Result    *TypeDesc // KindVoid if none
	Cacheable bool
}

// InParams returns the descriptors of parameters that travel caller→callee.
func (m *MethodDesc) InParams() []ParamDesc {
	var ps []ParamDesc
	for _, p := range m.Params {
		if p.Dir == In || p.Dir == InOut {
			ps = append(ps, p)
		}
	}
	return ps
}

// OutParams returns the descriptors of parameters that travel callee→caller.
func (m *MethodDesc) OutParams() []ParamDesc {
	var ps []ParamDesc
	for _, p := range m.Params {
		if p.Dir == Out || p.Dir == InOut {
			ps = append(ps, p)
		}
	}
	return ps
}

// InterfaceDesc describes a component interface: an IID, a name, and an
// ordered collection of methods. Remotable is false when the interface
// passes opaque pointers (shared-memory handles) that DCOM cannot marshal;
// Coign must co-locate the two endpoints of such an interface.
type InterfaceDesc struct {
	IID       string
	Name      string
	Remotable bool
	Methods   []MethodDesc

	methodIndex map[string]*MethodDesc
}

// Method returns the descriptor of the named method, or nil. Lookups are
// indexed once the descriptor is registered; unregistered descriptors fall
// back to a linear scan.
func (d *InterfaceDesc) Method(name string) *MethodDesc {
	if d.methodIndex != nil {
		return d.methodIndex[name]
	}
	for i := range d.Methods {
		if d.Methods[i].Name == name {
			return &d.Methods[i]
		}
	}
	return nil
}

// buildIndex materializes the method lookup table.
func (d *InterfaceDesc) buildIndex() {
	d.methodIndex = make(map[string]*MethodDesc, len(d.Methods))
	for i := range d.Methods {
		d.methodIndex[d.Methods[i].Name] = &d.Methods[i]
	}
}

// Registry maps IIDs to interface descriptors. It is the synthetic
// equivalent of the static interface metadata managed by the interface
// informer.
type Registry struct {
	byIID map[string]*InterfaceDesc
}

// NewRegistry returns an empty interface registry.
func NewRegistry() *Registry {
	return &Registry{byIID: make(map[string]*InterfaceDesc)}
}

// Register adds an interface descriptor. It panics on duplicate IIDs:
// interface identity is a build-time property, so a duplicate is a
// programming error, not a runtime condition.
func (r *Registry) Register(d *InterfaceDesc) {
	if d.IID == "" {
		panic("idl: interface with empty IID")
	}
	if _, dup := r.byIID[d.IID]; dup {
		panic("idl: duplicate interface " + d.IID)
	}
	d.buildIndex()
	r.byIID[d.IID] = d
}

// Lookup returns the descriptor for iid, or nil if unknown.
func (r *Registry) Lookup(iid string) *InterfaceDesc {
	return r.byIID[iid]
}

// Len returns the number of registered interfaces.
func (r *Registry) Len() int { return len(r.byIID) }

// IIDs returns all registered interface ids, sorted.
func (r *Registry) IIDs() []string {
	ids := make([]string, 0, len(r.byIID))
	for id := range r.byIID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
