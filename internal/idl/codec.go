package idl

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The wire codec implements an NDR-like little-endian encoding used by the
// loopback-TCP transport and the network profiler. Interface pointers
// marshal as (iid, instance id) object references; the unmarshaling side
// resolves them through a Resolver. Opaque pointers cannot be encoded.

// Resolver turns a marshaled object reference back into a live interface
// pointer on the receiving side. The distributed runtime provides one that
// creates proxies for remote instances.
type Resolver interface {
	ResolveObjRef(iid string, instanceID uint64) (InterfacePtr, error)
}

// Encoder appends wire bytes for values.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with an empty buffer.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the accumulated wire bytes.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

func (e *Encoder) u32(n uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, n)
}

func (e *Encoder) u64(n uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, n)
}

func (e *Encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Encode appends the wire form of v. Opaque values are rejected: they are
// the non-remotable case the paper's black interface edges represent.
func (e *Encoder) Encode(v Value) error {
	if v.Type == nil {
		return fmt.Errorf("idl: encode of untyped value")
	}
	switch v.Type.Kind {
	case KindVoid:
		return nil
	case KindBool, KindInt32:
		e.u32(uint32(int32(v.Int)))
		return nil
	case KindInt64:
		e.u64(uint64(v.Int))
		return nil
	case KindFloat64:
		e.u64(math.Float64bits(v.Float))
		return nil
	case KindString:
		e.str(v.Str)
		return nil
	case KindBytes:
		e.u32(uint32(len(v.Bytes)))
		e.buf = append(e.buf, v.Bytes...)
		return nil
	case KindInterface:
		if v.Iface == nil {
			e.u32(0) // null object reference
			return nil
		}
		e.u32(1)
		e.str(v.Iface.IID())
		e.u64(v.Iface.InstanceID())
		return nil
	case KindStruct:
		if len(v.Elems) != len(v.Type.Fields) {
			return fmt.Errorf("idl: struct %s arity mismatch", v.Type.Name)
		}
		for i := range v.Elems {
			if err := e.Encode(v.Elems[i]); err != nil {
				return err
			}
		}
		return nil
	case KindArray:
		e.u32(uint32(len(v.Elems)))
		for i := range v.Elems {
			if err := e.Encode(v.Elems[i]); err != nil {
				return err
			}
		}
		return nil
	case KindOpaque:
		return fmt.Errorf("idl: cannot marshal opaque pointer across machines")
	default:
		return fmt.Errorf("idl: encode of unknown kind %v", v.Type.Kind)
	}
}

// EncodeParams encodes a parameter list against its descriptors.
func EncodeParams(types []*TypeDesc, vals []Value) ([]byte, error) {
	if len(types) != len(vals) {
		return nil, fmt.Errorf("idl: %d values for %d parameters", len(vals), len(types))
	}
	e := NewEncoder()
	for i := range vals {
		if err := e.Encode(vals[i]); err != nil {
			return nil, err
		}
	}
	return e.Bytes(), nil
}

// Decoder consumes wire bytes, reconstructing values type-directed.
type Decoder struct {
	buf      []byte
	off      int
	resolver Resolver
}

// NewDecoder returns a decoder over buf. resolver may be nil if the stream
// is known to contain no non-null interface pointers.
func NewDecoder(buf []byte, resolver Resolver) *Decoder {
	return &Decoder{buf: buf, resolver: resolver}
}

// Remaining returns the number of unconsumed bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) u32() (uint32, error) {
	if d.off+4 > len(d.buf) {
		return 0, fmt.Errorf("idl: truncated stream at offset %d", d.off)
	}
	n := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return n, nil
}

func (d *Decoder) u64() (uint64, error) {
	if d.off+8 > len(d.buf) {
		return 0, fmt.Errorf("idl: truncated stream at offset %d", d.off)
	}
	n := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return n, nil
}

func (d *Decoder) str() (string, error) {
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	if d.off+int(n) > len(d.buf) {
		return "", fmt.Errorf("idl: truncated string at offset %d", d.off)
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

// Decode reads one value of type t.
func (d *Decoder) Decode(t *TypeDesc) (Value, error) {
	switch t.Kind {
	case KindVoid:
		return Value{Type: TVoid}, nil
	case KindBool, KindInt32:
		n, err := d.u32()
		if err != nil {
			return Value{}, err
		}
		return Value{Type: t, Int: int64(int32(n))}, nil
	case KindInt64:
		n, err := d.u64()
		if err != nil {
			return Value{}, err
		}
		return Value{Type: t, Int: int64(n)}, nil
	case KindFloat64:
		n, err := d.u64()
		if err != nil {
			return Value{}, err
		}
		return Value{Type: t, Float: math.Float64frombits(n)}, nil
	case KindString:
		s, err := d.str()
		if err != nil {
			return Value{}, err
		}
		return Value{Type: t, Str: s}, nil
	case KindBytes:
		n, err := d.u32()
		if err != nil {
			return Value{}, err
		}
		if d.off+int(n) > len(d.buf) {
			return Value{}, fmt.Errorf("idl: truncated buffer at offset %d", d.off)
		}
		b := make([]byte, n)
		copy(b, d.buf[d.off:])
		d.off += int(n)
		return Value{Type: t, Bytes: b}, nil
	case KindInterface:
		marker, err := d.u32()
		if err != nil {
			return Value{}, err
		}
		if marker == 0 {
			return Value{Type: t}, nil
		}
		iid, err := d.str()
		if err != nil {
			return Value{}, err
		}
		id, err := d.u64()
		if err != nil {
			return Value{}, err
		}
		if d.resolver == nil {
			return Value{}, fmt.Errorf("idl: object reference to %s but no resolver", iid)
		}
		p, err := d.resolver.ResolveObjRef(iid, id)
		if err != nil {
			return Value{}, err
		}
		return Value{Type: t, Iface: p}, nil
	case KindStruct:
		v := Value{Type: t, Elems: make([]Value, len(t.Fields))}
		for i, f := range t.Fields {
			fv, err := d.Decode(f.Type)
			if err != nil {
				return Value{}, err
			}
			v.Elems[i] = fv
		}
		return v, nil
	case KindArray:
		n, err := d.u32()
		if err != nil {
			return Value{}, err
		}
		// Reject absurd conformance counts before allocating: every element
		// occupies at least minWireSize bytes. Elements that can occupy zero
		// bytes (empty structs) are capped to keep a hostile count bounded.
		if min := minWireSize(t.Elem); min > 0 {
			if int64(n)*int64(min) > int64(d.Remaining()) {
				return Value{}, fmt.Errorf("idl: array count %d exceeds remaining %d bytes", n, d.Remaining())
			}
		} else if n > maxZeroSizeElems {
			return Value{}, fmt.Errorf("idl: array count %d of zero-size elements exceeds cap", n)
		}
		v := Value{Type: t, Elems: make([]Value, n)}
		for i := 0; i < int(n); i++ {
			ev, err := d.Decode(t.Elem)
			if err != nil {
				return Value{}, err
			}
			v.Elems[i] = ev
		}
		return v, nil
	case KindOpaque:
		return Value{}, fmt.Errorf("idl: cannot unmarshal opaque pointer")
	default:
		return Value{}, fmt.Errorf("idl: decode of unknown kind %v", t.Kind)
	}
}

// maxZeroSizeElems bounds conformance counts for element types that may
// occupy zero wire bytes, where the byte-budget guard cannot apply.
const maxZeroSizeElems = 1 << 20

// minWireSize returns the minimum number of bytes one value of type t
// occupies on the wire.
func minWireSize(t *TypeDesc) int {
	switch t.Kind {
	case KindBool, KindInt32, KindString, KindBytes, KindInterface, KindOpaque:
		return 4
	case KindInt64, KindFloat64:
		return 8
	case KindStruct:
		n := 0
		for _, f := range t.Fields {
			n += minWireSize(f.Type)
		}
		return n
	case KindArray:
		return 4
	default: // KindVoid
		return 0
	}
}

// DecodeParams decodes a parameter list against its descriptors.
func DecodeParams(buf []byte, types []*TypeDesc, resolver Resolver) ([]Value, error) {
	d := NewDecoder(buf, resolver)
	vals := make([]Value, len(types))
	for i, t := range types {
		v, err := d.Decode(t)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("idl: %d trailing bytes after parameters", d.Remaining())
	}
	return vals, nil
}
