package idl

import (
	"errors"
	"fmt"
)

// InterfacePtr is the view this package has of a component interface
// pointer. The component model's interface handles implement it. Marshaling
// an interface pointer transmits a standard object reference, not the
// object, mirroring DCOM OBJREF semantics.
type InterfacePtr interface {
	// IID returns the interface id of the referenced interface.
	IID() string
	// InstanceID returns the process-unique id of the owning instance.
	InstanceID() uint64
}

// Value is a typed wire value. Exactly one payload field is meaningful,
// selected by Type.Kind. The zero Value is the void value.
type Value struct {
	Type   *TypeDesc
	Int    int64        // KindBool (0/1), KindInt32, KindInt64
	Float  float64      // KindFloat64
	Str    string       // KindString
	Bytes  []byte       // KindBytes
	Elems  []Value      // KindStruct (fields in order), KindArray
	Iface  InterfacePtr // KindInterface (may be nil)
	Opaque any          // KindOpaque
}

// Void is the void value.
func Void() Value { return Value{Type: TVoid} }

// Bool constructs a boolean value.
func Bool(b bool) Value {
	v := Value{Type: TBool}
	if b {
		v.Int = 1
	}
	return v
}

// Int32 constructs a 32-bit integer value.
func Int32(n int32) Value { return Value{Type: TInt32, Int: int64(n)} }

// Int64 constructs a 64-bit integer value.
func Int64(n int64) Value { return Value{Type: TInt64, Int: n} }

// Float64 constructs a double value.
func Float64(f float64) Value { return Value{Type: TFloat64, Float: f} }

// String constructs a string value.
func String(s string) Value { return Value{Type: TString, Str: s} }

// ByteBuf constructs a byte-buffer value.
func ByteBuf(b []byte) Value { return Value{Type: TBytes, Bytes: b} }

// StructVal constructs a struct value; fields must be given in descriptor
// order.
func StructVal(t *TypeDesc, fields ...Value) Value {
	return Value{Type: t, Elems: fields}
}

// ArrayVal constructs an array value.
func ArrayVal(t *TypeDesc, elems ...Value) Value {
	return Value{Type: t, Elems: elems}
}

// IfacePtr constructs an interface-pointer value.
func IfacePtr(p InterfacePtr) Value {
	iid := ""
	if p != nil {
		iid = p.IID()
	}
	return Value{Type: InterfaceType(iid), Iface: p}
}

// OpaquePtr constructs an opaque-pointer value carrying p. Such values are
// non-remotable by construction.
func OpaquePtr(p any) Value { return Value{Type: TOpaque, Opaque: p} }

// IsVoid reports whether v is the void value.
func (v Value) IsVoid() bool { return v.Type == nil || v.Type.Kind == KindVoid }

// AsBool returns the boolean payload.
func (v Value) AsBool() bool { return v.Int != 0 }

// AsInt returns the integer payload.
func (v Value) AsInt() int64 { return v.Int }

// AsFloat returns the float payload.
func (v Value) AsFloat() float64 { return v.Float }

// AsString returns the string payload.
func (v Value) AsString() string { return v.Str }

// Validate checks that the value's payload matches its type descriptor,
// recursively. It is used by the stubs to reject malformed calls.
func (v Value) Validate() error {
	if v.Type == nil {
		return errors.New("idl: value has nil type")
	}
	switch v.Type.Kind {
	case KindVoid, KindBool, KindInt32, KindInt64, KindFloat64, KindString,
		KindBytes, KindOpaque:
		return nil
	case KindInterface:
		if v.Iface != nil && v.Type.IID != "" && v.Iface.IID() != v.Type.IID {
			return fmt.Errorf("idl: interface pointer has IID %s, want %s",
				v.Iface.IID(), v.Type.IID)
		}
		return nil
	case KindStruct:
		if len(v.Elems) != len(v.Type.Fields) {
			return fmt.Errorf("idl: struct %s has %d fields, value has %d",
				v.Type.Name, len(v.Type.Fields), len(v.Elems))
		}
		for i, f := range v.Type.Fields {
			if v.Elems[i].Type == nil {
				return fmt.Errorf("idl: struct %s field %s is untyped", v.Type.Name, f.Name)
			}
			if v.Elems[i].Type.Kind != f.Type.Kind {
				return fmt.Errorf("idl: struct %s field %s has kind %v, want %v",
					v.Type.Name, f.Name, v.Elems[i].Type.Kind, f.Type.Kind)
			}
			if err := v.Elems[i].Validate(); err != nil {
				return err
			}
		}
		return nil
	case KindArray:
		for i := range v.Elems {
			if v.Elems[i].Type == nil || v.Elems[i].Type.Kind != v.Type.Elem.Kind {
				return fmt.Errorf("idl: array element %d has wrong kind", i)
			}
			if err := v.Elems[i].Validate(); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("idl: unknown kind %v", v.Type.Kind)
	}
}

// objRefSize is the marshaled size of a standard object reference: a COM
// OBJREF with a STDOBJREF body plus resolver address, ~68 bytes on the wire.
const objRefSize = 68

// DeepSize returns the number of bytes DCOM would transfer to deep-copy v
// to another machine, following NDR alignment conventions approximately:
// scalars at natural size (bool as 4 bytes), strings and buffers with a
// 4-byte conformance prefix, interface pointers as object references, and
// aggregates as the sum of their parts. Opaque pointers marshal as a 4-byte
// pointer representation that is meaningless remotely — interfaces passing
// them must be declared non-remotable.
func (v Value) DeepSize() int {
	if v.Type == nil {
		return 0
	}
	switch v.Type.Kind {
	case KindVoid:
		return 0
	case KindBool, KindInt32, KindOpaque:
		return 4
	case KindInt64, KindFloat64:
		return 8
	case KindString:
		return 4 + len(v.Str)
	case KindBytes:
		return 4 + len(v.Bytes)
	case KindInterface:
		if v.Iface == nil {
			return 4 // null pointer marker
		}
		return objRefSize
	case KindStruct:
		n := 0
		for i := range v.Elems {
			n += v.Elems[i].DeepSize()
		}
		return n
	case KindArray:
		n := 4 // conformance count
		for i := range v.Elems {
			n += v.Elems[i].DeepSize()
		}
		return n
	default:
		return 0
	}
}

// Walk visits v and every nested value in marshal order, invoking fn for
// each. It is the primitive the profiling informer uses to traverse call
// parameters. Walking stops early if fn returns false.
func (v *Value) Walk(fn func(*Value) bool) bool {
	if !fn(v) {
		return false
	}
	switch {
	case v.Type == nil:
		return true
	case v.Type.Kind == KindStruct || v.Type.Kind == KindArray:
		for i := range v.Elems {
			if !v.Elems[i].Walk(fn) {
				return false
			}
		}
	}
	return true
}

// InterfacePointers returns every interface pointer reachable from the
// values, in marshal order. The distribution informer needs only this —
// it scans just far enough to find interface pointers, which is why its
// overhead is a small fraction of the profiling informer's.
func InterfacePointers(vals []Value) []InterfacePtr {
	var ptrs []InterfacePtr
	for i := range vals {
		vals[i].Walk(func(v *Value) bool {
			if v.Type != nil && v.Type.Kind == KindInterface && v.Iface != nil {
				ptrs = append(ptrs, v.Iface)
			}
			return true
		})
	}
	return ptrs
}

// SizeOf returns the total deep-copy size of a parameter list.
func SizeOf(vals []Value) int {
	n := 0
	for i := range vals {
		n += vals[i].DeepSize()
	}
	return n
}

// RemotableValues reports whether every value in the list can be marshaled
// across a machine boundary. Both the payload tree and the declared type
// tree are checked: a KindOpaque nested inside an aggregate is caught even
// when the aggregate's payload is empty (an empty conformant array of
// opaque elements is still non-remotable — its type admits no marshaling).
func RemotableValues(vals []Value) bool {
	ok := true
	for i := range vals {
		vals[i].Walk(func(v *Value) bool {
			if v.Type != nil && !v.Type.Remotable() {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			return false
		}
	}
	return true
}
