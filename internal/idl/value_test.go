package idl

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// fakePtr implements InterfacePtr for tests.
type fakePtr struct {
	iid string
	id  uint64
}

func (p fakePtr) IID() string        { return p.iid }
func (p fakePtr) InstanceID() uint64 { return p.id }

func TestScalarConstructorsAndAccessors(t *testing.T) {
	t.Parallel()
	if v := Bool(true); !v.AsBool() || v.Type.Kind != KindBool {
		t.Error("Bool(true) broken")
	}
	if v := Bool(false); v.AsBool() {
		t.Error("Bool(false) broken")
	}
	if v := Int32(-7); v.AsInt() != -7 {
		t.Error("Int32 broken")
	}
	if v := Int64(1 << 40); v.AsInt() != 1<<40 {
		t.Error("Int64 broken")
	}
	if v := Float64(2.5); v.AsFloat() != 2.5 {
		t.Error("Float64 broken")
	}
	if v := String("hi"); v.AsString() != "hi" {
		t.Error("String broken")
	}
	if !Void().IsVoid() || Int32(1).IsVoid() {
		t.Error("IsVoid broken")
	}
	if (Value{}).IsVoid() != true {
		t.Error("zero value should be void")
	}
}

func TestDeepSizeScalars(t *testing.T) {
	t.Parallel()
	cases := []struct {
		v    Value
		want int
	}{
		{Void(), 0},
		{Bool(true), 4},
		{Int32(0), 4},
		{Int64(0), 8},
		{Float64(0), 8},
		{String("abc"), 7},
		{ByteBuf(make([]byte, 100)), 104},
		{OpaquePtr(nil), 4},
		{IfacePtr(nil), 4},
		{IfacePtr(fakePtr{"IFoo", 3}), 68},
	}
	for i, c := range cases {
		if got := c.v.DeepSize(); got != c.want {
			t.Errorf("case %d: DeepSize = %d, want %d", i, got, c.want)
		}
	}
}

func TestDeepSizeAggregates(t *testing.T) {
	t.Parallel()
	pt := Struct("Point", Field("x", TInt32), Field("y", TInt32))
	v := StructVal(pt, Int32(1), Int32(2))
	if got := v.DeepSize(); got != 8 {
		t.Errorf("struct size = %d, want 8", got)
	}
	arr := ArrayVal(Array(pt), v, v, v)
	if got := arr.DeepSize(); got != 4+3*8 {
		t.Errorf("array size = %d, want 28", got)
	}
	// Deep copy: nesting multiplies.
	outer := StructVal(Struct("Wrap", Field("pts", Array(pt)), Field("name", TString)),
		arr, String("xy"))
	if got := outer.DeepSize(); got != 28+6 {
		t.Errorf("nested size = %d, want 34", got)
	}
}

func TestValidate(t *testing.T) {
	t.Parallel()
	pt := Struct("Point", Field("x", TInt32), Field("y", TInt32))
	good := StructVal(pt, Int32(1), Int32(2))
	if err := good.Validate(); err != nil {
		t.Errorf("valid struct rejected: %v", err)
	}
	bad := StructVal(pt, Int32(1)) // arity
	if err := bad.Validate(); err == nil {
		t.Error("arity mismatch accepted")
	}
	badKind := StructVal(pt, Int32(1), String("y")) // kind
	if err := badKind.Validate(); err == nil {
		t.Error("kind mismatch accepted")
	}
	if err := (Value{}).Validate(); err == nil {
		t.Error("untyped value accepted")
	}
	arr := ArrayVal(Array(TInt32), Int32(1), String("no"))
	if err := arr.Validate(); err == nil {
		t.Error("heterogeneous array accepted")
	}
	ifv := Value{Type: InterfaceType("IWant"), Iface: fakePtr{"IOther", 1}}
	if err := ifv.Validate(); err == nil {
		t.Error("IID mismatch accepted")
	}
	okIf := Value{Type: InterfaceType("IWant"), Iface: fakePtr{"IWant", 1}}
	if err := okIf.Validate(); err != nil {
		t.Errorf("matching IID rejected: %v", err)
	}
}

func TestWalkVisitsEverything(t *testing.T) {
	t.Parallel()
	pt := Struct("P", Field("a", TInt32), Field("b", TString))
	v := ArrayVal(Array(pt),
		StructVal(pt, Int32(1), String("x")),
		StructVal(pt, Int32(2), String("y")))
	count := 0
	v.Walk(func(*Value) bool { count++; return true })
	// 1 array + 2 structs + 4 scalars
	if count != 7 {
		t.Errorf("walk visited %d nodes, want 7", count)
	}
	// Early stop.
	count = 0
	v.Walk(func(*Value) bool { count++; return count < 3 })
	if count != 3 {
		t.Errorf("early-stop walk visited %d nodes, want 3", count)
	}
}

func TestInterfacePointers(t *testing.T) {
	t.Parallel()
	p1 := fakePtr{"IA", 1}
	p2 := fakePtr{"IB", 2}
	vals := []Value{
		Int32(9),
		StructVal(Struct("S", Field("i", InterfaceType("IA")), Field("n", TInt32)),
			IfacePtr(p1), Int32(3)),
		ArrayVal(Array(InterfaceType("IB")), IfacePtr(p2)),
		IfacePtr(nil),
	}
	ptrs := InterfacePointers(vals)
	if len(ptrs) != 2 || ptrs[0].IID() != "IA" || ptrs[1].IID() != "IB" {
		t.Fatalf("InterfacePointers = %v", ptrs)
	}
}

func TestSizeOfAndRemotableValues(t *testing.T) {
	t.Parallel()
	vals := []Value{Int32(1), String("abcd")}
	if got := SizeOf(vals); got != 4+8 {
		t.Errorf("SizeOf = %d, want 12", got)
	}
	if !RemotableValues(vals) {
		t.Error("plain values reported non-remotable")
	}
	withPtr := []Value{Int32(1), StructVal(Struct("S", Field("p", TOpaque)), OpaquePtr("mem"))}
	if RemotableValues(withPtr) {
		t.Error("opaque pointer reported remotable")
	}
}

func TestRemotableValuesNestedOpaqueTypes(t *testing.T) {
	t.Parallel()
	// The opaque pointer may hide in the type tree without appearing in the
	// payload tree: an empty conformant array of opaque elements, or an
	// opaque-field struct whose payload was left empty. Both are still
	// unmarshalable.
	emptyOpaqueArray := []Value{ArrayVal(Array(TOpaque))}
	if RemotableValues(emptyOpaqueArray) {
		t.Error("empty array of opaque elements reported remotable")
	}
	emptyOpaqueStruct := []Value{StructVal(Struct("S", Field("p", TOpaque)))}
	if RemotableValues(emptyOpaqueStruct) {
		t.Error("empty struct with an opaque field reported remotable")
	}
	deep := []Value{ArrayVal(Array(Struct("Inner", Field("hs", Array(TOpaque)))))}
	if RemotableValues(deep) {
		t.Error("opaque nested two aggregates deep reported remotable")
	}
	clean := []Value{ArrayVal(Array(Struct("Inner", Field("n", TInt32))))}
	if !RemotableValues(clean) {
		t.Error("clean nested aggregate reported non-remotable")
	}
}

// genValue builds a random remotable value of bounded depth for
// property-based tests.
func genValue(r *rand.Rand, depth int) Value {
	choices := 6
	if depth > 0 {
		choices = 8
	}
	switch r.Intn(choices) {
	case 0:
		return Bool(r.Intn(2) == 0)
	case 1:
		return Int32(int32(r.Int63()))
	case 2:
		return Int64(r.Int63() - r.Int63())
	case 3:
		return Float64(r.NormFloat64())
	case 4:
		b := make([]byte, r.Intn(64))
		r.Read(b)
		return String(string(b))
	case 5:
		b := make([]byte, r.Intn(256))
		r.Read(b)
		return ByteBuf(b)
	case 6:
		n := r.Intn(4)
		fields := make([]FieldDesc, n)
		vals := make([]Value, n)
		for i := 0; i < n; i++ {
			vals[i] = genValue(r, depth-1)
			fields[i] = Field("f", vals[i].Type)
		}
		return StructVal(Struct("G", fields...), vals...)
	default:
		// Arrays must be homogeneous: generate one element type.
		elem := genValue(r, depth-1)
		n := r.Intn(4)
		vals := make([]Value, 0, n)
		for i := 0; i < n; i++ {
			v := genValue(r, depth-1)
			if v.Type.Kind == elem.Type.Kind {
				vals = append(vals, v)
			}
		}
		// Ensure element kinds match descriptor exactly by reusing elem's type.
		arr := make([]Value, 0, len(vals)+1)
		arr = append(arr, elem)
		for _, v := range vals {
			if v.Type.FormatString() == elem.Type.FormatString() {
				arr = append(arr, v)
			}
		}
		return ArrayVal(Array(elem.Type), arr...)
	}
}

func TestPropertyDeepSizeNonNegative(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		v := genValue(rr, 3)
		return v.DeepSize() >= 0 && v.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDeepSizeAdditive(t *testing.T) {
	t.Parallel()
	// Size of a struct equals the sum of its field sizes: deep-copy
	// semantics have no sharing.
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a := genValue(rr, 2)
		b := genValue(rr, 2)
		s := StructVal(Struct("Pair", Field("a", a.Type), Field("b", b.Type)), a, b)
		return s.DeepSize() == a.DeepSize()+b.DeepSize()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
