package idl

import "testing"

// FuzzDecodeParams hardens the NDR-like decoder against arbitrary wire
// bytes for a representative signature: it must never panic and never
// allocate absurdly from hostile conformance counts.
func FuzzDecodeParams(f *testing.F) {
	types := []*TypeDesc{
		TInt32, TString, TBytes,
		Struct("S", Field("a", TInt64), Field("b", Array(TFloat64))),
		InterfaceType("IAny"),
	}
	// Seed with a valid encoding.
	vals := []Value{
		Int32(7), String("hello"), ByteBuf([]byte{1, 2, 3}),
		StructVal(types[3], Int64(9), ArrayVal(Array(TFloat64), Float64(1.5))),
		IfacePtr(fakePtr{"IAny", 4}),
	}
	good, err := EncodeParams(types, vals)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := DecodeParams(data, types, testResolver{})
		if err != nil {
			return
		}
		// Anything that decodes must re-encode.
		re, err := EncodeParams(types, decoded)
		if err != nil {
			t.Fatalf("decoded values failed to encode: %v", err)
		}
		// And the re-encoding must decode to structurally equal values.
		back, err := DecodeParams(re, types, testResolver{})
		if err != nil {
			t.Fatalf("re-encoded stream failed to decode: %v", err)
		}
		for i := range decoded {
			if !equalValue(decoded[i], back[i]) {
				t.Fatalf("value %d not stable across encode/decode", i)
			}
		}
	})
}
