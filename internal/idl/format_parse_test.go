package idl

import (
	"strings"
	"testing"
)

// sampleRegistry assembles descriptors covering every type code the format
// grammar can emit.
func sampleRegistry() *Registry {
	r := NewRegistry()
	r.Register(&InterfaceDesc{
		IID: "IKitchen", Name: "IKitchen", Remotable: true,
		Methods: []MethodDesc{
			{Name: "Mix", Params: []ParamDesc{
				{Name: "a", Dir: In, Type: TInt32},
				{Name: "b", Dir: Out, Type: TString},
				{Name: "c", Dir: InOut, Type: TBytes},
			}, Result: TInt64},
			{Name: "Bake", Params: []ParamDesc{
				{Name: "pan", Dir: In, Type: Struct("Pan",
					Field("w", TFloat64),
					Field("deep", TBool),
					Field("racks", Array(TInt32)),
				)},
			}, Result: TVoid},
			{Name: "Serve", Params: []ParamDesc{
				{Name: "plates", Dir: In, Type: Array(Struct("Plate", Field("id", TInt32)))},
				{Name: "to", Dir: In, Type: InterfaceType("IGuest")},
				{Name: "anyone", Dir: In, Type: InterfaceType("")},
			}, Result: InterfaceType("IReceipt")},
		},
	})
	r.Register(&InterfaceDesc{
		IID: "ILocalOnly", Name: "ILocalOnly", Remotable: false,
		Methods: []MethodDesc{
			{Name: "Touch", Params: []ParamDesc{{Name: "h", Dir: In, Type: TOpaque}}, Result: TVoid},
		},
	})
	return r
}

func TestParseInterfaceFormatRoundTrip(t *testing.T) {
	t.Parallel()
	reg := sampleRegistry()
	for _, iid := range reg.IIDs() {
		orig := reg.Lookup(iid)
		parsed, err := ParseInterfaceFormat(orig.FormatString())
		if err != nil {
			t.Fatalf("%s: %v", iid, err)
		}
		if parsed.IID != orig.IID {
			t.Errorf("%s: parsed IID %q", iid, parsed.IID)
		}
		if parsed.Remotable != orig.Remotable {
			t.Errorf("%s: parsed Remotable=%v, want %v", iid, parsed.Remotable, orig.Remotable)
		}
		if got, want := parsed.FormatString(), orig.FormatString(); got != want {
			t.Errorf("%s: round trip diverged\n got %q\nwant %q", iid, got, want)
		}
		if len(parsed.Methods) != len(orig.Methods) {
			t.Fatalf("%s: parsed %d methods, want %d", iid, len(parsed.Methods), len(orig.Methods))
		}
	}
}

func TestParseInterfaceFormatErrors(t *testing.T) {
	t.Parallel()
	cases := []string{
		"",
		"two words\nMix():v",
		"I [weird]\nMix():v",
		"I\nMix",
		"I\nMix(:v",
		"I\nMix():",
		"I\nMix(in q):v",
		"I\nMix(in S{l):v",
		"I\nMix(in a(l):v",
		"I\nMix(in I<):v",
		"I\nMix(in l):v trailing",
	}
	for _, src := range cases {
		if _, err := ParseInterfaceFormat(src); err == nil {
			t.Errorf("ParseInterfaceFormat(%q) = nil error, want failure", src)
		}
	}
}

func TestParseInterfaceFormatDepthLimit(t *testing.T) {
	t.Parallel()
	// A deeply nested array type must be rejected, not overflow the stack.
	src := "I\nMix(in " + strings.Repeat("a(", 200) + "l" + strings.Repeat(")", 200) + "):v"
	if _, err := ParseInterfaceFormat(src); err == nil {
		t.Error("deeply nested format accepted, want depth-limit error")
	}
}
