package jobqueue

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openT(t *testing.T, path string, opts ...Option) *Queue {
	t.Helper()
	q, err := Open(path, opts...)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	t.Cleanup(func() { q.Close() })
	return q
}

func TestEnqueueLeaseFinish(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	q := openT(t, path)
	j, err := q.Enqueue([]byte(`{"n":1}`))
	if err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	if j.State != StatePending {
		t.Fatalf("state = %s, want pending", j.State)
	}
	l, err := q.TryLease()
	if err != nil || l == nil {
		t.Fatalf("TryLease = (%v, %v)", l, err)
	}
	if l.ID != j.ID || l.Attempt != 1 {
		t.Fatalf("lease = %+v", l)
	}
	if err := q.Finish(l.ID, l.Attempt, []byte(`{"ok":true}`)); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	got, ok := q.Get(j.ID)
	if !ok || got.State != StateDone || string(got.Result) != `{"ok":true}` {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if c := q.Stats(); c.Done != 1 || c.Pending != 0 {
		t.Fatalf("Stats = %+v", c)
	}
}

func TestLeaseFIFO(t *testing.T) {
	t.Parallel()
	q := openT(t, filepath.Join(t.TempDir(), "jobs.jsonl"))
	var ids []string
	for i := 0; i < 3; i++ {
		j, err := q.Enqueue([]byte(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	for _, want := range ids {
		l, err := q.TryLease()
		if err != nil || l == nil || l.ID != want {
			t.Fatalf("TryLease = (%v, %v), want id %s", l, err, want)
		}
	}
	if l, _ := q.TryLease(); l != nil {
		t.Fatalf("TryLease on drained queue = %+v", l)
	}
}

// TestEnqueueDurableBeforeAck: by the time Enqueue returns, the record is
// a complete line on disk — the caller's acknowledgment is never ahead of
// the journal.
func TestEnqueueDurableBeforeAck(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	q := openT(t, path)
	j, err := q.Enqueue([]byte(`{"payload":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), j.ID) || !strings.HasSuffix(string(raw), "\n") {
		t.Fatalf("journal after ack does not hold the complete record: %q", raw)
	}
}

// TestRecoveryRequeuesRunning: a job that was running when the process
// died comes back pending with a bumped attempt, and the stale worker's
// Finish is rejected.
func TestRecoveryRequeuesRunning(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	q := openT(t, path)
	j, err := q.Enqueue([]byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	l, err := q.TryLease()
	if err != nil || l == nil {
		t.Fatal(err)
	}
	q.Close() // crash: worker never finished

	q2 := openT(t, path)
	got, ok := q2.Get(j.ID)
	if !ok || got.State != StatePending || got.Attempt != 2 {
		t.Fatalf("after recovery: %+v, %v (want pending, attempt 2)", got, ok)
	}
	l2, err := q2.TryLease()
	if err != nil || l2 == nil || l2.Attempt != 3 {
		t.Fatalf("re-lease = (%+v, %v), want attempt 3", l2, err)
	}
	// The pre-crash worker's lease (attempt 1) must not settle the retry.
	if err := q2.Finish(j.ID, 1, []byte(`stale`)); err == nil {
		t.Fatal("stale Finish accepted")
	}
	if err := q2.Finish(j.ID, l2.Attempt, []byte(`"fresh"`)); err != nil {
		t.Fatalf("fresh Finish: %v", err)
	}
}

// TestRecoveryTornTail: a crash mid-append leaves a partial trailing
// line. Open must drop exactly that record — it was never acknowledged —
// and keep every earlier job.
func TestRecoveryTornTail(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	q := openT(t, path)
	j1, err := q.Enqueue([]byte(`{"n":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue([]byte(`{"n":2}`)); err != nil {
		t.Fatal(err)
	}
	q.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: the second record's append was cut short.
	torn := raw[:len(raw)-7]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	q2 := openT(t, path)
	if _, ok := q2.Get(j1.ID); !ok {
		t.Fatalf("job %s lost to an unrelated torn tail", j1.ID)
	}
	if c := q2.Stats(); c.Pending != 1 {
		t.Fatalf("Stats after torn-tail recovery = %+v, want exactly the 1 acknowledged job", c)
	}
	// New enqueues must not collide with the surviving id space.
	j3, err := q2.Enqueue([]byte(`{"n":3}`))
	if err != nil {
		t.Fatal(err)
	}
	if j3.ID == j1.ID {
		t.Fatalf("id collision after recovery: %s", j3.ID)
	}
}

// TestRecoveryMidJournalCorruption: a malformed line that is NOT the torn
// tail is real corruption and must fail the open loudly.
func TestRecoveryMidJournalCorruption(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	q := openT(t, path)
	if _, err := q.Enqueue([]byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	q.Close()
	raw, _ := os.ReadFile(path)
	bad := append([]byte("garbage not json\n"), raw...)
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("Open accepted a corrupt mid-journal line")
	}
}

// TestRecoveryPreservesResults: done and failed jobs replay with their
// outcome intact.
func TestRecoveryPreservesResults(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	q := openT(t, path)
	a, _ := q.Enqueue([]byte(`{}`))
	b, _ := q.Enqueue([]byte(`{}`))
	la, _ := q.TryLease()
	if err := q.Finish(la.ID, la.Attempt, []byte(`{"v":42}`)); err != nil {
		t.Fatal(err)
	}
	lb, _ := q.TryLease()
	if err := q.Fail(lb.ID, lb.Attempt, "boom"); err != nil {
		t.Fatal(err)
	}
	q.Close()

	q2 := openT(t, path)
	ga, _ := q2.Get(a.ID)
	if ga.State != StateDone || string(ga.Result) != `{"v":42}` {
		t.Fatalf("done job after replay: %+v", ga)
	}
	gb, _ := q2.Get(b.ID)
	if gb.State != StateFailed || gb.Error != "boom" {
		t.Fatalf("failed job after replay: %+v", gb)
	}
}

func TestRequeueGraceful(t *testing.T) {
	t.Parallel()
	q := openT(t, filepath.Join(t.TempDir(), "jobs.jsonl"))
	j, _ := q.Enqueue([]byte(`{}`))
	l, _ := q.TryLease()
	if err := q.Requeue(l.ID, l.Attempt); err != nil {
		t.Fatalf("Requeue: %v", err)
	}
	got, _ := q.Get(j.ID)
	if got.State != StatePending || got.Attempt != 2 {
		t.Fatalf("after requeue: %+v", got)
	}
	select {
	case <-q.Wake():
	default:
		t.Fatal("requeue did not pulse the wake channel")
	}
}

// TestDeadLetterOnRequeue: with a retry budget, the requeue that would
// exceed it dead-letters the job instead — terminal, never leased again,
// counted separately from failures.
func TestDeadLetterOnRequeue(t *testing.T) {
	t.Parallel()
	q := openT(t, filepath.Join(t.TempDir(), "jobs.jsonl"), WithMaxAttempts(2))
	j, _ := q.Enqueue([]byte(`{}`))

	l, _ := q.TryLease() // attempt 1
	if err := q.Requeue(l.ID, l.Attempt); err != nil {
		t.Fatalf("first Requeue: %v", err)
	}
	l, _ = q.TryLease() // attempt 2, the budget
	if err := q.Requeue(l.ID, l.Attempt); err != nil {
		t.Fatalf("budget-exhausting Requeue: %v", err)
	}
	got, _ := q.Get(j.ID)
	if got.State != StateDead || !strings.Contains(got.Error, "dead-lettered after 2 attempt(s)") {
		t.Fatalf("after exhausted requeue: %+v, want dead", got)
	}
	if l, _ := q.TryLease(); l != nil {
		t.Fatalf("dead job leased: %+v", l)
	}
	if c := q.Stats(); c.Dead != 1 || c.Failed != 0 || c.Pending != 0 {
		t.Fatalf("Stats = %+v, want exactly one dead job", c)
	}
}

// TestDeadLetterOnRecovery: crash-loop protection — a job found running at
// Open with its attempts spent goes to dead, not back to pending.
func TestDeadLetterOnRecovery(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	q := openT(t, path, WithMaxAttempts(1))
	j, _ := q.Enqueue([]byte(`{}`))
	if l, _ := q.TryLease(); l == nil {
		t.Fatal("lease failed")
	}
	q.Close() // crash mid-attempt 1: the sole permitted attempt

	q2 := openT(t, path, WithMaxAttempts(1))
	got, ok := q2.Get(j.ID)
	if !ok || got.State != StateDead {
		t.Fatalf("after recovery: %+v, %v (want dead)", got, ok)
	}
	if l, _ := q2.TryLease(); l != nil {
		t.Fatalf("dead job leased after recovery: %+v", l)
	}
}

// TestDeadLetterDurable: the dead verdict is a journal record and replays
// even when the next Open sets no retry budget at all.
func TestDeadLetterDurable(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	q := openT(t, path, WithMaxAttempts(1))
	j, _ := q.Enqueue([]byte(`{}`))
	l, _ := q.TryLease()
	if err := q.Requeue(l.ID, l.Attempt); err != nil {
		t.Fatal(err)
	}
	q.Close()

	q2 := openT(t, path)
	got, _ := q2.Get(j.ID)
	if got.State != StateDead || got.Error == "" {
		t.Fatalf("dead verdict lost on replay: %+v", got)
	}
	if c := q2.Stats(); c.Dead != 1 {
		t.Fatalf("Stats = %+v", c)
	}
}

// TestNoBudgetRetriesForever: the default queue never dead-letters.
func TestNoBudgetRetriesForever(t *testing.T) {
	t.Parallel()
	q := openT(t, filepath.Join(t.TempDir(), "jobs.jsonl"))
	j, _ := q.Enqueue([]byte(`{}`))
	for i := 0; i < 10; i++ {
		l, _ := q.TryLease()
		if l == nil {
			t.Fatalf("lease %d failed", i)
		}
		if err := q.Requeue(l.ID, l.Attempt); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := q.Get(j.ID)
	if got.State != StatePending || got.Attempt != 20 {
		t.Fatalf("after 10 requeues without a budget: %+v", got)
	}
}
