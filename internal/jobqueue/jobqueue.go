// Package jobqueue is a crash-safe on-disk job queue: every state
// transition is one JSON line appended to a journal and fsynced before the
// caller proceeds, so a job the queue has acknowledged survives a kill -9
// at any instant. Opening the journal replays it back into memory,
// repairing a torn trailing line (a record the crash interrupted mid-write
// was never acknowledged, so dropping it loses nothing) and requeuing jobs
// that were running when the process died.
package jobqueue

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// State is a job's lifecycle position.
type State string

const (
	StatePending State = "pending"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
	// StateDead marks a job dead-lettered: requeued so often — crash
	// recovery or drain, a poison payload killing its worker each time —
	// that the queue refuses to lease it again. Terminal like failed, but
	// distinguishable: failed jobs ran to a verdict, dead jobs never did.
	StateDead State = "dead"
)

// Job is one queued unit of work.
type Job struct {
	ID string `json:"id"`
	// Payload is the caller's request, opaque to the queue.
	Payload json.RawMessage `json:"payload"`
	State   State           `json:"state"`
	// Attempt counts leases: 1 on the first lease, bumped by every
	// requeue. Finish and Fail must present the attempt their lease
	// returned; a stale worker whose job was requeued cannot overwrite the
	// retry's outcome.
	Attempt int `json:"attempt"`
	// Result holds the worker's output once done.
	Result json.RawMessage `json:"result,omitempty"`
	// Error holds the failure message once failed.
	Error string `json:"error,omitempty"`
}

// record is one journal line.
type record struct {
	Op      string          `json:"op"` // enqueue | lease | requeue | done | fail | dead
	ID      string          `json:"id"`
	Attempt int             `json:"attempt,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// Counts summarizes the queue's population by state.
type Counts struct {
	Pending int `json:"pending"`
	Running int `json:"running"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
	Dead    int `json:"dead"`
}

// Queue is the journal-backed queue. All methods are safe for concurrent
// use.
type Queue struct {
	mu     sync.Mutex
	f      *os.File
	jobs   map[string]*Job
	order  []string // enqueue order; pending jobs lease FIFO
	seq    int      // highest numeric id issued
	closed bool
	// maxAttempts dead-letters a job instead of requeuing it once the next
	// lease would exceed this count; 0 means retry forever.
	maxAttempts int

	// wake is pulsed whenever a job becomes leasable, so blocked workers
	// re-check without polling.
	wake chan struct{}
}

// Option tweaks a Queue at Open time.
type Option func(*Queue)

// WithMaxAttempts bounds how often one job may be leased. A requeue —
// crash recovery or drain — that would push the job past n attempts
// dead-letters it instead, so a poison payload cannot crash-loop the
// worker pool forever. n <= 0 keeps the default of retrying forever.
func WithMaxAttempts(n int) Option {
	return func(q *Queue) {
		if n > 0 {
			q.maxAttempts = n
		}
	}
}

// Open replays the journal at path (creating it if absent) and returns
// the live queue. Jobs that were running when the journal was last
// written go back to pending — their worker is gone — unless their
// attempts are exhausted, in which case they are dead-lettered.
func Open(path string, opts ...Option) (*Queue, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("jobqueue: %w", err)
		}
	}
	q := &Queue{jobs: make(map[string]*Job), wake: make(chan struct{}, 1)}
	for _, o := range opts {
		o(q)
	}
	raw, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("jobqueue: reading journal: %w", err)
	}
	if err := q.replay(raw); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobqueue: opening journal: %w", err)
	}
	q.f = f
	// Crash recovery: a job leased but never finished was running when the
	// process died. Requeue it durably so the journal states the truth.
	for _, id := range q.order {
		j := q.jobs[id]
		if j.State != StateRunning {
			continue
		}
		if err := q.requeueOrDeadLetter(j); err != nil {
			f.Close()
			return nil, err
		}
	}
	return q, nil
}

// requeueOrDeadLetter durably moves a running job back to pending, or to
// dead once another lease would exceed maxAttempts. Callers hold q.mu (or
// own the queue exclusively, as Open does). The attempt token advances on
// both lease and requeue, so a running job's lease count — the number the
// budget is spent in — is (Attempt+1)/2.
func (q *Queue) requeueOrDeadLetter(j *Job) error {
	if leases := (j.Attempt + 1) / 2; q.maxAttempts > 0 && leases >= q.maxAttempts {
		msg := fmt.Sprintf("dead-lettered after %d attempt(s): retry budget %d exhausted", leases, q.maxAttempts)
		if err := q.append(record{Op: "dead", ID: j.ID, Attempt: j.Attempt, Error: msg}); err != nil {
			return err
		}
		j.State = StateDead
		j.Error = msg
		return nil
	}
	if err := q.append(record{Op: "requeue", ID: j.ID, Attempt: j.Attempt + 1}); err != nil {
		return err
	}
	j.State = StatePending
	j.Attempt++
	q.notify()
	return nil
}

// replay folds journal lines into memory. A torn trailing line — no final
// newline, or malformed JSON on the last line — is discarded: its append
// never completed, so its caller never got an acknowledgment. A malformed
// line in the middle of the journal is corruption and fails the open.
func (q *Queue) replay(raw []byte) error {
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	var lines [][]byte
	for sc.Scan() {
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("jobqueue: scanning journal: %w", err)
	}
	tornTail := len(raw) > 0 && raw[len(raw)-1] != '\n'
	for i, line := range lines {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil {
			if i == len(lines)-1 && tornTail {
				break // interrupted final append; never acknowledged
			}
			return fmt.Errorf("jobqueue: corrupt journal line %d: %w", i+1, err)
		}
		if err := q.apply(rec); err != nil {
			return fmt.Errorf("jobqueue: journal line %d: %w", i+1, err)
		}
	}
	return nil
}

// apply folds one record into the in-memory state.
func (q *Queue) apply(rec record) error {
	switch rec.Op {
	case "enqueue":
		if _, dup := q.jobs[rec.ID]; dup {
			return fmt.Errorf("duplicate enqueue of %s", rec.ID)
		}
		q.jobs[rec.ID] = &Job{ID: rec.ID, Payload: rec.Payload, State: StatePending}
		q.order = append(q.order, rec.ID)
		var n int
		if _, err := fmt.Sscanf(rec.ID, "j%d", &n); err == nil && n > q.seq {
			q.seq = n
		}
	case "lease":
		j := q.jobs[rec.ID]
		if j == nil {
			return fmt.Errorf("lease of unknown job %s", rec.ID)
		}
		j.State = StateRunning
		j.Attempt = rec.Attempt
	case "requeue":
		j := q.jobs[rec.ID]
		if j == nil {
			return fmt.Errorf("requeue of unknown job %s", rec.ID)
		}
		j.State = StatePending
		j.Attempt = rec.Attempt
	case "done":
		j := q.jobs[rec.ID]
		if j == nil {
			return fmt.Errorf("done for unknown job %s", rec.ID)
		}
		j.State = StateDone
		j.Result = rec.Result
	case "fail":
		j := q.jobs[rec.ID]
		if j == nil {
			return fmt.Errorf("fail for unknown job %s", rec.ID)
		}
		j.State = StateFailed
		j.Error = rec.Error
	case "dead":
		j := q.jobs[rec.ID]
		if j == nil {
			return fmt.Errorf("dead-letter for unknown job %s", rec.ID)
		}
		j.State = StateDead
		j.Error = rec.Error
	default:
		return fmt.Errorf("unknown op %q", rec.Op)
	}
	return nil
}

// append writes one record and fsyncs before returning. Acknowledgment
// strictly follows durability: if this returns nil, the record survives
// any crash.
func (q *Queue) append(rec record) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobqueue: encoding record: %w", err)
	}
	b = append(b, '\n')
	if _, err := q.f.Write(b); err != nil {
		return fmt.Errorf("jobqueue: appending journal: %w", err)
	}
	if err := q.f.Sync(); err != nil {
		return fmt.Errorf("jobqueue: syncing journal: %w", err)
	}
	return nil
}

// notify pulses the wake channel without blocking.
func (q *Queue) notify() {
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// Enqueue adds a job and returns it once — and only once — the journal
// record is on disk.
func (q *Queue) Enqueue(payload []byte) (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, fmt.Errorf("jobqueue: queue is closed")
	}
	q.seq++
	j := &Job{ID: fmt.Sprintf("j%08d", q.seq), Payload: append([]byte(nil), payload...), State: StatePending}
	if err := q.append(record{Op: "enqueue", ID: j.ID, Payload: j.Payload}); err != nil {
		q.seq--
		return nil, err
	}
	q.jobs[j.ID] = j
	q.order = append(q.order, j.ID)
	q.notify()
	return j.snapshot(), nil
}

// TryLease claims the oldest pending job, durably marking it running.
// Returns nil when nothing is pending.
func (q *Queue) TryLease() (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, fmt.Errorf("jobqueue: queue is closed")
	}
	for _, id := range q.order {
		j := q.jobs[id]
		if j.State != StatePending {
			continue
		}
		if err := q.append(record{Op: "lease", ID: j.ID, Attempt: j.Attempt + 1}); err != nil {
			return nil, err
		}
		j.State = StateRunning
		j.Attempt++
		return j.snapshot(), nil
	}
	return nil, nil
}

// Wake returns the channel pulsed when a job becomes leasable. Workers
// select on it alongside their context instead of polling.
func (q *Queue) Wake() <-chan struct{} { return q.wake }

// Finish durably records a successful result. The attempt token must
// match the lease: a worker whose job was requeued out from under it (its
// process was presumed dead) gets an error instead of clobbering the
// retry.
func (q *Queue) Finish(id string, attempt int, result []byte) error {
	return q.settle(id, attempt, record{Op: "done", ID: id, Result: result}, StateDone, func(j *Job) {
		j.Result = append([]byte(nil), result...)
	})
}

// Fail durably records a failure. Same attempt-token rule as Finish.
func (q *Queue) Fail(id string, attempt int, msg string) error {
	return q.settle(id, attempt, record{Op: "fail", ID: id, Error: msg}, StateFailed, func(j *Job) {
		j.Error = msg
	})
}

func (q *Queue) settle(id string, attempt int, rec record, to State, fill func(*Job)) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	j := q.jobs[id]
	if j == nil {
		return fmt.Errorf("jobqueue: unknown job %s", id)
	}
	if j.State != StateRunning {
		return fmt.Errorf("jobqueue: job %s is %s, not running", id, j.State)
	}
	if j.Attempt != attempt {
		return fmt.Errorf("jobqueue: job %s lease is stale (attempt %d, current %d)", id, attempt, j.Attempt)
	}
	rec.Attempt = attempt
	if err := q.append(rec); err != nil {
		return err
	}
	j.State = to
	fill(j)
	return nil
}

// Requeue durably returns a running job to pending (graceful shutdown:
// the worker is draining, not dead). The attempt token must match. A job
// whose retry budget is exhausted is dead-lettered instead of requeued;
// Get tells the two outcomes apart.
func (q *Queue) Requeue(id string, attempt int) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	j := q.jobs[id]
	if j == nil {
		return fmt.Errorf("jobqueue: unknown job %s", id)
	}
	if j.State != StateRunning || j.Attempt != attempt {
		return fmt.Errorf("jobqueue: job %s not running at attempt %d", id, attempt)
	}
	return q.requeueOrDeadLetter(j)
}

// Get returns a snapshot of one job.
func (q *Queue) Get(id string) (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return nil, false
	}
	return j.snapshot(), true
}

// Jobs returns snapshots of every job in enqueue order.
func (q *Queue) Jobs() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]*Job, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, q.jobs[id].snapshot())
	}
	return out
}

// Stats counts jobs by state.
func (q *Queue) Stats() Counts {
	q.mu.Lock()
	defer q.mu.Unlock()
	var c Counts
	for _, j := range q.jobs {
		switch j.State {
		case StatePending:
			c.Pending++
		case StateRunning:
			c.Running++
		case StateDone:
			c.Done++
		case StateFailed:
			c.Failed++
		case StateDead:
			c.Dead++
		}
	}
	return c
}

// Close flushes and closes the journal. Further mutations fail.
func (q *Queue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	q.closed = true
	return q.f.Close()
}

func (j *Job) snapshot() *Job {
	c := *j
	c.Payload = append(json.RawMessage(nil), j.Payload...)
	c.Result = append(json.RawMessage(nil), j.Result...)
	return &c
}
