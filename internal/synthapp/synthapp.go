// Package synthapp generates complete synthetic component applications —
// not just raw ICC graphs (see internal/graph/synth.go) but real com.App
// values with classes, typed interfaces, activation metadata, location
// pins, non-remotable interfaces, and scenario scripts — so every stage
// of the Coign pipeline (reach, staticanal, coverage, profile, cut, dist)
// can be exercised against hundreds of distinct topologies instead of the
// four hand-written suite applications.
//
// Generation is fully seeded and parameterized: the same Config always
// yields the identical application, down to byte-identical binary images,
// so property-suite failures reproduce exactly from a (family, seed)
// pair. Seven families cover the workload shapes named in the roadmap:
//
//	three-tier     GUI tier over business logic over storage; plants an
//	               infeasible default distribution (a server-homed spooler
//	               behind a non-remotable interface called from the GUI)
//	scatter-gather a coordinator scattering work through a dynamic factory
//	               that returns worker interfaces (return-flow propagation)
//	pipeline       a linear stage chain from display to storage with
//	               varying inter-stage payloads (the cut lands at the
//	               narrowest point)
//	gui-swarm      many widget instances passing opaque device contexts
//	               through a shared non-remotable surface interface
//	cache-heavy    a front end behind a cacheable mid-tier cache over a
//	               bulk backing store
//	skewed         the "celebrity" hot-spot: peers hammering one hub with
//	               a heavy-tailed call distribution
//	read-replica   a hot read-mostly catalog with declared state, fanned
//	               into from both machines and rarely written — the
//	               ground-truth plant for the purity analysis, paired
//	               with a write-heavy stateful decoy
//	shared-state   the ground-truth plant for the alias analysis: two
//	               writers obtain opaque handles into one stateful blob
//	               (true aliasing — must stay welded) while readers
//	               exchange immutable payloads minted by a stateless
//	               decoy that must NOT be pinned once the points-to
//	               refinement runs
//
// Every family additionally plants one latent activation edge — a
// statically declared activation site no scenario drives — so the
// scenario-coverage stage always has an uncovered edge to convert into a
// conservative co-location constraint.
package synthapp

import (
	"encoding/binary"
	"fmt"
)

// Family names one generator family.
type Family string

// Generator families.
const (
	ThreeTier     Family = "three-tier"
	ScatterGather Family = "scatter-gather"
	Pipeline      Family = "pipeline"
	GUISwarm      Family = "gui-swarm"
	CacheHeavy    Family = "cache-heavy"
	Skewed        Family = "skewed"
	ReadReplica   Family = "read-replica"
	SharedState   Family = "shared-state"
)

// Families returns all generator families in canonical order.
func Families() []Family {
	return []Family{ThreeTier, ScatterGather, Pipeline, GUISwarm, CacheHeavy, Skewed, ReadReplica, SharedState}
}

// Scenario names common to every generated application: three training
// scenarios plus the bigone synthesis of all of them (mirroring the
// paper's Table 1 structure).
const (
	ScenBase   = "y_base"
	ScenHeavy  = "y_heavy"
	ScenAlt    = "y_alt"
	ScenBigone = "y_bigone"
)

// MaxScale bounds the size multiplier; beyond it generated applications
// stop resembling the paper's (thousands of instances, not millions).
const MaxScale = 4

// Config parameterizes one generated application. The zero Scale means 1.
type Config struct {
	Family Family `json:"family"`
	Seed   int64  `json:"seed"`
	// Scale multiplies component and instance counts (1..MaxScale).
	Scale int `json:"scale,omitempty"`
}

// ConfigError is the typed error for invalid generator configurations —
// the only error class Generate returns for bad inputs, so fuzzing can
// distinguish rejected configs from generator defects.
type ConfigError struct {
	Field  string
	Reason string
}

// Error implements the error interface.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("synthapp: bad config %s: %s", e.Field, e.Reason)
}

// normalize validates the config and fills defaults.
func (c Config) normalize() (Config, error) {
	known := false
	for _, f := range Families() {
		if c.Family == f {
			known = true
			break
		}
	}
	if !known {
		return c, &ConfigError{Field: "family", Reason: fmt.Sprintf("unknown family %q", c.Family)}
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Scale < 1 || c.Scale > MaxScale {
		return c, &ConfigError{Field: "scale", Reason: fmt.Sprintf("scale %d outside 1..%d", c.Scale, MaxScale)}
	}
	return c, nil
}

// Name returns the application name a config generates, unique per
// (family, seed, scale).
func (c Config) Name() string {
	name := fmt.Sprintf("synth-%s-s%d", c.Family, c.Seed)
	if c.Scale > 1 {
		name += fmt.Sprintf("-x%d", c.Scale)
	}
	return name
}

// FromBytes derives a Config from raw bytes — the fuzzing entry point: a
// family selector byte, a little-endian seed, and a scale byte. Inputs
// shorter than the 10-byte header are rejected with a ConfigError.
func FromBytes(data []byte) (Config, error) {
	if len(data) < 10 {
		return Config{}, &ConfigError{Field: "bytes", Reason: fmt.Sprintf("need 10 bytes, got %d", len(data))}
	}
	fams := Families()
	seed := int64(binary.LittleEndian.Uint64(data[1:9]))
	if seed < 0 {
		seed = -(seed + 1) // keep the full bit pattern reachable, positively
	}
	return Config{
		Family: fams[int(data[0])%len(fams)],
		Seed:   seed,
		Scale:  1 + int(data[9])%MaxScale,
	}, nil
}
