package synthapp

import (
	"bytes"
	"fmt"

	"repro/internal/binimg"
	"repro/internal/com"
	"repro/internal/profile"
	"repro/internal/reach"
	"repro/internal/staticanal"
)

// Validate checks that a generated application is well-formed end to end:
// registry integrity, image encode/decode fidelity, a clean reachability
// scan, and — crucially for the property harness — static feasibility of
// the constraint set (no must-co-locate pair pinned to two different
// machines, which would make every cut infeasible). The generator must
// never emit an app that fails Validate; the fuzz target enforces this
// for arbitrary configs.
func Validate(app *com.App) error {
	if app == nil {
		return fmt.Errorf("synthapp: nil application")
	}
	if app.Name == "" {
		return fmt.Errorf("synthapp: application has no name")
	}
	if app.Classes == nil || app.Interfaces == nil {
		return fmt.Errorf("synthapp: %s has nil registries", app.Name)
	}
	if app.Main == nil {
		return fmt.Errorf("synthapp: %s has no entry point", app.Name)
	}
	if app.Classes.Len() < 2 {
		return fmt.Errorf("synthapp: %s has %d classes, need at least 2", app.Name, app.Classes.Len())
	}
	for _, c := range app.Classes.Classes() {
		if len(c.Interfaces) == 0 {
			return fmt.Errorf("synthapp: class %s implements no interfaces", c.Name)
		}
		for _, iid := range c.Interfaces {
			if app.Interfaces.Lookup(iid) == nil {
				return fmt.Errorf("synthapp: class %s implements unregistered interface %s", c.Name, iid)
			}
		}
		for _, a := range c.Activations {
			if app.Classes.Lookup(a) == nil {
				return fmt.Errorf("synthapp: class %s activates unregistered class %s", c.Name, a)
			}
		}
	}
	if len(app.MainActivations) == 0 {
		return fmt.Errorf("synthapp: %s main activates nothing", app.Name)
	}
	for _, a := range app.MainActivations {
		if app.Classes.Lookup(a) == nil {
			return fmt.Errorf("synthapp: main activates unregistered class %s", a)
		}
	}

	// The binary image must survive an encode/decode round trip and
	// re-encode to identical bytes (the property `coign synth -o` rests
	// on).
	img := binimg.BuildImage(app)
	var buf bytes.Buffer
	if err := img.Encode(&buf); err != nil {
		return fmt.Errorf("synthapp: encoding %s image: %w", app.Name, err)
	}
	decoded, err := binimg.Decode(buf.Bytes())
	if err != nil {
		return fmt.Errorf("synthapp: decoding %s image: %w", app.Name, err)
	}
	var buf2 bytes.Buffer
	if err := decoded.Encode(&buf2); err != nil {
		return fmt.Errorf("synthapp: re-encoding %s image: %w", app.Name, err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		return fmt.Errorf("synthapp: %s image round trip is not byte-identical", app.Name)
	}

	// The reachability scan must be clean: no stale activation metadata
	// and no dead classes (every generated class must be profilable).
	rg, err := reach.Scan(img, app)
	if err != nil {
		return fmt.Errorf("synthapp: reach scan of %s: %w", app.Name, err)
	}
	if len(rg.UnknownTargets) > 0 {
		return fmt.Errorf("synthapp: %s relocations target unknown classes %v", app.Name, rg.UnknownTargets)
	}
	if len(rg.Unreachable) > 0 {
		return fmt.Errorf("synthapp: %s has unreachable classes %v", app.Name, rg.Unreachable)
	}

	// Static feasibility: no potential ICC edge may connect a
	// must-co-locate pair whose endpoints are pinned to different
	// machines — such an app could never be cut.
	rep, err := staticanal.Analyze(app, img)
	if err != nil {
		return fmt.Errorf("synthapp: static analysis of %s: %w", app.Name, err)
	}
	cs := rep.Constraints
	machineOf := func(class string) (com.Machine, bool) {
		if class == profile.MainProgram {
			return com.Client, true
		}
		if pin, ok := cs.PinFor(class); ok {
			return pin.Machine, true
		}
		return 0, false
	}
	for _, e := range rg.Edges {
		reason, weld := cs.MustCoLocate(e.Src, e.Dst)
		if !weld {
			continue
		}
		sm, sok := machineOf(e.Src)
		dm, dok := machineOf(e.Dst)
		if sok && dok && sm != dm {
			return fmt.Errorf("synthapp: %s edge %s -> %s must co-locate (%s) but endpoints are pinned to %s and %s",
				app.Name, e.Src, e.Dst, reason, sm, dm)
		}
	}
	return nil
}
