package synthapp_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/binimg"
	"repro/internal/com"
	"repro/internal/synthapp"
)

// imageBytes encodes the app's binary image, the canonical fingerprint
// for determinism checks.
func imageBytes(t *testing.T, app *com.App) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := binimg.BuildImage(app).Encode(&buf); err != nil {
		t.Fatalf("encoding image: %v", err)
	}
	return buf.Bytes()
}

func TestGenerateDeterministic(t *testing.T) {
	t.Parallel()
	for _, fam := range synthapp.Families() {
		fam := fam
		t.Run(string(fam), func(t *testing.T) {
			t.Parallel()
			cfg := synthapp.Config{Family: fam, Seed: 42}
			a, err := synthapp.Generate(cfg)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			b, err := synthapp.Generate(cfg)
			if err != nil {
				t.Fatalf("Generate (second): %v", err)
			}
			if !bytes.Equal(imageBytes(t, a.App), imageBytes(t, b.App)) {
				t.Fatal("same config produced different binary images")
			}
			other, err := synthapp.Generate(synthapp.Config{Family: fam, Seed: 43})
			if err != nil {
				t.Fatalf("Generate (seed 43): %v", err)
			}
			if bytes.Equal(imageBytes(t, a.App), imageBytes(t, other.App)) {
				t.Fatal("different seeds produced identical binary images")
			}
		})
	}
}

func TestGeneratedAppsValidateAndRun(t *testing.T) {
	t.Parallel()
	for _, fam := range synthapp.Families() {
		for seed := int64(0); seed < 3; seed++ {
			fam, seed := fam, seed
			t.Run(fmt.Sprintf("%s/seed%d", fam, seed), func(t *testing.T) {
				t.Parallel()
				a, err := synthapp.Generate(synthapp.Config{Family: fam, Seed: seed})
				if err != nil {
					t.Fatalf("Generate: %v", err)
				}
				if err := synthapp.Validate(a.App); err != nil {
					t.Fatalf("Validate: %v", err)
				}
				// Every scenario must run to completion under strict IDL
				// checking.
				for _, scen := range append(append([]string{}, a.Training...), a.Bigone) {
					env := com.NewEnv(a.App)
					env.SetStrict(true)
					if err := a.App.Main(env, scen, seed); err != nil {
						t.Fatalf("scenario %s: %v", scen, err)
					}
				}
				env := com.NewEnv(a.App)
				if err := a.App.Main(env, "no-such-scenario", seed); err == nil {
					t.Fatal("unknown scenario did not error")
				}
			})
		}
	}
}

func TestFamilyMetadata(t *testing.T) {
	t.Parallel()
	for _, fam := range synthapp.Families() {
		fam := fam
		t.Run(string(fam), func(t *testing.T) {
			t.Parallel()
			a, err := synthapp.Generate(synthapp.Config{Family: fam, Seed: 7})
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			if len(a.Training) < 3 {
				t.Fatalf("only %d training scenarios", len(a.Training))
			}
			if a.Bigone != synthapp.ScenBigone {
				t.Fatalf("bigone = %q", a.Bigone)
			}
			// Exactly the three-tier family plants an infeasible default.
			if got, want := a.PlantsInfeasibleDefault, fam == synthapp.ThreeTier; got != want {
				t.Fatalf("PlantsInfeasibleDefault = %v, want %v", got, want)
			}
			if len(a.LatentPairs) == 0 {
				t.Fatal("family plants no latent activation pair")
			}
			for _, pair := range a.LatentPairs {
				creator := a.App.Classes.LookupName(pair[0])
				target := a.App.Classes.LookupName(pair[1])
				if creator == nil || target == nil {
					t.Fatalf("latent pair %v references unknown classes", pair)
				}
				declared := false
				for _, act := range creator.Activations {
					if act == target.ID {
						declared = true
					}
				}
				if !declared {
					t.Fatalf("latent target %s not in %s activations", pair[1], pair[0])
				}
				// The planted weld must never split the default
				// distribution: latent endpoints always share a Home.
				if creator.Home != target.Home {
					t.Fatalf("latent pair %v homed on %s and %s", pair, creator.Home, target.Home)
				}
			}
		})
	}
}

func TestConfigValidation(t *testing.T) {
	t.Parallel()
	var ce *synthapp.ConfigError
	if _, err := synthapp.Generate(synthapp.Config{Family: "no-such-family", Seed: 1}); !errors.As(err, &ce) {
		t.Fatalf("unknown family: got %v, want ConfigError", err)
	}
	if _, err := synthapp.Generate(synthapp.Config{Family: synthapp.Skewed, Seed: 1, Scale: synthapp.MaxScale + 1}); !errors.As(err, &ce) {
		t.Fatalf("oversized scale: got %v, want ConfigError", err)
	}
	if _, err := synthapp.FromBytes([]byte{1, 2, 3}); !errors.As(err, &ce) {
		t.Fatalf("short bytes: got %v, want ConfigError", err)
	}
	cfg, err := synthapp.FromBytes([]byte{3, 0xaa, 0xbb, 0xcc, 0, 0, 0, 0, 0x80, 9})
	if err != nil {
		t.Fatalf("FromBytes: %v", err)
	}
	if cfg.Seed < 0 {
		t.Fatalf("FromBytes produced negative seed %d", cfg.Seed)
	}
	if cfg.Scale < 1 || cfg.Scale > synthapp.MaxScale {
		t.Fatalf("FromBytes produced scale %d", cfg.Scale)
	}
	if _, err := synthapp.Generate(cfg); err != nil {
		t.Fatalf("Generate(FromBytes config): %v", err)
	}
}

func TestConfigName(t *testing.T) {
	t.Parallel()
	if got := (synthapp.Config{Family: synthapp.Skewed, Seed: 9}).Name(); got != "synth-skewed-s9" {
		t.Fatalf("Name = %q", got)
	}
	if got := (synthapp.Config{Family: synthapp.Pipeline, Seed: 3, Scale: 2}).Name(); got != "synth-pipeline-s3-x2" {
		t.Fatalf("Name = %q", got)
	}
}
