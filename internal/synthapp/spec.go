package synthapp

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/com"
	"repro/internal/idl"
)

// The generator works in two phases: a family builder produces an
// appSpec — a compact intermediate description of classes, call edges,
// and scenario scripts — and materialize turns the spec into a live
// com.App with typed interfaces and behaviour closures. Keeping the IR
// separate lets family builders stay declarative (they only decide
// topology, homes, pins, and intensities) while all com/idl plumbing
// lives in one place.

// edgeSpec is one caller→callee call pattern: every invocation of the
// caller's Work method invokes the target's Work `calls` times with an
// `argBytes` payload. When fanCalls > 0 the target is a factory: each
// call yields a fresh product interface which the caller then invokes
// fanCalls times with fanBytes payloads.
type edgeSpec struct {
	target   string
	calls    int
	argBytes int
	fanCalls int
	fanBytes int
}

// classSpec describes one component class.
type classSpec struct {
	name      string
	home      com.Machine
	infra     bool
	apis      []string
	shared    []string // additional (registry-level shared) IIDs implemented
	codeBytes int
	compute   time.Duration
	resBytes  int  // size of the byte payload Work returns
	opaque    bool // Work takes an opaque handle → interface non-remotable
	// opaqueResult makes Work return an opaque handle instead of bytes.
	// Unlike opaque, the interface stays declared remotable — the clean
	// methods still marshal — so it classifies conditionally remotable
	// with the Opaque flag (unless Work is its only method).
	opaqueResult bool
	cacheable    bool // Work is marked cacheable in the IDL
	// factoryFor names the product class of a dynamic factory: Work
	// creates a fresh product and returns its interface. Implies
	// DynamicActivation; the product is deliberately NOT listed in the
	// factory's static activations.
	factoryFor string
	edges      []edgeSpec
	// latent lists statically declared activation targets this class
	// never creates at run time (the planted uncovered edges).
	latent []string
	// alsoActivates lists statically declared activation targets that are
	// created on this class's behalf by a dynamic factory downstream (the
	// reachability analysis attributes such activations to the innermost
	// non-factory frame, i.e. to this class).
	alsoActivates []string
	// stateBytes > 0 ships a state descriptor: Work declared a reader, plus
	// a mutating Update method the scenarios may drive (see step.updates).
	stateBytes int
	// stateless ships a zero-byte state descriptor, declaring every method
	// read-only.
	stateless bool
}

// step is one scenario action: create `instances` instances of a class
// and call Work `calls` times on each with a `payload`-byte buffer, then
// Update `updates` times (only meaningful for classes with stateBytes).
type step struct {
	class     string
	instances int
	calls     int
	payload   int
	updates   int
}

type scenarioSpec struct {
	name  string
	steps []step
}

// sharedIfaceSpec is an interface implemented by several classes (beyond
// each class's own primary interface).
type sharedIfaceSpec struct {
	iid       string
	remotable bool
}

// appSpec is the full intermediate description a family builder emits.
type appSpec struct {
	shared           []sharedIfaceSpec
	classes          []classSpec
	scenarios        []scenarioSpec // training scenarios in order; bigone is derived
	plantsInfeasible bool
	latentPairs      [][2]string
	// readMostlyPlant / statefulDecoy name the classes the purity analysis
	// must grade read-mostly and stateful respectively (read-replica only).
	readMostlyPlant string
	statefulDecoy   string
	// aliasPlantPairs / aliasDecoyPairs are the alias-analysis ground
	// truth (shared-state only): pairs that truly share mutable state and
	// must stay welded under the points-to refinement, and pairs that only
	// exchange immutable payloads and must not.
	aliasPlantPairs [][2]string
	aliasDecoyPairs [][2]string
}

// App is a generated application plus the metadata the property harness
// needs: which scenarios train the classifier, whether the family plants
// a default distribution that violates constraints, and which activation
// edges are statically declared but never driven.
type App struct {
	Config Config
	App    *com.App
	// Training lists the classifier-training scenarios; Bigone is the
	// synthesis of all of them.
	Training []string
	Bigone   string
	// PlantsInfeasibleDefault reports that the family deliberately homes
	// two must-co-locate classes on different machines, so analysis must
	// report DefaultViolations > 0. Families without the plant must
	// report exactly zero.
	PlantsInfeasibleDefault bool
	// LatentPairs lists (creator, target) class pairs whose activation
	// site is statically declared but never exercised by any scenario —
	// the coverage stage must surface each as an uncovered edge.
	LatentPairs [][2]string
	// ReadMostlyPlant names the class the purity analysis must grade
	// read-mostly; StatefulDecoy the write-heavy class it must grade
	// stateful. Both empty for families without purity plants.
	ReadMostlyPlant string
	StatefulDecoy   string
	// AliasPlantPairs lists class pairs that truly share mutable state
	// (the alias refinement must keep them welded); AliasDecoyPairs lists
	// pairs that exchange only immutable opaque payloads (the refinement
	// must clear their welds). Both empty for families without alias
	// plants.
	AliasPlantPairs [][2]string
	AliasDecoyPairs [][2]string
}

// Generate builds the application for a config. Identical configs yield
// identical applications, down to byte-identical binary images. Invalid
// configs are rejected with a *ConfigError.
func Generate(cfg Config) (*App, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var spec appSpec
	switch cfg.Family {
	case ThreeTier:
		spec = threeTierSpec(rng, cfg.Scale)
	case ScatterGather:
		spec = scatterGatherSpec(rng, cfg.Scale)
	case Pipeline:
		spec = pipelineSpec(rng, cfg.Scale)
	case GUISwarm:
		spec = guiSwarmSpec(rng, cfg.Scale)
	case CacheHeavy:
		spec = cacheHeavySpec(rng, cfg.Scale)
	case Skewed:
		spec = skewedSpec(rng, cfg.Scale)
	case ReadReplica:
		spec = readReplicaSpec(rng, cfg.Scale)
	case SharedState:
		spec = sharedStateSpec(rng, cfg.Scale)
	default:
		return nil, &ConfigError{Field: "family", Reason: fmt.Sprintf("unknown family %q", cfg.Family)}
	}
	return materialize(cfg, spec)
}

func clsidOf(name string) com.CLSID { return com.CLSID("CLSID_" + name) }
func iidOf(name string) string      { return "I" + name }

// materialize turns an appSpec into a live application. Errors indicate
// family-builder defects (dangling references, cycles), not bad configs.
func materialize(cfg Config, spec appSpec) (*App, error) {
	byName := make(map[string]*classSpec, len(spec.classes))
	for i := range spec.classes {
		cs := &spec.classes[i]
		if _, dup := byName[cs.name]; dup {
			return nil, fmt.Errorf("synthapp: duplicate class %q in %s spec", cs.name, cfg.Family)
		}
		byName[cs.name] = cs
	}
	if err := checkSpec(spec, byName); err != nil {
		return nil, err
	}

	ifaces := idl.NewRegistry()
	for _, sh := range spec.shared {
		ifaces.Register(&idl.InterfaceDesc{
			IID: sh.iid, Remotable: sh.remotable,
			Methods: []idl.MethodDesc{
				{Name: "Blit", Params: []idl.ParamDesc{
					{Name: "dc", Dir: idl.In, Type: idl.TOpaque},
				}, Result: idl.TVoid},
			},
		})
	}
	for i := range spec.classes {
		cs := &spec.classes[i]
		params := []idl.ParamDesc{
			{Name: "level", Dir: idl.In, Type: idl.TInt32},
			{Name: "data", Dir: idl.In, Type: idl.TBytes},
		}
		if cs.opaque {
			params = append(params, idl.ParamDesc{Name: "handle", Dir: idl.In, Type: idl.TOpaque})
		}
		result := idl.TBytes
		if cs.factoryFor != "" {
			result = idl.InterfaceType(iidOf(cs.factoryFor))
		} else if cs.opaqueResult {
			result = idl.TOpaque
		}
		methods := []idl.MethodDesc{
			{Name: "Work", Params: params, Result: result, Cacheable: cs.cacheable},
		}
		if cs.stateBytes > 0 {
			methods = append(methods, idl.MethodDesc{
				Name: "Update",
				Params: []idl.ParamDesc{
					{Name: "level", Dir: idl.In, Type: idl.TInt32},
					{Name: "data", Dir: idl.In, Type: idl.TBytes},
				},
				Result: idl.TBytes,
			})
		}
		ifaces.Register(&idl.InterfaceDesc{
			IID:       iidOf(cs.name),
			Remotable: !cs.opaque,
			Methods:   methods,
		})
	}

	classes := com.NewClassRegistry()
	for i := range spec.classes {
		cs := &spec.classes[i]
		classes.Register(&com.Class{
			ID:                clsidOf(cs.name),
			Name:              cs.name,
			Interfaces:        append([]string{iidOf(cs.name)}, cs.shared...),
			APIs:              cs.apis,
			CodeBytes:         cs.codeBytes,
			Home:              cs.home,
			Infrastructure:    cs.infra,
			Activations:       activationsOf(cs),
			DynamicActivation: cs.factoryFor != "",
			State:             stateOf(cs),
			New:               behaviorFor(cs, byName),
		})
	}

	app := &com.App{
		Name:            cfg.Name(),
		Classes:         classes,
		Interfaces:      ifaces,
		Imports:         []string{"kernel32.dll", "ole32.dll"},
		MainActivations: mainActivations(spec),
	}
	scenarios := make(map[string][]step, len(spec.scenarios)+1)
	var training []string
	var bigone []step
	for _, sc := range spec.scenarios {
		scenarios[sc.name] = sc.steps
		training = append(training, sc.name)
		bigone = append(bigone, sc.steps...)
	}
	scenarios[ScenBigone] = bigone
	app.Main = func(env *com.Env, scenario string, seed int64) error {
		steps, ok := scenarios[scenario]
		if !ok {
			return fmt.Errorf("synthapp: app %s has no scenario %q", app.Name, scenario)
		}
		return runSteps(env, steps, byName, seed)
	}

	return &App{
		Config:                  cfg,
		App:                     app,
		Training:                training,
		Bigone:                  ScenBigone,
		PlantsInfeasibleDefault: spec.plantsInfeasible,
		LatentPairs:             spec.latentPairs,
		ReadMostlyPlant:         spec.readMostlyPlant,
		StatefulDecoy:           spec.statefulDecoy,
		AliasPlantPairs:         spec.aliasPlantPairs,
		AliasDecoyPairs:         spec.aliasDecoyPairs,
	}, nil
}

// stateOf derives a class's state declaration: stateful classes declare
// Work a reader and Update the sole writer, stateless classes declare
// zero state bytes, and everything else ships no descriptor (leaving the
// purity analysis to its conservative unknown).
func stateOf(cs *classSpec) *com.StateDesc {
	switch {
	case cs.stateBytes > 0:
		return &com.StateDesc{Bytes: cs.stateBytes, Reads: []string{"Work"}, Writes: []string{"Update"}}
	case cs.stateless:
		return &com.StateDesc{Bytes: 0}
	default:
		return nil
	}
}

// checkSpec validates referential integrity and acyclicity of the call
// topology (a cycle would recurse without bound during profiling).
func checkSpec(spec appSpec, byName map[string]*classSpec) error {
	sharedKnown := make(map[string]bool, len(spec.shared))
	for _, sh := range spec.shared {
		sharedKnown[sh.iid] = true
	}
	for i := range spec.classes {
		cs := &spec.classes[i]
		for _, e := range cs.edges {
			t, ok := byName[e.target]
			if !ok {
				return fmt.Errorf("synthapp: class %q calls unknown class %q", cs.name, e.target)
			}
			if e.target == cs.name {
				return fmt.Errorf("synthapp: class %q calls itself", cs.name)
			}
			if e.fanCalls > 0 && t.factoryFor == "" {
				return fmt.Errorf("synthapp: class %q fans out through non-factory %q", cs.name, e.target)
			}
		}
		for _, l := range append(append([]string{}, cs.latent...), cs.alsoActivates...) {
			if _, ok := byName[l]; !ok {
				return fmt.Errorf("synthapp: class %q activates unknown class %q", cs.name, l)
			}
		}
		if cs.factoryFor != "" {
			if _, ok := byName[cs.factoryFor]; !ok {
				return fmt.Errorf("synthapp: factory %q produces unknown class %q", cs.name, cs.factoryFor)
			}
		}
		for _, iid := range cs.shared {
			if !sharedKnown[iid] {
				return fmt.Errorf("synthapp: class %q implements unknown shared interface %q", cs.name, iid)
			}
		}
	}
	for _, sc := range spec.scenarios {
		for _, st := range sc.steps {
			if _, ok := byName[st.class]; !ok {
				return fmt.Errorf("synthapp: scenario %q drives unknown class %q", sc.name, st.class)
			}
		}
	}
	// Cycle check over call/product edges by depth-first search.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[string]int, len(spec.classes))
	var visit func(name string) error
	visit = func(name string) error {
		switch color[name] {
		case grey:
			return fmt.Errorf("synthapp: call cycle through class %q", name)
		case black:
			return nil
		}
		color[name] = grey
		cs := byName[name]
		for _, e := range cs.edges {
			if err := visit(e.target); err != nil {
				return err
			}
		}
		if cs.factoryFor != "" {
			if err := visit(cs.factoryFor); err != nil {
				return err
			}
		}
		color[name] = black
		return nil
	}
	for i := range spec.classes {
		if err := visit(spec.classes[i].name); err != nil {
			return err
		}
	}
	return nil
}

// activationsOf derives the static activation metadata of a class: its
// call-edge targets, planted latent targets, and attributed dynamic
// activations — but never a factory's own product (that is the whole
// point of DynamicActivation).
func activationsOf(cs *classSpec) []com.CLSID {
	var out []com.CLSID
	seen := make(map[string]bool)
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			out = append(out, clsidOf(name))
		}
	}
	for _, e := range cs.edges {
		add(e.target)
	}
	for _, l := range cs.latent {
		add(l)
	}
	for _, a := range cs.alsoActivates {
		add(a)
	}
	return out
}

// mainActivations lists the classes the main program instantiates, in
// first-appearance order across the training scenarios.
func mainActivations(spec appSpec) []com.CLSID {
	var out []com.CLSID
	seen := make(map[string]bool)
	for _, sc := range spec.scenarios {
		for _, st := range sc.steps {
			if !seen[st.class] {
				seen[st.class] = true
				out = append(out, clsidOf(st.class))
			}
		}
	}
	return out
}

// behaviorFor builds the constructor for a class: each instance lazily
// creates one child per call edge, then on every Work invocation drives
// its edges and computes. Buffers are allocated once per instance and
// reused, so profiling cost stays proportional to call counts.
func behaviorFor(cs *classSpec, byName map[string]*classSpec) func() com.Object {
	return func() com.Object {
		children := make(map[string]*com.Interface, len(cs.edges))
		resBuf := make([]byte, cs.resBytes)
		argBufs := make([][]byte, len(cs.edges))
		fanBufs := make([][]byte, len(cs.edges))
		for i, e := range cs.edges {
			argBufs[i] = make([]byte, e.argBytes)
			if e.fanCalls > 0 {
				fanBufs[i] = make([]byte, e.fanBytes)
			}
		}
		return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
			level := int32(0)
			if len(c.Args) > 0 {
				level = int32(c.Args[0].AsInt())
			}
			if c.Method == "Update" {
				// State mutation: no downstream calls, just the write and
				// local compute.
				c.Mutate()
				c.Compute(cs.compute)
				return []idl.Value{idl.ByteBuf(resBuf)}, nil
			}
			if cs.factoryFor != "" {
				// Dynamic factory: mint a fresh product and hand its
				// interface back to the caller.
				inst, err := c.Create(clsidOf(cs.factoryFor))
				if err != nil {
					return nil, err
				}
				itf, err := c.Env.Query(inst, iidOf(cs.factoryFor))
				if err != nil {
					return nil, err
				}
				c.Compute(cs.compute)
				return []idl.Value{idl.IfacePtr(itf)}, nil
			}
			for i, e := range cs.edges {
				child, ok := children[e.target]
				if !ok {
					inst, err := c.Create(clsidOf(e.target))
					if err != nil {
						return nil, err
					}
					if child, err = c.Env.Query(inst, iidOf(e.target)); err != nil {
						return nil, err
					}
					children[e.target] = child
				}
				tgt := byName[e.target]
				args := callArgs(tgt, level-1, argBufs[i])
				for k := 0; k < e.calls; k++ {
					out, err := c.Invoke(child, "Work", args...)
					if err != nil {
						return nil, err
					}
					if e.fanCalls > 0 {
						worker, ok := out[0].Iface.(*com.Interface)
						if !ok {
							return nil, fmt.Errorf("synthapp: factory %s returned no interface", e.target)
						}
						product := byName[tgt.factoryFor]
						fanArgs := callArgs(product, level-2, fanBufs[i])
						for j := 0; j < e.fanCalls; j++ {
							if _, err := c.Invoke(worker, "Work", fanArgs...); err != nil {
								return nil, err
							}
						}
					}
				}
			}
			c.Compute(cs.compute)
			if cs.opaqueResult {
				// Hand the caller an opaque handle into this instance's
				// memory — the runtime marks the call non-remotable.
				return []idl.Value{idl.OpaquePtr("blob:" + cs.name)}, nil
			}
			return []idl.Value{idl.ByteBuf(resBuf)}, nil
		})
	}
}

// callArgs assembles the argument list for a Work call on a target class.
func callArgs(tgt *classSpec, level int32, payload []byte) []idl.Value {
	if level < 0 {
		level = 0
	}
	args := []idl.Value{idl.Int32(level), idl.ByteBuf(payload)}
	if tgt.opaque {
		args = append(args, idl.OpaquePtr("hdc:"+tgt.name))
	}
	return args
}

// runSteps is the scenario interpreter the generated Main delegates to.
// The scenario seed jitters payload sizes (within ±1/8) so distinct seeds
// produce distinct profiles while one seed replays identically.
func runSteps(env *com.Env, steps []step, byName map[string]*classSpec, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	for _, st := range steps {
		cs := byName[st.class]
		buf := make([]byte, st.payload+st.payload/8+1)
		for i := 0; i < st.instances; i++ {
			inst, err := env.CreateInstance(nil, clsidOf(st.class))
			if err != nil {
				return err
			}
			itf, err := env.Query(inst, iidOf(st.class))
			if err != nil {
				return err
			}
			for k := 0; k < st.calls; k++ {
				n := st.payload
				if n > 8 {
					n += rng.Intn(st.payload/4+1) - st.payload/8
				}
				args := callArgs(cs, 8, buf[:n])
				if _, err := env.Call(nil, itf, "Work", args...); err != nil {
					return err
				}
			}
			for u := 0; u < st.updates; u++ {
				args := []idl.Value{idl.Int32(8), idl.ByteBuf(buf[:st.payload])}
				if _, err := env.Call(nil, itf, "Update", args...); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
