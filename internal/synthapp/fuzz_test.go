package synthapp_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/binimg"
	"repro/internal/synthapp"
)

// FuzzSynthApp feeds arbitrary config bytes into the generator. The
// contract: FromBytes either rejects the input with a typed ConfigError
// or yields a config for which Generate must succeed, the resulting app
// must be Validate-clean, and regeneration must be byte-identical.
func FuzzSynthApp(f *testing.F) {
	f.Add([]byte{0, 1, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{1, 42, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Add([]byte{2, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 2})
	f.Add([]byte{3, 7, 7, 7, 7, 7, 7, 7, 7, 3})
	f.Add([]byte{4, 0, 0, 0, 0, 0, 0, 0, 0x80, 0xfe})
	f.Add([]byte{5, 9, 9, 9, 9, 9, 9, 9, 9, 0xff})
	f.Add([]byte{})
	f.Add([]byte{0xee})

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := synthapp.FromBytes(data)
		if err != nil {
			var ce *synthapp.ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("FromBytes returned untyped error %v", err)
			}
			return
		}
		a, err := synthapp.Generate(cfg)
		if err != nil {
			t.Fatalf("Generate(%+v): %v", cfg, err)
		}
		if err := synthapp.Validate(a.App); err != nil {
			t.Fatalf("Validate(%+v): %v", cfg, err)
		}
		b, err := synthapp.Generate(cfg)
		if err != nil {
			t.Fatalf("Generate(%+v) second run: %v", cfg, err)
		}
		var ab, bb bytes.Buffer
		if err := binimg.BuildImage(a.App).Encode(&ab); err != nil {
			t.Fatalf("encode: %v", err)
		}
		if err := binimg.BuildImage(b.App).Encode(&bb); err != nil {
			t.Fatalf("encode: %v", err)
		}
		if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
			t.Fatalf("config %+v regenerated a different image", cfg)
		}
	})
}
