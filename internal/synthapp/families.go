package synthapp

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/com"
)

// Family builders. Each derives every free choice from the seeded rng so
// a (family, seed, scale) triple always produces the same spec, and each
// plants exactly one latent activation edge whose endpoints share a Home
// (so the coverage weld it becomes never creates a spurious default
// violation). Only three-tier plants an infeasible default distribution.

func pick(rng *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + rng.Intn(hi-lo+1)
}

func dur(rng *rand.Rand, lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(rng.Int63n(int64(hi-lo)))
}

func codeSize(rng *rand.Rand) int { return pick(rng, 24<<10, 320<<10) }

// threeTierSpec: GUI views over business logic over storage. The plant:
// Spool is homed on the server but offers only a non-remotable interface
// and is called from a client-pinned view, so the as-shipped distribution
// splits a must-co-locate pair and analysis must report it.
func threeTierSpec(rng *rand.Rand, scale int) appSpec {
	views := pick(rng, 1, 2)
	logics := pick(rng, 2, 3) + (scale - 1)
	stores := pick(rng, 1, 2)
	var spec appSpec

	for k := 0; k < stores; k++ {
		spec.classes = append(spec.classes, classSpec{
			name: fmt.Sprintf("Store%d", k), home: com.Server, infra: true,
			apis:      []string{com.APIFileOpen, com.APIFileRead},
			codeBytes: codeSize(rng), compute: dur(rng, 500*time.Microsecond, 2*time.Millisecond),
			resBytes: pick(rng, 8<<10, 32<<10),
		})
	}
	for j := 0; j < logics; j++ {
		cs := classSpec{
			name: fmt.Sprintf("Logic%d", j), home: com.Client,
			codeBytes: codeSize(rng), compute: dur(rng, time.Millisecond, 5*time.Millisecond),
			resBytes: pick(rng, 128, 1024),
		}
		for k := 0; k < stores; k++ {
			cs.edges = append(cs.edges, edgeSpec{
				target: fmt.Sprintf("Store%d", k), calls: pick(rng, 2, 6), argBytes: pick(rng, 32, 128),
			})
		}
		if j == 0 {
			cs.latent = []string{"Audit"}
		}
		spec.classes = append(spec.classes, cs)
	}
	spec.classes = append(spec.classes, classSpec{
		name: "Spool", home: com.Server, opaque: true,
		codeBytes: codeSize(rng), compute: dur(rng, 100*time.Microsecond, time.Millisecond),
		resBytes: pick(rng, 64, 256),
	})
	spec.classes = append(spec.classes, classSpec{
		name: "Audit", home: com.Client,
		codeBytes: codeSize(rng), compute: dur(rng, 100*time.Microsecond, 500*time.Microsecond),
		resBytes: pick(rng, 32, 128),
	})
	for i := 0; i < views; i++ {
		cs := classSpec{
			name: fmt.Sprintf("View%d", i), home: com.Client, stateless: true,
			apis:      []string{com.APIGdiPaint, com.APIUserWindow},
			codeBytes: codeSize(rng), compute: dur(rng, 200*time.Microsecond, time.Millisecond),
			resBytes: pick(rng, 64, 512),
		}
		for j := 0; j < logics; j++ {
			cs.edges = append(cs.edges, edgeSpec{
				target: fmt.Sprintf("Logic%d", j), calls: pick(rng, 1, 3), argBytes: pick(rng, 64, 512),
			})
		}
		if i == 0 {
			cs.edges = append(cs.edges, edgeSpec{target: "Spool", calls: 1, argBytes: pick(rng, 128, 1024)})
		}
		spec.classes = append(spec.classes, cs)
	}

	heavy := scenarioSpec{name: ScenHeavy}
	for i := 0; i < views; i++ {
		heavy.steps = append(heavy.steps, step{
			class: fmt.Sprintf("View%d", i), instances: 1, calls: pick(rng, 2, 4), payload: pick(rng, 512, 2048),
		})
	}
	spec.scenarios = []scenarioSpec{
		{name: ScenBase, steps: []step{{class: "View0", instances: 1, calls: 2, payload: 256}}},
		heavy,
		{name: ScenAlt, steps: []step{
			{class: "Audit", instances: 1, calls: 2, payload: 64},
			{class: "View0", instances: 1, calls: 1, payload: 128},
		}},
	}
	spec.plantsInfeasible = true
	spec.latentPairs = [][2]string{{"Logic0", "Audit"}}
	return spec
}

// scatterGatherSpec: a client coordinator scatters work through a dynamic
// factory that mints workers and returns their interfaces — exercising
// the reachability analysis's return-flow grant and effective-creator
// attribution.
func scatterGatherSpec(rng *rand.Rand, scale int) appSpec {
	var spec appSpec
	spec.classes = append(spec.classes, classSpec{
		name: "SGStore", home: com.Server, infra: true,
		apis:      []string{com.APIFileRead, com.APIFileWrite},
		codeBytes: codeSize(rng), compute: dur(rng, 500*time.Microsecond, 2*time.Millisecond),
		resBytes: pick(rng, 4<<10, 16<<10),
	})
	spec.classes = append(spec.classes, classSpec{
		name: "Worker", home: com.Server,
		codeBytes: codeSize(rng), compute: dur(rng, time.Millisecond, 4*time.Millisecond),
		resBytes: pick(rng, 512, 4096),
		edges: []edgeSpec{
			{target: "SGStore", calls: pick(rng, 1, 3), argBytes: pick(rng, 32, 128)},
		},
	})
	spec.classes = append(spec.classes, classSpec{
		name: "Spawn", home: com.Server, factoryFor: "Worker",
		codeBytes: codeSize(rng), compute: dur(rng, 100*time.Microsecond, 500*time.Microsecond),
	})
	spec.classes = append(spec.classes, classSpec{
		name: "Probe", home: com.Client,
		codeBytes: codeSize(rng), compute: dur(rng, 100*time.Microsecond, 500*time.Microsecond),
		resBytes: pick(rng, 32, 128),
	})
	spec.classes = append(spec.classes, classSpec{
		name: "Coord", home: com.Client,
		apis:      []string{com.APIUserWindow},
		codeBytes: codeSize(rng), compute: dur(rng, 500*time.Microsecond, 2*time.Millisecond),
		resBytes: pick(rng, 128, 512),
		edges: []edgeSpec{{
			target: "Spawn", calls: pick(rng, 3, 5) + (scale-1)*2, argBytes: 64,
			fanCalls: pick(rng, 2, 4), fanBytes: pick(rng, 256, 1024),
		}},
		latent:        []string{"Probe"},
		alsoActivates: []string{"Worker"},
	})

	spec.scenarios = []scenarioSpec{
		{name: ScenBase, steps: []step{{class: "Coord", instances: 1, calls: 1, payload: 128}}},
		{name: ScenHeavy, steps: []step{
			{class: "Coord", instances: pick(rng, 1, 2), calls: pick(rng, 2, 3), payload: pick(rng, 256, 512)},
		}},
		{name: ScenAlt, steps: []step{
			{class: "Probe", instances: 1, calls: 2, payload: 64},
			{class: "Coord", instances: 1, calls: 1, payload: 128},
		}},
	}
	spec.latentPairs = [][2]string{{"Coord", "Probe"}}
	return spec
}

// pipelineSpec: a linear stage chain from a client display to server
// storage; inter-stage payloads vary so the minimum cut falls at the
// narrowest point of the chain.
func pipelineSpec(rng *rand.Rand, scale int) appSpec {
	depth := pick(rng, 3, 4)
	if scale > 1 {
		depth++
	}
	var spec appSpec
	spec.classes = append(spec.classes, classSpec{
		name: "PipeStore", home: com.Server, infra: true,
		apis:      []string{com.APIFileOpen, com.APIFileWrite},
		codeBytes: codeSize(rng), compute: dur(rng, 500*time.Microsecond, 2*time.Millisecond),
		resBytes: pick(rng, 8<<10, 32<<10),
	})
	spec.classes = append(spec.classes, classSpec{
		name: "Tap", home: com.Client,
		codeBytes: codeSize(rng), compute: dur(rng, 100*time.Microsecond, 500*time.Microsecond),
		resBytes: pick(rng, 32, 128),
	})
	for i := depth - 1; i >= 0; i-- {
		cs := classSpec{
			name:      fmt.Sprintf("Stage%d", i),
			codeBytes: codeSize(rng), compute: dur(rng, 500*time.Microsecond, 3*time.Millisecond),
			resBytes: pick(rng, 256, 2048),
		}
		if i < depth/2 {
			cs.home = com.Client
		} else {
			cs.home = com.Server
		}
		if i == 0 {
			cs.home = com.Client
			cs.apis = []string{com.APIGdiPaint}
			cs.latent = []string{"Tap"}
		}
		if i == depth-1 {
			cs.edges = []edgeSpec{{target: "PipeStore", calls: pick(rng, 1, 3), argBytes: pick(rng, 64, 256)}}
		} else {
			cs.edges = []edgeSpec{{
				target: fmt.Sprintf("Stage%d", i+1), calls: pick(rng, 1, 2), argBytes: pick(rng, 128, 8192),
			}}
		}
		spec.classes = append(spec.classes, cs)
	}

	spec.scenarios = []scenarioSpec{
		{name: ScenBase, steps: []step{{class: "Stage0", instances: 1, calls: 2, payload: 1024}}},
		{name: ScenHeavy, steps: []step{
			{class: "Stage0", instances: 1, calls: pick(rng, 3, 5), payload: pick(rng, 2048, 8192)},
		}},
		{name: ScenAlt, steps: []step{
			{class: "Tap", instances: 1, calls: 1, payload: 64},
			{class: "Stage0", instances: 1, calls: 1, payload: 512},
		}},
	}
	spec.latentPairs = [][2]string{{"Stage0", "Tap"}}
	return spec
}

// guiSwarmSpec: many widget instances sharing a non-remotable surface
// interface and passing opaque device contexts down a widget chain — the
// whole swarm must end up welded onto the client.
func guiSwarmSpec(rng *rand.Rand, scale int) appSpec {
	widgets := pick(rng, 3, 4) + (scale - 1)
	guiAPIs := [][]string{
		{com.APIGdiPaint},
		{com.APIUserWindow},
		{com.APIUserInput},
	}
	var spec appSpec
	spec.shared = []sharedIfaceSpec{{iid: "ISurface", remotable: false}}
	spec.classes = append(spec.classes, classSpec{
		name: "Prefs", home: com.Server, infra: true,
		apis:      []string{com.APIFileRead},
		codeBytes: codeSize(rng), compute: dur(rng, 200*time.Microsecond, time.Millisecond),
		resBytes: pick(rng, 256, 1024),
	})
	spec.classes = append(spec.classes, classSpec{
		name: "Theme", home: com.Client,
		codeBytes: codeSize(rng), compute: dur(rng, 100*time.Microsecond, 500*time.Microsecond),
		resBytes: pick(rng, 32, 128),
	})
	for i := 0; i < widgets; i++ {
		cs := classSpec{
			name: fmt.Sprintf("Widget%d", i), home: com.Client,
			apis: guiAPIs[i%len(guiAPIs)], shared: []string{"ISurface"},
			opaque:    true,
			codeBytes: codeSize(rng), compute: dur(rng, 200*time.Microsecond, time.Millisecond),
			resBytes: pick(rng, 128, 512),
		}
		if i < widgets-1 {
			cs.edges = []edgeSpec{{
				target: fmt.Sprintf("Widget%d", i+1), calls: pick(rng, 1, 2), argBytes: pick(rng, 64, 512),
			}}
		} else {
			cs.edges = []edgeSpec{{target: "Prefs", calls: 1, argBytes: 32}}
		}
		if i == 0 {
			cs.latent = append(cs.latent, "Theme")
		}
		spec.classes = append(spec.classes, cs)
	}

	spec.scenarios = []scenarioSpec{
		{name: ScenBase, steps: []step{
			{class: "Widget0", instances: pick(rng, 3, 5) * scale, calls: 2, payload: 256},
		}},
		{name: ScenHeavy, steps: []step{
			{class: "Widget0", instances: pick(rng, 6, 10), calls: pick(rng, 2, 3), payload: pick(rng, 256, 1024)},
		}},
		{name: ScenAlt, steps: []step{
			{class: "Theme", instances: 1, calls: 1, payload: 64},
			{class: "Widget0", instances: 1, calls: 1, payload: 128},
		}},
	}
	spec.latentPairs = [][2]string{{"Widget0", "Theme"}}
	return spec
}

// cacheHeavySpec: a client front end behind a cacheable mid-tier over a
// bulk backing store — the family that gives the caching runtime and the
// cut engine a workload where interposition pays.
func cacheHeavySpec(rng *rand.Rand, scale int) appSpec {
	var spec appSpec
	spec.classes = append(spec.classes, classSpec{
		name: "CStore", home: com.Server, infra: true,
		apis:      []string{com.APIFileOpen, com.APIFileRead},
		codeBytes: codeSize(rng), compute: dur(rng, time.Millisecond, 3*time.Millisecond),
		resBytes: pick(rng, 16<<10, 64<<10),
	})
	spec.classes = append(spec.classes, classSpec{
		name: "Cache", home: com.Client, cacheable: true,
		codeBytes: codeSize(rng), compute: dur(rng, 200*time.Microsecond, time.Millisecond),
		resBytes: pick(rng, 4<<10, 16<<10),
		edges: []edgeSpec{
			{target: "CStore", calls: pick(rng, 1, 3), argBytes: 64},
		},
		latent: []string{"Warm"},
	})
	spec.classes = append(spec.classes, classSpec{
		name: "Warm", home: com.Client,
		codeBytes: codeSize(rng), compute: dur(rng, 100*time.Microsecond, 500*time.Microsecond),
		resBytes: pick(rng, 32, 128),
	})
	spec.classes = append(spec.classes, classSpec{
		name: "Front", home: com.Client,
		apis:      []string{com.APIUserWindow},
		codeBytes: codeSize(rng), compute: dur(rng, 200*time.Microsecond, time.Millisecond),
		resBytes: pick(rng, 128, 512),
		edges: []edgeSpec{
			{target: "Cache", calls: pick(rng, 6, 10) + (scale-1)*4, argBytes: pick(rng, 32, 128)},
		},
	})

	spec.scenarios = []scenarioSpec{
		{name: ScenBase, steps: []step{{class: "Front", instances: 1, calls: 2, payload: 128}}},
		{name: ScenHeavy, steps: []step{
			{class: "Front", instances: 1, calls: pick(rng, 3, 5), payload: pick(rng, 128, 512)},
		}},
		{name: ScenAlt, steps: []step{
			{class: "Warm", instances: 1, calls: 1, payload: 32},
			{class: "Front", instances: 1, calls: 1, payload: 64},
		}},
	}
	spec.latentPairs = [][2]string{{"Cache", "Warm"}}
	return spec
}

// skewedSpec: the "celebrity" hot-spot — many peers hammer one hub with a
// heavy-tailed call distribution, and the hub reads big from storage, so
// the cut hinges on where the hub lands.
func skewedSpec(rng *rand.Rand, scale int) appSpec {
	peers := pick(rng, 5, 7) + (scale-1)*2
	var spec appSpec
	spec.classes = append(spec.classes, classSpec{
		name: "HotStore", home: com.Server, infra: true,
		apis:      []string{com.APIFileOpen, com.APIFileRead},
		codeBytes: codeSize(rng), compute: dur(rng, time.Millisecond, 3*time.Millisecond),
		resBytes: pick(rng, 8<<10, 64<<10),
	})
	spec.classes = append(spec.classes, classSpec{
		name: "Cold", home: com.Client,
		codeBytes: codeSize(rng), compute: dur(rng, 100*time.Microsecond, 500*time.Microsecond),
		resBytes: pick(rng, 32, 128),
	})
	spec.classes = append(spec.classes, classSpec{
		name: "Hub", home: com.Client,
		codeBytes: codeSize(rng), compute: dur(rng, time.Millisecond, 3*time.Millisecond),
		resBytes: pick(rng, 256, 2048),
		edges: []edgeSpec{
			{target: "HotStore", calls: pick(rng, 3, 8), argBytes: 64},
		},
		latent: []string{"Cold"},
	})
	for i := 0; i < peers; i++ {
		cs := classSpec{
			name: fmt.Sprintf("Peer%d", i), home: com.Client,
			codeBytes: codeSize(rng), compute: dur(rng, 200*time.Microsecond, time.Millisecond),
			resBytes: pick(rng, 64, 256),
			edges: []edgeSpec{{
				target: "Hub", calls: max(1, 12/(i+1)), argBytes: pick(rng, 128, 1024),
			}},
		}
		if i < 2 {
			cs.apis = []string{com.APIUserInput}
		}
		spec.classes = append(spec.classes, cs)
	}

	base := scenarioSpec{name: ScenBase}
	for i := 0; i < peers && i < 3; i++ {
		base.steps = append(base.steps, step{class: fmt.Sprintf("Peer%d", i), instances: 1, calls: 1, payload: 256})
	}
	heavy := scenarioSpec{name: ScenHeavy}
	for i := 0; i < peers; i++ {
		heavy.steps = append(heavy.steps, step{
			class: fmt.Sprintf("Peer%d", i), instances: 1, calls: pick(rng, 1, 2), payload: pick(rng, 256, 1024),
		})
	}
	spec.scenarios = []scenarioSpec{
		base,
		heavy,
		{name: ScenAlt, steps: []step{
			{class: "Cold", instances: 1, calls: 1, payload: 64},
			{class: "Peer0", instances: 1, calls: 1, payload: 128},
		}},
	}
	spec.latentPairs = [][2]string{{"Hub", "Cold"}}
	return spec
}

// readReplicaSpec: the purity-analysis plant. Catalog declares its state
// (Work reads it, only the rare Update writes it) and sits torn between
// client-pinned GUI readers and the server-pinned disk it reads through,
// so the plain cut always pays for one of its heavy edges and the
// replication-aware cut — which may clone the read-mostly Catalog onto
// both machines — is strictly cheaper. Journal is the stateful decoy:
// same declared shape, but the scenarios write it on every other call,
// so grading it anything but stateful is a harness failure.
func readReplicaSpec(rng *rand.Rand, scale int) appSpec {
	readers := pick(rng, 1, 2) + (scale - 1)
	var spec appSpec
	spec.classes = append(spec.classes, classSpec{
		name: "Disk", home: com.Server, infra: true, stateless: true,
		apis:      []string{com.APIFileOpen, com.APIFileRead},
		codeBytes: codeSize(rng), compute: dur(rng, 500*time.Microsecond, 2*time.Millisecond),
		resBytes: pick(rng, 8<<10, 32<<10),
	})
	spec.classes = append(spec.classes, classSpec{
		name: "Catalog", home: com.Server, stateBytes: pick(rng, 16<<10, 128<<10),
		codeBytes: codeSize(rng), compute: dur(rng, 200*time.Microsecond, time.Millisecond),
		resBytes: pick(rng, 2<<10, 8<<10),
		edges: []edgeSpec{
			{target: "Disk", calls: pick(rng, 1, 2), argBytes: pick(rng, 2<<10, 8<<10)},
		},
	})
	spec.classes = append(spec.classes, classSpec{
		name: "Journal", home: com.Server, stateBytes: pick(rng, 4<<10, 16<<10),
		codeBytes: codeSize(rng), compute: dur(rng, 200*time.Microsecond, time.Millisecond),
		resBytes: pick(rng, 128, 512),
	})
	spec.classes = append(spec.classes, classSpec{
		name: "Stale", home: com.Client,
		codeBytes: codeSize(rng), compute: dur(rng, 100*time.Microsecond, 500*time.Microsecond),
		resBytes: pick(rng, 32, 128),
	})
	spec.classes = append(spec.classes, classSpec{
		name: "Indexer", home: com.Server, infra: true,
		apis:      []string{com.APIFileRead, com.APIFileWrite},
		codeBytes: codeSize(rng), compute: dur(rng, 500*time.Microsecond, 2*time.Millisecond),
		resBytes: pick(rng, 256, 1024),
		edges: []edgeSpec{
			{target: "Catalog", calls: pick(rng, 3, 6), argBytes: pick(rng, 512, 2048)},
		},
	})
	for i := 0; i < readers; i++ {
		cs := classSpec{
			name: fmt.Sprintf("Gui%d", i), home: com.Client,
			apis:      []string{com.APIGdiPaint, com.APIUserWindow},
			codeBytes: codeSize(rng), compute: dur(rng, 200*time.Microsecond, time.Millisecond),
			resBytes: pick(rng, 128, 512),
			edges: []edgeSpec{
				{target: "Catalog", calls: pick(rng, 4, 8), argBytes: pick(rng, 256, 1024)},
			},
		}
		if i == 0 {
			cs.latent = []string{"Stale"}
		}
		spec.classes = append(spec.classes, cs)
	}

	heavy := scenarioSpec{name: ScenHeavy}
	for i := 0; i < readers; i++ {
		heavy.steps = append(heavy.steps, step{
			class: fmt.Sprintf("Gui%d", i), instances: 1, calls: pick(rng, 2, 4), payload: pick(rng, 512, 2048),
		})
	}
	heavy.steps = append(heavy.steps, step{class: "Indexer", instances: 1, calls: pick(rng, 2, 3), payload: 512})
	journalCalls := pick(rng, 2, 4)
	heavy.steps = append(heavy.steps, step{
		class: "Journal", instances: 1, calls: journalCalls, payload: 128, updates: journalCalls,
	})
	spec.scenarios = []scenarioSpec{
		{name: ScenBase, steps: []step{
			// The rare write: one Update against a couple dozen reads keeps
			// the observed write fraction safely under the default θ.
			{class: "Catalog", instances: 1, calls: pick(rng, 24, 32), payload: pick(rng, 256, 1024), updates: 1},
			{class: "Gui0", instances: 1, calls: 2, payload: 256},
			{class: "Indexer", instances: 1, calls: 1, payload: 512},
		}},
		heavy,
		{name: ScenAlt, steps: []step{
			{class: "Stale", instances: 1, calls: 1, payload: 64},
			{class: "Gui0", instances: 1, calls: 1, payload: 128},
		}},
	}
	spec.latentPairs = [][2]string{{"Gui0", "Stale"}}
	spec.readMostlyPlant = "Catalog"
	spec.statefulDecoy = "Journal"
	return spec
}

// sharedStateSpec: the alias-analysis plant. Blob keeps declared mutable
// state and hands out opaque handles into it; WriterA and WriterB both
// obtain one, so they truly alias Blob's memory (and each other) and the
// points-to refinement must keep all three welded. Minter is the decoy:
// its interface is statically just as non-remotable — every method
// returns an opaque payload — but the class is provably stateless, so the
// payloads are immutable and the readers exchanging them must NOT be
// pinned once the refinement runs. Everything but the archive is homed on
// the client, so the as-shipped distribution is feasible and the only cut
// tension is WriterA's bulk traffic to server storage.
func sharedStateSpec(rng *rand.Rand, scale int) appSpec {
	readers := pick(rng, 2, 3) + (scale - 1)
	var spec appSpec
	spec.classes = append(spec.classes, classSpec{
		name: "Archive", home: com.Server, infra: true,
		apis:      []string{com.APIFileOpen, com.APIFileWrite},
		codeBytes: codeSize(rng), compute: dur(rng, 500*time.Microsecond, 2*time.Millisecond),
		resBytes: pick(rng, 4<<10, 16<<10),
	})
	spec.classes = append(spec.classes, classSpec{
		name: "Blob", home: com.Client, opaqueResult: true,
		stateBytes: pick(rng, 8<<10, 64<<10),
		codeBytes:  codeSize(rng), compute: dur(rng, 100*time.Microsecond, 500*time.Microsecond),
	})
	spec.classes = append(spec.classes, classSpec{
		name: "Minter", home: com.Client, opaqueResult: true, stateless: true,
		codeBytes: codeSize(rng), compute: dur(rng, 100*time.Microsecond, 500*time.Microsecond),
	})
	spec.classes = append(spec.classes, classSpec{
		name: "Ledger", home: com.Client,
		codeBytes: codeSize(rng), compute: dur(rng, 100*time.Microsecond, 500*time.Microsecond),
		resBytes: pick(rng, 32, 128),
	})
	spec.classes = append(spec.classes, classSpec{
		name: "WriterA", home: com.Client,
		codeBytes: codeSize(rng), compute: dur(rng, 200*time.Microsecond, time.Millisecond),
		resBytes: pick(rng, 128, 512),
		edges: []edgeSpec{
			{target: "Blob", calls: pick(rng, 2, 4), argBytes: pick(rng, 64, 256)},
			{target: "Archive", calls: pick(rng, 1, 3), argBytes: pick(rng, 1<<10, 8<<10)},
		},
		latent: []string{"Ledger"},
	})
	spec.classes = append(spec.classes, classSpec{
		name: "WriterB", home: com.Client,
		codeBytes: codeSize(rng), compute: dur(rng, 200*time.Microsecond, time.Millisecond),
		resBytes: pick(rng, 128, 512),
		edges: []edgeSpec{
			{target: "Blob", calls: pick(rng, 2, 4), argBytes: pick(rng, 64, 256)},
		},
	})
	for i := 0; i < readers; i++ {
		spec.classes = append(spec.classes, classSpec{
			name: fmt.Sprintf("Reader%d", i), home: com.Client,
			codeBytes: codeSize(rng), compute: dur(rng, 200*time.Microsecond, time.Millisecond),
			resBytes: pick(rng, 64, 256),
			edges: []edgeSpec{
				{target: "Minter", calls: pick(rng, 2, 5), argBytes: pick(rng, 128, 512)},
			},
		})
	}

	heavy := scenarioSpec{name: ScenHeavy, steps: []step{
		{class: "WriterA", instances: 1, calls: pick(rng, 2, 4), payload: pick(rng, 512, 2048)},
		{class: "WriterB", instances: 1, calls: pick(rng, 2, 4), payload: pick(rng, 512, 2048)},
	}}
	for i := 0; i < readers; i++ {
		heavy.steps = append(heavy.steps, step{
			class: fmt.Sprintf("Reader%d", i), instances: 1, calls: pick(rng, 2, 3), payload: pick(rng, 256, 1024),
		})
	}
	spec.scenarios = []scenarioSpec{
		{name: ScenBase, steps: []step{
			{class: "WriterA", instances: 1, calls: 2, payload: 256},
			{class: "Reader0", instances: 1, calls: 2, payload: 256},
		}},
		heavy,
		{name: ScenAlt, steps: []step{
			{class: "Ledger", instances: 1, calls: 1, payload: 64},
			{class: "WriterB", instances: 1, calls: 1, payload: 128},
			{class: "Reader0", instances: 1, calls: 1, payload: 128},
		}},
	}
	spec.latentPairs = [][2]string{{"WriterA", "Ledger"}}
	spec.aliasPlantPairs = [][2]string{
		{"Blob", "WriterA"}, {"Blob", "WriterB"}, {"WriterA", "WriterB"},
	}
	decoys := [][2]string{}
	for i := 0; i < readers; i++ {
		decoys = append(decoys, [2]string{"Minter", fmt.Sprintf("Reader%d", i)})
	}
	spec.aliasDecoyPairs = decoys
	return spec
}
