package logger

import (
	"bytes"
	"strings"
	"testing"
)

func sampleInst(id uint64) InstRecord {
	return InstRecord{ID: id, Class: "Reader", Classification: "Reader@1",
		CreatorClassification: "<main>", Order: int(id)}
}

func sampleCall() CallRecord {
	return CallRecord{SrcInst: 0, DstInst: 1, SrcClassification: "<main>",
		DstClassification: "Reader@1", IID: "IReader", Method: "Read",
		InBytes: 100, OutBytes: 4000}
}

func TestNullLoggerDoesNothing(t *testing.T) {
	t.Parallel()
	var n Null
	n.BeginRun("a", "s")
	n.Instantiation(sampleInst(1))
	n.Call(sampleCall())
	n.Release(1)
	n.EndRun()
}

func TestProfilingLoggerSummarizes(t *testing.T) {
	t.Parallel()
	l := NewProfiling("ifcb", true)
	l.BeginRun("app", "o_newdoc")
	l.Instantiation(sampleInst(1))
	l.Instantiation(sampleInst(2))
	l.Call(sampleCall())
	l.Call(sampleCall())
	l.EndRun()

	p := l.LastRun()
	if p == nil {
		t.Fatal("no run recorded")
	}
	if p.TotalInstances() != 2 || p.TotalCalls() != 2 {
		t.Fatalf("instances=%d calls=%d", p.TotalInstances(), p.TotalCalls())
	}
	e := p.Edge("<main>", "Reader@1")
	if e.Calls != 2 || e.ExactInBytes != 200 || e.ExactOutBytes != 8000 {
		t.Fatalf("edge = %+v", e)
	}
	if len(p.InstEdges) != 1 {
		t.Fatalf("instance detail = %d edges", len(p.InstEdges))
	}
	if len(p.Scenarios) != 1 || p.Scenarios[0] != "o_newdoc" {
		t.Fatalf("scenarios = %v", p.Scenarios)
	}
}

func TestProfilingLoggerWithoutInstanceDetail(t *testing.T) {
	t.Parallel()
	l := NewProfiling("ifcb", false)
	l.BeginRun("app", "s")
	l.Instantiation(sampleInst(1))
	l.Call(sampleCall())
	l.EndRun()
	if len(l.LastRun().InstEdges) != 0 {
		t.Fatal("instance detail recorded when disabled")
	}
}

func TestProfilingLoggerMultipleRunsAndCombined(t *testing.T) {
	t.Parallel()
	l := NewProfiling("ifcb", false)
	for _, s := range []string{"s1", "s2", "s3"} {
		l.BeginRun("app", s)
		l.Instantiation(sampleInst(1))
		l.Call(sampleCall())
		l.EndRun()
	}
	if len(l.Runs()) != 3 {
		t.Fatalf("runs = %d", len(l.Runs()))
	}
	c, err := l.Combined()
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalCalls() != 3 || len(c.Scenarios) != 3 {
		t.Fatalf("combined: calls=%d scenarios=%v", c.TotalCalls(), c.Scenarios)
	}
}

func TestProfilingLoggerCombinedEmpty(t *testing.T) {
	t.Parallel()
	if _, err := NewProfiling("ifcb", false).Combined(); err == nil {
		t.Fatal("empty combine succeeded")
	}
}

func TestProfilingLoggerIgnoresEventsOutsideRun(t *testing.T) {
	t.Parallel()
	l := NewProfiling("ifcb", true)
	l.Instantiation(sampleInst(1)) // before BeginRun: dropped
	l.Call(sampleCall())
	l.EndRun() // no active run: no-op
	if len(l.Runs()) != 0 {
		t.Fatal("phantom run recorded")
	}
}

func TestEventLoggerTracesEverything(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	l := NewEventLogger(&buf)
	l.BeginRun("app", "s")
	l.Instantiation(sampleInst(1))
	l.Call(sampleCall())
	l.Release(1)
	l.EndRun()
	if len(l.Events) != 5 {
		t.Fatalf("events = %d", len(l.Events))
	}
	kinds := []EventKind{EvBegin, EvInstantiation, EvCall, EvRelease, EvEnd}
	for i, k := range kinds {
		if l.Events[i].Kind != k {
			t.Errorf("event %d kind = %v, want %v", i, l.Events[i].Kind, k)
		}
	}
	out := buf.String()
	for _, want := range []string{"begin app s", "create #1 Reader", "call #0->#1 IReader.Read", "release #1", "end"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q in %q", want, out)
		}
	}
}

func TestEventLoggerNilWriter(t *testing.T) {
	t.Parallel()
	l := NewEventLogger(nil)
	l.BeginRun("a", "s")
	l.Call(sampleCall())
	l.EndRun()
	if len(l.Events) != 3 {
		t.Fatalf("events = %d", len(l.Events))
	}
}

func TestMultiFansOut(t *testing.T) {
	t.Parallel()
	p := NewProfiling("ifcb", false)
	e := NewEventLogger(nil)
	m := Multi{p, e}
	m.BeginRun("app", "s")
	m.Instantiation(sampleInst(1))
	m.Call(sampleCall())
	m.Release(1)
	m.EndRun()
	if len(p.Runs()) != 1 || p.LastRun().TotalCalls() != 1 {
		t.Error("profiling logger missed events via Multi")
	}
	if len(e.Events) != 5 {
		t.Error("event logger missed events via Multi")
	}
}
