// Package logger implements Coign's information loggers (paper §3.3).
// Under direction of the runtime executive, Coign components pass
// application events — component instantiations and destructions,
// interface calls — to the information logger, which is free to summarize
// them (profiling logger), trace them in full (event logger), or discard
// them (null logger, used during distributed execution).
package logger

import (
	"fmt"
	"io"
	"time"

	"repro/internal/profile"
)

// InstRecord describes one component instantiation event.
type InstRecord struct {
	ID                    uint64
	Class                 string
	Classification        string
	CreatorClassification string
	Order                 int
	// Path is the activation call path: the classes of the component
	// instances on the stack at the instantiation, innermost first.
	Path []string
}

// CallRecord describes one inter-component interface call.
type CallRecord struct {
	SrcInst, DstInst                     uint64
	SrcClassification, DstClassification string
	IID, Method                          string
	InBytes, OutBytes                    int
	NonRemotable                         bool
	Crossing                             bool // endpoints on different machines
}

// Logger consumes application events.
type Logger interface {
	// BeginRun starts a named scenario run.
	BeginRun(app, scenario string)
	// Instantiation records a component creation.
	Instantiation(rec InstRecord)
	// Call records one interface invocation.
	Call(rec CallRecord)
	// Release records a component destruction.
	Release(instID uint64)
	// EndRun finishes the current run.
	EndRun()
}

// Null discards all events; it is the logger loaded during distributed
// execution, where instrumentation must cost nothing.
type Null struct{}

// BeginRun implements Logger.
func (Null) BeginRun(string, string) {}

// Instantiation implements Logger.
func (Null) Instantiation(InstRecord) {}

// Call implements Logger.
func (Null) Call(CallRecord) {}

// Release implements Logger.
func (Null) Release(uint64) {}

// EndRun implements Logger.
func (Null) EndRun() {}

// Profiling summarizes inter-component communication into in-memory
// structures (per classification pair, with exponential size buckets) and
// produces a profile.Profile at the end of the run. Memory use is bounded
// by the number of distinct edges, not by execution length.
type Profiling struct {
	classifier     string
	instanceDetail bool
	current        *profile.Profile
	runs           []*profile.Profile
}

// NewProfiling returns a profiling logger for the given classifier name.
// When instanceDetail is true the logger additionally keeps per-instance
// edges, which classifier evaluation (Tables 2 and 3) requires.
func NewProfiling(classifier string, instanceDetail bool) *Profiling {
	return &Profiling{classifier: classifier, instanceDetail: instanceDetail}
}

// BeginRun implements Logger.
func (l *Profiling) BeginRun(app, scenario string) {
	l.current = profile.New(app, l.classifier)
	l.current.Scenarios = []string{scenario}
}

// Instantiation implements Logger.
func (l *Profiling) Instantiation(rec InstRecord) {
	if l.current == nil {
		return
	}
	l.current.AddInstance(profile.InstanceRecord{
		ID:                    rec.ID,
		Class:                 rec.Class,
		Classification:        rec.Classification,
		CreatorClassification: rec.CreatorClassification,
		Order:                 rec.Order,
		Path:                  rec.Path,
	})
}

// Call implements Logger.
func (l *Profiling) Call(rec CallRecord) {
	if l.current == nil {
		return
	}
	l.current.Edge(rec.SrcClassification, rec.DstClassification).
		Record(rec.InBytes, rec.OutBytes, rec.NonRemotable)
	l.current.Method(rec.DstClassification, rec.Method).Calls++
	if l.instanceDetail {
		l.current.InstEdge(rec.SrcInst, rec.DstInst).
			Record(rec.InBytes, rec.OutBytes, rec.NonRemotable)
	}
}

// Mutation implements MutationSink: observed state writes accumulate on
// the per-method statistics the purity verifier diffs against static
// read-only claims.
func (l *Profiling) Mutation(rec MutationRecord) {
	if l.current == nil {
		return
	}
	l.current.Method(rec.Classification, rec.Method).Writes++
}

// Release implements Logger. The profiling logger does not need
// destruction events; lifetime is irrelevant to communication cost.
func (l *Profiling) Release(uint64) {}

// EndRun implements Logger.
func (l *Profiling) EndRun() {
	if l.current != nil {
		l.runs = append(l.runs, l.current)
		l.current = nil
	}
}

// Runs returns the profiles collected so far, one per completed run.
func (l *Profiling) Runs() []*profile.Profile { return l.runs }

// LastRun returns the most recently completed profile, or nil.
func (l *Profiling) LastRun() *profile.Profile {
	if len(l.runs) == 0 {
		return nil
	}
	return l.runs[len(l.runs)-1]
}

// Combined merges all completed runs into a single profile, the form the
// analysis engine consumes.
func (l *Profiling) Combined() (*profile.Profile, error) {
	if len(l.runs) == 0 {
		return nil, fmt.Errorf("logger: no completed profiling runs")
	}
	combined := profile.New(l.runs[0].App, l.classifier)
	for _, r := range l.runs {
		if err := combined.Merge(r); err != nil {
			return nil, err
		}
	}
	return combined, nil
}

// FaultRecord describes one injected or simulated network fault and the
// runtime's reaction to it, so chaos runs leave an auditable trail.
type FaultRecord struct {
	// Kind is "drop", "corrupt", or "giveup" (attempt budget exhausted).
	Kind string
	// Attempt is the 1-based delivery attempt the fault hit.
	Attempt int
	// Bytes is the affected message's payload size.
	Bytes int
	// Penalty is the time the fault cost (timeout wait, wasted transfer).
	Penalty time.Duration
}

// FaultSink receives fault events. It is deliberately separate from
// Logger so existing loggers stay source-compatible; sinks are discovered
// with a type assertion.
type FaultSink interface {
	Fault(rec FaultRecord)
}

// MutationRecord describes one observed state mutation: the named method
// of an instance under the given classification wrote its state.
type MutationRecord struct {
	Classification string
	Class          string
	Method         string
}

// MutationSink receives state-mutation events. Like FaultSink it is
// separate from Logger so existing loggers stay source-compatible; sinks
// are discovered with a type assertion.
type MutationSink interface {
	Mutation(rec MutationRecord)
}

// EventKind enumerates trace event types.
type EventKind int

// Trace event kinds.
const (
	EvBegin EventKind = iota
	EvInstantiation
	EvCall
	EvRelease
	EvEnd
	// EvFault records an injected network fault (chaos runs).
	EvFault
)

// Event is one entry of an event-logger trace.
type Event struct {
	Kind  EventKind
	Inst  InstRecord
	Call  CallRecord
	Fault FaultRecord
	App   string
	Scen  string
}

// EventLogger creates detailed traces of all component-related events; a
// colleague used such logs to drive application simulations (paper §3.3).
// The trace can be replayed by the dist package's replayer.
type EventLogger struct {
	Events []Event
	w      io.Writer // optional live text sink
}

// NewEventLogger returns an event logger; w may be nil.
func NewEventLogger(w io.Writer) *EventLogger { return &EventLogger{w: w} }

// BeginRun implements Logger.
func (l *EventLogger) BeginRun(app, scenario string) {
	l.Events = append(l.Events, Event{Kind: EvBegin, App: app, Scen: scenario})
	if l.w != nil {
		fmt.Fprintf(l.w, "begin %s %s\n", app, scenario)
	}
}

// Instantiation implements Logger.
func (l *EventLogger) Instantiation(rec InstRecord) {
	l.Events = append(l.Events, Event{Kind: EvInstantiation, Inst: rec})
	if l.w != nil {
		fmt.Fprintf(l.w, "create #%d %s as %s\n", rec.ID, rec.Class, rec.Classification)
	}
}

// Call implements Logger.
func (l *EventLogger) Call(rec CallRecord) {
	l.Events = append(l.Events, Event{Kind: EvCall, Call: rec})
	if l.w != nil {
		fmt.Fprintf(l.w, "call #%d->#%d %s.%s in=%d out=%d\n",
			rec.SrcInst, rec.DstInst, rec.IID, rec.Method, rec.InBytes, rec.OutBytes)
	}
}

// Release implements Logger.
func (l *EventLogger) Release(instID uint64) {
	l.Events = append(l.Events, Event{Kind: EvRelease, Inst: InstRecord{ID: instID}})
	if l.w != nil {
		fmt.Fprintf(l.w, "release #%d\n", instID)
	}
}

// EndRun implements Logger.
func (l *EventLogger) EndRun() {
	l.Events = append(l.Events, Event{Kind: EvEnd})
	if l.w != nil {
		fmt.Fprintln(l.w, "end")
	}
}

// Fault implements FaultSink: injected faults become trace entries.
func (l *EventLogger) Fault(rec FaultRecord) {
	l.Events = append(l.Events, Event{Kind: EvFault, Fault: rec})
	if l.w != nil {
		fmt.Fprintf(l.w, "fault %s attempt=%d bytes=%d penalty=%v\n",
			rec.Kind, rec.Attempt, rec.Bytes, rec.Penalty)
	}
}

// Multi fans events out to several loggers.
type Multi []Logger

// BeginRun implements Logger.
func (m Multi) BeginRun(app, scenario string) {
	for _, l := range m {
		l.BeginRun(app, scenario)
	}
}

// Instantiation implements Logger.
func (m Multi) Instantiation(rec InstRecord) {
	for _, l := range m {
		l.Instantiation(rec)
	}
}

// Call implements Logger.
func (m Multi) Call(rec CallRecord) {
	for _, l := range m {
		l.Call(rec)
	}
}

// Release implements Logger.
func (m Multi) Release(id uint64) {
	for _, l := range m {
		l.Release(id)
	}
}

// EndRun implements Logger.
func (m Multi) EndRun() {
	for _, l := range m {
		l.EndRun()
	}
}

// Fault implements FaultSink, forwarding to members that are sinks.
func (m Multi) Fault(rec FaultRecord) {
	for _, l := range m {
		if fs, ok := l.(FaultSink); ok {
			fs.Fault(rec)
		}
	}
}

// Mutation implements MutationSink, forwarding to members that are sinks.
func (m Multi) Mutation(rec MutationRecord) {
	for _, l := range m {
		if ms, ok := l.(MutationSink); ok {
			ms.Mutation(rec)
		}
	}
}
