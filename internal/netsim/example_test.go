package netsim_test

import (
	"fmt"
	"time"

	"repro/internal/netsim"
)

// Network generations shift the bandwidth-to-latency trade-off: a chatty
// exchange of 100 tiny messages versus one bulk transfer of the same total
// payload invert in cost between ISDN and a SAN.
func ExampleModel_MessageTime() {
	chattyOnISDN := 100 * netsim.ISDN.MessageTime(100)
	bulkOnISDN := netsim.ISDN.MessageTime(100 * 100)
	fmt.Println("ISDN: chatty > 10x bulk:", chattyOnISDN > 10*bulkOnISDN)

	chattyOnSAN := 100 * netsim.SAN.MessageTime(100)
	bulkOnSAN := netsim.SAN.MessageTime(100 * 100)
	fmt.Println("SAN:  chatty > 10x bulk:", chattyOnSAN > 10*bulkOnSAN)
	// Output:
	// ISDN: chatty > 10x bulk: false
	// SAN:  chatty > 10x bulk: true
}

// The network profiler samples message costs and answers arbitrary sizes
// by piecewise-linear interpolation.
func ExampleSample() {
	measure := func(size int) time.Duration {
		return time.Millisecond + time.Duration(size)*time.Microsecond
	}
	p, err := netsim.Sample("affine", measure, []int{0, 1000, 4000}, 5)
	if err != nil {
		panic(err)
	}
	fmt.Println(p.MessageTime(0))
	fmt.Println(p.MessageTime(2000)) // interpolated between samples
	// Output:
	// 1ms
	// 3ms
}
