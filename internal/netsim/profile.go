package netsim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Profile is the output of the network profiler: sampled mean message
// times at representative sizes. The profile analysis engine predicts the
// cost of an arbitrary message by piecewise-linear interpolation, so
// predictions carry a small sampling error relative to the true network —
// one of the real sources of the predicted-vs-measured gap in Table 5.
type Profile struct {
	Name   string
	Points []ProfilePoint // sorted by ascending size
}

// ProfilePoint is the sampled mean one-way time for one message size.
type ProfilePoint struct {
	Size int
	Time time.Duration
}

// DefaultSampleSizes are the representative DCOM message sizes the profiler
// measures, spanning null RPCs to bulk transfers.
var DefaultSampleSizes = []int{0, 64, 256, 1024, 4096, 16384, 65536, 262144}

// MeasureFunc observes the one-way time of a single message of the given
// payload size. Implementations exist for simulated models
// (Model.SampleMessageTime) and for the loopback-TCP transport.
type MeasureFunc func(size int) time.Duration

// Sample builds a profile by taking `samples` observations at each size and
// recording the trimmed mean (drop min and max when samples >= 4, as a
// cheap robust estimator against scheduling outliers).
func Sample(name string, measure MeasureFunc, sizes []int, samples int) (*Profile, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("netsim: no sample sizes")
	}
	if samples < 1 {
		return nil, fmt.Errorf("netsim: samples must be positive, got %d", samples)
	}
	p := &Profile{Name: name, Points: make([]ProfilePoint, 0, len(sizes))}
	sorted := append([]int(nil), sizes...)
	sort.Ints(sorted)
	for _, sz := range sorted {
		obs := make([]time.Duration, samples)
		for i := range obs {
			obs[i] = measure(sz)
		}
		p.Points = append(p.Points, ProfilePoint{Size: sz, Time: trimmedMean(obs)})
	}
	return p, nil
}

// SampleModel profiles a simulated network model.
func SampleModel(m *Model, rng *rand.Rand, sizes []int, samples int) (*Profile, error) {
	return Sample(m.Name, func(sz int) time.Duration {
		return m.SampleMessageTime(sz, rng)
	}, sizes, samples)
}

func trimmedMean(obs []time.Duration) time.Duration {
	if len(obs) == 0 {
		return 0
	}
	sort.Slice(obs, func(i, j int) bool { return obs[i] < obs[j] })
	lo, hi := 0, len(obs)
	if len(obs) >= 4 {
		lo, hi = 1, len(obs)-1
	}
	var sum time.Duration
	for _, o := range obs[lo:hi] {
		sum += o
	}
	return sum / time.Duration(hi-lo)
}

// MessageTime predicts the one-way cost of a message of the given size by
// piecewise-linear interpolation between sampled points, extrapolating the
// last segment's slope beyond the largest sample.
func (p *Profile) MessageTime(bytes int) time.Duration {
	if len(p.Points) == 0 {
		return 0
	}
	if bytes < 0 {
		bytes = 0
	}
	pts := p.Points
	if bytes <= pts[0].Size {
		return pts[0].Time
	}
	for i := 1; i < len(pts); i++ {
		if bytes <= pts[i].Size {
			return lerp(pts[i-1], pts[i], bytes)
		}
	}
	if len(pts) == 1 {
		return pts[0].Time
	}
	// Extrapolate using the final segment's marginal cost per byte.
	a, b := pts[len(pts)-2], pts[len(pts)-1]
	return lerp(a, b, bytes)
}

func lerp(a, b ProfilePoint, x int) time.Duration {
	if b.Size == a.Size {
		return b.Time
	}
	frac := float64(x-a.Size) / float64(b.Size-a.Size)
	return a.Time + time.Duration(frac*float64(b.Time-a.Time))
}

// RoundTripTime predicts a synchronous call's cost from the profile.
func (p *Profile) RoundTripTime(inBytes, outBytes int) time.Duration {
	return p.MessageTime(inBytes) + p.MessageTime(outBytes)
}

// ExactProfile builds a profile that reproduces a model's mean exactly at
// the given sizes (no sampling noise). Useful for tests and for the
// ablation comparing sampled against oracle network knowledge.
func ExactProfile(m *Model, sizes []int) *Profile {
	p := &Profile{Name: m.Name + "-exact"}
	sorted := append([]int(nil), sizes...)
	sort.Ints(sorted)
	for _, sz := range sorted {
		p.Points = append(p.Points, ProfilePoint{Size: sz, Time: m.MessageTime(sz)})
	}
	return p
}

// String renders the profile as a table.
func (p *Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "network profile %s:", p.Name)
	for _, pt := range p.Points {
		fmt.Fprintf(&b, " %d=%v", pt.Size, pt.Time)
	}
	return b.String()
}
