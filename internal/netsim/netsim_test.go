package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestMessageTimeComposition(t *testing.T) {
	t.Parallel()
	m := &Model{Name: "t", Latency: time.Millisecond, Bandwidth: 1e6,
		PerMessageCPU: 500 * time.Microsecond}
	// 0 bytes: latency + cpu only.
	if got := m.MessageTime(0); got != 1500*time.Microsecond {
		t.Errorf("null message = %v", got)
	}
	// 1 MB at 1 MB/s: one extra second.
	if got := m.MessageTime(1e6); got != time.Second+1500*time.Microsecond {
		t.Errorf("1MB message = %v", got)
	}
	// Negative clamps to zero.
	if got := m.MessageTime(-5); got != m.MessageTime(0) {
		t.Errorf("negative size = %v", got)
	}
}

func TestRoundTripTime(t *testing.T) {
	t.Parallel()
	m := TenBaseT
	if got, want := m.RoundTripTime(100, 200), m.MessageTime(100)+m.MessageTime(200); got != want {
		t.Errorf("RTT = %v, want %v", got, want)
	}
}

func TestModelsCatalog(t *testing.T) {
	t.Parallel()
	all := Models()
	if len(all) != 6 {
		t.Fatalf("Models() has %d entries", len(all))
	}
	m, err := ByName("10BaseT")
	if err != nil || m != TenBaseT {
		t.Fatalf("ByName(10BaseT) = %v, %v", m, err)
	}
	if _, err := ByName("carrier-pigeon"); err == nil {
		t.Fatal("unknown model found")
	}
	// The paper's premise: bandwidth-to-latency ratios differ by more than
	// an order of magnitude across network generations.
	isdnRatio := ISDN.Bandwidth / ISDN.Latency.Seconds()
	sanRatio := SAN.Bandwidth / SAN.Latency.Seconds()
	if sanRatio/isdnRatio < 10 {
		t.Errorf("ISDN and SAN bandwidth-to-latency ratios too similar: %v vs %v", isdnRatio, sanRatio)
	}
}

func TestNullRTTCalibration(t *testing.T) {
	t.Parallel()
	// DCOM null RPC on the paper's testbed is on the order of 2 ms.
	rtt := TenBaseT.RoundTripTime(0, 0)
	if rtt < time.Millisecond || rtt > 4*time.Millisecond {
		t.Errorf("10BaseT null RTT = %v, want ~2ms", rtt)
	}
}

func TestSampleMessageTime(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(1))
	m := TenBaseT
	mean := m.MessageTime(1024)
	var sum time.Duration
	n := 2000
	for i := 0; i < n; i++ {
		s := m.SampleMessageTime(1024, rng)
		if s < mean/2 {
			t.Fatalf("sample %v below floor %v", s, mean/2)
		}
		sum += s
	}
	avg := sum / time.Duration(n)
	if avg < time.Duration(float64(mean)*0.97) || avg > time.Duration(float64(mean)*1.03) {
		t.Errorf("sample mean %v far from model mean %v", avg, mean)
	}
	// Zero jitter or nil rng: deterministic.
	noJitter := &Model{Latency: time.Millisecond, Bandwidth: 1e6}
	if noJitter.SampleMessageTime(10, rng) != noJitter.MessageTime(10) {
		t.Error("zero-jitter sample differs from mean")
	}
	if m.SampleMessageTime(10, nil) != m.MessageTime(10) {
		t.Error("nil-rng sample differs from mean")
	}
}

func TestSampleProfileApproximatesModel(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	p, err := SampleModel(TenBaseT, rng, DefaultSampleSizes, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Points) != len(DefaultSampleSizes) {
		t.Fatalf("points = %d", len(p.Points))
	}
	for _, sz := range []int{0, 100, 1000, 30000, 500000} {
		got := p.MessageTime(sz)
		want := TenBaseT.MessageTime(sz)
		ratio := float64(got) / float64(want)
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("size %d: profile %v vs model %v (ratio %.2f)", sz, got, want, ratio)
		}
	}
}

func TestSampleErrors(t *testing.T) {
	t.Parallel()
	if _, err := Sample("x", nil, nil, 3); err == nil {
		t.Error("no sizes accepted")
	}
	if _, err := Sample("x", func(int) time.Duration { return 0 }, []int{1}, 0); err == nil {
		t.Error("zero samples accepted")
	}
}

func TestTrimmedMean(t *testing.T) {
	t.Parallel()
	obs := []time.Duration{10, 1, 100, 12, 11} // outliers 1 and 100 dropped
	if got := trimmedMean(obs); got != 11 {
		t.Errorf("trimmedMean = %v", got)
	}
	if got := trimmedMean([]time.Duration{5, 7}); got != 6 {
		t.Errorf("trimmedMean short = %v", got)
	}
	if got := trimmedMean(nil); got != 0 {
		t.Errorf("trimmedMean nil = %v", got)
	}
}

func TestExactProfileInterpolation(t *testing.T) {
	t.Parallel()
	p := ExactProfile(TenBaseT, DefaultSampleSizes)
	// At sampled sizes the profile is exact.
	for _, sz := range DefaultSampleSizes {
		if got, want := p.MessageTime(sz), TenBaseT.MessageTime(sz); got != want {
			t.Errorf("size %d: %v != %v", sz, got, want)
		}
	}
	// The model is affine in size, so linear interpolation is exact
	// between points too (within rounding).
	for _, sz := range []int{32, 500, 3000, 100000} {
		got := p.MessageTime(sz)
		want := TenBaseT.MessageTime(sz)
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		if diff > time.Microsecond {
			t.Errorf("size %d: interp %v vs model %v", sz, got, want)
		}
	}
	// Extrapolation beyond the last point follows the marginal slope.
	got := p.MessageTime(1 << 20)
	want := TenBaseT.MessageTime(1 << 20)
	ratio := float64(got) / float64(want)
	if ratio < 0.99 || ratio > 1.01 {
		t.Errorf("extrapolated %v vs model %v", got, want)
	}
}

func TestProfileEdgeCases(t *testing.T) {
	t.Parallel()
	empty := &Profile{}
	if empty.MessageTime(100) != 0 {
		t.Error("empty profile nonzero")
	}
	single := &Profile{Points: []ProfilePoint{{Size: 10, Time: time.Millisecond}}}
	if single.MessageTime(5) != time.Millisecond || single.MessageTime(50) != time.Millisecond {
		t.Error("single-point profile should be constant")
	}
	if single.MessageTime(-1) != time.Millisecond {
		t.Error("negative size not clamped")
	}
	p := ExactProfile(TenBaseT, DefaultSampleSizes)
	if got, want := p.RoundTripTime(10, 20), p.MessageTime(10)+p.MessageTime(20); got != want {
		t.Error("profile RTT not additive")
	}
}

func TestPropertyMessageTimeMonotone(t *testing.T) {
	t.Parallel()
	// Larger messages never cost less, for models and profiles alike.
	p := ExactProfile(TenBaseT, DefaultSampleSizes)
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return TenBaseT.MessageTime(x) <= TenBaseT.MessageTime(y) &&
			p.MessageTime(x) <= p.MessageTime(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStringers(t *testing.T) {
	t.Parallel()
	if s := TenBaseT.String(); s == "" {
		t.Error("model String empty")
	}
	p := ExactProfile(TenBaseT, []int{0, 64})
	if s := p.String(); s == "" {
		t.Error("profile String empty")
	}
}
