// Package netsim models the networks Coign distributes applications
// across, and implements the network profiler that statistically samples
// message round-trip times to build the cost model the profile analysis
// engine consumes.
//
// The paper's testbed was a pair of 200 MHz Pentium PCs on an isolated
// 10BaseT Ethernet; message cost there is dominated by per-message RPC
// latency plus size/bandwidth. The models here parameterize that trade-off
// so the adaptive-repartitioning experiments (paper §4.4: ISDN → 100BaseT →
// ATM → SAN shift bandwidth-to-latency ratios by more than an order of
// magnitude) can be reproduced.
package netsim

import (
	"fmt"
	"math/rand"
	"time"
)

// Model is a parametric network between two machines.
type Model struct {
	Name string
	// Latency is the one-way wire latency per message.
	Latency time.Duration
	// Bandwidth is the effective payload bandwidth in bytes per second.
	Bandwidth float64
	// PerMessageCPU is the processor cost of marshaling, protocol
	// processing, and thread switching per message (paid once per message,
	// independent of size).
	PerMessageCPU time.Duration
	// Jitter is the relative standard deviation applied to sampled message
	// times. Deterministic predictions use the mean; measured executions
	// sample.
	Jitter float64
	// Loss is the per-message loss probability of the link. The mean-time
	// cost model ignores it; fault-injected runs (internal/fault.FromModel,
	// dist.FaultPolicy) map it into drop/corruption rates so degraded links
	// can be both simulated and survived.
	Loss float64
}

// Predefined network models. Parameters are calibrated so that the DCOM
// null round trip on TenBaseT is ~2 ms and bulk transfer reaches ~1.1 MB/s,
// matching mid-1990s NT4/DCOM measurements on 200 MHz hardware.
var (
	// TenBaseT is the paper's experimental network: isolated 10 Mb/s
	// Ethernet between two equal desktops.
	TenBaseT = &Model{
		Name:          "10BaseT",
		Latency:       350 * time.Microsecond,
		Bandwidth:     1.1e6,
		PerMessageCPU: 650 * time.Microsecond,
		Jitter:        0.05,
		Loss:          0.0002,
	}
	// HundredBaseT is switched 100 Mb/s Ethernet.
	HundredBaseT = &Model{
		Name:          "100BaseT",
		Latency:       120 * time.Microsecond,
		Bandwidth:     11.0e6,
		PerMessageCPU: 600 * time.Microsecond,
		Jitter:        0.05,
		Loss:          0.0001,
	}
	// ISDN is a 128 kb/s wide-area link: high latency, low bandwidth.
	ISDN = &Model{
		Name:          "ISDN",
		Latency:       15 * time.Millisecond,
		Bandwidth:     15.0e3,
		PerMessageCPU: 650 * time.Microsecond,
		Jitter:        0.10,
		Loss:          0.005,
	}
	// ATM155 is 155 Mb/s ATM: low latency, high bandwidth.
	ATM155 = &Model{
		Name:          "ATM",
		Latency:       50 * time.Microsecond,
		Bandwidth:     17.0e6,
		PerMessageCPU: 550 * time.Microsecond,
		Jitter:        0.04,
		Loss:          0.00005,
	}
	// SAN is a system-area network with user-level messaging.
	SAN = &Model{
		Name:          "SAN",
		Latency:       10 * time.Microsecond,
		Bandwidth:     40.0e6,
		PerMessageCPU: 80 * time.Microsecond,
		Jitter:        0.03,
		Loss:          0.00001,
	}
	// Loopback approximates same-machine cross-process DCOM (LRPC).
	Loopback = &Model{
		Name:          "loopback",
		Latency:       5 * time.Microsecond,
		Bandwidth:     120.0e6,
		PerMessageCPU: 45 * time.Microsecond,
		Jitter:        0.02,
		Loss:          0,
	}
)

// Models returns the predefined models keyed by name.
func Models() map[string]*Model {
	return map[string]*Model{
		TenBaseT.Name:     TenBaseT,
		HundredBaseT.Name: HundredBaseT,
		ISDN.Name:         ISDN,
		ATM155.Name:       ATM155,
		SAN.Name:          SAN,
		Loopback.Name:     Loopback,
	}
}

// ByName returns the predefined model with the given name.
func ByName(name string) (*Model, error) {
	if m, ok := Models()[name]; ok {
		return m, nil
	}
	return nil, fmt.Errorf("netsim: unknown network model %q", name)
}

// MessageTime returns the mean one-way cost of moving a message of the
// given payload size: per-message CPU + wire latency + transmission time.
func (m *Model) MessageTime(bytes int) time.Duration {
	if bytes < 0 {
		bytes = 0
	}
	tx := time.Duration(float64(bytes) / m.Bandwidth * float64(time.Second))
	return m.PerMessageCPU + m.Latency + tx
}

// RoundTripTime returns the mean cost of a synchronous interface call that
// sends inBytes of parameters and receives outBytes of results. Each
// direction is a message.
func (m *Model) RoundTripTime(inBytes, outBytes int) time.Duration {
	return m.MessageTime(inBytes) + m.MessageTime(outBytes)
}

// SampleMessageTime returns one stochastic observation of the one-way cost,
// applying the model's jitter. Samples never fall below half the mean.
func (m *Model) SampleMessageTime(bytes int, rng *rand.Rand) time.Duration {
	mean := m.MessageTime(bytes)
	if m.Jitter <= 0 || rng == nil {
		return mean
	}
	f := 1 + rng.NormFloat64()*m.Jitter
	if f < 0.5 {
		f = 0.5
	}
	return time.Duration(float64(mean) * f)
}

// String summarizes the model.
func (m *Model) String() string {
	return fmt.Sprintf("%s(lat=%v bw=%.1fKB/s cpu=%v)",
		m.Name, m.Latency, m.Bandwidth/1e3, m.PerMessageCPU)
}
