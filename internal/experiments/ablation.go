package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/scenario"
)

// Ablations for the design choices DESIGN.md calls out: the graph-cutting
// algorithm, the exponential message-size bucketing, and the sampled
// network profile.

// MinCutComparison cross-checks the lift-to-front algorithm against the
// Edmonds–Karp baseline on a scenario's concrete graph.
type MinCutComparison struct {
	Scenario     string
	Nodes, Edges int
	LiftToFront  time.Duration
	EdmondsKarp  time.Duration
	WeightLTF    float64
	WeightEK     float64
	WeightsAgree bool
}

// CompareMinCut builds the concrete ICC graph of one scenario and times
// both exact minimum-cut implementations.
func CompareMinCut(scenName string) (*MinCutComparison, error) {
	info, err := scenario.Lookup(scenName)
	if err != nil {
		return nil, err
	}
	app, err := scenario.NewApp(info.App)
	if err != nil {
		return nil, err
	}
	adps := core.New(app)
	if err := adps.Instrument(); err != nil {
		return nil, err
	}
	p, _, err := adps.ProfileScenario(scenName, false)
	if err != nil {
		return nil, err
	}
	np := netsim.ExactProfile(netsim.TenBaseT, netsim.DefaultSampleSizes)
	build := func() *graph.Graph {
		g, _ := analysis.BuildGraph(p, np, app.Classes, analysis.Options{})
		return g
	}

	cmp := &MinCutComparison{Scenario: scenName}
	g := build()
	cmp.Nodes, cmp.Edges = g.Len(), g.Edges()

	start := time.Now()
	ltf, err := g.MinCut()
	if err != nil {
		return nil, err
	}
	cmp.LiftToFront = time.Since(start)
	cmp.WeightLTF = ltf.Weight

	g2 := build()
	start = time.Now()
	ek, err := g2.MinCutEdmondsKarp()
	if err != nil {
		return nil, err
	}
	cmp.EdmondsKarp = time.Since(start)
	cmp.WeightEK = ek.Weight
	cmp.WeightsAgree = math.Abs(ltf.Weight-ek.Weight) <= 1e-6*(1+ltf.Weight)
	return cmp, nil
}

// BucketingComparison reports predicted communication time with
// exponential bucket pricing versus exact byte totals.
type BucketingComparison struct {
	Scenario      string
	BucketedComm  time.Duration
	ExactComm     time.Duration
	RelativeError float64 // |bucketed-exact| / exact
	SamePlacement bool
}

// CompareBucketing runs the analysis twice — bucket representatives versus
// exact byte totals — and compares predictions and placements.
func CompareBucketing(scenName string) (*BucketingComparison, error) {
	info, err := scenario.Lookup(scenName)
	if err != nil {
		return nil, err
	}
	app, err := scenario.NewApp(info.App)
	if err != nil {
		return nil, err
	}
	adps := core.New(app)
	if err := adps.Instrument(); err != nil {
		return nil, err
	}
	p, _, err := adps.ProfileScenario(scenName, false)
	if err != nil {
		return nil, err
	}
	bucketed, err := adps.Analyze(context.Background(), p)
	if err != nil {
		return nil, err
	}
	adps.AnalysisOptions.ExactPricing = true
	exact, err := adps.Analyze(context.Background(), p)
	if err != nil {
		return nil, err
	}
	cmp := &BucketingComparison{
		Scenario:     scenName,
		BucketedComm: bucketed.PredictedComm,
		ExactComm:    exact.PredictedComm,
	}
	if exact.PredictedComm > 0 {
		cmp.RelativeError = math.Abs(float64(bucketed.PredictedComm-exact.PredictedComm)) /
			float64(exact.PredictedComm)
	}
	cmp.SamePlacement = true
	for id, m := range bucketed.Distribution {
		if exact.Distribution[id] != m {
			cmp.SamePlacement = false
			break
		}
	}
	return cmp, nil
}

// NetProfileComparison reports how a sampled network profile's prediction
// differs from an oracle (exact-mean) profile.
type NetProfileComparison struct {
	Scenario      string
	SampledComm   time.Duration
	OracleComm    time.Duration
	RelativeError float64
	SamePlacement bool
}

// CompareNetworkProfile analyzes one scenario under a statistically
// sampled network profile and under the exact model means.
func CompareNetworkProfile(scenName string, samples int) (*NetProfileComparison, error) {
	info, err := scenario.Lookup(scenName)
	if err != nil {
		return nil, err
	}
	app, err := scenario.NewApp(info.App)
	if err != nil {
		return nil, err
	}
	adps := core.New(app)
	adps.Samples = samples
	if err := adps.Instrument(); err != nil {
		return nil, err
	}
	p, _, err := adps.ProfileScenario(scenName, false)
	if err != nil {
		return nil, err
	}
	sampled, err := adps.Analyze(context.Background(), p)
	if err != nil {
		return nil, err
	}
	adps.NetProfile = netsim.ExactProfile(netsim.TenBaseT, netsim.DefaultSampleSizes)
	oracle, err := adps.Analyze(context.Background(), p)
	if err != nil {
		return nil, err
	}
	cmp := &NetProfileComparison{
		Scenario:    scenName,
		SampledComm: sampled.PredictedComm,
		OracleComm:  oracle.PredictedComm,
	}
	if oracle.PredictedComm > 0 {
		cmp.RelativeError = math.Abs(float64(sampled.PredictedComm-oracle.PredictedComm)) /
			float64(oracle.PredictedComm)
	}
	cmp.SamePlacement = true
	for id, m := range sampled.Distribution {
		if oracle.Distribution[id] != m {
			cmp.SamePlacement = false
			break
		}
	}
	return cmp, nil
}

// SyntheticCutInstance builds a random two-terminal graph of the given
// size for min-cut scaling benchmarks.
func SyntheticCutInstance(nodes int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	g.Pin("client", graph.SourceSide)
	g.Pin("server", graph.SinkSide)
	name := func(i int) string { return fmt.Sprintf("n%05d", i) }
	for i := 0; i < nodes; i++ {
		if i%13 == 0 {
			g.AddEdge("client", name(i), rng.Float64()*5)
		}
		if i%17 == 0 {
			g.AddEdge(name(i), "server", rng.Float64()*5)
		}
		for k := 0; k < 3; k++ {
			g.AddEdge(name(i), name(rng.Intn(nodes)), rng.Float64())
		}
	}
	return g
}

// CachingComparison reports the effect of per-interface caching
// (semi-custom marshaling) on a Coign distribution's communication.
type CachingComparison struct {
	Scenario  string
	Plain     time.Duration
	Cached    time.Duration
	CacheHits int64
	Savings   float64
}

// CompareCaching runs one scenario's Coign distribution with and without
// per-interface caching on its cacheable methods.
func CompareCaching(scenName string) (*CachingComparison, error) {
	info, err := scenario.Lookup(scenName)
	if err != nil {
		return nil, err
	}
	app, err := scenario.NewApp(info.App)
	if err != nil {
		return nil, err
	}
	adps := core.New(app)
	if err := adps.Instrument(); err != nil {
		return nil, err
	}
	p, _, err := adps.ProfileScenario(scenName, false)
	if err != nil {
		return nil, err
	}
	res, err := adps.Analyze(context.Background(), p)
	if err != nil {
		return nil, err
	}
	if err := adps.WriteDistribution(res); err != nil {
		return nil, err
	}
	plain, err := adps.RunDistributed(scenName, false)
	if err != nil {
		return nil, err
	}
	adps.EnableCaching = true
	cached, err := adps.RunDistributed(scenName, false)
	if err != nil {
		return nil, err
	}
	cmp := &CachingComparison{
		Scenario:  scenName,
		Plain:     plain.Clock.CommTime(),
		Cached:    cached.Clock.CommTime(),
		CacheHits: cached.CacheHits,
	}
	if plain.Clock.CommTime() > 0 {
		cmp.Savings = 1 - float64(cached.Clock.CommTime())/float64(plain.Clock.CommTime())
	}
	return cmp, nil
}
