package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/classify"
	"repro/internal/com"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/profile"
	"repro/internal/scenario"
)

// Three-machine partitioning. The paper restricts its exact algorithm to
// two-way client/server cuts and notes that partitioning across three or
// more machines is NP-hard, naming multiway heuristics as the path
// forward. This experiment carries the Benefits application all the way:
// the isolation-heuristic multiway cut assigns every classification to
// client, middle tier, or database server, and the resulting three-machine
// distribution is then actually executed on the simulator.

// ThreeTierResult reports the multiway experiment.
type ThreeTierResult struct {
	// PerMachine counts application components per machine.
	PerMachine map[com.Machine]int
	// CutWeight is the predicted cross-machine communication (seconds).
	CutWeight float64
	// Comm is the measured communication time of the executed three-way
	// distribution; TwoWayComm the measured time of the exact two-way cut
	// on the same scenario for comparison.
	Comm       time.Duration
	TwoWayComm time.Duration
	Violations int
}

// ThreeTier partitions and executes the Benefits bigone scenario across
// three machines.
func ThreeTier(ctx context.Context) (*ThreeTierResult, error) {
	app, err := scenario.NewApp("benefits")
	if err != nil {
		return nil, err
	}
	big, err := scenario.BigoneForApp("benefits")
	if err != nil {
		return nil, err
	}
	prof, err := dist.Run(dist.Config{
		App: app, Scenario: big, Seed: 1, Mode: dist.ModeProfiling,
		Classifier: classify.New(classify.IFCB, 0),
	})
	if err != nil {
		return nil, err
	}
	p := prof.Profile
	np := netsim.ExactProfile(netsim.TenBaseT, netsim.DefaultSampleSizes)

	// Terminals: the GUI-pinned front end belongs to the client, the
	// employee manager anchors the middle tier, and the database engine
	// anchors its server.
	g := graph.New()
	clientPins := []string{profile.MainProgram}
	var middlePins, dbPins []string
	g.Node(profile.MainProgram)
	for id, ci := range p.Classifications {
		g.Node(id)
		cl := app.Classes.LookupName(ci.Class)
		switch {
		case cl == nil:
		case cl.Infrastructure:
			dbPins = append(dbPins, id)
		case cl.Home == com.Client:
			clientPins = append(clientPins, id)
		case ci.Class == "EmployeeManager":
			middlePins = append(middlePins, id)
		}
	}
	for k, e := range p.Edges {
		g.AddEdge(k.Src, k.Dst, e.Time(np).Seconds())
		if e.NonRemotable {
			g.CoLocate(k.Src, k.Dst)
		}
	}
	assign, weight, err := g.MultiwayCutCtx(ctx, []graph.MultiwayTerminal{
		{Machine: "client", Pinned: clientPins},
		{Machine: "middle", Pinned: middlePins},
		{Machine: "dbserver", Pinned: dbPins},
	})
	if err != nil {
		return nil, err
	}

	machineOf := map[string]com.Machine{
		"client":   com.Client,
		"middle":   com.Middle,
		"dbserver": com.Server,
	}
	distMap := make(map[string]com.Machine, len(assign))
	for id, m := range assign {
		if id == profile.MainProgram {
			continue
		}
		mm, ok := machineOf[m]
		if !ok {
			return nil, fmt.Errorf("experiments: multiway produced unknown machine %q", m)
		}
		distMap[id] = mm
	}

	run, err := dist.Run(dist.Config{
		App: app, Scenario: big, Seed: 1, Mode: dist.ModeCoign,
		Classifier:   classify.New(classify.IFCB, 0),
		Distribution: distMap,
	})
	if err != nil {
		return nil, err
	}

	// Two-way comparison: the exact cut between client and a merged
	// middle+database side.
	twoWay, err := RunScenario(ctx, big)
	if err != nil {
		return nil, err
	}

	return &ThreeTierResult{
		PerMachine: run.AppPerMachine,
		CutWeight:  weight,
		Comm:       run.Clock.CommTime(),
		TwoWayComm: twoWay.CoignComm,
		Violations: run.Violations,
	}, nil
}
