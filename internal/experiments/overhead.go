package experiments

import (
	"fmt"
	"time"

	"repro/internal/classify"
	"repro/internal/dist"
	"repro/internal/scenario"
)

// Instrumentation overhead (paper §3.2): scenario-based profiling adds up
// to 85% to execution time (typically closer to 45%), nearly all of it in
// the profiling interface informer's parameter walks; the distribution
// informer that stays in the application afterwards costs under 3%. We
// measure real (host) wall time of the same scenario under the three
// configurations.

// OverheadRow reports relative instrumentation overheads for one scenario.
type OverheadRow struct {
	Scenario             string
	Bare                 time.Duration
	Profiling            time.Duration
	Distribution         time.Duration
	ProfilingOverhead    float64 // (profiling-bare)/bare
	DistributionOverhead float64 // (distribution-bare)/bare
}

// MeasureOverhead runs one scenario repeatedly under the bare, profiling,
// and distribution-informer configurations and reports median wall times.
func MeasureOverhead(scenName string, reps int) (*OverheadRow, error) {
	info, err := scenario.Lookup(scenName)
	if err != nil {
		return nil, err
	}
	if reps < 1 {
		reps = 1
	}
	run := func(mode dist.Mode) (time.Duration, error) {
		best := time.Duration(1<<62 - 1)
		for i := 0; i < reps; i++ {
			app, err := scenario.NewApp(info.App)
			if err != nil {
				return 0, err
			}
			cfg := dist.Config{App: app, Scenario: scenName, Mode: mode}
			if mode != dist.ModeBare {
				cfg.Classifier = classify.New(classify.IFCB, 0)
			}
			res, err := dist.Run(cfg)
			if err != nil {
				return 0, err
			}
			if res.WallTime < best {
				best = res.WallTime
			}
		}
		return best, nil
	}
	bare, err := run(dist.ModeBare)
	if err != nil {
		return nil, err
	}
	prof, err := run(dist.ModeProfiling)
	if err != nil {
		return nil, err
	}
	distr, err := run(dist.ModeDefault) // lightweight distribution informer
	if err != nil {
		return nil, err
	}
	row := &OverheadRow{
		Scenario:     scenName,
		Bare:         bare,
		Profiling:    prof,
		Distribution: distr,
	}
	if bare > 0 {
		row.ProfilingOverhead = float64(prof-bare) / float64(bare)
		row.DistributionOverhead = float64(distr-bare) / float64(bare)
	}
	return row, nil
}

// PrintOverhead renders an overhead row.
func (r *OverheadRow) String() string {
	return fmt.Sprintf("%s: bare=%v profiling=%v (+%.0f%%) distribution=%v (+%.0f%%)",
		r.Scenario, r.Bare, r.Profiling, r.ProfilingOverhead*100,
		r.Distribution, r.DistributionOverhead*100)
}
