package experiments

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/synthapp"
)

// TestPipelinePropertyAllFamilies drives the full pipeline over every
// generator family for a handful of seeds; the CI pipeline-property job
// runs the same harness over the wide seed matrix via `coign synth
// -harness`.
func TestPipelinePropertyAllFamilies(t *testing.T) {
	t.Parallel()
	for _, fam := range synthapp.Families() {
		for seed := int64(0); seed < 3; seed++ {
			fam, seed := fam, seed
			t.Run(fmt.Sprintf("%s/seed%d", fam, seed), func(t *testing.T) {
				t.Parallel()
				rep, err := RunPipelineProperty(context.Background(), synthapp.Config{Family: fam, Seed: seed})
				if err != nil {
					t.Fatalf("pipeline: %v", err)
				}
				for _, c := range rep.Checks {
					if !c.OK {
						t.Errorf("invariant %s failed: %s", c.Name, c.Detail)
					}
				}
				if rep.Failed == 0 && rep.UncoveredEdges == 0 {
					t.Error("no uncovered edges reported despite planted latent activations")
				}
			})
		}
	}
}

// TestPipelineMatrixSummary smoke-tests the sweep used by CI with a
// minimal matrix.
func TestPipelineMatrixSummary(t *testing.T) {
	t.Parallel()
	sum, err := RunPipelineMatrix(context.Background(), 1, 1)
	if err != nil {
		t.Fatalf("matrix: %v", err)
	}
	if want := len(synthapp.Families()); sum.Runs != want {
		t.Fatalf("runs = %d, want %d", sum.Runs, want)
	}
	if sum.Failed != 0 {
		for _, r := range sum.Reports {
			for _, c := range r.Checks {
				if !c.OK {
					t.Errorf("%s seed %d: %s: %s", r.Family, r.Seed, c.Name, c.Detail)
				}
			}
		}
		t.Fatalf("matrix reported %d failing runs", sum.Failed)
	}
}
