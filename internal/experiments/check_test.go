package experiments

import (
	"context"
	"testing"
)

// TestCheckAllApps is the acceptance criterion for the static constraint
// analyzer: every application yields a non-empty constraint set, every
// chosen cut satisfies every constraint, and the profiled scenario suite
// contains no statically unexplained non-remotable communication.
func TestCheckAllApps(t *testing.T) {
	t.Parallel()
	rows, err := CheckAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("checked %d apps, want 3", len(rows))
	}
	for _, row := range rows {
		if row.Report.Constraints.Empty() {
			t.Errorf("%s: empty constraint set", row.App)
		}
		if row.Pins == 0 {
			t.Errorf("%s: no location pins derived", row.App)
		}
		if row.Pinned == 0 {
			t.Errorf("%s: constraint set pinned no classifications", row.App)
		}
		if row.Violations != 0 {
			t.Errorf("%s: %d constraint violations: %v", row.App, row.Violations, row.Report.Findings)
		}
		if row.Warnings != 0 {
			t.Errorf("%s: %d cross-check warnings: %v", row.App, row.Warnings, row.Report.Findings)
		}
	}
}

// TestCheckStaticOnly exercises the no-scenario path: the report must be
// complete without any execution at all.
func TestCheckStaticOnly(t *testing.T) {
	t.Parallel()
	row, err := Check(context.Background(), "photodraw", nil)
	if err != nil {
		t.Fatal(err)
	}
	if row.NonRemotable == 0 {
		t.Error("photodraw: no non-remotable interfaces found statically")
	}
	if row.Pairs == 0 {
		t.Error("photodraw: no pair-wise constraints derived")
	}
	if len(row.Report.Findings) != 0 {
		t.Errorf("static-only check produced findings: %v", row.Report.Findings)
	}
}
