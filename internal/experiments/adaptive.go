package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/scenario"
)

// Changing scenarios and distributions (paper §4.4): a programmer's manual
// distribution is static, but Coign can repartition arbitrarily often — in
// the limit, once per execution — adapting to networks whose
// bandwidth-to-latency trade-offs differ by more than an order of
// magnitude. This experiment profiles a scenario once (ICC profiles are
// network-independent) and re-analyzes it under several network models.

// AdaptiveRow reports the distribution chosen for one network.
type AdaptiveRow struct {
	Network         string
	ServerClasses   int
	ServerInstances int64
	PredictedComm   time.Duration
	DefaultComm     time.Duration
	Savings         float64
	// WarmCut reports whether this network's cut warm-started from the
	// previous model's flow (the ICC topology is network-independent, so
	// every cut after the first should).
	WarmCut bool
}

// Adaptive re-partitions one scenario for each named network model.
func Adaptive(ctx context.Context, scenName string, networks []string) ([]AdaptiveRow, error) {
	info, err := scenario.Lookup(scenName)
	if err != nil {
		return nil, err
	}
	app, err := scenario.NewApp(info.App)
	if err != nil {
		return nil, err
	}
	adps := core.New(app)
	if err := adps.Instrument(); err != nil {
		return nil, err
	}
	p, _, err := adps.ProfileScenario(scenName, false)
	if err != nil {
		return nil, err
	}
	// Every network model re-cuts the same ICC topology with different
	// edge pricing — the canonical warm-start workload — so all models
	// share one re-cut arena: the first cut is cold, the rest resume from
	// the previous model's flow.
	rec := adapt.NewRecutter()
	adps.AnalysisOptions.Arena = rec.Arena()
	var rows []AdaptiveRow
	for _, name := range networks {
		model, err := netsim.ByName(name)
		if err != nil {
			return nil, err
		}
		adps.Network = model
		adps.NetProfile = nil // re-profile the new network
		warmBefore := rec.Stats().Warm
		res, err := adps.Analyze(ctx, p)
		if err != nil {
			return nil, fmt.Errorf("experiments: adaptive %s: %w", name, err)
		}
		rows = append(rows, AdaptiveRow{
			Network:         name,
			ServerClasses:   res.ServerClassifications,
			ServerInstances: res.ServerInstances,
			PredictedComm:   res.PredictedComm,
			DefaultComm:     res.DefaultComm,
			Savings:         res.Savings(),
			WarmCut:         rec.Stats().Warm > warmBefore,
		})
	}
	return rows, nil
}
