package experiments

import "repro/internal/par"

// parallelMap is the package-local alias for the shared worker pool in
// internal/par (extracted from here so the graph package can fan out the
// multiway heuristic's per-terminal cuts on the same pool).
//
// Every fn call builds its own scenario.NewApp plus core.New pipeline, and
// the package registries behind them are read-only after init, so items
// share no mutable state.
func parallelMap[T, R any](items []T, fn func(T) (R, error)) ([]R, error) {
	return par.Map(items, fn)
}
