package experiments

import (
	"context"

	"repro/internal/par"
)

// parallelMap is the package-local alias for the shared worker pool in
// internal/par (extracted from here so the graph package can fan out the
// multiway heuristic's per-terminal cuts on the same pool). The context
// reaches every item's fn, and through it the cut engine, so cancelling
// a sweep stops mid-cut rather than at the next item boundary.
//
// Every fn call builds its own scenario.NewApp plus core.New pipeline, and
// the package registries behind them are read-only after init, so items
// share no mutable state.
func parallelMap[T, R any](ctx context.Context, items []T, fn func(context.Context, T) (R, error)) ([]R, error) {
	return par.Map(ctx, items, fn)
}
