package experiments

import (
	"runtime"
	"sync"
)

// parallelMap applies fn to every item on a bounded worker pool and
// returns the results in input order. Workers are capped at GOMAXPROCS —
// each experiment pipeline is CPU-bound (profile replay plus a graph cut),
// so more workers would only thrash. When several items fail, the error of
// the earliest item wins, so the reported failure is deterministic
// regardless of scheduling.
//
// Every fn call builds its own scenario.NewApp plus core.New pipeline, and
// the package registries behind them are read-only after init, so items
// share no mutable state.
func parallelMap[T, R any](items []T, fn func(T) (R, error)) ([]R, error) {
	results := make([]R, len(items))
	errs := make([]error, len(items))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(items) {
		workers = len(items)
	}
	if workers < 1 {
		workers = 1
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = fn(items[i])
			}
		}()
	}
	for i := range items {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
