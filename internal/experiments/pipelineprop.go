package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/alias"
	"repro/internal/binimg"
	"repro/internal/classify"
	"repro/internal/com"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/profile"
	"repro/internal/purity"
	"repro/internal/staticanal"
	"repro/internal/synthapp"
)

// Full-pipeline property harness: for a generated synthetic application,
// run reach → staticanal → coverage → profile → cut → distributed replay
// and assert the cross-stage invariants no single-stage unit test can
// see. Infrastructure failures (a stage erroring out) come back as
// errors; invariant violations come back as failed checks in the report,
// so a matrix run can keep going and summarize everything it found.

// PipelineCheck is one named invariant verdict.
type PipelineCheck struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// PipelineReport is the outcome of the property harness on one generated
// application.
type PipelineReport struct {
	Family string `json:"family"`
	Seed   int64  `json:"seed"`
	Scale  int    `json:"scale,omitempty"`
	App    string `json:"app"`

	Classes           int     `json:"classes"`
	GraphNodes        int     `json:"graphNodes"`
	GraphEdges        int     `json:"graphEdges"`
	CutWeight         float64 `json:"cutWeight"`
	RelaxedWeight     float64 `json:"relaxedWeight"`
	ReplicatedWeight  float64 `json:"replicatedWeight"`
	Replicated        int     `json:"replicated"`
	DefaultViolations int     `json:"defaultViolations"`
	UncoveredEdges    int     `json:"uncoveredEdges"`

	// Alias-refined pipeline pass (see the alias stage of
	// RunPipelineProperty): the refined cut weight, the aliasing pairs the
	// refiner installed, and the welded-class-pair footprint before and
	// after refinement.
	RefinedCutWeight float64 `json:"refinedCutWeight"`
	AliasPairs       int     `json:"aliasPairs"`
	BaselineWelds    int     `json:"baselineWelds"`
	RefinedWelds     int     `json:"refinedWelds"`

	Checks []PipelineCheck `json:"checks"`
	Failed int             `json:"failed"`
}

func (r *PipelineReport) check(name string, ok bool, detail string) {
	if ok {
		detail = ""
	} else {
		r.Failed++
	}
	r.Checks = append(r.Checks, PipelineCheck{Name: name, OK: ok, Detail: detail})
}

const propEps = 1e-6

// RunPipelineProperty generates the application for cfg and drives it
// through the complete pipeline, recording every invariant verdict.
func RunPipelineProperty(ctx context.Context, cfg synthapp.Config) (*PipelineReport, error) {
	a, err := synthapp.Generate(cfg)
	if err != nil {
		return nil, err
	}
	rep := &PipelineReport{
		Family:  string(cfg.Family),
		Seed:    cfg.Seed,
		Scale:   a.Config.Scale,
		App:     a.App.Name,
		Classes: a.App.Classes.Len(),
	}
	if a.Config.Scale == 1 {
		rep.Scale = 0 // omit the default from JSON
	}

	// Generator invariants: the app is well formed and regenerating it is
	// byte-identical (the reproducibility contract `coign synth` exposes).
	if verr := synthapp.Validate(a.App); verr != nil {
		rep.check("app-validates", false, verr.Error())
	} else {
		rep.check("app-validates", true, "")
	}
	if b, gerr := synthapp.Generate(cfg); gerr != nil {
		return nil, gerr
	} else {
		var ab, bb bytes.Buffer
		if err := binimg.BuildImage(a.App).Encode(&ab); err != nil {
			return nil, err
		}
		if err := binimg.BuildImage(b.App).Encode(&bb); err != nil {
			return nil, err
		}
		rep.check("regeneration-byte-identical", bytes.Equal(ab.Bytes(), bb.Bytes()), "second Generate produced a different image")
	}

	// reach → staticanal → coverage, installing conservative co-location
	// constraints for every uncovered edge.
	adps := core.New(a.App)
	adps.Seed = cfg.Seed + 1
	cov, prof, err := adps.CoverageReport(a.Training, true)
	if err != nil {
		return nil, fmt.Errorf("experiments: coverage of %s: %w", a.App.Name, err)
	}
	uncoveredEdge := make(map[[2]string]bool)
	for _, e := range cov.Edges {
		if !e.Covered {
			uncoveredEdge[[2]string{e.Src, e.Dst}] = true
			rep.UncoveredEdges++
		}
	}
	// The planted latent activation edges must surface as uncovered.
	for _, pair := range a.LatentPairs {
		rep.check("latent-edge-uncovered",
			uncoveredEdge[[2]string{pair[0], pair[1]}],
			fmt.Sprintf("planted edge %s -> %s not reported uncovered", pair[0], pair[1]))
	}

	// Cut the combined training profile, with the replication-aware cut
	// alongside so its monotonicity invariant is swept on every topology.
	adps.AnalysisOptions.Replicate = true
	ares, err := adps.Analyze(ctx, prof)
	if err != nil {
		return nil, fmt.Errorf("experiments: analyzing %s: %w", a.App.Name, err)
	}
	rep.GraphNodes = ares.Graph.Len()
	rep.GraphEdges = ares.Graph.Edges()
	rep.CutWeight = ares.Cut.Weight
	rep.DefaultViolations = ares.DefaultViolations

	if verr := ares.Graph.Validate(); verr != nil {
		rep.check("graph-validates", false, verr.Error())
	} else {
		rep.check("graph-validates", true, "")
	}

	// DefaultViolations must be reported exactly when the family plants an
	// infeasible default distribution.
	if a.PlantsInfeasibleDefault {
		rep.check("default-violations-reported", ares.DefaultViolations > 0,
			"family plants an infeasible default but analysis reported zero violations")
	} else {
		rep.check("default-violations-absent", ares.DefaultViolations == 0,
			fmt.Sprintf("family plants no infeasible default but analysis reported %d violations", ares.DefaultViolations))
	}

	// Monotonicity: dropping the co-location welds can only cheapen the
	// cut, so the constrained weight must be >= the relaxed weight.
	relaxed, err := ares.Graph.WithoutCoLocations().MinCut()
	if err != nil {
		return nil, fmt.Errorf("experiments: relaxed cut of %s: %w", a.App.Name, err)
	}
	rep.RelaxedWeight = relaxed.Weight
	rep.check("constrained-not-cheaper-than-relaxed",
		ares.Cut.Weight >= relaxed.Weight-propEps*(1+relaxed.Weight),
		fmt.Sprintf("constrained cut %.9g < relaxed cut %.9g", ares.Cut.Weight, relaxed.Weight))

	// On small instances the push-relabel cut must match the Edmonds-Karp
	// oracle exactly.
	if ares.Graph.Len() <= 80 {
		ek, err := ares.Graph.MinCutEdmondsKarp()
		if err != nil {
			return nil, fmt.Errorf("experiments: oracle cut of %s: %w", a.App.Name, err)
		}
		diff := ares.Cut.Weight - ek.Weight
		if diff < 0 {
			diff = -diff
		}
		rep.check("cut-matches-edmonds-karp",
			diff <= propEps*(1+ek.Weight),
			fmt.Sprintf("push-relabel %.9g vs Edmonds-Karp %.9g", ares.Cut.Weight, ek.Weight))
	}

	// Incremental re-cut determinism: the arena-backed engine must be an
	// optimization, never a semantic. After any number of perturb-then-
	// restore rounds on one arena, a re-cut of the restored graph has to
	// reproduce the one-shot assignment byte for byte (encoding/json
	// sorts map keys, so equal assignments marshal identically).
	oneShot, err := json.Marshal(ares.Cut.Assignment)
	if err != nil {
		return nil, fmt.Errorf("experiments: marshaling cut of %s: %w", a.App.Name, err)
	}
	arena := graph.NewCutArena()
	arng := rand.New(rand.NewSource(cfg.Seed ^ 0xa7e4a))
	edgeNames := ares.Graph.EdgeNames()
	arenaOK, arenaDetail := true, ""
	for round := 0; round < 3 && arenaOK; round++ {
		saved := make(map[[2]string]float64)
		for _, e := range edgeNames {
			if arng.Intn(2) == 0 {
				w := ares.Graph.EdgeWeight(e[0], e[1])
				saved[e] = w
				ares.Graph.SetEdgeWeight(e[0], e[1], w*(0.5+arng.Float64()))
			}
		}
		if _, cerr := ares.Graph.MinCutArena(ctx, arena); cerr != nil {
			return nil, fmt.Errorf("experiments: perturbed arena cut of %s: %w", a.App.Name, cerr)
		}
		for e, w := range saved {
			ares.Graph.SetEdgeWeight(e[0], e[1], w)
		}
		cut, cerr := ares.Graph.MinCutArena(ctx, arena)
		if cerr != nil {
			return nil, fmt.Errorf("experiments: restored arena cut of %s: %w", a.App.Name, cerr)
		}
		b, jerr := json.Marshal(cut.Assignment)
		if jerr != nil {
			return nil, fmt.Errorf("experiments: marshaling arena cut of %s: %w", a.App.Name, jerr)
		}
		if !bytes.Equal(b, oneShot) {
			arenaOK = false
			arenaDetail = fmt.Sprintf("round %d: arena re-cut assignment diverged from the one-shot cut", round)
		}
	}
	rep.check("arena-recut-deterministic", arenaOK, arenaDetail)
	ast := arena.Stats()
	rep.check("arena-warm-start-used",
		ast.Restaged == 1 && ast.Warm > 0 && ast.Fallbacks == 0,
		fmt.Sprintf("weight-only rounds should warm-start on one staging: %+v", ast))

	// Purity: the static grading must exist, the verifier must never see a
	// mutation through a method claimed read-only, and replication — a
	// pure edge-removal transform — can never make the cut costlier.
	rep.check("purity-graded", ares.Purity != nil, "analysis produced no purity grading")
	misses := 0
	for _, f := range ares.Findings {
		if f.Kind == purity.KindPurityMiss || f.Kind == "replication-regression" {
			misses++
		}
	}
	rep.check("purity-verifier-clean", misses == 0,
		fmt.Sprintf("%d purity-miss/replication-regression finding(s): %v", misses, ares.Findings))
	if ares.ReplicatedCut != nil {
		rep.ReplicatedWeight = ares.ReplicatedCut.Weight
		rep.Replicated = len(ares.Replicated)
		rep.check("replicated-not-costlier",
			ares.ReplicatedCut.Weight <= ares.Cut.Weight+propEps*(1+ares.Cut.Weight),
			fmt.Sprintf("replicated cut %.9g > plain cut %.9g", ares.ReplicatedCut.Weight, ares.Cut.Weight))
	}

	// Families with purity plants: every classification of the planted
	// read-mostly class must grade read-mostly (none stateless — it has
	// state — and none stateful), every classification of the decoy must
	// grade stateful, and cloning the plant must strictly cheapen the cut.
	if a.ReadMostlyPlant != "" && ares.Purity != nil {
		rep.check("plant-read-mostly",
			classGraded(ares.Purity, a.ReadMostlyPlant, purity.GradeReadMostly),
			fmt.Sprintf("planted class %s not uniformly read-mostly: %s",
				a.ReadMostlyPlant, gradesOf(ares.Purity, a.ReadMostlyPlant)))
		rep.check("decoy-stateful",
			classGraded(ares.Purity, a.StatefulDecoy, purity.GradeStateful),
			fmt.Sprintf("decoy class %s not uniformly stateful: %s",
				a.StatefulDecoy, gradesOf(ares.Purity, a.StatefulDecoy)))
		if ares.ReplicatedCut != nil {
			rep.check("replication-strictly-cheaper",
				ares.ReplicatedCut.Weight < ares.Cut.Weight-propEps*(1+ares.Cut.Weight),
				fmt.Sprintf("replicated cut %.9g not strictly below plain cut %.9g",
					ares.ReplicatedCut.Weight, ares.Cut.Weight))
		}
	}

	// Uncovered (unpriced) edges were installed as conservative welds, so
	// both endpoints of every planted latent pair must land on the same
	// machine in the chosen distribution.
	for _, pair := range a.LatentPairs {
		ok, detail := classesCoLocated(ares.Distribution, prof, pair[0], pair[1])
		rep.check("uncovered-endpoints-co-located", ok, detail)
	}

	// Alias refinement stage: run the pipeline a second time with the
	// points-to analysis enabled and sweep the refinement's invariants —
	// the refined cut must stay sound (zero-miss verifier, no error
	// findings, never below the fully relaxed floor, Edmonds-Karp exact
	// on small graphs), the refined replication set must contain the
	// plain one, and the planted aliasing/decoy pairs must come out the
	// way the generator seeded them.
	adpsA := core.New(a.App)
	adpsA.Seed = cfg.Seed + 1
	if err := adpsA.EnableAlias(); err != nil {
		return nil, fmt.Errorf("experiments: alias analysis of %s: %w", a.App.Name, err)
	}
	_, profA, err := adpsA.CoverageReport(a.Training, true)
	if err != nil {
		return nil, fmt.Errorf("experiments: refined coverage of %s: %w", a.App.Name, err)
	}
	adpsA.AnalysisOptions.Replicate = true
	aresA, err := adpsA.Analyze(ctx, profA)
	if err != nil {
		return nil, fmt.Errorf("experiments: refined analysis of %s: %w", a.App.Name, err)
	}
	rep.RefinedCutWeight = aresA.Cut.Weight
	refinedCS := adpsA.AnalysisOptions.Constraints
	if refinedCS != nil {
		rep.AliasPairs = len(refinedCS.AliasPairs)
	}

	misses, errors := 0, 0
	for _, f := range aresA.Findings {
		if f.Kind == alias.KindAliasMiss {
			misses++
		}
		if f.Severity == staticanal.SeverityError {
			errors++
		}
	}
	rep.check("alias-verifier-zero-miss", misses == 0,
		fmt.Sprintf("%d unpredicted non-remotable call(s): %v", misses, aresA.Findings))
	rep.check("alias-refined-no-errors", errors == 0,
		fmt.Sprintf("%d error finding(s) on the refined cut: %v", errors, aresA.Findings))

	relaxedA, err := aresA.Graph.WithoutCoLocations().MinCut()
	if err != nil {
		return nil, fmt.Errorf("experiments: relaxed refined cut of %s: %w", a.App.Name, err)
	}
	rep.check("alias-refined-not-cheaper-than-relaxed",
		aresA.Cut.Weight >= relaxedA.Weight-propEps*(1+relaxedA.Weight),
		fmt.Sprintf("refined cut %.9g < relaxed cut %.9g", aresA.Cut.Weight, relaxedA.Weight))
	if aresA.Graph.Len() <= 80 {
		ek, err := aresA.Graph.MinCutEdmondsKarp()
		if err != nil {
			return nil, fmt.Errorf("experiments: refined oracle cut of %s: %w", a.App.Name, err)
		}
		diff := aresA.Cut.Weight - ek.Weight
		if diff < 0 {
			diff = -diff
		}
		rep.check("alias-cut-matches-edmonds-karp",
			diff <= propEps*(1+ek.Weight),
			fmt.Sprintf("refined push-relabel %.9g vs Edmonds-Karp %.9g", aresA.Cut.Weight, ek.Weight))
	}

	// The alias-refined purity closure may only free components: the
	// refined replication set must contain every plain-eligible
	// classification, and on the three-tier family — whose stateless view
	// chain the plain closure wrongly drags into statefulness — it must
	// strictly grow.
	if ares.Purity != nil && aresA.Purity != nil {
		refEligible := make(map[string]bool, len(aresA.Purity.Replication.Classifications))
		for _, id := range aresA.Purity.Replication.Classifications {
			refEligible[id] = true
		}
		superset, lost := true, ""
		for _, id := range ares.Purity.Replication.Classifications {
			if !refEligible[id] {
				superset, lost = false, id
				break
			}
		}
		rep.check("alias-replication-superset", superset,
			fmt.Sprintf("refined replication set lost %s", lost))
		if cfg.Family == synthapp.ThreeTier {
			rep.check("alias-replication-strictly-grows",
				len(refEligible) > len(ares.Purity.Replication.Classifications),
				fmt.Sprintf("refined set %v no larger than plain %v",
					aresA.Purity.Replication.Classifications, ares.Purity.Replication.Classifications))
		}
	}

	// Pin-clique shrinkage: count the distinct profiled class pairs still
	// welded to one machine. The families planting aliasing decoys must
	// shrink strictly; everywhere else the counts are recorded for the
	// matrix artifact.
	rep.BaselineWelds = len(WeldedClassPairs(adps.AnalysisOptions.Constraints, prof))
	rep.RefinedWelds = len(WeldedClassPairs(refinedCS, profA))
	if cfg.Family == synthapp.SharedState || cfg.Family == synthapp.ThreeTier {
		rep.check("alias-welds-strictly-reduced", rep.RefinedWelds < rep.BaselineWelds,
			fmt.Sprintf("welded class pairs %d -> %d, want a strict reduction", rep.BaselineWelds, rep.RefinedWelds))
	}

	// Planted aliasing pairs must be proven shared-mutable; decoy pairs
	// exchange immutable payloads and must end up neither shared-mutable
	// nor welded by the refined constraints.
	if ar := adpsA.Alias; ar != nil {
		for _, pair := range a.AliasPlantPairs {
			_, shared := ar.SharedMutable(pair[0], pair[1])
			rep.check("alias-plant-shared-mutable", shared,
				fmt.Sprintf("planted pair %s/%s not proven to share mutable state", pair[0], pair[1]))
		}
		for _, pair := range a.AliasDecoyPairs {
			if _, shared := ar.SharedMutable(pair[0], pair[1]); shared {
				rep.check("alias-decoy-immutable", false,
					fmt.Sprintf("decoy pair %s/%s wrongly proven shared-mutable", pair[0], pair[1]))
				continue
			}
			_, weldAB := refinedCS.MustCoLocate(pair[0], pair[1])
			_, weldBA := refinedCS.MustCoLocate(pair[1], pair[0])
			rep.check("alias-decoy-immutable", !weldAB && !weldBA,
				fmt.Sprintf("decoy pair %s/%s still welded by the refined constraints", pair[0], pair[1]))
		}
	}

	// The canonical shared-state report must be byte-stable: scanning the
	// same application twice encodes identically.
	var j1, j2 bytes.Buffer
	if err := adpsA.Alias.WriteJSON(&j1); err != nil {
		return nil, err
	}
	ar2, err := alias.Scan(binimg.BuildImage(a.App), a.App, nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: alias re-scan of %s: %w", a.App.Name, err)
	}
	if err := ar2.WriteJSON(&j2); err != nil {
		return nil, err
	}
	rep.check("alias-json-byte-stable", bytes.Equal(j1.Bytes(), j2.Bytes()),
		"re-scanning produced different canonical bytes")

	// Write the distribution into the binary and replay it: two identical
	// fault-free runs, then two identical chaos runs (same fault seed), so
	// the virtual-time replay is provably deterministic end to end.
	if err := adps.WriteDistribution(ares); err != nil {
		return nil, fmt.Errorf("experiments: writing distribution of %s: %w", a.App.Name, err)
	}
	r1, err := adps.RunDistributed(a.Bigone, false)
	if err != nil {
		return nil, fmt.Errorf("experiments: distributed replay of %s: %w", a.App.Name, err)
	}
	r2, err := adps.RunDistributed(a.Bigone, false)
	if err != nil {
		return nil, fmt.Errorf("experiments: distributed replay of %s: %w", a.App.Name, err)
	}
	rep.check("replay-deterministic",
		r1.Clock.Elapsed() == r2.Clock.Elapsed() && r1.Clock.CommTime() == r2.Clock.CommTime(),
		fmt.Sprintf("elapsed %v/%v, comm %v/%v", r1.Clock.Elapsed(), r2.Clock.Elapsed(),
			r1.Clock.CommTime(), r2.Clock.CommTime()))
	rep.check("replay-no-violations", r1.Violations == 0,
		fmt.Sprintf("chosen distribution crossed %d non-remotable boundaries", r1.Violations))

	c1, err := chaosRun(adps, a.Bigone, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: chaos replay of %s: %w", a.App.Name, err)
	}
	c2, err := chaosRun(adps, a.Bigone, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: chaos replay of %s: %w", a.App.Name, err)
	}
	rep.check("chaos-replay-converges",
		c1.Clock.Elapsed() == c2.Clock.Elapsed() && c1.Retries == c2.Retries &&
			c1.FaultDrops == c2.FaultDrops && c1.FaultCorruptions == c2.FaultCorruptions,
		fmt.Sprintf("elapsed %v/%v, retries %d/%d, drops %d/%d",
			c1.Clock.Elapsed(), c2.Clock.Elapsed(), c1.Retries, c2.Retries, c1.FaultDrops, c2.FaultDrops))

	return rep, nil
}

// classGraded reports whether at least one classification of the class
// was graded, and every one of them got the expected grade.
func classGraded(g *purity.Grading, class string, want purity.Grade) bool {
	n := 0
	for i := range g.Components {
		if g.Components[i].Class != class {
			continue
		}
		n++
		if g.Components[i].Grade != want {
			return false
		}
	}
	return n > 0
}

// gradesOf renders a class's per-classification grades for a check detail.
func gradesOf(g *purity.Grading, class string) string {
	out := ""
	for i := range g.Components {
		c := &g.Components[i]
		if c.Class != class {
			continue
		}
		if out != "" {
			out += ", "
		}
		out += fmt.Sprintf("%s=%s (%s)", c.Classification, c.Grade, c.Provenance)
	}
	if out == "" {
		return "no classifications graded"
	}
	return out
}

// classesCoLocated reports whether every classification of the two named
// classes landed on one machine in the distribution.
func classesCoLocated(distribution map[string]com.Machine, prof *profile.Profile, classA, classB string) (bool, string) {
	var machines []com.Machine
	var ids []string
	for _, id := range prof.ClassificationIDs() {
		ci := prof.Classifications[id]
		if ci.Class != classA && ci.Class != classB {
			continue
		}
		m, ok := distribution[id]
		if !ok {
			return false, fmt.Sprintf("classification %s (class %s) missing from distribution", id, ci.Class)
		}
		machines = append(machines, m)
		ids = append(ids, id)
	}
	if len(machines) == 0 {
		return false, fmt.Sprintf("no classifications profiled for %s/%s", classA, classB)
	}
	for i := 1; i < len(machines); i++ {
		if machines[i] != machines[0] {
			return false, fmt.Sprintf("%s on %s but %s on %s", ids[0], machines[0], ids[i], machines[i])
		}
	}
	return true, ""
}

// chaosRun replays the written distribution under a seeded lossy network.
// The fault schedule is fully determined by the run seed, so two calls
// with the same seed must agree byte for byte.
func chaosRun(adps *core.ADPS, scenario string, seed int64) (*dist.Result, error) {
	dm := adps.Image.Config.DistributionMap()
	if dm == nil {
		return nil, fmt.Errorf("experiments: binary carries no distribution map")
	}
	kind, err := classify.KindByName(adps.Image.Config.Classifier)
	if err != nil {
		return nil, err
	}
	return dist.Run(dist.Config{
		App:          adps.App,
		Scenario:     scenario,
		Seed:         seed + 17,
		Mode:         dist.ModeCoign,
		Classifier:   classify.New(kind, adps.Image.Config.ClassifierDepth),
		Distribution: dm,
		Network:      adps.Network,
		Faults: &dist.FaultPolicy{
			Rates:       fault.Rates{Drop: 0.01, Corrupt: 0.005},
			MaxAttempts: 6,
			Timeout:     50 * time.Millisecond,
			Backoff:     5 * time.Millisecond,
		},
	})
}

// MatrixSummary aggregates a family × seed sweep of the property
// harness — the JSON artifact the CI pipeline-property job uploads.
type MatrixSummary struct {
	Families       []string          `json:"families"`
	SeedsPerFamily int               `json:"seedsPerFamily"`
	Runs           int               `json:"runs"`
	Failed         int               `json:"failed"`
	Reports        []*PipelineReport `json:"reports"`
}

// RunPipelineMatrix sweeps every generator family over seeds 0..seeds-1
// on the worker pool.
func RunPipelineMatrix(ctx context.Context, seeds int, scale int) (*MatrixSummary, error) {
	if seeds < 1 {
		return nil, fmt.Errorf("experiments: matrix needs >= 1 seed per family, got %d", seeds)
	}
	var cfgs []synthapp.Config
	sum := &MatrixSummary{SeedsPerFamily: seeds}
	for _, fam := range synthapp.Families() {
		sum.Families = append(sum.Families, string(fam))
		for s := 0; s < seeds; s++ {
			cfgs = append(cfgs, synthapp.Config{Family: fam, Seed: int64(s), Scale: scale})
		}
	}
	reports, err := parallelMap(ctx, cfgs, RunPipelineProperty)
	if err != nil {
		return nil, err
	}
	for _, r := range reports {
		sum.Runs++
		if r.Failed > 0 {
			sum.Failed++
		}
	}
	sum.Reports = reports
	return sum, nil
}
