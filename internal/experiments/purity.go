package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/purity"
	"repro/internal/scenario"
	"repro/internal/staticanal"
)

// PurityRow is the purity pipeline's summary for one application: the
// static scan, the profile-folded grading, the verifier's verdicts, and
// the plain-vs-replicated cut comparison.
type PurityRow struct {
	App   string  `json:"app"`
	Theta float64 `json:"theta"`

	// Static scan summary.
	Classes        int `json:"classes"`
	WithDescriptor int `json:"withDescriptor"`
	LocallyPure    int `json:"locallyPure"`

	// Scenarios profiled to fold in dynamic evidence.
	Scenarios []string `json:"scenarios,omitempty"`
	// Grading is the per-component verdict (nil when no scenarios ran).
	Grading *purity.Grading `json:"grading,omitempty"`
	// Misclassified counts purity-miss findings: profile-observed
	// mutations through methods the static analysis claimed read-only.
	// Always expected to be zero; the CI gate fails on any.
	Misclassified int `json:"misclassified"`
	// Warnings counts soft verifier findings (mutations on components the
	// static model cannot resolve).
	Warnings int `json:"warnings"`

	// Cut comparison: the plain minimum cut versus the replication-aware
	// one (eligible components cloned, their ICC edges removed).
	CutWeight        float64  `json:"cutWeight"`
	ReplicatedWeight float64  `json:"replicatedWeight"`
	Replicated       []string `json:"replicated,omitempty"`

	// Report is the full static analysis, for -json consumers.
	Report *purity.Report `json:"report,omitempty"`
}

// Purity runs the purity pipeline for one application: static scan over
// the binary image, then (when scenarios is non-empty) profile the
// scenarios, grade every component, verify the static claims against the
// observed mutations, and cut both the plain and the replication-aware
// networks. theta <= 0 selects purity.DefaultTheta.
func Purity(ctx context.Context, appName string, scenarios []string, theta float64) (*PurityRow, error) {
	app, err := scenario.NewApp(appName)
	if err != nil {
		return nil, err
	}
	adps := core.New(app)
	pr, err := purity.Scan(adps.Image, app, adps.Reach)
	if err != nil {
		return nil, fmt.Errorf("experiments: purity scan of %s: %w", appName, err)
	}
	row := &PurityRow{
		App:     appName,
		Theta:   theta,
		Classes: len(pr.Classes),
		Report:  pr,
	}
	if row.Theta <= 0 {
		row.Theta = purity.DefaultTheta
	}
	for _, ci := range pr.Classes {
		if ci.HasDescriptor {
			row.WithDescriptor++
		}
		if ci.LocallyPure {
			row.LocallyPure++
		}
	}

	if len(scenarios) == 0 {
		scenarios = TrainingScenarios(appName)
	}
	if len(scenarios) == 0 {
		return row, nil
	}
	row.Scenarios = scenarios

	if err := adps.Instrument(); err != nil {
		return nil, err
	}
	p, err := adps.ProfileScenarios(scenarios, false)
	if err != nil {
		return nil, err
	}
	adps.AnalysisOptions.PurityTheta = theta
	adps.AnalysisOptions.Replicate = true
	res, err := adps.Analyze(ctx, p)
	if err != nil {
		return nil, err
	}
	row.Grading = res.Purity
	row.CutWeight = res.Cut.Weight
	if res.ReplicatedCut != nil {
		row.ReplicatedWeight = res.ReplicatedCut.Weight
	}
	row.Replicated = res.Replicated
	for _, f := range res.Findings {
		switch {
		case f.Kind == purity.KindPurityMiss || f.Kind == "replication-regression":
			row.Misclassified++
		case f.Kind == staticanal.KindUnknownClass && f.Severity == staticanal.SeverityWarning:
			row.Warnings++
		}
	}
	return row, nil
}

// PurityApps lists the applications the purity gate sweeps: the Table 1
// suite plus the quick-start example.
func PurityApps() []string { return append(scenario.Apps(), "quickstart") }

// PurityAll runs Purity over every gate application with its training
// suite, one application per worker on a bounded pool.
func PurityAll(ctx context.Context, theta float64) ([]*PurityRow, error) {
	return parallelMap(ctx, PurityApps(), func(ctx context.Context, appName string) (*PurityRow, error) {
		return Purity(ctx, appName, nil, theta)
	})
}
