package experiments

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/alias"
	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/scenario"
	"repro/internal/staticanal"
)

// AliasRow is the alias pipeline's summary for one application: the
// points-to scan over opaque payloads, the constraint refinement it
// enables, and the zero-miss verification against the profiled
// scenarios.
type AliasRow struct {
	App string `json:"app"`

	// Points-to scan summary.
	Classes        int `json:"classes"`
	Locations      int `json:"locations"`
	SharedPairs    int `json:"sharedPairs"`
	MutablePairs   int `json:"mutablePairs"`
	UnknownClasses int `json:"unknownClasses"`

	// Constraint refinement summary: pair-wise constraints before and
	// after refinement, plus the aliasing pairs the refiner added.
	BaselinePairs int `json:"baselinePairs"`
	RefinedPairs  int `json:"refinedPairs"`
	AliasPairs    int `json:"aliasPairs"`

	// Scenarios profiled for the dynamic checks (empty when the app has
	// no training suite; the dynamic fields below stay zero then).
	Scenarios []string `json:"scenarios,omitempty"`
	// BaselineWelds and RefinedWelds count the distinct class pairs of
	// profiled edges welded to one machine under the unrefined and the
	// alias-refined constraint set (see WeldedClassPairs). Refinement
	// clears conservative welds over immutable payloads but may also add
	// an aliasing pair the profiler never caught in the act, so the
	// refined count is usually — not provably — the smaller one.
	BaselineWelds int `json:"baselineWelds"`
	RefinedWelds  int `json:"refinedWelds"`
	// Misses counts alias-miss findings: profiled non-remotable calls the
	// points-to analysis failed to predict. Always expected to be zero;
	// the CI gate fails on any.
	Misses int `json:"misses"`
	// Warnings counts soft verifier findings (calls on components the
	// static model cannot resolve).
	Warnings int `json:"warnings"`

	// Report is the full shared-state report, for -json consumers.
	Report *alias.Result `json:"report,omitempty"`
}

// Alias runs the alias pipeline for one application: points-to scan over
// the binary image, constraint refinement, then (when the app has
// training scenarios) profile them, verify zero-miss, and compare how
// many profiled class pairs stay welded before and after refinement.
func Alias(ctx context.Context, appName string, scenarios []string) (*AliasRow, error) {
	app, err := scenario.NewApp(appName)
	if err != nil {
		return nil, err
	}
	adps := core.New(app)
	baseline := adps.AnalysisOptions.Constraints
	if err := adps.EnableAlias(); err != nil {
		return nil, fmt.Errorf("experiments: alias scan of %s: %w", appName, err)
	}
	ar := adps.Alias
	row := &AliasRow{
		App:            appName,
		Classes:        len(ar.Classes),
		Locations:      len(ar.Locations),
		SharedPairs:    len(ar.Pairs),
		MutablePairs:   len(ar.MutablePairs()),
		UnknownClasses: len(ar.UnknownClasses),
		Report:         ar,
	}
	refined := adps.AnalysisOptions.Constraints
	if baseline != nil {
		row.BaselinePairs = len(baseline.Pairs)
	}
	if refined != nil {
		row.RefinedPairs = len(refined.Pairs)
		row.AliasPairs = len(refined.AliasPairs)
	}

	if len(scenarios) == 0 {
		scenarios = TrainingScenarios(appName)
	}
	if len(scenarios) == 0 {
		return row, nil
	}
	row.Scenarios = scenarios

	if err := adps.Instrument(); err != nil {
		return nil, err
	}
	p, err := adps.ProfileScenarios(scenarios, false)
	if err != nil {
		return nil, err
	}
	res, err := adps.Analyze(ctx, p)
	if err != nil {
		return nil, err
	}
	row.BaselineWelds = len(WeldedClassPairs(baseline, p))
	row.RefinedWelds = len(WeldedClassPairs(refined, p))
	for _, f := range res.Findings {
		switch {
		case f.Kind == alias.KindAliasMiss:
			row.Misses++
		case f.Kind == staticanal.KindUnknownClass && f.Severity == staticanal.SeverityWarning:
			row.Warnings++
		}
	}
	return row, nil
}

// WeldedClassPairs lists the distinct unordered class pairs of profiled
// communication edges that the constraint set forces onto one machine —
// either by an explicit co-location constraint or by the conservative
// dynamic weld of an observed non-remotable call. This is the pin-clique
// footprint the alias refinement is meant to shrink: with a nil set every
// non-remotable edge welds, with a refined set only truly-aliasing pairs
// do. Pairs are sorted; edges touching the main program or unclassified
// components are skipped (they never weld class pairs).
func WeldedClassPairs(cs *staticanal.ConstraintSet, p *profile.Profile) [][2]string {
	seen := make(map[[2]string]bool)
	for k, e := range p.Edges {
		if k.Src == profile.MainProgram || k.Dst == profile.MainProgram {
			continue
		}
		srcCI, dstCI := p.Classifications[k.Src], p.Classifications[k.Dst]
		if srcCI == nil || dstCI == nil || srcCI.Class == dstCI.Class {
			continue
		}
		src, dst := srcCI.Class, dstCI.Class
		welded := false
		if cs != nil {
			if _, ok := cs.MustCoLocate(src, dst); ok {
				welded = true
			}
		}
		if !welded && e.NonRemotable && (cs == nil || cs.ObservedNonRemotableWeld(src, dst)) {
			welded = true
		}
		if !welded {
			continue
		}
		pair := [2]string{src, dst}
		if pair[0] > pair[1] {
			pair[0], pair[1] = pair[1], pair[0]
		}
		seen[pair] = true
	}
	pairs := make([][2]string, 0, len(seen))
	for pair := range seen {
		pairs = append(pairs, pair)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	return pairs
}

// AliasApps lists the applications the alias gate sweeps — the same
// population as the purity gate.
func AliasApps() []string { return PurityApps() }

// AliasAll runs Alias over every gate application with its training
// suite, one application per worker on a bounded pool.
func AliasAll(ctx context.Context) ([]*AliasRow, error) {
	return parallelMap(ctx, AliasApps(), func(ctx context.Context, appName string) (*AliasRow, error) {
		return Alias(ctx, appName, nil)
	})
}
