package experiments

import (
	"context"
	"math/rand"
	"sort"
	"time"

	"repro/internal/classify"
	"repro/internal/com"
	"repro/internal/dist"
	"repro/internal/netsim"
	"repro/internal/scenario"
)

// Replay-based what-if analysis. The event logger's traces drive detailed
// application simulations (paper §3.3): here one trace evaluates many
// hypothetical distributions without re-running the application,
// confronting the Coign-chosen cut with random alternatives — an empirical
// check that the minimum cut really is the floor.

// WhatIfResult summarizes a replay sweep.
type WhatIfResult struct {
	Scenario string
	// CoignComm is the replayed communication time of the analysis
	// engine's distribution.
	CoignComm time.Duration
	// BestRandom and WorstRandom bound the sampled alternatives.
	BestRandom  time.Duration
	WorstRandom time.Duration
	// Beaten counts random assignments strictly cheaper than Coign's.
	Beaten  int
	Samples int
}

// WhatIf replays one scenario's trace under the Coign distribution and
// `samples` random distributions that respect the hard constraints
// (client-pinned, server-pinned, and co-located classifications keep their
// Coign sides; only unconstrained classifications are shuffled).
func WhatIf(ctx context.Context, scenName string, samples int, seed int64) (*WhatIfResult, error) {
	info, err := scenario.Lookup(scenName)
	if err != nil {
		return nil, err
	}
	app, err := scenario.NewApp(info.App)
	if err != nil {
		return nil, err
	}
	// One profiling run with an event trace.
	run, err := dist.Run(dist.Config{
		App: app, Scenario: scenName, Seed: 1, Mode: dist.ModeProfiling,
		Classifier: classify.New(classify.IFCB, 0), EventTrace: true,
	})
	if err != nil {
		return nil, err
	}
	res, err := Distribution(ctx, scenName)
	if err != nil {
		return nil, err
	}

	replayComm := func(dm map[string]com.Machine) (time.Duration, error) {
		rr, err := dist.Replay(run.Events.Events, dm, netsim.TenBaseT)
		if err != nil {
			return 0, err
		}
		return rr.CommTime, nil
	}

	coign, err := replayComm(res.Distribution)
	if err != nil {
		return nil, err
	}

	// Free classifications: unpinned and not touching a non-remotable
	// edge (shuffling those would produce distributions DCOM cannot run).
	constrained := map[string]bool{}
	for id := range res.Distribution {
		if _, pinned := res.Graph.Pinned(id); pinned {
			constrained[id] = true
		}
	}
	prof := run.Profile
	for k, e := range prof.Edges {
		if e.NonRemotable {
			constrained[k.Src] = true
			constrained[k.Dst] = true
		}
	}
	var free []string
	for id := range res.Distribution {
		if !constrained[id] {
			free = append(free, id)
		}
	}
	// Deterministic order for reproducible shuffles.
	sort.Strings(free)

	out := &WhatIfResult{Scenario: scenName, CoignComm: coign, Samples: samples}
	out.BestRandom = time.Duration(1<<62 - 1)
	rng := rand.New(rand.NewSource(seed))
	for s := 0; s < samples; s++ {
		dm := make(map[string]com.Machine, len(res.Distribution))
		for id, m := range res.Distribution {
			dm[id] = m
		}
		for _, id := range free {
			if rng.Intn(2) == 0 {
				dm[id] = com.Client
			} else {
				dm[id] = com.Server
			}
		}
		c, err := replayComm(dm)
		if err != nil {
			return nil, err
		}
		if c < out.BestRandom {
			out.BestRandom = c
		}
		if c > out.WorstRandom {
			out.WorstRandom = c
		}
		if c < coign {
			out.Beaten++
		}
	}
	return out, nil
}
