package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/reach"
	"repro/internal/scenario"
)

// CoverageRow is the result of diffing one application's static
// reachability graph against its profiled training-scenario suite.
type CoverageRow struct {
	App      string
	Coverage *reach.Coverage

	// Scenario suite the profile combined.
	Scenarios []string

	// Static graph summary.
	Sites     int
	Edges     int
	Reachable int

	// Coverage summary.
	SitesCovered int
	EdgesCovered int
	Percent      float64
	// Misses counts observations the static analysis failed to predict
	// (stale activation metadata — the reverse diff direction).
	Misses int
	// Installed counts the uncovered edges installed as conservative
	// co-location pairs into the app's constraint set.
	Installed int
}

// TrainingScenarios returns the profiling-scenario suite used to measure
// an application's coverage: Table 1 training scenarios for suite apps,
// and the single default scenario for the quickstart demonstration app.
func TrainingScenarios(appName string) []string {
	if appName == "quickstart" {
		return []string{"default"}
	}
	return scenario.TrainingForApp(appName)
}

// Coverage builds the application, recovers the static reachability graph
// from its binary, profiles the given scenarios, and diffs the two.
// Uncovered class-to-class edges are installed into the pipeline's
// constraint set so the row reflects what a coverage-constrained analysis
// would honor.
func Coverage(appName string, scenarios []string) (*CoverageRow, error) {
	app, err := scenario.NewApp(appName)
	if err != nil {
		return nil, err
	}
	adps := core.New(app)
	if adps.Reach == nil {
		return nil, fmt.Errorf("experiments: %s: no reachability graph (missing activation relocation records)", appName)
	}
	if len(scenarios) == 0 {
		scenarios = TrainingScenarios(appName)
	}
	cov, _, err := adps.CoverageReport(scenarios, false)
	if err != nil {
		return nil, err
	}
	installed := 0
	if adps.AnalysisOptions.Constraints != nil {
		installed = cov.InstallConstraints(adps.AnalysisOptions.Constraints)
	}
	row := &CoverageRow{
		App:       appName,
		Coverage:  cov,
		Scenarios: scenarios,
		Reachable: len(adps.Reach.Reachable),
		Percent:   cov.Percent(),
		Misses:    len(cov.Misses),
		Installed: installed,
	}
	row.SitesCovered, row.Sites = cov.SitesCovered()
	row.EdgesCovered, row.Edges = cov.EdgesCovered()
	return row, nil
}

// CoverageAll measures scenario coverage for every suite application with
// its full training suite, one application per worker on a bounded pool.
func CoverageAll(ctx context.Context) ([]*CoverageRow, error) {
	return parallelMap(ctx, scenario.Apps(), func(ctx context.Context, appName string) (*CoverageRow, error) {
		return Coverage(appName, nil)
	})
}
