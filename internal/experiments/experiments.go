// Package experiments regenerates every table and figure of the paper's
// evaluation (§4). Each function returns the rows of one exhibit; the
// coign CLI prints them and the benchmark harness in the repository root
// drives them under testing.B.
package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/analysis"
	"repro/internal/classify"
	"repro/internal/com"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/scenario"
)

// Table2Row is one row of Table 2 (classifier accuracy), extended with
// the purity analysis's per-classification grade counts: how many of the
// profiled classifications each classifier proves replication-eligible.
type Table2Row struct {
	Classifier              string
	ProfiledClassifications int
	NewClassifications      int
	AvgInstances            float64
	AvgCorrelation          float64
	Stateless               int
	ReadMostly              int
	Stateful                int
	// AliasEligible counts classifications replication-eligible under the
	// alias-refined purity closure (see analysis.ClassifierEval).
	AliasEligible int
}

// Table2 evaluates all seven instance classifiers on an application:
// profile every scenario except bigone, then correlate bigone instances
// against the profiled classifications.
func Table2(app string) ([]Table2Row, error) {
	a, err := scenario.NewApp(app)
	if err != nil {
		return nil, err
	}
	training := scenario.TrainingForApp(app)
	big, err := scenario.BigoneForApp(app)
	if err != nil {
		return nil, err
	}
	var rows []Table2Row
	for _, kind := range classify.Kinds() {
		res, err := core.ClassifierAccuracy(a, kind, 0, training, big, netsim.TenBaseT, 1)
		if err != nil {
			return nil, fmt.Errorf("experiments: table 2 %s: %w", kind, err)
		}
		rows = append(rows, Table2Row{
			Classifier:              kind.String(),
			ProfiledClassifications: res.ProfiledClassifications,
			NewClassifications:      res.NewClassifications,
			AvgInstances:            res.AvgInstancesPerClassification,
			AvgCorrelation:          res.AvgCorrelation,
			Stateless:               res.Stateless,
			ReadMostly:              res.ReadMostly,
			Stateful:                res.Stateful,
			AliasEligible:           res.AliasEligible,
		})
	}
	return rows, nil
}

// Table3Row is one row of Table 3 (IFCB accuracy vs stack depth), with
// the same purity-grade columns as Table 2.
type Table3Row struct {
	Depth                   int // 0 = complete stack
	ProfiledClassifications int
	AvgInstances            float64
	AvgCorrelation          float64
	Stateless               int
	ReadMostly              int
	Stateful                int
	AliasEligible           int
}

// Table3Depths are the stack-walk depths of paper Table 3.
var Table3Depths = []int{1, 2, 3, 4, 8, 16, 0}

// Table3 evaluates the IFCB classifier at limited stack depths.
func Table3(app string) ([]Table3Row, error) {
	a, err := scenario.NewApp(app)
	if err != nil {
		return nil, err
	}
	training := scenario.TrainingForApp(app)
	big, err := scenario.BigoneForApp(app)
	if err != nil {
		return nil, err
	}
	var rows []Table3Row
	for _, depth := range Table3Depths {
		res, err := core.ClassifierAccuracy(a, classify.IFCB, depth, training, big, netsim.TenBaseT, 1)
		if err != nil {
			return nil, fmt.Errorf("experiments: table 3 depth %d: %w", depth, err)
		}
		rows = append(rows, Table3Row{
			Depth:                   depth,
			ProfiledClassifications: res.ProfiledClassifications,
			AvgInstances:            res.AvgInstancesPerClassification,
			AvgCorrelation:          res.AvgCorrelation,
			Stateless:               res.Stateless,
			ReadMostly:              res.ReadMostly,
			Stateful:                res.Stateful,
			AliasEligible:           res.AliasEligible,
		})
	}
	return rows, nil
}

// ScenarioRow is one row of Tables 4 and 5 plus the figure-level placement
// counts for the scenario.
type ScenarioRow struct {
	Scenario        string
	App             string
	DefaultComm     time.Duration
	CoignComm       time.Duration
	Savings         float64
	PredictedExec   time.Duration
	MeasuredExec    time.Duration
	PredictionErr   float64
	TotalInstances  int
	ServerInstances int
	Violations      int
	// DefaultViolations counts co-location constraints the developer's
	// default distribution splits (analysis.Result.DefaultViolations): a
	// non-zero value flags that the as-shipped placement was never
	// realizable and the reported default time is a lower bound.
	DefaultViolations int
}

// RunScenario performs the full pipeline experiment for one scenario of
// the Table 1 suite.
func RunScenario(ctx context.Context, name string) (*ScenarioRow, error) {
	info, err := scenario.Lookup(name)
	if err != nil {
		return nil, err
	}
	app, err := scenario.NewApp(info.App)
	if err != nil {
		return nil, err
	}
	return ScenarioRowFor(ctx, app, info.App, name)
}

// ScenarioRowFor performs the full pipeline experiment for one scenario
// of an arbitrary application — the Table 1 suite or a generated
// synthetic app.
func ScenarioRowFor(ctx context.Context, app *com.App, appName, scenarioName string) (*ScenarioRow, error) {
	adps := core.New(app)
	rep, err := adps.ScenarioExperiment(ctx, scenarioName)
	if err != nil {
		return nil, err
	}
	row := &ScenarioRow{
		Scenario:        rep.Scenario,
		App:             appName,
		DefaultComm:     rep.DefaultComm,
		CoignComm:       rep.CoignComm,
		Savings:         rep.Savings,
		PredictedExec:   rep.PredictedExec,
		MeasuredExec:    rep.MeasuredExec,
		PredictionErr:   rep.PredictionErr,
		TotalInstances:  rep.TotalInstances,
		ServerInstances: rep.ServerInstances,
		Violations:      rep.Violations,
	}
	if rep.Analysis != nil {
		row.DefaultViolations = rep.Analysis.DefaultViolations
	}
	return row, nil
}

// Tables4And5 runs every scenario of Table 1 through the pipeline. One
// pass produces both tables: communication time (Table 4) and execution
// time prediction accuracy (Table 5). Scenarios run concurrently on a
// bounded worker pool — each builds an independent pipeline — and the rows
// come back in Table 1 order.
func Tables4And5(ctx context.Context) ([]ScenarioRow, error) {
	return parallelMap(ctx, scenario.Table1(), func(ctx context.Context, s scenario.Info) (ScenarioRow, error) {
		row, err := RunScenario(ctx, s.Name)
		if err != nil {
			return ScenarioRow{}, fmt.Errorf("experiments: %s: %w", s.Name, err)
		}
		return *row, nil
	})
}

// FigureRow summarizes one distribution figure.
type FigureRow struct {
	Figure            string
	Scenario          string
	TotalInstances    int
	ServerInstances   int
	NonRemotableEdges int
	PaperNote         string
}

// figureSpec maps one of the paper's distribution figures to a scenario.
type figureSpec struct {
	figure, scenario, note string
}

var figureSpecs = []figureSpec{
	{"Figure 4", "p_oldmsr", "paper: 8 of 295 components on the server"},
	{"Figure 5", "o_oldwp7", "paper: 2 of 458 on the server (reader + text properties)"},
	{"Figure 6", "b_bigone", "paper: 135 of 196 on the middle tier (programmer chose 187)"},
	{"Figure 7", "o_oldtb0", "paper: 1 of 476 on the server"},
	{"Figure 8", "o_oldbth", "paper: 281 of 786 on the server"},
}

// Figures regenerates the five distribution figures, one figure per
// worker on a bounded pool, in the paper's figure order.
func Figures(ctx context.Context) ([]FigureRow, error) {
	return parallelMap(ctx, figureSpecs, func(ctx context.Context, spec figureSpec) (FigureRow, error) {
		info, err := scenario.Lookup(spec.scenario)
		if err != nil {
			return FigureRow{}, err
		}
		app, err := scenario.NewApp(info.App)
		if err != nil {
			return FigureRow{}, err
		}
		adps := core.New(app)
		if err := adps.Instrument(); err != nil {
			return FigureRow{}, err
		}
		p, _, err := adps.ProfileScenario(spec.scenario, false)
		if err != nil {
			return FigureRow{}, err
		}
		res, err := adps.Analyze(ctx, p)
		if err != nil {
			return FigureRow{}, err
		}
		coign, err2 := func() (*core.ScenarioReport, error) {
			adps2 := core.New(app)
			return adps2.ScenarioExperiment(ctx, spec.scenario)
		}()
		if err2 != nil {
			return FigureRow{}, err2
		}
		return FigureRow{
			Figure:            spec.figure,
			Scenario:          spec.scenario,
			TotalInstances:    coign.TotalInstances,
			ServerInstances:   coign.ServerInstances,
			NonRemotableEdges: res.NonRemotableEdges,
			PaperNote:         spec.note,
		}, nil
	})
}

// Figure4 runs only the PhotoDraw distribution experiment.
func Figure4() (*ScenarioRow, error) { return RunScenario(context.Background(), "p_oldmsr") }

// Figure5 runs only the Octarine text-document distribution experiment.
func Figure5() (*ScenarioRow, error) { return RunScenario(context.Background(), "o_oldwp7") }

// Figure6 runs only the Benefits distribution experiment.
func Figure6() (*ScenarioRow, error) { return RunScenario(context.Background(), "b_bigone") }

// Figure7 runs only the Octarine table-document distribution experiment.
func Figure7() (*ScenarioRow, error) { return RunScenario(context.Background(), "o_oldtb0") }

// Figure8 runs only the Octarine mixed-document distribution experiment.
func Figure8() (*ScenarioRow, error) { return RunScenario(context.Background(), "o_oldbth") }

// PrintTable2 renders Table 2 in the paper's layout, with the purity
// grade counts appended (stateless/read-mostly/stateful).
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "%-24s %10s %8s %12s %12s %14s %8s\n",
		"Instance Classifier", "Profiled", "New", "Inst/Class", "Avg Corr", "SL/RM/SF", "Alias+")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %10d %8d %12.1f %12.3f %14s %8d\n",
			r.Classifier, r.ProfiledClassifications, r.NewClassifications,
			r.AvgInstances, r.AvgCorrelation,
			fmt.Sprintf("%d/%d/%d", r.Stateless, r.ReadMostly, r.Stateful), r.AliasEligible)
	}
}

// PrintTable3 renders Table 3, with the purity grade counts appended.
func PrintTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintf(w, "%-12s %10s %12s %12s %14s %8s\n", "Stack Depth", "Profiled", "Inst/Class", "Avg Corr", "SL/RM/SF", "Alias+")
	for _, r := range rows {
		depth := fmt.Sprintf("%d", r.Depth)
		if r.Depth == 0 {
			depth = "complete"
		}
		fmt.Fprintf(w, "%-12s %10d %12.1f %12.3f %14s %8d\n",
			depth, r.ProfiledClassifications, r.AvgInstances, r.AvgCorrelation,
			fmt.Sprintf("%d/%d/%d", r.Stateless, r.ReadMostly, r.Stateful), r.AliasEligible)
	}
}

// PrintTable4 renders Table 4 (communication time). The DefViol column
// surfaces analysis.Result.DefaultViolations: scenarios whose as-shipped
// distribution splits co-location constraints and was never realizable.
func PrintTable4(w io.Writer, rows []ScenarioRow) {
	fmt.Fprintf(w, "%-10s %12s %12s %9s %8s\n", "Scenario", "Default", "Coign", "Savings", "DefViol")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %11.3fs %11.3fs %8.0f%% %8d\n",
			r.Scenario, r.DefaultComm.Seconds(), r.CoignComm.Seconds(), r.Savings*100,
			r.DefaultViolations)
	}
}

// PrintTable5 renders Table 5 (prediction accuracy).
func PrintTable5(w io.Writer, rows []ScenarioRow) {
	fmt.Fprintf(w, "%-10s %12s %12s %8s\n", "Scenario", "Predicted", "Measured", "Error")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %11.1fs %11.1fs %+7.1f%%\n",
			r.Scenario, r.PredictedExec.Seconds(), r.MeasuredExec.Seconds(), r.PredictionErr*100)
	}
}

// PrintFigures renders the distribution-figure summaries.
func PrintFigures(w io.Writer, rows []FigureRow) {
	for _, r := range rows {
		fmt.Fprintf(w, "%s (%s): %d of %d components on the server; %d non-remotable edges\n    %s\n",
			r.Figure, r.Scenario, r.ServerInstances, r.TotalInstances,
			r.NonRemotableEdges, r.PaperNote)
	}
}

// Distribution returns the full analysis for one scenario, for figure
// drill-down (which classifications landed where).
func Distribution(ctx context.Context, name string) (*analysis.Result, error) {
	info, err := scenario.Lookup(name)
	if err != nil {
		return nil, err
	}
	app, err := scenario.NewApp(info.App)
	if err != nil {
		return nil, err
	}
	adps := core.New(app)
	if err := adps.Instrument(); err != nil {
		return nil, err
	}
	p, _, err := adps.ProfileScenario(name, false)
	if err != nil {
		return nil, err
	}
	return adps.Analyze(ctx, p)
}
