package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/graph"
)

// The cut-engine benchmark harness: synthetic ICC graphs from
// graph.Synthesize, the production CSR highest-label core timed against
// the legacy relabel-to-front path and (up to a size cap) the
// Edmonds–Karp oracle, with every weight cross-checked. `coign bench-cut`
// drives it and writes BENCH_graphcut.json; CI runs a small-size smoke of
// the same harness and fails on any oracle divergence.

// CutBenchConfig parameterizes a benchmark run.
type CutBenchConfig struct {
	// Sizes are the node counts to sweep (default 1k..100k).
	Sizes []int
	// Seed drives the workload generator; equal seeds give equal graphs.
	Seed int64
	// AvgDegree, PinFraction, CoLocateFraction, FreeFraction forward to
	// graph.SynthConfig (zero means that config's default).
	AvgDegree        int
	PinFraction      float64
	CoLocateFraction float64
	FreeFraction     float64
	// OracleMax caps the sizes the Edmonds–Karp oracle runs at: EK is
	// O(V·E²) and already needs minutes at 30k nodes. 0 means 30000.
	OracleMax int
	// OldMax caps the sizes the legacy relabel-to-front path runs at:
	// its scan-restart loop goes quadratic past ~100k nodes. 0 means
	// 100000; negative means unlimited.
	OldMax int
	// Repeat is how many times each timed algorithm runs per size; the
	// fastest and the mean run are reported separately (default 3).
	Repeat int
}

func (c CutBenchConfig) withDefaults() CutBenchConfig {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{1000, 3000, 10000, 30000, 100000, 300000, 1000000}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.OracleMax == 0 {
		c.OracleMax = 30000
	}
	if c.OldMax == 0 {
		c.OldMax = 100000
	}
	if c.Repeat <= 0 {
		c.Repeat = 3
	}
	return c
}

// CutBenchRow is one size point of the sweep.
type CutBenchRow struct {
	Nodes       int     `json:"nodes"`
	Edges       int     `json:"edges"`
	Pins        int     `json:"pins"`
	CoLocations int     `json:"colocations"`
	Weight      float64 `json:"cut_weight"`

	// NewNS is the production CSR highest-label core's wall time
	// (best of Repeat), in nanoseconds, with NewNSMean the mean of the
	// same runs — reported separately so a cold first run cannot be
	// folded invisibly into one number; NewAllocBytes its total heap
	// allocation for one build+cut.
	NewNS         int64  `json:"new_ns"`
	NewNSMean     int64  `json:"new_ns_mean"`
	NewAllocBytes uint64 `json:"new_alloc_bytes"`

	// WarmNS is an arena-backed re-cut of the identical graph (topology
	// and weights unchanged since the arena's previous cut): the layout
	// is reused and the solver resumes a finished flow, so this bounds
	// the per-window cost of adaptive repartitioning from below. Best of
	// Repeat; WarmNSMean the mean.
	WarmNS     int64 `json:"warm_ns"`
	WarmNSMean int64 `json:"warm_ns_mean"`
	// WarmPerturbedNS is an arena-backed re-cut after ~1% of edge weights
	// moved — the adaptive re-pricing shape. Best of Repeat rounds (each
	// round perturbs afresh); WarmPerturbedNSMean the mean. Every round's
	// warm cut is cross-checked against a fresh cold cut of the perturbed
	// graph, and against the Edmonds–Karp oracle at sizes <= OracleMax.
	WarmPerturbedNS     int64 `json:"warm_perturbed_ns"`
	WarmPerturbedNSMean int64 `json:"warm_perturbed_ns_mean"`
	// WarmSpeedup is NewNS / WarmNS: how many times cheaper an
	// unchanged-topology re-cut is than a cold build+cut.
	WarmSpeedup float64 `json:"warm_speedup_cold_over_warm"`

	// OldNS and OracleNS are the legacy relabel-to-front and Edmonds–Karp
	// times; zero when the size cap skipped the algorithm.
	OldNS    int64 `json:"old_ns"`
	OracleNS int64 `json:"oracle_ns"`

	// Speedup is OldNS/NewNS (0 when the old path was skipped).
	Speedup float64 `json:"speedup_old_over_new"`
	// WeightsAgree is true when every algorithm that ran returned the
	// same cut weight (within 1e-6 relative tolerance).
	WeightsAgree bool `json:"weights_agree"`

	// Replicated is how many components the replication-aware variant
	// cloned (a deterministic ~1% sample, minus pinned/welded nodes);
	// ReplWeight and ReplNS are the cut weight and time on the replicated
	// network. The harness fails if ReplWeight exceeds Weight: replication
	// only removes edges, so the cut can never get costlier.
	Replicated int     `json:"replicated"`
	ReplWeight float64 `json:"repl_weight"`
	ReplNS     int64   `json:"repl_ns"`
}

// benchSchema names the row layout; bump it whenever CutBenchRow's JSON
// fields change meaning so downstream readers can dispatch on it.
const benchSchema = "coign-bench-graphcut/2"

// benchColumns describes every row field in the emitted report, making
// the JSON self-describing: a reader never has to reverse-engineer what
// a timing column includes from the harness source.
func benchColumns() map[string]string {
	return map[string]string{
		"nodes":                       "graph size (nodes)",
		"edges":                       "distinct undirected edges",
		"pins":                        "terminal-pinned nodes",
		"colocations":                 "pair-wise co-location welds",
		"cut_weight":                  "minimum cut weight (seconds of communication)",
		"new_ns":                      "cold build+cut, CSR highest-label, best of `repeat` runs (ns)",
		"new_ns_mean":                 "cold build+cut, mean of the same runs (ns)",
		"new_alloc_bytes":             "heap allocated by one cold build+cut",
		"warm_ns":                     "arena re-cut, topology and weights unchanged, best of `repeat` (ns)",
		"warm_ns_mean":                "arena re-cut, unchanged, mean (ns)",
		"warm_perturbed_ns":           "arena warm re-cut after ~1% weight perturbation, best of `repeat` rounds (ns)",
		"warm_perturbed_ns_mean":      "arena warm re-cut after perturbation, mean (ns)",
		"warm_speedup_cold_over_warm": "new_ns / warm_ns",
		"old_ns":                      "legacy relabel-to-front build+cut, best of `repeat` (ns, 0 = skipped)",
		"oracle_ns":                   "Edmonds-Karp build+cut (ns, 0 = skipped)",
		"speedup_old_over_new":        "old_ns / new_ns (0 = old skipped)",
		"weights_agree":               "every algorithm that ran returned the same cut weight",
		"replicated":                  "components cloned by the replication-aware variant",
		"repl_weight":                 "cut weight on the replicated network",
		"repl_ns":                     "cold build+cut on the replicated network, best of `repeat` (ns)",
	}
}

// CutBenchReport is the full benchmark output, serialized to
// BENCH_graphcut.json.
type CutBenchReport struct {
	Schema    string            `json:"schema"`
	Columns   map[string]string `json:"columns"`
	Seed      int               `json:"seed"`
	OracleMax int               `json:"oracle_max_nodes"`
	Repeat    int               `json:"repeat"`
	Rows      []CutBenchRow     `json:"rows"`
}

// timeCut runs fn Repeat times on freshly synthesized copies of the
// workload and returns the fastest and mean wall times plus the last cut.
func timeCut(repeat int, mk func() *graph.Graph, cut func(*graph.Graph) (*graph.Cut, error)) (time.Duration, time.Duration, *graph.Cut, error) {
	best := time.Duration(math.MaxInt64)
	var total time.Duration
	var last *graph.Cut
	for r := 0; r < repeat; r++ {
		g := mk()
		start := time.Now()
		c, err := cut(g)
		elapsed := time.Since(start)
		if err != nil {
			return 0, 0, nil, err
		}
		if elapsed < best {
			best = elapsed
		}
		total += elapsed
		last = c
	}
	return best, total / time.Duration(repeat), last, nil
}

// RunCutBench sweeps the configured sizes. Any weight divergence between
// the production core and an oracle that ran is an error — the benchmark
// doubles as a correctness gate.
func RunCutBench(cfg CutBenchConfig, progress io.Writer) (*CutBenchReport, error) {
	cfg = cfg.withDefaults()
	rep := &CutBenchReport{
		Schema:    benchSchema,
		Columns:   benchColumns(),
		Seed:      int(cfg.Seed),
		OracleMax: cfg.OracleMax,
		Repeat:    cfg.Repeat,
	}
	ctx := context.Background()
	for _, n := range cfg.Sizes {
		mk := func() *graph.Graph {
			return graph.Synthesize(graph.SynthConfig{
				Nodes:            n,
				AvgDegree:        cfg.AvgDegree,
				PinFraction:      cfg.PinFraction,
				CoLocateFraction: cfg.CoLocateFraction,
				FreeFraction:     cfg.FreeFraction,
				Seed:             cfg.Seed,
			})
		}
		g := mk()
		row := CutBenchRow{
			Nodes:       g.Len(),
			Edges:       g.Edges(),
			Pins:        g.Pins(),
			CoLocations: g.CoLocations(),
		}
		if progress != nil {
			fmt.Fprintf(progress, "n=%d (%d edges): highest-label...", row.Nodes, row.Edges)
		}

		// Allocation footprint of one build+cut on the production path.
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		warm, err := g.MinCut()
		if err != nil {
			return nil, fmt.Errorf("bench-cut: n=%d: %w", n, err)
		}
		runtime.ReadMemStats(&after)
		row.NewAllocBytes = after.TotalAlloc - before.TotalAlloc
		row.Weight = warm.Weight

		newT, newMean, newCut, err := timeCut(cfg.Repeat, mk, (*graph.Graph).MinCut)
		if err != nil {
			return nil, fmt.Errorf("bench-cut: n=%d: %w", n, err)
		}
		row.NewNS = newT.Nanoseconds()
		row.NewNSMean = newMean.Nanoseconds()
		row.WeightsAgree = true
		tol := 1e-6 * (1 + newCut.Weight)

		// Warm re-cut columns: one arena, one cold staging cut, then timed
		// re-cuts. The unchanged sweep bounds the no-op re-cut (layout
		// reuse + an already-finished flow); the perturbed sweep re-prices
		// ~1% of the edges each round, the adaptive-repartitioning shape.
		// Every warm weight is checked against the cold result — the
		// harness is a correctness gate first.
		if progress != nil {
			fmt.Fprintf(progress, " warm...")
		}
		if err := runWarmBench(ctx, cfg, g, newCut, &row, tol); err != nil {
			row.WeightsAgree = false
			return rep, err
		}

		if cfg.OldMax == 0 || n <= cfg.OldMax {
			if progress != nil {
				fmt.Fprintf(progress, " relabel-to-front...")
			}
			oldT, _, oldCut, err := timeCut(cfg.Repeat, mk, (*graph.Graph).MinCutRelabelToFront)
			if err != nil {
				return nil, fmt.Errorf("bench-cut: n=%d old: %w", n, err)
			}
			row.OldNS = oldT.Nanoseconds()
			row.Speedup = float64(row.OldNS) / float64(row.NewNS)
			if math.Abs(oldCut.Weight-newCut.Weight) > tol {
				row.WeightsAgree = false
				return rep, fmt.Errorf("bench-cut: n=%d: relabel-to-front weight %v != %v", n, oldCut.Weight, newCut.Weight)
			}
		}
		if n <= cfg.OracleMax {
			if progress != nil {
				fmt.Fprintf(progress, " edmonds-karp...")
			}
			ekT, _, ekCut, err := timeCut(1, mk, (*graph.Graph).MinCutEdmondsKarp)
			if err != nil {
				return nil, fmt.Errorf("bench-cut: n=%d oracle: %w", n, err)
			}
			row.OracleNS = ekT.Nanoseconds()
			if math.Abs(ekCut.Weight-newCut.Weight) > tol {
				row.WeightsAgree = false
				return rep, fmt.Errorf("bench-cut: n=%d: oracle weight %v != %v", n, ekCut.Weight, newCut.Weight)
			}
		}

		// Replication-aware cut on the same workload: clone the sampled
		// components, drop their ICC edges, re-cut. Timed on the reduced
		// network so the column compares cut cost, not clone setup. A
		// replicated cut above the plain one is an engine bug — the copy
		// has a strict subset of the edges.
		if progress != nil {
			fmt.Fprintf(progress, " replicated...")
		}
		eligible := replicationCandidates(g)
		_, cloned := g.Replicate(eligible)
		row.Replicated = len(cloned)
		mkRepl := func() *graph.Graph {
			rg, _ := mk().Replicate(eligible)
			return rg
		}
		replT, _, replCut, err := timeCut(cfg.Repeat, mkRepl, (*graph.Graph).MinCut)
		if err != nil {
			return nil, fmt.Errorf("bench-cut: n=%d replicated: %w", n, err)
		}
		row.ReplNS = replT.Nanoseconds()
		row.ReplWeight = replCut.Weight
		if replCut.Weight > newCut.Weight+tol {
			row.WeightsAgree = false
			return rep, fmt.Errorf("bench-cut: n=%d: replicated cut weight %v exceeds plain %v", n, replCut.Weight, newCut.Weight)
		}

		if progress != nil {
			fmt.Fprintf(progress, " done (%.1fms)\n", float64(row.NewNS)/1e6)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// runWarmBench fills the warm-start columns of one row: timed re-cuts of
// g through a single arena, first with nothing changed, then with ~1% of
// the edge weights re-priced per round. It mutates g's weights and leaves
// them perturbed; callers must not reuse g's weights afterwards.
func runWarmBench(ctx context.Context, cfg CutBenchConfig, g *graph.Graph, newCut *graph.Cut, row *CutBenchRow, tol float64) error {
	n := row.Nodes
	arena := graph.NewCutArena()
	coldCut, err := g.MinCutArena(ctx, arena)
	if err != nil {
		return fmt.Errorf("bench-cut: n=%d warm staging: %w", n, err)
	}
	if math.Abs(coldCut.Weight-newCut.Weight) > tol {
		return fmt.Errorf("bench-cut: n=%d: arena cold weight %v != %v", n, coldCut.Weight, newCut.Weight)
	}

	best := time.Duration(math.MaxInt64)
	var total time.Duration
	for r := 0; r < cfg.Repeat; r++ {
		start := time.Now()
		c, err := g.MinCutArena(ctx, arena)
		elapsed := time.Since(start)
		if err != nil {
			return fmt.Errorf("bench-cut: n=%d warm: %w", n, err)
		}
		if math.Abs(c.Weight-newCut.Weight) > tol {
			return fmt.Errorf("bench-cut: n=%d: warm weight %v != cold %v", n, c.Weight, newCut.Weight)
		}
		if elapsed < best {
			best = elapsed
		}
		total += elapsed
	}
	row.WarmNS = best.Nanoseconds()
	row.WarmNSMean = (total / time.Duration(cfg.Repeat)).Nanoseconds()
	if row.WarmNS > 0 {
		row.WarmSpeedup = float64(row.NewNS) / float64(row.WarmNS)
	}

	// Perturbed rounds: re-price ~1% of the edges each round (the rng is
	// seeded from the workload seed, so the sweep reproduces), warm
	// re-cut, and cross-check against an independent cold cut of the now
	// perturbed graph — weights and the exact assignment, which phase-1
	// push-relabel pins to the t-minimal minimum cut regardless of start.
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x77a7))
	names := g.EdgeNames()
	var warmCut *graph.Cut
	best = time.Duration(math.MaxInt64)
	total = 0
	for r := 0; r < cfg.Repeat; r++ {
		for _, e := range names {
			if rng.Float64() < 0.01 {
				g.SetEdgeWeight(e[0], e[1], g.EdgeWeight(e[0], e[1])*(0.5+rng.Float64()))
			}
		}
		start := time.Now()
		warmCut, err = g.MinCutArena(ctx, arena)
		elapsed := time.Since(start)
		if err != nil {
			return fmt.Errorf("bench-cut: n=%d warm perturbed: %w", n, err)
		}
		coldCut, err := g.MinCut()
		if err != nil {
			return fmt.Errorf("bench-cut: n=%d cold perturbed: %w", n, err)
		}
		ptol := 1e-6 * (1 + coldCut.Weight)
		if math.Abs(warmCut.Weight-coldCut.Weight) > ptol {
			return fmt.Errorf("bench-cut: n=%d round %d: perturbed warm weight %v != cold %v", n, r, warmCut.Weight, coldCut.Weight)
		}
		for name, side := range coldCut.Assignment {
			if warmCut.Assignment[name] != side {
				return fmt.Errorf("bench-cut: n=%d round %d: perturbed warm and cold cuts assign %s differently", n, r, name)
			}
		}
		if elapsed < best {
			best = elapsed
		}
		total += elapsed
	}
	row.WarmPerturbedNS = best.Nanoseconds()
	row.WarmPerturbedNSMean = (total / time.Duration(cfg.Repeat)).Nanoseconds()

	// The perturbed end state goes through the full oracle at small sizes.
	if n <= cfg.OracleMax {
		ekCut, err := g.MinCutEdmondsKarp()
		if err != nil {
			return fmt.Errorf("bench-cut: n=%d perturbed oracle: %w", n, err)
		}
		if math.Abs(warmCut.Weight-ekCut.Weight) > 1e-6*(1+ekCut.Weight) {
			return fmt.Errorf("bench-cut: n=%d: perturbed warm weight %v != oracle %v", n, warmCut.Weight, ekCut.Weight)
		}
	}
	return nil
}

// replicationCandidates picks every 100th component, in node insertion
// order, as replication-eligible — a deterministic ~1% sample that is
// stable for a given seed and size. Pinned and welded candidates are
// skipped by Replicate itself.
func replicationCandidates(g *graph.Graph) []string {
	names := g.NodeNames()
	out := make([]string, 0, len(names)/100+1)
	for i := 0; i < len(names); i += 100 {
		out = append(out, names[i])
	}
	return out
}

// WriteJSON serializes the report (indented, trailing newline).
func (r *CutBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// PrintCutBench renders the sweep as a table. The repl-cut column is the
// replicated cut weight as a fraction of the plain one — how much of the
// communication cost vanishes when the sampled components are cloned.
func PrintCutBench(w io.Writer, rep *CutBenchReport) {
	fmt.Fprintf(w, "%8s %9s %12s %12s %12s %8s %12s %12s %9s %10s %6s %6s %12s %9s\n",
		"nodes", "edges", "hi-label", "warm", "warm-pert", "warm-x", "lift-front", "edmonds-k",
		"speedup", "alloc", "agree", "repl", "repl-time", "repl-cut")
	ms := func(ns int64) string {
		if ns == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	}
	for _, r := range rep.Rows {
		speed := "-"
		if r.Speedup > 0 {
			speed = fmt.Sprintf("%.1fx", r.Speedup)
		}
		warmX := "-"
		if r.WarmSpeedup > 0 {
			warmX = fmt.Sprintf("%.1fx", r.WarmSpeedup)
		}
		frac := "-"
		if r.Weight > 0 {
			frac = fmt.Sprintf("%.3f", r.ReplWeight/r.Weight)
		}
		fmt.Fprintf(w, "%8d %9d %12s %12s %12s %8s %12s %12s %9s %9.1fM %6v %6d %12s %9s\n",
			r.Nodes, r.Edges, ms(r.NewNS), ms(r.WarmNS), ms(r.WarmPerturbedNS), warmX,
			ms(r.OldNS), ms(r.OracleNS),
			speed, float64(r.NewAllocBytes)/1e6, r.WeightsAgree,
			r.Replicated, ms(r.ReplNS), frac)
	}
}
