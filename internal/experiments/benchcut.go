package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"repro/internal/graph"
)

// The cut-engine benchmark harness: synthetic ICC graphs from
// graph.Synthesize, the production CSR highest-label core timed against
// the legacy relabel-to-front path and (up to a size cap) the
// Edmonds–Karp oracle, with every weight cross-checked. `coign bench-cut`
// drives it and writes BENCH_graphcut.json; CI runs a small-size smoke of
// the same harness and fails on any oracle divergence.

// CutBenchConfig parameterizes a benchmark run.
type CutBenchConfig struct {
	// Sizes are the node counts to sweep (default 1k..100k).
	Sizes []int
	// Seed drives the workload generator; equal seeds give equal graphs.
	Seed int64
	// AvgDegree, PinFraction, CoLocateFraction, FreeFraction forward to
	// graph.SynthConfig (zero means that config's default).
	AvgDegree        int
	PinFraction      float64
	CoLocateFraction float64
	FreeFraction     float64
	// OracleMax caps the sizes the Edmonds–Karp oracle runs at: EK is
	// O(V·E²) and already needs minutes at 30k nodes. 0 means 30000.
	OracleMax int
	// OldMax caps the sizes the legacy relabel-to-front path runs at:
	// its scan-restart loop goes quadratic past ~100k nodes. 0 means
	// 100000; negative means unlimited.
	OldMax int
	// Repeat is how many times each timed algorithm runs per size; the
	// fastest run is reported (default 3).
	Repeat int
}

func (c CutBenchConfig) withDefaults() CutBenchConfig {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{1000, 3000, 10000, 30000, 100000, 300000, 1000000}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.OracleMax == 0 {
		c.OracleMax = 30000
	}
	if c.OldMax == 0 {
		c.OldMax = 100000
	}
	if c.Repeat <= 0 {
		c.Repeat = 3
	}
	return c
}

// CutBenchRow is one size point of the sweep.
type CutBenchRow struct {
	Nodes       int     `json:"nodes"`
	Edges       int     `json:"edges"`
	Pins        int     `json:"pins"`
	CoLocations int     `json:"colocations"`
	Weight      float64 `json:"cut_weight"`

	// NewNS is the production CSR highest-label core's wall time
	// (best of Repeat), in nanoseconds; NewAllocBytes its total heap
	// allocation for one build+cut.
	NewNS         int64  `json:"new_ns"`
	NewAllocBytes uint64 `json:"new_alloc_bytes"`

	// OldNS and OracleNS are the legacy relabel-to-front and Edmonds–Karp
	// times; zero when the size cap skipped the algorithm.
	OldNS    int64 `json:"old_ns"`
	OracleNS int64 `json:"oracle_ns"`

	// Speedup is OldNS/NewNS (0 when the old path was skipped).
	Speedup float64 `json:"speedup_old_over_new"`
	// WeightsAgree is true when every algorithm that ran returned the
	// same cut weight (within 1e-6 relative tolerance).
	WeightsAgree bool `json:"weights_agree"`

	// Replicated is how many components the replication-aware variant
	// cloned (a deterministic ~1% sample, minus pinned/welded nodes);
	// ReplWeight and ReplNS are the cut weight and time on the replicated
	// network. The harness fails if ReplWeight exceeds Weight: replication
	// only removes edges, so the cut can never get costlier.
	Replicated int     `json:"replicated"`
	ReplWeight float64 `json:"repl_weight"`
	ReplNS     int64   `json:"repl_ns"`
}

// CutBenchReport is the full benchmark output, serialized to
// BENCH_graphcut.json.
type CutBenchReport struct {
	Seed      int           `json:"seed"`
	OracleMax int           `json:"oracle_max_nodes"`
	Repeat    int           `json:"repeat"`
	Rows      []CutBenchRow `json:"rows"`
}

// timeCut runs fn Repeat times on freshly synthesized copies of the
// workload and returns the fastest wall time plus the last cut.
func timeCut(repeat int, mk func() *graph.Graph, cut func(*graph.Graph) (*graph.Cut, error)) (time.Duration, *graph.Cut, error) {
	best := time.Duration(math.MaxInt64)
	var last *graph.Cut
	for r := 0; r < repeat; r++ {
		g := mk()
		start := time.Now()
		c, err := cut(g)
		elapsed := time.Since(start)
		if err != nil {
			return 0, nil, err
		}
		if elapsed < best {
			best = elapsed
		}
		last = c
	}
	return best, last, nil
}

// RunCutBench sweeps the configured sizes. Any weight divergence between
// the production core and an oracle that ran is an error — the benchmark
// doubles as a correctness gate.
func RunCutBench(cfg CutBenchConfig, progress io.Writer) (*CutBenchReport, error) {
	cfg = cfg.withDefaults()
	rep := &CutBenchReport{Seed: int(cfg.Seed), OracleMax: cfg.OracleMax, Repeat: cfg.Repeat}
	for _, n := range cfg.Sizes {
		mk := func() *graph.Graph {
			return graph.Synthesize(graph.SynthConfig{
				Nodes:            n,
				AvgDegree:        cfg.AvgDegree,
				PinFraction:      cfg.PinFraction,
				CoLocateFraction: cfg.CoLocateFraction,
				FreeFraction:     cfg.FreeFraction,
				Seed:             cfg.Seed,
			})
		}
		g := mk()
		row := CutBenchRow{
			Nodes:       g.Len(),
			Edges:       g.Edges(),
			Pins:        g.Pins(),
			CoLocations: g.CoLocations(),
		}
		if progress != nil {
			fmt.Fprintf(progress, "n=%d (%d edges): highest-label...", row.Nodes, row.Edges)
		}

		// Allocation footprint of one build+cut on the production path.
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		warm, err := g.MinCut()
		if err != nil {
			return nil, fmt.Errorf("bench-cut: n=%d: %w", n, err)
		}
		runtime.ReadMemStats(&after)
		row.NewAllocBytes = after.TotalAlloc - before.TotalAlloc
		row.Weight = warm.Weight

		newT, newCut, err := timeCut(cfg.Repeat, mk, (*graph.Graph).MinCut)
		if err != nil {
			return nil, fmt.Errorf("bench-cut: n=%d: %w", n, err)
		}
		row.NewNS = newT.Nanoseconds()
		row.WeightsAgree = true
		tol := 1e-6 * (1 + newCut.Weight)

		if cfg.OldMax == 0 || n <= cfg.OldMax {
			if progress != nil {
				fmt.Fprintf(progress, " relabel-to-front...")
			}
			oldT, oldCut, err := timeCut(cfg.Repeat, mk, (*graph.Graph).MinCutRelabelToFront)
			if err != nil {
				return nil, fmt.Errorf("bench-cut: n=%d old: %w", n, err)
			}
			row.OldNS = oldT.Nanoseconds()
			row.Speedup = float64(row.OldNS) / float64(row.NewNS)
			if math.Abs(oldCut.Weight-newCut.Weight) > tol {
				row.WeightsAgree = false
				return rep, fmt.Errorf("bench-cut: n=%d: relabel-to-front weight %v != %v", n, oldCut.Weight, newCut.Weight)
			}
		}
		if n <= cfg.OracleMax {
			if progress != nil {
				fmt.Fprintf(progress, " edmonds-karp...")
			}
			ekT, ekCut, err := timeCut(1, mk, (*graph.Graph).MinCutEdmondsKarp)
			if err != nil {
				return nil, fmt.Errorf("bench-cut: n=%d oracle: %w", n, err)
			}
			row.OracleNS = ekT.Nanoseconds()
			if math.Abs(ekCut.Weight-newCut.Weight) > tol {
				row.WeightsAgree = false
				return rep, fmt.Errorf("bench-cut: n=%d: oracle weight %v != %v", n, ekCut.Weight, newCut.Weight)
			}
		}

		// Replication-aware cut on the same workload: clone the sampled
		// components, drop their ICC edges, re-cut. Timed on the reduced
		// network so the column compares cut cost, not clone setup. A
		// replicated cut above the plain one is an engine bug — the copy
		// has a strict subset of the edges.
		if progress != nil {
			fmt.Fprintf(progress, " replicated...")
		}
		eligible := replicationCandidates(g)
		_, cloned := g.Replicate(eligible)
		row.Replicated = len(cloned)
		mkRepl := func() *graph.Graph {
			rg, _ := mk().Replicate(eligible)
			return rg
		}
		replT, replCut, err := timeCut(cfg.Repeat, mkRepl, (*graph.Graph).MinCut)
		if err != nil {
			return nil, fmt.Errorf("bench-cut: n=%d replicated: %w", n, err)
		}
		row.ReplNS = replT.Nanoseconds()
		row.ReplWeight = replCut.Weight
		if replCut.Weight > newCut.Weight+tol {
			row.WeightsAgree = false
			return rep, fmt.Errorf("bench-cut: n=%d: replicated cut weight %v exceeds plain %v", n, replCut.Weight, newCut.Weight)
		}

		if progress != nil {
			fmt.Fprintf(progress, " done (%.1fms)\n", float64(row.NewNS)/1e6)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// replicationCandidates picks every 100th component, in node insertion
// order, as replication-eligible — a deterministic ~1% sample that is
// stable for a given seed and size. Pinned and welded candidates are
// skipped by Replicate itself.
func replicationCandidates(g *graph.Graph) []string {
	names := g.NodeNames()
	out := make([]string, 0, len(names)/100+1)
	for i := 0; i < len(names); i += 100 {
		out = append(out, names[i])
	}
	return out
}

// WriteJSON serializes the report (indented, trailing newline).
func (r *CutBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// PrintCutBench renders the sweep as a table. The repl-cut column is the
// replicated cut weight as a fraction of the plain one — how much of the
// communication cost vanishes when the sampled components are cloned.
func PrintCutBench(w io.Writer, rep *CutBenchReport) {
	fmt.Fprintf(w, "%8s %9s %12s %12s %12s %9s %10s %6s %6s %12s %9s\n",
		"nodes", "edges", "hi-label", "lift-front", "edmonds-k", "speedup", "alloc", "agree",
		"repl", "repl-time", "repl-cut")
	ms := func(ns int64) string {
		if ns == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	}
	for _, r := range rep.Rows {
		speed := "-"
		if r.Speedup > 0 {
			speed = fmt.Sprintf("%.1fx", r.Speedup)
		}
		frac := "-"
		if r.Weight > 0 {
			frac = fmt.Sprintf("%.3f", r.ReplWeight/r.Weight)
		}
		fmt.Fprintf(w, "%8d %9d %12s %12s %12s %9s %9.1fM %6v %6d %12s %9s\n",
			r.Nodes, r.Edges, ms(r.NewNS), ms(r.OldNS), ms(r.OracleNS),
			speed, float64(r.NewAllocBytes)/1e6, r.WeightsAgree,
			r.Replicated, ms(r.ReplNS), frac)
	}
}
