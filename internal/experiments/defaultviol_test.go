package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/synthapp"
)

// TestDefaultViolationsSurfaced checks the ROADMAP leftover end to end:
// the synth family that plants an infeasible default distribution must
// produce a non-zero DefaultViolations count in its Table 4 row and in
// the rendered table, while a clean family reports zero.
func TestDefaultViolationsSurfaced(t *testing.T) {
	t.Parallel()
	planted, err := synthapp.Generate(synthapp.Config{Family: synthapp.ThreeTier, Seed: 5})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	row, err := ScenarioRowFor(context.Background(), planted.App, planted.App.Name, planted.Bigone)
	if err != nil {
		t.Fatalf("ScenarioRowFor: %v", err)
	}
	if row.DefaultViolations == 0 {
		t.Fatal("three-tier plants an infeasible default but the row reports zero DefaultViolations")
	}

	clean, err := synthapp.Generate(synthapp.Config{Family: synthapp.CacheHeavy, Seed: 5})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	cleanRow, err := ScenarioRowFor(context.Background(), clean.App, clean.App.Name, clean.Bigone)
	if err != nil {
		t.Fatalf("ScenarioRowFor: %v", err)
	}
	if cleanRow.DefaultViolations != 0 {
		t.Fatalf("cache-heavy reported %d DefaultViolations, want 0", cleanRow.DefaultViolations)
	}

	var sb strings.Builder
	PrintTable4(&sb, []ScenarioRow{*row, *cleanRow})
	out := sb.String()
	if !strings.Contains(out, "DefViol") {
		t.Fatalf("Table 4 header lacks DefViol column:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("unexpected table shape:\n%s", out)
	}
	if !strings.HasSuffix(strings.TrimRight(lines[2], " "), " 0") {
		t.Fatalf("clean row does not end with a zero DefViol count:\n%s", out)
	}
}
