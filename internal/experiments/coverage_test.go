package experiments

import (
	"context"
	"testing"
)

// TestCoverageAllApps is the acceptance gate for the scenario-coverage
// analysis: every suite application's static metadata must fully explain
// its profiled training suite (zero misses), and the over-approximate
// static graph must be non-trivial.
func TestCoverageAllApps(t *testing.T) {
	t.Parallel()
	rows, err := CoverageAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("measured %d apps, want 3", len(rows))
	}
	for _, row := range rows {
		if row.Misses != 0 {
			t.Errorf("%s: %d static misses (stale activation metadata): %v",
				row.App, row.Misses, row.Coverage.Misses)
		}
		if row.Sites == 0 || row.Edges == 0 {
			t.Errorf("%s: trivial static graph (%d sites, %d edges)", row.App, row.Sites, row.Edges)
		}
		if row.SitesCovered != row.Sites {
			t.Errorf("%s: training suite leaves activation sites unexercised (%d/%d)",
				row.App, row.SitesCovered, row.Sites)
		}
		if row.Percent < 50 {
			t.Errorf("%s: coverage %.1f%% below sanity floor", row.App, row.Percent)
		}
	}
}

// TestCoverageQuickstartRow pins the demonstration app's numbers: the
// deliberately unprofiled print-preview path keeps it below 100%.
func TestCoverageQuickstartRow(t *testing.T) {
	t.Parallel()
	row, err := Coverage("quickstart", nil)
	if err != nil {
		t.Fatal(err)
	}
	if row.Percent >= 100 {
		t.Errorf("quickstart fully covered (%.1f%%); the gate example lost its uncovered edge", row.Percent)
	}
	if row.Installed == 0 {
		t.Error("quickstart installed no coverage constraints")
	}
	if row.Misses != 0 {
		t.Errorf("quickstart misses: %v", row.Coverage.Misses)
	}
}
