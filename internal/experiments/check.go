package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/staticanal"
)

// CheckRow is the result of running the static constraint analyzer over
// one application and verifying it against the profiled scenario suite.
type CheckRow struct {
	App    string
	Report *staticanal.Report

	// Constraint-set summary.
	Pins         int
	Pairs        int
	NonRemotable int
	Conditional  int

	// Scenarios verified against the static prediction.
	Scenarios []string
	// Pinned counts classifications the constraint set pinned during
	// analysis; Welded counts statically welded profile edges.
	Pinned int
	Welded int
	// Violations counts error-severity findings (constraint-breaking
	// cuts); Warnings counts static/dynamic divergences.
	Violations int
	Warnings   int
}

// Check runs the static analyzer over one application, then (when
// scenarios is non-empty) profiles the scenarios, cuts the graph under the
// derived constraints, and cross-checks prediction against observation.
// The verifier's findings accumulate into the returned row's report.
func Check(ctx context.Context, appName string, scenarios []string) (*CheckRow, error) {
	app, err := scenario.NewApp(appName)
	if err != nil {
		return nil, err
	}
	adps := core.New(app)
	if adps.Static == nil {
		return nil, fmt.Errorf("experiments: %s: static analysis produced no report", appName)
	}
	rep := adps.Static
	row := &CheckRow{
		App:       appName,
		Report:    rep,
		Pins:      len(rep.Constraints.Pins),
		Pairs:     len(rep.Constraints.Pairs),
		Scenarios: scenarios,
	}
	_, row.Conditional, row.NonRemotable = rep.CountByRemotability()

	if len(scenarios) == 0 {
		return row, nil
	}
	if err := adps.Instrument(); err != nil {
		return nil, err
	}
	p, err := adps.ProfileScenarios(scenarios, false)
	if err != nil {
		return nil, err
	}
	res, err := adps.Analyze(ctx, p)
	if err != nil {
		return nil, err
	}
	row.Pinned = res.Constrained
	row.Welded = res.StaticCoLocations
	rep.AddFindings(res.Findings...)
	row.Violations = staticanal.ErrorCount(res.Findings)
	row.Warnings = len(res.Findings) - row.Violations
	return row, nil
}

// CheckAll runs Check over every application with its full training
// scenario suite, one application per worker on a bounded pool.
func CheckAll(ctx context.Context) ([]*CheckRow, error) {
	return parallelMap(ctx, scenario.Apps(), func(ctx context.Context, appName string) (*CheckRow, error) {
		return Check(ctx, appName, scenario.TrainingForApp(appName))
	})
}
