package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/netsim"
)

func TestTable2Shape(t *testing.T) {
	t.Parallel()
	rows, err := Table2("octarine")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7 classifiers", len(rows))
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Classifier] = r
	}
	inc, st, ifcb := byName["incremental"], byName["st"], byName["ifcb"]
	if inc.NewClassifications == 0 {
		t.Error("incremental found no new classifications on bigone")
	}
	if ifcb.NewClassifications != 0 || st.NewClassifications != 0 {
		t.Error("stable classifiers produced new classifications")
	}
	if !(st.ProfiledClassifications < ifcb.ProfiledClassifications) {
		t.Errorf("granularity ordering: st=%d ifcb=%d",
			st.ProfiledClassifications, ifcb.ProfiledClassifications)
	}
	if ifcb.AvgCorrelation < st.AvgCorrelation || inc.AvgCorrelation > 0.5 {
		t.Errorf("correlation ordering: ifcb=%.3f st=%.3f inc=%.3f",
			ifcb.AvgCorrelation, st.AvgCorrelation, inc.AvgCorrelation)
	}
	var sb strings.Builder
	PrintTable2(&sb, rows)
	if !strings.Contains(sb.String(), "ifcb") {
		t.Error("PrintTable2 output incomplete")
	}
}

func TestTable3Shape(t *testing.T) {
	t.Parallel()
	rows, err := Table3("octarine")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Table3Depths) {
		t.Fatalf("rows = %d", len(rows))
	}
	// Classification count is non-decreasing in depth, and the complete
	// walk matches depth 16 (saturation).
	for i := 1; i < len(rows); i++ {
		if rows[i].ProfiledClassifications < rows[i-1].ProfiledClassifications {
			t.Errorf("depth %d: classifications decreased", rows[i].Depth)
		}
	}
	last, complete := rows[len(rows)-2], rows[len(rows)-1]
	if last.ProfiledClassifications != complete.ProfiledClassifications {
		t.Errorf("depth-16 (%d) did not saturate to complete (%d)",
			last.ProfiledClassifications, complete.ProfiledClassifications)
	}
	var sb strings.Builder
	PrintTable3(&sb, rows)
	if !strings.Contains(sb.String(), "complete") {
		t.Error("PrintTable3 output incomplete")
	}
}

func TestRunScenarioAndPrinters(t *testing.T) {
	t.Parallel()
	row, err := RunScenario(context.Background(), "b_vueone")
	if err != nil {
		t.Fatal(err)
	}
	if row.App != "benefits" || row.DefaultComm <= 0 {
		t.Fatalf("row = %+v", row)
	}
	if row.Violations != 0 {
		t.Errorf("violations = %d", row.Violations)
	}
	var sb strings.Builder
	PrintTable4(&sb, []ScenarioRow{*row})
	PrintTable5(&sb, []ScenarioRow{*row})
	if !strings.Contains(sb.String(), "b_vueone") {
		t.Error("printers dropped the scenario")
	}
	if _, err := RunScenario(context.Background(), "nope"); err == nil {
		t.Error("unknown scenario ran")
	}
}

func TestFigureHelpers(t *testing.T) {
	t.Parallel()
	f7, err := Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if f7.ServerInstances != 1 {
		t.Errorf("Figure 7 server components = %d, want 1", f7.ServerInstances)
	}
	f5, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if f5.ServerInstances != 2 {
		t.Errorf("Figure 5 server components = %d, want 2", f5.ServerInstances)
	}
}

func TestMeasureOverheadOrdering(t *testing.T) {
	t.Parallel()
	row, err := MeasureOverhead("o_oldwp0", 3)
	if err != nil {
		t.Fatal(err)
	}
	// Profiling costs more than the lightweight distribution informer.
	if row.Profiling <= row.Distribution {
		t.Errorf("profiling %v not slower than distribution %v", row.Profiling, row.Distribution)
	}
	if row.ProfilingOverhead <= row.DistributionOverhead {
		t.Errorf("overhead ordering: profiling %+.0f%% vs distribution %+.0f%%",
			row.ProfilingOverhead*100, row.DistributionOverhead*100)
	}
	if row.String() == "" {
		t.Error("empty overhead string")
	}
	if _, err := MeasureOverhead("nope", 1); err == nil {
		t.Error("unknown scenario measured")
	}
}

func TestAdaptiveRepartitioning(t *testing.T) {
	t.Parallel()
	rows, err := Adaptive(context.Background(), "o_oldwp7", []string{"ISDN", "10BaseT", "ATM"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// All networks profit from moving the reader for the 208-page doc; the
	// absolute predicted times shrink as the network gets faster.
	if !(rows[0].PredictedComm > rows[1].PredictedComm &&
		rows[1].PredictedComm > rows[2].PredictedComm) {
		t.Errorf("predicted comm not decreasing with network speed: %v %v %v",
			rows[0].PredictedComm, rows[1].PredictedComm, rows[2].PredictedComm)
	}
	for _, r := range rows {
		if r.Savings <= 0 {
			t.Errorf("%s: no savings", r.Network)
		}
	}
	// The ICC topology is network-independent, so every re-analysis after
	// the first must have warm-started from the shared re-cut arena.
	if rows[0].WarmCut {
		t.Error("first network's cut reported warm")
	}
	for _, r := range rows[1:] {
		if !r.WarmCut {
			t.Errorf("%s: re-cut did not warm-start", r.Network)
		}
	}
	if _, err := Adaptive(context.Background(), "o_oldwp7", []string{"smoke-signals"}); err == nil {
		t.Error("unknown network accepted")
	}
	if _, err := Adaptive(context.Background(), "nope", nil); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestCompareMinCut(t *testing.T) {
	t.Parallel()
	cmp, err := CompareMinCut("o_oldbth")
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.WeightsAgree {
		t.Errorf("algorithms disagree: ltf=%v ek=%v", cmp.WeightLTF, cmp.WeightEK)
	}
	if cmp.Nodes < 100 {
		t.Errorf("graph too small: %d nodes", cmp.Nodes)
	}
}

func TestCompareBucketing(t *testing.T) {
	t.Parallel()
	cmp, err := CompareBucketing("o_oldwp7")
	if err != nil {
		t.Fatal(err)
	}
	// Bucket quantization stays within a factor-of-two envelope of exact
	// pricing; the paper relies on it not changing placement decisions.
	if cmp.RelativeError > 1.0 {
		t.Errorf("bucketing error = %v", cmp.RelativeError)
	}
	if !cmp.SamePlacement {
		t.Error("bucketing changed the placement")
	}
}

func TestCompareNetworkProfile(t *testing.T) {
	t.Parallel()
	cmp, err := CompareNetworkProfile("o_oldtb3", 25)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.RelativeError > 0.2 {
		t.Errorf("sampled profile error = %v", cmp.RelativeError)
	}
	if !cmp.SamePlacement {
		t.Error("sampling noise flipped the placement")
	}
}

func TestSyntheticCutInstance(t *testing.T) {
	t.Parallel()
	g := SyntheticCutInstance(500, 1)
	if g.Len() < 500 {
		t.Fatalf("nodes = %d", g.Len())
	}
	cut, err := g.MinCut()
	if err != nil {
		t.Fatal(err)
	}
	if cut.Weight < 0 {
		t.Fatal("negative cut")
	}
}

func TestFiguresBundleAndPrinter(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("runs all five figures")
	}
	rows, err := Figures(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("figures = %d", len(rows))
	}
	var sb strings.Builder
	PrintFigures(&sb, rows)
	for _, want := range []string{"Figure 4", "Figure 8"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("printer missing %s", want)
		}
	}
	_ = netsim.TenBaseT
}

func TestDistributionDrillDown(t *testing.T) {
	t.Parallel()
	res, err := Distribution(context.Background(), "p_oldmsr")
	if err != nil {
		t.Fatal(err)
	}
	if res.ServerInstances == 0 {
		t.Error("no server instances in PhotoDraw distribution")
	}
	if _, err := Distribution(context.Background(), "nope"); err == nil {
		t.Error("unknown scenario analyzed")
	}
}

func TestThreeTierEndToEnd(t *testing.T) {
	t.Parallel()
	res, err := ThreeTier(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// All three machines host application components... the database
	// machine hosts only infrastructure, so check client and middle.
	if res.PerMachine[0] == 0 || res.PerMachine[2] == 0 {
		t.Errorf("degenerate three-way placement: %v", res.PerMachine)
	}
	if res.Violations != 0 {
		t.Errorf("violations = %d", res.Violations)
	}
	if res.CutWeight <= 0 || res.Comm <= 0 {
		t.Errorf("weights: cut=%v comm=%v", res.CutWeight, res.Comm)
	}
	// Splitting the middle tier from the database costs extra crossings;
	// the three-way distribution cannot beat the two-way one here, but it
	// must stay within a small factor (the DB round trips are chatty).
	if res.Comm > res.TwoWayComm*20 {
		t.Errorf("three-way comm %v implausibly worse than two-way %v", res.Comm, res.TwoWayComm)
	}
}

func TestCompareCaching(t *testing.T) {
	t.Parallel()
	// Text-properties queries repeat across paragraphs; with the
	// properties component on the server, per-interface caching answers
	// the repeats locally.
	cmp, err := CompareCaching("o_oldwp7")
	if err != nil {
		t.Fatal(err)
	}
	if cmp.CacheHits == 0 {
		t.Fatal("no cache hits on repeated property queries")
	}
	if cmp.Cached >= cmp.Plain {
		t.Errorf("caching did not reduce communication: %v vs %v", cmp.Cached, cmp.Plain)
	}
	if cmp.Savings <= 0 || cmp.Savings > 0.6 {
		t.Errorf("caching savings = %v", cmp.Savings)
	}
	if _, err := CompareCaching("nope"); err == nil {
		t.Error("unknown scenario compared")
	}
}

func TestTable2OtherApplications(t *testing.T) {
	t.Parallel()
	// The classifier experiment generalizes beyond Octarine: PhotoDraw and
	// Benefits keep the same qualitative orderings.
	for _, app := range []string{"photodraw", "benefits"} {
		rows, err := Table2(app)
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		byName := map[string]Table2Row{}
		for _, r := range rows {
			byName[r.Classifier] = r
		}
		if byName["incremental"].NewClassifications == 0 {
			t.Errorf("%s: incremental found no new classifications", app)
		}
		if byName["ifcb"].NewClassifications != 0 {
			t.Errorf("%s: ifcb produced new classifications", app)
		}
		if byName["st"].ProfiledClassifications > byName["ifcb"].ProfiledClassifications {
			t.Errorf("%s: granularity ordering violated", app)
		}
	}
	if _, err := Table2("solitaire"); err == nil {
		t.Error("unknown app evaluated")
	}
	if _, err := Table3("solitaire"); err == nil {
		t.Error("unknown app evaluated for table 3")
	}
}

func TestWhatIfCoignNearOptimalOnTrace(t *testing.T) {
	t.Parallel()
	res, err := WhatIf(context.Background(), "o_oldwp7", 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 60 {
		t.Fatalf("samples = %d", res.Samples)
	}
	// The replayed Coign distribution must beat (or tie within bucket
	// quantization) essentially every random alternative.
	if res.Beaten > 3 {
		t.Errorf("%d of %d random assignments beat the Coign cut (coign=%v best-random=%v)",
			res.Beaten, res.Samples, res.CoignComm, res.BestRandom)
	}
	if res.WorstRandom <= res.CoignComm {
		t.Errorf("no random assignment was worse: worst=%v coign=%v",
			res.WorstRandom, res.CoignComm)
	}
	if _, err := WhatIf(context.Background(), "nope", 1, 1); err == nil {
		t.Error("unknown scenario analyzed")
	}
}
