// Package version reports the toolchain build version from the binary's
// embedded module metadata, so every surface — the coign CLI, the service
// health endpoint, and persisted job results — states exactly which build
// produced it.
package version

import (
	"runtime/debug"
)

// String returns the best available version identifier: the module version
// when built from a tagged release, otherwise the VCS revision (with a
// "-dirty" suffix for modified trees), otherwise "devel".
func String() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		return rev + dirty
	}
	return "devel"
}

// Go returns the Go toolchain version the binary was built with.
func Go() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		return bi.GoVersion
	}
	return ""
}
