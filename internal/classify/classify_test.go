package classify

import (
	"strings"
	"testing"
	"testing/quick"
)

// figure3Stack reproduces the program control flow of paper Figure 3:
//
//	A::V() { a->W() }
//	A::W() { b1->X() }
//	B::X() { b2->Y() }
//	B::Y() { c->Z() }
//	C::Z() { CoCreateInstance(D) }
//
// Stack at the instantiation of D, innermost first.
func figure3Stack() []Frame {
	return []Frame{
		{Instance: 4, Class: "C", InstClassification: "c", Function: "Z"},
		{Instance: 3, Class: "B", InstClassification: "b2", Function: "Y"},
		{Instance: 2, Class: "B", InstClassification: "b1", Function: "X"},
		{Instance: 1, Class: "A", InstClassification: "a", Function: "W"},
		{Instance: 1, Class: "A", InstClassification: "a", Function: "V"},
	}
}

func TestFigure3Descriptors(t *testing.T) {
	t.Parallel()
	stack := figure3Stack()
	cases := []struct {
		kind Kind
		want string
	}{
		{PCB, "[D, C::Z, B::Y, B::X, A::W, A::V]"},
		{ST, "[D]"},
		{STCB, "[D, C, B, B, A]"},
		{IFCB, "[D, [c,Z], [b2,Y], [b1,X], [a,W], [a,V]]"},
		{EPCB, "[D, [c,Z], [b2,Y], [b1,X], [a,V]]"},
		{IB, "[D, c]"},
	}
	for _, c := range cases {
		got := New(c.kind, 0).Classify("D", stack)
		if got != c.want {
			t.Errorf("%s: got %s, want %s", c.kind, got, c.want)
		}
	}
}

func TestIncrementalCountsAndResets(t *testing.T) {
	t.Parallel()
	c := New(Incremental, 0)
	if got := c.Classify("D", nil); got != "[1]" {
		t.Errorf("first = %s", got)
	}
	if got := c.Classify("E", nil); got != "[2]" {
		t.Errorf("second = %s", got)
	}
	c.Reset()
	if got := c.Classify("D", nil); got != "[1]" {
		t.Errorf("after reset = %s", got)
	}
}

func TestIncrementalIgnoresContext(t *testing.T) {
	t.Parallel()
	// Same order, different stacks: identical classifications — exactly
	// why it fails on input-driven applications.
	a := New(Incremental, 0)
	b := New(Incremental, 0)
	x := a.Classify("D", figure3Stack())
	y := b.Classify("Q", nil)
	if x != y {
		t.Errorf("incremental differs by context: %s vs %s", x, y)
	}
}

func TestSTIgnoresStack(t *testing.T) {
	t.Parallel()
	c := New(ST, 0)
	if c.Classify("D", figure3Stack()) != c.Classify("D", nil) {
		t.Error("ST depends on stack")
	}
	if c.Classify("D", nil) == c.Classify("E", nil) {
		t.Error("ST ignores class")
	}
}

func TestIBUsesParentOnly(t *testing.T) {
	t.Parallel()
	c := New(IB, 0)
	if got := c.Classify("D", nil); got != "[D, <main>]" {
		t.Errorf("main-created = %s", got)
	}
	stack := figure3Stack()
	if got := c.Classify("D", stack); got != "[D, c]" {
		t.Errorf("component-created = %s", got)
	}
	// Deeper frames are irrelevant.
	if c.Classify("D", stack) != c.Classify("D", stack[:1]) {
		t.Error("IB looked past the parent")
	}
}

func TestDepthLimiting(t *testing.T) {
	t.Parallel()
	stack := figure3Stack()
	cases := []struct {
		depth int
		want  string
	}{
		{1, "[D, [c,Z]]"},
		{2, "[D, [c,Z], [b2,Y]]"},
		{4, "[D, [c,Z], [b2,Y], [b1,X], [a,W]]"},
		{8, "[D, [c,Z], [b2,Y], [b1,X], [a,W], [a,V]]"},
		{0, "[D, [c,Z], [b2,Y], [b1,X], [a,W], [a,V]]"},
	}
	for _, c := range cases {
		got := New(IFCB, c.depth).Classify("D", stack)
		if got != c.want {
			t.Errorf("depth %d: got %s, want %s", c.depth, got, c.want)
		}
	}
}

func TestDepthCoarsensMonotonically(t *testing.T) {
	t.Parallel()
	// If two stacks are distinguished at depth d, they must also be
	// distinguished at any greater depth (more context never merges
	// classifications).
	s1 := figure3Stack()
	s2 := figure3Stack()
	s2[3].Function = "W2" // differs at depth 4
	for d := 1; d <= 3; d++ {
		a := New(IFCB, d)
		if a.Classify("D", s1) != a.Classify("D", s2) {
			t.Fatalf("depth %d should not distinguish", d)
		}
	}
	for _, d := range []int{4, 5, 0} {
		a := New(IFCB, d)
		if a.Classify("D", s1) == a.Classify("D", s2) {
			t.Fatalf("depth %d should distinguish", d)
		}
	}
}

func TestEntryPointCollapsing(t *testing.T) {
	t.Parallel()
	// Three contiguous frames of one instance collapse to the entry
	// (outermost) one.
	stack := []Frame{
		{Instance: 9, Class: "X", InstClassification: "x", Function: "inner"},
		{Instance: 9, Class: "X", InstClassification: "x", Function: "mid"},
		{Instance: 9, Class: "X", InstClassification: "x", Function: "entry"},
		{Instance: 2, Class: "Y", InstClassification: "y", Function: "go"},
		{Instance: 9, Class: "X", InstClassification: "x", Function: "reentry"},
	}
	got := New(EPCB, 0).Classify("D", stack)
	want := "[D, [x,entry], [y,go], [x,reentry]]"
	if got != want {
		t.Errorf("EPCB = %s, want %s", got, want)
	}
	if got := New(EPCB, 0).Classify("D", nil); got != "[D]" {
		t.Errorf("empty stack EPCB = %s", got)
	}
}

func TestNames(t *testing.T) {
	t.Parallel()
	if New(IFCB, 0).Name() != "ifcb" || New(IFCB, 4).Name() != "ifcb-d4" {
		t.Error("IFCB names wrong")
	}
	for _, k := range Kinds() {
		if New(k, 0).Name() != k.String() {
			t.Errorf("name mismatch for %v", k)
		}
		got, err := KindByName(k.String())
		if err != nil || got != k {
			t.Errorf("KindByName(%s) = %v, %v", k, got, err)
		}
	}
	if _, err := KindByName("nope"); err == nil {
		t.Error("unknown name resolved")
	}
	if !strings.Contains(Kind(42).String(), "42") {
		t.Error("unknown kind string")
	}
}

func TestKindsComplete(t *testing.T) {
	t.Parallel()
	if len(Kinds()) != 7 {
		t.Fatalf("paper defines seven classifiers, got %d", len(Kinds()))
	}
}

func TestDescriptorIDStability(t *testing.T) {
	t.Parallel()
	a := DescriptorID("D", "[D, c]")
	b := DescriptorID("D", "[D, c]")
	if a != b {
		t.Error("id not deterministic")
	}
	if DescriptorID("D", "[D, x]") == a {
		t.Error("distinct descriptors share id")
	}
	if !strings.HasPrefix(a, "D@") {
		t.Errorf("id %s lacks class prefix", a)
	}
}

func TestActivationPathDistinguishesDeepFrames(t *testing.T) {
	t.Parallel()
	// Two activation sites share the same innermost frame (the factory)
	// but differ one frame deeper (the requesting component). The recorded
	// paths — and the classifications that key on them — must stay
	// distinct, or the reachability join would attribute both activations
	// to the same effective creator.
	viaAlpha := []Frame{
		{Instance: 9, Class: "Factory", InstClassification: "f", Function: "Make"},
		{Instance: 2, Class: "Alpha", InstClassification: "a", Function: "Build"},
	}
	viaBeta := []Frame{
		{Instance: 9, Class: "Factory", InstClassification: "f", Function: "Make"},
		{Instance: 3, Class: "Beta", InstClassification: "b", Function: "Build"},
	}

	pa, pb := ActivationPath(viaAlpha), ActivationPath(viaBeta)
	if len(pa) != 2 || pa[0] != "Factory" || pa[1] != "Alpha" {
		t.Fatalf("path via Alpha = %v", pa)
	}
	if len(pb) != 2 || pb[0] != "Factory" || pb[1] != "Beta" {
		t.Fatalf("path via Beta = %v", pb)
	}

	tab := NewTable(New(IFCB, 0))
	ida := tab.Assign("Widget", viaAlpha)
	idb := tab.Assign("Widget", viaBeta)
	if ida == idb {
		t.Fatal("deep-frame difference collapsed into one classification")
	}
	if got := tab.Path(ida); len(got) != 2 || got[1] != "Alpha" {
		t.Errorf("recorded path for Alpha site = %v", got)
	}
	if got := tab.Path(idb); len(got) != 2 || got[1] != "Beta" {
		t.Errorf("recorded path for Beta site = %v", got)
	}
	// A main-program activation records an empty path.
	idm := tab.Assign("Widget", nil)
	if got := tab.Path(idm); len(got) != 0 {
		t.Errorf("main-program path = %v, want empty", got)
	}
}

func TestTableAssignAndCounts(t *testing.T) {
	t.Parallel()
	tab := NewTable(New(IFCB, 0))
	id1 := tab.Assign("D", figure3Stack())
	id2 := tab.Assign("D", figure3Stack())
	if id1 != id2 {
		t.Error("same context classified differently")
	}
	id3 := tab.Assign("D", nil)
	if id3 == id1 {
		t.Error("different context classified identically")
	}
	if tab.Classifications() != 2 {
		t.Errorf("classifications = %d", tab.Classifications())
	}
	if tab.Count(id1) != 2 || tab.Count(id3) != 1 {
		t.Errorf("counts = %d, %d", tab.Count(id1), tab.Count(id3))
	}
	if tab.Descriptor(id1) != "[D, [c,Z], [b2,Y], [b1,X], [a,W], [a,V]]" {
		t.Errorf("descriptor = %s", tab.Descriptor(id1))
	}
	if tab.Classifier().Name() != "ifcb" {
		t.Error("classifier accessor broken")
	}
}

func TestTableResetPreservesIDs(t *testing.T) {
	t.Parallel()
	tab := NewTable(New(Incremental, 0))
	id1 := tab.Assign("D", nil)
	tab.Reset()
	id2 := tab.Assign("D", nil)
	if id1 != id2 {
		t.Error("incremental ids differ across runs after reset")
	}
	if tab.Classifications() != 1 {
		t.Errorf("classifications = %d", tab.Classifications())
	}
}

func TestPropertyDeterminism(t *testing.T) {
	t.Parallel()
	// All non-incremental classifiers are pure functions of (class, stack).
	f := func(classSel uint8, funcSel uint8, depth uint8) bool {
		classes := []string{"A", "B", "C"}
		funcs := []string{"F", "G"}
		stack := []Frame{
			{Instance: 1, Class: classes[int(classSel)%3], InstClassification: "p1",
				Function: funcs[int(funcSel)%2]},
			{Instance: 2, Class: "R", InstClassification: "p2", Function: "Run"},
		}
		for _, k := range []Kind{PCB, ST, STCB, IFCB, EPCB, IB} {
			c1 := New(k, int(depth%4))
			c2 := New(k, int(depth%4))
			if c1.Classify("D", stack) != c2.Classify("D", stack) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyContextualOrdering(t *testing.T) {
	t.Parallel()
	// IFCB refines STCB refines ST: if IFCB says two instantiations are
	// the same classification, so do the coarser classifiers.
	f := func(a, b uint8) bool {
		mk := func(x uint8) []Frame {
			// In real use a classification id embeds the class name, so
			// classification determines class; the generator preserves that.
			cls := []string{"P", "Q", "R"}[x%3]
			return []Frame{{
				Instance:           uint64(x%3) + 1,
				Class:              cls,
				InstClassification: strings.ToLower(cls),
				Function:           []string{"F", "G"}[(x>>1)%2],
			}}
		}
		sa, sb := mk(a), mk(b)
		ifcb := New(IFCB, 0)
		stcb := New(STCB, 0)
		st := New(ST, 0)
		if ifcb.Classify("D", sa) == ifcb.Classify("D", sb) {
			if stcb.Classify("D", sa) != stcb.Classify("D", sb) {
				return false
			}
			if st.Classify("D", sa) != st.Classify("D", sb) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
