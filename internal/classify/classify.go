// Package classify implements Coign's instance classifiers (paper §3.4).
//
// An instance classifier identifies component instances with similar
// communication profiles across separate executions of an application. At
// each instantiation request it forms a descriptor from the component's
// static type and the execution call stack; instances with equal
// descriptors belong to one classification, and the profile analysis
// engine maps classifications — not individual instances — to machines.
package classify

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
)

// Frame is one entry of the component shadow stack maintained by the
// runtime executive, innermost frame first: the instance executing, its
// class, the classification that instance was assigned at its own
// creation, and the interface function being executed.
type Frame struct {
	Instance           uint64
	Class              string
	InstClassification string
	Function           string
}

// Classifier forms instantiation descriptors. Implementations must be
// deterministic: equal (class, stack) inputs yield equal descriptors
// across executions — except for the incremental straw man, whose whole
// point is that it is not.
type Classifier interface {
	// Name returns the classifier's short name (with depth suffix if
	// depth-limited), e.g. "ifcb" or "ifcb-d4".
	Name() string
	// Classify returns the descriptor for an instantiation of class with
	// the given call stack (innermost frame first).
	Classify(class string, stack []Frame) string
	// Reset clears per-execution state at the start of a run.
	Reset()
}

// Kind selects one of the seven classifiers.
type Kind int

// The seven classifiers of paper §3.4, Figure 3.
const (
	// Incremental assigns each instance a fresh classification in order of
	// instantiation — the straw man that fails on input-driven programs.
	Incremental Kind = iota
	// PCB (procedure called-by) groups by static type and the stack of
	// Class::Function frames, without distinguishing instances.
	PCB
	// ST (static type) groups by component class alone.
	ST
	// STCB (static-type called-by) groups by class and the classes of the
	// instances on the stack.
	STCB
	// IFCB (internal-function called-by) groups by class and the
	// (instance-classification, function) pairs on the stack. The most
	// contextual and the classifier Coign typically uses.
	IFCB
	// EPCB (entry-point called-by) is IFCB restricted to the function by
	// which each component instance on the stack was entered.
	EPCB
	// IB (instantiated-by) groups by class and parent classification —
	// functionally IFCB with a depth-1 back-trace.
	IB
)

// String returns the classifier's short name.
func (k Kind) String() string {
	switch k {
	case Incremental:
		return "incremental"
	case PCB:
		return "pcb"
	case ST:
		return "st"
	case STCB:
		return "stcb"
	case IFCB:
		return "ifcb"
	case EPCB:
		return "epcb"
	case IB:
		return "ib"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Kinds lists all seven classifiers in the order of paper Table 2.
func Kinds() []Kind {
	return []Kind{Incremental, PCB, ST, STCB, IFCB, EPCB, IB}
}

// KindByName resolves a short name (without depth suffix).
func KindByName(name string) (Kind, error) {
	for _, k := range Kinds() {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("classify: unknown classifier %q", name)
}

// New returns a classifier of the given kind. depth limits the stack
// back-trace for the called-by classifiers (PCB, STCB, IFCB, EPCB);
// depth <= 0 walks the complete stack. Depth is ignored by the others.
func New(kind Kind, depth int) Classifier {
	switch kind {
	case Incremental:
		return &incremental{}
	case ST:
		return stc{}
	case PCB, STCB, IFCB, EPCB:
		return &calledBy{kind: kind, depth: depth}
	case IB:
		return ib{}
	default:
		panic("classify: unknown kind")
	}
}

// incremental is the straw-man classifier.
type incremental struct {
	n int
}

func (c *incremental) Name() string { return "incremental" }
func (c *incremental) Reset()       { c.n = 0 }
func (c *incremental) Classify(class string, stack []Frame) string {
	c.n++
	return "[" + strconv.Itoa(c.n) + "]"
}

// stc is the static-type classifier.
type stc struct{}

func (stc) Name() string { return "st" }
func (stc) Reset()       {}
func (stc) Classify(class string, stack []Frame) string {
	return "[" + class + "]"
}

// ib is the instantiated-by classifier.
type ib struct{}

func (ib) Name() string { return "ib" }
func (ib) Reset()       {}
func (ib) Classify(class string, stack []Frame) string {
	parent := "<main>"
	if len(stack) > 0 {
		parent = stack[0].InstClassification
	}
	return "[" + class + ", " + parent + "]"
}

// calledBy implements the PCB, STCB, IFCB, and EPCB call-chain classifiers.
type calledBy struct {
	kind  Kind
	depth int
}

func (c *calledBy) Name() string {
	if c.depth > 0 {
		return fmt.Sprintf("%s-d%d", c.kind, c.depth)
	}
	return c.kind.String()
}

func (c *calledBy) Reset() {}

func (c *calledBy) Classify(class string, stack []Frame) string {
	frames := stack
	// STCB groups by the classes of the *instances* on the stack and EPCB
	// by the function that entered each instance, so both collapse
	// contiguous frames of one instance; PCB and IFCB keep every frame.
	if c.kind == EPCB || c.kind == STCB {
		frames = entryPoints(frames)
	}
	if c.depth > 0 && len(frames) > c.depth {
		frames = frames[:c.depth]
	}
	var b strings.Builder
	b.WriteByte('[')
	b.WriteString(class)
	for i := range frames {
		b.WriteString(", ")
		switch c.kind {
		case PCB:
			b.WriteString(frames[i].Class)
			b.WriteString("::")
			b.WriteString(frames[i].Function)
		case STCB:
			b.WriteString(frames[i].Class)
		default: // IFCB, EPCB
			b.WriteByte('[')
			b.WriteString(frames[i].InstClassification)
			b.WriteByte(',')
			b.WriteString(frames[i].Function)
			b.WriteByte(']')
		}
	}
	b.WriteByte(']')
	return b.String()
}

// entryPoints collapses consecutive frames belonging to the same instance,
// keeping the function by which the instance was entered (the outermost
// frame of each contiguous run; with innermost-first ordering, the last of
// the run).
func entryPoints(stack []Frame) []Frame {
	if len(stack) == 0 {
		return stack
	}
	out := make([]Frame, 0, len(stack))
	for i := 0; i < len(stack); {
		j := i
		for j+1 < len(stack) && stack[j+1].Instance == stack[i].Instance {
			j++
		}
		out = append(out, stack[j]) // outermost frame of the run
		i = j + 1
	}
	return out
}

// DescriptorID derives the stable classification id for a descriptor: the
// class name plus a 64-bit FNV-1a digest of the descriptor. Hashing keeps
// ids bounded (descriptors reference parent classifications recursively)
// while remaining identical across executions, which is what lets the
// lightweight runtime correlate instantiations with profiled
// classifications.
func DescriptorID(class, descriptor string) string {
	h := fnv.New64a()
	h.Write([]byte(descriptor))
	return class + "@" + strconv.FormatUint(h.Sum64(), 16)
}

// Table assigns classification ids and retains descriptors for
// inspection. One Table serves one classifier over one or more runs.
type Table struct {
	classifier  Classifier
	descriptors map[string]string   // id -> descriptor
	counts      map[string]int64    // id -> instances assigned
	paths       map[string][]string // id -> activation call path (creator classes)
}

// NewTable returns a table over the given classifier.
func NewTable(c Classifier) *Table {
	return &Table{
		classifier:  c,
		descriptors: make(map[string]string),
		counts:      make(map[string]int64),
		paths:       make(map[string][]string),
	}
}

// Classifier returns the underlying classifier.
func (t *Table) Classifier() Classifier { return t.classifier }

// Assign classifies one instantiation and returns its classification id.
func (t *Table) Assign(class string, stack []Frame) string {
	desc := t.classifier.Classify(class, stack)
	id := DescriptorID(class, desc)
	if prev, ok := t.descriptors[id]; ok && prev != desc {
		// A 64-bit digest collision between distinct descriptors of the
		// same class: disambiguate deterministically by descriptor length.
		id = id + "+" + strconv.Itoa(len(desc))
	}
	t.descriptors[id] = desc
	t.counts[id]++
	if _, ok := t.paths[id]; !ok {
		t.paths[id] = ActivationPath(stack)
	}
	return id
}

// ActivationPath reduces a call stack (innermost frame first) to the chain
// of creator classes, one entry per component instance on the stack. This
// is the full activation call path — not just the top frame — that lets
// the reachability analysis join static activation sites to dynamic
// observations even when the immediate creator is a generic factory.
func ActivationPath(stack []Frame) []string {
	frames := entryPoints(stack)
	path := make([]string, len(frames))
	for i, f := range frames {
		path[i] = f.Class
	}
	return path
}

// Path returns the activation call path recorded at the classification's
// first assignment (creator classes, innermost first; empty for
// activations performed directly by the main program). Under the
// called-by classifiers the id determines the path; under weaker
// classifiers that merge distinct call sites, the first observed path
// stands for the classification.
func (t *Table) Path(id string) []string { return t.paths[id] }

// Descriptor returns the descriptor recorded for a classification id.
func (t *Table) Descriptor(id string) string { return t.descriptors[id] }

// Classifications returns the number of distinct classifications assigned.
func (t *Table) Classifications() int { return len(t.descriptors) }

// Count returns how many instances were assigned to id.
func (t *Table) Count(id string) int64 { return t.counts[id] }

// Reset clears per-execution classifier state but keeps the id table, so a
// later run can be correlated against earlier ones.
func (t *Table) Reset() { t.classifier.Reset() }
