package classify_test

import (
	"fmt"

	"repro/internal/classify"
)

// The call-chain classifiers distinguish component instances by creation
// context; the static-type classifier cannot (paper Figure 3).
func Example() {
	// A Paragraph created while laying out body text...
	bodyStack := []classify.Frame{
		{Instance: 7, Class: "PageFrame", InstClassification: "page@1", Function: "AddBody"},
		{Instance: 3, Class: "TextFlow", InstClassification: "flow@1", Function: "LayoutText"},
	}
	// ...versus one created inside a table cell.
	cellStack := []classify.Frame{
		{Instance: 9, Class: "TableCell", InstClassification: "cell@4", Function: "SetText"},
		{Instance: 5, Class: "TableModel", InstClassification: "tbl@1", Function: "Build"},
	}

	st := classify.New(classify.ST, 0)
	ifcb := classify.New(classify.IFCB, 0)

	fmt.Println("ST:  ", st.Classify("Paragraph", bodyStack) == st.Classify("Paragraph", cellStack))
	fmt.Println("IFCB:", ifcb.Classify("Paragraph", bodyStack) == ifcb.Classify("Paragraph", cellStack))
	fmt.Println(ifcb.Classify("Paragraph", bodyStack))
	// Output:
	// ST:   true
	// IFCB: false
	// [Paragraph, [page@1,AddBody], [flow@1,LayoutText]]
}

// Depth limits trade accuracy for overhead (paper Table 3).
func ExampleNew_depthLimited() {
	stack := []classify.Frame{
		{Instance: 1, Class: "Factory", InstClassification: "factory@1", Function: "CreateWidget"},
		{Instance: 2, Class: "Dialog", InstClassification: "dlg@3", Function: "Populate"},
	}
	shallow := classify.New(classify.IFCB, 1)
	deep := classify.New(classify.IFCB, 2)
	fmt.Println(shallow.Classify("Button", stack))
	fmt.Println(deep.Classify("Button", stack))
	// Output:
	// [Button, [factory@1,CreateWidget]]
	// [Button, [factory@1,CreateWidget], [dlg@3,Populate]]
}
