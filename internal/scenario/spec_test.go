package scenario

import (
	"errors"
	"strings"
	"testing"
)

// TestNewAppSpecErrors: every malformed "synth:..." name yields a typed
// *SpecError naming the offending field — never a panic, and always
// matching the ErrBadSpec sentinel.
func TestNewAppSpecErrors(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name      string
		spec      string
		wantField string
	}{
		{"no parts", "synth:", "form"},
		{"family only", "synth:skewed", "form"},
		{"too many parts", "synth:skewed:1:2:3", "form"},
		{"non-numeric seed", "synth:skewed:x", "seed"},
		{"float seed", "synth:skewed:1.5", "seed"},
		{"huge seed", "synth:skewed:99999999999999999999999999", "seed"},
		{"non-numeric scale", "synth:skewed:1:y", "scale"},
		{"unknown family", "synth:nope:1", "generate"},
		{"scale out of range", "synth:skewed:1:9999", "generate"},
		{"empty family", "synth::1", "generate"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			app, err := NewApp(c.spec)
			if err == nil {
				t.Fatalf("NewApp(%q) accepted a malformed spec (app %v)", c.spec, app)
			}
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("NewApp(%q) error %T %v is not a *SpecError", c.spec, err, err)
			}
			if se.Field != c.wantField {
				t.Errorf("NewApp(%q) rejected field %q, want %q", c.spec, se.Field, c.wantField)
			}
			if se.Spec != c.spec {
				t.Errorf("SpecError.Spec = %q, want %q", se.Spec, c.spec)
			}
			if !errors.Is(err, ErrBadSpec) {
				t.Errorf("NewApp(%q) error does not match ErrBadSpec", c.spec)
			}
			if !strings.Contains(err.Error(), c.spec) {
				t.Errorf("error %q does not quote the spec", err)
			}
		})
	}
}

// TestNewAppSpecErrorUnwrap: parse-level failures carry the underlying
// strconv error for callers that want the precise cause.
func TestNewAppSpecErrorUnwrap(t *testing.T) {
	t.Parallel()
	_, err := NewApp("synth:skewed:notanumber")
	var se *SpecError
	if !errors.As(err, &se) {
		t.Fatalf("error %T is not a *SpecError", err)
	}
	if se.Unwrap() == nil {
		t.Fatal("seed parse failure lost its underlying error")
	}
	if !strings.Contains(err.Error(), "bad seed") {
		t.Errorf("error %q does not say bad seed", err)
	}
}

// TestNewAppValidSynthSpecs: well-formed specs for every family still
// construct, with and without the scale suffix.
func TestNewAppValidSynthSpecs(t *testing.T) {
	t.Parallel()
	for _, spec := range []string{"synth:three-tier:1", "synth:skewed:7:2"} {
		app, err := NewApp(spec)
		if err != nil {
			t.Fatalf("NewApp(%q): %v", spec, err)
		}
		if app == nil || app.Classes.Len() == 0 {
			t.Fatalf("NewApp(%q) returned an empty application", spec)
		}
	}
}

// TestErrBadSpecDoesNotMatchOtherErrors: unknown non-synth application
// names are plain errors, not spec errors.
func TestErrBadSpecDoesNotMatchOtherErrors(t *testing.T) {
	t.Parallel()
	_, err := NewApp("no-such-app")
	if err == nil {
		t.Fatal("NewApp accepted an unknown application")
	}
	if errors.Is(err, ErrBadSpec) {
		t.Fatalf("unknown app error %v wrongly matches ErrBadSpec", err)
	}
}
