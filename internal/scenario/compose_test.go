package scenario

import (
	"reflect"
	"testing"

	"repro/internal/classify"
	"repro/internal/synthapp"
)

// composeApp generates one synthetic application for the composition
// property tests.
func composeApp(t *testing.T, fam synthapp.Family, seed int64) *synthapp.App {
	t.Helper()
	sa, err := synthapp.Generate(synthapp.Config{Family: fam, Seed: seed})
	if err != nil {
		t.Fatalf("Generate(%s, %d): %v", fam, seed, err)
	}
	return sa
}

// TestComposeOrderIndependent checks the headline property: permuting the
// mix, or splitting one weighted entry into repeated smaller entries,
// yields a byte-identical composed profile.
func TestComposeOrderIndependent(t *testing.T) {
	t.Parallel()
	for _, fam := range []synthapp.Family{synthapp.ThreeTier, synthapp.Skewed} {
		fam := fam
		t.Run(string(fam), func(t *testing.T) {
			t.Parallel()
			sa := composeApp(t, fam, 7)
			mixes := [][]Mix{
				{{synthapp.ScenBase, 2}, {synthapp.ScenHeavy, 1}, {synthapp.ScenAlt, 3}},
				{{synthapp.ScenAlt, 3}, {synthapp.ScenHeavy, 1}, {synthapp.ScenBase, 2}},
				// Split weights: same multiset of repetitions, different shape.
				{{synthapp.ScenHeavy, 1}, {synthapp.ScenAlt, 2}, {synthapp.ScenBase, 1},
					{synthapp.ScenAlt, 1}, {synthapp.ScenBase, 1}},
			}
			var first interface{}
			for i, mix := range mixes {
				p, err := Compose(sa.App, classify.IFCB, 0, mix, 99)
				if err != nil {
					t.Fatalf("Compose(mix %d): %v", i, err)
				}
				if first == nil {
					first = p
					continue
				}
				if !reflect.DeepEqual(first, p) {
					t.Errorf("mix %d produced a different profile than mix 0", i)
				}
			}
		})
	}
}

// TestComposeSeedStable checks that regeneration from the same (family,
// seed) pair plus the same composition seed reproduces the profile
// exactly, and that a different composition seed perturbs it.
func TestComposeSeedStable(t *testing.T) {
	t.Parallel()
	mix := []Mix{{synthapp.ScenBase, 1}, {synthapp.ScenHeavy, 2}}

	a := composeApp(t, synthapp.CacheHeavy, 11)
	p1, err := Compose(a.App, classify.IFCB, 0, mix, 5)
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	// Regenerate the app from scratch: same seed, fresh com.App value.
	b := composeApp(t, synthapp.CacheHeavy, 11)
	p2, err := Compose(b.App, classify.IFCB, 0, mix, 5)
	if err != nil {
		t.Fatalf("Compose (regenerated app): %v", err)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Error("same (family, seed, composition seed) did not reproduce the profile")
	}

	p3, err := Compose(b.App, classify.IFCB, 0, mix, 6)
	if err != nil {
		t.Fatalf("Compose (different seed): %v", err)
	}
	if reflect.DeepEqual(p1, p3) {
		t.Error("different composition seed produced an identical profile (payload jitter lost)")
	}
}

// TestComposeWeightScaling checks that weight W contributes exactly W
// runs: call counts are structural, so doubling the weight doubles the
// total calls.
func TestComposeWeightScaling(t *testing.T) {
	t.Parallel()
	sa := composeApp(t, synthapp.Pipeline, 3)
	p1, err := Compose(sa.App, classify.IFCB, 0, []Mix{{synthapp.ScenBase, 1}}, 1)
	if err != nil {
		t.Fatalf("Compose(w=1): %v", err)
	}
	p2, err := Compose(sa.App, classify.IFCB, 0, []Mix{{synthapp.ScenBase, 2}}, 1)
	if err != nil {
		t.Fatalf("Compose(w=2): %v", err)
	}
	if got, want := p2.TotalCalls(), 2*p1.TotalCalls(); got != want {
		t.Errorf("weight 2 total calls = %d, want %d (2x weight 1)", got, want)
	}
	if len(p2.Scenarios) != 2*len(p1.Scenarios) {
		t.Errorf("weight 2 recorded %d scenario runs, want %d", len(p2.Scenarios), 2*len(p1.Scenarios))
	}
}

// TestComposeErrors covers the mix-validation failure modes.
func TestComposeErrors(t *testing.T) {
	t.Parallel()
	sa := composeApp(t, synthapp.GUISwarm, 1)
	cases := []struct {
		name string
		mix  []Mix
	}{
		{"empty mix", nil},
		{"zero weight", []Mix{{synthapp.ScenBase, 0}}},
		{"negative weight", []Mix{{synthapp.ScenBase, -2}}},
		{"empty scenario", []Mix{{"", 1}}},
		{"unknown scenario", []Mix{{"y_nope", 1}}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			if _, err := Compose(sa.App, classify.IFCB, 0, tc.mix, 0); err == nil {
				t.Errorf("Compose accepted %s", tc.name)
			}
		})
	}
	if _, err := Compose(nil, classify.IFCB, 0, []Mix{{synthapp.ScenBase, 1}}, 0); err == nil {
		t.Error("Compose accepted a nil application")
	}
}

// TestNewAppSynth checks the synth:<family>:<seed> application scheme.
func TestNewAppSynth(t *testing.T) {
	t.Parallel()
	app, err := NewApp("synth:skewed:42")
	if err != nil {
		t.Fatalf("NewApp(synth:skewed:42): %v", err)
	}
	direct, err := synthapp.Generate(synthapp.Config{Family: synthapp.Skewed, Seed: 42})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if app.Name != direct.App.Name {
		t.Errorf("NewApp name %q != direct generation %q", app.Name, direct.App.Name)
	}
	if _, err := NewApp("synth:skewed:42:2"); err != nil {
		t.Errorf("NewApp with scale suffix: %v", err)
	}
	for _, bad := range []string{"synth:", "synth:skewed", "synth:nope:1", "synth:skewed:x", "synth:skewed:1:y", "synth:skewed:1:9"} {
		if _, err := NewApp(bad); err == nil {
			t.Errorf("NewApp(%q) succeeded, want error", bad)
		}
	}
}
