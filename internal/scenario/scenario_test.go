package scenario

import (
	"strings"
	"testing"

	"repro/internal/classify"
	"repro/internal/dist"
)

func TestTable1HasTwentyThreeScenarios(t *testing.T) {
	t.Parallel()
	all := Table1()
	if len(all) != 23 {
		t.Fatalf("Table 1 has %d scenarios, want 23", len(all))
	}
	seen := map[string]bool{}
	for _, s := range all {
		if seen[s.Name] {
			t.Errorf("duplicate scenario %s", s.Name)
		}
		seen[s.Name] = true
		if s.Description == "" {
			t.Errorf("%s has no description", s.Name)
		}
		// Name prefix encodes the application.
		wantPrefix := map[string]string{"octarine": "o_", "photodraw": "p_", "benefits": "b_"}[s.App]
		if !strings.HasPrefix(s.Name, wantPrefix) {
			t.Errorf("%s does not carry prefix %s", s.Name, wantPrefix)
		}
	}
}

func TestPerAppPartitions(t *testing.T) {
	t.Parallel()
	counts := map[string]int{"octarine": 12, "photodraw": 7, "benefits": 4}
	total := 0
	for app, want := range counts {
		got := ForApp(app)
		if len(got) != want {
			t.Errorf("%s has %d scenarios, want %d", app, len(got), want)
		}
		total += len(got)
		training := TrainingForApp(app)
		if len(training) != want-1 {
			t.Errorf("%s has %d training scenarios, want %d", app, len(training), want-1)
		}
		big, err := BigoneForApp(app)
		if err != nil || !strings.HasSuffix(big, "bigone") {
			t.Errorf("%s bigone = %q, %v", app, big, err)
		}
	}
	if total != 23 {
		t.Errorf("partitions cover %d scenarios", total)
	}
}

func TestNewApp(t *testing.T) {
	t.Parallel()
	for _, name := range Apps() {
		app, err := NewApp(name)
		if err != nil || app == nil || app.Name != name {
			t.Errorf("NewApp(%s) = %v, %v", name, app, err)
		}
	}
	if _, err := NewApp("solitaire"); err == nil {
		t.Error("unknown app constructed")
	}
	if _, err := BigoneForApp("solitaire"); err == nil {
		t.Error("bigone for unknown app")
	}
}

func TestLookup(t *testing.T) {
	t.Parallel()
	info, err := Lookup("o_oldwp7")
	if err != nil || info.App != "octarine" {
		t.Errorf("Lookup = %+v, %v", info, err)
	}
	if _, err := Lookup("z_nothing"); err == nil {
		t.Error("unknown scenario looked up")
	}
}

// TestEveryScenarioExecutes drives each catalog entry end to end in
// profiling mode — the suite's integration smoke test.
func TestEveryScenarioExecutes(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("full suite execution")
	}
	for _, s := range Table1() {
		app, err := NewApp(s.App)
		if err != nil {
			t.Fatal(err)
		}
		res, err := dist.Run(dist.Config{
			App: app, Scenario: s.Name, Mode: dist.ModeProfiling,
			Classifier: classify.New(classify.IFCB, 0),
		})
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if res.Profile.TotalCalls() == 0 {
			t.Errorf("%s: no inter-component communication profiled", s.Name)
		}
	}
}
