// Package scenario catalogs the profiling-scenario suite of paper Table 1:
// twenty-three scenarios across the three applications, ranging from
// simple to complex, intended to represent realistic usage while fully
// exercising the components found in each application.
package scenario

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/apps/benefits"
	"repro/internal/apps/octarine"
	"repro/internal/apps/photodraw"
	"repro/internal/apps/quickstart"
	"repro/internal/com"
	"repro/internal/synthapp"
)

// Info describes one profiling scenario.
type Info struct {
	Name        string
	App         string
	Description string
	Bigone      bool // synthesis of the app's other scenarios
}

// Table1 returns all twenty-three scenarios in the paper's order.
func Table1() []Info {
	return []Info{
		{octarine.ScenNewDoc, "octarine", "Create text document.", false},
		{octarine.ScenNewMus, "octarine", "Create music document.", false},
		{octarine.ScenNewTbl, "octarine", "Create table document.", false},
		{octarine.ScenOldTb0, "octarine", "View 5-page table.", false},
		{octarine.ScenOldTb3, "octarine", "View 150-page table.", false},
		{octarine.ScenOldWp0, "octarine", "View 5-page text document.", false},
		{octarine.ScenOldWp3, "octarine", "View 13-page text document.", false},
		{octarine.ScenOldWp7, "octarine", "View 208-page text document.", false},
		{octarine.ScenOldBth, "octarine", "View 5-page text doc. with tables.", false},
		{octarine.ScenOffTb3, "octarine", "o_newdoc then o_oldtb3.", false},
		{octarine.ScenOffWp7, "octarine", "o_newdoc then o_oldwp7.", false},
		{octarine.ScenBigone, "octarine", "All of the above in one scenario.", true},
		{photodraw.ScenNewDoc, "photodraw", "Create new image.", false},
		{photodraw.ScenNewMsr, "photodraw", "Create new composition.", false},
		{photodraw.ScenOldCur, "photodraw", "View line drawing.", false},
		{photodraw.ScenOldMsr, "photodraw", "View composition.", false},
		{photodraw.ScenOffCur, "photodraw", "p_newdoc then p_oldcur.", false},
		{photodraw.ScenOffMsr, "photodraw", "p_newdoc then p_oldmsr.", false},
		{photodraw.ScenBigone, "photodraw", "All of the above in one scenario.", true},
		{benefits.ScenVueOne, "benefits", "View records for an employee.", false},
		{benefits.ScenAddOne, "benefits", "Add new employee.", false},
		{benefits.ScenDelOne, "benefits", "Delete employee.", false},
		{benefits.ScenBigone, "benefits", "All of the above in one scenario.", true},
	}
}

// Apps returns the application names in suite order.
func Apps() []string { return []string{"octarine", "photodraw", "benefits"} }

// NewApp constructs an application of the suite by name. Beyond the
// Table 1 suite, the name "synth:<family>:<seed>[:<scale>]" builds a
// generated application from internal/synthapp, so every pipeline entry
// point that takes an app name can also run against the synthetic corpus.
func NewApp(name string) (*com.App, error) {
	if strings.HasPrefix(name, "synth:") {
		return newSynthApp(name)
	}
	switch name {
	case "octarine":
		return octarine.New(), nil
	case "photodraw":
		return photodraw.New(), nil
	case "benefits":
		return benefits.New(), nil
	case "quickstart":
		// The demonstration application of the quick-start example; not
		// part of the Table 1 suite, but buildable for the coverage gate.
		return quickstart.New(), nil
	default:
		return nil, fmt.Errorf("scenario: unknown application %q", name)
	}
}

// newSynthApp parses a "synth:<family>:<seed>[:<scale>]" application name
// and generates the corresponding synthetic application.
func newSynthApp(name string) (*com.App, error) {
	sa, err := generateSynth(name)
	if err != nil {
		return nil, err
	}
	return sa.App, nil
}

// ErrBadSpec is the sentinel every synthetic-app spec rejection matches:
// errors.Is(err, ErrBadSpec) reports whether an error came from parsing
// or generating a "synth:..." application name.
var ErrBadSpec = errors.New("bad synthetic app spec")

// SpecError is the typed rejection of a "synth:<family>:<seed>[:<scale>]"
// application name. Field names the part that failed ("form", "seed",
// "scale", or "generate" for generator-level rejections such as an
// unknown family or an out-of-range scale); Err holds the underlying
// cause when there is one.
type SpecError struct {
	Spec   string // the application name as given
	Field  string
	Reason string
	Err    error
}

func (e *SpecError) Error() string {
	msg := fmt.Sprintf("scenario: synthetic app name %q: %s", e.Spec, e.Reason)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

func (e *SpecError) Unwrap() error { return e.Err }

// Is matches ErrBadSpec, so callers can test the class without carrying
// the concrete type.
func (e *SpecError) Is(target error) bool { return target == ErrBadSpec }

// generateSynth parses a "synth:<family>:<seed>[:<scale>]" name and runs
// the generator, returning the full generation record (app, training
// suite, planted ground truths). Every rejection is a *SpecError.
func generateSynth(name string) (*synthapp.App, error) {
	parts := strings.Split(name, ":")
	if len(parts) != 3 && len(parts) != 4 {
		return nil, &SpecError{Spec: name, Field: "form", Reason: "want synth:<family>:<seed>[:<scale>]"}
	}
	seed, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil {
		return nil, &SpecError{Spec: name, Field: "seed", Reason: "bad seed", Err: err}
	}
	cfg := synthapp.Config{Family: synthapp.Family(parts[1]), Seed: seed}
	if len(parts) == 4 {
		scale, err := strconv.Atoi(parts[3])
		if err != nil {
			return nil, &SpecError{Spec: name, Field: "scale", Reason: "bad scale", Err: err}
		}
		cfg.Scale = scale
	}
	sa, err := synthapp.Generate(cfg)
	if err != nil {
		return nil, &SpecError{Spec: name, Field: "generate", Reason: "generating", Err: err}
	}
	return sa, nil
}

// ForApp returns the scenario names belonging to one application, in
// Table 1 order.
func ForApp(app string) []string {
	var out []string
	for _, s := range Table1() {
		if s.App == app {
			out = append(out, s.Name)
		}
	}
	return out
}

// TrainingForApp returns the classifier-training scenarios (everything
// except the bigone synthesis). For "synth:..." names it is the
// generated application's own training suite, so profile-dependent
// stages (coverage, purity grading) work on the synthetic corpus too.
func TrainingForApp(app string) []string {
	if strings.HasPrefix(app, "synth:") {
		sa, err := generateSynth(app)
		if err != nil {
			return nil
		}
		return append([]string(nil), sa.Training...)
	}
	var out []string
	for _, s := range Table1() {
		if s.App == app && !s.Bigone {
			out = append(out, s.Name)
		}
	}
	return out
}

// BigoneForApp returns the app's bigone scenario name.
func BigoneForApp(app string) (string, error) {
	for _, s := range Table1() {
		if s.App == app && s.Bigone {
			return s.Name, nil
		}
	}
	return "", fmt.Errorf("scenario: no bigone scenario for %q", app)
}

// Lookup returns the Info for a scenario name.
func Lookup(name string) (Info, error) {
	for _, s := range Table1() {
		if s.Name == name {
			return s, nil
		}
	}
	return Info{}, fmt.Errorf("scenario: unknown scenario %q", name)
}
