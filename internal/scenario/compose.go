package scenario

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/classify"
	"repro/internal/com"
	"repro/internal/dist"
	"repro/internal/profile"
)

// Mix weights one scenario within a composed usage profile. The paper's
// profiling step (§3.2) combines scenario logs so the optimizer sees the
// expected usage distribution rather than one run; Weight is the number
// of times the scenario contributes to the composition — "users open
// documents nine times for every print job" becomes Weight 9 vs 1.
type Mix struct {
	Scenario string
	Weight   int
}

// Compose profiles each scenario of the mix Weight times and merges the
// logs into one profile under a single classifier, the input the
// analysis engine consumes.
//
// The composition is canonical: mixes are deduplicated (weights for the
// same scenario sum) and processed in sorted scenario order, and each
// repetition's run seed is derived from (seed, scenario, repetition)
// alone. Permuting or splitting the mix therefore yields a byte-identical
// profile, and the same seed always reproduces it.
func Compose(app *com.App, kind classify.Kind, depth int, mixes []Mix, seed int64) (*profile.Profile, error) {
	if app == nil {
		return nil, fmt.Errorf("scenario: compose: nil application")
	}
	if len(mixes) == 0 {
		return nil, fmt.Errorf("scenario: compose: empty scenario mix")
	}
	weights := make(map[string]int)
	for _, m := range mixes {
		if m.Scenario == "" {
			return nil, fmt.Errorf("scenario: compose: empty scenario name in mix")
		}
		if m.Weight <= 0 {
			return nil, fmt.Errorf("scenario: compose: scenario %s has non-positive weight %d",
				m.Scenario, m.Weight)
		}
		weights[m.Scenario] += m.Weight
	}
	names := make([]string, 0, len(weights))
	for n := range weights {
		names = append(names, n)
	}
	sort.Strings(names)

	classifier := classify.New(kind, depth)
	var combined *profile.Profile
	for _, name := range names {
		for rep := 0; rep < weights[name]; rep++ {
			res, err := dist.Run(dist.Config{
				App:        app,
				Scenario:   name,
				Seed:       mixSeed(seed, name, rep),
				Mode:       dist.ModeProfiling,
				Classifier: classifier,
			})
			if err != nil {
				return nil, fmt.Errorf("scenario: compose: %s rep %d: %w", name, rep, err)
			}
			if res.Profile == nil {
				return nil, fmt.Errorf("scenario: compose: %s rep %d produced no profile", name, rep)
			}
			if combined == nil {
				combined = res.Profile
				continue
			}
			if err := combined.Merge(res.Profile); err != nil {
				return nil, fmt.Errorf("scenario: compose: merging %s rep %d: %w", name, rep, err)
			}
		}
	}
	return combined, nil
}

// mixSeed derives the run seed for one repetition of one scenario. It
// depends only on the composition seed, the scenario name, and the
// repetition index — never on the position within the mix — which is what
// makes Compose order-independent.
func mixSeed(seed int64, scenario string, rep int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d", scenario, rep)
	return seed ^ int64(h.Sum64())
}
