package rte

import (
	"testing"

	"repro/internal/classify"
	"repro/internal/com"
	"repro/internal/idl"
	"repro/internal/informer"
	"repro/internal/logger"
	"repro/internal/profile"
)

// chainApp builds an app where Root.Run creates a Leaf and calls it,
// exercising nested instantiation (non-empty shadow stack) and nested
// calls.
func chainApp() *com.App {
	ifaces := idl.NewRegistry()
	ifaces.Register(&idl.InterfaceDesc{
		IID: "IRoot", Remotable: true,
		Methods: []idl.MethodDesc{{
			Name:   "Run",
			Result: idl.TInt32,
		}},
	})
	ifaces.Register(&idl.InterfaceDesc{
		IID: "ILeaf", Remotable: true,
		Methods: []idl.MethodDesc{{
			Name:   "Work",
			Params: []idl.ParamDesc{{Name: "data", Dir: idl.In, Type: idl.TBytes}},
			Result: idl.TInt32,
		}},
	})
	ifaces.Register(&idl.InterfaceDesc{
		IID: "ISharedMem", Remotable: false,
		Methods: []idl.MethodDesc{{
			Name:   "Ptr",
			Params: []idl.ParamDesc{{Name: "p", Dir: idl.In, Type: idl.TOpaque}},
			Result: idl.TVoid,
		}},
	})

	classes := com.NewClassRegistry()
	classes.Register(&com.Class{
		ID: "CLSID_Root", Name: "Root", Interfaces: []string{"IRoot"},
		New: func() com.Object {
			return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
				leaf, err := c.Create("CLSID_Leaf")
				if err != nil {
					return nil, err
				}
				itf, err := c.Env.Query(leaf, "ILeaf")
				if err != nil {
					return nil, err
				}
				return c.Invoke(itf, "Work", idl.ByteBuf(make([]byte, 100)))
			})
		},
	})
	classes.Register(&com.Class{
		ID: "CLSID_Leaf", Name: "Leaf", Interfaces: []string{"ILeaf", "ISharedMem"},
		New: func() com.Object {
			return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
				switch c.Method {
				case "Work":
					return []idl.Value{idl.Int32(int32(len(c.Args[0].Bytes)))}, nil
				case "Ptr":
					return []idl.Value{}, nil
				}
				return nil, nil
			})
		},
	})
	return &com.App{Name: "chain", Classes: classes, Interfaces: ifaces}
}

func attach(t *testing.T, env *com.Env, opts Options) *RTE {
	t.Helper()
	if opts.Informer == nil {
		opts.Informer = informer.Profiling{}
	}
	if opts.Table == nil {
		opts.Table = classify.NewTable(classify.New(classify.IFCB, 0))
	}
	r, err := Attach(env, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestAttachRequiresInformerAndTable(t *testing.T) {
	t.Parallel()
	env := com.NewEnv(chainApp())
	if _, err := Attach(env, Options{Table: classify.NewTable(classify.New(classify.ST, 0))}); err == nil {
		t.Error("attach without informer succeeded")
	}
	if _, err := Attach(env, Options{Informer: informer.Profiling{}}); err == nil {
		t.Error("attach without table succeeded")
	}
}

func TestProfilingRunCollectsEverything(t *testing.T) {
	t.Parallel()
	env := com.NewEnv(chainApp())
	plog := logger.NewProfiling("ifcb", true)
	r := attach(t, env, Options{Logger: plog})

	r.BeginRun("scenario1")
	root, err := env.CreateInstance(nil, "CLSID_Root")
	if err != nil {
		t.Fatal(err)
	}
	itf := env.MustQuery(root, "IRoot")
	if _, err := env.Call(nil, itf, "Run"); err != nil {
		t.Fatal(err)
	}
	r.EndRun()

	p := plog.LastRun()
	if p == nil {
		t.Fatal("no profile")
	}
	if p.TotalInstances() != 2 {
		t.Fatalf("instances = %d", p.TotalInstances())
	}
	if p.TotalCalls() != 2 {
		t.Fatalf("calls = %d", p.TotalCalls())
	}
	// Root's classification context is <main>; Leaf's creator is Root.
	var rootClassification, leafClassification string
	for id, ci := range p.Classifications {
		switch ci.Class {
		case "Root":
			rootClassification = id
		case "Leaf":
			leafClassification = id
		}
	}
	if rootClassification == "" || leafClassification == "" {
		t.Fatalf("classifications = %v", p.ClassificationIDs())
	}
	// The main->Root edge and Root->Leaf edge both exist.
	if p.Edge(profile.MainProgram, rootClassification).Calls != 1 {
		t.Error("main->Root edge missing")
	}
	e := p.Edge(rootClassification, leafClassification)
	if e.Calls != 1 {
		t.Error("Root->Leaf edge missing")
	}
	// Leaf received 100 bytes of payload plus header.
	if e.ExactInBytes != int64(informer.DCOMHeaderBytes+4+100) {
		t.Errorf("leaf in bytes = %d", e.ExactInBytes)
	}
	// Instance records carry creator classifications.
	var leafRec *profile.InstanceRecord
	for i := range p.Instances {
		if p.Instances[i].Class == "Leaf" {
			leafRec = &p.Instances[i]
		}
	}
	if leafRec == nil || leafRec.CreatorClassification != rootClassification {
		t.Fatalf("leaf record = %+v", leafRec)
	}
	if r.Calls() != 2 || r.WrappedInterfaces() != 2 {
		t.Errorf("calls=%d wrapped=%d", r.Calls(), r.WrappedInterfaces())
	}
	if r.StackDepth() != 0 {
		t.Errorf("stack depth after run = %d", r.StackDepth())
	}
}

func TestClassifierSeesNestedContext(t *testing.T) {
	t.Parallel()
	// Two Leafs created from different contexts (main vs Root) must get
	// different IFCB classifications.
	env := com.NewEnv(chainApp())
	r := attach(t, env, Options{})
	r.BeginRun("s")
	leafDirect, _ := env.CreateInstance(nil, "CLSID_Leaf")
	root, _ := env.CreateInstance(nil, "CLSID_Root")
	itf := env.MustQuery(root, "IRoot")
	if _, err := env.Call(nil, itf, "Run"); err != nil {
		t.Fatal(err)
	}
	r.EndRun()
	var leafNested *com.Instance
	for _, in := range env.Instances() {
		if in.Class.Name == "Leaf" && in != leafDirect {
			leafNested = in
		}
	}
	if leafNested == nil {
		t.Fatal("nested leaf not created")
	}
	if leafDirect.Classification == leafNested.Classification {
		t.Error("IFCB failed to distinguish creation contexts")
	}
}

type recordingComm struct {
	calls int
	req   int
	resp  int
}

func (c *recordingComm) RemoteCall(from, to com.Machine, reqBytes, respBytes int) {
	c.calls++
	c.req += reqBytes
	c.resp += respBytes
}

func TestPlacerAndRemoteCommunication(t *testing.T) {
	t.Parallel()
	env := com.NewEnv(chainApp())
	comm := &recordingComm{}
	// Place every Leaf on the server.
	placer := PlacerFunc(func(_ string, cl *com.Class, creator com.Machine) com.Machine {
		if cl.Name == "Leaf" {
			return com.Server
		}
		return creator
	})
	r := attach(t, env, Options{Placer: placer, Comm: comm, Informer: informer.Distribution{}})
	r.BeginRun("s")
	root, _ := env.CreateInstance(nil, "CLSID_Root")
	itf := env.MustQuery(root, "IRoot")
	if _, err := env.Call(nil, itf, "Run"); err != nil {
		t.Fatal(err)
	}
	r.EndRun()

	// One remote instantiation (Leaf) + one crossing call (Root->Leaf).
	if comm.calls != 2 {
		t.Fatalf("remote events = %d", comm.calls)
	}
	// The crossing call's request bytes were measured by the transport
	// even though the distribution informer measures nothing.
	if comm.req <= informer.DCOMHeaderBytes {
		t.Errorf("request bytes = %d", comm.req)
	}
	if r.Violations() != 0 {
		t.Errorf("violations = %d", r.Violations())
	}
}

func TestNonRemotableCrossingCountsViolation(t *testing.T) {
	t.Parallel()
	env := com.NewEnv(chainApp())
	comm := &recordingComm{}
	placer := PlacerFunc(func(_ string, cl *com.Class, creator com.Machine) com.Machine {
		if cl.Name == "Leaf" {
			return com.Server
		}
		return creator
	})
	r := attach(t, env, Options{Placer: placer, Comm: comm, Informer: informer.Distribution{}})
	r.BeginRun("s")
	leaf, _ := env.CreateInstance(nil, "CLSID_Leaf")
	shm := env.MustQuery(leaf, "ISharedMem")
	if _, err := env.Call(nil, shm, "Ptr", idl.OpaquePtr("region")); err != nil {
		t.Fatal(err)
	}
	r.EndRun()
	if r.Violations() != 1 {
		t.Errorf("violations = %d, want 1", r.Violations())
	}
}

func TestDetachRestoresEnvironment(t *testing.T) {
	t.Parallel()
	env := com.NewEnv(chainApp())
	plog := logger.NewProfiling("ifcb", false)
	r := attach(t, env, Options{Logger: plog})
	r.BeginRun("s")
	r.EndRun()
	r.Detach()
	// After detach, instantiations are not trapped.
	leaf, err := env.CreateInstance(nil, "CLSID_Leaf")
	if err != nil {
		t.Fatal(err)
	}
	if leaf.Classification != "" {
		t.Error("instantiation trapped after detach")
	}
}

func TestLoadBinaryTracking(t *testing.T) {
	t.Parallel()
	env := com.NewEnv(chainApp())
	r := attach(t, env, Options{})
	r.LoadBinary("coign.rt")
	r.LoadBinary("chain.exe")
	bins := r.Binaries()
	if len(bins) != 2 || bins[0] != "coign.rt" {
		t.Errorf("binaries = %v", bins)
	}
}

func TestBeginRunResetsState(t *testing.T) {
	t.Parallel()
	env := com.NewEnv(chainApp())
	tab := classify.NewTable(classify.New(classify.Incremental, 0))
	plog := logger.NewProfiling("incremental", false)
	r := attach(t, env, Options{Table: tab, Logger: plog})
	r.BeginRun("s1")
	a, _ := env.CreateInstance(nil, "CLSID_Leaf")
	r.EndRun()
	r.BeginRun("s2")
	b, _ := env.CreateInstance(nil, "CLSID_Leaf")
	r.EndRun()
	// The incremental classifier restarts per run, so both first
	// instantiations share a classification.
	if a.Classification != b.Classification {
		t.Error("incremental classifier not reset between runs")
	}
	if len(plog.Runs()) != 2 {
		t.Errorf("runs = %d", len(plog.Runs()))
	}
}

func TestSnapshotOrdering(t *testing.T) {
	t.Parallel()
	// During a nested call the snapshot lists innermost frames first.
	env := com.NewEnv(chainApp())
	var r *RTE
	var depthInsideLeaf int
	var snap []classify.Frame
	classes := env.App().Classes
	classes.Register(&com.Class{
		ID: "CLSID_Probe", Name: "Probe", Interfaces: []string{"ILeaf"},
		New: func() com.Object {
			return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
				depthInsideLeaf = r.StackDepth()
				snap = r.Snapshot()
				return []idl.Value{idl.Int32(0)}, nil
			})
		},
	})
	r = attach(t, env, Options{})
	r.BeginRun("s")
	probe, _ := env.CreateInstance(nil, "CLSID_Probe")
	root, _ := env.CreateInstance(nil, "CLSID_Root")
	_ = root
	itf := env.MustQuery(probe, "ILeaf")
	if _, err := env.Call(nil, itf, "Work", idl.ByteBuf(nil)); err != nil {
		t.Fatal(err)
	}
	if depthInsideLeaf != 1 {
		t.Errorf("depth inside call = %d", depthInsideLeaf)
	}
	if len(snap) != 1 || snap[0].Class != "Probe" || snap[0].Function != "Work" {
		t.Errorf("snapshot = %+v", snap)
	}
}
