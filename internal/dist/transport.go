package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/com"
	"repro/internal/idl"
)

// The loopback transport is a working DCOM stand-in over TCP: method calls
// are marshaled by proxies with the NDR-like codec, framed, dispatched to
// a stub that invokes the real component, and the results marshaled back.
// The network profiler can also measure real message round trips through
// it.
//
// Wire format. A frame is [len u32][crc32 u32][payload]; the checksum
// lets the receiver distinguish in-flight corruption (ErrCorrupt, safe to
// retry) from application errors (ErrRemote, never retried). A request
// payload is [opcode][clientID u64][seq u64][body]: the opcode selects
// call or ping, and the (clientID, seq) pair keys the server's
// at-most-once dedup so retried calls are never re-executed. A response
// payload is [status][body].

const (
	opCall = 1
	opPing = 2

	statusOK  = 0
	statusErr = 1

	maxFrame = 16 << 20

	frameHdrLen = 8  // length + checksum
	reqHdrLen   = 17 // opcode + clientID + seq
)

func writeFrame(w io.Writer, payload []byte) error {
	// One buffer, one Write: a frame is a single I/O operation, which
	// fault injectors rely on for frame-granular, reproducible faults.
	buf := make([]byte, frameHdrLen+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[frameHdrLen:], payload)
	_, err := w.Write(buf)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxFrame {
		return nil, errors.Join(ErrCorrupt, fmt.Errorf("frame of %d bytes exceeds limit", n))
	}
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(buf) != sum {
		return nil, errors.Join(ErrCorrupt, errors.New("frame checksum mismatch"))
	}
	return buf, nil
}

// reqFrame builds a request payload with the transport header.
func reqFrame(op byte, clientID, seq uint64, body []byte) []byte {
	buf := make([]byte, reqHdrLen+len(body))
	buf[0] = op
	binary.LittleEndian.PutUint64(buf[1:9], clientID)
	binary.LittleEndian.PutUint64(buf[9:17], seq)
	copy(buf[reqHdrLen:], body)
	return buf
}

// CallHandler dispatches one unmarshaled-by-the-stub call.
type CallHandler func(iid string, instID uint64, method string, argBytes []byte) (retBytes []byte, err error)

// Server accepts transport connections and dispatches calls to a handler.
type Server struct {
	ln      net.Listener
	handler CallHandler
	calls   *dedup
	wg      sync.WaitGroup
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closed  bool
}

// ServeOption configures a transport server.
type ServeOption func(*Server)

// WithListenerWrapper interposes on the server's listener — the hook for
// server-side fault injection (pass a fault.Injector's WrapListener).
func WithListenerWrapper(wrap func(net.Listener) net.Listener) ServeOption {
	return func(s *Server) { s.ln = wrap(s.ln) }
}

// Serve starts a server on addr (e.g. "127.0.0.1:0").
func Serve(addr string, h CallHandler, opts ...ServeOption) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, handler: h, calls: newDedup(), conns: make(map[net.Conn]struct{})}
	for _, o := range opts {
		o(s)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server, severs live connections, and waits for their
// handlers to finish.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// track registers a live connection; it reports false when the server is
// already closed (the connection is closed instead).
func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		c.Close()
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		if !s.track(conn) {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	for {
		req, err := readFrame(conn)
		if err != nil {
			return
		}
		resp := s.dispatch(req)
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

func fail(msg string) []byte {
	out := []byte{statusErr}
	return append(out, msg...)
}

// dispatch executes one request payload and returns the response payload.
// It must never panic, whatever the bytes: the frame layer only guarantees
// integrity (checksum), not well-formedness.
func (s *Server) dispatch(req []byte) []byte {
	if len(req) < reqHdrLen {
		return fail("short request")
	}
	op := req[0]
	clientID := binary.LittleEndian.Uint64(req[1:9])
	seq := binary.LittleEndian.Uint64(req[9:17])
	body := req[reqHdrLen:]
	switch op {
	case opPing:
		// Pings are idempotent; no dedup.
		out := []byte{statusOK}
		return append(out, body...)
	case opCall:
		e, first := s.calls.begin(clientID, seq)
		if !first {
			return e.resp
		}
		resp := s.execCall(body)
		s.calls.finish(e, resp)
		return resp
	default:
		return fail(fmt.Sprintf("unknown opcode %d", op))
	}
}

// execCall decodes and executes one call body (at most once per request:
// dispatch consults the dedup cache first).
func (s *Server) execCall(body []byte) []byte {
	d := idl.NewDecoder(body, nil)
	iidV, err := d.Decode(idl.TString)
	if err != nil {
		return fail(err.Error())
	}
	instV, err := d.Decode(idl.TInt64)
	if err != nil {
		return fail(err.Error())
	}
	methodV, err := d.Decode(idl.TString)
	if err != nil {
		return fail(err.Error())
	}
	argsV, err := d.Decode(idl.TBytes)
	if err != nil {
		return fail(err.Error())
	}
	if s.handler == nil {
		return fail("no handler")
	}
	rets, err := s.handler(iidV.Str, uint64(instV.Int), methodV.Str, argsV.Bytes)
	if err != nil {
		return fail(err.Error())
	}
	out := []byte{statusOK}
	return append(out, rets...)
}

// Conn is a client connection to a transport server. Calls run under a
// per-attempt deadline and are retried per the connection's CallPolicy,
// transparently reconnecting when the link breaks; request sequence
// numbers plus the server's at-most-once dedup make retries safe.
type Conn struct {
	addr     string
	policy   CallPolicy
	dialFn   func(addr string) (net.Conn, error)
	clientID uint64

	// mu serializes round trips: the protocol has one call in flight per
	// connection, like a synchronous DCOM channel.
	mu  sync.Mutex
	seq uint64
	rng *rand.Rand

	// connMu guards the underlying conn so Close can sever an in-flight
	// call from another goroutine without racing reconnection.
	connMu sync.Mutex
	c      net.Conn
	closed bool

	retries    atomic.Int64
	reconnects atomic.Int64
}

// clientSeq distinguishes connections of one process; mixed with the pid
// it forms default client identities without any coordination.
var clientSeq atomic.Uint64

func splitmixID(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Dial connects to a transport server.
func Dial(addr string, opts ...DialOption) (*Conn, error) {
	id := splitmixID(uint64(os.Getpid())<<32 ^ clientSeq.Add(1))
	c := &Conn{
		addr:     addr,
		policy:   DefaultCallPolicy(),
		clientID: id,
		rng:      rand.New(rand.NewSource(int64(id))),
		dialFn: func(a string) (net.Conn, error) {
			return net.DialTimeout("tcp", a, 2*time.Second)
		},
	}
	for _, o := range opts {
		o(c)
	}
	nc, err := c.dialFn(addr)
	if err != nil {
		return nil, err
	}
	c.c = nc
	return c, nil
}

// Close closes the connection; an in-flight call fails without retrying.
func (c *Conn) Close() error {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	c.closed = true
	if c.c != nil {
		err := c.c.Close()
		c.c = nil
		return err
	}
	return nil
}

// Stats reports how many retries and reconnections the connection has
// performed — the counters chaos runs surface in their output.
func (c *Conn) Stats() (retries, reconnects int64) {
	return c.retries.Load(), c.reconnects.Load()
}

// acquire returns the live underlying connection, redialing when the
// previous one was discarded after a failure.
func (c *Conn) acquire() (net.Conn, error) {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	if c.closed {
		return nil, net.ErrClosed
	}
	if c.c != nil {
		return c.c, nil
	}
	nc, err := c.dialFn(c.addr)
	if err != nil {
		return nil, err
	}
	c.c = nc
	c.reconnects.Add(1)
	return nc, nil
}

// discard drops a broken underlying connection so the next attempt
// redials.
func (c *Conn) discard(nc net.Conn) {
	c.connMu.Lock()
	if c.c == nc {
		c.c = nil
	}
	c.connMu.Unlock()
	nc.Close()
}

// attempt performs one framed round trip under a deadline.
func (c *Conn) attempt(req []byte, timeout time.Duration) ([]byte, error) {
	nc, err := c.acquire()
	if err != nil {
		return nil, err
	}
	if timeout > 0 {
		//lint:allow wallclock socket deadlines are real time, not virtual time
		nc.SetDeadline(time.Now().Add(timeout))
	} else {
		nc.SetDeadline(time.Time{})
	}
	if err := writeFrame(nc, req); err != nil {
		c.discard(nc)
		return nil, classifyNetErr(err)
	}
	resp, err := readFrame(nc)
	if err != nil {
		c.discard(nc)
		return nil, classifyNetErr(err)
	}
	return resp, nil
}

// roundTrip sends one request and returns the response body, retrying per
// policy. Remote (application) errors are final; timeouts, corruption,
// and severed connections are retried until the attempt budget runs out.
func (c *Conn) roundTrip(op byte, method string, body []byte, opts []CallOption) ([]byte, error) {
	pol := c.policy
	for _, o := range opts {
		o(&pol)
	}
	if pol.MaxAttempts < 1 {
		pol.MaxAttempts = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	seq := c.seq
	c.seq++
	req := reqFrame(op, c.clientID, seq, body)
	var last error
	attempts := 0
	for attempt := 1; attempt <= pol.MaxAttempts; attempt++ {
		if attempt > 1 {
			c.retries.Add(1)
			time.Sleep(pol.delay(attempt-1, c.rng))
		}
		attempts = attempt
		resp, err := c.attempt(req, pol.Timeout)
		if err == nil {
			if len(resp) < 1 {
				last = errors.Join(ErrCorrupt, errors.New("empty response"))
				continue
			}
			if resp[0] == statusErr {
				return nil, &TransportError{
					Addr: c.addr, Method: method, Attempts: attempt,
					Err: errors.Join(ErrRemote, errors.New(string(resp[1:]))),
				}
			}
			return resp[1:], nil
		}
		last = err
		if errors.Is(err, net.ErrClosed) {
			break // locally closed; retrying cannot help
		}
	}
	return nil, &TransportError{Addr: c.addr, Method: method, Attempts: attempts, Err: last}
}

// Call invokes a remote method with pre-encoded parameters. Options
// override the connection's policy for this call only.
func (c *Conn) Call(iid string, instID uint64, method string, argBytes []byte, opts ...CallOption) ([]byte, error) {
	e := idl.NewEncoder()
	if err := e.Encode(idl.String(iid)); err != nil {
		return nil, err
	}
	if err := e.Encode(idl.Int64(int64(instID))); err != nil {
		return nil, err
	}
	if err := e.Encode(idl.String(method)); err != nil {
		return nil, err
	}
	if err := e.Encode(idl.ByteBuf(argBytes)); err != nil {
		return nil, err
	}
	return c.roundTrip(opCall, method, e.Bytes(), opts)
}

// Ping measures one round trip carrying a payload of the given size; the
// network profiler samples it to build a profile of a real transport.
func (c *Conn) Ping(size int, opts ...CallOption) (time.Duration, error) {
	payload := make([]byte, size)
	//lint:allow wallclock Ping measures real network round-trip time
	start := time.Now()
	if _, err := c.roundTrip(opPing, "ping", payload, opts); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// Proxy is the client-side stand-in for a remote component interface. It
// implements idl.InterfacePtr, so proxies flow through parameters exactly
// like local interface pointers.
type Proxy struct {
	conn   *Conn
	reg    *idl.Registry
	iid    string
	instID uint64
}

// NewProxy returns a proxy for a remote instance's interface.
func NewProxy(conn *Conn, reg *idl.Registry, iid string, instID uint64) *Proxy {
	return &Proxy{conn: conn, reg: reg, iid: iid, instID: instID}
}

// IID implements idl.InterfacePtr.
func (p *Proxy) IID() string { return p.iid }

// InstanceID implements idl.InterfacePtr.
func (p *Proxy) InstanceID() uint64 { return p.instID }

// Invoke marshals the call, sends it, and unmarshals the results. The
// reply convention is the out-parameter list followed by the result value
// when the method's result is not void.
func (p *Proxy) Invoke(method string, args ...idl.Value) ([]idl.Value, error) {
	desc := p.reg.Lookup(p.iid)
	if desc == nil {
		return nil, fmt.Errorf("dist: proxy has no metadata for %s", p.iid)
	}
	if !desc.Remotable {
		return nil, fmt.Errorf("dist: interface %s is not remotable", p.iid)
	}
	m := desc.Method(method)
	if m == nil {
		return nil, fmt.Errorf("dist: %s has no method %s", p.iid, method)
	}
	inTypes := paramTypes(m.InParams())
	argBytes, err := idl.EncodeParams(inTypes, args)
	if err != nil {
		return nil, err
	}
	retBytes, err := p.conn.Call(p.iid, p.instID, method, argBytes)
	if err != nil {
		return nil, err
	}
	return idl.DecodeParams(retBytes, replyTypes(m), proxyResolver{p.conn, p.reg})
}

// proxyResolver turns object references in replies into further proxies.
type proxyResolver struct {
	conn *Conn
	reg  *idl.Registry
}

// ResolveObjRef implements idl.Resolver.
func (r proxyResolver) ResolveObjRef(iid string, instanceID uint64) (idl.InterfacePtr, error) {
	return NewProxy(r.conn, r.reg, iid, instanceID), nil
}

func paramTypes(ps []idl.ParamDesc) []*idl.TypeDesc {
	out := make([]*idl.TypeDesc, len(ps))
	for i := range ps {
		out[i] = ps[i].Type
	}
	return out
}

func replyTypes(m *idl.MethodDesc) []*idl.TypeDesc {
	types := paramTypes(m.OutParams())
	if m.Result != nil && m.Result.Kind != idl.KindVoid {
		types = append(types, m.Result)
	}
	return types
}

// Stub is the server-side dispatcher: it unmarshals parameters, invokes
// the real component through the environment, and marshals the results.
type Stub struct {
	env *com.Env
}

// NewStub returns a stub over the environment hosting the real instances.
func NewStub(env *com.Env) *Stub { return &Stub{env: env} }

// Handle implements CallHandler.
func (s *Stub) Handle(iid string, instID uint64, method string, argBytes []byte) ([]byte, error) {
	reg := s.env.App().Interfaces
	desc := reg.Lookup(iid)
	if desc == nil {
		return nil, fmt.Errorf("dist: stub has no metadata for %s", iid)
	}
	m := desc.Method(method)
	if m == nil {
		return nil, fmt.Errorf("dist: %s has no method %s", iid, method)
	}
	inst := s.env.Instance(instID)
	if inst == nil {
		return nil, fmt.Errorf("dist: no instance %d", instID)
	}
	args, err := idl.DecodeParams(argBytes, paramTypes(m.InParams()), stubResolver{s.env})
	if err != nil {
		return nil, err
	}
	itf, err := s.env.Query(inst, iid)
	if err != nil {
		return nil, err
	}
	rets, err := s.env.Call(nil, itf, method, args...)
	if err != nil {
		return nil, err
	}
	types := replyTypes(m)
	if len(rets) != len(types) {
		return nil, fmt.Errorf("dist: %s.%s returned %d values, reply signature has %d",
			iid, method, len(rets), len(types))
	}
	return idl.EncodeParams(types, rets)
}

// stubResolver resolves object references in requests to local instances.
type stubResolver struct {
	env *com.Env
}

// ResolveObjRef implements idl.Resolver.
func (r stubResolver) ResolveObjRef(iid string, instanceID uint64) (idl.InterfacePtr, error) {
	inst := r.env.Instance(instanceID)
	if inst == nil {
		return nil, fmt.Errorf("dist: object reference to unknown instance %d", instanceID)
	}
	return r.env.Query(inst, iid)
}
