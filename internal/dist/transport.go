package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/com"
	"repro/internal/idl"
)

// The loopback transport is a working DCOM stand-in over TCP: method calls
// are marshaled by proxies with the NDR-like codec, framed, dispatched to
// a stub that invokes the real component, and the results marshaled back.
// The network profiler can also measure real message round trips through
// it. Frames are u32-length-prefixed; a request carries an opcode (call or
// ping), the target object reference, the method name, and the encoded
// parameters.

const (
	opCall = 1
	opPing = 2

	statusOK  = 0
	statusErr = 1

	maxFrame = 16 << 20
)

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("dist: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// CallHandler dispatches one unmarshaled-by-the-stub call.
type CallHandler func(iid string, instID uint64, method string, argBytes []byte) (retBytes []byte, err error)

// Server accepts transport connections and dispatches calls to a handler.
type Server struct {
	ln      net.Listener
	handler CallHandler
	wg      sync.WaitGroup
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closed  bool
}

// Serve starts a server on addr (e.g. "127.0.0.1:0").
func Serve(addr string, h CallHandler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, handler: h, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server, severs live connections, and waits for their
// handlers to finish.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// track registers a live connection; it reports false when the server is
// already closed (the connection is closed instead).
func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		c.Close()
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		if !s.track(conn) {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	for {
		req, err := readFrame(conn)
		if err != nil {
			return
		}
		resp := s.dispatch(req)
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req []byte) []byte {
	fail := func(msg string) []byte {
		out := []byte{statusErr}
		return append(out, msg...)
	}
	if len(req) < 1 {
		return fail("empty request")
	}
	op := req[0]
	body := req[1:]
	switch op {
	case opPing:
		out := []byte{statusOK}
		return append(out, body...)
	case opCall:
		d := idl.NewDecoder(body, nil)
		iidV, err := d.Decode(idl.TString)
		if err != nil {
			return fail(err.Error())
		}
		instV, err := d.Decode(idl.TInt64)
		if err != nil {
			return fail(err.Error())
		}
		methodV, err := d.Decode(idl.TString)
		if err != nil {
			return fail(err.Error())
		}
		argsV, err := d.Decode(idl.TBytes)
		if err != nil {
			return fail(err.Error())
		}
		if s.handler == nil {
			return fail("no handler")
		}
		rets, err := s.handler(iidV.Str, uint64(instV.Int), methodV.Str, argsV.Bytes)
		if err != nil {
			return fail(err.Error())
		}
		out := []byte{statusOK}
		return append(out, rets...)
	default:
		return fail(fmt.Sprintf("unknown opcode %d", op))
	}
}

// Conn is a client connection to a transport server.
type Conn struct {
	mu sync.Mutex
	c  net.Conn
}

// Dial connects to a transport server.
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Conn{c: c}, nil
}

// Close closes the connection.
func (c *Conn) Close() error { return c.c.Close() }

func (c *Conn) roundTrip(req []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.c, req); err != nil {
		return nil, err
	}
	resp, err := readFrame(c.c)
	if err != nil {
		return nil, err
	}
	if len(resp) < 1 {
		return nil, errors.New("dist: empty response")
	}
	if resp[0] == statusErr {
		return nil, fmt.Errorf("dist: remote error: %s", string(resp[1:]))
	}
	return resp[1:], nil
}

// Call invokes a remote method with pre-encoded parameters.
func (c *Conn) Call(iid string, instID uint64, method string, argBytes []byte) ([]byte, error) {
	e := idl.NewEncoder()
	if err := e.Encode(idl.String(iid)); err != nil {
		return nil, err
	}
	if err := e.Encode(idl.Int64(int64(instID))); err != nil {
		return nil, err
	}
	if err := e.Encode(idl.String(method)); err != nil {
		return nil, err
	}
	if err := e.Encode(idl.ByteBuf(argBytes)); err != nil {
		return nil, err
	}
	req := append([]byte{opCall}, e.Bytes()...)
	return c.roundTrip(req)
}

// Ping measures one round trip carrying a payload of the given size; the
// network profiler samples it to build a profile of a real transport.
func (c *Conn) Ping(size int) (time.Duration, error) {
	payload := make([]byte, size)
	req := append([]byte{opPing}, payload...)
	start := time.Now()
	if _, err := c.roundTrip(req); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// Proxy is the client-side stand-in for a remote component interface. It
// implements idl.InterfacePtr, so proxies flow through parameters exactly
// like local interface pointers.
type Proxy struct {
	conn   *Conn
	reg    *idl.Registry
	iid    string
	instID uint64
}

// NewProxy returns a proxy for a remote instance's interface.
func NewProxy(conn *Conn, reg *idl.Registry, iid string, instID uint64) *Proxy {
	return &Proxy{conn: conn, reg: reg, iid: iid, instID: instID}
}

// IID implements idl.InterfacePtr.
func (p *Proxy) IID() string { return p.iid }

// InstanceID implements idl.InterfacePtr.
func (p *Proxy) InstanceID() uint64 { return p.instID }

// Invoke marshals the call, sends it, and unmarshals the results. The
// reply convention is the out-parameter list followed by the result value
// when the method's result is not void.
func (p *Proxy) Invoke(method string, args ...idl.Value) ([]idl.Value, error) {
	desc := p.reg.Lookup(p.iid)
	if desc == nil {
		return nil, fmt.Errorf("dist: proxy has no metadata for %s", p.iid)
	}
	if !desc.Remotable {
		return nil, fmt.Errorf("dist: interface %s is not remotable", p.iid)
	}
	m := desc.Method(method)
	if m == nil {
		return nil, fmt.Errorf("dist: %s has no method %s", p.iid, method)
	}
	inTypes := paramTypes(m.InParams())
	argBytes, err := idl.EncodeParams(inTypes, args)
	if err != nil {
		return nil, err
	}
	retBytes, err := p.conn.Call(p.iid, p.instID, method, argBytes)
	if err != nil {
		return nil, err
	}
	return idl.DecodeParams(retBytes, replyTypes(m), proxyResolver{p.conn, p.reg})
}

// proxyResolver turns object references in replies into further proxies.
type proxyResolver struct {
	conn *Conn
	reg  *idl.Registry
}

// ResolveObjRef implements idl.Resolver.
func (r proxyResolver) ResolveObjRef(iid string, instanceID uint64) (idl.InterfacePtr, error) {
	return NewProxy(r.conn, r.reg, iid, instanceID), nil
}

func paramTypes(ps []idl.ParamDesc) []*idl.TypeDesc {
	out := make([]*idl.TypeDesc, len(ps))
	for i := range ps {
		out[i] = ps[i].Type
	}
	return out
}

func replyTypes(m *idl.MethodDesc) []*idl.TypeDesc {
	types := paramTypes(m.OutParams())
	if m.Result != nil && m.Result.Kind != idl.KindVoid {
		types = append(types, m.Result)
	}
	return types
}

// Stub is the server-side dispatcher: it unmarshals parameters, invokes
// the real component through the environment, and marshals the results.
type Stub struct {
	env *com.Env
}

// NewStub returns a stub over the environment hosting the real instances.
func NewStub(env *com.Env) *Stub { return &Stub{env: env} }

// Handle implements CallHandler.
func (s *Stub) Handle(iid string, instID uint64, method string, argBytes []byte) ([]byte, error) {
	reg := s.env.App().Interfaces
	desc := reg.Lookup(iid)
	if desc == nil {
		return nil, fmt.Errorf("dist: stub has no metadata for %s", iid)
	}
	m := desc.Method(method)
	if m == nil {
		return nil, fmt.Errorf("dist: %s has no method %s", iid, method)
	}
	inst := s.env.Instance(instID)
	if inst == nil {
		return nil, fmt.Errorf("dist: no instance %d", instID)
	}
	args, err := idl.DecodeParams(argBytes, paramTypes(m.InParams()), stubResolver{s.env})
	if err != nil {
		return nil, err
	}
	itf, err := s.env.Query(inst, iid)
	if err != nil {
		return nil, err
	}
	rets, err := s.env.Call(nil, itf, method, args...)
	if err != nil {
		return nil, err
	}
	types := replyTypes(m)
	if len(rets) != len(types) {
		return nil, fmt.Errorf("dist: %s.%s returned %d values, reply signature has %d",
			iid, method, len(rets), len(types))
	}
	return idl.EncodeParams(types, rets)
}

// stubResolver resolves object references in requests to local instances.
type stubResolver struct {
	env *com.Env
}

// ResolveObjRef implements idl.Resolver.
func (r stubResolver) ResolveObjRef(iid string, instanceID uint64) (idl.InterfacePtr, error) {
	inst := r.env.Instance(instanceID)
	if inst == nil {
		return nil, fmt.Errorf("dist: object reference to unknown instance %d", instanceID)
	}
	return r.env.Query(inst, iid)
}
