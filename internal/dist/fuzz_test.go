package dist

import (
	"bytes"
	"testing"

	"repro/internal/idl"
)

// FuzzDispatch hardens the server's request dispatcher against arbitrary
// request payloads: whatever bytes arrive inside a well-framed request, the
// dispatcher must never panic and must always produce a response with a
// valid status byte. Run with `go test -fuzz FuzzDispatch ./internal/dist`
// to explore beyond the seed corpus.
func FuzzDispatch(f *testing.F) {
	// Seeds: a valid call, a valid ping, and structured junk.
	e := idl.NewEncoder()
	for _, v := range []idl.Value{idl.String("IStorage"), idl.Int64(7), idl.String("ReadBlock"), idl.ByteBuf([]byte{1, 2, 3})} {
		if err := e.Encode(v); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(reqFrame(opCall, 0xFEED, 1, e.Bytes()))
	f.Add(reqFrame(opPing, 0xFEED, 2, make([]byte, 128)))
	f.Add(reqFrame(opCall, 0, 0, nil))
	f.Add(reqFrame(99, 1, 3, []byte("unknown opcode")))
	f.Add([]byte{})
	f.Add([]byte{opCall})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, req []byte) {
		s := &Server{calls: newDedup(), handler: func(_ string, _ uint64, _ string, args []byte) ([]byte, error) {
			return args, nil
		}}
		resp := s.dispatch(req)
		if len(resp) < 1 {
			t.Fatalf("dispatch returned an empty response for %x", req)
		}
		if resp[0] != statusOK && resp[0] != statusErr {
			t.Fatalf("dispatch returned invalid status %d for %x", resp[0], req)
		}
		// Dispatching the same bytes again must be idempotent (dedup for
		// calls, pure echo for pings, same failure for garbage).
		if again := s.dispatch(req); !bytes.Equal(resp, again) {
			t.Fatalf("re-dispatch disagreed: %x vs %x", resp, again)
		}
	})
}
