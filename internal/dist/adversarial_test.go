package dist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/idl"
)

// serveEcho starts a server whose handler echoes the argument bytes.
func serveEcho(t *testing.T) *Server {
	t.Helper()
	srv, err := Serve("127.0.0.1:0", func(_ string, _ uint64, _ string, argBytes []byte) ([]byte, error) {
		return argBytes, nil
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// callBody builds a valid opCall body the way Conn.Call does.
func callBody(t *testing.T, iid string, instID uint64, method string, args []byte) []byte {
	t.Helper()
	e := idl.NewEncoder()
	for _, v := range []idl.Value{idl.String(iid), idl.Int64(int64(instID)), idl.String(method), idl.ByteBuf(args)} {
		if err := e.Encode(v); err != nil {
			t.Fatalf("encode: %v", err)
		}
	}
	return e.Bytes()
}

func TestDispatchNeverPanicsOnMalformedRequests(t *testing.T) {
	t.Parallel()
	s := &Server{calls: newDedup(), handler: func(string, uint64, string, []byte) ([]byte, error) {
		return []byte("ok"), nil
	}}
	cases := [][]byte{
		nil,
		{},
		{opCall},
		make([]byte, reqHdrLen-1),              // one byte short of a header
		reqFrame(opCall, 1, 1, nil),            // empty call body
		reqFrame(opCall, 1, 2, []byte("junk")), // body is not idl
		reqFrame(99, 1, 3, nil),                // unknown opcode
		reqFrame(0, 1, 4, nil),                 // zero opcode
		reqFrame(opCall, 1, 5, bytes.Repeat([]byte{0xFF}, 1024)),
		append(reqFrame(opCall, 1, 6, nil), 0x00),
	}
	for i, req := range cases {
		resp := s.dispatch(req)
		if len(resp) < 1 {
			t.Fatalf("case %d: empty response", i)
		}
		if resp[0] != statusOK && resp[0] != statusErr {
			t.Fatalf("case %d: invalid status byte %d", i, resp[0])
		}
	}
	// A well-formed request still works after the garbage.
	resp := s.dispatch(reqFrame(opCall, 1, 7, callBody(t, "I", 1, "m", nil)))
	if resp[0] != statusOK {
		t.Fatalf("valid request after garbage failed: %q", resp[1:])
	}
}

func TestRawMalformedFramesCloseConnection(t *testing.T) {
	t.Parallel()
	srv := serveEcho(t)
	send := func(name string, frame []byte) {
		nc, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatalf("%s: dial: %v", name, err)
		}
		defer nc.Close()
		if _, err := nc.Write(frame); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		// Half-close: the peer that sent a cut-off frame is gone.
		nc.(*net.TCPConn).CloseWrite()
		nc.SetReadDeadline(time.Now().Add(2 * time.Second))
		// The server must drop the connection, not answer or hang.
		if _, err := io.ReadAll(nc); err != nil {
			t.Fatalf("%s: server did not close cleanly: %v", name, err)
		}
	}

	oversize := make([]byte, frameHdrLen)
	binary.LittleEndian.PutUint32(oversize[0:4], maxFrame+1)
	send("oversized length prefix", oversize)

	bad := make([]byte, frameHdrLen+4)
	binary.LittleEndian.PutUint32(bad[0:4], 4)
	binary.LittleEndian.PutUint32(bad[4:8], 0xDEADBEEF) // wrong checksum
	send("checksum mismatch", bad)

	partial := make([]byte, frameHdrLen+2)
	binary.LittleEndian.PutUint32(partial[0:4], 100) // promises 100, sends 2
	send("truncated frame", partial)

	// The server keeps serving others after each of those.
	conn, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("dial after garbage: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Ping(16); err != nil {
		t.Fatalf("ping after garbage: %v", err)
	}
}

func TestRawShortRequestGetsErrorResponse(t *testing.T) {
	t.Parallel()
	srv := serveEcho(t)
	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	// A well-framed payload that is shorter than a request header.
	if err := writeFrame(nc, []byte{opCall, 0, 0}); err != nil {
		t.Fatalf("write: %v", err)
	}
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	resp, err := readFrame(nc)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(resp) < 1 || resp[0] != statusErr {
		t.Fatalf("short request got %v, want statusErr", resp)
	}
}

func TestFrameChecksumDetectsPayloadFlip(t *testing.T) {
	t.Parallel()
	payload := []byte("the integrity layer catches this")
	var buf bytes.Buffer
	if err := writeFrame(&buf, payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	raw := buf.Bytes()
	raw[frameHdrLen+5] ^= 0xA5 // the fault injector's corruption
	if _, err := readFrame(bytes.NewReader(raw)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped payload read error = %v, want ErrCorrupt", err)
	}
	// Sanity: the checksum is the standard IEEE CRC of the payload.
	if got := binary.LittleEndian.Uint32(raw[4:8]); got != crc32.ChecksumIEEE(payload) {
		t.Fatalf("header checksum %#x != crc32(payload) %#x", got, crc32.ChecksumIEEE(payload))
	}
}

func TestServerCloseRacesInflightCalls(t *testing.T) {
	t.Parallel()
	started := make(chan struct{}, 16)
	srv, err := Serve("127.0.0.1:0", func(_ string, _ uint64, _ string, argBytes []byte) ([]byte, error) {
		started <- struct{}{}
		time.Sleep(50 * time.Millisecond)
		return argBytes, nil
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}

	pol := CallPolicy{Timeout: time.Second, MaxAttempts: 2, Backoff: time.Millisecond}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		conn, err := Dial(srv.Addr(), WithPolicy(pol))
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		defer conn.Close()
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Either outcome is fine; what matters is no hang, no panic,
			// no race. Severed calls must return promptly.
			conn.Call("I", 1, "m", []byte("payload"))
		}()
	}
	// Close the server while the calls are executing.
	<-started
	srv.Close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("calls hung after server close")
	}
}

func TestManyConcurrentCallersOneConn(t *testing.T) {
	t.Parallel()
	srv := serveEcho(t)
	conn, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	const goroutines, calls = 16, 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				want := []byte(fmt.Sprintf("g%d-call%d", g, i))
				got, err := conn.Call("I", 1, "echo", want)
				if err != nil {
					errs <- fmt.Errorf("g%d call %d: %w", g, i, err)
					return
				}
				if !bytes.Equal(got, want) {
					errs <- fmt.Errorf("g%d call %d: got %q, want %q", g, i, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestDedupSuppressesDuplicateExecution(t *testing.T) {
	t.Parallel()
	var execs atomic.Int64
	s := &Server{calls: newDedup(), handler: func(_ string, _ uint64, _ string, args []byte) ([]byte, error) {
		execs.Add(1)
		time.Sleep(20 * time.Millisecond) // widen the concurrent-duplicate window
		return args, nil
	}}
	req := reqFrame(opCall, 0xC11E17, 1, callBody(t, "I", 1, "m", []byte("once")))

	// Sequential duplicate: answered from the cache.
	first := s.dispatch(req)
	second := s.dispatch(req)
	if execs.Load() != 1 {
		t.Fatalf("duplicate request executed the handler %d times", execs.Load())
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("duplicate got a different response: %q vs %q", first, second)
	}

	// Concurrent duplicates: the laggard waits for the original execution.
	req2 := reqFrame(opCall, 0xC11E17, 2, callBody(t, "I", 1, "m", []byte("twice")))
	var wg sync.WaitGroup
	resps := make([][]byte, 4)
	for i := range resps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i] = s.dispatch(req2)
		}(i)
	}
	wg.Wait()
	if got := execs.Load(); got != 2 {
		t.Fatalf("concurrent duplicates executed the handler %d times, want 2 total", got)
	}
	for i := 1; i < len(resps); i++ {
		if !bytes.Equal(resps[0], resps[i]) {
			t.Fatalf("concurrent duplicates disagree: %q vs %q", resps[0], resps[i])
		}
	}

	// A different sequence number is a new call.
	s.dispatch(reqFrame(opCall, 0xC11E17, 3, callBody(t, "I", 1, "m", nil)))
	if execs.Load() != 3 {
		t.Fatalf("new seq executed %d times total, want 3", execs.Load())
	}
}

// failFirstWrite breaks the first write on a connection, simulating a link
// reset between dial and use.
type failFirstWrite struct {
	net.Conn
	failed atomic.Bool
}

func (f *failFirstWrite) Write(b []byte) (int, error) {
	if f.failed.CompareAndSwap(false, true) {
		return 0, errors.New("injected: connection reset by peer")
	}
	return f.Conn.Write(b)
}

func TestRetryReconnectsAfterConnFailure(t *testing.T) {
	t.Parallel()
	srv := serveEcho(t)
	var dials atomic.Int32
	conn, err := Dial(srv.Addr(), WithDialer(func(addr string) (net.Conn, error) {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		if dials.Add(1) == 1 {
			return &failFirstWrite{Conn: nc}, nil
		}
		return nc, nil
	}))
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	got, err := conn.Call("I", 1, "m", []byte("survives a reset"))
	if err != nil {
		t.Fatalf("call across reset: %v", err)
	}
	if string(got) != "survives a reset" {
		t.Fatalf("got %q", got)
	}
	retries, reconnects := conn.Stats()
	if retries != 1 || reconnects != 1 {
		t.Fatalf("Stats() = (%d retries, %d reconnects), want (1, 1)", retries, reconnects)
	}
	if dials.Load() != 2 {
		t.Fatalf("dialer called %d times, want 2", dials.Load())
	}
}

func TestTimeoutErrorTyped(t *testing.T) {
	t.Parallel()
	release := make(chan struct{})
	srv, err := Serve("127.0.0.1:0", func(string, uint64, string, []byte) ([]byte, error) {
		<-release
		return nil, nil
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer srv.Close()
	defer close(release)

	conn, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	_, err = conn.Call("I", 1, "slow", nil, WithTimeout(50*time.Millisecond), WithoutRetries())
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("err = %T, want *TransportError", err)
	}
	if te.Attempts != 1 || te.Method != "slow" || te.Addr != srv.Addr() {
		t.Fatalf("TransportError context = %+v", te)
	}
}

func TestRemoteErrorNotRetried(t *testing.T) {
	t.Parallel()
	var execs atomic.Int64
	srv, err := Serve("127.0.0.1:0", func(string, uint64, string, []byte) ([]byte, error) {
		execs.Add(1)
		return nil, errors.New("application says no")
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer srv.Close()

	conn, err := Dial(srv.Addr()) // default policy: 4 attempts
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	_, err = conn.Call("I", 1, "m", nil)
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote", err)
	}
	if execs.Load() != 1 {
		t.Fatalf("remote error retried: handler ran %d times", execs.Load())
	}
	var te *TransportError
	if !errors.As(err, &te) || te.Attempts != 1 {
		t.Fatalf("remote error reports %+v, want 1 attempt", te)
	}
}
