package dist

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/idl"
)

func TestFrameRoundTrip(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	payload := []byte("hello frames")
	if err := writeFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("frame = %q", got)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	// Hand-craft a frame header claiming more than maxFrame bytes.
	hdr := []byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0}
	buf.Write(hdr)
	_, err := readFrame(&buf)
	if err == nil {
		t.Fatal("oversized frame accepted")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized frame error = %v, want ErrCorrupt", err)
	}
}

func TestFrameRejectsChecksumMismatch(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := writeFrame(&buf, []byte("payload under test")); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-1] ^= 0xA5 // corrupt one payload byte
	_, err := readFrame(bytes.NewReader(data))
	if err == nil {
		t.Fatal("corrupt frame accepted")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt frame error = %v, want ErrCorrupt", err)
	}
}

func TestFrameTruncation(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := writeFrame(&buf, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 1; cut < len(data); cut++ {
		if _, err := readFrame(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncated frame (%d/%d bytes) accepted", cut, len(data))
		}
	}
}

func TestServerDispatchErrors(t *testing.T) {
	t.Parallel()
	srv, err := Serve("127.0.0.1:0", nil) // nil handler
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Ping still works without a handler.
	if _, err := conn.Ping(16); err != nil {
		t.Fatal(err)
	}
	// Calls fail cleanly, with the typed remote error.
	_, err = conn.Call("I", 1, "M", nil)
	if err == nil {
		t.Fatal("call without handler succeeded")
	}
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("handlerless call error = %v, want ErrRemote", err)
	}
	// Unknown opcode.
	if _, err := conn.roundTrip(99, "", nil, nil); err == nil {
		t.Fatal("unknown opcode accepted")
	}
}

func TestConcurrentClients(t *testing.T) {
	t.Parallel()
	handler := func(iid string, inst uint64, method string, args []byte) ([]byte, error) {
		return idl.EncodeParams([]*idl.TypeDesc{idl.TInt64}, []idl.Value{idl.Int64(int64(inst))})
	}
	srv, err := Serve("127.0.0.1:0", handler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients = 8
	const callsPer = 50
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			for i := 0; i < callsPer; i++ {
				ret, err := conn.Call("I", uint64(c), "Get", nil)
				if err != nil {
					errs <- err
					return
				}
				vals, err := idl.DecodeParams(ret, []*idl.TypeDesc{idl.TInt64}, nil)
				if err != nil {
					errs <- err
					return
				}
				if vals[0].AsInt() != int64(c) {
					errs <- fmt.Errorf("client %d got %d", c, vals[0].AsInt())
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	t.Parallel()
	srv, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	srv.Close()
	// After close, round trips fail rather than hang.
	if _, err := conn.Ping(8); err == nil {
		// The ping may race the close; a second attempt must fail.
		if _, err := conn.Ping(8); err == nil {
			t.Fatal("ping succeeded after server close")
		}
	}
}

func TestProxyRejectsNonRemotableInterface(t *testing.T) {
	t.Parallel()
	app := pipelineApp()
	app.Interfaces.Register(&idl.InterfaceDesc{
		IID: "ILocalOnly", Remotable: false,
		Methods: []idl.MethodDesc{{Name: "X", Result: idl.TVoid}},
	})
	conn := &Conn{}
	p := NewProxy(conn, app.Interfaces, "ILocalOnly", 1)
	if _, err := p.Invoke("X"); err == nil {
		t.Fatal("proxy invoked a non-remotable interface")
	}
	q := NewProxy(conn, app.Interfaces, "INoSuch", 1)
	if _, err := q.Invoke("X"); err == nil {
		t.Fatal("proxy invoked an unknown interface")
	}
	r := NewProxy(conn, app.Interfaces, "IStorage", 1)
	if _, err := r.Invoke("NoSuchMethod"); err == nil {
		t.Fatal("proxy invoked an unknown method")
	}
}
