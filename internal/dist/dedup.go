package dist

import "sync"

// dedup implements server-side at-most-once execution. Every request
// carries a (clientID, seq) pair; the server records the response of each
// executed call so a retried request — the client could not know whether
// the lost round trip died before or after execution — is answered from
// the cache instead of being re-executed. A duplicate that arrives while
// the original is still executing waits for it and returns the same
// response, so concurrent re-sends cannot double-execute either.
//
// Memory is bounded: each client keeps a sliding window of recent
// responses, and the least-recently-active clients are evicted once the
// client table is full. The windows are far larger than the retry budget
// of any one call, so eviction never breaks a live retry.
type dedup struct {
	mu         sync.Mutex
	clients    map[uint64]*dedupClient
	maxClients int
	window     int
	tick       uint64
}

type dedupClient struct {
	entries map[uint64]*dedupEntry
	order   []uint64 // seqs in arrival order, for window eviction
	stamp   uint64   // last-activity tick, for client eviction
}

// dedupEntry is one executed (or executing) call. resp is written before
// done is closed; waiters read it only after <-done.
type dedupEntry struct {
	done chan struct{}
	resp []byte
}

func newDedup() *dedup {
	return &dedup{
		clients:    make(map[uint64]*dedupClient),
		maxClients: 64,
		window:     256,
	}
}

// begin claims (client, seq). When first is true the caller must execute
// the call and finish() the entry; otherwise the entry's response is ready
// (begin waited for the original execution if it was still in flight).
func (d *dedup) begin(client, seq uint64) (e *dedupEntry, first bool) {
	d.mu.Lock()
	cl := d.clients[client]
	if cl == nil {
		d.evictClientLocked()
		cl = &dedupClient{entries: make(map[uint64]*dedupEntry)}
		d.clients[client] = cl
	}
	d.tick++
	cl.stamp = d.tick
	if e := cl.entries[seq]; e != nil {
		d.mu.Unlock()
		<-e.done
		return e, false
	}
	e = &dedupEntry{done: make(chan struct{})}
	cl.entries[seq] = e
	cl.order = append(cl.order, seq)
	// Slide the window: drop the oldest completed entries beyond capacity.
	// An entry still executing stays (the window is transiently larger).
	for len(cl.order) > d.window && completed(cl.entries[cl.order[0]]) {
		delete(cl.entries, cl.order[0])
		cl.order = cl.order[1:]
	}
	d.mu.Unlock()
	return e, true
}

func completed(e *dedupEntry) bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// finish publishes the response of an executed call.
func (d *dedup) finish(e *dedupEntry, resp []byte) {
	e.resp = resp
	close(e.done)
}

// evictClientLocked drops the least-recently-active client when the
// client table is full. Called with mu held.
func (d *dedup) evictClientLocked() {
	if len(d.clients) < d.maxClients {
		return
	}
	var victim uint64
	var oldest uint64 = ^uint64(0)
	for id, cl := range d.clients {
		if cl.stamp < oldest {
			oldest = cl.stamp
			victim = id
		}
	}
	delete(d.clients, victim)
}
