package dist

import (
	"errors"
	"fmt"
	"net"
)

// Typed transport errors. Callers classify failures with errors.Is; every
// error returned by Conn.Call / Conn.Ping wraps one of these (or a raw I/O
// error for severed connections) inside a TransportError carrying the
// address, method, and attempt count.
var (
	// ErrTimeout marks a call that exceeded its per-attempt deadline — a
	// stalled peer, a blackholed link, or a dead server.
	ErrTimeout = errors.New("dist: call timed out")
	// ErrRemote marks a call the server executed and answered with an
	// application-level error. Remote errors are never retried: the call
	// reached the handler.
	ErrRemote = errors.New("dist: remote error")
	// ErrCorrupt marks a frame that failed integrity checks: a checksum
	// mismatch, an oversized length prefix, or an empty response.
	ErrCorrupt = errors.New("dist: corrupt frame")
)

// TransportError wraps a transport failure with call context.
type TransportError struct {
	// Addr is the remote address of the connection.
	Addr string
	// Method is the invoked method ("ping" for pings, "" for raw frames).
	Method string
	// Attempts is how many times the call was attempted before giving up.
	Attempts int
	// Err is the final underlying error; it wraps ErrTimeout, ErrRemote,
	// or ErrCorrupt when the failure is classifiable.
	Err error
}

// Error implements error.
func (e *TransportError) Error() string {
	m := e.Method
	if m == "" {
		m = "<frame>"
	}
	return fmt.Sprintf("dist: %s to %s failed after %d attempt(s): %v", m, e.Addr, e.Attempts, e.Err)
}

// Unwrap exposes the underlying error to errors.Is / errors.As.
func (e *TransportError) Unwrap() error { return e.Err }

// classifyNetErr wraps deadline expiries with ErrTimeout so callers can
// test errors.Is(err, ErrTimeout) without knowing net internals.
func classifyNetErr(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return errors.Join(ErrTimeout, err)
	}
	return err
}
