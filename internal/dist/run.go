package dist

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/caching"
	"repro/internal/classify"
	"repro/internal/com"
	"repro/internal/factory"
	"repro/internal/informer"
	"repro/internal/logger"
	"repro/internal/netsim"
	"repro/internal/profile"
	"repro/internal/rte"
)

// Mode selects the instrumentation configuration of a run.
type Mode int

// Run modes.
const (
	// ModeBare runs the original binary with no Coign runtime at all; the
	// baseline for instrumentation-overhead measurements. No placement or
	// communication accounting occurs.
	ModeBare Mode = iota
	// ModeDefault runs the application in the developer's default
	// distribution (classes at their Home machines, data files on the
	// server) with the lightweight runtime, accounting cross-machine
	// communication. This is Table 4's "default" column.
	ModeDefault
	// ModeProfiling runs the instrumented binary through a profiling
	// scenario: the profiling informer measures every call and the
	// profiling logger summarizes ICC. The application itself runs
	// non-distributed, as during Coign's scenario-based profiling.
	ModeProfiling
	// ModeCoign runs the application in a Coign-chosen distribution: the
	// distribution informer, the null logger, and the component factory
	// enforcing the classification→machine map.
	ModeCoign
)

// Config describes one run.
type Config struct {
	App      *com.App
	Scenario string
	Seed     int64
	Mode     Mode

	// Classifier is required for every mode except ModeBare.
	Classifier classify.Classifier
	// InstanceDetail keeps per-instance edges in profiling runs (needed
	// for classifier-accuracy evaluation).
	InstanceDetail bool
	// Distribution is the classification→machine map for ModeCoign.
	Distribution map[string]com.Machine
	// Network is the simulated network; nil means 10BaseT.
	Network *netsim.Model
	// ExtraLogger, when set, receives events in ModeDefault and ModeCoign
	// alongside the null logger — the hook for the adapt package's
	// message-counting watchdog (paper §6).
	ExtraLogger logger.Logger
	// EnableCaching turns on per-interface result caching for methods
	// marked Cacheable (the semi-custom-marshaling analog); effective in
	// ModeDefault and ModeCoign.
	EnableCaching bool
	// Jitter samples stochastic message times instead of means.
	Jitter bool
	// EventTrace additionally records a full event trace.
	EventTrace bool
	// Faults, when set, simulates a lossy network in ModeDefault and
	// ModeCoign: cross-machine messages are dropped/corrupted per the
	// policy (seeded from Seed, so chaos runs reproduce exactly) and
	// retransmitted with backoff. If any message exhausts its attempt
	// budget the run fails with an error wrapping ErrTimeout.
	Faults *FaultPolicy
}

// Result reports one run's outcome.
type Result struct {
	Clock      *Clock
	Profile    *profile.Profile
	Events     *logger.EventLogger
	Instances  int
	PerMachine map[com.Machine]int
	// AppInstances and AppPerMachine exclude infrastructure components
	// (the file server's storage, the database engine), which are part of
	// the environment rather than of the application being partitioned —
	// the paper's figures count only application components.
	AppInstances  int
	AppPerMachine map[com.Machine]int
	Violations    int
	// Relocations and Unknown are component-factory counters (ModeCoign).
	Relocations int64
	Unknown     int64
	// WallTime is real (host) execution time, used by the
	// instrumentation-overhead benchmarks.
	WallTime time.Duration
	// TrappedCalls is the number of interface calls the RTE observed.
	TrappedCalls int64
	// CacheHits counts cross-machine calls answered from the
	// per-interface cache (EnableCaching).
	CacheHits int64
	// Retries, FaultDrops, FaultCorruptions, and FaultGiveUps summarize
	// simulated network faults and the runtime's recovery (Config.Faults).
	Retries          int64
	FaultDrops       int64
	FaultCorruptions int64
	FaultGiveUps     int64
}

// homePlacer realizes the developer's default distribution: every class at
// its Home machine.
var homePlacer = rte.PlacerFunc(func(_ string, cl *com.Class, _ com.Machine) com.Machine {
	return cl.Home
})

// Run drives one scenario execution under the configured mode.
func Run(cfg Config) (*Result, error) {
	if cfg.App == nil || cfg.App.Main == nil {
		return nil, fmt.Errorf("dist: config has no runnable application")
	}
	net := cfg.Network
	if net == nil {
		net = netsim.TenBaseT
	}
	var rng *rand.Rand
	if cfg.Jitter {
		rng = rand.New(rand.NewSource(cfg.Seed + 0x5eed))
	}
	//lint:allow ctxthread Run is the root of a simulation; the clock it builds here is the one threaded everywhere else.
	clock := NewClock(net, rng)
	env := com.NewEnv(cfg.App)
	env.SetClock(clock)

	res := &Result{
		Clock:         clock,
		PerMachine:    make(map[com.Machine]int),
		AppPerMachine: make(map[com.Machine]int),
	}
	tally := func() {
		res.Instances = env.TotalInstances()
		for _, in := range env.Instances() {
			res.PerMachine[in.Machine]++
			if !in.Class.Infrastructure {
				res.AppInstances++
				res.AppPerMachine[in.Machine]++
			}
		}
	}

	if cfg.Mode == ModeBare {
		//lint:allow wallclock measuring real wall time of the undistributed run
		start := time.Now()
		if err := cfg.App.Main(env, cfg.Scenario, cfg.Seed); err != nil {
			return nil, fmt.Errorf("dist: scenario %s: %w", cfg.Scenario, err)
		}
		res.WallTime = time.Since(start)
		tally()
		return res, nil
	}

	if cfg.Classifier == nil {
		return nil, fmt.Errorf("dist: mode %d requires a classifier", cfg.Mode)
	}
	table := classify.NewTable(cfg.Classifier)

	var inf informer.Informer
	var log logger.Logger
	var plog *logger.Profiling
	var placer rte.Placer
	var comm rte.CommSink

	switch cfg.Mode {
	case ModeDefault:
		inf = informer.Distribution{}
		log = logger.Null{}
		placer = homePlacer
		comm = clock
	case ModeProfiling:
		inf = informer.Profiling{}
		plog = logger.NewProfiling(cfg.Classifier.Name(), cfg.InstanceDetail)
		log = plog
		// Profiling runs on the non-distributed application.
		placer = rte.FollowCreator
		comm = nil
	case ModeCoign:
		if len(cfg.Distribution) == 0 {
			return nil, fmt.Errorf("dist: ModeCoign requires a distribution map")
		}
		inf = informer.Distribution{}
		log = logger.Null{}
		fac, err := factory.New(cfg.Distribution, factory.FollowCreator)
		if err != nil {
			return nil, err
		}
		// Infrastructure classes never move, whatever the map says.
		placer = rte.PlacerFunc(func(classification string, cl *com.Class, creator com.Machine) com.Machine {
			if cl.Infrastructure {
				return cl.Home
			}
			return fac.Place(classification, cl, creator)
		})
		comm = clock
		defer func() {
			res.Relocations = fac.Relocations()
			res.Unknown = fac.Unknown()
		}()
	default:
		return nil, fmt.Errorf("dist: unknown mode %d", cfg.Mode)
	}

	if cfg.ExtraLogger != nil && (cfg.Mode == ModeDefault || cfg.Mode == ModeCoign) {
		log = cfg.ExtraLogger
	}

	var ev *logger.EventLogger
	if cfg.EventTrace {
		ev = logger.NewEventLogger(nil)
		log = logger.Multi{log, ev}
	}

	if cfg.Faults != nil && (cfg.Mode == ModeDefault || cfg.Mode == ModeCoign) {
		frng := rand.New(rand.NewSource(cfg.Seed ^ 0x0fa17))
		sink, _ := log.(logger.FaultSink)
		clock.SetFaults(*cfg.Faults, frng, sink)
	}

	var cache *caching.Cache
	if cfg.EnableCaching && (cfg.Mode == ModeDefault || cfg.Mode == ModeCoign) {
		cache = caching.New(0)
	}
	r, err := rte.Attach(env, rte.Options{
		Informer: inf,
		Logger:   log,
		Table:    table,
		Placer:   placer,
		Comm:     comm,
		Cache:    cache,
	})
	if err != nil {
		return nil, err
	}
	r.LoadBinary("coign.rt")
	r.LoadBinary(cfg.App.Name + ".exe")

	r.BeginRun(cfg.Scenario)
	//lint:allow wallclock measuring real wall time of the scenario run
	start := time.Now()
	if err := cfg.App.Main(env, cfg.Scenario, cfg.Seed); err != nil {
		return nil, fmt.Errorf("dist: scenario %s: %w", cfg.Scenario, err)
	}
	res.WallTime = time.Since(start)
	r.EndRun()

	tally()
	if cache != nil {
		res.CacheHits = cache.Hits()
	}
	res.Violations = r.Violations()
	res.TrappedCalls = r.Calls()
	res.Events = ev
	res.Retries = clock.Retries()
	res.FaultDrops = clock.FaultDrops()
	res.FaultCorruptions = clock.FaultCorruptions()
	res.FaultGiveUps = clock.FaultGiveUps()
	if plog != nil {
		res.Profile = plog.LastRun()
	}
	if res.FaultGiveUps > 0 {
		return nil, fmt.Errorf("dist: scenario %s: %d message(s) undeliverable after %d attempt(s): %w",
			cfg.Scenario, res.FaultGiveUps, cfg.Faults.withDefaults().MaxAttempts, ErrTimeout)
	}
	return res, nil
}
