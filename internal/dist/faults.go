package dist

import (
	"math/rand"
	"time"

	"repro/internal/fault"
	"repro/internal/logger"
)

// FaultPolicy configures message-level fault simulation for virtual-clock
// executions (Run, Replay): every cross-machine message rolls against the
// drop/corrupt rates, a faulted message costs its penalty (a timeout wait
// for a drop, the wasted transfer for a detected corruption), and delivery
// is retried with exponential backoff up to MaxAttempts — mirroring what
// the real transport does with a fault.Injector on the wire.
type FaultPolicy struct {
	// Rates supplies the Drop and Corrupt probabilities, applied per
	// message. Use fault.FromModel to derive them from a network model's
	// loss figure.
	Rates fault.Rates
	// Timeout is the virtual time a dropped message costs before the
	// sender retransmits (the per-attempt deadline of the real transport).
	Timeout time.Duration
	// MaxAttempts bounds delivery attempts per message; 1 disables
	// retries, so any fault becomes an undeliverable message and the run
	// fails fast with ErrTimeout.
	MaxAttempts int
	// Backoff is the virtual delay before the first retransmission; it
	// doubles per attempt.
	Backoff time.Duration
}

// withDefaults fills unset knobs with the simulation defaults.
func (p FaultPolicy) withDefaults() FaultPolicy {
	if p.Timeout <= 0 {
		p.Timeout = 250 * time.Millisecond
	}
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 4
	}
	if p.Backoff <= 0 {
		p.Backoff = 10 * time.Millisecond
	}
	return p
}

// faultSim charges simulated faults against a virtual clock or replay.
// All randomness comes from its seeded generator, so a chaos run's fault
// schedule — and therefore its virtual times — reproduce exactly.
type faultSim struct {
	pol  FaultPolicy
	rng  *rand.Rand
	sink logger.FaultSink

	retries  int64
	drops    int64
	corrupts int64
	giveups  int64
}

func newFaultSim(pol FaultPolicy, rng *rand.Rand, sink logger.FaultSink) *faultSim {
	return &faultSim{pol: pol.withDefaults(), rng: rng, sink: sink}
}

func (f *faultSim) emit(kind string, attempt, bytes int, penalty time.Duration) {
	if f.sink != nil {
		f.sink.Fault(logger.FaultRecord{Kind: kind, Attempt: attempt, Bytes: bytes, Penalty: penalty})
	}
}

func (f *faultSim) backoff(attempt int) time.Duration {
	d := f.pol.Backoff
	for i := 1; i < attempt; i++ {
		d *= 2
	}
	return d
}

// deliver simulates delivering one message: it returns the total virtual
// time spent (including faulted attempts and backoff) and the number of
// transmissions. sample yields one observation of the message's wire
// time. A message whose attempts are exhausted counts as a giveup; the
// caller decides whether that fails the run.
func (f *faultSim) deliver(sample func() time.Duration, bytes int) (time.Duration, int64) {
	var total time.Duration
	var xmits int64
	for attempt := 1; ; attempt++ {
		roll := f.rng.Float64()
		if roll < f.pol.Rates.Drop {
			// Lost in flight: the sender waits out its deadline.
			xmits++
			f.drops++
			total += f.pol.Timeout
			f.emit("drop", attempt, bytes, f.pol.Timeout)
			if attempt >= f.pol.MaxAttempts {
				f.giveups++
				f.emit("giveup", attempt, bytes, 0)
				return total, xmits
			}
			f.retries++
			total += f.backoff(attempt)
			continue
		}
		t := sample()
		total += t
		xmits++
		if roll < f.pol.Rates.Drop+f.pol.Rates.Corrupt {
			// Delivered but failed its checksum: the transfer was wasted.
			f.corrupts++
			f.emit("corrupt", attempt, bytes, t)
			if attempt >= f.pol.MaxAttempts {
				f.giveups++
				f.emit("giveup", attempt, bytes, 0)
				return total, xmits
			}
			f.retries++
			total += f.backoff(attempt)
			continue
		}
		return total, xmits
	}
}
