package dist

import (
	"math/rand"
	"net"
	"time"
)

// CallPolicy governs deadlines and retries for transport calls. The
// server's at-most-once dedup (request sequence numbers) makes retries
// safe: a retried call whose first attempt actually executed is answered
// from the server's response cache, never re-executed.
type CallPolicy struct {
	// Timeout is the per-attempt deadline covering one full round trip
	// (connect if needed, write request, read response). Zero means no
	// deadline — a stalled peer blocks forever, so runs that inject faults
	// must set one.
	Timeout time.Duration
	// MaxAttempts is the total number of attempts; 1 disables retries.
	MaxAttempts int
	// Backoff is the delay before the first retry; it doubles per retry.
	Backoff time.Duration
	// BackoffMax caps the exponential backoff.
	BackoffMax time.Duration
	// JitterFrac randomizes each backoff by ±JitterFrac of its value,
	// de-synchronizing retry storms. Drawn from the connection's seeded
	// generator, so a seeded dial retries reproducibly.
	JitterFrac float64
}

// DefaultCallPolicy returns the transport's default resilience policy:
// bounded per-call deadlines with a few jittered-backoff retries.
func DefaultCallPolicy() CallPolicy {
	return CallPolicy{
		Timeout:     2 * time.Second,
		MaxAttempts: 4,
		Backoff:     5 * time.Millisecond,
		BackoffMax:  250 * time.Millisecond,
		JitterFrac:  0.2,
	}
}

// delay returns the backoff before retry number `retry` (1-based).
func (p CallPolicy) delay(retry int, rng *rand.Rand) time.Duration {
	d := p.Backoff
	if d <= 0 {
		return 0
	}
	for i := 1; i < retry; i++ {
		d *= 2
		if p.BackoffMax > 0 && d >= p.BackoffMax {
			d = p.BackoffMax
			break
		}
	}
	if p.BackoffMax > 0 && d > p.BackoffMax {
		d = p.BackoffMax
	}
	if p.JitterFrac > 0 && rng != nil {
		f := 1 + p.JitterFrac*(2*rng.Float64()-1)
		d = time.Duration(float64(d) * f)
	}
	return d
}

// CallOption adjusts the policy of a single call.
type CallOption func(*CallPolicy)

// WithTimeout sets the per-attempt deadline for this call.
func WithTimeout(d time.Duration) CallOption {
	return func(p *CallPolicy) { p.Timeout = d }
}

// WithMaxAttempts sets the total attempt budget for this call.
func WithMaxAttempts(n int) CallOption {
	return func(p *CallPolicy) { p.MaxAttempts = n }
}

// WithBackoff sets the initial and maximum retry backoff for this call.
func WithBackoff(initial, max time.Duration) CallOption {
	return func(p *CallPolicy) { p.Backoff, p.BackoffMax = initial, max }
}

// WithoutRetries disables retries for this call: one attempt, fail fast.
func WithoutRetries() CallOption {
	return func(p *CallPolicy) { p.MaxAttempts = 1 }
}

// DialOption configures a client connection.
type DialOption func(*Conn)

// WithPolicy sets the connection's default call policy.
func WithPolicy(p CallPolicy) DialOption {
	return func(c *Conn) { c.policy = p }
}

// WithDialSeed seeds the connection's client identity and backoff jitter,
// making a chaos run's retry schedule reproducible.
func WithDialSeed(seed int64) DialOption {
	return func(c *Conn) {
		c.clientID = splitmixID(uint64(seed))
		c.rng = rand.New(rand.NewSource(seed))
	}
}

// WithDialer replaces the TCP dialer — the hook for client-side fault
// injection (wrap the returned conn with a fault.Injector) or alternate
// transports. The dialer is also used for automatic reconnection.
func WithDialer(dial func(addr string) (net.Conn, error)) DialOption {
	return func(c *Conn) { c.dialFn = dial }
}
