// Package dist executes applications under the synthetic two-machine (or
// three-machine) environment: a virtual clock accrues compute time on each
// machine and communication time for every message that crosses machines,
// a run harness drives an application scenario under any instrumentation
// mode, an event-trace replayer re-simulates executions from event logs,
// and a loopback-TCP transport demonstrates real proxy/stub marshaling.
package dist

import (
	"math/rand"
	"sort"
	"time"

	"repro/internal/com"
	"repro/internal/logger"
	"repro/internal/netsim"
)

// Clock is the virtual clock of a (possibly distributed) execution. The
// execution model is synchronous: components compute one at a time and
// every cross-machine call blocks for a full round trip, so elapsed time
// is the sum of compute time on all machines plus communication time —
// matching the paper's single-user client/server scenarios.
type Clock struct {
	net     *netsim.Model
	rng     *rand.Rand
	faults  *faultSim
	compute map[com.Machine]time.Duration
	comm    time.Duration
	msgs    int64
	bytes   int64
}

// NewClock returns a clock over the given network model. When rng is
// non-nil, message times are sampled with the model's jitter ("measured"
// executions); when nil, mean times are used (deterministic predictions).
func NewClock(net *netsim.Model, rng *rand.Rand) *Clock {
	return &Clock{
		net:     net,
		rng:     rng,
		compute: make(map[com.Machine]time.Duration),
	}
}

// Compute implements com.ComputeClock.
func (c *Clock) Compute(m com.Machine, d time.Duration) {
	c.compute[m] += d
}

// SetFaults enables message-level fault simulation: every subsequent
// cross-machine message may be dropped or corrupted per the policy, with
// retransmissions charged to communication time. rng must be seeded by
// the caller so fault schedules reproduce; sink (optional) receives one
// record per injected fault.
func (c *Clock) SetFaults(pol FaultPolicy, rng *rand.Rand, sink logger.FaultSink) {
	c.faults = newFaultSim(pol, rng, sink)
}

// RemoteCall implements rte.CommSink: a synchronous cross-machine call
// sends a request message and receives a reply message. Under a fault
// policy each direction may take several attempts; retransmissions count
// as extra messages, but payload bytes are charged once.
func (c *Clock) RemoteCall(from, to com.Machine, reqBytes, respBytes int) {
	if c.faults == nil {
		c.comm += c.net.SampleMessageTime(reqBytes, c.rng)
		c.comm += c.net.SampleMessageTime(respBytes, c.rng)
		c.msgs += 2
		c.bytes += int64(reqBytes + respBytes)
		return
	}
	for _, sz := range [2]int{reqBytes, respBytes} {
		sz := sz
		t, xmits := c.faults.deliver(func() time.Duration {
			return c.net.SampleMessageTime(sz, c.rng)
		}, sz)
		c.comm += t
		c.msgs += xmits
	}
	c.bytes += int64(reqBytes + respBytes)
}

// Retries returns how many simulated retransmissions faults forced.
func (c *Clock) Retries() int64 {
	if c.faults == nil {
		return 0
	}
	return c.faults.retries
}

// FaultDrops returns how many simulated messages were dropped.
func (c *Clock) FaultDrops() int64 {
	if c.faults == nil {
		return 0
	}
	return c.faults.drops
}

// FaultCorruptions returns how many simulated messages arrived corrupt.
func (c *Clock) FaultCorruptions() int64 {
	if c.faults == nil {
		return 0
	}
	return c.faults.corrupts
}

// FaultGiveUps returns how many messages exhausted their attempt budget.
func (c *Clock) FaultGiveUps() int64 {
	if c.faults == nil {
		return 0
	}
	return c.faults.giveups
}

// CommTime returns accumulated communication time.
func (c *Clock) CommTime() time.Duration { return c.comm }

// ComputeTime returns total compute time across all machines.
func (c *Clock) ComputeTime() time.Duration {
	var t time.Duration
	for _, d := range c.compute {
		t += d
	}
	return t
}

// ComputeOn returns compute time accrued on one machine.
func (c *Clock) ComputeOn(m com.Machine) time.Duration { return c.compute[m] }

// Machines returns the machines that accrued compute time, sorted.
func (c *Clock) Machines() []com.Machine {
	out := make([]com.Machine, 0, len(c.compute))
	for m := range c.compute {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Elapsed returns total virtual execution time.
func (c *Clock) Elapsed() time.Duration { return c.ComputeTime() + c.comm }

// Messages returns the number of cross-machine messages.
func (c *Clock) Messages() int64 { return c.msgs }

// Bytes returns the number of cross-machine payload bytes.
func (c *Clock) Bytes() int64 { return c.bytes }

// Network returns the clock's network model.
func (c *Clock) Network() *netsim.Model { return c.net }
