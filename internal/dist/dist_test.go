package dist

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/com"
	"repro/internal/idl"
	"repro/internal/logger"
	"repro/internal/netsim"
)

// pipelineApp models a tiny document pipeline: main creates a Reader
// (which pulls blocks from server-pinned Storage) and a View that the
// Reader feeds. Scenario "small" reads 2 blocks, "big" reads 20.
func pipelineApp() *com.App {
	ifaces := idl.NewRegistry()
	ifaces.Register(&idl.InterfaceDesc{
		IID: "IStorage", Remotable: true,
		Methods: []idl.MethodDesc{{
			Name:   "ReadBlock",
			Params: []idl.ParamDesc{{Name: "n", Dir: idl.In, Type: idl.TInt32}},
			Result: idl.TBytes,
		}},
	})
	ifaces.Register(&idl.InterfaceDesc{
		IID: "IReader", Remotable: true,
		Methods: []idl.MethodDesc{{
			Name:   "Load",
			Params: []idl.ParamDesc{{Name: "blocks", Dir: idl.In, Type: idl.TInt32}},
			Result: idl.TInt32,
		}},
	})
	ifaces.Register(&idl.InterfaceDesc{
		IID: "IView", Remotable: true,
		Methods: []idl.MethodDesc{{
			Name:   "Show",
			Params: []idl.ParamDesc{{Name: "summary", Dir: idl.In, Type: idl.TString}},
			Result: idl.TVoid,
		}},
	})

	classes := com.NewClassRegistry()
	classes.Register(&com.Class{
		ID: "CLSID_Storage", Name: "Storage", Interfaces: []string{"IStorage"},
		APIs: []string{com.APIFileRead}, Home: com.Server, Infrastructure: true,
		New: func() com.Object {
			return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
				c.Compute(100 * time.Microsecond)
				return []idl.Value{idl.ByteBuf(make([]byte, 4096))}, nil
			})
		},
	})
	classes.Register(&com.Class{
		ID: "CLSID_Reader", Name: "Reader", Interfaces: []string{"IReader"},
		New: func() com.Object {
			var storage *com.Interface
			return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
				if storage == nil {
					st, err := c.Create("CLSID_Storage")
					if err != nil {
						return nil, err
					}
					storage, err = c.Env.Query(st, "IStorage")
					if err != nil {
						return nil, err
					}
				}
				n := int(c.Args[0].AsInt())
				total := 0
				for i := 0; i < n; i++ {
					out, err := c.Invoke(storage, "ReadBlock", idl.Int32(int32(i)))
					if err != nil {
						return nil, err
					}
					total += len(out[0].Bytes)
					c.Compute(50 * time.Microsecond)
				}
				return []idl.Value{idl.Int32(int32(total))}, nil
			})
		},
	})
	classes.Register(&com.Class{
		ID: "CLSID_View", Name: "View", Interfaces: []string{"IView"},
		APIs: []string{com.APIGdiPaint},
		New: func() com.Object {
			return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
				c.Compute(20 * time.Microsecond)
				return []idl.Value{}, nil
			})
		},
	})

	app := &com.App{Name: "pipeline", Classes: classes, Interfaces: ifaces}
	app.Main = func(env *com.Env, scenario string, seed int64) error {
		blocks := 2
		if scenario == "big" {
			blocks = 20
		}
		reader, err := env.CreateInstance(nil, "CLSID_Reader")
		if err != nil {
			return err
		}
		view, err := env.CreateInstance(nil, "CLSID_View")
		if err != nil {
			return err
		}
		ritf, err := env.Query(reader, "IReader")
		if err != nil {
			return err
		}
		if _, err := env.Call(nil, ritf, "Load", idl.Int32(int32(blocks))); err != nil {
			return err
		}
		vitf, err := env.Query(view, "IView")
		if err != nil {
			return err
		}
		_, err = env.Call(nil, vitf, "Show", idl.String("done"))
		return err
	}
	return app
}

func TestClockAccounting(t *testing.T) {
	t.Parallel()
	c := NewClock(netsim.TenBaseT, nil)
	c.Compute(com.Client, time.Millisecond)
	c.Compute(com.Server, 2*time.Millisecond)
	c.RemoteCall(com.Client, com.Server, 100, 200)
	if c.ComputeTime() != 3*time.Millisecond {
		t.Errorf("compute = %v", c.ComputeTime())
	}
	if c.ComputeOn(com.Server) != 2*time.Millisecond {
		t.Errorf("server compute = %v", c.ComputeOn(com.Server))
	}
	want := netsim.TenBaseT.RoundTripTime(100, 200)
	if c.CommTime() != want {
		t.Errorf("comm = %v, want %v", c.CommTime(), want)
	}
	if c.Elapsed() != c.ComputeTime()+c.CommTime() {
		t.Error("elapsed not additive")
	}
	if c.Messages() != 2 || c.Bytes() != 300 {
		t.Errorf("messages=%d bytes=%d", c.Messages(), c.Bytes())
	}
	ms := c.Machines()
	if len(ms) != 2 || ms[0] != com.Client || ms[1] != com.Server {
		t.Errorf("machines = %v", ms)
	}
	if c.Network() != netsim.TenBaseT {
		t.Error("network accessor broken")
	}
}

func TestClockJitterDeterministicWithSeed(t *testing.T) {
	t.Parallel()
	a := NewClock(netsim.TenBaseT, rand.New(rand.NewSource(1)))
	b := NewClock(netsim.TenBaseT, rand.New(rand.NewSource(1)))
	for i := 0; i < 10; i++ {
		a.RemoteCall(com.Client, com.Server, 1000, 1000)
		b.RemoteCall(com.Client, com.Server, 1000, 1000)
	}
	if a.CommTime() != b.CommTime() {
		t.Error("seeded jitter not reproducible")
	}
	c := NewClock(netsim.TenBaseT, rand.New(rand.NewSource(2)))
	for i := 0; i < 10; i++ {
		c.RemoteCall(com.Client, com.Server, 1000, 1000)
	}
	if a.CommTime() == c.CommTime() {
		t.Error("different seeds produced identical jitter")
	}
}

func TestRunBareMode(t *testing.T) {
	t.Parallel()
	res, err := Run(Config{App: pipelineApp(), Scenario: "small", Mode: ModeBare})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances != 3 {
		t.Errorf("instances = %d", res.Instances)
	}
	if res.TrappedCalls != 0 {
		t.Error("bare mode trapped calls")
	}
	if res.Clock.CommTime() != 0 {
		t.Error("bare mode accrued communication")
	}
}

func TestRunDefaultModeChargesStorageTraffic(t *testing.T) {
	t.Parallel()
	res, err := Run(Config{
		App: pipelineApp(), Scenario: "small", Mode: ModeDefault,
		Classifier: classify.New(classify.IFCB, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Storage is pinned to the server; the reader runs on the client, so
	// every block read crosses the network.
	if res.Clock.CommTime() == 0 {
		t.Fatal("default distribution accrued no communication")
	}
	if res.PerMachine[com.Server] != 1 {
		t.Errorf("server instances = %d", res.PerMachine[com.Server])
	}
	if res.Violations != 0 {
		t.Errorf("violations = %d", res.Violations)
	}

	// A bigger document means proportionally more communication.
	big, err := Run(Config{
		App: pipelineApp(), Scenario: "big", Mode: ModeDefault,
		Classifier: classify.New(classify.IFCB, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if big.Clock.CommTime() <= res.Clock.CommTime()*5 {
		t.Errorf("big scenario comm %v not ≫ small %v", big.Clock.CommTime(), res.Clock.CommTime())
	}
}

func TestRunProfilingMode(t *testing.T) {
	t.Parallel()
	res, err := Run(Config{
		App: pipelineApp(), Scenario: "small", Mode: ModeProfiling,
		Classifier: classify.New(classify.IFCB, 0), InstanceDetail: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile == nil {
		t.Fatal("no profile collected")
	}
	if res.Profile.TotalInstances() != 3 {
		t.Errorf("profile instances = %d", res.Profile.TotalInstances())
	}
	// 2 block reads + Load + Show = 4 calls.
	if res.Profile.TotalCalls() != 4 {
		t.Errorf("profile calls = %d", res.Profile.TotalCalls())
	}
	// Profiling runs non-distributed: no communication accrued.
	if res.Clock.CommTime() != 0 {
		t.Error("profiling run accrued communication")
	}
	if len(res.Profile.InstEdges) == 0 {
		t.Error("instance detail missing")
	}
}

func TestRunCoignModeMovesReaderToServer(t *testing.T) {
	t.Parallel()
	// Profile first to learn classifications.
	prof, err := Run(Config{
		App: pipelineApp(), Scenario: "big", Mode: ModeProfiling,
		Classifier: classify.New(classify.IFCB, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Build a hand-made distribution: reader to the server.
	distMap := make(map[string]com.Machine)
	for id, ci := range prof.Profile.Classifications {
		switch ci.Class {
		case "Reader", "Storage":
			distMap[id] = com.Server
		default:
			distMap[id] = com.Client
		}
	}
	coign, err := Run(Config{
		App: pipelineApp(), Scenario: "big", Mode: ModeCoign,
		Classifier:   classify.New(classify.IFCB, 0),
		Distribution: distMap,
	})
	if err != nil {
		t.Fatal(err)
	}
	def, err := Run(Config{
		App: pipelineApp(), Scenario: "big", Mode: ModeDefault,
		Classifier: classify.New(classify.IFCB, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Moving the reader server-side removes the bulk block traffic.
	if coign.Clock.CommTime() >= def.Clock.CommTime() {
		t.Errorf("coign %v not better than default %v", coign.Clock.CommTime(), def.Clock.CommTime())
	}
	if coign.PerMachine[com.Server] != 2 {
		t.Errorf("server instances = %d", coign.PerMachine[com.Server])
	}
	if coign.Relocations == 0 {
		t.Error("no relocations recorded")
	}
	if coign.Unknown != 0 {
		t.Errorf("unknown classifications = %d", coign.Unknown)
	}
	if coign.Violations != 0 {
		t.Errorf("violations = %d", coign.Violations)
	}
}

func TestRunCoignUnknownClassificationFallback(t *testing.T) {
	t.Parallel()
	res, err := Run(Config{
		App: pipelineApp(), Scenario: "small", Mode: ModeCoign,
		Classifier:   classify.New(classify.IFCB, 0),
		Distribution: map[string]com.Machine{"bogus": com.Server},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Reader and View are unknown to the factory; Storage is
	// infrastructure and never consults it.
	if res.Unknown != 2 {
		t.Errorf("unknown = %d, want 2", res.Unknown)
	}
}

func TestRunErrors(t *testing.T) {
	t.Parallel()
	if _, err := Run(Config{}); err == nil {
		t.Error("nil app accepted")
	}
	if _, err := Run(Config{App: pipelineApp(), Mode: ModeProfiling}); err == nil {
		t.Error("missing classifier accepted")
	}
	if _, err := Run(Config{App: pipelineApp(), Mode: ModeCoign,
		Classifier: classify.New(classify.ST, 0)}); err == nil {
		t.Error("missing distribution accepted")
	}
	if _, err := Run(Config{App: pipelineApp(), Mode: Mode(99),
		Classifier: classify.New(classify.ST, 0)}); err == nil {
		t.Error("bad mode accepted")
	}
	bad := pipelineApp()
	bad.Main = func(env *com.Env, scenario string, seed int64) error {
		_, err := env.CreateInstance(nil, "CLSID_Missing")
		return err
	}
	if _, err := Run(Config{App: bad, Scenario: "x", Mode: ModeBare}); err == nil {
		t.Error("failing scenario not propagated")
	}
}

func TestEventTraceAndReplay(t *testing.T) {
	t.Parallel()
	res, err := Run(Config{
		App: pipelineApp(), Scenario: "big", Mode: ModeProfiling,
		Classifier: classify.New(classify.IFCB, 0),
		EventTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Events == nil || len(res.Events.Events) == 0 {
		t.Fatal("no event trace")
	}
	// Replay under all-on-client: zero communication.
	all := map[string]com.Machine{}
	for id := range res.Profile.Classifications {
		all[id] = com.Client
	}
	rr, err := Replay(res.Events.Events, all, netsim.TenBaseT)
	if err != nil {
		t.Fatal(err)
	}
	if rr.CommTime != 0 || rr.Crossings != 0 {
		t.Errorf("all-client replay: %+v", rr)
	}
	// Replay with storage remote: communication appears.
	for id, ci := range res.Profile.Classifications {
		if ci.Class == "Storage" {
			all[id] = com.Server
		}
	}
	rr2, err := Replay(res.Events.Events, all, netsim.TenBaseT)
	if err != nil {
		t.Fatal(err)
	}
	if rr2.CommTime == 0 || rr2.Crossings == 0 {
		t.Errorf("storage-remote replay: %+v", rr2)
	}
	// Replay agrees with a live default-mode run (both use mean times and
	// identical message sizes... live run uses distribution informer sizes
	// measured by the transport, replay uses profiling informer sizes).
	def, err := Run(Config{
		App: pipelineApp(), Scenario: "big", Mode: ModeDefault,
		Classifier: classify.New(classify.IFCB, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(rr2.CommTime) / float64(def.Clock.CommTime())
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("replay %v vs live %v (ratio %.3f)", rr2.CommTime, def.Clock.CommTime(), ratio)
	}
}

func TestTransportRemoteCall(t *testing.T) {
	t.Parallel()
	app := pipelineApp()
	env := com.NewEnv(app)
	storage, err := env.CreateInstance(nil, "CLSID_Storage")
	if err != nil {
		t.Fatal(err)
	}
	stub := NewStub(env)
	srv, err := Serve("127.0.0.1:0", stub.Handle)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	proxy := NewProxy(conn, app.Interfaces, "IStorage", storage.ID)
	rets, err := proxy.Invoke("ReadBlock", idl.Int32(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(rets) != 1 || len(rets[0].Bytes) != 4096 {
		t.Fatalf("remote ReadBlock returned %v", rets)
	}
	// Errors propagate.
	if _, err := proxy.Invoke("NoSuchMethod"); err == nil {
		t.Error("unknown method succeeded remotely")
	}
	bogus := NewProxy(conn, app.Interfaces, "IStorage", 9999)
	if _, err := bogus.Invoke("ReadBlock", idl.Int32(0)); err == nil {
		t.Error("call to unknown instance succeeded")
	}
	// Ping round trips.
	d, err := conn.Ping(1024)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Errorf("ping duration = %v", d)
	}
}

func TestReplayUnknownInstance(t *testing.T) {
	t.Parallel()
	res, err := Run(Config{
		App: pipelineApp(), Scenario: "small", Mode: ModeProfiling,
		Classifier: classify.New(classify.IFCB, 0),
		EventTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the trace: drop instantiation events.
	trimmed := res.Events.Events[:0:0]
	for _, ev := range res.Events.Events {
		if ev.Kind != logger.EvInstantiation {
			trimmed = append(trimmed, ev)
		}
	}
	if _, err := Replay(trimmed, map[string]com.Machine{}, nil); err == nil {
		t.Error("trace with missing instantiations replayed")
	}
}
