package dist

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/com"
	"repro/internal/logger"
	"repro/internal/netsim"
)

// Replay re-simulates an execution from an event-logger trace under a
// hypothetical distribution and network, without re-running the
// application (paper §3.3: "a colleague has used logs from the event
// logger to drive detailed application simulations"). It returns the
// communication time the traced execution would have spent if instances
// had been placed per the assignment.
type ReplayResult struct {
	CommTime   time.Duration
	Messages   int64
	Bytes      int64
	Crossings  int64
	Violations int64 // non-remotable calls that would have crossed machines
	// Retries, Drops, Corruptions, and GiveUps summarize simulated faults
	// when the replay ran under a FaultPolicy.
	Retries     int64
	Drops       int64
	Corruptions int64
	GiveUps     int64
}

// Replay walks the trace, placing each instantiated instance per
// classification (falling back to the creator's machine), and charges
// every call whose endpoints land on different machines.
func Replay(events []logger.Event, dist map[string]com.Machine, net *netsim.Model) (*ReplayResult, error) {
	return ReplayWithFaults(events, dist, net, nil, 0)
}

// ReplayWithFaults replays a trace over a degraded link: each crossing
// message is subjected to the fault policy's drop/corruption rates (seeded
// by seed, so the what-if is reproducible) and retransmission costs are
// charged — answering "what would this execution have cost on a lossy
// network" without re-running the application.
func ReplayWithFaults(events []logger.Event, dist map[string]com.Machine, net *netsim.Model, fp *FaultPolicy, seed int64) (*ReplayResult, error) {
	if net == nil {
		net = netsim.TenBaseT
	}
	var sim *faultSim
	if fp != nil {
		sim = newFaultSim(*fp, rand.New(rand.NewSource(seed^0x0fa17)), nil)
	}
	place := make(map[uint64]com.Machine) // instance id -> machine; 0 = main on client
	place[0] = com.Client
	res := &ReplayResult{}
	for _, ev := range events {
		switch ev.Kind {
		case logger.EvInstantiation:
			m, ok := dist[ev.Inst.Classification]
			if !ok {
				// Unknown classification: follow the creator. Creator
				// machine is resolved through the creating instance if the
				// trace recorded it, else client.
				m = com.Client
			}
			place[ev.Inst.ID] = m
		case logger.EvCall:
			src, ok := place[ev.Call.SrcInst]
			if !ok {
				return nil, fmt.Errorf("dist: trace calls unknown instance %d", ev.Call.SrcInst)
			}
			dst, ok := place[ev.Call.DstInst]
			if !ok {
				return nil, fmt.Errorf("dist: trace calls unknown instance %d", ev.Call.DstInst)
			}
			if src == dst {
				continue
			}
			res.Crossings++
			if ev.Call.NonRemotable {
				res.Violations++
			}
			if sim == nil {
				res.CommTime += net.MessageTime(ev.Call.InBytes) + net.MessageTime(ev.Call.OutBytes)
				res.Messages += 2
			} else {
				for _, sz := range [2]int{ev.Call.InBytes, ev.Call.OutBytes} {
					sz := sz
					t, xmits := sim.deliver(func() time.Duration { return net.MessageTime(sz) }, sz)
					res.CommTime += t
					res.Messages += xmits
				}
			}
			res.Bytes += int64(ev.Call.InBytes + ev.Call.OutBytes)
		}
	}
	if sim != nil {
		res.Retries = sim.retries
		res.Drops = sim.drops
		res.Corruptions = sim.corrupts
		res.GiveUps = sim.giveups
	}
	return res, nil
}
