package dist

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/com"
	"repro/internal/fault"
	"repro/internal/idl"
	"repro/internal/logger"
)

// chaosPipelineRun drives the pipeline's storage component through the real
// transport with a seeded fault injector on the server's listener, and
// returns the injected-fault log plus the client's retry counters. A single
// sequential caller keeps the injector's operation sequence — and therefore
// its fault schedule — deterministic.
func chaosPipelineRun(t *testing.T, seed int64, calls int) ([]fault.Event, int64, int64) {
	t.Helper()
	app := pipelineApp()
	env := com.NewEnv(app)
	storage, err := env.CreateInstance(nil, "CLSID_Storage")
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New(fault.Config{
		Seed: seed,
		Send: fault.Rates{Drop: 0.05, Corrupt: 0.05},
		Recv: fault.Rates{Drop: 0.05, Corrupt: 0.05},
	})
	srv, err := Serve("127.0.0.1:0", NewStub(env).Handle, WithListenerWrapper(inj.WrapListener))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := Dial(srv.Addr(),
		WithDialSeed(seed),
		WithPolicy(CallPolicy{
			Timeout:     200 * time.Millisecond,
			MaxAttempts: 8,
			Backoff:     time.Millisecond,
			BackoffMax:  10 * time.Millisecond,
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	proxy := NewProxy(conn, app.Interfaces, "IStorage", storage.ID)
	for i := 0; i < calls; i++ {
		rets, err := proxy.Invoke("ReadBlock", idl.Int32(int32(i)))
		if err != nil {
			t.Fatalf("call %d under faults: %v", i, err)
		}
		if len(rets) != 1 || len(rets[0].Bytes) != 4096 {
			t.Fatalf("call %d returned wrong payload: %v", i, rets)
		}
	}
	retries, reconnects := conn.Stats()
	return inj.Events(), retries, reconnects
}

func TestChaosTransportPipelineUnderFaults(t *testing.T) {
	t.Parallel()
	events, retries, reconnects := chaosPipelineRun(t, 1, 40)
	if len(events) == 0 {
		t.Fatal("5% fault rates injected nothing over 40 calls; pick another seed")
	}
	if retries == 0 {
		t.Fatal("faults were injected but the client never retried")
	}
	t.Logf("completed 40 calls under %d injected faults (%d retries, %d reconnects)",
		len(events), retries, reconnects)
}

func TestChaosTransportReproducibleFromSeed(t *testing.T) {
	t.Parallel()
	a, retriesA, reconnectsA := chaosPipelineRun(t, 2, 25)
	b, retriesB, reconnectsB := chaosPipelineRun(t, 2, 25)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different fault schedules:\n%v\n%v", a, b)
	}
	if retriesA != retriesB || reconnectsA != reconnectsB {
		t.Fatalf("same seed, different recovery: (%d,%d) vs (%d,%d)",
			retriesA, reconnectsA, retriesB, reconnectsB)
	}
	c, _, _ := chaosPipelineRun(t, 3, 25)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestChaosTransportFailsFastWithoutRetries(t *testing.T) {
	t.Parallel()
	app := pipelineApp()
	env := com.NewEnv(app)
	storage, err := env.CreateInstance(nil, "CLSID_Storage")
	if err != nil {
		t.Fatal(err)
	}
	// Every server read blackholes: no request ever gets an answer.
	inj := fault.New(fault.Config{Seed: 9, Recv: fault.Rates{Drop: 1}})
	srv, err := Serve("127.0.0.1:0", NewStub(env).Handle, WithListenerWrapper(inj.WrapListener))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	start := time.Now()
	_, err = conn.Call("IStorage", storage.ID, "ReadBlock", nil,
		WithTimeout(100*time.Millisecond), WithoutRetries())
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("fail-fast call took %v", d)
	}
	var te *TransportError
	if !errors.As(err, &te) || te.Attempts != 1 {
		t.Fatalf("want a single attempt, got %+v", te)
	}
}

// simChaosRun executes the pipeline scenario on the virtual clock under a
// fault policy and returns the result plus the fault trail from the trace.
func simChaosRun(t *testing.T, seed int64, pol *FaultPolicy) (*Result, []logger.FaultRecord) {
	t.Helper()
	res, err := Run(Config{
		App: pipelineApp(), Scenario: "big", Seed: seed, Mode: ModeDefault,
		Classifier: classify.New(classify.IFCB, 0),
		EventTrace: true,
		Faults:     pol,
	})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	var trail []logger.FaultRecord
	for _, ev := range res.Events.Events {
		if ev.Kind == logger.EvFault {
			trail = append(trail, ev.Fault)
		}
	}
	return res, trail
}

func TestChaosSimPipelineCompletesWithRetries(t *testing.T) {
	t.Parallel()
	pol := &FaultPolicy{Rates: fault.Rates{Drop: 0.05, Corrupt: 0.05}}
	res, trail := simChaosRun(t, 7, pol)
	if res.FaultDrops+res.FaultCorruptions == 0 {
		t.Fatal("5% rates injected nothing on the big scenario; pick another seed")
	}
	if res.Retries != res.FaultDrops+res.FaultCorruptions {
		t.Fatalf("every fault should force a retry when the budget allows: %d faults, %d retries",
			res.FaultDrops+res.FaultCorruptions, res.Retries)
	}
	if res.FaultGiveUps != 0 {
		t.Fatalf("run completed but reports %d giveups", res.FaultGiveUps)
	}
	if int64(len(trail)) != res.FaultDrops+res.FaultCorruptions {
		t.Fatalf("trace has %d fault events, counters say %d", len(trail), res.FaultDrops+res.FaultCorruptions)
	}
	// Faults cost time: the same run without faults is strictly faster.
	clean, err := Run(Config{
		App: pipelineApp(), Scenario: "big", Seed: 7, Mode: ModeDefault,
		Classifier: classify.New(classify.IFCB, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clock.CommTime() <= clean.Clock.CommTime() {
		t.Fatalf("faulted comm time %v not above clean %v", res.Clock.CommTime(), clean.Clock.CommTime())
	}
}

func TestChaosSimReproducibleFromSeed(t *testing.T) {
	t.Parallel()
	pol := &FaultPolicy{Rates: fault.Rates{Drop: 0.05, Corrupt: 0.05}}
	a, trailA := simChaosRun(t, 7, pol)
	b, trailB := simChaosRun(t, 7, pol)
	if a.Clock.CommTime() != b.Clock.CommTime() || a.Clock.Messages() != b.Clock.Messages() {
		t.Fatalf("same seed, different virtual outcome: %v/%d vs %v/%d",
			a.Clock.CommTime(), a.Clock.Messages(), b.Clock.CommTime(), b.Clock.Messages())
	}
	if !reflect.DeepEqual(trailA, trailB) {
		t.Fatalf("same seed, different fault trails:\n%v\n%v", trailA, trailB)
	}
	c, _ := simChaosRun(t, 8, pol)
	if a.Clock.CommTime() == c.Clock.CommTime() && a.Retries == c.Retries {
		t.Fatal("different seeds produced identical chaos outcomes")
	}
}

func TestChaosSimFailsFastWhenRetriesDisabled(t *testing.T) {
	t.Parallel()
	_, err := Run(Config{
		App: pipelineApp(), Scenario: "big", Seed: 7, Mode: ModeDefault,
		Classifier: classify.New(classify.IFCB, 0),
		Faults:     &FaultPolicy{Rates: fault.Rates{Drop: 0.5}, MaxAttempts: 1},
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestReplayWithFaultsChargesRetransmissions(t *testing.T) {
	t.Parallel()
	res, err := Run(Config{
		App: pipelineApp(), Scenario: "big", Mode: ModeProfiling,
		Classifier: classify.New(classify.IFCB, 0),
		EventTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	dist := map[string]com.Machine{}
	for _, ev := range res.Events.Events {
		if ev.Kind == logger.EvInstantiation && ev.Inst.Classification != "" {
			dist[ev.Inst.Classification] = com.Client
		}
	}
	// Pin storage server-side so calls cross.
	for _, ev := range res.Events.Events {
		if ev.Kind == logger.EvInstantiation && ev.Inst.Class == "Storage" {
			dist[ev.Inst.Classification] = com.Server
		}
	}
	clean, err := Replay(res.Events.Events, dist, nil)
	if err != nil {
		t.Fatal(err)
	}
	pol := &FaultPolicy{Rates: fault.Rates{Drop: 0.1, Corrupt: 0.1}}
	faulted, err := ReplayWithFaults(res.Events.Events, dist, nil, pol, 11)
	if err != nil {
		t.Fatal(err)
	}
	if faulted.Drops+faulted.Corruptions == 0 {
		t.Fatal("10% rates injected nothing into the replay; pick another seed")
	}
	if faulted.CommTime <= clean.CommTime {
		t.Fatalf("faulted replay %v not above clean %v", faulted.CommTime, clean.CommTime)
	}
	if faulted.Messages <= clean.Messages {
		t.Fatalf("retransmissions missing: %d msgs vs clean %d", faulted.Messages, clean.Messages)
	}
	if faulted.Bytes != clean.Bytes {
		t.Fatalf("payload bytes should be charged once: %d vs %d", faulted.Bytes, clean.Bytes)
	}
	again, err := ReplayWithFaults(res.Events.Events, dist, nil, pol, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(faulted, again) {
		t.Fatalf("same seed, different replay: %+v vs %+v", faulted, again)
	}
}
