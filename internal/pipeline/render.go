package pipeline

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// EncodeJSON writes the result's canonical JSON encoding: two-space
// indentation and a trailing newline. Every consumer — `coign run -json`,
// the job store, the service's result endpoint — uses this one encoder, so
// the same normalized spec always yields byte-identical output.
func EncodeJSON(w io.Writer, r *Result) error {
	b, err := MarshalResult(r)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// MarshalResult returns the canonical JSON bytes of a result.
func MarshalResult(r *Result) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, fmt.Errorf("pipeline: encoding result: %w", err)
	}
	return buf.Bytes(), nil
}

// WriteText renders the result for a terminal, mirroring the coign CLI's
// historical layout.
func (r *Result) WriteText(w io.Writer) error {
	spec := r.Spec
	fmt.Fprintf(w, "%s on %s (%s classifier)\n", strings.Join(spec.Scenarios, "+"), spec.Network, spec.Classifier)
	fmt.Fprintf(w, "  classifications: %d client, %d server (%d constrained, %d non-remotable edges)\n",
		r.Classifications.Client, r.Classifications.Server, r.Constrained, r.NonRemotableEdges)
	fmt.Fprintf(w, "  instances:       %d client, %d server\n", r.Instances.Client, r.Instances.Server)
	fmt.Fprintf(w, "  predicted comm:  %v (default %v, savings %.0f%%)\n",
		r.PredictedComm, r.DefaultComm, r.Savings*100)
	if r.CoverageCoLocations > 0 {
		fmt.Fprintf(w, "  coverage welds:  %d uncovered edges kept co-located\n", r.CoverageCoLocations)
	}
	if len(r.Replicated) > 0 {
		fmt.Fprintf(w, "  replicated:      %d components cloned (comm %v)\n", len(r.Replicated), r.ReplicatedComm)
	}
	if r.DefaultViolations > 0 {
		fmt.Fprintf(w, "  default infeasible: splits %d co-location constraint(s); default time is a lower bound\n",
			r.DefaultViolations)
	}
	if e := r.Experiment; e != nil {
		fmt.Fprintf(w, "  components:      %d total, %d on server\n", e.TotalInstances, e.ServerInstances)
		fmt.Fprintf(w, "  communication:   default %.3fs, Coign %.3fs (savings %.0f%%)\n",
			e.DefaultComm.Seconds(), e.CoignComm.Seconds(), e.Savings*100)
		fmt.Fprintf(w, "  execution:       predicted %.1fs, measured %.1fs (error %+.1f%%)\n",
			e.PredictedExec.Seconds(), e.MeasuredExec.Seconds(), e.PredictionErr*100)
		fmt.Fprintf(w, "  violations:      %d\n", e.Violations)
	}
	return nil
}

// WriteServerPlacements lists the server-side classes, the -v drill-down.
func (r *Result) WriteServerPlacements(w io.Writer) {
	for _, p := range r.ServerPlacements {
		fmt.Fprintf(w, "  server: %-20s x%d\n", p.Class, p.Instances)
	}
}
