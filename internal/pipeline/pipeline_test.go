package pipeline

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/scenario"
)

func TestNormalizedDefaults(t *testing.T) {
	t.Parallel()
	s, err := Spec{Scenarios: []string{"o_oldwp0"}}.Normalized()
	if err != nil {
		t.Fatalf("Normalized: %v", err)
	}
	if s.App != "octarine" || s.Network != "10BaseT" || s.Classifier != "ifcb" || s.Seed != 1 {
		t.Fatalf("defaults not filled: %+v", s)
	}
}

func TestNormalizedRejects(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		spec Spec
	}{
		{"no scenarios", Spec{}},
		{"unknown scenario for inference", Spec{Scenarios: []string{"nope"}}},
		{"bad pin machine", Spec{Scenarios: []string{"o_oldwp0"}, Pins: map[string]string{"X": "middle"}}},
		{"compare with two scenarios", Spec{Scenarios: []string{"o_oldwp0", "o_oldwp3"}, Compare: true}},
		{"compare with coverage", Spec{Scenarios: []string{"o_oldwp0"}, Compare: true, Coverage: true}},
	}
	for _, c := range cases {
		if _, err := c.spec.Normalized(); err == nil {
			t.Errorf("%s: Normalized accepted %+v", c.name, c.spec)
		}
	}
}

// TestRunDeterministic: two runs of one normalized spec must produce
// byte-identical canonical JSON — the contract that makes the CLI and the
// job service interchangeable.
func TestRunDeterministic(t *testing.T) {
	t.Parallel()
	spec := Spec{App: "synth:three-tier:1", Scenarios: scenario.TrainingForApp("synth:three-tier:1")}
	if len(spec.Scenarios) == 0 {
		t.Fatal("no training scenarios for synth:three-tier:1")
	}
	a, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("Run (second): %v", err)
	}
	ab, err := MarshalResult(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := MarshalResult(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatalf("two runs of the same spec diverge:\n%s\nvs\n%s", ab, bb)
	}
	if a.Analysis == nil || a.ADPS == nil || a.Profile == nil {
		t.Fatal("internal handles not populated")
	}
	if bytes.Contains(ab, []byte("cutDuration")) {
		t.Fatal("telemetry leaked into the canonical encoding")
	}
}

// TestRunCompare: compare mode fills the experiment block and matches the
// historical experiments.RunScenario numbers by construction.
func TestRunCompare(t *testing.T) {
	t.Parallel()
	res, err := Run(context.Background(), Spec{Scenarios: []string{"b_vueone"}, Compare: true})
	if err != nil {
		t.Fatalf("Run(compare): %v", err)
	}
	if res.Experiment == nil {
		t.Fatal("compare run produced no experiment block")
	}
	if res.Experiment.TotalInstances <= 0 {
		t.Fatalf("experiment reports %d total instances", res.Experiment.TotalInstances)
	}
}

func TestRunPins(t *testing.T) {
	t.Parallel()
	res, err := Run(context.Background(), Spec{
		Scenarios: []string{"o_oldwp0"},
		Pins:      map[string]string{"DocReader": "server"},
	})
	if err != nil {
		t.Fatalf("Run with pin: %v", err)
	}
	found := false
	for _, p := range res.ServerPlacements {
		if p.Class == "DocReader" {
			found = true
		}
	}
	if !found {
		t.Fatal("pinned class DocReader not on the server side")
	}
	if _, err := Run(context.Background(), Spec{
		Scenarios: []string{"o_oldwp0"},
		Pins:      map[string]string{"NoSuchClass": "server"},
	}); err == nil || !strings.Contains(err.Error(), "matched no profiled classifications") {
		t.Fatalf("unmatched pin err = %v", err)
	}
}

// TestRunCancelled: a cancelled context aborts the run with its error.
func TestRunCancelled(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Spec{Scenarios: []string{"o_oldwp0"}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run(cancelled) err = %v, want context.Canceled", err)
	}
}

func TestWriteTextRenders(t *testing.T) {
	t.Parallel()
	res, err := Run(context.Background(), Spec{Scenarios: []string{"o_oldwp0"}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"classifications:", "predicted comm:", "o_oldwp0 on 10BaseT"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
}
