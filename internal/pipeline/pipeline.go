// Package pipeline is the single entry point for a complete Coign ADPS
// run: resolve the application, apply programmer constraints, profile the
// requested scenarios, cut the concrete graph, and summarize the chosen
// distribution. The coign CLI subcommands and the job service both build a
// Spec and call Run, so one partitioning request produces byte-identical
// results no matter which surface submitted it.
package pipeline

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/classify"
	"repro/internal/com"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/profile"
	"repro/internal/scenario"
	"repro/internal/version"
)

// Spec is one partitioning request. The zero value plus at least one
// scenario is a valid request; Normalized fills the defaults. Specs are
// plain data — they arrive as CLI flags or as an HTTP job body.
type Spec struct {
	// App is the application name ("octarine", ..., or
	// "synth:<family>:<seed>[:<scale>]"). Empty means: inferred from the
	// first scenario via the Table 1 catalog.
	App string `json:"app,omitempty"`
	// Scenarios are the profiling scenarios whose merged profile feeds the
	// cut. At least one is required.
	Scenarios []string `json:"scenarios"`
	// Network is the network model name; default 10BaseT.
	Network string `json:"network,omitempty"`
	// Classifier is the instance classifier name; default ifcb.
	Classifier string `json:"classifier,omitempty"`
	// Depth is the classifier stack-walk depth (0 = complete).
	Depth int `json:"depth,omitempty"`
	// Pins are programmer-supplied absolute constraints: class name to
	// "client" or "server". Every profiled classification of the class is
	// pinned; a pin matching no classification is an error.
	Pins map[string]string `json:"pins,omitempty"`
	// Coverage additionally diffs the profile against the static
	// reachability graph and welds every uncovered edge before cutting.
	Coverage bool `json:"coverage,omitempty"`
	// Replicate additionally cuts the replication-aware network.
	Replicate bool `json:"replicate,omitempty"`
	// Alias additionally runs the points-to analysis over opaque payloads
	// and refines the static constraint set and purity closure with it
	// before cutting (see core.EnableAlias).
	Alias bool `json:"alias,omitempty"`
	// Theta is the read-mostly purity threshold (0 selects the default).
	Theta float64 `json:"theta,omitempty"`
	// ExactPricing prices edges from exact byte totals instead of bucket
	// representatives.
	ExactPricing bool `json:"exactPricing,omitempty"`
	// Compare runs the full end-to-end experiment — write the distribution
	// into the binary, execute default and Coign placements, measure — and
	// fills Result.Experiment. Requires exactly one scenario and no
	// Coverage.
	Compare bool `json:"compare,omitempty"`
	// Seed drives all stochastic components; default 1.
	Seed int64 `json:"seed,omitempty"`
}

// Normalized returns the spec with defaults filled in and cross-field
// rules enforced. Run normalizes internally; callers normalize early only
// when they want the canonical spec (e.g. to persist it with a job).
func (s Spec) Normalized() (Spec, error) {
	if len(s.Scenarios) == 0 {
		return s, fmt.Errorf("pipeline: spec needs at least one scenario")
	}
	if s.App == "" {
		info, err := scenario.Lookup(s.Scenarios[0])
		if err != nil {
			return s, fmt.Errorf("pipeline: cannot infer app: %w", err)
		}
		s.App = info.App
	}
	if s.Network == "" {
		s.Network = "10BaseT"
	}
	if s.Classifier == "" {
		s.Classifier = "ifcb"
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	for class, m := range s.Pins {
		if m != "client" && m != "server" {
			return s, fmt.Errorf("pipeline: pin %s=%q: machine must be client or server", class, m)
		}
	}
	if s.Compare {
		if len(s.Scenarios) != 1 {
			return s, fmt.Errorf("pipeline: compare mode needs exactly one scenario, got %d", len(s.Scenarios))
		}
		if s.Coverage {
			return s, fmt.Errorf("pipeline: compare mode does not support coverage constraints")
		}
	}
	return s, nil
}

// Sides is a client/server pair of counts.
type Sides struct {
	Client int64 `json:"client"`
	Server int64 `json:"server"`
}

// Placement is one server-side class with its profiled instance count.
type Placement struct {
	Classification string `json:"classification"`
	Class          string `json:"class"`
	Instances      int64  `json:"instances"`
}

// Experiment is the end-to-end comparison of Compare mode: the measured
// default and Coign communication times and the prediction accuracy (the
// Tables 4 and 5 columns).
type Experiment struct {
	DefaultComm     time.Duration `json:"defaultCommNs"`
	CoignComm       time.Duration `json:"coignCommNs"`
	Savings         float64       `json:"savings"`
	PredictedExec   time.Duration `json:"predictedExecNs"`
	MeasuredExec    time.Duration `json:"measuredExecNs"`
	PredictionErr   float64       `json:"predictionErr"`
	TotalInstances  int           `json:"totalInstances"`
	ServerInstances int           `json:"serverInstances"`
	Violations      int           `json:"violations"`
}

// Result is one run's canonical outcome. Every exported JSON field is
// deterministic for a given spec: slices are sorted or catalog-ordered and
// durations marshal as integer nanoseconds, so two runs of the same
// normalized spec — CLI or service, today or after a restart — encode to
// identical bytes. Wall-clock measurements and internal handles carry
// `json:"-"` and never enter the canonical encoding.
type Result struct {
	Spec    Spec   `json:"spec"`
	Version string `json:"version"`

	Classifications Sides `json:"classifications"`
	Instances       Sides `json:"instances"`

	PredictedComm     time.Duration `json:"predictedCommNs"`
	DefaultComm       time.Duration `json:"defaultCommNs"`
	Savings           float64       `json:"savings"`
	DefaultViolations int           `json:"defaultViolations"`

	Constrained         int `json:"constrained"`
	NonRemotableEdges   int `json:"nonRemotableEdges"`
	StaticCoLocations   int `json:"staticCoLocations"`
	CoverageCoLocations int `json:"coverageCoLocations"`
	Findings            int `json:"findings"`

	// Alias-refinement outcome (only with Spec.Alias): pair-wise aliasing
	// constraints installed in place of opaque cliques, alias welds applied
	// to the cut graph, and profiled non-remotable edges cleared of their
	// conservative dynamic weld by the points-to refiner.
	AliasPairs          int `json:"aliasPairs,omitempty"`
	AliasCoLocations    int `json:"aliasCoLocations,omitempty"`
	NonRemotableCleared int `json:"nonRemotableCleared,omitempty"`

	// ServerPlacements lists every server-side classification, sorted by
	// class then classification id.
	ServerPlacements []Placement `json:"serverPlacements,omitempty"`

	// Replicated lists replication-eligible nodes actually cloned by the
	// replication-aware cut (only with Spec.Replicate).
	Replicated     []string      `json:"replicated,omitempty"`
	ReplicatedComm time.Duration `json:"replicatedCommNs,omitempty"`

	// Experiment is only set in Compare mode.
	Experiment *Experiment `json:"experiment,omitempty"`

	// CutDuration is how long the analysis engine ran (profiling through
	// cut). Excluded from the canonical encoding — it is telemetry, not
	// part of the result.
	CutDuration time.Duration `json:"-"`

	// Internal handles for callers that drill further (DOT rendering,
	// distribution maps, drift watchdogs). Never serialized.
	Analysis *analysis.Result `json:"-"`
	Profile  *profile.Profile `json:"-"`
	ADPS     *core.ADPS       `json:"-"`
}

// Run executes one partitioning request end to end. The context reaches
// the cut engine: cancelling it aborts the run mid-cut.
func Run(ctx context.Context, spec Spec) (*Result, error) {
	spec, err := spec.Normalized()
	if err != nil {
		return nil, err
	}
	app, err := scenario.NewApp(spec.App)
	if err != nil {
		return nil, err
	}
	model, err := netsim.ByName(spec.Network)
	if err != nil {
		return nil, err
	}
	kind, err := classify.KindByName(spec.Classifier)
	if err != nil {
		return nil, err
	}
	adps := core.New(app)
	adps.Network = model
	adps.ClassifierKind = kind
	adps.ClassifierDepth = spec.Depth
	adps.Seed = spec.Seed
	adps.AnalysisOptions.ExactPricing = spec.ExactPricing
	adps.AnalysisOptions.PurityTheta = spec.Theta
	adps.AnalysisOptions.Replicate = spec.Replicate
	// One arena per run: every cut the run performs shares the CSR arrays,
	// and repeated analyses of one topology (compare mode re-analyzes
	// after writing the distribution) warm-start from the previous flow.
	// The replicated cut runs on a different topology — replicated nodes'
	// edges vanish — so it gets its own arena rather than forcing the
	// shared one to restage on every alternation.
	adps.AnalysisOptions.Arena = graph.NewCutArena()
	if spec.Replicate {
		adps.AnalysisOptions.ReplicaArena = graph.NewCutArena()
	}
	if spec.Alias {
		if err := adps.EnableAlias(); err != nil {
			return nil, err
		}
	}

	res := &Result{Spec: spec, Version: version.String(), ADPS: adps}
	if cs := adps.AnalysisOptions.Constraints; spec.Alias && cs != nil {
		res.AliasPairs = len(cs.AliasPairs)
	}
	start := time.Now()

	if spec.Compare {
		rep, err := adps.ScenarioExperiment(ctx, spec.Scenarios[0])
		if err != nil {
			return nil, err
		}
		res.CutDuration = time.Since(start)
		res.fillAnalysis(rep.Analysis, nil)
		res.Experiment = &Experiment{
			DefaultComm:     rep.DefaultComm,
			CoignComm:       rep.CoignComm,
			Savings:         rep.Savings,
			PredictedExec:   rep.PredictedExec,
			MeasuredExec:    rep.MeasuredExec,
			PredictionErr:   rep.PredictionErr,
			TotalInstances:  rep.TotalInstances,
			ServerInstances: rep.ServerInstances,
			Violations:      rep.Violations,
		}
		return res, nil
	}

	var prof *profile.Profile
	if spec.Coverage {
		// CoverageReport instruments, profiles, and installs uncovered
		// edges as conservative co-location welds in one pass.
		_, prof, err = adps.CoverageReport(spec.Scenarios, true)
		if err != nil {
			return nil, err
		}
	} else {
		if err := adps.Instrument(); err != nil {
			return nil, err
		}
		prof, err = adps.ProfileScenarios(spec.Scenarios, false)
		if err != nil {
			return nil, err
		}
	}
	if err := applyPins(adps, prof, spec.Pins); err != nil {
		return nil, err
	}
	ares, err := adps.Analyze(ctx, prof)
	if err != nil {
		return nil, err
	}
	res.CutDuration = time.Since(start)
	res.fillAnalysis(ares, prof)
	return res, nil
}

// applyPins installs programmer-supplied absolute constraints: every
// profiled classification of a pinned class goes to the named machine.
func applyPins(adps *core.ADPS, prof *profile.Profile, pins map[string]string) error {
	if len(pins) == 0 {
		return nil
	}
	adps.AnalysisOptions.ExtraPins = map[string]com.Machine{}
	// Sorted class order so error reporting is deterministic.
	classes := make([]string, 0, len(pins))
	for class := range pins {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		var m com.Machine
		switch pins[class] {
		case "client":
			m = com.Client
		case "server":
			m = com.Server
		default:
			return fmt.Errorf("pipeline: pin %s=%q: machine must be client or server", class, pins[class])
		}
		matched := 0
		for id, ci := range prof.Classifications {
			if ci.Class == class {
				adps.AnalysisOptions.ExtraPins[id] = m
				matched++
			}
		}
		if matched == 0 {
			return fmt.Errorf("pipeline: pin %s matched no profiled classifications", class)
		}
	}
	return nil
}

// fillAnalysis copies the analysis engine's outcome into the canonical
// result fields. prof may be nil (Compare mode reuses the experiment's
// internal profile only for placements when available).
func (r *Result) fillAnalysis(ares *analysis.Result, prof *profile.Profile) {
	r.Analysis = ares
	r.Profile = prof
	r.Classifications = Sides{
		Client: int64(ares.ClientClassifications),
		Server: int64(ares.ServerClassifications),
	}
	r.Instances = Sides{Client: ares.ClientInstances, Server: ares.ServerInstances}
	r.PredictedComm = ares.PredictedComm
	r.DefaultComm = ares.DefaultComm
	r.Savings = ares.Savings()
	r.DefaultViolations = ares.DefaultViolations
	r.Constrained = ares.Constrained
	r.NonRemotableEdges = ares.NonRemotableEdges
	r.StaticCoLocations = ares.StaticCoLocations
	r.CoverageCoLocations = ares.CoverageCoLocations
	r.AliasCoLocations = ares.AliasCoLocations
	r.NonRemotableCleared = ares.NonRemotableCleared
	r.Findings = len(ares.Findings)
	r.Replicated = ares.Replicated
	if ares.ReplicatedCut != nil {
		r.ReplicatedComm = ares.ReplicatedComm
	}
	if prof != nil {
		for _, cp := range ares.ServerComponents(prof) {
			r.ServerPlacements = append(r.ServerPlacements, Placement{
				Classification: cp.Classification,
				Class:          cp.Class,
				Instances:      cp.Instances,
			})
		}
	}
}
