package graph

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/par"
)

// Multiway partitioning. The paper restricts itself to the exact two-way
// algorithm because multiterminal cuts are NP-hard [Dahlhaus et al.], but
// names multiway heuristics as the path to three or more machines. This
// file implements the classic isolation heuristic (2 - 2/k approximation):
// for each terminal, compute the exact two-way cut isolating it from the
// other terminals merged together, then discard the most expensive
// isolating cut and assign by the remaining ones.

// MultiwayTerminal pins a set of nodes to a named machine.
type MultiwayTerminal struct {
	Machine string
	Pinned  []string
}

// MultiwayCut assigns every node to one of the terminals' machines using
// the isolation heuristic. It requires at least two terminals; with
// exactly two it reduces to the exact minimum cut.
func (g *Graph) MultiwayCut(terminals []MultiwayTerminal) (map[string]string, float64, error) {
	return g.MultiwayCutCtx(context.Background(), terminals)
}

// MultiwayCutCtx is MultiwayCut under a context: the per-terminal
// isolating cuts poll it, so a cancelled job aborts mid-heuristic.
func (g *Graph) MultiwayCutCtx(ctx context.Context, terminals []MultiwayTerminal) (map[string]string, float64, error) {
	if len(terminals) < 2 {
		return nil, 0, fmt.Errorf("graph: multiway cut needs >= 2 terminals, got %d", len(terminals))
	}
	type isoCut struct {
		term   int
		cut    *Cut
		weight float64
	}
	// The k isolating cuts are independent — each runs on a private
	// unpinned clone and only reads the shared graph — so they fan out on
	// the worker pool. Results come back in terminal order, keeping the
	// heuristic's tie-breaking identical to the sequential version.
	terms := make([]int, len(terminals))
	for i := range terminals {
		terms[i] = i
	}
	cuts, err := par.Map(ctx, terms, func(ctx context.Context, ti int) (isoCut, error) {
		iso := g.cloneUnpinned()
		for _, n := range terminals[ti].Pinned {
			iso.Pin(n, SourceSide)
		}
		for tj, other := range terminals {
			if tj == ti {
				continue
			}
			for _, n := range other.Pinned {
				iso.Pin(n, SinkSide)
			}
		}
		c, err := iso.MinCutCtx(ctx)
		if err != nil {
			return isoCut{}, fmt.Errorf("graph: isolating cut for %s: %w", terminals[ti].Machine, err)
		}
		return isoCut{term: ti, cut: c, weight: c.Weight}, nil
	})
	if err != nil {
		return nil, 0, err
	}

	// Discard the heaviest isolating cut: its terminal becomes the default
	// owner of nodes not isolated with anyone else.
	sort.SliceStable(cuts, func(i, j int) bool { return cuts[i].weight < cuts[j].weight })
	defaultTerm := cuts[len(cuts)-1].term
	kept := cuts[:len(cuts)-1]

	assign := make(map[string]string, g.Len())
	for i := range g.names {
		assign[g.names[i]] = terminals[defaultTerm].Machine
	}
	// Earlier (cheaper) cuts win conflicts.
	for i := len(kept) - 1; i >= 0; i-- {
		c := kept[i]
		for name, side := range c.cut.Assignment {
			if side == SourceSide {
				assign[name] = terminals[c.term].Machine
			}
		}
	}
	// Terminal pins always hold.
	for _, term := range terminals {
		for _, n := range term.Pinned {
			assign[n] = term.Machine
		}
	}

	// Total weight of edges crossing machine boundaries.
	var w float64
	for e, ew := range g.edges {
		if assign[g.names[e[0]]] != assign[g.names[e[1]]] {
			if math.IsInf(ew, 1) {
				return nil, 0, fmt.Errorf("graph: multiway assignment crosses a co-location constraint")
			}
			w += ew
		}
	}
	for e := range g.coloc {
		if assign[g.names[e[0]]] != assign[g.names[e[1]]] {
			return nil, 0, fmt.Errorf("graph: multiway assignment crosses a co-location constraint")
		}
	}
	return assign, w, nil
}

// cloneUnpinned copies the graph's nodes, edges, and co-location
// constraints without pins.
func (g *Graph) cloneUnpinned() *Graph {
	c := New()
	c.names = append([]string(nil), g.names...)
	for i, n := range c.names {
		c.index[n] = i
	}
	for e, w := range g.edges {
		c.edges[e] = w
	}
	for e := range g.coloc {
		c.coloc[e] = true
	}
	return c
}
