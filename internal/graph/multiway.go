package graph

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/par"
)

// Multiway partitioning. The paper restricts itself to the exact two-way
// algorithm because multiterminal cuts are NP-hard [Dahlhaus et al.], but
// names multiway heuristics as the path to three or more machines. This
// file implements the classic isolation heuristic (2 - 2/k approximation):
// for each terminal, compute the exact two-way cut isolating it from the
// other terminals merged together, then discard the most expensive
// isolating cut and assign by the remaining ones.

// MultiwayTerminal pins a set of nodes to a named machine.
type MultiwayTerminal struct {
	Machine string
	Pinned  []string
}

// MultiwayCut assigns every node to one of the terminals' machines using
// the isolation heuristic. It requires at least two terminals; with
// exactly two it reduces to the exact minimum cut.
func (g *Graph) MultiwayCut(terminals []MultiwayTerminal) (map[string]string, float64, error) {
	return g.MultiwayCutCtx(context.Background(), terminals)
}

// MultiwayCutCtx is MultiwayCut under a context: the per-terminal
// isolating cuts poll it, so a cancelled job aborts mid-heuristic.
func (g *Graph) MultiwayCutCtx(ctx context.Context, terminals []MultiwayTerminal) (map[string]string, float64, error) {
	if len(terminals) < 2 {
		return nil, 0, fmt.Errorf("graph: multiway cut needs >= 2 terminals, got %d", len(terminals))
	}
	type isoCut struct {
		term   int
		cut    *Cut
		weight float64
	}
	// The k isolating cuts share one topology and differ only in which
	// side each terminal's pins land on, so the pin-independent arc pairs
	// — edges and welds, the bulk of the staging work — are staged once
	// and shared read-only across the fan-out; each cut appends only its
	// own terminal arcs (the full-length slice forces append to copy) and
	// lays out a private CSR network. Pinned names the graph has never
	// seen are skipped rather than interned: an isolated pinned node
	// cannot affect any cut, and the final pin-override loop assigns it
	// regardless.
	n := g.Len()
	s, t := n, n+1
	base, inf := g.stageBase()
	base = base[:len(base):len(base)]
	terms := make([]int, len(terminals))
	for i := range terminals {
		terms[i] = i
	}
	cuts, err := par.Map(ctx, terms, func(ctx context.Context, ti int) (isoCut, error) {
		pins := make(map[int]Side)
		for _, name := range terminals[ti].Pinned {
			if v, ok := g.index[name]; ok {
				pins[v] = SourceSide
			}
		}
		for tj, other := range terminals {
			if tj == ti {
				continue
			}
			for _, name := range other.Pinned {
				if v, ok := g.index[name]; ok {
					pins[v] = SinkSide
				}
			}
		}
		pinNodes := make([]int, 0, len(pins))
		for v := range pins {
			pinNodes = append(pinNodes, v)
		}
		sort.Ints(pinNodes)
		if err := g.validatePinned(pins); err != nil {
			return isoCut{}, fmt.Errorf("graph: isolating cut for %s: %w", terminals[ti].Machine, err)
		}
		net := newCSRNet(n+2, s, t, stagePins(base, s, t, pinNodes, pins, inf))
		flow, err := net.maxFlowHighestLabel(ctx)
		if err != nil {
			return isoCut{}, fmt.Errorf("graph: isolating cut for %s: %w", terminals[ti].Machine, err)
		}
		c, err := g.extractCutSidesPinned(net.sourceSide(), flow, inf, pins)
		if err != nil {
			return isoCut{}, fmt.Errorf("graph: isolating cut for %s: %w", terminals[ti].Machine, err)
		}
		return isoCut{term: ti, cut: c, weight: c.Weight}, nil
	})
	if err != nil {
		return nil, 0, err
	}

	// Discard the heaviest isolating cut: its terminal becomes the default
	// owner of nodes not isolated with anyone else. Ties break by terminal
	// index — an explicit contract, not an artifact of par.Map returning
	// results in input order — so equal-weight isolating cuts produce the
	// same assignment run after run.
	sort.SliceStable(cuts, func(i, j int) bool {
		if cuts[i].weight != cuts[j].weight {
			return cuts[i].weight < cuts[j].weight
		}
		return cuts[i].term < cuts[j].term
	})
	defaultTerm := cuts[len(cuts)-1].term
	kept := cuts[:len(cuts)-1]

	assign := make(map[string]string, g.Len())
	for i := range g.names {
		assign[g.names[i]] = terminals[defaultTerm].Machine
	}
	// Earlier (cheaper) cuts win conflicts.
	for i := len(kept) - 1; i >= 0; i-- {
		c := kept[i]
		for name, side := range c.cut.Assignment {
			if side == SourceSide {
				assign[name] = terminals[c.term].Machine
			}
		}
	}
	// Terminal pins always hold.
	for _, term := range terminals {
		for _, n := range term.Pinned {
			assign[n] = term.Machine
		}
	}

	// Total weight of edges crossing machine boundaries.
	var w float64
	for e, ew := range g.edges {
		if assign[g.names[e[0]]] != assign[g.names[e[1]]] {
			if math.IsInf(ew, 1) {
				return nil, 0, fmt.Errorf("graph: multiway assignment crosses a co-location constraint")
			}
			w += ew
		}
	}
	for e := range g.coloc {
		if assign[g.names[e[0]]] != assign[g.names[e[1]]] {
			return nil, 0, fmt.Errorf("graph: multiway assignment crosses a co-location constraint")
		}
	}
	return assign, w, nil
}
