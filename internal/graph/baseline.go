package graph

import "math"

// MinCutEdmondsKarp computes the same exact two-way minimum cut with BFS
// augmenting paths (Edmonds–Karp). It exists as an independent
// implementation to cross-check the lift-to-front algorithm and as the
// baseline for the min-cut ablation benchmark.
func (g *Graph) MinCutEdmondsKarp() (*Cut, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	f, inf := g.build()
	flow := f.maxFlowEdmondsKarp()
	return g.extractCutSides(f.minCutSides(), flow, inf)
}

func (f *flowNet) maxFlowEdmondsKarp() float64 {
	var total float64
	parentArc := make([]int, f.n)
	parentNode := make([]int, f.n)
	for {
		// BFS for a shortest augmenting path.
		for i := range parentNode {
			parentNode[i] = -1
		}
		parentNode[f.s] = f.s
		queue := []int{f.s}
		for len(queue) > 0 && parentNode[f.t] == -1 {
			u := queue[0]
			queue = queue[1:]
			for i := range f.arcs[u] {
				a := &f.arcs[u][i]
				if a.cap > capEps && parentNode[a.to] == -1 {
					parentNode[a.to] = u
					parentArc[a.to] = i
					queue = append(queue, a.to)
				}
			}
		}
		if parentNode[f.t] == -1 {
			return total
		}
		// Find bottleneck.
		bottleneck := math.Inf(1)
		for v := f.t; v != f.s; v = parentNode[v] {
			a := f.arcs[parentNode[v]][parentArc[v]]
			if a.cap < bottleneck {
				bottleneck = a.cap
			}
		}
		// Augment.
		for v := f.t; v != f.s; v = parentNode[v] {
			a := &f.arcs[parentNode[v]][parentArc[v]]
			a.cap -= bottleneck
			f.arcs[a.to][a.rev].cap += bottleneck
		}
		total += bottleneck
	}
}

// EvaluateAssignment returns the total weight of edges crossing an
// arbitrary assignment — the communication time of any proposed
// distribution, not necessarily a minimum cut. Nodes missing from the
// assignment count as SourceSide. Splitting a co-located pair yields
// +Inf.
func (g *Graph) EvaluateAssignment(assign map[string]Side) float64 {
	w, violations := g.EvaluateAssignmentDetail(assign)
	if violations > 0 {
		return math.Inf(1)
	}
	return w
}

// EvaluateAssignmentDetail prices an arbitrary assignment with true edge
// weights and reports constraint violations separately: the finite
// communication weight crossing the assignment, and the number of
// co-location constraints the assignment splits. Unlike
// EvaluateAssignment it never collapses the price to +Inf, so an
// infeasible default distribution still gets an honest communication
// time alongside an explicit violation count.
func (g *Graph) EvaluateAssignmentDetail(assign map[string]Side) (weight float64, violations int) {
	// Sorted edge order keeps the float sum reproducible run to run.
	for _, e := range g.sortedEdgeKeys() {
		ew := g.edges[e]
		a := assign[g.names[e[0]]]
		b := assign[g.names[e[1]]]
		if a != b {
			if math.IsInf(ew, 1) {
				violations++
				continue
			}
			weight += ew
		}
	}
	for e := range g.coloc {
		if assign[g.names[e[0]]] != assign[g.names[e[1]]] {
			violations++
		}
	}
	return weight, violations
}

// AllOn returns the trivial assignment with every node on one side — the
// "default distribution" of a desktop application that runs entirely on
// the client (pinned nodes keep their pins).
func (g *Graph) AllOn(s Side) map[string]Side {
	assign := make(map[string]Side, g.Len())
	for i, name := range g.names {
		if p, ok := g.pinned[i]; ok {
			assign[name] = p
		} else {
			assign[name] = s
		}
	}
	return assign
}
