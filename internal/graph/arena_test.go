package graph

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// TestCSRNetSelfLoopPairs is the regression test for the reverse-arc
// corruption newCSRNet used to suffer on self-loop pairs: both halves of
// a u==u pair read the same position slot before either incremented it,
// so both landed on one arc index and the adjacent slot was left zeroed
// with a dangling rev pointer. Self-loops are now dropped at staging;
// on the pre-fix code this test fails the involution check (and the flow
// value, since the corrupted row breaks the discharge scan).
func TestCSRNetSelfLoopPairs(t *testing.T) {
	t.Parallel()
	pairs := []csrArc{
		{u: 0, v: 1, capUV: 2, capVU: 2},
		{u: 1, v: 1, capUV: 5, capVU: 5}, // self-loop: must be dropped
		{u: 0, v: 0, capUV: 7, capVU: 0}, // directed self-loop too
	}
	net := newCSRNet(2, 0, 1, pairs)
	if len(net.to) != 2 {
		t.Fatalf("self-loops staged: %d arcs, want 2", len(net.to))
	}
	owner := make([]int32, len(net.to))
	for u := 0; u < net.n; u++ {
		if net.head[u] > net.head[u+1] {
			t.Fatalf("head not monotone at node %d", u)
		}
		for a := net.head[u]; a < net.head[u+1]; a++ {
			owner[a] = int32(u)
		}
	}
	for a := range net.to {
		r := net.rev[a]
		if int(net.rev[r]) != a {
			t.Fatalf("rev not an involution at arc %d", a)
		}
		if owner[r] != net.to[a] || net.to[r] != owner[a] {
			t.Fatalf("arc %d: reverse arc lives in node %d, target is %d", a, owner[r], net.to[a])
		}
	}
	flow, err := net.maxFlowHighestLabel(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(flow-2) > 1e-12 {
		t.Fatalf("flow %v, want 2 (self-loop capacity must not count)", flow)
	}

	// Dropping self-loops at staging means the network is byte-identical
	// to one staged without them.
	clean := newCSRNet(2, 0, 1, pairs[:1])
	if len(clean.to) != len(net.to) {
		t.Fatalf("filtered and clean networks differ in size: %d vs %d", len(net.to), len(clean.to))
	}
	for a := range net.to {
		if net.to[a] != clean.to[a] || net.rev[a] != clean.rev[a] {
			t.Fatalf("arc %d differs between filtered and clean layout", a)
		}
	}
}

func assignmentsEqual(a, b map[string]Side) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestPropertyArenaWarmMatchesCold drives the warm-start path over the
// 150-seed constrained generator: cut through one arena, re-cut
// unchanged (a pure warm resume), then perturb a random subset of edge
// weights — which also moves the infinity proxy, so pin and weld arcs
// change too — and re-cut warm. Every arena cut must agree with a fresh
// one-shot cold cut and the Edmonds–Karp oracle not just on weight but
// on the exact assignment: the source side of a phase-1 run is the
// t-minimal minimum cut, identical for every maximum preflow.
func TestPropertyArenaWarmMatchesCold(t *testing.T) {
	t.Parallel()
	ctx := context.Background()
	totalWarm, totalFallback := 0, 0
	for seed := int64(0); seed < 150; seed++ {
		g := constrainedRandomGraph(seed)
		a := NewCutArena()

		first, err := g.MinCutArena(ctx, a)
		if err != nil {
			t.Fatalf("seed %d: first arena cut: %v", seed, err)
		}
		oneShot, err := g.MinCut()
		if err != nil {
			t.Fatalf("seed %d: one-shot: %v", seed, err)
		}
		if !assignmentsEqual(first.Assignment, oneShot.Assignment) || first.Weight != oneShot.Weight {
			t.Fatalf("seed %d: arena cold cut differs from one-shot", seed)
		}

		again, err := g.MinCutArena(ctx, a)
		if err != nil {
			t.Fatalf("seed %d: unchanged re-cut: %v", seed, err)
		}
		if !assignmentsEqual(again.Assignment, first.Assignment) || again.Weight != first.Weight {
			t.Fatalf("seed %d: unchanged warm re-cut changed the cut", seed)
		}

		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		for _, e := range g.EdgeNames() {
			if rng.Intn(2) == 0 {
				g.SetEdgeWeight(e[0], e[1], g.EdgeWeight(e[0], e[1])*(0.25+1.5*rng.Float64()))
			}
		}
		warm, err := g.MinCutArena(ctx, a)
		if err != nil {
			t.Fatalf("seed %d: warm perturbed cut: %v", seed, err)
		}
		cold, err := g.MinCut()
		if err != nil {
			t.Fatalf("seed %d: cold perturbed cut: %v", seed, err)
		}
		ek, err := g.MinCutEdmondsKarp()
		if err != nil {
			t.Fatalf("seed %d: oracle on perturbed graph: %v", seed, err)
		}
		tol := 1e-6 * (1 + cold.Weight)
		if math.Abs(warm.Weight-cold.Weight) > tol || math.Abs(warm.Weight-ek.Weight) > tol {
			t.Fatalf("seed %d: weights diverge: warm=%v cold=%v ek=%v", seed, warm.Weight, cold.Weight, ek.Weight)
		}
		if !assignmentsEqual(warm.Assignment, cold.Assignment) {
			t.Fatalf("seed %d: warm and cold assignments differ", seed)
		}

		st := a.Stats()
		if st.Cuts != 3 || st.Restaged != 1 {
			t.Fatalf("seed %d: stats %+v: want 3 cuts, 1 restage", seed, st)
		}
		if st.Warm+st.Cold != st.Cuts {
			t.Fatalf("seed %d: stats %+v: warm+cold != cuts", seed, st)
		}
		if st.Warm < 1 {
			t.Fatalf("seed %d: stats %+v: unchanged re-cut should have been warm", seed, st)
		}
		totalWarm += st.Warm
		totalFallback += st.Fallbacks
	}
	// The suite as a whole must actually exercise warm resumes of changed
	// capacities, not fall back to cold on every perturbation.
	if totalWarm < 250 {
		t.Fatalf("only %d warm cuts across 150 seeds (fallbacks: %d); warm path not exercised", totalWarm, totalFallback)
	}
}

// TestArenaPerturbRestoreByteIdentical: N successive arena cuts with
// weights perturbed and then bit-exactly restored must reproduce the
// one-shot cut's Assignment JSON byte for byte — the repeated-cut
// determinism contract the pipeline property harness relies on.
func TestArenaPerturbRestoreByteIdentical(t *testing.T) {
	t.Parallel()
	ctx := context.Background()
	g := Synthesize(SynthConfig{Nodes: 1500, Seed: 7})
	oneShot, err := g.MinCut()
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(oneShot.Assignment)
	if err != nil {
		t.Fatal(err)
	}

	type saved struct {
		a, b string
		w    float64
	}
	var orig []saved
	for _, e := range g.EdgeNames() {
		orig = append(orig, saved{e[0], e[1], g.EdgeWeight(e[0], e[1])})
	}

	a := NewCutArena()
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 5; round++ {
		for _, s := range orig {
			g.SetEdgeWeight(s.a, s.b, s.w*(0.5+rng.Float64()))
		}
		if _, err := g.MinCutArena(ctx, a); err != nil {
			t.Fatalf("round %d perturbed cut: %v", round, err)
		}
		for _, s := range orig {
			g.SetEdgeWeight(s.a, s.b, s.w)
		}
		cut, err := g.MinCutArena(ctx, a)
		if err != nil {
			t.Fatalf("round %d restored cut: %v", round, err)
		}
		got, err := json.Marshal(cut.Assignment)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("round %d: restored arena cut JSON differs from one-shot", round)
		}
	}
	if st := a.Stats(); st.Restaged != 1 {
		t.Fatalf("stats %+v: weight-only rounds must not restage", st)
	}
}

// TestArenaRestagesOnTopologyChange: edge additions, removals, new
// nodes, and pin changes invalidate the staged layout; the arena must
// detect each, restage, and still agree with the one-shot path.
func TestArenaRestagesOnTopologyChange(t *testing.T) {
	t.Parallel()
	ctx := context.Background()
	g := constrainedRandomGraph(11)
	a := NewCutArena()

	check := func(step string, wantRestaged int) {
		t.Helper()
		got, err := g.MinCutArena(ctx, a)
		if err != nil {
			t.Fatalf("%s: arena cut: %v", step, err)
		}
		want, err := g.MinCut()
		if err != nil {
			t.Fatalf("%s: one-shot: %v", step, err)
		}
		if !assignmentsEqual(got.Assignment, want.Assignment) || got.Weight != want.Weight {
			t.Fatalf("%s: arena cut differs from one-shot", step)
		}
		if st := a.Stats(); st.Restaged != wantRestaged {
			t.Fatalf("%s: stats %+v: want %d restages", step, st, wantRestaged)
		}
	}

	check("initial", 1)
	g.AddEdge("n0", "extra-node", 2.5)
	check("edge+node added", 2)
	check("unchanged after add", 2)
	g.SetEdgeWeight("n0", "extra-node", 0) // deletes the edge
	check("edge removed", 3)
	g.Pin("extra-node", SinkSide)
	check("pin added", 4)
}

// TestArenaRecoversAfterCancel: a cancelled cut leaves mid-run solver
// state behind; the next cut on the same arena must not warm-start from
// it, and must still produce the correct cut.
func TestArenaRecoversAfterCancel(t *testing.T) {
	t.Parallel()
	g := Synthesize(SynthConfig{Nodes: 3000, Seed: 3})
	a := NewCutArena()
	if _, err := g.MinCutArena(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.MinCutArena(cancelled, a); err == nil {
		t.Fatal("cut under a cancelled context succeeded")
	}
	got, err := g.MinCutArena(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	want, err := g.MinCut()
	if err != nil {
		t.Fatal(err)
	}
	if !assignmentsEqual(got.Assignment, want.Assignment) || got.Weight != want.Weight {
		t.Fatal("arena cut after cancellation differs from one-shot")
	}
}
