package graph

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// TestReplicateNeverCostlier sweeps seeded synthetic workloads and checks
// the two properties Replicate's callers rely on: cloning any eligible
// node set never increases the minimum cut (the replicated network has a
// subset of the edges), and the production cut on the replicated network
// still matches the Edmonds–Karp oracle exactly.
func TestReplicateNeverCostlier(t *testing.T) {
	t.Parallel()
	const seeds = 150
	for seed := int64(1); seed <= seeds; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			g := Synthesize(SynthConfig{
				Nodes:            40 + rng.Intn(160),
				AvgDegree:        2 + rng.Intn(5),
				PinFraction:      0.05 + 0.1*rng.Float64(),
				CoLocateFraction: 0.05 * rng.Float64(),
				Seed:             seed,
			})
			plain, err := g.MinCut()
			if err != nil {
				t.Fatal(err)
			}

			// A random slice of the node names, pinned and welded ones
			// included — Replicate must skip those itself.
			names := g.NodeNames()
			rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
			eligible := names[:1+rng.Intn(len(names))]

			rg, replicated := g.Replicate(eligible)
			for _, name := range replicated {
				if _, pinned := g.Pinned(name); pinned {
					t.Fatalf("replicated pinned node %s", name)
				}
			}
			rcut, err := rg.MinCut()
			if err != nil {
				t.Fatal(err)
			}
			tol := 1e-9 * (1 + plain.Weight)
			if rcut.Weight > plain.Weight+tol {
				t.Fatalf("replicated cut %v exceeds plain %v (replicated %d of %d eligible)",
					rcut.Weight, plain.Weight, len(replicated), len(eligible))
			}

			oracle, err := rg.MinCutEdmondsKarp()
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(oracle.Weight-rcut.Weight) > tol {
				t.Fatalf("replicated network: production cut %v != oracle %v", rcut.Weight, oracle.Weight)
			}
		})
	}
}

// TestReplicateSkipsPinnedAndWelded pins and welds specific nodes and
// checks Replicate refuses to clone them while still cloning a free one.
func TestReplicateSkipsPinnedAndWelded(t *testing.T) {
	t.Parallel()
	g := New()
	g.AddEdge("gui", "cache", 1)
	g.AddEdge("cache", "store", 2)
	g.AddEdge("cache", "pair", 3)
	g.Pin("gui", SourceSide)
	g.Pin("store", SinkSide)
	g.CoLocate("pair", "store")

	rg, replicated := g.Replicate([]string{"gui", "store", "pair", "cache", "ghost"})
	if len(replicated) != 1 || replicated[0] != "cache" {
		t.Fatalf("replicated = %v, want [cache]", replicated)
	}
	if rg.Edges() != 0 {
		t.Fatalf("cloning cache should drop all its edges, %d left", rg.Edges())
	}
	if rg.Len() != g.Len() {
		t.Fatalf("node set changed: %d != %d", rg.Len(), g.Len())
	}
	rcut, err := rg.MinCut()
	if err != nil {
		t.Fatal(err)
	}
	if rcut.Weight != 0 {
		t.Fatalf("replicated cut weight = %v, want 0", rcut.Weight)
	}
}
