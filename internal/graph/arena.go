package graph

import (
	"context"
	"fmt"
	"math"
)

// CutArena makes repeated minimum cuts cheap. Adaptive repartitioning
// re-cuts the *same topology* once per network model and per profile
// window: the node set, edge set, welds, and pins are fixed while only
// the edge pricing moves. A one-shot MinCut pays the full build every
// time — sort the arc staging, lay out the CSR arrays, allocate the
// solver scratch, run push-relabel from zero flow. The arena keeps all
// of that alive between cuts:
//
//   - the CSR arrays (head/to/rev/cap), the staged arc list, and the
//     per-pair arc index, so an unchanged topology only rewrites cap
//     instead of re-staging and re-allocating;
//   - the highest-label solver scratch (buckets, label lists, BFS
//     queues) and the source-side extraction buffers;
//   - the previous solve's residual capacities and excess vector, which
//     seed a warm start: when only weights moved, the old preflow is
//     clamped onto the new capacities (saturating or relaxing exactly
//     the arcs whose capacity changed, with a budget-capped cascade
//     repairing any node the clamp drove into deficit) and push-relabel
//     resumes from there instead of from zero flow.
//
// Soundness of the warm start: the clamp produces a feasible preflow on
// the new capacities (all residuals non-negative, conservation kept by
// the excess bookkeeping, every non-terminal excess >= 0 after repair),
// and the solver rebuilds heights from an exact reverse BFS — a valid
// labeling for any feasible preflow. Phase-1 push-relabel started from
// any valid preflow/labeling pair computes a maximum preflow, and the
// source side it induces (the nodes that cannot reach t in the residual
// network) is the same for every maximum preflow — the sink side of the
// t-minimal minimum cut — so warm and cold runs land on the identical
// partition, not merely an equally-cheap one. When the deficit-repair
// cascade exceeds its work budget (the "delta too large" case: so much
// flow must be torn up that resuming buys nothing), the arena falls
// back to a cold start on the already-rewritten capacities.
//
// An arena is NOT safe for concurrent use; give each goroutine its own.
// The zero value is ready to use.
type CutArena struct {
	staged bool // CSR arrays reflect the staged topology below
	solved bool // net.cap/st.excess hold a completed solve over capStart

	n, s, t int
	inf     float64

	// Staged topology, kept to detect whether a new cut may reuse the
	// layout: edge keys, weld keys, and pins in staging order.
	edgeKeys  [][2]int
	colocKeys [][2]int
	pinNodes  []int
	pinSides  []Side

	pairs  []csrArc // staged arc pairs, in layout order
	arcIdx []int32  // arc index of each pair's u-half (-1 for dropped self-loops)

	// Cut-extraction caches. origW holds each staged edge's raw graph
	// weight (possibly +Inf, unlike the proxy-substituted capacity), so
	// pricing the cut needs no map lookups; freeFloat marks nodes in
	// components touching no pinned node (Coign's free-floating rule),
	// a topology-only fact computed once per staging instead of running
	// a union-find over every edge on every cut.
	origW     []float64
	freeFloat []bool

	net      csrNet
	capStart []float64 // capacities the last solve started from, per arc
	deg      []int32   // layout scratch

	st      hiprState
	reach   []bool  // sourceSide scratch
	bfsq    []int32 // sourceSide scratch
	deficit []int32 // warm-start repair stack

	stats CutArenaStats
}

// CutArenaStats counts how the arena served its cuts.
type CutArenaStats struct {
	// Cuts is the total number of cuts run through the arena.
	Cuts int
	// Warm cuts resumed from the previous preflow (topology unchanged,
	// capacity delta within budget).
	Warm int
	// Cold cuts ran from zero flow on reused arrays (first cut, a solver
	// reset, or a warm-start fallback).
	Cold int
	// Restaged counts cuts that had to rebuild the staged arc list
	// because the topology changed.
	Restaged int
	// Fallbacks counts warm starts abandoned because the deficit-repair
	// cascade blew its work budget.
	Fallbacks int
}

// NewCutArena returns an empty arena.
func NewCutArena() *CutArena { return &CutArena{} }

// Stats reports the arena's cut counters.
func (a *CutArena) Stats() CutArenaStats { return a.stats }

// Reset drops the solved state and the staged topology, forcing the next
// cut to restage (array capacity is kept).
func (a *CutArena) Reset() {
	a.staged = false
	a.solved = false
}

// MinCutArena is MinCutCtx backed by a reusable arena: repeated cuts on
// an unchanged topology skip staging and allocation, and weight-only
// changes warm-start push-relabel from the previous flow. The cut
// returned is identical to MinCutCtx's on the same graph.
func (g *Graph) MinCutArena(ctx context.Context, a *CutArena) (*Cut, error) {
	return g.minCutArena(ctx, a, g.sortedPinnedNodes(), g.pinned)
}

// minCutArena runs one arena-backed cut under an explicit pin
// assignment (the multiway heuristic substitutes per-terminal pins).
func (g *Graph) minCutArena(ctx context.Context, a *CutArena, pinNodes []int, pins map[int]Side) (*Cut, error) {
	if err := g.validatePinned(pins); err != nil {
		return nil, err
	}
	a.stats.Cuts++
	warm := false
	if a.matches(g, pinNodes, pins) {
		warm = a.rewrite(g, pinNodes, pins)
	} else {
		a.restage(g, pinNodes, pins)
		a.stats.Restaged++
	}
	flow, err := a.net.maxFlowHL(ctx, &a.st, warm)
	if err != nil {
		// An aborted solve leaves the residual state mid-run; the next
		// cut must not warm-start from it.
		a.solved = false
		return nil, err
	}
	a.solved = true
	if warm {
		a.stats.Warm++
	} else {
		a.stats.Cold++
	}
	if cap(a.reach) < a.net.n {
		a.reach = make([]bool, a.net.n)
	}
	onSource := a.net.sourceSideInto(a.reach[:a.net.n], a.bfsq)
	return a.extractCut(g, onSource, flow)
}

// extractCut is the arena's cut extraction: semantically identical to
// extractCutSidesPinned (free-floating rule, sorted-order pricing of
// crossing edges under raw weights, weld-crossing rejection), but driven
// entirely by the staged arrays — no edge-key sort, no union-find, no
// name-keyed map lookups per edge. On large graphs those dominate a warm
// re-cut, where the solver itself has almost nothing left to do.
func (a *CutArena) extractCut(g *Graph, onSource []bool, flow float64) (*Cut, error) {
	cut := &Cut{Assignment: make(map[string]Side, g.Len()), FlowValue: flow}
	src := func(v int) bool { return onSource[v] || a.freeFloat[v] }
	for i, name := range g.names {
		if src(i) {
			cut.Assignment[name] = SourceSide
		} else {
			cut.Assignment[name] = SinkSide
		}
	}
	// a.edgeKeys is in sorted (lo, hi) order, so this float accumulation
	// reproduces extractCutSidesPinned's byte for byte.
	var w float64
	for i, e := range a.edgeKeys {
		if src(e[0]) != src(e[1]) {
			ew := a.origW[i]
			if math.IsInf(ew, 1) {
				return nil, fmt.Errorf("graph: minimum cut crosses a co-location constraint")
			}
			w += ew
		}
	}
	for _, e := range a.colocKeys {
		if src(e[0]) != src(e[1]) {
			return nil, fmt.Errorf("graph: minimum cut crosses a co-location constraint")
		}
	}
	cut.Weight = w
	if w > a.inf {
		return nil, fmt.Errorf("graph: cut weight %g exceeds infinity proxy %g", w, a.inf)
	}
	return cut, nil
}

// matches reports whether the staged topology is exactly the graph's
// current one (same nodes, edge keys, weld keys, and pin assignment), so
// the CSR layout can be reused with only capacities rewritten. It reads
// but never mutates the arena.
func (a *CutArena) matches(g *Graph, pinNodes []int, pins map[int]Side) bool {
	if !a.staged || a.n != g.Len()+2 ||
		len(a.edgeKeys) != len(g.edges) ||
		len(a.colocKeys) != len(g.coloc) ||
		len(a.pinNodes) != len(pinNodes) {
		return false
	}
	for _, e := range a.edgeKeys {
		if _, ok := g.edges[e]; !ok {
			return false
		}
	}
	for _, e := range a.colocKeys {
		if !g.coloc[e] {
			return false
		}
	}
	for i, v := range a.pinNodes {
		if pinNodes[i] != v || pins[v] != a.pinSides[i] {
			return false
		}
	}
	return true
}

// restage rebuilds the staged arc list and the CSR layout from the
// graph, reusing every backing array with enough capacity. The solver
// then runs cold: a changed topology invalidates the previous flow.
func (a *CutArena) restage(g *Graph, pinNodes []int, pins map[int]Side) {
	n := g.Len()
	a.n, a.s, a.t = n+2, n, n+1

	a.edgeKeys = append(a.edgeKeys[:0], g.sortedEdgeKeys()...)
	a.colocKeys = append(a.colocKeys[:0], g.sortedColocKeys()...)
	a.pinNodes = append(a.pinNodes[:0], pinNodes...)
	a.pinSides = a.pinSides[:0]
	for _, v := range pinNodes {
		a.pinSides = append(a.pinSides, pins[v])
	}

	a.inf = g.infinityProxy()
	a.pairs = a.pairs[:0]
	a.origW = a.origW[:0]
	for _, e := range a.edgeKeys {
		c := g.edges[e]
		a.origW = append(a.origW, c)
		if math.IsInf(c, 1) {
			c = a.inf
		}
		a.pairs = append(a.pairs, csrArc{u: int32(e[0]), v: int32(e[1]), capUV: c, capVU: c})
	}
	for _, e := range a.colocKeys {
		a.pairs = append(a.pairs, csrArc{u: int32(e[0]), v: int32(e[1]), capUV: a.inf, capVU: a.inf})
	}
	a.pairs = stagePins(a.pairs, a.s, a.t, a.pinNodes, pins, a.inf)
	a.layout()

	// The free-floating-component rule depends only on the topology just
	// staged: cache it so per-cut extraction is a flat array scan.
	uf := newUnionFind(n)
	for _, e := range a.edgeKeys {
		uf.union(e[0], e[1])
	}
	for _, e := range a.colocKeys {
		uf.union(e[0], e[1])
	}
	pinnedComp := make([]bool, n)
	for _, v := range a.pinNodes {
		pinnedComp[uf.find(v)] = true
	}
	if cap(a.freeFloat) < n {
		a.freeFloat = make([]bool, n)
	}
	a.freeFloat = a.freeFloat[:n]
	for i := 0; i < n; i++ {
		a.freeFloat[i] = !pinnedComp[uf.find(i)]
	}

	a.staged = true
	a.solved = false
}

// layout performs the counting-sort CSR layout of a.pairs into the
// arena-owned arrays, recording each pair's u-half arc index so capacity
// rewrites can find their slots without re-staging. Self-loop pairs are
// dropped exactly as newCSRNet drops them.
func (a *CutArena) layout() {
	n := a.n
	m := 0
	for _, p := range a.pairs {
		if p.u != p.v {
			m++
		}
	}
	grow32 := func(s []int32, n int) []int32 {
		if cap(s) < n {
			return make([]int32, n)
		}
		return s[:n]
	}
	growF := func(s []float64, n int) []float64 {
		if cap(s) < n {
			return make([]float64, n)
		}
		return s[:n]
	}
	a.net.n, a.net.s, a.net.t = a.n, a.s, a.t
	a.net.head = grow32(a.net.head, n+1)
	a.net.to = grow32(a.net.to, 2*m)
	a.net.rev = grow32(a.net.rev, 2*m)
	a.net.cap = growF(a.net.cap, 2*m)
	a.capStart = growF(a.capStart, 2*m)
	a.arcIdx = grow32(a.arcIdx, len(a.pairs))
	a.deg = grow32(a.deg, n)

	for i := range a.deg {
		a.deg[i] = 0
	}
	for _, p := range a.pairs {
		if p.u == p.v {
			continue
		}
		a.deg[p.u]++
		a.deg[p.v]++
	}
	a.net.head[0] = 0
	for i := 0; i < n; i++ {
		a.net.head[i+1] = a.net.head[i] + a.deg[i]
	}
	pos := a.deg // reuse as the write cursor
	copy(pos, a.net.head[:n])
	for i, p := range a.pairs {
		if p.u == p.v {
			a.arcIdx[i] = -1
			continue
		}
		iu, iv := pos[p.u], pos[p.v]
		pos[p.u]++
		pos[p.v]++
		a.net.to[iu], a.net.cap[iu], a.net.rev[iu] = p.v, p.capUV, iv
		a.net.to[iv], a.net.cap[iv], a.net.rev[iv] = p.u, p.capVU, iu
		a.capStart[iu], a.capStart[iv] = p.capUV, p.capVU
		a.arcIdx[i] = iu
	}
}

// warmRepairBudgetFactor bounds the deficit-repair cascade: when tearing
// up the old flow costs more than this many passes over the network, a
// cold start is cheaper and the warm start is abandoned.
const warmRepairBudgetFactor = 4

// rewrite maps the graph's current capacities onto the staged layout
// (topology already verified by matches) and reports whether the solver
// may warm-start. With a previous solve present it clamps the old flow
// onto the new capacities arc by arc — untouched capacities keep their
// residuals bit-for-bit — and repairs any deficits the clamp created;
// without one (or after a repair blowout) it resets residuals to the new
// capacities for a cold run.
func (a *CutArena) rewrite(g *Graph, pinNodes []int, pins map[int]Side) bool {
	a.inf = g.infinityProxy()
	warm := a.solved
	a.deficit = a.deficit[:0]

	newCaps := func(i int) (float64, float64) {
		switch {
		case i < len(a.edgeKeys):
			c := g.edges[a.edgeKeys[i]]
			a.origW[i] = c
			if math.IsInf(c, 1) {
				c = a.inf
			}
			return c, c
		case i < len(a.edgeKeys)+len(a.colocKeys):
			return a.inf, a.inf
		default:
			return a.inf, 0 // terminal arcs are directed
		}
	}
	for i := range a.pairs {
		au := a.arcIdx[i]
		if au < 0 {
			continue
		}
		av := a.net.rev[au]
		newUV, newVU := newCaps(i)
		a.pairs[i].capUV, a.pairs[i].capVU = newUV, newVU
		if newUV == a.capStart[au] && newVU == a.capStart[av] {
			continue // untouched: keep residuals (and any flow) bit-for-bit
		}
		if !warm {
			a.capStart[au], a.net.cap[au] = newUV, newUV
			a.capStart[av], a.net.cap[av] = newVU, newVU
			continue
		}
		// Clamp the old flow into the new capacity band. f is the signed
		// flow u->v of the previous solve; any part of it the new
		// capacities cannot carry is returned to the endpoints' excesses.
		u, v := a.pairs[i].u, a.pairs[i].v
		f := a.capStart[au] - a.net.cap[au]
		nf := f
		if nf > newUV {
			nf = newUV
		}
		if nf < -newVU {
			nf = -newVU
		}
		if nf != f {
			delta := f - nf
			a.st.excess[u] += delta
			a.st.excess[v] -= delta
			if int(v) != a.s && int(v) != a.t && a.st.excess[v] < -capEps {
				a.deficit = append(a.deficit, v)
			}
			if int(u) != a.s && int(u) != a.t && a.st.excess[u] < -capEps {
				a.deficit = append(a.deficit, u)
			}
		}
		a.net.cap[au] = newUV - nf
		a.net.cap[av] = newVU + nf
		a.capStart[au], a.capStart[av] = newUV, newVU
	}
	if !warm {
		return false
	}
	if !a.repairDeficits() {
		// Blown budget: tear-up too large, resume is not worth it. The
		// capacities in capStart are already the new ones; reset the
		// residuals to them and run cold.
		a.stats.Fallbacks++
		copy(a.net.cap, a.capStart)
		return false
	}
	return true
}

// repairDeficits restores the preflow invariant after capacity clamps: a
// node driven below zero excess pulls back its own outgoing flow, which
// may push the deficit one hop downstream until it is absorbed by
// positive excess or reaches a terminal. Every non-terminal deficit can
// be repaired locally — a deficit means outflow exceeds inflow, so there
// is always enough outgoing flow to cancel — and each cancellation
// monotonically reduces total flow, so the cascade terminates; the work
// budget bounds the pathological flow-cycle case and triggers the cold
// fallback instead of grinding.
func (a *CutArena) repairDeficits() bool {
	if len(a.deficit) == 0 {
		return true
	}
	f := &a.net
	budget := warmRepairBudgetFactor * (f.n + len(f.to))
	work := 0
	for len(a.deficit) > 0 {
		v := a.deficit[len(a.deficit)-1]
		a.deficit = a.deficit[:len(a.deficit)-1]
		for a.st.excess[v] < -capEps {
			progressed := false
			for arc := f.head[v]; arc < f.head[v+1] && a.st.excess[v] < -capEps; arc++ {
				work++
				fl := a.capStart[arc] - f.cap[arc] // flow v -> to[arc]
				if fl <= capEps {
					continue
				}
				d := -a.st.excess[v]
				if fl < d {
					d = fl
				}
				f.cap[arc] += d
				f.cap[f.rev[arc]] -= d
				a.st.excess[v] += d
				w := f.to[arc]
				a.st.excess[w] -= d
				progressed = true
				if int(w) != f.s && int(w) != f.t && a.st.excess[w] < -capEps {
					a.deficit = append(a.deficit, w)
				}
			}
			if work > budget {
				return false
			}
			if !progressed {
				// No outgoing flow left to pull back; cannot happen for a
				// consistent preflow, but never spin on float dust.
				return false
			}
		}
	}
	return true
}
