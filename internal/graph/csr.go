package graph

import "math"

// The CSR (compressed sparse row) flow network is the production data
// structure for the cut engine. The legacy adjacency-list network
// (mincut.go) allocates one slice per node and chases pointers across
// them; at the multi-thousand-node ICC graphs the paper's applications
// produce (§2, §5) that dominates the cut's wall time. The CSR network is
// four flat arrays built once per cut — arc targets, reverse-arc indices,
// residual capacities, and per-node offsets — so discharge loops scan
// contiguous memory and the whole residual state fits a few cache-resident
// allocations. Repeated cuts on one topology reuse the arrays through a
// CutArena (arena.go) instead of rebuilding them.

// csrNet is a residual flow network in compressed sparse row form.
// Arcs of node u occupy the half-open range head[u]..head[u+1] in to, rev,
// and cap. rev[a] is the absolute index of arc a's reverse arc, with
// rev[rev[a]] == a.
type csrNet struct {
	n    int // node count including both terminals
	s, t int
	head []int32
	to   []int32
	rev  []int32
	cap  []float64
}

// csrArc is one undirected or directed capacity pair staged before CSR
// layout: capUV flows u->v, capVU flows v->u (zero for a directed arc's
// residual).
type csrArc struct {
	u, v         int32
	capUV, capVU float64
}

// newCSRNet lays out the staged arc pairs in compressed sparse row form.
// Self-loop pairs (u == v) are dropped at staging: a u->u arc can never
// cross a cut, and laying one out would corrupt the reverse-arc pairing —
// both halves read the same position slot before either increments it, so
// both land on one index and the adjacent slot is left zeroed with a
// dangling rev pointer.
func newCSRNet(n, s, t int, pairs []csrArc) *csrNet {
	m := 0
	for _, p := range pairs {
		if p.u != p.v {
			m++
		}
	}
	f := &csrNet{
		n:    n,
		s:    s,
		t:    t,
		head: make([]int32, n+1),
		to:   make([]int32, 2*m),
		rev:  make([]int32, 2*m),
		cap:  make([]float64, 2*m),
	}
	deg := make([]int32, n)
	for _, p := range pairs {
		if p.u == p.v {
			continue
		}
		deg[p.u]++
		deg[p.v]++
	}
	for i := 0; i < n; i++ {
		f.head[i+1] = f.head[i] + deg[i]
	}
	pos := make([]int32, n)
	copy(pos, f.head[:n])
	for _, p := range pairs {
		if p.u == p.v {
			continue
		}
		iu, iv := pos[p.u], pos[p.v]
		pos[p.u]++
		pos[p.v]++
		f.to[iu], f.cap[iu], f.rev[iu] = p.v, p.capUV, iv
		f.to[iv], f.cap[iv], f.rev[iv] = p.u, p.capVU, iu
	}
	return f
}

// stageBase stages the pin-independent arc pairs — communication edges
// and co-location welds — in sorted order, plus the infinity proxy that
// stands in for unsplittable capacities. The sorted order makes the
// network layout, and with it the particular minimum cut the algorithm
// lands on when several tie, identical run to run: map-order layout made
// equal-cost cuts flip between runs, which broke byte-stable JSON
// artifacts. Multiway cuts stage this list once and share it across all
// k isolating cuts, appending only the per-terminal pin arcs.
func (g *Graph) stageBase() ([]csrArc, float64) {
	inf := g.infinityProxy()
	pairs := make([]csrArc, 0, len(g.edges)+len(g.coloc)+len(g.pinned))
	for _, e := range g.sortedEdgeKeys() {
		c := g.edges[e]
		if math.IsInf(c, 1) {
			c = inf
		}
		pairs = append(pairs, csrArc{u: int32(e[0]), v: int32(e[1]), capUV: c, capVU: c})
	}
	for _, e := range g.sortedColocKeys() {
		pairs = append(pairs, csrArc{u: int32(e[0]), v: int32(e[1]), capUV: inf, capVU: inf})
	}
	return pairs, inf
}

// stagePins appends the terminal arcs for the given pin assignment: one
// infinite-capacity directed arc from the source terminal to every
// client-pinned node, and from every server-pinned node to the sink.
func stagePins(pairs []csrArc, s, t int, nodes []int, sides map[int]Side, inf float64) []csrArc {
	for _, v := range nodes {
		if sides[v] == SourceSide {
			pairs = append(pairs, csrArc{u: int32(s), v: int32(v), capUV: inf})
		} else {
			pairs = append(pairs, csrArc{u: int32(v), v: int32(t), capUV: inf})
		}
	}
	return pairs
}

// buildCSR constructs the CSR flow network for a two-way cut: graph nodes
// plus a source terminal (client) and sink terminal (server). Pins become
// infinite-capacity terminal arcs, co-location constraints become
// infinite-capacity node-to-node arcs, and infinite edge weights are
// replaced by the finite infinity proxy.
func (g *Graph) buildCSR() (*csrNet, float64) {
	n := g.Len()
	s, t := n, n+1
	pairs, inf := g.stageBase()
	pairs = stagePins(pairs, s, t, g.sortedPinnedNodes(), g.pinned, inf)
	return newCSRNet(n+2, s, t, pairs), inf
}

// sourceSide returns, for every node, whether it lands on the source side
// of the minimum cut after a phase-1 (max-preflow) run: the nodes that
// cannot reach t in the residual network. This is exact after phase 1
// alone — every arc crossing out of the non-reaching set is saturated and
// no flow crosses back, so the cut's capacity equals the preflow value at
// t — which is why the highest-label core never needs the second
// (excess-return) phase. The partition is also the same for every maximum
// preflow on the network (the sink side of the t-minimal minimum cut), so
// warm-started and cold runs agree on it even when several cuts tie.
func (f *csrNet) sourceSide() []bool {
	return f.sourceSideInto(make([]bool, f.n), make([]int32, 0, f.n))
}

// sourceSideInto is sourceSide over caller-owned scratch, so an arena can
// extract repeated cuts without re-allocating the BFS state.
func (f *csrNet) sourceSideInto(reachesT []bool, queue []int32) []bool {
	reachesT = reachesT[:f.n]
	for i := range reachesT {
		reachesT[i] = false
	}
	queue = append(queue[:0], int32(f.t))
	reachesT[f.t] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for a := f.head[u]; a < f.head[u+1]; a++ {
			// to[a] reaches u iff residual(to[a] -> u) > 0.
			v := f.to[a]
			if !reachesT[v] && f.cap[f.rev[a]] > capEps {
				reachesT[v] = true
				queue = append(queue, v)
			}
		}
	}
	onSource := make([]bool, f.n)
	for i := range onSource {
		onSource[i] = !reachesT[i]
	}
	return onSource
}
