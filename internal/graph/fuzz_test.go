package graph

import (
	"math"
	"testing"
)

// FuzzCSRBuilder decodes arbitrary bytes into a sequence of graph
// operations (add-edge, pin, co-locate), builds the CSR flow network, and
// checks its structural invariants: the reverse-arc mapping is an
// involution, every arc's reverse lives in the target node's row, offsets
// are monotone and cover every arc exactly once, and capacities are
// non-negative. If the resulting instance validates, the production cut
// must also agree with the Edmonds–Karp oracle.
func FuzzCSRBuilder(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 10, 1, 2, 20, 0x40, 0, 0x41, 2, 0x80, 1, 2})
	f.Add([]byte{0, 0, 5, 3, 3, 0, 0x40, 7, 0x80, 7, 7})
	f.Add([]byte{9, 2, 255, 0x80, 9, 2, 0x41, 9, 0x40, 2})
	// Self-loop seed: decoded as raw arc pairs below, the leading (3,3)
	// triple stages a u==v pair straight into newCSRNet — the corruption
	// path Graph ops can never reach because AddEdge/CoLocate filter
	// self-edges before staging.
	f.Add([]byte{3, 3, 50, 1, 2, 30, 5, 5, 99, 2, 3, 10})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Phase 1: the same bytes as raw csrArc pairs, u == v allowed, so
		// the staging-level self-loop filter is fuzzed directly. Dropping
		// self-loops must leave a network byte-identical to one staged
		// from the pre-filtered pair list.
		var raw, filtered []csrArc
		for i := 0; i+2 < len(data); i += 3 {
			p := csrArc{
				u: int32(data[i] % 8), v: int32(data[i+1] % 8),
				capUV: float64(data[i+2]) * 0.01, capVU: float64(data[i+2]) * 0.01,
			}
			raw = append(raw, p)
			if p.u != p.v {
				filtered = append(filtered, p)
			}
		}
		rawNet := newCSRNet(10, 8, 9, raw)
		cleanNet := newCSRNet(10, 8, 9, filtered)
		if len(rawNet.to) != len(cleanNet.to) {
			t.Fatalf("self-loop staging changed arc count: %d vs %d", len(rawNet.to), len(cleanNet.to))
		}
		for a := range rawNet.to {
			if rawNet.to[a] != cleanNet.to[a] || rawNet.rev[a] != cleanNet.rev[a] || rawNet.cap[a] != cleanNet.cap[a] {
				t.Fatalf("arc %d differs between raw and pre-filtered staging", a)
			}
			if int(rawNet.rev[rawNet.rev[a]]) != a {
				t.Fatalf("rev not an involution at arc %d", a)
			}
		}

		// Phase 2: the bytes as graph operations, as before.
		g := New()
		nodeOf := func(b byte) string { return synthName(int(b % 16)) }
		for i := 0; i+1 < len(data); {
			op := data[i]
			switch {
			case op == 0x40 || op == 0x41: // pin client / server
				g.Pin(nodeOf(data[i+1]), Side(op&1))
				i += 2
			case op == 0x80 && i+2 < len(data): // co-locate
				g.CoLocate(nodeOf(data[i+1]), nodeOf(data[i+2]))
				i += 3
			case i+2 < len(data): // edge with weight from the third byte
				g.AddEdge(nodeOf(op), nodeOf(data[i+1]), float64(data[i+2])*0.01)
				i += 3
			default:
				i = len(data)
			}
		}

		net, inf := g.buildCSR()
		if net.n != g.Len()+2 {
			t.Fatalf("node count %d, want %d", net.n, g.Len()+2)
		}
		if len(net.head) != net.n+1 || int(net.head[0]) != 0 || int(net.head[net.n]) != len(net.to) {
			t.Fatalf("head bounds broken: %d..%d over %d arcs", net.head[0], net.head[net.n], len(net.to))
		}
		if len(net.rev) != len(net.to) || len(net.cap) != len(net.to) {
			t.Fatal("parallel arc arrays disagree on length")
		}
		owner := make([]int32, len(net.to))
		for u := 0; u < net.n; u++ {
			if net.head[u] > net.head[u+1] {
				t.Fatalf("head not monotone at node %d", u)
			}
			for a := net.head[u]; a < net.head[u+1]; a++ {
				owner[a] = int32(u)
			}
		}
		for a := range net.to {
			r := net.rev[a]
			if int(net.rev[r]) != a {
				t.Fatalf("rev not an involution at arc %d", a)
			}
			if owner[r] != net.to[a] || net.to[r] != owner[a] {
				t.Fatalf("arc %d: reverse arc lives in node %d, target is %d", a, owner[r], net.to[a])
			}
			if net.cap[a] < 0 || math.IsNaN(net.cap[a]) || net.cap[a] > inf {
				t.Fatalf("arc %d: capacity %v out of range", a, net.cap[a])
			}
		}

		if g.Validate() != nil {
			return
		}
		hl, err := g.MinCut()
		if err != nil {
			// Feasible pins/welds can still force an unsplittable pair
			// across the cut via a chain of pinned welds plus direct edges;
			// both algorithms must agree that is an error.
			if _, ekErr := g.MinCutEdmondsKarp(); ekErr == nil {
				t.Fatalf("hl failed (%v) but oracle succeeded", err)
			}
			return
		}
		ek, err := g.MinCutEdmondsKarp()
		if err != nil {
			t.Fatalf("hl succeeded but oracle failed: %v", err)
		}
		if math.Abs(hl.Weight-ek.Weight) > 1e-6*(1+hl.Weight) {
			t.Fatalf("weights diverge: hl=%v ek=%v", hl.Weight, ek.Weight)
		}
	})
}
