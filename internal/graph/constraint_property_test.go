package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomGraph builds a connected random graph with a pinned source node
// "n0" and sink node "n1".
func randomGraph(r *rand.Rand, nodes int) *Graph {
	g := New()
	for i := 0; i < nodes; i++ {
		g.Node(fmt.Sprintf("n%d", i))
	}
	g.Pin("n0", SourceSide)
	g.Pin("n1", SinkSide)
	// A spanning chain keeps the graph connected, then random extra edges.
	for i := 1; i < nodes; i++ {
		g.AddEdge(fmt.Sprintf("n%d", r.Intn(i)), fmt.Sprintf("n%d", i), 0.1+r.Float64())
	}
	for e := 0; e < nodes*2; e++ {
		a, b := r.Intn(nodes), r.Intn(nodes)
		if a == b {
			continue
		}
		g.AddEdge(fmt.Sprintf("n%d", a), fmt.Sprintf("n%d", b), 0.1+r.Float64())
	}
	return g
}

// TestCoLocationNeverDecreasesCutCost is the monotonicity property of
// constraint addition: welding two nodes together restricts the feasible
// cuts, so the minimum can only stay or grow — never improve.
func TestCoLocationNeverDecreasesCutCost(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		nodes := 4 + r.Intn(12)
		g := randomGraph(r, nodes)
		base, err := g.MinCut()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// Rebuild the identical graph, then add a random co-location.
		welded := randomGraphCopy(g)
		a, b := fmt.Sprintf("n%d", r.Intn(nodes)), fmt.Sprintf("n%d", r.Intn(nodes))
		welded.CoLocate(a, b)
		if welded.Validate() != nil {
			continue // contradictory with the pins; not a feasible constraint
		}
		cut, err := welded.MinCut()
		if err != nil {
			t.Fatalf("trial %d: welded cut: %v", trial, err)
		}
		if cut.Weight < base.Weight-1e-9 {
			t.Fatalf("trial %d: co-locating %s,%s decreased cut cost %.6f -> %.6f",
				trial, a, b, base.Weight, cut.Weight)
		}
	}
}

// randomGraphCopy clones nodes, finite edges, and pins of a graph.
func randomGraphCopy(g *Graph) *Graph {
	c := New()
	for i := 0; i < g.Len(); i++ {
		name := g.Name(i)
		c.Node(name)
		if s, ok := g.Pinned(name); ok {
			c.Pin(name, s)
		}
	}
	for i := 0; i < g.Len(); i++ {
		for j := i + 1; j < g.Len(); j++ {
			if w := g.EdgeWeight(g.Name(i), g.Name(j)); w > 0 {
				c.AddEdge(g.Name(i), g.Name(j), w)
			}
		}
	}
	return c
}

// TestMultiwayPinnedNodesStayPut: whatever the isolation heuristic does
// with free nodes, every pinned node must land on its own machine.
func TestMultiwayPinnedNodesStayPut(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(23))
	machines := []string{"client", "server", "middle"}
	for trial := 0; trial < 40; trial++ {
		nodes := 6 + r.Intn(12)
		g := New()
		for i := 0; i < nodes; i++ {
			g.Node(fmt.Sprintf("n%d", i))
		}
		for i := 1; i < nodes; i++ {
			g.AddEdge(fmt.Sprintf("n%d", r.Intn(i)), fmt.Sprintf("n%d", i), 0.1+r.Float64())
		}
		for e := 0; e < nodes; e++ {
			a, b := r.Intn(nodes), r.Intn(nodes)
			if a != b {
				g.AddEdge(fmt.Sprintf("n%d", a), fmt.Sprintf("n%d", b), 0.1+r.Float64())
			}
		}
		// One distinct pinned node per machine.
		terminals := make([]MultiwayTerminal, len(machines))
		for mi, m := range machines {
			terminals[mi] = MultiwayTerminal{Machine: m, Pinned: []string{fmt.Sprintf("n%d", mi)}}
		}
		assign, _, err := g.MultiwayCut(terminals)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for mi, m := range machines {
			node := fmt.Sprintf("n%d", mi)
			if got := assign[node]; got != m {
				t.Fatalf("trial %d: pinned node %s assigned to %q, want %q", trial, node, got, m)
			}
		}
		// Every node must be assigned to some known machine.
		for i := 0; i < nodes; i++ {
			m := assign[fmt.Sprintf("n%d", i)]
			known := false
			for _, want := range machines {
				if m == want {
					known = true
				}
			}
			if !known {
				t.Fatalf("trial %d: node n%d assigned to unknown machine %q", trial, i, m)
			}
		}
	}
}
