package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNodeInterning(t *testing.T) {
	t.Parallel()
	g := New()
	a := g.Node("a")
	if g.Node("a") != a {
		t.Error("re-interning changed index")
	}
	b := g.Node("b")
	if a == b || g.Len() != 2 {
		t.Errorf("indices %d %d len %d", a, b, g.Len())
	}
	if g.Name(a) != "a" || !g.HasNode("b") || g.HasNode("c") {
		t.Error("name/has broken")
	}
}

func TestAddEdgeAccumulates(t *testing.T) {
	t.Parallel()
	g := New()
	g.AddEdge("a", "b", 1.5)
	g.AddEdge("b", "a", 2.5) // undirected: same edge
	if got := g.EdgeWeight("a", "b"); got != 4 {
		t.Errorf("weight = %v", got)
	}
	if g.Edges() != 1 {
		t.Errorf("edges = %d", g.Edges())
	}
	g.AddEdge("a", "a", 9) // self edge ignored
	g.AddEdge("a", "c", 0) // zero weight ignored
	g.AddEdge("a", "d", -1)
	if g.Edges() != 1 || g.TotalWeight() != 4 {
		t.Errorf("after ignored edges: %d edges, weight %v", g.Edges(), g.TotalWeight())
	}
	if g.EdgeWeight("x", "y") != 0 || g.EdgeWeight("a", "x") != 0 {
		t.Error("missing edge weight nonzero")
	}
}

func TestPinAndValidate(t *testing.T) {
	t.Parallel()
	g := New()
	g.Pin("gui", SourceSide)
	g.Pin("db", SinkSide)
	if s, ok := g.Pinned("gui"); !ok || s != SourceSide {
		t.Error("pin lost")
	}
	if _, ok := g.Pinned("nothing"); ok {
		t.Error("phantom pin")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("valid graph rejected: %v", err)
	}
	g.CoLocate("gui", "db")
	if err := g.Validate(); err == nil {
		t.Error("contradictory constraints accepted")
	}
}

// simpleCut builds the canonical small example:
//
//	client* --10-- a --1-- b --10-- server*
//
// The minimum cut severs the a-b edge (weight 1).
func simpleCut(t *testing.T, f func(*Graph) (*Cut, error)) *Cut {
	t.Helper()
	g := New()
	g.AddEdge("client", "a", 10)
	g.AddEdge("a", "b", 1)
	g.AddEdge("b", "server", 10)
	g.Pin("client", SourceSide)
	g.Pin("server", SinkSide)
	cut, err := f(g)
	if err != nil {
		t.Fatal(err)
	}
	return cut
}

func TestMinCutSimple(t *testing.T) {
	t.Parallel()
	for name, algo := range map[string]func(*Graph) (*Cut, error){
		"lift-to-front": (*Graph).MinCut,
		"edmonds-karp":  (*Graph).MinCutEdmondsKarp,
	} {
		cut := simpleCut(t, algo)
		if cut.Weight != 1 {
			t.Errorf("%s: weight = %v, want 1", name, cut.Weight)
		}
		if math.Abs(cut.FlowValue-cut.Weight) > 1e-9 {
			t.Errorf("%s: flow %v != weight %v", name, cut.FlowValue, cut.Weight)
		}
		want := map[string]Side{"client": SourceSide, "a": SourceSide, "b": SinkSide, "server": SinkSide}
		for n, s := range want {
			if cut.Assignment[n] != s {
				t.Errorf("%s: %s on %v, want %v", name, n, cut.Assignment[n], s)
			}
		}
		if cut.Count(SourceSide) != 2 || cut.Count(SinkSide) != 2 {
			t.Errorf("%s: counts %d/%d", name, cut.Count(SourceSide), cut.Count(SinkSide))
		}
		srcs := cut.NodesOn(SourceSide)
		if len(srcs) != 2 || srcs[0] != "a" || srcs[1] != "client" {
			t.Errorf("%s: NodesOn = %v", name, srcs)
		}
	}
}

func TestMinCutRespectsCoLocation(t *testing.T) {
	t.Parallel()
	// Without co-location, b is cheap to strand on the server; with
	// co-location b must follow a to the client.
	build := func(colocate bool) *Graph {
		g := New()
		g.Pin("client", SourceSide)
		g.Pin("server", SinkSide)
		g.AddEdge("client", "a", 10)
		g.AddEdge("a", "b", 1)
		g.AddEdge("b", "server", 2)
		if colocate {
			g.CoLocate("a", "b")
		}
		return g
	}
	cut, err := build(false).MinCut()
	if err != nil {
		t.Fatal(err)
	}
	if cut.Assignment["b"] != SinkSide || cut.Weight != 1 {
		t.Errorf("uncolocated: b=%v weight=%v", cut.Assignment["b"], cut.Weight)
	}
	cut, err = build(true).MinCut()
	if err != nil {
		t.Fatal(err)
	}
	if cut.Assignment["b"] != SourceSide || cut.Weight != 2 {
		t.Errorf("colocated: b=%v weight=%v", cut.Assignment["b"], cut.Weight)
	}
}

func TestMinCutFreeComponentGoesToClient(t *testing.T) {
	t.Parallel()
	g := New()
	g.Pin("client", SourceSide)
	g.Pin("server", SinkSide)
	g.AddEdge("client", "server", 3)
	g.AddEdge("float1", "float2", 5) // touches no terminal
	g.Node("lonely")                 // no edges at all
	cut, err := g.MinCut()
	if err != nil {
		t.Fatal(err)
	}
	if cut.Assignment["float1"] != SourceSide || cut.Assignment["float2"] != SourceSide {
		t.Error("floating component not on client")
	}
	if cut.Assignment["lonely"] != SourceSide {
		t.Error("isolated node not on client")
	}
	if cut.Weight != 3 {
		t.Errorf("weight = %v", cut.Weight)
	}
}

func TestMinCutUnsatisfiable(t *testing.T) {
	t.Parallel()
	g := New()
	g.Pin("a", SourceSide)
	g.Pin("b", SinkSide)
	g.CoLocate("a", "b")
	if _, err := g.MinCut(); err == nil {
		t.Fatal("unsatisfiable instance cut")
	}
}

func TestEvaluateAssignment(t *testing.T) {
	t.Parallel()
	g := New()
	g.AddEdge("a", "b", 2)
	g.AddEdge("b", "c", 3)
	assign := map[string]Side{"a": SourceSide, "b": SourceSide, "c": SinkSide}
	if got := g.EvaluateAssignment(assign); got != 3 {
		t.Errorf("Evaluate = %v", got)
	}
	// Missing nodes default to source.
	if got := g.EvaluateAssignment(map[string]Side{"c": SinkSide}); got != 3 {
		t.Errorf("Evaluate with defaults = %v", got)
	}
	g.CoLocate("a", "b")
	bad := map[string]Side{"a": SourceSide, "b": SinkSide}
	if got := g.EvaluateAssignment(bad); !math.IsInf(got, 1) {
		t.Errorf("crossing co-location = %v", got)
	}
}

func TestAllOn(t *testing.T) {
	t.Parallel()
	g := New()
	g.AddEdge("a", "b", 1)
	g.Pin("srv", SinkSide)
	assign := g.AllOn(SourceSide)
	if assign["a"] != SourceSide || assign["b"] != SourceSide || assign["srv"] != SinkSide {
		t.Errorf("AllOn = %v", assign)
	}
}

func TestMinCutOptimalOverBruteForce(t *testing.T) {
	t.Parallel()
	// Exhaustively verify optimality on random small graphs.
	rng := rand.New(rand.NewSource(11))
	names := []string{"n0", "n1", "n2", "n3", "n4", "n5"}
	for trial := 0; trial < 60; trial++ {
		g := New()
		g.Pin("s", SourceSide)
		g.Pin("t", SinkSide)
		all := append([]string{"s", "t"}, names...)
		for i := 0; i < len(all); i++ {
			for j := i + 1; j < len(all); j++ {
				if rng.Intn(3) != 0 {
					g.AddEdge(all[i], all[j], float64(1+rng.Intn(9)))
				}
			}
		}
		cut, err := g.MinCut()
		if err != nil {
			t.Fatal(err)
		}
		// Brute force over free nodes.
		best := math.Inf(1)
		for mask := 0; mask < 1<<len(names); mask++ {
			assign := map[string]Side{"s": SourceSide, "t": SinkSide}
			for b, n := range names {
				if mask&(1<<b) != 0 {
					assign[n] = SinkSide
				} else {
					assign[n] = SourceSide
				}
			}
			if w := g.EvaluateAssignment(assign); w < best {
				best = w
			}
		}
		if math.Abs(cut.Weight-best) > 1e-9 {
			t.Fatalf("trial %d: lift-to-front %v vs brute force %v", trial, cut.Weight, best)
		}
		ek, err := g.MinCutEdmondsKarp()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ek.Weight-best) > 1e-9 {
			t.Fatalf("trial %d: edmonds-karp %v vs brute force %v", trial, ek.Weight, best)
		}
	}
}

func TestPropertyTwoAlgorithmsAgree(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		g.Pin("s", SourceSide)
		g.Pin("t", SinkSide)
		n := 4 + rng.Intn(12)
		nodes := []string{"s", "t"}
		for i := 0; i < n; i++ {
			nodes = append(nodes, string(rune('a'+i)))
		}
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				if rng.Intn(2) == 0 {
					g.AddEdge(nodes[i], nodes[j], rng.Float64()*10)
				}
			}
		}
		a, err := g.MinCut()
		if err != nil {
			return false
		}
		b, err := g.MinCutEdmondsKarp()
		if err != nil {
			return false
		}
		if math.Abs(a.Weight-b.Weight) > 1e-6 {
			return false
		}
		// The cut's weight equals the evaluation of its own assignment.
		return math.Abs(g.EvaluateAssignment(a.Assignment)-a.Weight) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCutNeverWorseThanDefault(t *testing.T) {
	t.Parallel()
	// Coign never chooses a worse distribution than the default: the
	// minimum cut is at most the cost of the all-on-client assignment.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		g.Pin("s", SourceSide)
		g.Pin("t", SinkSide)
		for i := 0; i < 10; i++ {
			a := string(rune('a' + rng.Intn(8)))
			b := string(rune('a' + rng.Intn(8)))
			g.AddEdge(a, b, rng.Float64()*5)
			if rng.Intn(4) == 0 {
				g.AddEdge("s", a, rng.Float64()*5)
			}
			if rng.Intn(4) == 0 {
				g.AddEdge(b, "t", rng.Float64()*5)
			}
		}
		cut, err := g.MinCut()
		if err != nil {
			return false
		}
		def := g.EvaluateAssignment(g.AllOn(SourceSide))
		return cut.Weight <= def+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMultiwayCutThreeTerminals(t *testing.T) {
	t.Parallel()
	// Three clusters, each hanging off its own terminal with heavy
	// internal edges and light cross edges.
	g := New()
	clusters := map[string][]string{
		"client": {"c1", "c2"},
		"middle": {"m1", "m2"},
		"server": {"s1", "s2"},
	}
	for term, nodes := range clusters {
		for _, n := range nodes {
			g.AddEdge(term, n, 100)
		}
	}
	g.AddEdge("c1", "m1", 1)
	g.AddEdge("m2", "s1", 1)
	g.AddEdge("c2", "s2", 1)
	assign, w, err := g.MultiwayCut([]MultiwayTerminal{
		{Machine: "client", Pinned: []string{"client"}},
		{Machine: "middle", Pinned: []string{"middle"}},
		{Machine: "server", Pinned: []string{"server"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for term, nodes := range clusters {
		for _, n := range nodes {
			if assign[n] != term {
				t.Errorf("%s assigned to %s, want %s", n, assign[n], term)
			}
		}
	}
	if w != 3 {
		t.Errorf("multiway weight = %v, want 3", w)
	}
}

func TestMultiwayCutErrors(t *testing.T) {
	t.Parallel()
	g := New()
	g.AddEdge("a", "b", 1)
	if _, _, err := g.MultiwayCut([]MultiwayTerminal{{Machine: "x", Pinned: []string{"a"}}}); err == nil {
		t.Fatal("single terminal accepted")
	}
}

func TestMultiwayCutTwoTerminalsMatchesMinCut(t *testing.T) {
	t.Parallel()
	g := New()
	g.Pin("s", SourceSide)
	g.Pin("t", SinkSide)
	g.AddEdge("s", "a", 10)
	g.AddEdge("a", "b", 1)
	g.AddEdge("b", "t", 10)
	cut, err := g.MinCut()
	if err != nil {
		t.Fatal(err)
	}
	assign, w, err := g.MultiwayCut([]MultiwayTerminal{
		{Machine: "client", Pinned: []string{"s"}},
		{Machine: "server", Pinned: []string{"t"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-cut.Weight) > 1e-9 {
		t.Errorf("multiway %v vs mincut %v", w, cut.Weight)
	}
	if assign["a"] != "client" || assign["b"] != "server" {
		t.Errorf("assignment = %v", assign)
	}
}

func TestLargeGraphPerformanceSanity(t *testing.T) {
	t.Parallel()
	// The paper's largest graphs have a few thousand classifications; the
	// cut must be fast at that scale.
	rng := rand.New(rand.NewSource(5))
	g := New()
	g.Pin("s", SourceSide)
	g.Pin("t", SinkSide)
	const n = 2000
	for i := 0; i < n; i++ {
		name := nodeName(i)
		if i%17 == 0 {
			g.AddEdge("s", name, rng.Float64()*10)
		}
		if i%23 == 0 {
			g.AddEdge(name, "t", rng.Float64()*10)
		}
		for k := 0; k < 3; k++ {
			g.AddEdge(name, nodeName(rng.Intn(n)), rng.Float64())
		}
	}
	cut, err := g.MinCut()
	if err != nil {
		t.Fatal(err)
	}
	ek, err := g.MinCutEdmondsKarp()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cut.Weight-ek.Weight) > 1e-6*(1+cut.Weight) {
		t.Errorf("large graph: %v vs %v", cut.Weight, ek.Weight)
	}
}

func nodeName(i int) string {
	return "n" + string(rune('A'+i%26)) + string(rune('A'+(i/26)%26)) + string(rune('A'+(i/676)%26)) + string(rune('0'+i%10))
}
