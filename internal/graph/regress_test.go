package graph

import (
	"math"
	"strings"
	"testing"
)

// Regression: CoLocate used to overwrite the accumulated finite edge
// weight with +Inf, corrupting TotalWeight, EdgeWeight, and any later
// AddEdge accumulation on the pair. The constraint now lives in a side
// table and the communication weight survives.
func TestCoLocateKeepsAccumulatedWeight(t *testing.T) {
	t.Parallel()
	g := New()
	g.AddEdge("a", "b", 2.5)
	g.CoLocate("a", "b")
	if got := g.EdgeWeight("a", "b"); got != 2.5 {
		t.Errorf("EdgeWeight after CoLocate = %v, want 2.5", got)
	}
	if got := g.TotalWeight(); got != 2.5 {
		t.Errorf("TotalWeight after CoLocate = %v, want 2.5", got)
	}
	// Accumulation on the pair keeps working after the weld.
	g.AddEdge("b", "a", 1.5)
	if got := g.EdgeWeight("a", "b"); got != 4 {
		t.Errorf("EdgeWeight after post-weld AddEdge = %v, want 4", got)
	}
	if math.IsInf(g.TotalWeight(), 1) {
		t.Error("TotalWeight is infinite")
	}
	// Welding first and pricing later also preserves the weight.
	g2 := New()
	g2.CoLocate("x", "y")
	g2.AddEdge("x", "y", 3)
	if got := g2.EdgeWeight("x", "y"); got != 3 {
		t.Errorf("EdgeWeight weld-then-price = %v, want 3", got)
	}
	if !g2.CoLocated("x", "y") || !g2.CoLocated("y", "x") {
		t.Error("CoLocated lost the constraint")
	}
	if g2.CoLocated("x", "z") || g2.CoLocated("nope", "x") {
		t.Error("CoLocated invented a constraint")
	}
	if g2.CoLocations() != 1 {
		t.Errorf("CoLocations = %d, want 1", g2.CoLocations())
	}
}

// Regression: Validate only rejected *directly* co-located nodes pinned to
// different machines; a transitive chain (A weld B, B weld C, A pinned
// client, C pinned server) passed validation and failed only deep inside
// cut extraction. Validation is now transitive via union-find.
func TestValidateTransitiveCoLocationChain(t *testing.T) {
	t.Parallel()
	g := New()
	g.Pin("a", SourceSide)
	g.Pin("c", SinkSide)
	g.CoLocate("a", "b")
	g.CoLocate("b", "c")
	err := g.Validate()
	if err == nil {
		t.Fatal("transitive contradictory chain passed Validate")
	}
	if !strings.Contains(err.Error(), "co-located") {
		t.Errorf("unexpected error: %v", err)
	}
	if _, err := g.MinCut(); err == nil {
		t.Fatal("transitive contradictory chain cut anyway")
	}
	// A longer feasible chain stays accepted and welds all four nodes.
	g2 := New()
	g2.Pin("a", SourceSide)
	g2.Pin("srv", SinkSide)
	g2.AddEdge("d", "srv", 2)
	g2.CoLocate("a", "b")
	g2.CoLocate("b", "c")
	g2.CoLocate("c", "d")
	if err := g2.Validate(); err != nil {
		t.Fatalf("feasible chain rejected: %v", err)
	}
	cut, err := g2.MinCut()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"b", "c", "d"} {
		if cut.Assignment[n] != SourceSide {
			t.Errorf("chained node %s not welded to pinned a: %v", n, cut.Assignment[n])
		}
	}
	if cut.Weight != 2 {
		t.Errorf("chain cut weight = %v, want 2", cut.Weight)
	}
}

// The co-location side table must keep behaving like the old infinite
// edge for assignment evaluation: splitting the pair is infinitely
// expensive, while the detailed evaluator reports the true finite price
// plus an explicit violation count.
func TestEvaluateAssignmentDetailSeparatesViolations(t *testing.T) {
	t.Parallel()
	g := New()
	g.AddEdge("a", "b", 2)
	g.AddEdge("b", "c", 3)
	g.CoLocate("a", "b")
	split := map[string]Side{"a": SourceSide, "b": SinkSide, "c": SinkSide}
	if got := g.EvaluateAssignment(split); !math.IsInf(got, 1) {
		t.Errorf("EvaluateAssignment split pair = %v, want +Inf", got)
	}
	w, viol := g.EvaluateAssignmentDetail(split)
	if w != 2 || viol != 1 {
		t.Errorf("Detail = (%v, %d), want (2, 1)", w, viol)
	}
	ok := map[string]Side{"a": SourceSide, "b": SourceSide, "c": SinkSide}
	w, viol = g.EvaluateAssignmentDetail(ok)
	if w != 3 || viol != 0 {
		t.Errorf("Detail feasible = (%v, %d), want (3, 0)", w, viol)
	}
}
