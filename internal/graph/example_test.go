package graph_test

import (
	"fmt"

	"repro/internal/graph"
)

// A document reader pulls far more from storage than it reports to the
// GUI, so the minimum cut moves it to the server with the data.
func ExampleGraph_MinCut() {
	g := graph.New()
	g.Pin("gui", graph.SourceSide)    // GUI constrained to the client
	g.Pin("storage", graph.SinkSide)  // data constrained to the server
	g.AddEdge("gui", "reader", 0.2)   // small rendered output
	g.AddEdge("reader", "storage", 5) // bulk document reads
	g.AddEdge("gui", "toolbar", 0.5)  // local chatter

	cut, err := g.MinCut()
	if err != nil {
		panic(err)
	}
	fmt.Printf("reader on side %d, cut weight %.1f\n",
		cut.Assignment["reader"], cut.Weight)
	// Output:
	// reader on side 1, cut weight 0.2
}

// Non-remotable interfaces force co-location: the sprite cache follows the
// GUI to the client even though it talks to the reader.
func ExampleGraph_CoLocate() {
	g := graph.New()
	g.Pin("gui", graph.SourceSide)
	g.Pin("storage", graph.SinkSide)
	g.AddEdge("reader", "storage", 5)
	g.AddEdge("sprite", "reader", 3)
	g.CoLocate("sprite", "gui") // shared-memory interface

	cut, _ := g.MinCut()
	fmt.Printf("sprite side=%d reader side=%d\n",
		cut.Assignment["sprite"], cut.Assignment["reader"])
	// Output:
	// sprite side=0 reader side=1
}

// The multiway extension partitions across three machines with the
// isolation heuristic.
func ExampleGraph_MultiwayCut() {
	g := graph.New()
	g.AddEdge("form", "cache", 2)
	g.AddEdge("cache", "logic", 0.5)
	g.AddEdge("logic", "db", 4)
	assign, weight, err := g.MultiwayCut([]graph.MultiwayTerminal{
		{Machine: "client", Pinned: []string{"form"}},
		{Machine: "middle", Pinned: []string{"logic"}},
		{Machine: "dbserver", Pinned: []string{"db"}},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("cache on %s, crossing weight %.1f\n", assign["cache"], weight)
	// Output:
	// cache on client, crossing weight 4.5
}
