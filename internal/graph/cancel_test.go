package graph

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// cancelTestGraph builds a pinned two-terminal instance big enough that
// the push-relabel discharge loop actually runs.
func cancelTestGraph() *Graph {
	g := New()
	g.Pin("s", SourceSide)
	g.Pin("t", SinkSide)
	for i := 0; i < 50; i++ {
		n := fmt.Sprintf("n%02d", i)
		g.AddEdge("s", n, 1+float64(i%7))
		g.AddEdge(n, "t", 1+float64(i%5))
		if i > 0 {
			g.AddEdge(fmt.Sprintf("n%02d", i-1), n, 0.5)
		}
	}
	return g
}

// TestMinCutCtxCancelled: a pre-cancelled context must abort the cut with
// context.Canceled — the discharge loop polls before any work.
func TestMinCutCtxCancelled(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cancelTestGraph().MinCutCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("MinCutCtx(cancelled) err = %v, want context.Canceled", err)
	}
}

// TestMinCutCtxBackgroundMatchesMinCut: the context-aware path must agree
// with the plain entry point weight for weight.
func TestMinCutCtxBackgroundMatchesMinCut(t *testing.T) {
	t.Parallel()
	a, err := cancelTestGraph().MinCut()
	if err != nil {
		t.Fatalf("MinCut: %v", err)
	}
	b, err := cancelTestGraph().MinCutCtx(context.Background())
	if err != nil {
		t.Fatalf("MinCutCtx: %v", err)
	}
	if a.Weight != b.Weight {
		t.Fatalf("weights diverge: MinCut %v vs MinCutCtx %v", a.Weight, b.Weight)
	}
}

// TestMultiwayCutCtxCancelled: cancellation propagates through the
// per-terminal isolating cuts.
func TestMultiwayCutCtxCancelled(t *testing.T) {
	t.Parallel()
	g := New()
	for i := 0; i < 30; i++ {
		g.AddEdge(fmt.Sprintf("a%02d", i), fmt.Sprintf("b%02d", i), 1)
		g.AddEdge(fmt.Sprintf("b%02d", i), fmt.Sprintf("c%02d", i), 2)
	}
	terms := []MultiwayTerminal{
		{Machine: "m1", Pinned: []string{"a00"}},
		{Machine: "m2", Pinned: []string{"b00"}},
		{Machine: "m3", Pinned: []string{"c00"}},
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := g.MultiwayCutCtx(ctx, terms); !errors.Is(err, context.Canceled) {
		t.Fatalf("MultiwayCutCtx(cancelled) err = %v, want context.Canceled", err)
	}
}
