package graph

import (
	"context"
	"math"
)

// Highest-label push-relabel (the hi_pr family of Cherkassky and
// Goldberg) over the CSR network. Three things distinguish it from the
// legacy relabel-to-front path in mincut.go:
//
//   - selection: active nodes are kept in per-height bucket stacks and
//     always discharged from the highest label, instead of scanning a
//     global node list that restarts from the front after every relabel
//     (the restart is what sends relabel-to-front quadratic on large
//     graphs);
//   - the gap heuristic: when a height h empties while smaller heights
//     below n remain occupied, no residual path through h can reach the
//     sink, so every node above the gap is lifted to n (dormant) at once;
//   - periodic global relabeling: after a bounded amount of discharge
//     work, one reverse BFS from the sink restores exact residual
//     distances.
//
// The run is phase 1 only — a maximum preflow into t. That is enough for
// a minimum cut: the nodes unable to reach t in the residual network form
// the source side, every arc leaving that set is saturated, no flow
// crosses back into it, and excess parked on dormant nodes never reaches
// t, so the cut capacity equals excess[t] (see csrNet.sourceSide). The
// excess-return phase the full max-flow algorithm needs is skipped
// entirely.
//
// All solver scratch lives in hiprState so a CutArena (arena.go) can run
// repeated cuts without re-allocating; a warm run additionally keeps the
// excess vector and the residual capacities of a previous solve, seeding
// the discharge loop from an already-feasible preflow instead of from
// zero flow.

// cancelCheckMask paces the cancellation poll in the discharge loop: one
// channel select per 1024 node pops is invisible next to the discharge
// work itself, yet bounds the latency of a cancelled cut to a few
// thousand pushes.
const cancelCheckMask = 1<<10 - 1

// hiprState is the per-run scratch of the highest-label core: heights,
// excesses, current-arc pointers, the active bucket stacks, the label
// lists behind the gap heuristic, and the global-relabel BFS buffers.
// An arena keeps one of these alive across cuts; the one-shot path
// allocates a fresh one per cut.
type hiprState struct {
	height []int32
	excess []float64
	cur    []int32 // current-arc pointer, absolute arc index

	// Active nodes: singly-linked bucket stacks per height < n.
	activeNext []int32
	activeHead []int32
	inActive   []bool

	// All non-dormant, non-terminal nodes: doubly-linked label lists per
	// height < n, backing the gap heuristic.
	labelNext []int32
	labelPrev []int32
	labelHead []int32
	count     []int32

	dist  []int32
	queue []int32
}

// ensure sizes every scratch array for an n-node network, reusing backing
// stores from previous runs whenever they are large enough.
func (st *hiprState) ensure(n int) {
	grow32 := func(s []int32, n int) []int32 {
		if cap(s) < n {
			return make([]int32, n)
		}
		return s[:n]
	}
	st.height = grow32(st.height, n)
	st.cur = grow32(st.cur, n)
	st.activeNext = grow32(st.activeNext, n)
	st.activeHead = grow32(st.activeHead, n+1)
	st.labelNext = grow32(st.labelNext, n)
	st.labelPrev = grow32(st.labelPrev, n)
	st.labelHead = grow32(st.labelHead, n+1)
	st.count = grow32(st.count, n+1)
	st.dist = grow32(st.dist, n)
	if cap(st.excess) < n {
		st.excess = make([]float64, n)
	} else {
		st.excess = st.excess[:n]
	}
	if cap(st.inActive) < n {
		st.inActive = make([]bool, n)
	} else {
		st.inActive = st.inActive[:n]
	}
	st.queue = st.queue[:0]
}

// hiprRun is one invocation of the core over a network, binding the
// scratch state to the network and the bucket bookkeeping.
type hiprRun struct {
	f       *csrNet
	st      *hiprState
	n       int
	highest int
	work    int
}

func (r *hiprRun) link(v, h int32) {
	st := r.st
	st.labelPrev[v] = -1
	st.labelNext[v] = st.labelHead[h]
	if st.labelHead[h] != -1 {
		st.labelPrev[st.labelHead[h]] = v
	}
	st.labelHead[h] = v
	st.count[h]++
}

func (r *hiprRun) unlink(v, h int32) {
	st := r.st
	if st.labelPrev[v] != -1 {
		st.labelNext[st.labelPrev[v]] = st.labelNext[v]
	} else {
		st.labelHead[h] = st.labelNext[v]
	}
	if st.labelNext[v] != -1 {
		st.labelPrev[st.labelNext[v]] = st.labelPrev[v]
	}
	st.count[h]--
}

func (r *hiprRun) activate(v int32) {
	st := r.st
	h := st.height[v]
	if st.inActive[v] || int(v) == r.f.s || int(v) == r.f.t || h >= int32(r.n) {
		return
	}
	st.activeNext[v] = st.activeHead[h]
	st.activeHead[h] = v
	st.inActive[v] = true
	if int(h) > r.highest {
		r.highest = int(h)
	}
}

// setHeight moves a non-terminal node between label lists. Dormant
// nodes (height n) leave the lists for good.
func (r *hiprRun) setHeight(v, newH int32) {
	st := r.st
	oldH := st.height[v]
	if oldH < int32(r.n) {
		r.unlink(v, oldH)
	}
	st.height[v] = newH
	if newH < int32(r.n) {
		r.link(v, newH)
	}
}

// gap lifts every node strictly above an emptied height to dormancy:
// any residual path to t from above the gap would need a node at the
// gap height.
func (r *hiprRun) gap(h int32) {
	st := r.st
	for hh := h + 1; hh < int32(r.n); hh++ {
		for st.labelHead[hh] != -1 {
			v := st.labelHead[hh]
			r.unlink(v, hh)
			st.height[v] = int32(r.n)
		}
	}
}

// globalRelabel restores exact residual distances to t and rebuilds
// the label lists and active buckets from scratch. Stale active-bucket
// entries are discarded by the pop guard in the main loop.
func (r *hiprRun) globalRelabel() {
	f, st, n := r.f, r.st, r.n
	for i := range st.dist {
		st.dist[i] = -1
	}
	st.queue = st.queue[:0]
	st.queue = append(st.queue, int32(f.t))
	st.dist[f.t] = 0
	for len(st.queue) > 0 {
		x := st.queue[0]
		st.queue = st.queue[1:]
		for a := f.head[x]; a < f.head[x+1]; a++ {
			v := f.to[a]
			// v reaches x iff residual(v -> x) > 0.
			if st.dist[v] == -1 && f.cap[f.rev[a]] > capEps {
				st.dist[v] = st.dist[x] + 1
				st.queue = append(st.queue, v)
			}
		}
	}
	for h := 0; h <= n; h++ {
		st.activeHead[h] = -1
		st.labelHead[h] = -1
		st.count[h] = 0
	}
	r.highest = -1
	for v := 0; v < n; v++ {
		if v == f.s || v == f.t {
			continue
		}
		h := int32(n)
		if st.dist[v] >= 0 && st.dist[v] < int32(n) {
			h = st.dist[v]
		}
		if st.height[v] > h {
			// Heights never decrease within a run; a label already at or
			// above the BFS distance stays (dormant nodes stay dormant).
			h = st.height[v]
		}
		if h > int32(n) {
			h = int32(n)
		}
		st.height[v] = h
		st.inActive[v] = false
		st.cur[v] = f.head[v]
		if h < int32(n) {
			r.link(int32(v), h)
			if st.excess[v] > capEps {
				r.activate(int32(v))
			}
		}
	}
	st.height[f.s] = int32(n)
	st.height[f.t] = 0
	r.work = 0
}

// maxFlowHL runs phase-1 highest-label push-relabel over f with st's
// scratch and returns the max-flow value (the preflow accumulated at t).
// A cold run (warm=false) starts from zero flow: f.cap must hold the full
// capacities and every excess is reset. A warm run keeps f.cap and
// st.excess exactly as the caller prepared them — a feasible preflow
// (every non-terminal excess >= 0) over the current capacities — and only
// resets heights, so the discharge loop finishes the remaining flow
// instead of redoing all of it. In both modes heights are rebuilt from an
// exact reverse BFS, which is a valid labeling for any feasible preflow.
// A cancelled context aborts the run between discharge batches with the
// context's error.
func (f *csrNet) maxFlowHL(ctx context.Context, st *hiprState, warm bool) (float64, error) {
	n := f.n
	if n == 0 || f.s == f.t {
		return 0, nil
	}
	done := ctx.Done()
	m := len(f.to)
	st.ensure(n)
	for i := range st.height {
		st.height[i] = 0
	}
	if !warm {
		for i := range st.excess {
			st.excess[i] = 0
		}
	}

	r := &hiprRun{f: f, st: st, n: n, highest: -1}
	// workLimit paces global relabeling: one O(n+m) reverse BFS per
	// O(n+m) discharge work keeps residual distances near exact without
	// dominating the run.
	workLimit := 6*n + m/2

	r.globalRelabel()
	// Saturate the source's residual out-arcs to create (or top up) the
	// preflow. On a warm run most of these arcs are already saturated from
	// the previous solve; only capacity that grew since then moves.
	for a := f.head[f.s]; a < f.head[f.s+1]; a++ {
		if f.cap[a] <= capEps {
			continue
		}
		amt := f.cap[a]
		f.cap[a] = 0
		f.cap[f.rev[a]] += amt
		v := f.to[a]
		st.excess[v] += amt
		st.excess[f.s] -= amt
		r.activate(v)
	}

	height, excess, cur := st.height, st.excess, st.cur
	var pops uint
	for {
		if pops&cancelCheckMask == 0 && done != nil {
			select {
			case <-done:
				return 0, ctx.Err()
			default:
			}
		}
		pops++
		if r.work > workLimit {
			r.globalRelabel()
		}
		for r.highest >= 0 && st.activeHead[r.highest] == -1 {
			r.highest--
		}
		if r.highest < 0 {
			break
		}
		u := st.activeHead[r.highest]
		st.activeHead[r.highest] = st.activeNext[u]
		st.inActive[u] = false
		// Pop guard: the gap heuristic and global relabeling leave stale
		// bucket entries behind rather than unthreading them.
		if height[u] >= int32(n) || excess[u] <= capEps {
			continue
		}

		// Discharge u: push along admissible current arcs, relabel when
		// they run out, stop when the excess is gone or u goes dormant.
		for {
			aEnd := f.head[u+1]
			a := cur[u]
			for ; a < aEnd; a++ {
				if f.cap[a] <= capEps {
					continue
				}
				v := f.to[a]
				if height[u] != height[v]+1 {
					continue
				}
				amt := excess[u]
				if f.cap[a] < amt {
					amt = f.cap[a]
				}
				f.cap[a] -= amt
				f.cap[f.rev[a]] += amt
				excess[u] -= amt
				excess[v] += amt
				if !st.inActive[v] {
					r.activate(v)
				}
				if excess[u] <= capEps {
					break
				}
			}
			r.work += int(a-cur[u]) + 1
			if excess[u] <= capEps {
				// The arc at a may hold leftover capacity; resume there.
				cur[u] = a
				break
			}
			// Arcs exhausted: relabel to one above the lowest residual
			// neighbor.
			oldH := height[u]
			minH := int32(math.MaxInt32)
			for a := f.head[u]; a < aEnd; a++ {
				if f.cap[a] > capEps && height[f.to[a]] < minH {
					minH = height[f.to[a]]
				}
			}
			r.work += int(aEnd - f.head[u])
			newH := int32(n)
			if minH != int32(math.MaxInt32) && minH+1 < int32(n) {
				newH = minH + 1
			}
			r.setHeight(u, newH)
			cur[u] = f.head[u]
			if st.count[oldH] == 0 && oldH > 0 && oldH < int32(n) {
				r.gap(oldH)
			}
			if height[u] >= int32(n) {
				break // dormant: the remaining excess never reaches t
			}
		}
	}
	return excess[f.t], nil
}

// maxFlowHighestLabel is the one-shot entry: a cold run with fresh
// scratch, used by paths that build a throwaway network.
func (f *csrNet) maxFlowHighestLabel(ctx context.Context) (float64, error) {
	return f.maxFlowHL(ctx, &hiprState{}, false)
}
