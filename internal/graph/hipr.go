package graph

import (
	"context"
	"math"
)

// Highest-label push-relabel (the hi_pr family of Cherkassky and
// Goldberg) over the CSR network. Three things distinguish it from the
// legacy relabel-to-front path in mincut.go:
//
//   - selection: active nodes are kept in per-height bucket stacks and
//     always discharged from the highest label, instead of scanning a
//     global node list that restarts from the front after every relabel
//     (the restart is what sends relabel-to-front quadratic on large
//     graphs);
//   - the gap heuristic: when a height h empties while smaller heights
//     below n remain occupied, no residual path through h can reach the
//     sink, so every node above the gap is lifted to n (dormant) at once;
//   - periodic global relabeling: after a bounded amount of discharge
//     work, one reverse BFS from the sink restores exact residual
//     distances.
//
// The run is phase 1 only — a maximum preflow into t. That is enough for
// a minimum cut: the nodes unable to reach t in the residual network form
// the source side, every arc leaving that set is saturated, no flow
// crosses back into it, and excess parked on dormant nodes never reaches
// t, so the cut capacity equals excess[t] (see csrNet.sourceSide). The
// excess-return phase the full max-flow algorithm needs is skipped
// entirely.

// cancelCheckMask paces the cancellation poll in the discharge loop: one
// channel select per 1024 node pops is invisible next to the discharge
// work itself, yet bounds the latency of a cancelled cut to a few
// thousand pushes.
const cancelCheckMask = 1<<10 - 1

// maxFlowHighestLabel runs phase-1 highest-label push-relabel and returns
// the max-flow value (the preflow accumulated at t). A cancelled context
// aborts the run between discharge batches with the context's error.
func (f *csrNet) maxFlowHighestLabel(ctx context.Context) (float64, error) {
	n := f.n
	if n == 0 || f.s == f.t {
		return 0, nil
	}
	done := ctx.Done()
	m := len(f.to)
	height := make([]int32, n)
	excess := make([]float64, n)
	cur := make([]int32, n) // current-arc pointer, absolute arc index

	// Active nodes: singly-linked bucket stacks per height < n.
	activeNext := make([]int32, n)
	activeHead := make([]int32, n+1)
	inActive := make([]bool, n)
	highest := -1

	// All non-dormant, non-terminal nodes: doubly-linked label lists per
	// height < n, backing the gap heuristic.
	labelNext := make([]int32, n)
	labelPrev := make([]int32, n)
	labelHead := make([]int32, n+1)
	count := make([]int32, n+1)
	for h := 0; h <= n; h++ {
		activeHead[h] = -1
		labelHead[h] = -1
	}

	link := func(v int32, h int32) {
		labelPrev[v] = -1
		labelNext[v] = labelHead[h]
		if labelHead[h] != -1 {
			labelPrev[labelHead[h]] = v
		}
		labelHead[h] = v
		count[h]++
	}
	unlink := func(v int32, h int32) {
		if labelPrev[v] != -1 {
			labelNext[labelPrev[v]] = labelNext[v]
		} else {
			labelHead[h] = labelNext[v]
		}
		if labelNext[v] != -1 {
			labelPrev[labelNext[v]] = labelPrev[v]
		}
		count[h]--
	}
	activate := func(v int32) {
		h := height[v]
		if inActive[v] || int(v) == f.s || int(v) == f.t || h >= int32(n) {
			return
		}
		activeNext[v] = activeHead[h]
		activeHead[h] = v
		inActive[v] = true
		if int(h) > highest {
			highest = int(h)
		}
	}
	// setHeight moves a non-terminal node between label lists. Dormant
	// nodes (height n) leave the lists for good.
	setHeight := func(v int32, newH int32) {
		oldH := height[v]
		if oldH < int32(n) {
			unlink(v, oldH)
		}
		height[v] = newH
		if newH < int32(n) {
			link(v, newH)
		}
	}
	// gap lifts every node strictly above an emptied height to dormancy:
	// any residual path to t from above the gap would need a node at the
	// gap height.
	gap := func(h int32) {
		for hh := h + 1; hh < int32(n); hh++ {
			for labelHead[hh] != -1 {
				v := labelHead[hh]
				unlink(v, hh)
				height[v] = int32(n)
			}
		}
	}

	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	var work int
	// workLimit paces global relabeling: one O(n+m) reverse BFS per
	// O(n+m) discharge work keeps residual distances near exact without
	// dominating the run.
	workLimit := 6*n + m/2

	// globalRelabel restores exact residual distances to t and rebuilds
	// the label lists and active buckets from scratch. Stale active-bucket
	// entries are discarded by the pop guard in the main loop.
	globalRelabel := func() {
		for i := range dist {
			dist[i] = -1
		}
		queue = queue[:0]
		queue = append(queue, int32(f.t))
		dist[f.t] = 0
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for a := f.head[x]; a < f.head[x+1]; a++ {
				v := f.to[a]
				// v reaches x iff residual(v -> x) > 0.
				if dist[v] == -1 && f.cap[f.rev[a]] > capEps {
					dist[v] = dist[x] + 1
					queue = append(queue, v)
				}
			}
		}
		for h := 0; h <= n; h++ {
			activeHead[h] = -1
			labelHead[h] = -1
			count[h] = 0
		}
		highest = -1
		for v := 0; v < n; v++ {
			if v == f.s || v == f.t {
				continue
			}
			h := int32(n)
			if dist[v] >= 0 && dist[v] < int32(n) {
				h = dist[v]
			}
			if height[v] > h {
				// Heights never decrease; a label already at or above the
				// BFS distance stays (dormant nodes stay dormant).
				h = height[v]
			}
			if h > int32(n) {
				h = int32(n)
			}
			height[v] = h
			inActive[v] = false
			cur[v] = f.head[v]
			if h < int32(n) {
				link(int32(v), h)
				if excess[v] > capEps {
					activate(int32(v))
				}
			}
		}
		height[f.s] = int32(n)
		height[f.t] = 0
		work = 0
	}

	globalRelabel()
	// Saturate the source's out-arcs to create the initial preflow.
	for a := f.head[f.s]; a < f.head[f.s+1]; a++ {
		if f.cap[a] <= capEps {
			continue
		}
		amt := f.cap[a]
		f.cap[a] = 0
		f.cap[f.rev[a]] += amt
		v := f.to[a]
		excess[v] += amt
		excess[f.s] -= amt
		activate(v)
	}

	var pops uint
	for {
		if pops&cancelCheckMask == 0 && done != nil {
			select {
			case <-done:
				return 0, ctx.Err()
			default:
			}
		}
		pops++
		if work > workLimit {
			globalRelabel()
		}
		for highest >= 0 && activeHead[highest] == -1 {
			highest--
		}
		if highest < 0 {
			break
		}
		u := activeHead[highest]
		activeHead[highest] = activeNext[u]
		inActive[u] = false
		// Pop guard: the gap heuristic and global relabeling leave stale
		// bucket entries behind rather than unthreading them.
		if height[u] >= int32(n) || excess[u] <= capEps {
			continue
		}

		// Discharge u: push along admissible current arcs, relabel when
		// they run out, stop when the excess is gone or u goes dormant.
		for {
			aEnd := f.head[u+1]
			a := cur[u]
			for ; a < aEnd; a++ {
				if f.cap[a] <= capEps {
					continue
				}
				v := f.to[a]
				if height[u] != height[v]+1 {
					continue
				}
				amt := excess[u]
				if f.cap[a] < amt {
					amt = f.cap[a]
				}
				f.cap[a] -= amt
				f.cap[f.rev[a]] += amt
				excess[u] -= amt
				excess[v] += amt
				if !inActive[v] {
					activate(v)
				}
				if excess[u] <= capEps {
					break
				}
			}
			work += int(a-cur[u]) + 1
			if excess[u] <= capEps {
				// The arc at a may hold leftover capacity; resume there.
				cur[u] = a
				break
			}
			// Arcs exhausted: relabel to one above the lowest residual
			// neighbor.
			oldH := height[u]
			minH := int32(math.MaxInt32)
			for a := f.head[u]; a < aEnd; a++ {
				if f.cap[a] > capEps && height[f.to[a]] < minH {
					minH = height[f.to[a]]
				}
			}
			work += int(aEnd - f.head[u])
			newH := int32(n)
			if minH != int32(math.MaxInt32) && minH+1 < int32(n) {
				newH = minH + 1
			}
			setHeight(u, newH)
			cur[u] = f.head[u]
			if count[oldH] == 0 && oldH > 0 && oldH < int32(n) {
				gap(oldH)
			}
			if height[u] >= int32(n) {
				break // dormant: the remaining excess never reaches t
			}
		}
	}
	return excess[f.t], nil
}
