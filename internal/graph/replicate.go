package graph

import (
	"math"
	"sort"
)

// Replicate returns a copy of the graph in which every eligible node's
// incident edges are removed, modeling component replication (Papp et
// al., "Replication in Graph Partitioning and Scheduling Problems"): a
// replicated component runs a clone on every machine, so calls into it
// are always machine-local and its ICC edges vanish from the cut
// network. Nodes that are pinned or party to a weld (a co-location
// constraint or an infinite-capacity edge) are skipped — a pinned
// component has one fixed home and a welded component must travel with
// its partner — as are names absent from the graph. The second result
// lists the nodes actually replicated, sorted.
//
// Because the copy has the same node set, pins, and welds but a subset
// of the edges, its minimum cut never exceeds the original's
// (property-tested against the Edmonds–Karp oracle in replicate_test.go).
func (g *Graph) Replicate(eligible []string) (*Graph, []string) {
	welded := make(map[int]bool)
	for e := range g.coloc {
		welded[e[0]] = true
		welded[e[1]] = true
	}
	for e, w := range g.edges {
		if math.IsInf(w, 1) {
			welded[e[0]] = true
			welded[e[1]] = true
		}
	}
	drop := make(map[int]bool)
	var replicated []string
	for _, name := range eligible {
		i, ok := g.index[name]
		if !ok {
			continue
		}
		if _, pinned := g.pinned[i]; pinned || welded[i] || drop[i] {
			continue
		}
		drop[i] = true
		replicated = append(replicated, name)
	}
	c := New()
	c.names = append([]string(nil), g.names...)
	for i, n := range c.names {
		c.index[n] = i
	}
	for e, w := range g.edges {
		if drop[e[0]] || drop[e[1]] {
			continue
		}
		c.edges[e] = w
	}
	for i, s := range g.pinned {
		c.pinned[i] = s
	}
	for e := range g.coloc {
		c.coloc[e] = true
	}
	sort.Strings(replicated)
	return c, replicated
}
