package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomPinnedGraph builds a random instance with both terminals pinned.
func randomPinnedGraph(seed int64, n int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New()
	g.Pin("s", SourceSide)
	g.Pin("t", SinkSide)
	for i := 0; i < n; i++ {
		a := string(rune('a' + rng.Intn(8)))
		b := string(rune('a' + rng.Intn(8)))
		g.AddEdge(a, b, 1+rng.Float64()*4)
		if rng.Intn(3) == 0 {
			g.AddEdge("s", a, 1+rng.Float64()*4)
		}
		if rng.Intn(3) == 0 {
			g.AddEdge(b, "t", 1+rng.Float64()*4)
		}
	}
	return g
}

func TestPropertyCutWeightEqualsFlow(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		g := randomPinnedGraph(seed, 12)
		cut, err := g.MinCut()
		if err != nil {
			return false
		}
		diff := cut.Weight - cut.FlowValue
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1e-6*(1+cut.Weight)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMinCutMonotoneUnderEdgeAddition(t *testing.T) {
	t.Parallel()
	// Adding capacity can never decrease the minimum cut.
	f := func(seed int64, wRaw uint8) bool {
		g := randomPinnedGraph(seed, 10)
		before, err := g.MinCut()
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed ^ 0x55))
		a := string(rune('a' + rng.Intn(8)))
		g.AddEdge("s", a, float64(wRaw%16)+0.5)
		after, err := g.MinCut()
		if err != nil {
			return false
		}
		return after.Weight >= before.Weight-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCutPartitionsEveryNode(t *testing.T) {
	t.Parallel()
	// Every node lands on exactly one side and pinned nodes honor pins.
	f := func(seed int64) bool {
		g := randomPinnedGraph(seed, 14)
		cut, err := g.MinCut()
		if err != nil {
			return false
		}
		if len(cut.Assignment) != g.Len() {
			return false
		}
		return cut.Assignment["s"] == SourceSide && cut.Assignment["t"] == SinkSide
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCoLocationAlwaysHonored(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		g := randomPinnedGraph(seed, 10)
		// Co-locate two random free nodes.
		rng := rand.New(rand.NewSource(seed ^ 0x99))
		a := string(rune('a' + rng.Intn(8)))
		b := string(rune('a' + rng.Intn(8)))
		g.CoLocate(a, b)
		cut, err := g.MinCut()
		if err != nil {
			return false
		}
		return cut.Assignment[a] == cut.Assignment[b]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
