package graph

import (
	"fmt"
	"testing"
)

// TestMultiwayCutSynthDeterministic runs the (now parallel) isolation
// heuristic over seeded synthetic instances and checks that repeated runs
// agree exactly — the per-terminal cuts fan out on a worker pool, and the
// result must not depend on scheduling. Under `go test -race` this also
// exercises the concurrent reads of the shared graph.
// TestMultiwayCutEqualWeightTieBreak pins the heaviest-cut tie-break
// contract: when several isolating cuts carry exactly equal weight, the
// discarded (default) terminal is chosen by terminal index, not by
// whatever order results happen to come back in. The star below makes
// all three isolating cuts weigh exactly 1, so every run across the
// parallel fan-out must produce the identical assignment (under
// `go test -race` this also catches scheduling-dependent reads).
func TestMultiwayCutEqualWeightTieBreak(t *testing.T) {
	t.Parallel()
	g := New()
	g.AddEdge("hub", "a", 1)
	g.AddEdge("hub", "b", 1)
	g.AddEdge("hub", "c", 1)
	terminals := []MultiwayTerminal{
		{Machine: "m0", Pinned: []string{"a"}},
		{Machine: "m1", Pinned: []string{"b"}},
		{Machine: "m2", Pinned: []string{"c"}},
	}
	first, w1, err := g.MultiwayCut(terminals)
	if err != nil {
		t.Fatal(err)
	}
	// All three isolating cuts weigh 1; the tie-break discards the
	// highest terminal index, so m2 owns the hub and the total crossing
	// weight is the two edges leaving it.
	if first["hub"] != "m2" {
		t.Fatalf("hub on %s, want m2 (tie broken by terminal index)", first["hub"])
	}
	if d := w1 - 2; d > 1e-12 || d < -1e-12 {
		t.Fatalf("weight %v, want 2", w1)
	}
	for run := 0; run < 100; run++ {
		assign, w, err := g.MultiwayCut(terminals)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if w != w1 || len(assign) != len(first) {
			t.Fatalf("run %d: weight/size changed: %v vs %v", run, w, w1)
		}
		for n, m := range first {
			if assign[n] != m {
				t.Fatalf("run %d: node %s assigned to %s, previously %s", run, n, assign[n], m)
			}
		}
	}
}

func TestMultiwayCutSynthDeterministic(t *testing.T) {
	t.Parallel()
	const eps = 1e-9
	for seed := int64(0); seed < 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			// Pins are dropped by the per-terminal clones anyway; disable
			// co-locations so the heuristic's assignment is always legal.
			g := Synthesize(SynthConfig{
				Nodes: 300, AvgDegree: 6, Seed: seed,
				PinFraction: 1e-9, CoLocateFraction: 1e-9, FreeFraction: 1e-9,
			})
			terminals := []MultiwayTerminal{
				{Machine: "client", Pinned: []string{synthName(0)}},
				{Machine: "server", Pinned: []string{synthName(1)}},
				{Machine: "middle", Pinned: []string{synthName(2)}},
			}
			if seed%2 == 1 {
				terminals = append(terminals, MultiwayTerminal{Machine: "edge", Pinned: []string{synthName(3)}})
			}
			assign1, w1, err := g.MultiwayCut(terminals)
			if err != nil {
				t.Fatalf("MultiwayCut: %v", err)
			}
			assign2, w2, err := g.MultiwayCut(terminals)
			if err != nil {
				t.Fatalf("MultiwayCut (second run): %v", err)
			}
			if d := w1 - w2; d > eps || d < -eps {
				t.Fatalf("weights differ across runs: %v vs %v", w1, w2)
			}
			if len(assign1) != len(assign2) || len(assign1) != g.Len() {
				t.Fatalf("assignment sizes differ: %d, %d, want %d", len(assign1), len(assign2), g.Len())
			}
			for n, m := range assign1 {
				if assign2[n] != m {
					t.Fatalf("node %s assigned to %s then %s", n, m, assign2[n])
				}
			}
			for _, term := range terminals {
				for _, n := range term.Pinned {
					if assign1[n] != term.Machine {
						t.Fatalf("terminal node %s landed on %s, want %s", n, assign1[n], term.Machine)
					}
				}
			}
		})
	}
}
