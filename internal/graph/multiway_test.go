package graph

import (
	"fmt"
	"testing"
)

// TestMultiwayCutSynthDeterministic runs the (now parallel) isolation
// heuristic over seeded synthetic instances and checks that repeated runs
// agree exactly — the per-terminal cuts fan out on a worker pool, and the
// result must not depend on scheduling. Under `go test -race` this also
// exercises the concurrent reads of the shared graph.
func TestMultiwayCutSynthDeterministic(t *testing.T) {
	t.Parallel()
	const eps = 1e-9
	for seed := int64(0); seed < 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			// Pins are dropped by the per-terminal clones anyway; disable
			// co-locations so the heuristic's assignment is always legal.
			g := Synthesize(SynthConfig{
				Nodes: 300, AvgDegree: 6, Seed: seed,
				PinFraction: 1e-9, CoLocateFraction: 1e-9, FreeFraction: 1e-9,
			})
			terminals := []MultiwayTerminal{
				{Machine: "client", Pinned: []string{synthName(0)}},
				{Machine: "server", Pinned: []string{synthName(1)}},
				{Machine: "middle", Pinned: []string{synthName(2)}},
			}
			if seed%2 == 1 {
				terminals = append(terminals, MultiwayTerminal{Machine: "edge", Pinned: []string{synthName(3)}})
			}
			assign1, w1, err := g.MultiwayCut(terminals)
			if err != nil {
				t.Fatalf("MultiwayCut: %v", err)
			}
			assign2, w2, err := g.MultiwayCut(terminals)
			if err != nil {
				t.Fatalf("MultiwayCut (second run): %v", err)
			}
			if d := w1 - w2; d > eps || d < -eps {
				t.Fatalf("weights differ across runs: %v vs %v", w1, w2)
			}
			if len(assign1) != len(assign2) || len(assign1) != g.Len() {
				t.Fatalf("assignment sizes differ: %d, %d, want %d", len(assign1), len(assign2), g.Len())
			}
			for n, m := range assign1 {
				if assign2[n] != m {
					t.Fatalf("node %s assigned to %s then %s", n, m, assign2[n])
				}
			}
			for _, term := range terminals {
				for _, n := range term.Pinned {
					if assign1[n] != term.Machine {
						t.Fatalf("terminal node %s landed on %s, want %s", n, assign1[n], term.Machine)
					}
				}
			}
		})
	}
}
