package graph

import (
	"context"
	"fmt"
	"math"
	"sort"
)

// The lift-to-front minimum-cut algorithm (push-relabel with the
// relabel-to-front discharge order, CLRS chapter 26) chooses the
// distribution with minimal communication time. It is exact for two-way
// client/server cuts; partitioning across three or more machines is
// NP-hard and handled by the heuristic in multiway.go.

// flowNet is a residual network over the graph's nodes plus two terminals.
type flowNet struct {
	n    int
	s, t int
	// arcs[u] lists outgoing arcs; arc.rev is the index of the reverse arc
	// in arcs[arc.to].
	arcs [][]arc
}

type arc struct {
	to  int
	rev int
	cap float64
}

func newFlowNet(n, s, t int) *flowNet {
	return &flowNet{n: n, s: s, t: t, arcs: make([][]arc, n)}
}

// addUndirected installs an undirected edge of capacity c: a directed arc
// of capacity c each way, each serving as the other's residual.
func (f *flowNet) addUndirected(u, v int, c float64) {
	f.arcs[u] = append(f.arcs[u], arc{to: v, rev: len(f.arcs[v]), cap: c})
	f.arcs[v] = append(f.arcs[v], arc{to: u, rev: len(f.arcs[u]) - 1, cap: c})
}

// addDirected installs a directed edge of capacity c with a zero-capacity
// reverse residual.
func (f *flowNet) addDirected(u, v int, c float64) {
	f.arcs[u] = append(f.arcs[u], arc{to: v, rev: len(f.arcs[v]), cap: c})
	f.arcs[v] = append(f.arcs[v], arc{to: u, rev: len(f.arcs[u]) - 1, cap: 0})
}

const capEps = 1e-12

// maxFlowRelabelToFront runs push-relabel with the relabel-to-front
// selection rule and returns the max-flow value. Heights are initialized
// to exact residual distances and periodically refreshed (the standard
// global-relabeling heuristic), which keeps the lift-to-front algorithm
// fast on the multi-thousand-node ICC graphs the applications produce.
func (f *flowNet) maxFlowRelabelToFront() float64 {
	n := f.n
	height := make([]int, n)
	excess := make([]float64, n)
	current := make([]int, n)

	// globalRelabel sets height[v] to the exact residual distance from v
	// to t, or n plus the exact residual distance to s for nodes that can
	// no longer reach t (their excess must return to the source). Both are
	// the pointwise-maximum valid labeling, so heights never decrease —
	// required for termination.
	distT := make([]int, n)
	distS := make([]int, n)
	queue := make([]int, 0, n)
	// bfsTo computes, for every node, the residual distance to root (the
	// length of the shortest path with positive residual capacity from the
	// node to root), or -1.
	bfsTo := func(root int, dist []int) {
		for i := range dist {
			dist[i] = -1
		}
		queue = queue[:0]
		queue = append(queue, root)
		dist[root] = 0
		for len(queue) > 0 {
			w := queue[0]
			queue = queue[1:]
			for i := range f.arcs[w] {
				a := &f.arcs[w][i]
				// a.to reaches w iff residual(a.to -> w) > 0.
				if f.arcs[a.to][a.rev].cap > capEps && dist[a.to] == -1 {
					dist[a.to] = dist[w] + 1
					queue = append(queue, a.to)
				}
			}
		}
	}
	globalRelabel := func() {
		bfsTo(f.t, distT)
		bfsTo(f.s, distS)
		for v := 0; v < n; v++ {
			if v == f.s {
				continue
			}
			switch {
			case distT[v] >= 0:
				height[v] = distT[v]
			case distS[v] >= 0:
				height[v] = n + distS[v]
			default:
				// Unreachable from both terminals: trapped excess; park
				// the node above every pushable height.
				height[v] = 2*n + 1
			}
			current[v] = 0
		}
		height[f.s] = n
	}

	globalRelabel()
	for i := range f.arcs[f.s] {
		a := &f.arcs[f.s][i]
		if a.cap > capEps {
			amt := a.cap
			a.cap = 0
			f.arcs[a.to][a.rev].cap += amt
			excess[a.to] += amt
			excess[f.s] -= amt
		}
	}

	// L: all vertices except s and t. With zero initial heights any order
	// is topological for the (empty) admissible network; with
	// exact-distance heights the admissible arcs point from higher to
	// lower labels, so decreasing height is a topological order.
	var list []int
	for v := 0; v < n; v++ {
		if v != f.s && v != f.t {
			list = append(list, v)
		}
	}
	sortByHeightDesc := func() {
		sort.SliceStable(list, func(i, j int) bool {
			return height[list[i]] > height[list[j]]
		})
	}
	sortByHeightDesc()

	relabels := 0
	discharge := func(u int) {
		for excess[u] > capEps {
			if current[u] == len(f.arcs[u]) {
				// relabel: lift u to 1 + min height of admissible neighbors.
				minH := math.MaxInt
				for i := range f.arcs[u] {
					if f.arcs[u][i].cap > capEps {
						if h := height[f.arcs[u][i].to]; h < minH {
							minH = h
						}
					}
				}
				if minH == math.MaxInt {
					// No residual arcs: excess is trapped (isolated node).
					return
				}
				height[u] = minH + 1
				current[u] = 0
				relabels++
				continue
			}
			a := &f.arcs[u][current[u]]
			if a.cap > capEps && height[u] == height[a.to]+1 {
				// push
				amt := excess[u]
				if a.cap < amt {
					amt = a.cap
				}
				a.cap -= amt
				f.arcs[a.to][a.rev].cap += amt
				excess[u] -= amt
				excess[a.to] += amt
			} else {
				current[u]++
			}
		}
	}

	for i := 0; i < len(list); {
		if relabels >= n {
			// Heights changed globally: re-establish a topological order of
			// the admissible network and restart the scan.
			relabels = 0
			globalRelabel()
			sortByHeightDesc()
			i = 0
		}
		u := list[i]
		oldH := height[u]
		discharge(u)
		if height[u] > oldH {
			// Move u to the front and restart the scan after it.
			copy(list[1:i+1], list[:i])
			list[0] = u
			i = 0
		}
		i++
	}
	return excess[f.t]
}

// minCutSides returns, after max flow, the set of nodes reachable from s
// in the residual network (the source side of a minimum cut).
func (f *flowNet) minCutSides() []bool {
	seen := make([]bool, f.n)
	queue := []int{f.s}
	seen[f.s] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for i := range f.arcs[u] {
			a := &f.arcs[u][i]
			if a.cap > capEps && !seen[a.to] {
				seen[a.to] = true
				queue = append(queue, a.to)
			}
		}
	}
	return seen
}

// infinityProxy returns the finite capacity standing in for an infinite
// (constraint) edge: larger than the sum of all finite weights, so no
// minimum cut can afford to cross it.
func (g *Graph) infinityProxy() float64 {
	var finiteSum float64
	for _, w := range g.edges {
		if !math.IsInf(w, 1) {
			finiteSum += w
		}
	}
	return finiteSum*2 + 1
}

// build constructs the adjacency-list flow network for a two-way cut:
// graph nodes plus a source terminal (client) and sink terminal (server);
// pins become infinite-capacity terminal edges and co-location
// constraints become infinite-capacity node-to-node edges. Infinite
// weights are replaced by the finite infinity proxy. This network backs
// the legacy relabel-to-front path and the Edmonds–Karp oracle; the
// production cut runs on the flat CSR network in csr.go.
func (g *Graph) build() (*flowNet, float64) {
	n := g.Len()
	s, t := n, n+1
	f := newFlowNet(n+2, s, t)
	inf := g.infinityProxy()

	// Sorted arc order keeps the legacy and oracle paths deterministic too:
	// when several minimum cuts tie, every algorithm must land on the same
	// one run after run.
	for _, e := range g.sortedEdgeKeys() {
		c := g.edges[e]
		if math.IsInf(c, 1) {
			c = inf
		}
		f.addUndirected(e[0], e[1], c)
	}
	for _, e := range g.sortedColocKeys() {
		f.addUndirected(e[0], e[1], inf)
	}
	for _, v := range g.sortedPinnedNodes() {
		if g.pinned[v] == SourceSide {
			f.addDirected(s, v, inf)
		} else {
			f.addDirected(v, t, inf)
		}
	}
	return f, inf
}

// MinCut partitions the graph between client (source side) and server
// (sink side) minimizing the weight of crossing edges, using
// highest-label push-relabel over the CSR flow network (csr.go, hipr.go).
// Unpinned nodes in components touching neither terminal carry no
// crossing cost; they land on the source side.
func (g *Graph) MinCut() (*Cut, error) {
	return g.MinCutCtx(context.Background())
}

// MinCutCtx is MinCut under a context: the push-relabel core polls
// ctx.Done() between discharge batches, so a cancelled or expired
// context aborts a long cut mid-run with the context's error instead of
// burning the worker to completion. One-shot cuts are a single cold run
// through a throwaway CutArena; callers that cut repeatedly should hold
// an arena of their own (MinCutArena) to reuse its arrays and warm-start
// from the previous flow.
func (g *Graph) MinCutCtx(ctx context.Context) (*Cut, error) {
	return g.MinCutArena(ctx, NewCutArena())
}

// MinCutRelabelToFront is the previous production algorithm — push-relabel
// with the relabel-to-front discharge order over an adjacency-list
// network. Its scan-restart global-relabel loop goes quadratic on large
// graphs; it is retained as the old-vs-new baseline for the cut benchmark
// harness (coign bench-cut) and as a third independent implementation for
// cross-checks.
func (g *Graph) MinCutRelabelToFront() (*Cut, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	f, inf := g.build()
	flow := f.maxFlowRelabelToFront()
	return g.extractCutSides(f.minCutSides(), flow, inf)
}

// extractCutSides turns a source-side indicator over the graph's nodes
// into a Cut: it applies Coign's free-floating-component rule, prices the
// crossing edges under the original weights, and rejects any cut that
// splits a co-location constraint.
func (g *Graph) extractCutSides(onSource []bool, flow, inf float64) (*Cut, error) {
	return g.extractCutSidesPinned(onSource, flow, inf, g.pinned)
}

// extractCutSidesPinned is extractCutSides under an explicit pin
// assignment, which may differ from the graph's own — the multiway
// isolation heuristic cuts the same graph under per-terminal pin sets
// without cloning it.
func (g *Graph) extractCutSidesPinned(onSource []bool, flow, inf float64, pins map[int]Side) (*Cut, error) {
	cut := &Cut{Assignment: make(map[string]Side, g.Len()), FlowValue: flow}
	for i, name := range g.names {
		if onSource[i] {
			cut.Assignment[name] = SourceSide
		} else {
			cut.Assignment[name] = SinkSide
		}
	}
	// A connected component that touches neither terminal (no pinned node)
	// crosses no cut edge wherever it lands. Coign leaves such
	// free-floating components on the client, where the undistributed
	// application would have run them.
	uf := newUnionFind(g.Len())
	for e := range g.edges {
		uf.union(e[0], e[1])
	}
	for e := range g.coloc {
		uf.union(e[0], e[1])
	}
	componentPinned := make(map[int]bool)
	for v := range pins {
		componentPinned[uf.find(v)] = true
	}
	for i, name := range g.names {
		if !onSource[i] && !componentPinned[uf.find(i)] {
			cut.Assignment[name] = SourceSide
		}
	}
	// Weight of the cut under original capacities, summed in sorted edge
	// order: float addition is order-sensitive in the last ulp, and map
	// iteration order would make repeated runs disagree byte-for-byte in
	// JSON artifacts.
	var w float64
	for _, e := range g.sortedEdgeKeys() {
		ew := g.edges[e]
		if cut.Assignment[g.names[e[0]]] != cut.Assignment[g.names[e[1]]] {
			if math.IsInf(ew, 1) {
				return nil, fmt.Errorf("graph: minimum cut crosses a co-location constraint")
			}
			w += ew
		}
	}
	for e := range g.coloc {
		if cut.Assignment[g.names[e[0]]] != cut.Assignment[g.names[e[1]]] {
			return nil, fmt.Errorf("graph: minimum cut crosses a co-location constraint")
		}
	}
	cut.Weight = w
	if w > inf {
		return nil, fmt.Errorf("graph: cut weight %g exceeds infinity proxy %g", w, inf)
	}
	return cut, nil
}

// unionFind is a standard disjoint-set forest with path compression.
type unionFind struct {
	parent []int
}

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}
