package graph

import (
	"math"
	"math/rand"
	"strconv"
)

// Synthetic ICC-graph workloads. The paper's applications top out at a
// few thousand classifications; stressing the cut engine beyond them
// needs graphs we can grow to 100k+ nodes while keeping the shape of a
// real inter-component communication graph: a heavy-tailed degree
// distribution (a few hub components — document roots, caches — talk to
// everything), pins from location constraints, pair-wise co-locations
// from non-remotable interfaces, and a sprinkle of free-floating
// components that never touch a terminal. Generation is fully seeded:
// the same SynthConfig always yields the identical graph, so benchmark
// runs are reproducible across machines and PRs.

// SynthConfig parameterizes a synthetic workload.
type SynthConfig struct {
	// Nodes is the component count (minimum 2).
	Nodes int
	// AvgDegree is the number of attachment edges per arriving node
	// (default 8). Preferential attachment makes the degree distribution
	// power-law.
	AvgDegree int
	// PinFraction of nodes get a location constraint, alternating client
	// and server (default 0.05).
	PinFraction float64
	// CoLocateFraction of nodes contribute a pair-wise co-location
	// constraint along an existing edge (default 0.02). Constraints that
	// would contradict the pins are skipped, so the instance is always
	// satisfiable.
	CoLocateFraction float64
	// FreeFraction of nodes form small chains detached from the main
	// component (default 0.01) — the free-floating components Coign
	// leaves on the client.
	FreeFraction float64
	// Seed drives the generator; equal seeds give equal graphs.
	Seed int64
}

func (c SynthConfig) withDefaults() SynthConfig {
	if c.Nodes < 2 {
		c.Nodes = 2
	}
	if c.AvgDegree <= 0 {
		c.AvgDegree = 8
	}
	if c.PinFraction == 0 {
		c.PinFraction = 0.05
	}
	if c.CoLocateFraction == 0 {
		c.CoLocateFraction = 0.02
	}
	if c.FreeFraction == 0 {
		c.FreeFraction = 0.01
	}
	return c
}

// synthName names synthetic component i.
func synthName(i int) string { return "c" + strconv.Itoa(i) }

// Synthesize builds a seeded synthetic ICC graph per the config. The
// result always passes Validate: pins and co-locations are installed with
// a union-find guard that skips contradictory constraints.
func Synthesize(cfg SynthConfig) *Graph {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := New()

	free := int(cfg.FreeFraction * float64(cfg.Nodes))
	main := cfg.Nodes - free
	if main < 2 {
		main = cfg.Nodes
		free = 0
	}
	for i := 0; i < cfg.Nodes; i++ {
		g.Node(synthName(i))
	}

	// Communication weight: exponentially distributed seconds around a
	// millisecond mean — most interfaces chatter lightly, a few move bulk.
	weight := func() float64 {
		return -math.Log(1-rng.Float64()) * 1e-3
	}

	// Preferential attachment over the main component: each arriving node
	// links to endpoints of existing edges (probability proportional to
	// degree), with a uniform fallback for mixing.
	endpoints := make([]int32, 0, 2*main*cfg.AvgDegree)
	type edge struct{ a, b int32 }
	edges := make([]edge, 0, main*cfg.AvgDegree)
	addEdge := func(a, b int32) {
		if a == b {
			return
		}
		g.AddEdge(synthName(int(a)), synthName(int(b)), weight())
		endpoints = append(endpoints, a, b)
		edges = append(edges, edge{a, b})
	}
	addEdge(0, 1)
	for i := 2; i < main; i++ {
		k := cfg.AvgDegree
		if k > i {
			k = i
		}
		for e := 0; e < k; e++ {
			var target int32
			if rng.Intn(4) == 0 {
				target = int32(rng.Intn(i))
			} else {
				target = endpoints[rng.Intn(len(endpoints))]
			}
			addEdge(int32(i), target)
		}
	}

	// Free-floating chains among the trailing nodes.
	for i := main; i < cfg.Nodes; i++ {
		if (i-main)%4 != 0 {
			g.AddEdge(synthName(i-1), synthName(i), weight())
		}
	}

	// Pins, alternating sides, on main-component nodes only.
	pins := int(cfg.PinFraction * float64(main))
	if pins < 2 {
		pins = 2
	}
	side := make([]int8, cfg.Nodes)
	for i := range side {
		side[i] = -1
	}
	uf := newUnionFind(cfg.Nodes)
	for p := 0; p < pins; p++ {
		v := rng.Intn(main)
		if side[v] != -1 {
			continue
		}
		s := SourceSide
		if p%2 == 1 {
			s = SinkSide
		}
		g.Pin(synthName(v), s)
		side[v] = int8(s)
	}

	// Co-locations along existing edges, guarded against contradicting
	// the pins (transitively, via the same union-find Validate uses).
	welds := int(cfg.CoLocateFraction * float64(main))
	for c := 0; c < welds && len(edges) > 0; c++ {
		e := edges[rng.Intn(len(edges))]
		ra, rb := uf.find(int(e.a)), uf.find(int(e.b))
		if ra == rb {
			continue
		}
		sa, sb := side[ra], side[rb]
		if sa != -1 && sb != -1 && sa != sb {
			continue
		}
		uf.union(ra, rb)
		merged := sa
		if merged == -1 {
			merged = sb
		}
		side[uf.find(ra)] = merged
		g.CoLocate(synthName(int(e.a)), synthName(int(e.b)))
	}
	return g
}
