package graph

import (
	"fmt"
	"testing"
)

// Benchmarks for the cut engine over synthetic ICC workloads. The
// bench-cut CLI harness sweeps larger sizes and emits BENCH_graphcut.json;
// these testing.B benchmarks cover the same three implementations at sizes
// friendly to -bench on a laptop.

func benchSizes(b *testing.B, maxNodes int, cut func(*Graph) (*Cut, error)) {
	for _, n := range []int{1000, 5000, 20000} {
		if n > maxNodes {
			continue
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			base := Synthesize(SynthConfig{Nodes: n, Seed: 1})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g := Synthesize(SynthConfig{Nodes: n, Seed: 1})
				b.StartTimer()
				c, err := cut(g)
				if err != nil {
					b.Fatal(err)
				}
				if c.Weight <= 0 {
					b.Fatalf("degenerate cut on %d-node workload", base.Len())
				}
			}
		})
	}
}

func BenchmarkMinCutHighestLabel(b *testing.B) {
	benchSizes(b, 20000, (*Graph).MinCut)
}

func BenchmarkMinCutRelabelToFront(b *testing.B) {
	benchSizes(b, 20000, (*Graph).MinCutRelabelToFront)
}

func BenchmarkMinCutEdmondsKarp(b *testing.B) {
	benchSizes(b, 5000, (*Graph).MinCutEdmondsKarp)
}
