package graph

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// constrainedRandomGraph builds a seeded instance exercising everything
// the cut engine must handle at once: random finite edges, several pins
// per side, feasible co-location welds (installed with the same
// union-find guard the generator uses), and a free-floating component
// touching no terminal.
func constrainedRandomGraph(seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New()
	n := 8 + rng.Intn(20)
	name := func(i int) string { return fmt.Sprintf("n%d", i) }
	for i := 0; i < n; i++ {
		g.Node(name(i))
	}
	for e := 0; e < n*3; e++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			g.AddEdge(name(a), name(b), 0.1+rng.Float64()*5)
		}
	}
	side := make([]int8, n+3)
	for i := range side {
		side[i] = -1
	}
	uf := newUnionFind(n + 3)
	for p := 0; p < 2+rng.Intn(3); p++ {
		v := rng.Intn(n)
		if side[v] != -1 {
			continue
		}
		s := Side(p % 2)
		g.Pin(name(v), s)
		side[v] = int8(s)
	}
	for c := 0; c < rng.Intn(5); c++ {
		a, b := rng.Intn(n), rng.Intn(n)
		ra, rb := uf.find(a), uf.find(b)
		if ra == rb {
			continue
		}
		if side[ra] != -1 && side[rb] != -1 && side[ra] != side[rb] {
			continue
		}
		uf.union(ra, rb)
		merged := side[ra]
		if merged == -1 {
			merged = side[rb]
		}
		side[uf.find(ra)] = merged
		g.CoLocate(name(a), name(b))
	}
	// A free-floating pair plus an isolated node.
	g.AddEdge("float1", "float2", 1+rng.Float64())
	g.Node("lonely")
	return g
}

// TestPropertyHighestLabelMatchesOracles cross-checks the production CSR
// highest-label core against both independent implementations — the
// Edmonds–Karp oracle and the legacy relabel-to-front path — on seeded
// random graphs with pins, co-locations, and free-floating components.
func TestPropertyHighestLabelMatchesOracles(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < 150; seed++ {
		g := constrainedRandomGraph(seed)
		if g.Validate() != nil {
			t.Fatalf("seed %d: generator produced an infeasible instance", seed)
		}
		hl, err := g.MinCut()
		if err != nil {
			t.Fatalf("seed %d: highest-label: %v", seed, err)
		}
		ek, err := g.MinCutEdmondsKarp()
		if err != nil {
			t.Fatalf("seed %d: edmonds-karp: %v", seed, err)
		}
		rtf, err := g.MinCutRelabelToFront()
		if err != nil {
			t.Fatalf("seed %d: relabel-to-front: %v", seed, err)
		}
		tol := 1e-6 * (1 + hl.Weight)
		if math.Abs(hl.Weight-ek.Weight) > tol || math.Abs(hl.Weight-rtf.Weight) > tol {
			t.Fatalf("seed %d: weights diverge: hl=%v ek=%v rtf=%v", seed, hl.Weight, ek.Weight, rtf.Weight)
		}
		if math.Abs(hl.FlowValue-hl.Weight) > tol {
			t.Fatalf("seed %d: flow %v != weight %v", seed, hl.FlowValue, hl.Weight)
		}
		// Constraints respected: pins and welds, via the cut's own pricing.
		for i := 0; i < g.Len(); i++ {
			if s, ok := g.Pinned(g.Name(i)); ok && hl.Assignment[g.Name(i)] != s {
				t.Fatalf("seed %d: pin on %s violated", seed, g.Name(i))
			}
		}
		for e := range g.coloc {
			a, b := g.Name(e[0]), g.Name(e[1])
			if hl.Assignment[a] != hl.Assignment[b] {
				t.Fatalf("seed %d: co-location %s,%s split", seed, a, b)
			}
		}
		// Free-floating components land on the client.
		for _, free := range []string{"float1", "float2", "lonely"} {
			if hl.Assignment[free] != SourceSide {
				t.Fatalf("seed %d: free node %s on %v", seed, free, hl.Assignment[free])
			}
		}
		if w := g.EvaluateAssignment(hl.Assignment); math.Abs(w-hl.Weight) > tol {
			t.Fatalf("seed %d: assignment re-evaluates to %v, cut says %v", seed, w, hl.Weight)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	t.Parallel()
	cfg := SynthConfig{Nodes: 2000, Seed: 42}
	a := Synthesize(cfg)
	b := Synthesize(cfg)
	if a.Len() != b.Len() || a.Edges() != b.Edges() || a.Pins() != b.Pins() || a.CoLocations() != b.CoLocations() {
		t.Fatalf("same seed, different shape: %d/%d/%d/%d vs %d/%d/%d/%d",
			a.Len(), a.Edges(), a.Pins(), a.CoLocations(),
			b.Len(), b.Edges(), b.Pins(), b.CoLocations())
	}
	if math.Abs(a.TotalWeight()-b.TotalWeight()) > 1e-12 {
		t.Fatalf("same seed, different weights: %v vs %v", a.TotalWeight(), b.TotalWeight())
	}
	c := Synthesize(SynthConfig{Nodes: 2000, Seed: 43})
	if math.Abs(a.TotalWeight()-c.TotalWeight()) < 1e-12 {
		t.Fatal("different seeds produced identical weights")
	}
	cutA, err := a.MinCut()
	if err != nil {
		t.Fatal(err)
	}
	cutB, err := b.MinCut()
	if err != nil {
		t.Fatal(err)
	}
	// Edge-map iteration order varies between runs, so the crossing-weight
	// summation order (and its last-bit rounding) may differ; the cut itself
	// must not.
	if math.Abs(cutA.Weight-cutB.Weight) > 1e-9*(1+cutA.Weight) {
		t.Fatalf("same seed, different cuts: %v vs %v", cutA.Weight, cutB.Weight)
	}
}

// TestSynthesizeFeasibleAndExact: generated workloads always validate, and
// the production core agrees with the oracle on them at benchmark-relevant
// (if small) sizes.
func TestSynthesizeFeasibleAndExact(t *testing.T) {
	t.Parallel()
	for _, n := range []int{100, 500, 2000} {
		for seed := int64(1); seed <= 3; seed++ {
			g := Synthesize(SynthConfig{Nodes: n, Seed: seed})
			if err := g.Validate(); err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			if g.Pins() < 2 || g.Edges() == 0 {
				t.Fatalf("n=%d seed=%d: degenerate workload (%d pins, %d edges)", n, seed, g.Pins(), g.Edges())
			}
			hl, err := g.MinCut()
			if err != nil {
				t.Fatal(err)
			}
			ek, err := g.MinCutEdmondsKarp()
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(hl.Weight-ek.Weight) > 1e-6*(1+hl.Weight) {
				t.Fatalf("n=%d seed=%d: hl %v vs ek %v", n, seed, hl.Weight, ek.Weight)
			}
		}
	}
}
