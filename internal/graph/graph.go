// Package graph implements the inter-component communication graph and the
// graph-cutting algorithms Coign uses to choose distributions: the exact
// two-way lift-to-front (relabel-to-front) minimum-cut algorithm of
// CLRS [paper ref 9] for client–server partitioning, a BFS augmenting-path
// baseline for cross-checking and ablation, and the isolation-heuristic
// multiway cut for the paper's future-work extension to three or more
// machines.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// Side identifies which terminal a node lands with after a two-way cut.
type Side int

// Cut sides.
const (
	SourceSide Side = 0 // the client in Coign's usage
	SinkSide   Side = 1 // the server
)

// Graph is an undirected, weighted communication graph with two designated
// terminals. Node weights are communication times (seconds): the cost paid
// if the edge's endpoints are placed on different machines.
type Graph struct {
	names  []string
	index  map[string]int
	edges  map[[2]int]float64
	pinned map[int]Side
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		index:  make(map[string]int),
		edges:  make(map[[2]int]float64),
		pinned: make(map[int]Side),
	}
}

// Node interns a node by name and returns its index.
func (g *Graph) Node(name string) int {
	if i, ok := g.index[name]; ok {
		return i
	}
	i := len(g.names)
	g.names = append(g.names, name)
	g.index[name] = i
	return i
}

// HasNode reports whether the named node exists.
func (g *Graph) HasNode(name string) bool {
	_, ok := g.index[name]
	return ok
}

// Name returns the name of node i.
func (g *Graph) Name(i int) string { return g.names[i] }

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.names) }

// AddEdge accumulates weight w onto the undirected edge {a, b}. Self-edges
// and non-positive weights are ignored: communication within one node
// never crosses a machine boundary.
func (g *Graph) AddEdge(a, b string, w float64) {
	if a == b || w <= 0 {
		return
	}
	i, j := g.Node(a), g.Node(b)
	if i > j {
		i, j = j, i
	}
	g.edges[[2]int{i, j}] += w
}

// EdgeWeight returns the accumulated weight of edge {a, b}.
func (g *Graph) EdgeWeight(a, b string) float64 {
	i, ok := g.index[a]
	if !ok {
		return 0
	}
	j, ok := g.index[b]
	if !ok {
		return 0
	}
	if i > j {
		i, j = j, i
	}
	return g.edges[[2]int{i, j}]
}

// Edges returns the number of distinct edges.
func (g *Graph) Edges() int { return len(g.edges) }

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	var t float64
	for _, w := range g.edges {
		t += w
	}
	return t
}

// Pin constrains a node to a side. Location constraints — GUI components
// to the client, storage components to the server, programmer-specified
// absolute constraints — become infinite-capacity edges to the terminals.
func (g *Graph) Pin(name string, s Side) {
	g.pinned[g.Node(name)] = s
}

// Pinned returns the side a node is pinned to, if any.
func (g *Graph) Pinned(name string) (Side, bool) {
	i, ok := g.index[name]
	if !ok {
		return 0, false
	}
	s, ok := g.pinned[i]
	return s, ok
}

// CoLocate constrains two nodes to the same machine (the paper's pair-wise
// constraint, used for endpoints of non-remotable interfaces) by joining
// them with an effectively infinite edge.
func (g *Graph) CoLocate(a, b string) {
	i, j := g.Node(a), g.Node(b)
	if i > j {
		i, j = j, i
	}
	g.edges[[2]int{i, j}] = math.Inf(1)
}

// Validate reports structural problems: contradictory pins joined by
// infinite edges make the instance unsatisfiable.
func (g *Graph) Validate() error {
	for e, w := range g.edges {
		if !math.IsInf(w, 1) {
			continue
		}
		si, iok := g.pinned[e[0]]
		sj, jok := g.pinned[e[1]]
		if iok && jok && si != sj {
			return fmt.Errorf("graph: nodes %q and %q are co-located but pinned to different machines",
				g.names[e[0]], g.names[e[1]])
		}
	}
	return nil
}

// Cut is the result of a two-way partition.
type Cut struct {
	// Assignment maps every node name to its side.
	Assignment map[string]Side
	// Weight is the total weight of edges crossing the cut (the
	// communication time of the chosen distribution).
	Weight float64
	// FlowValue is the max-flow value computed; equal to Weight up to
	// floating-point error, kept separately as a cross-check.
	FlowValue float64
}

// Count returns how many nodes landed on the given side.
func (c *Cut) Count(s Side) int {
	n := 0
	for _, side := range c.Assignment {
		if side == s {
			n++
		}
	}
	return n
}

// NodesOn returns the sorted names on a side.
func (c *Cut) NodesOn(s Side) []string {
	var out []string
	for name, side := range c.Assignment {
		if side == s {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
