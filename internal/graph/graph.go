// Package graph implements the inter-component communication graph and the
// graph-cutting algorithms Coign uses to choose distributions: an exact
// two-way minimum cut via highest-label push-relabel over a flat CSR flow
// network (the production path, csr.go and hipr.go), the lift-to-front
// (relabel-to-front) algorithm of CLRS [paper ref 9] retained as the
// old-vs-new benchmark baseline, a BFS augmenting-path implementation
// (Edmonds–Karp) as the exact cross-check oracle, and the
// isolation-heuristic multiway cut for the paper's future-work extension
// to three or more machines. A seeded synthetic-workload generator
// (synth.go) produces power-law ICC graphs up to 100k+ nodes for the cut
// benchmark harness.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// Side identifies which terminal a node lands with after a two-way cut.
type Side int

// Cut sides.
const (
	SourceSide Side = 0 // the client in Coign's usage
	SinkSide   Side = 1 // the server
)

// Graph is an undirected, weighted communication graph with two designated
// terminals. Node weights are communication times (seconds): the cost paid
// if the edge's endpoints are placed on different machines.
type Graph struct {
	names  []string
	index  map[string]int
	edges  map[[2]int]float64
	pinned map[int]Side
	// coloc holds pair-wise co-location constraints as a side table keyed
	// like edges. Keeping constraints out of the edge store preserves the
	// accumulated communication weight of a constrained pair: the engine
	// reports true edge weights while the cut still treats the pair as
	// unsplittable.
	coloc map[[2]int]bool
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		index:  make(map[string]int),
		edges:  make(map[[2]int]float64),
		pinned: make(map[int]Side),
		coloc:  make(map[[2]int]bool),
	}
}

// Node interns a node by name and returns its index.
func (g *Graph) Node(name string) int {
	if i, ok := g.index[name]; ok {
		return i
	}
	i := len(g.names)
	g.names = append(g.names, name)
	g.index[name] = i
	return i
}

// HasNode reports whether the named node exists.
func (g *Graph) HasNode(name string) bool {
	_, ok := g.index[name]
	return ok
}

// Name returns the name of node i.
func (g *Graph) Name(i int) string { return g.names[i] }

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.names) }

// NodeNames returns a copy of the node names in insertion order.
func (g *Graph) NodeNames() []string {
	return append([]string(nil), g.names...)
}

// AddEdge accumulates weight w onto the undirected edge {a, b}. Self-edges
// and non-positive weights are ignored: communication within one node
// never crosses a machine boundary.
func (g *Graph) AddEdge(a, b string, w float64) {
	if a == b || w <= 0 {
		return
	}
	i, j := g.Node(a), g.Node(b)
	if i > j {
		i, j = j, i
	}
	g.edges[[2]int{i, j}] += w
}

// SetEdgeWeight overwrites the weight of the undirected edge {a, b},
// interning missing nodes. Unlike AddEdge it replaces rather than
// accumulates — the entry point for re-pricing an existing topology
// (adaptive repartitioning, warm-start sweeps). A non-positive weight
// deletes the edge, which is a topology change: an arena cutting the
// graph will restage. Self-edges are ignored.
func (g *Graph) SetEdgeWeight(a, b string, w float64) {
	if a == b {
		return
	}
	i, j := g.Node(a), g.Node(b)
	if i > j {
		i, j = j, i
	}
	if w <= 0 {
		delete(g.edges, [2]int{i, j})
		return
	}
	g.edges[[2]int{i, j}] = w
}

// EdgeNames returns the edges' endpoint names in sorted index order —
// a stable iteration order for callers that perturb and restore weights
// across repeated cuts.
func (g *Graph) EdgeNames() [][2]string {
	keys := g.sortedEdgeKeys()
	out := make([][2]string, len(keys))
	for i, e := range keys {
		out[i] = [2]string{g.names[e[0]], g.names[e[1]]}
	}
	return out
}

// EdgeWeight returns the accumulated weight of edge {a, b}.
func (g *Graph) EdgeWeight(a, b string) float64 {
	i, ok := g.index[a]
	if !ok {
		return 0
	}
	j, ok := g.index[b]
	if !ok {
		return 0
	}
	if i > j {
		i, j = j, i
	}
	return g.edges[[2]int{i, j}]
}

// Edges returns the number of distinct edges.
func (g *Graph) Edges() int { return len(g.edges) }

// sortedEdgeKeys returns the edge keys in (lo, hi) index order, for
// iteration whose float accumulation must reproduce across runs.
func (g *Graph) sortedEdgeKeys() [][2]int {
	keys := make([][2]int, 0, len(g.edges))
	for e := range g.edges {
		keys = append(keys, e)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	return keys
}

// sortedColocKeys returns the co-location keys in (lo, hi) index order.
func (g *Graph) sortedColocKeys() [][2]int {
	keys := make([][2]int, 0, len(g.coloc))
	for e := range g.coloc {
		keys = append(keys, e)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	return keys
}

// sortedPinnedNodes returns the pinned node indices in increasing order.
func (g *Graph) sortedPinnedNodes() []int {
	nodes := make([]int, 0, len(g.pinned))
	for v := range g.pinned {
		nodes = append(nodes, v)
	}
	sort.Ints(nodes)
	return nodes
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	var t float64
	for _, w := range g.edges {
		t += w
	}
	return t
}

// Pin constrains a node to a side. Location constraints — GUI components
// to the client, storage components to the server, programmer-specified
// absolute constraints — become infinite-capacity edges to the terminals.
func (g *Graph) Pin(name string, s Side) {
	g.pinned[g.Node(name)] = s
}

// Pins returns the number of pinned nodes.
func (g *Graph) Pins() int { return len(g.pinned) }

// Pinned returns the side a node is pinned to, if any.
func (g *Graph) Pinned(name string) (Side, bool) {
	i, ok := g.index[name]
	if !ok {
		return 0, false
	}
	s, ok := g.pinned[i]
	return s, ok
}

// CoLocate constrains two nodes to the same machine (the paper's pair-wise
// constraint, used for endpoints of non-remotable interfaces). The
// constraint is tracked separately from the edge store, so any
// communication weight accumulated on the pair — before or after — is
// preserved.
func (g *Graph) CoLocate(a, b string) {
	i, j := g.Node(a), g.Node(b)
	if i == j {
		return
	}
	if i > j {
		i, j = j, i
	}
	g.coloc[[2]int{i, j}] = true
}

// CoLocated reports whether a direct pair-wise constraint joins a and b.
func (g *Graph) CoLocated(a, b string) bool {
	i, ok := g.index[a]
	if !ok {
		return false
	}
	j, ok := g.index[b]
	if !ok {
		return false
	}
	if i > j {
		i, j = j, i
	}
	return g.coloc[[2]int{i, j}]
}

// CoLocations returns the number of pair-wise co-location constraints.
func (g *Graph) CoLocations() int { return len(g.coloc) }

// WithoutCoLocations returns a copy of the graph with identical nodes,
// edges, and pins but no co-location constraints. Because constraints
// only ever merge nodes (infinite-capacity welds), the relaxed graph's
// minimum cut is a lower bound on the constrained one — the monotonicity
// oracle the full-pipeline property harness checks every cut against.
func (g *Graph) WithoutCoLocations() *Graph {
	c := New()
	c.names = append([]string(nil), g.names...)
	for i, n := range c.names {
		c.index[n] = i
	}
	for e, w := range g.edges {
		c.edges[e] = w
	}
	for i, s := range g.pinned {
		c.pinned[i] = s
	}
	return c
}

// weldUnion returns a union-find over every unsplittable connection: the
// co-location side table plus any infinite edge a caller managed to
// install directly.
func (g *Graph) weldUnion() *unionFind {
	uf := newUnionFind(g.Len())
	for e := range g.coloc {
		uf.union(e[0], e[1])
	}
	for e, w := range g.edges {
		if math.IsInf(w, 1) {
			uf.union(e[0], e[1])
		}
	}
	return uf
}

// Validate reports structural problems: contradictory pins connected by a
// chain of co-location constraints make the instance unsatisfiable. The
// check is transitive — A welded to B welded to C with A and C pinned
// apart is rejected even though no single constraint spans the pins.
func (g *Graph) Validate() error {
	return g.validatePinned(g.pinned)
}

// validatePinned is Validate under an explicit pin assignment over the
// graph's welds, for callers (the multiway heuristic) that cut the same
// graph under substituted pins.
func (g *Graph) validatePinned(pins map[int]Side) error {
	uf := g.weldUnion()
	firstPinned := make(map[int]int) // weld-component root -> pinned node
	for v, side := range pins {
		root := uf.find(v)
		w, ok := firstPinned[root]
		if !ok {
			firstPinned[root] = v
			continue
		}
		if pins[w] != side {
			return fmt.Errorf("graph: nodes %q and %q are (transitively) co-located but pinned to different machines",
				g.names[w], g.names[v])
		}
	}
	return nil
}

// Cut is the result of a two-way partition.
type Cut struct {
	// Assignment maps every node name to its side.
	Assignment map[string]Side
	// Weight is the total weight of edges crossing the cut (the
	// communication time of the chosen distribution).
	Weight float64
	// FlowValue is the max-flow value computed; equal to Weight up to
	// floating-point error, kept separately as a cross-check.
	FlowValue float64
}

// Count returns how many nodes landed on the given side.
func (c *Cut) Count(s Side) int {
	n := 0
	for _, side := range c.Assignment {
		if side == s {
			n++
		}
	}
	return n
}

// NodesOn returns the sorted names on a side.
func (c *Cut) NodesOn(s Side) []string {
	var out []string
	for name, side := range c.Assignment {
		if side == s {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
