package factory

import (
	"testing"

	"repro/internal/com"
)

func testClass() *com.Class {
	return &com.Class{ID: "CLSID_X", Name: "X", New: func() com.Object { return nil }}
}

func TestNewRejectsEmpty(t *testing.T) {
	t.Parallel()
	if _, err := New(nil, FollowCreator); err == nil {
		t.Fatal("empty distribution accepted")
	}
}

func TestPlaceKnownClassifications(t *testing.T) {
	t.Parallel()
	f, err := New(map[string]com.Machine{
		"a": com.Client,
		"b": com.Server,
	}, FollowCreator)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Place("a", testClass(), com.Client); got != com.Client {
		t.Errorf("a placed on %v", got)
	}
	if got := f.Place("b", testClass(), com.Client); got != com.Server {
		t.Errorf("b placed on %v", got)
	}
	if f.Relocations() != 1 {
		t.Errorf("relocations = %d", f.Relocations())
	}
	if f.Unknown() != 0 {
		t.Errorf("unknown = %d", f.Unknown())
	}
}

func TestPlaceUnknownFollowsCreator(t *testing.T) {
	t.Parallel()
	f, _ := New(map[string]com.Machine{"a": com.Server}, FollowCreator)
	if got := f.Place("mystery", testClass(), com.Server); got != com.Server {
		t.Errorf("unknown placed on %v", got)
	}
	if f.Unknown() != 1 {
		t.Errorf("unknown = %d", f.Unknown())
	}
	if f.Relocations() != 0 {
		t.Errorf("relocations = %d", f.Relocations())
	}
}

func TestPlaceUnknownToClient(t *testing.T) {
	t.Parallel()
	f, _ := New(map[string]com.Machine{"a": com.Server}, ToClient)
	if got := f.Place("mystery", testClass(), com.Server); got != com.Client {
		t.Errorf("unknown placed on %v", got)
	}
	if f.Relocations() != 1 {
		t.Errorf("relocation not counted")
	}
}

func TestPeerAccounting(t *testing.T) {
	t.Parallel()
	f, _ := New(map[string]com.Machine{
		"a": com.Client,
		"b": com.Server,
	}, FollowCreator)
	f.Place("a", testClass(), com.Client) // local fulfillment
	f.Place("b", testClass(), com.Client) // forwarded client -> server
	f.Place("b", testClass(), com.Client)
	peers := f.Peers()
	if len(peers) != 2 {
		t.Fatalf("peers = %d", len(peers))
	}
	client, server := peers[0], peers[1]
	if client.Machine != com.Client || server.Machine != com.Server {
		t.Fatalf("peer order: %v %v", client.Machine, server.Machine)
	}
	if client.Fulfilled != 1 || client.Forwarded != 2 {
		t.Errorf("client peer = %+v", client)
	}
	if server.Fulfilled != 2 || server.Forwarded != 0 {
		t.Errorf("server peer = %+v", server)
	}
}

func TestMachines(t *testing.T) {
	t.Parallel()
	f, _ := New(map[string]com.Machine{
		"a": com.Server,
		"b": com.Server,
		"c": com.Middle,
	}, FollowCreator)
	ms := f.Machines()
	if len(ms) != 2 || ms[0] != com.Server || ms[1] != com.Middle {
		t.Errorf("machines = %v", ms)
	}
}
