// Package factory implements Coign's component factory (paper §3.5): the
// runtime component that produces a distributed application by
// manipulating instance placement. Using output from the instance
// classifier and the profile analysis engine, the factory moves each
// component instantiation request to the appropriate computer. During
// distributed execution a copy of the factory runs on every machine; the
// factories act as peers, each trapping local instantiation requests,
// forwarding them to other machines as appropriate, and fulfilling
// requests destined for its own machine.
package factory

import (
	"fmt"
	"sort"

	"repro/internal/com"
)

// Fallback selects placement for an instantiation whose classification was
// never seen during profiling (a "new classification" in the sense of
// paper Table 2).
type Fallback int

// Fallback policies.
const (
	// FollowCreator places unknown instances with their creator — the
	// conservative default: an unknown component at worst stays local.
	FollowCreator Fallback = iota
	// ToClient places unknown instances on the client.
	ToClient
)

// Peer is the factory replica on one machine. The first factory of
// Coign's symbiotic pair handles communication with remote peers; the
// second interacts with the instance classifier and interface informer.
// Peer records the fulfillment side of that split.
type Peer struct {
	Machine   com.Machine
	Fulfilled int64 // instantiation requests fulfilled on this machine
	Forwarded int64 // requests this peer forwarded to another machine
}

// Factory realizes a distribution map produced by the analysis engine.
type Factory struct {
	dist     map[string]com.Machine
	fallback Fallback
	peers    map[com.Machine]*Peer

	relocations int64
	unknown     int64
}

// New returns a factory enforcing the given classification→machine map.
func New(dist map[string]com.Machine, fallback Fallback) (*Factory, error) {
	if len(dist) == 0 {
		return nil, fmt.Errorf("factory: empty distribution map")
	}
	f := &Factory{
		dist:     dist,
		fallback: fallback,
		peers:    make(map[com.Machine]*Peer),
	}
	for _, m := range dist {
		f.peer(m)
	}
	f.peer(com.Client)
	return f, nil
}

func (f *Factory) peer(m com.Machine) *Peer {
	p := f.peers[m]
	if p == nil {
		p = &Peer{Machine: m}
		f.peers[m] = p
	}
	return p
}

// Place implements the rte.Placer contract: it decides where an
// instantiation request is fulfilled. Requests whose classification maps
// to a remote machine are forwarded to the peer factory there.
func (f *Factory) Place(classification string, class *com.Class, creator com.Machine) com.Machine {
	target, known := f.dist[classification]
	if !known {
		f.unknown++
		switch f.fallback {
		case ToClient:
			target = com.Client
		default:
			target = creator
		}
	}
	if target != creator {
		f.relocations++
		f.peer(creator).Forwarded++
	}
	f.peer(target).Fulfilled++
	return target
}

// Relocations returns how many instantiation requests were moved away from
// their creator's machine.
func (f *Factory) Relocations() int64 { return f.relocations }

// Unknown returns how many instantiations had no profiled classification
// and fell back to the default policy — the run-time analog of Table 2's
// "new classifications".
func (f *Factory) Unknown() int64 { return f.unknown }

// Peers returns the per-machine factory replicas, sorted by machine.
func (f *Factory) Peers() []*Peer {
	out := make([]*Peer, 0, len(f.peers))
	for _, p := range f.peers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Machine < out[j].Machine })
	return out
}

// Machines returns the distinct machines named by the distribution map.
func (f *Factory) Machines() []com.Machine {
	seen := map[com.Machine]bool{}
	for _, m := range f.dist {
		seen[m] = true
	}
	out := make([]com.Machine, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
