package core

import (
	"context"
	"testing"

	"repro/internal/analysis"
	"repro/internal/apps/octarine"
	"repro/internal/binimg"
	"repro/internal/classify"
	"repro/internal/netsim"
	"repro/internal/scenario"
)

func TestPipelineStages(t *testing.T) {
	t.Parallel()
	app := octarine.New()
	adps := New(app)

	// Fresh pipeline: original binary, not instrumented.
	if adps.Image.Instrumented() {
		t.Fatal("fresh image instrumented")
	}
	if _, _, err := adps.ProfileScenario(octarine.ScenNewDoc, false); err == nil {
		t.Fatal("profiling an un-instrumented binary succeeded")
	}

	// Rewrite.
	if err := adps.Instrument(); err != nil {
		t.Fatal(err)
	}
	if !adps.Image.Instrumented() || adps.Image.Config.Mode != binimg.ModeProfiling {
		t.Fatalf("image after rewrite: %+v", adps.Image.Config)
	}
	if len(adps.Image.Config.InterfaceMetadata) == 0 {
		t.Error("no interface metadata in configuration record")
	}

	// Profile: the run accumulates into the binary too.
	p, run, err := adps.ProfileScenario(octarine.ScenOldWp0, false)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalCalls() == 0 || run.Profile != p {
		t.Fatal("profiling returned inconsistent results")
	}
	embedded, err := adps.Image.Config.GetProfile()
	if err != nil || embedded == nil {
		t.Fatalf("no in-binary profile: %v", err)
	}
	if embedded.TotalCalls() != p.TotalCalls() {
		t.Errorf("embedded calls = %d, want %d", embedded.TotalCalls(), p.TotalCalls())
	}

	// Analyze and write the distribution into the binary.
	res, err := adps.Analyze(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Distribution) == 0 {
		t.Fatal("analysis produced no distribution")
	}
	// Cannot run distributed before the rewriter writes the map.
	if _, err := adps.RunDistributed(octarine.ScenOldWp0, false); err == nil {
		t.Fatal("distributed run before SetDistribution succeeded")
	}
	if err := adps.WriteDistribution(res); err != nil {
		t.Fatal(err)
	}
	if adps.Image.Config.Mode != binimg.ModeDistribution {
		t.Fatal("binary not in distribution mode")
	}

	// The distributed run loads everything from the binary.
	dres, err := adps.RunDistributed(octarine.ScenOldWp0, false)
	if err != nil {
		t.Fatal(err)
	}
	if dres.Violations != 0 {
		t.Errorf("violations = %d", dres.Violations)
	}
}

func TestProfileScenariosMerges(t *testing.T) {
	t.Parallel()
	adps := New(octarine.New())
	if err := adps.Instrument(); err != nil {
		t.Fatal(err)
	}
	p, err := adps.ProfileScenarios([]string{octarine.ScenNewDoc, octarine.ScenNewTbl}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Scenarios) != 2 {
		t.Errorf("scenarios = %v", p.Scenarios)
	}
	if _, err := adps.ProfileScenarios(nil, false); err == nil {
		t.Error("empty scenario list accepted")
	}
}

func TestNetworkProfileOnDemand(t *testing.T) {
	t.Parallel()
	adps := New(octarine.New())
	if err := adps.Instrument(); err != nil {
		t.Fatal(err)
	}
	p, _, err := adps.ProfileScenario(octarine.ScenNewDoc, false)
	if err != nil {
		t.Fatal(err)
	}
	if adps.NetProfile != nil {
		t.Fatal("network profile exists before analysis")
	}
	if _, err := adps.Analyze(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	if adps.NetProfile == nil {
		t.Fatal("analysis did not run the network profiler")
	}
	if adps.NetProfile.Name != netsim.TenBaseT.Name {
		t.Errorf("profiled network = %s", adps.NetProfile.Name)
	}
}

func TestScenarioExperimentReport(t *testing.T) {
	t.Parallel()
	adps := New(octarine.New())
	rep, err := adps.ScenarioExperiment(context.Background(), octarine.ScenOldTb3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scenario != octarine.ScenOldTb3 {
		t.Errorf("scenario = %s", rep.Scenario)
	}
	if rep.DefaultComm <= rep.CoignComm {
		t.Errorf("no improvement: default %v vs coign %v", rep.DefaultComm, rep.CoignComm)
	}
	if rep.Savings <= 0.5 {
		t.Errorf("savings = %v", rep.Savings)
	}
	// Prediction error within the paper's ±8% envelope.
	if rep.PredictionErr > 0.08 || rep.PredictionErr < -0.08 {
		t.Errorf("prediction error = %v, want within ±8%%", rep.PredictionErr)
	}
	// The experiment re-arms the image for the next scenario.
	if adps.Image.Config.Mode != binimg.ModeProfiling {
		t.Error("image not re-armed for profiling")
	}
}

func TestClassifierAccuracyTable2Shape(t *testing.T) {
	t.Parallel()
	// Run the Table 2 experiment on Octarine for the key classifiers and
	// verify the paper's qualitative ordering:
	//   - the incremental straw man produces many new classifications on
	//     bigone and the worst correlation;
	//   - ST yields few classifications (one per class) and coarse
	//     granularity (many instances per classification);
	//   - IFCB yields the most classifications, no new classifications on
	//     bigone, and the best correlation.
	app := octarine.New()
	training := scenario.TrainingForApp("octarine")
	big, err := scenario.BigoneForApp("octarine")
	if err != nil {
		t.Fatal(err)
	}
	eval := func(kind classify.Kind) *analysis.ClassifierEval {
		res, err := ClassifierAccuracy(app, kind, 0, training, big, netsim.TenBaseT, 1)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		return res
	}
	inc := eval(classify.Incremental)
	st := eval(classify.ST)
	ifcb := eval(classify.IFCB)

	if inc.NewClassifications == 0 {
		t.Error("incremental produced no new classifications on bigone")
	}
	if ifcb.NewClassifications != 0 {
		t.Errorf("ifcb produced %d new classifications on bigone", ifcb.NewClassifications)
	}
	if st.ProfiledClassifications >= ifcb.ProfiledClassifications {
		t.Errorf("ST %d classifications >= IFCB %d", st.ProfiledClassifications, ifcb.ProfiledClassifications)
	}
	if st.AvgInstancesPerClassification <= ifcb.AvgInstancesPerClassification {
		t.Errorf("ST granularity %v <= IFCB %v",
			st.AvgInstancesPerClassification, ifcb.AvgInstancesPerClassification)
	}
	if ifcb.AvgCorrelation < st.AvgCorrelation {
		t.Errorf("IFCB correlation %v < ST %v", ifcb.AvgCorrelation, st.AvgCorrelation)
	}
	if ifcb.AvgCorrelation < 0.9 {
		t.Errorf("IFCB correlation = %v, want high", ifcb.AvgCorrelation)
	}
	// Incremental's accuracy suffers badly on the input-driven synthesis.
	if inc.AvgCorrelation > 0.5 {
		t.Errorf("incremental correlation = %v, suspiciously high", inc.AvgCorrelation)
	}
}

func TestSTPlacementIsDebilitating(t *testing.T) {
	t.Parallel()
	// The ST classifier must assign all instances of a class to the same
	// machine (paper §4.2: "a debilitating feature for all of the
	// applications we examined"). In o_offtb3 the template reader and the
	// 150-page table reader are distinct components with opposite optimal
	// placements; IFCB separates them, ST cannot, so the ST-chosen
	// distribution communicates at least as much.
	commUnder := func(kind classify.Kind) float64 {
		adps := New(octarine.New())
		adps.ClassifierKind = kind
		rep, err := adps.ScenarioExperiment(context.Background(), octarine.ScenOffTb3)
		if err != nil {
			t.Fatal(err)
		}
		return rep.CoignComm.Seconds()
	}
	st := commUnder(classify.ST)
	ifcb := commUnder(classify.IFCB)
	if ifcb > st*1.001 {
		t.Errorf("IFCB distribution (%vs) worse than ST (%vs)", ifcb, st)
	}
}

func TestClassifierAccuracyStackDepthTable3Shape(t *testing.T) {
	t.Parallel()
	// Accuracy and classification counts increase with stack depth and
	// saturate (paper Table 3).
	app := octarine.New()
	training := []string{octarine.ScenOldWp0, octarine.ScenOldBth, octarine.ScenNewMus}
	prev := -1.0
	prevCount := -1
	for _, depth := range []int{1, 3, 0} {
		res, err := ClassifierAccuracy(app, classify.IFCB, depth, training, octarine.ScenOldBth, netsim.TenBaseT, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.ProfiledClassifications < prevCount {
			t.Errorf("depth %d: classifications decreased (%d < %d)",
				depth, res.ProfiledClassifications, prevCount)
		}
		if res.AvgCorrelation < prev-0.05 {
			t.Errorf("depth %d: correlation regressed (%v < %v)", depth, res.AvgCorrelation, prev)
		}
		prev = res.AvgCorrelation
		prevCount = res.ProfiledClassifications
	}
}

func TestClassifierAccuracyErrors(t *testing.T) {
	t.Parallel()
	app := octarine.New()
	if _, err := ClassifierAccuracy(app, classify.IFCB, 0, nil, octarine.ScenBigone, netsim.TenBaseT, 1); err == nil {
		t.Error("no training scenarios accepted")
	}
	if _, err := ClassifierAccuracy(app, classify.IFCB, 0, []string{"o_nope"}, octarine.ScenBigone, netsim.TenBaseT, 1); err == nil {
		t.Error("bad training scenario accepted")
	}
	if _, err := ClassifierAccuracy(app, classify.IFCB, 0, []string{octarine.ScenNewDoc}, "o_nope", netsim.TenBaseT, 1); err == nil {
		t.Error("bad eval scenario accepted")
	}
}

func TestImageRoundTripThroughDisk(t *testing.T) {
	t.Parallel()
	// The pipeline state survives writing the binary to disk and loading
	// it back — the "end user without source code" workflow.
	adps := New(octarine.New())
	rep, err := adps.ScenarioExperiment(context.Background(), octarine.ScenOldWp7)
	if err != nil {
		t.Fatal(err)
	}
	_ = rep
	// Re-create the distribution image and run from a decoded copy.
	p, _, err := adps.ProfileScenario(octarine.ScenOldWp7, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := adps.Analyze(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if err := adps.WriteDistribution(res); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/octarine.img"
	if err := adps.Image.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := binimg.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	adps2 := New(octarine.New())
	adps2.Image = loaded
	dres, err := adps2.RunDistributed(octarine.ScenOldWp7, false)
	if err != nil {
		t.Fatal(err)
	}
	if dres.AppPerMachine[1] == 0 { // com.Server
		t.Error("distribution loaded from disk placed nothing on the server")
	}
}
