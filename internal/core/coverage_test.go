package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/apps/quickstart"
	"repro/internal/com"
)

// TestCoverageGateQuickstart is the end-to-end acceptance test for the
// scenario-coverage gate: the quickstart application declares one
// activation site (Crunch -> View, a print-preview path) that the default
// training scenario never exercises. The coverage report must flag it,
// and installing the conservative constraints must keep the uncovered
// edge's endpoints co-located in the chosen distribution.
func TestCoverageGateQuickstart(t *testing.T) {
	t.Parallel()
	a := New(quickstart.New())
	cov, prof, err := a.CoverageReport([]string{"default"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(cov.Misses) != 0 {
		t.Fatalf("static misses on quickstart: %v", cov.Misses)
	}
	if got := cov.Percent(); math.Abs(got-75.0) > 0.01 {
		t.Errorf("coverage = %.1f%%, want 75.0%%", got)
	}
	var sawEdge bool
	for _, e := range cov.UncoveredEdges() {
		if e.Src == "Crunch" && e.Dst == "View" {
			sawEdge = true
		}
	}
	if !sawEdge {
		t.Fatalf("Crunch -> View not reported uncovered: %+v", cov.UncoveredEdges())
	}

	// The install step welded the unpriced edge into the constraint set.
	if _, ok := a.AnalysisOptions.Constraints.MustCoLocate("Crunch", "View"); !ok {
		t.Fatal("uncovered edge did not become a co-location constraint")
	}

	// And the chosen distribution honors it: every Crunch and View
	// classification lands on the same machine.
	res, err := a.Analyze(context.Background(), prof)
	if err != nil {
		t.Fatal(err)
	}
	machines := make(map[string]map[com.Machine]bool)
	for id, m := range res.Distribution {
		ci := prof.Classifications[id]
		if ci == nil {
			continue
		}
		if machines[ci.Class] == nil {
			machines[ci.Class] = make(map[com.Machine]bool)
		}
		machines[ci.Class][m] = true
	}
	if len(machines["Crunch"]) != 1 || len(machines["View"]) != 1 {
		t.Fatalf("split placements: Crunch=%v View=%v", machines["Crunch"], machines["View"])
	}
	for m := range machines["Crunch"] {
		if !machines["View"][m] {
			t.Errorf("Crunch on %v but View on %v", machines["Crunch"], machines["View"])
		}
	}

	// Property: conservative coverage constraints only remove cut options,
	// so the constrained min-cut can never be cheaper than the
	// unconstrained one.
	b := New(quickstart.New())
	if _, _, err := b.CoverageReport([]string{"default"}, false); err != nil {
		t.Fatal(err)
	}
	base, err := b.Analyze(context.Background(), prof)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut.Weight < base.Cut.Weight-1e-9 {
		t.Errorf("coverage constraints decreased cut cost: %v < %v", res.Cut.Weight, base.Cut.Weight)
	}
}
