// Package core implements the Coign Automatic Distributed Partitioning
// System pipeline (paper Figure 1): starting from an application binary,
// the binary rewriter produces an instrumented binary; scenario-based
// profiling produces abstract ICC data; the network profiler produces
// network data; the profile analysis engine cuts the concrete graph to
// choose the best distribution; and the rewriter writes the distribution
// into the binary, which the lightweight runtime then realizes at the next
// execution.
package core

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/alias"
	"repro/internal/analysis"
	"repro/internal/binimg"
	"repro/internal/classify"
	"repro/internal/com"
	"repro/internal/dist"
	"repro/internal/netsim"
	"repro/internal/profile"
	"repro/internal/purity"
	"repro/internal/reach"
	"repro/internal/staticanal"
)

// ADPS is the partitioning pipeline for one application.
type ADPS struct {
	App     *com.App
	Network *netsim.Model

	// Image is the application binary in its current pipeline state:
	// original → instrumented → carrying a distribution.
	Image *binimg.Image
	// NetProfile is the network profiler's output.
	NetProfile *netsim.Profile

	ClassifierKind  classify.Kind
	ClassifierDepth int
	// AnalysisOptions tunes the analysis engine.
	AnalysisOptions analysis.Options
	// Static is the static analyzer's report for the application binary,
	// derived once at pipeline construction; its constraint set feeds the
	// analysis engine.
	Static *staticanal.Report
	// Reach is the static activation-reachability graph recovered from the
	// original binary's relocation records, derived once at pipeline
	// construction. Diffed against profiles it yields scenario-coverage
	// reports (see CoverageReport).
	Reach *reach.Graph
	// Purity is the static state-mutability report recovered from the
	// original binary's state records, derived once at pipeline
	// construction; it feeds component grading and the purity verifier in
	// the analysis engine.
	Purity *purity.Report
	// Alias is the points-to analysis over opaque payloads, derived on
	// demand by EnableAlias (nil until then).
	Alias *alias.Result
	// Samples is the number of observations per message size in network
	// profiling.
	Samples int
	// EnableCaching turns on per-interface result caching (semi-custom
	// marshaling) in distributed runs.
	EnableCaching bool
	// Seed drives all stochastic components reproducibly.
	Seed int64
}

// New returns a pipeline with the paper's defaults: 10BaseT, the IFCB
// classifier with complete stack walks, and the application's original
// binary image.
func New(app *com.App) *ADPS {
	a := &ADPS{
		App:            app,
		Network:        netsim.TenBaseT,
		Image:          binimg.BuildImage(app),
		ClassifierKind: classify.IFCB,
		Samples:        25,
		Seed:           1,
	}
	// Static constraint analysis runs over the original binary before any
	// scenario executes; the derived constraint set steers every cut.
	if rep, err := staticanal.Analyze(app, a.Image); err == nil {
		a.Static = rep
		a.AnalysisOptions.Constraints = rep.Constraints
	}
	if rg, err := reach.Scan(a.Image, app); err == nil {
		a.Reach = rg
	}
	if pr, err := purity.Scan(a.Image, app, a.Reach); err == nil {
		a.Purity = pr
		a.AnalysisOptions.Purity = pr
	}
	return a
}

// EnableAlias runs the points-to analysis over opaque payloads and
// installs its refinement into the pipeline: the constraint set is
// replaced by its alias-refined copy (opaque cliques give way to
// truly-aliasing pairs, see staticanal.Refined), the purity closure is
// recomputed so impurity propagates only across may-alias edges (see
// purity.ScanAliased), and the refiner's zero-miss verifier joins the
// analysis findings. Call it before CoverageReport so coverage pairs
// land in the refined set. Idempotent.
func (a *ADPS) EnableAlias() error {
	if a.Alias != nil {
		return nil
	}
	ar, err := alias.Scan(binimg.BuildImage(a.App), a.App, a.Reach)
	if err != nil {
		return fmt.Errorf("core: alias analysis: %w", err)
	}
	a.Alias = ar
	a.AnalysisOptions.Alias = ar
	if a.AnalysisOptions.Constraints != nil {
		a.AnalysisOptions.Constraints = a.AnalysisOptions.Constraints.Refined(ar)
	}
	may := func(x, y string) bool {
		_, ok := ar.SharedMutable(x, y)
		return ok
	}
	if pr, perr := purity.ScanAliased(binimg.BuildImage(a.App), a.App, a.Reach, may); perr == nil {
		a.Purity = pr
		a.AnalysisOptions.Purity = pr
	}
	return nil
}

// CoverageReport instruments the binary if needed, profiles the given
// scenarios, and diffs the combined profile against the static
// reachability graph. When install is true, every uncovered
// class-to-class ICC edge is additionally installed into the analysis
// constraint set as a conservative co-location pair, so subsequent
// Analyze calls keep the endpoints of unpriced edges together.
func (a *ADPS) CoverageReport(scenarios []string, install bool) (*reach.Coverage, *profile.Profile, error) {
	if a.Reach == nil {
		return nil, nil, fmt.Errorf("core: no reachability graph for %s (image lacks activation relocation records)", a.App.Name)
	}
	if !a.Image.Instrumented() {
		if err := a.Instrument(); err != nil {
			return nil, nil, err
		}
	}
	p, err := a.ProfileScenarios(scenarios, false)
	if err != nil {
		return nil, nil, err
	}
	cov := a.Reach.Coverage(p)
	if install && a.AnalysisOptions.Constraints != nil {
		cov.InstallConstraints(a.AnalysisOptions.Constraints)
	}
	return cov, p, nil
}

// classifier builds a fresh classifier per the pipeline configuration.
func (a *ADPS) classifier() classify.Classifier {
	return classify.New(a.ClassifierKind, a.ClassifierDepth)
}

// interfaceMetadata extracts format strings for the configuration record.
func (a *ADPS) interfaceMetadata() map[string]string {
	out := make(map[string]string)
	for _, iid := range a.App.Interfaces.IIDs() {
		out[iid] = a.App.Interfaces.Lookup(iid).FormatString()
	}
	return out
}

// Instrument runs the binary rewriter: the Coign runtime is inserted into
// the first import slot and a profiling configuration record is appended.
func (a *ADPS) Instrument() error {
	img, err := binimg.Instrument(a.Image, a.ClassifierKind.String(), a.ClassifierDepth,
		a.interfaceMetadata())
	if err != nil {
		return err
	}
	a.Image = img
	return nil
}

// ProfileNetwork runs the network profiler, statistically sampling message
// times for representative DCOM message sizes over the configured network.
func (a *ADPS) ProfileNetwork() error {
	rng := rand.New(rand.NewSource(a.Seed + 7))
	np, err := netsim.SampleModel(a.Network, rng, netsim.DefaultSampleSizes, a.Samples)
	if err != nil {
		return err
	}
	a.NetProfile = np
	return nil
}

// ProfileScenario runs the instrumented binary through one profiling
// scenario and returns its ICC profile. The profile is also accumulated
// into the binary's configuration record.
func (a *ADPS) ProfileScenario(scenario string, instanceDetail bool) (*profile.Profile, *dist.Result, error) {
	if a.Image == nil || !a.Image.Instrumented() {
		return nil, nil, fmt.Errorf("core: application binary is not instrumented")
	}
	res, err := dist.Run(dist.Config{
		App:            a.App,
		Scenario:       scenario,
		Seed:           a.Seed,
		Mode:           dist.ModeProfiling,
		Classifier:     a.classifier(),
		InstanceDetail: instanceDetail,
		Network:        a.Network,
	})
	if err != nil {
		return nil, nil, err
	}
	if res.Profile == nil {
		return nil, nil, fmt.Errorf("core: profiling run produced no profile")
	}
	if err := a.Image.Config.AccumulateProfile(res.Profile); err != nil {
		return nil, nil, err
	}
	return res.Profile, res, nil
}

// ProfileScenarios profiles several scenarios and merges their logs, the
// combining step the analysis engine consumes.
func (a *ADPS) ProfileScenarios(scenarios []string, instanceDetail bool) (*profile.Profile, error) {
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("core: no profiling scenarios")
	}
	var combined *profile.Profile
	for _, s := range scenarios {
		p, _, err := a.ProfileScenario(s, instanceDetail)
		if err != nil {
			return nil, fmt.Errorf("core: scenario %s: %w", s, err)
		}
		if combined == nil {
			combined = p
			continue
		}
		if err := combined.Merge(p); err != nil {
			return nil, err
		}
	}
	return combined, nil
}

// Analyze runs the profile analysis engine over a profile, using the
// sampled network profile (running the network profiler on demand). The
// context is threaded into the cut engine: a cancelled analysis job
// aborts mid-cut with the context's error.
func (a *ADPS) Analyze(ctx context.Context, p *profile.Profile) (*analysis.Result, error) {
	if a.NetProfile == nil {
		if err := a.ProfileNetwork(); err != nil {
			return nil, err
		}
	}
	return analysis.Analyze(ctx, p, a.NetProfile, a.App, a.AnalysisOptions)
}

// WriteDistribution rewrites the binary's configuration record with the
// chosen distribution, replacing the profiling instrumentation with the
// lightweight distribution runtime.
func (a *ADPS) WriteDistribution(res *analysis.Result) error {
	img, err := binimg.SetDistribution(a.Image, res.Distribution, a.Network.Name)
	if err != nil {
		return err
	}
	a.Image = img
	return nil
}

// loadDistribution reads the distribution back out of the binary, exactly
// as the lightweight runtime does at application load.
func (a *ADPS) loadDistribution() (map[string]com.Machine, error) {
	if a.Image == nil || a.Image.Config == nil {
		return nil, fmt.Errorf("core: binary has no configuration record")
	}
	if a.Image.Config.Mode != binimg.ModeDistribution {
		return nil, fmt.Errorf("core: binary is in %q mode, not distribution", a.Image.Config.Mode)
	}
	m := a.Image.Config.DistributionMap()
	if m == nil {
		return nil, fmt.Errorf("core: binary carries no distribution map")
	}
	return m, nil
}

// RunDistributed executes the application in the distribution recorded in
// its binary.
func (a *ADPS) RunDistributed(scenario string, jitter bool) (*dist.Result, error) {
	dm, err := a.loadDistribution()
	if err != nil {
		return nil, err
	}
	kind, err := classify.KindByName(a.Image.Config.Classifier)
	if err != nil {
		return nil, err
	}
	return dist.Run(dist.Config{
		App:           a.App,
		Scenario:      scenario,
		Seed:          a.Seed,
		Mode:          dist.ModeCoign,
		Classifier:    classify.New(kind, a.Image.Config.ClassifierDepth),
		Distribution:  dm,
		Network:       a.Network,
		Jitter:        jitter,
		EnableCaching: a.EnableCaching,
	})
}

// RunDefault executes the application in the developer's default
// distribution.
func (a *ADPS) RunDefault(scenario string, jitter bool) (*dist.Result, error) {
	return dist.Run(dist.Config{
		App:        a.App,
		Scenario:   scenario,
		Seed:       a.Seed,
		Mode:       dist.ModeDefault,
		Classifier: a.classifier(),
		Network:    a.Network,
		Jitter:     jitter,
	})
}

// ScenarioReport is the outcome of one end-to-end experiment on one
// scenario: the rows of Tables 4 and 5 plus the figure-level placement
// data.
type ScenarioReport struct {
	Scenario string

	// Table 4: communication time.
	DefaultComm time.Duration
	CoignComm   time.Duration
	Savings     float64

	// Table 5: execution time.
	PredictedExec time.Duration
	MeasuredExec  time.Duration
	PredictionErr float64

	// Figure data: instances placed.
	TotalInstances  int
	ServerInstances int
	// Analysis-side numbers.
	Analysis *analysis.Result
	// Runtime counters.
	Violations int
	Unknown    int64
}

// ScenarioExperiment performs the full pipeline on one scenario: profile
// it, analyze, write the distribution into the binary, then execute both
// the default and the Coign-chosen distribution and compare against the
// prediction. The application is optimized for the chosen scenario before
// execution, as in paper §4.5.
func (a *ADPS) ScenarioExperiment(ctx context.Context, scenario string) (*ScenarioReport, error) {
	if !a.Image.Instrumented() {
		if err := a.Instrument(); err != nil {
			return nil, err
		}
	}
	prof, profRun, err := a.ProfileScenario(scenario, false)
	if err != nil {
		return nil, err
	}
	ares, err := a.Analyze(ctx, prof)
	if err != nil {
		return nil, err
	}
	if err := a.WriteDistribution(ares); err != nil {
		return nil, err
	}
	def, err := a.RunDefault(scenario, false)
	if err != nil {
		return nil, err
	}
	// Table 4 compares mean communication times; Table 5's "measured"
	// execution is a separate stochastic run with network jitter.
	coign, err := a.RunDistributed(scenario, false)
	if err != nil {
		return nil, err
	}
	measured, err := a.RunDistributed(scenario, true)
	if err != nil {
		return nil, err
	}

	rep := &ScenarioReport{
		Scenario:        scenario,
		DefaultComm:     def.Clock.CommTime(),
		CoignComm:       coign.Clock.CommTime(),
		Analysis:        ares,
		TotalInstances:  coign.AppInstances,
		ServerInstances: coign.AppPerMachine[com.Server],
		Violations:      coign.Violations,
		Unknown:         coign.Unknown,
	}
	if rep.DefaultComm > 0 {
		s := 1 - float64(rep.CoignComm)/float64(rep.DefaultComm)
		if s > 0 {
			rep.Savings = s
		}
	}
	// Predicted execution time: profiled compute plus the analysis
	// engine's communication prediction. Measured: the distributed run's
	// virtual clock with jitter, classifier effects, and remote
	// activations included.
	rep.PredictedExec = profRun.Clock.ComputeTime() + ares.PredictedComm
	rep.MeasuredExec = measured.Clock.Elapsed()
	if rep.MeasuredExec > 0 {
		rep.PredictionErr = float64(rep.PredictedExec-rep.MeasuredExec) / float64(rep.MeasuredExec)
	}
	// Re-arm the image for the next experiment: back to profiling mode.
	if err := a.Instrument(); err != nil {
		return nil, err
	}
	return rep, nil
}

// ClassifierAccuracy runs the Table 2 experiment for one classifier: all
// profiling scenarios are profiled and combined, then the evaluation
// scenario (bigone) is profiled, and the classifier's ability to correlate
// the two is measured.
func ClassifierAccuracy(app *com.App, kind classify.Kind, depth int,
	scenarios []string, evalScenario string, net *netsim.Model, seed int64) (*analysis.ClassifierEval, error) {
	np := netsim.ExactProfile(net, netsim.DefaultSampleSizes)
	var combined *profile.Profile
	for _, s := range scenarios {
		res, err := dist.Run(dist.Config{
			App: app, Scenario: s, Seed: seed, Mode: dist.ModeProfiling,
			Classifier: classify.New(kind, depth), InstanceDetail: true, Network: net,
		})
		if err != nil {
			return nil, fmt.Errorf("core: profiling %s: %w", s, err)
		}
		if combined == nil {
			combined = res.Profile
			continue
		}
		// Instance ids restart every execution; shift this run's past the
		// combined profile's so per-instance vectors stay distinct.
		res.Profile.OffsetInstanceIDs(combined.MaxInstanceID())
		if err := combined.Merge(res.Profile); err != nil {
			return nil, err
		}
	}
	if combined == nil {
		return nil, fmt.Errorf("core: no profiling scenarios")
	}
	evalRes, err := dist.Run(dist.Config{
		App: app, Scenario: evalScenario, Seed: seed + 1, Mode: dist.ModeProfiling,
		Classifier: classify.New(kind, depth), InstanceDetail: true, Network: net,
	})
	if err != nil {
		return nil, fmt.Errorf("core: evaluating %s: %w", evalScenario, err)
	}
	ev, err := analysis.EvaluateClassifier(combined, evalRes.Profile, np)
	if err != nil {
		return nil, err
	}
	// Purity grades per classification: the finer the classifier, the more
	// of the profiled population can be proven replication-eligible.
	if pr, perr := purity.Scan(binimg.BuildImage(app), app, nil); perr == nil {
		grading := pr.Grade(combined, 0)
		ev.Stateless = grading.Stateless
		ev.ReadMostly = grading.ReadMostly
		ev.Stateful = grading.Stateful
	}
	// The alias-refined closure frees components whose only impurity was
	// transitive through non-aliasing calls; report how much of the
	// population it adds to the replication-eligible pool.
	if ar, aerr := alias.Scan(binimg.BuildImage(app), app, nil); aerr == nil {
		may := func(x, y string) bool {
			_, ok := ar.SharedMutable(x, y)
			return ok
		}
		if pr, perr := purity.ScanAliased(binimg.BuildImage(app), app, nil, may); perr == nil {
			grading := pr.Grade(combined, 0)
			ev.AliasEligible = grading.Stateless + grading.ReadMostly
		}
	}
	return ev, nil
}
