// Package alias implements a flow-insensitive, Andersen-style points-to
// analysis over opaque interface payloads.
//
// Coign pins components that exchange opaque pointers because it cannot
// remote memory they might share. The static stage's clique rule
// over-approximates badly: every class touching an opaque-capable
// interface lands in a pairwise co-location clique, whether or not any
// shared memory actually connects the pair. This package recovers the
// missing precision from artifacts the pipeline already has — IDL method
// signatures (which parameters and results carry opaque payloads and in
// which direction), component state descriptors (which memory exists and
// which methods mutate it), and the reach activation/interface-flow graph
// (which class can call which) — and computes, per class, the set of
// abstract memory locations its raw pointers may reference.
//
// Abstract locations are seeded from state descriptors ("state:<class>",
// the declared instance state block) and from opaque allocations
// ("opq:<class>", payloads a class mints and exports through opaque
// parameters or results). Points-to sets propagate along the reach
// graph's call edges to a fixed point: an opaque in-parameter hands the
// callee everything the caller may hold plus a fresh caller allocation;
// an opaque result or out-parameter hands the caller everything the
// callee may hold plus a fresh callee allocation. Every derivation keeps
// first-wins provenance, so each shared-state verdict carries the chain
// of methods the pointer travelled through.
//
// A location is mutable when its owner declares state writers or ships no
// state descriptor at all (unknown memory is conservatively mutable); a
// writer-free descriptor proves the memory immutable after publication.
// Two classes that may hold pointers into one mutable location truly
// share state and must co-locate; classes that merely exchange immutable
// payloads need not. The Result implements staticanal.OpaqueRefiner, so
// the constraint layer can replace clique pinning with exactly the
// truly-aliasing pairs, and the purity stage can confine transitive
// impurity to may-alias edges. Verify holds the refinement to the same
// zero-miss discipline as the coverage and purity gates: every
// profile-observed non-remotable transfer must be statically predicted.
package alias

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/binimg"
	"repro/internal/com"
	"repro/internal/idl"
	"repro/internal/profile"
	"repro/internal/reach"
	"repro/internal/staticanal"
)

// Location kinds.
const (
	// LocState is a class's declared instance state block.
	LocState = "state"
	// LocOpaque is the pool of anonymous allocations a class mints and
	// exports as opaque payloads.
	LocOpaque = "opaque"
)

// KindAliasMiss is the verifier's finding kind: the profile observed a
// non-remotable transfer the points-to analysis did not predict — a hard
// error, same zero-miss discipline as the coverage and purity gates.
const KindAliasMiss = "alias-miss"

// Location is one abstract memory location.
type Location struct {
	Key   string `json:"key"`   // "state:<class>" or "opq:<class>"
	Class string `json:"class"` // owning class
	Kind  string `json:"kind"`  // LocState or LocOpaque
	// Mutable reports that pointers into the location can observe
	// mutation; Reason records why the verdict holds.
	Mutable bool   `json:"mutable"`
	Reason  string `json:"reason"`
}

// Holding records that a class may hold a raw pointer into a location,
// with the first derivation that established it.
type Holding struct {
	Location string `json:"location"`
	Via      string `json:"via"`
	// From names the class the pointer was received from; empty for
	// seeds and freshly minted allocations.
	From string `json:"from,omitempty"`
}

// ClassAliases is the points-to set of one class, sorted by location.
type ClassAliases struct {
	Class    string    `json:"class"`
	Holdings []Holding `json:"holdings"`
}

// SharedPair is one pair of classes whose points-to sets intersect: the
// shared-state report entry. Mutable pairs truly alias and must
// co-locate; immutable pairs only exchange frozen payloads.
type SharedPair struct {
	A string `json:"a"`
	B string `json:"b"`
	// Locations lists every shared location key, sorted.
	Locations []string `json:"locations"`
	// Mutable reports that at least one shared location is mutable;
	// Location names the deciding one (the first mutable location, or the
	// first shared location when none is).
	Mutable  bool   `json:"mutable"`
	Location string `json:"location"`
	// ChainA and ChainB are the provenance chains: how each class came to
	// hold a pointer into the deciding location, one "class: derivation"
	// step per hop, ending at the seed or mint.
	ChainA []string `json:"chainA"`
	ChainB []string `json:"chainB"`
}

// Result is the output of the points-to analysis: every abstract
// location, every class's points-to set, and the shared-state report.
// It implements staticanal.OpaqueRefiner.
type Result struct {
	App string `json:"app"`
	// Locations lists every abstract location the analysis derived,
	// sorted by key.
	Locations []Location `json:"locations,omitempty"`
	// Classes lists the points-to set of every class that holds at least
	// one location, sorted by class name.
	Classes []*ClassAliases `json:"classes,omitempty"`
	// Pairs is the shared-state report: every class pair whose points-to
	// sets intersect, sorted, mutable pairs flagged.
	Pairs []SharedPair `json:"sharedState,omitempty"`
	// UnknownClasses lists CLSIDs of state records whose class is absent
	// from the registry — stale state metadata.
	UnknownClasses []string `json:"unknownClasses,omitempty"`

	locIndex        map[string]*Location
	holdings        map[string]map[string]*Holding // class -> location key -> holding
	edgeIndex       map[[2]string]bool             // reach edges, including main-program sources
	opaqueCapable   map[string]bool                // class -> implements an unmarshalable-call interface
	mutablePairs    map[[2]string]string           // ordered pair -> deciding mutable location key
	pairIndex       map[[2]string]*SharedPair
	dynamicCreators map[string]bool // reach's edge-transparent factories
}

func stateKey(class string) string  { return "state:" + class }
func opaqueKey(class string) string { return "opq:" + class }

// Scan runs the points-to analysis: it parses the image's state records,
// derives the opaque flow directions of every interface method, and
// propagates points-to sets over the reachability graph's call edges to a
// fixed point. rg may be nil, in which case the reachability analysis
// runs internally. Malformed images produce errors, never panics.
func Scan(img *binimg.Image, app *com.App, rg *reach.Graph) (*Result, error) {
	if img == nil {
		return nil, fmt.Errorf("alias: nil image")
	}
	if app == nil || app.Classes == nil || app.Interfaces == nil {
		return nil, fmt.Errorf("alias: points-to analysis requires the class and interface registries")
	}
	if rg == nil {
		var err error
		rg, err = reach.Scan(img, app)
		if err != nil {
			return nil, fmt.Errorf("alias: %w", err)
		}
	}

	// Pass 1: parse state records, keyed by CLSID, with the same
	// duplicate and corruption discipline as the purity scanner.
	states := make(map[com.CLSID]*com.StateDesc)
	var unknown []string
	for _, s := range img.Sections {
		key, ok := strings.CutPrefix(s.Name, binimg.StatePrefix)
		if !ok {
			continue
		}
		if key == "" {
			return nil, fmt.Errorf("alias: state section with empty owner")
		}
		desc, err := binimg.DecodeState(s.Data)
		if err != nil {
			return nil, fmt.Errorf("alias: section %s: %w", s.Name, err)
		}
		clsid := com.CLSID(key)
		if _, dup := states[clsid]; dup {
			return nil, fmt.Errorf("alias: duplicate state record for %s", clsid)
		}
		states[clsid] = desc
		if app.Classes.Lookup(clsid) == nil {
			unknown = append(unknown, key)
		}
	}
	sort.Strings(unknown)

	r := &Result{
		App:            img.AppName,
		UnknownClasses: unknown,
		locIndex:       make(map[string]*Location),
		holdings:       make(map[string]map[string]*Holding),
		edgeIndex:      make(map[[2]string]bool),
		opaqueCapable:  make(map[string]bool),
		mutablePairs:   make(map[[2]string]string),
		pairIndex:      make(map[[2]string]*SharedPair),

		dynamicCreators: make(map[string]bool),
	}
	for _, name := range rg.DynamicCreators {
		r.dynamicCreators[name] = true
	}

	// Pass 2: per-interface opaque flow directions. A method contributes
	// an in-flow when an In/InOut parameter carries an opaque payload
	// (caller → callee) and an out-flow when the result or an Out/InOut
	// parameter does (callee → caller). An interface can carry
	// unmarshalable calls when it has such a method or is declared
	// non-remotable outright.
	type methodFlow struct {
		iid, method string
		in, out     bool
	}
	flowsOf := make(map[string][]methodFlow)
	capable := make(map[string]bool)
	for _, iid := range app.Interfaces.IIDs() {
		d := app.Interfaces.Lookup(iid)
		if !d.Remotable {
			capable[iid] = true
		}
		for mi := range d.Methods {
			m := &d.Methods[mi]
			f := methodFlow{iid: iid, method: m.Name, out: hasOpaque(m.Result)}
			for pi := range m.Params {
				p := &m.Params[pi]
				if !hasOpaque(p.Type) {
					continue
				}
				if p.Dir == idl.In || p.Dir == idl.InOut {
					f.in = true
				}
				if p.Dir == idl.Out || p.Dir == idl.InOut {
					f.out = true
				}
			}
			if f.in || f.out {
				capable[iid] = true
				flowsOf[iid] = append(flowsOf[iid], f)
			}
		}
	}

	classByName := make(map[string]*com.Class)
	descByName := make(map[string]*com.StateDesc)
	var names []string
	for _, c := range app.Classes.Classes() {
		classByName[c.Name] = c
		descByName[c.Name] = states[c.ID]
		names = append(names, c.Name)
		for _, iid := range c.Interfaces {
			if capable[iid] {
				r.opaqueCapable[c.Name] = true
			}
		}
	}
	sort.Strings(names)

	// Seeds: a class with a non-empty declared state block holds pointers
	// into it.
	for _, name := range names {
		if desc := descByName[name]; desc != nil && desc.Bytes > 0 {
			r.add(name, stateKey(name), descByName,
				fmt.Sprintf("declared state block (%d bytes)", desc.Bytes), "")
		}
	}

	// Pass 3: fixed point over the reach graph's call edges. Main-program
	// sources are skipped — the main program is not a component, never
	// moves, and its welds are left to the dynamic evidence. The edge
	// index still records them for transfer prediction.
	for _, e := range rg.Edges {
		r.edgeIndex[[2]string{e.Src, e.Dst}] = true
	}
	for changed := true; changed; {
		changed = false
		for _, e := range rg.Edges {
			if e.Src == profile.MainProgram {
				continue
			}
			dst := classByName[e.Dst]
			if dst == nil || classByName[e.Src] == nil {
				continue
			}
			for _, iid := range dst.Interfaces {
				for _, f := range flowsOf[iid] {
					if f.in {
						// Caller → callee: the caller mints a fresh payload
						// and may pass anything it already holds.
						if r.add(e.Src, opaqueKey(e.Src), descByName,
							fmt.Sprintf("mints opaque payloads passed through %s.%s", f.iid, f.method), "") {
							changed = true
						}
						if r.copyAll(e.Src, e.Dst, descByName,
							fmt.Sprintf("received via opaque in-parameter of %s.%s", f.iid, f.method)) {
							changed = true
						}
					}
					if f.out {
						// Callee → caller: the callee mints a fresh payload
						// and may return anything it already holds.
						if r.add(e.Dst, opaqueKey(e.Dst), descByName,
							fmt.Sprintf("exports opaque payloads through %s.%s", f.iid, f.method), "") {
							changed = true
						}
						if r.copyAll(e.Dst, e.Src, descByName,
							fmt.Sprintf("returned via opaque result of %s.%s", f.iid, f.method)) {
							changed = true
						}
					}
				}
			}
		}
	}

	r.buildReport()
	return r, nil
}

// loc materializes the Location record for a key, deriving the
// mutability verdict from the owner's state descriptor.
func (r *Result) loc(key string, descByName map[string]*com.StateDesc) *Location {
	if l := r.locIndex[key]; l != nil {
		return l
	}
	l := &Location{Key: key}
	switch {
	case strings.HasPrefix(key, "state:"):
		l.Kind = LocState
		l.Class = strings.TrimPrefix(key, "state:")
		desc := descByName[l.Class]
		if desc != nil && len(desc.Writes) > 0 {
			l.Mutable = true
			l.Reason = fmt.Sprintf("state writers declared: %s", strings.Join(desc.Writes, ", "))
		} else {
			l.Reason = "no declared method ever writes the state"
		}
	default:
		l.Kind = LocOpaque
		l.Class = strings.TrimPrefix(key, "opq:")
		desc := descByName[l.Class]
		switch {
		case desc == nil:
			l.Mutable = true
			l.Reason = "owner ships no state descriptor; its allocations are conservatively mutable"
		case len(desc.Writes) > 0:
			l.Mutable = true
			l.Reason = fmt.Sprintf("owner declares state writers (%s)", strings.Join(desc.Writes, ", "))
		default:
			l.Reason = "owner's writer-free state descriptor proves payloads immutable after publication"
		}
	}
	r.locIndex[key] = l
	return l
}

// add records that class may hold a pointer into the location, keeping
// the first derivation. Reports whether the points-to set grew.
func (r *Result) add(class, key string, descByName map[string]*com.StateDesc, via, from string) bool {
	m := r.holdings[class]
	if m == nil {
		m = make(map[string]*Holding)
		r.holdings[class] = m
	}
	if _, ok := m[key]; ok {
		return false
	}
	r.loc(key, descByName)
	m[key] = &Holding{Location: key, Via: via, From: from}
	return true
}

// copyAll propagates every location held by src into dst's set, tagging
// new holdings with the flow's provenance. Iteration is sorted so first
// derivations are deterministic.
func (r *Result) copyAll(src, dst string, descByName map[string]*com.StateDesc, via string) bool {
	keys := make([]string, 0, len(r.holdings[src]))
	for k := range r.holdings[src] {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	changed := false
	for _, k := range keys {
		if r.add(dst, k, descByName, via+" from "+src, src) {
			changed = true
		}
	}
	return changed
}

// buildReport freezes the fixed point into the sorted exported slices
// and the pair indexes the refiner queries.
func (r *Result) buildReport() {
	keys := make([]string, 0, len(r.locIndex))
	for k := range r.locIndex {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		r.Locations = append(r.Locations, *r.locIndex[k])
	}

	holders := make([]string, 0, len(r.holdings))
	for c := range r.holdings {
		holders = append(holders, c)
	}
	sort.Strings(holders)
	for _, c := range holders {
		ca := &ClassAliases{Class: c}
		hks := make([]string, 0, len(r.holdings[c]))
		for k := range r.holdings[c] {
			hks = append(hks, k)
		}
		sort.Strings(hks)
		for _, k := range hks {
			ca.Holdings = append(ca.Holdings, *r.holdings[c][k])
		}
		r.Classes = append(r.Classes, ca)
	}

	for i := 0; i < len(holders); i++ {
		for j := i + 1; j < len(holders); j++ {
			a, b := holders[i], holders[j]
			var shared []string
			for k := range r.holdings[a] {
				if _, ok := r.holdings[b][k]; ok {
					shared = append(shared, k)
				}
			}
			if len(shared) == 0 {
				continue
			}
			sort.Strings(shared)
			pair := SharedPair{A: a, B: b, Locations: shared, Location: shared[0]}
			for _, k := range shared {
				if r.locIndex[k].Mutable {
					pair.Mutable = true
					pair.Location = k
					break
				}
			}
			pair.ChainA = r.chain(a, pair.Location)
			pair.ChainB = r.chain(b, pair.Location)
			r.Pairs = append(r.Pairs, pair)
			key := [2]string{a, b}
			r.pairIndex[key] = &r.Pairs[len(r.Pairs)-1]
			if pair.Mutable {
				r.mutablePairs[key] = pair.Location
			}
		}
	}
	// Re-point pairIndex after all appends (append may have reallocated).
	for i := range r.Pairs {
		r.pairIndex[[2]string{r.Pairs[i].A, r.Pairs[i].B}] = &r.Pairs[i]
	}
}

// chain walks the first-derivation records back to the seed or mint: how
// the class came to hold a pointer into the location.
func (r *Result) chain(class, key string) []string {
	var out []string
	seen := make(map[string]bool)
	for c := class; c != "" && !seen[c]; {
		seen[c] = true
		h := r.holdings[c][key]
		if h == nil {
			break
		}
		out = append(out, fmt.Sprintf("%s: %s", c, h.Via))
		c = h.From
	}
	return out
}

// Shared returns the shared-state entry for a class pair, or nil.
func (r *Result) Shared(a, b string) *SharedPair {
	key := [2]string{a, b}
	if a > b {
		key = [2]string{b, a}
	}
	return r.pairIndex[key]
}

// PredictsTransfer reports whether the analysis predicts that a call
// from src to dst (class names, or profile.MainProgram for src) can
// carry an unmarshalable payload: the reach graph has the edge and the
// callee implements an interface that can carry such calls. It
// over-approximates on purpose — it is the soundness side of the
// refinement, held to zero misses by Verify.
func (r *Result) PredictsTransfer(src, dst string) bool {
	return r.opaqueCapable[dst] && r.edgeIndex[[2]string{src, dst}]
}

// SharedMutable reports whether the two classes may hold pointers into
// one mutable location — the precise co-location criterion — with the
// human-readable reason.
func (r *Result) SharedMutable(a, b string) (string, bool) {
	key := [2]string{a, b}
	if a > b {
		key = [2]string{b, a}
	}
	loc, ok := r.mutablePairs[key]
	if !ok {
		return "", false
	}
	return fmt.Sprintf("%s and %s may both hold pointers into mutable location %s (%s)",
		key[0], key[1], loc, r.locIndex[loc].Reason), true
}

// MutablePairs returns every truly-aliasing class pair, sorted — the
// pairs that must co-locate whether or not the profile saw them talk.
func (r *Result) MutablePairs() [][2]string {
	out := make([][2]string, 0, len(r.mutablePairs))
	for k := range r.mutablePairs {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Verify cross-checks the points-to prediction against profile evidence
// with zero-miss discipline: every profile edge that carried a
// non-remotable call must be a predicted transfer. A miss is an error —
// refined constraints built on the prediction would have let the cut
// separate two components the runtime cannot split. Unresolvable
// endpoint classes are warnings, as in the remotability cross-check.
func (r *Result) Verify(p *profile.Profile) []staticanal.Finding {
	var out []staticanal.Finding
	if p == nil {
		return out
	}
	keys := make([]profile.PairKey, 0, len(p.Edges))
	for k := range p.Edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Src != keys[j].Src {
			return keys[i].Src < keys[j].Src
		}
		return keys[i].Dst < keys[j].Dst
	})
	for _, k := range keys {
		if !p.Edges[k].NonRemotable || k.Dst == profile.MainProgram {
			continue
		}
		src := profile.MainProgram
		if k.Src != profile.MainProgram {
			if ci := p.Classifications[k.Src]; ci != nil {
				src = ci.Class
			} else {
				out = append(out, staticanal.Finding{
					Kind: staticanal.KindUnknownClass, Severity: staticanal.SeverityWarning,
					Detail: fmt.Sprintf("non-remotable call from unclassified component %s", k.Src),
				})
				continue
			}
		}
		ci := p.Classifications[k.Dst]
		if ci == nil {
			out = append(out, staticanal.Finding{
				Kind: staticanal.KindUnknownClass, Severity: staticanal.SeverityWarning,
				Detail: fmt.Sprintf("non-remotable call into unclassified component %s", k.Dst),
			})
			continue
		}
		// Dynamic-activation factories are edge-transparent in the reach
		// analysis: their partners are data, not code, so their outgoing
		// edges are statically unpredicted by design and never misses.
		// They stay conservatively welded (PredictsTransfer is false, so
		// ObservedNonRemotableWeld keeps the pin).
		if r.dynamicCreators[src] {
			continue
		}
		// Instance-to-instance calls within one class never weld a class
		// pair — the class is co-located with itself by identity — and the
		// reach graph structurally excludes self-edges, so they are not the
		// analysis's to predict.
		if src == ci.Class {
			continue
		}
		if !r.PredictsTransfer(src, ci.Class) {
			out = append(out, staticanal.Finding{
				Kind: KindAliasMiss, Severity: staticanal.SeverityError,
				Detail: fmt.Sprintf(
					"profile observed a non-remotable call on %s -> %s, but the points-to analysis predicts no opaque transfer from %q to %q",
					k.Src, k.Dst, src, ci.Class),
			})
		}
	}
	return out
}

// hasOpaque walks a type descriptor to any nesting depth looking for an
// opaque payload. seen guards against recursive descriptors so corrupted
// metadata cannot hang the analyzer.
func hasOpaque(t *idl.TypeDesc) bool {
	return hasOpaqueSeen(t, make(map[*idl.TypeDesc]bool))
}

func hasOpaqueSeen(t *idl.TypeDesc, seen map[*idl.TypeDesc]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	defer delete(seen, t)
	switch t.Kind {
	case idl.KindOpaque:
		return true
	case idl.KindStruct:
		for _, f := range t.Fields {
			if hasOpaqueSeen(f.Type, seen) {
				return true
			}
		}
	case idl.KindArray:
		return hasOpaqueSeen(t.Elem, seen)
	}
	return false
}
