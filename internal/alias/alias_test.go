package alias

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/binimg"
	"repro/internal/com"
	"repro/internal/idl"
	"repro/internal/profile"
	"repro/internal/reach"
	"repro/internal/staticanal"
)

// nullObject satisfies the class registry's constructor requirement; the
// alias analysis is static and never invokes it.
func nullObject() com.Object {
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) { return nil, nil })
}

// testApp builds a five-class application exercising every transfer
// direction and mutability verdict:
//
//	Doc     256B state with a writer; IDoc.Snapshot returns opaque
//	Editor  no state; calls Doc (receives payloads) and Viewer (sends)
//	Viewer  no state; IView.Show takes an opaque in-parameter
//	Frozen  128B writer-free state; IFrozen.Freeze returns opaque
//	Reader  no state; calls Frozen (receives immutable payloads)
func testApp() *com.App {
	ifaces := idl.NewRegistry()
	ifaces.Register(&idl.InterfaceDesc{
		IID: "IDoc", Name: "IDoc", Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Snapshot", Result: idl.TOpaque},
			{Name: "Edit", Params: []idl.ParamDesc{{Name: "v", Dir: idl.In, Type: idl.TInt32}}, Result: idl.TInt32},
		},
	})
	ifaces.Register(&idl.InterfaceDesc{
		IID: "IView", Name: "IView", Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Show", Params: []idl.ParamDesc{{Name: "blob", Dir: idl.In, Type: idl.TOpaque}}, Result: idl.TInt32},
		},
	})
	ifaces.Register(&idl.InterfaceDesc{
		IID: "IFrozen", Name: "IFrozen", Remotable: true,
		Methods: []idl.MethodDesc{{Name: "Freeze", Result: idl.TOpaque}},
	})
	ifaces.Register(&idl.InterfaceDesc{
		IID: "IPlain", Name: "IPlain", Remotable: true,
		Methods: []idl.MethodDesc{{Name: "Ping", Result: idl.TInt32}},
	})

	classes := com.NewClassRegistry()
	classes.Register(&com.Class{
		ID: "CLSID_Doc", Name: "Doc", Interfaces: []string{"IDoc"},
		State: &com.StateDesc{Bytes: 256, Reads: []string{"Snapshot"}, Writes: []string{"Edit"}},
		New:   nullObject,
	})
	classes.Register(&com.Class{
		ID: "CLSID_Editor", Name: "Editor", Interfaces: []string{"IPlain"},
		New: nullObject,
	})
	classes.Register(&com.Class{
		ID: "CLSID_Viewer", Name: "Viewer", Interfaces: []string{"IView"},
		New: nullObject,
	})
	classes.Register(&com.Class{
		ID: "CLSID_Frozen", Name: "Frozen", Interfaces: []string{"IFrozen"},
		State: &com.StateDesc{Bytes: 128, Reads: []string{"Freeze"}},
		New:   nullObject,
	})
	classes.Register(&com.Class{
		ID: "CLSID_Reader", Name: "Reader", Interfaces: []string{"IPlain"},
		New: nullObject,
	})
	return &com.App{
		Name:       "aliastest",
		Classes:    classes,
		Interfaces: ifaces,
		Main:       func(env *com.Env, scenario string, seed int64) error { return nil },
	}
}

// testGraph wires the transfer paths described on testApp.
func testGraph() *reach.Graph {
	return &reach.Graph{Edges: []reach.Edge{
		{Src: "Editor", Dst: "Doc", IID: "IDoc"},
		{Src: "Editor", Dst: "Viewer", IID: "IView"},
		{Src: "Reader", Dst: "Frozen", IID: "IFrozen"},
		{Src: profile.MainProgram, Dst: "Doc", IID: "IDoc"},
	}}
}

func mustScan(t *testing.T, app *com.App, rg *reach.Graph) *Result {
	t.Helper()
	r, err := Scan(binimg.BuildImage(app), app, rg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestScanPointsToClosure(t *testing.T) {
	t.Parallel()
	r := mustScan(t, testApp(), testGraph())

	// Doc's payloads flow to Editor (opaque result) and onward to Viewer
	// (opaque in-parameter), so all three pairs share mutable state.
	for _, want := range [][2]string{{"Doc", "Editor"}, {"Doc", "Viewer"}, {"Editor", "Viewer"}} {
		p := r.Shared(want[0], want[1])
		if p == nil || !p.Mutable {
			t.Fatalf("pair %v = %+v, want shared mutable state", want, p)
		}
		if len(p.ChainA) == 0 || len(p.ChainB) == 0 {
			t.Fatalf("pair %v carries no provenance chains: %+v", want, p)
		}
	}

	// Frozen's payloads reach Reader, but the writer-free descriptor
	// proves them immutable: shared, not mutable.
	p := r.Shared("Frozen", "Reader")
	if p == nil || p.Mutable {
		t.Fatalf("Frozen<->Reader = %+v, want immutable shared payloads", p)
	}

	// Location mutability verdicts.
	byKey := make(map[string]*Location)
	for i := range r.Locations {
		byKey[r.Locations[i].Key] = &r.Locations[i]
	}
	if l := byKey["state:Doc"]; l == nil || !l.Mutable {
		t.Fatalf("state:Doc = %+v, want mutable (Edit writes)", l)
	}
	if l := byKey["opq:Doc"]; l == nil || !l.Mutable {
		t.Fatalf("opq:Doc = %+v, want mutable (owner declares writers)", l)
	}
	if l := byKey["opq:Editor"]; l == nil || !l.Mutable {
		t.Fatalf("opq:Editor = %+v, want conservatively mutable (no descriptor)", l)
	}
	if l := byKey["opq:Frozen"]; l == nil || l.Mutable {
		t.Fatalf("opq:Frozen = %+v, want immutable (writer-free descriptor)", l)
	}

	// MutablePairs is the sorted projection of the mutable verdicts.
	mp := r.MutablePairs()
	if len(mp) != 3 {
		t.Fatalf("MutablePairs = %v, want the three Doc/Editor/Viewer pairs", mp)
	}
}

func TestPredictsTransferIsCalleeSided(t *testing.T) {
	t.Parallel()
	r := mustScan(t, testApp(), testGraph())

	preds := []struct {
		src, dst string
		want     bool
	}{
		{"Editor", "Doc", true},            // opaque result through IDoc
		{"Editor", "Viewer", true},         // opaque in-parameter through IView
		{"Reader", "Frozen", true},         // immutable payloads still unmarshalable
		{"Doc", "Editor", false},           // reversed: no such call edge
		{"Reader", "Doc", false},           // no call edge at all
		{profile.MainProgram, "Doc", true}, // main edges predict, never weld
		{"Editor", profile.MainProgram, false},
	}
	for _, c := range preds {
		if got := r.PredictsTransfer(c.src, c.dst); got != c.want {
			t.Errorf("PredictsTransfer(%s, %s) = %v, want %v", c.src, c.dst, got, c.want)
		}
	}

	if reason, ok := r.SharedMutable("Doc", "Editor"); !ok || !strings.Contains(reason, "mutable") {
		t.Fatalf("SharedMutable(Doc, Editor) = %q, %v", reason, ok)
	}
	if _, ok := r.SharedMutable("Frozen", "Reader"); ok {
		t.Fatal("SharedMutable claims Frozen and Reader share mutable state")
	}
}

// verifyProfile builds a classified profile with one instance per class.
func verifyProfile() *profile.Profile {
	p := &profile.Profile{
		App:             "aliastest",
		Classifications: make(map[string]*profile.ClassificationInfo),
		Edges:           make(map[profile.PairKey]*profile.EdgeSummary),
	}
	for _, class := range []string{"Doc", "Editor", "Viewer", "Frozen", "Reader"} {
		id := class + "#0"
		p.Classifications[id] = &profile.ClassificationInfo{ID: id, Class: class, Instances: 1}
	}
	p.Classifications[profile.MainProgram] = &profile.ClassificationInfo{ID: profile.MainProgram, Class: profile.MainProgram}
	return p
}

func TestVerifyZeroMiss(t *testing.T) {
	t.Parallel()
	r := mustScan(t, testApp(), testGraph())

	p := verifyProfile()
	p.Edge("Editor#0", "Doc#0").Record(64, 64, true)
	p.Edge("Reader#0", "Frozen#0").Record(64, 64, true)
	p.Edge(profile.MainProgram, "Doc#0").Record(64, 64, true)
	p.Edge("Editor#0", "Viewer#0").Record(64, 64, false) // remotable call: never checked
	if fs := r.Verify(p); len(fs) != 0 {
		t.Fatalf("predicted transfers produced findings: %v", fs)
	}

	// A non-remotable call with no predicted opaque transfer is a miss.
	p.Edge("Reader#0", "Doc#0").Record(64, 64, true)
	fs := r.Verify(p)
	if len(fs) != 1 || fs[0].Kind != KindAliasMiss || fs[0].Severity != staticanal.SeverityError {
		t.Fatalf("findings = %v, want one %s error", fs, KindAliasMiss)
	}
	if !strings.Contains(fs[0].Detail, "Reader") || !strings.Contains(fs[0].Detail, "Doc") {
		t.Fatalf("finding does not name the pair: %s", fs[0].Detail)
	}

	// Unclassified endpoints warn instead of erroring, and calls into the
	// main program are never checked.
	p = verifyProfile()
	p.Edge("Ghost#9", "Doc#0").Record(64, 64, true)
	p.Edge("Editor#0", profile.MainProgram).Record(64, 64, true)
	fs = r.Verify(p)
	if len(fs) != 1 || fs[0].Kind != staticanal.KindUnknownClass || fs[0].Severity != staticanal.SeverityWarning {
		t.Fatalf("findings = %v, want one unknown-class warning", fs)
	}

	// Edges out of a dynamic-activation factory are edge-transparent in
	// the reach analysis and by design never misses.
	rg := testGraph()
	rg.DynamicCreators = []string{"Reader"}
	rd := mustScan(t, testApp(), rg)
	p = verifyProfile()
	p.Edge("Reader#0", "Doc#0").Record(64, 64, true)
	if fs := rd.Verify(p); len(fs) != 0 {
		t.Fatalf("dynamic-creator edge reported: %v", fs)
	}
}

func TestScanRejectsMalformedImages(t *testing.T) {
	t.Parallel()
	app := testApp()
	corrupt := []struct {
		name string
		data []byte
	}{
		{"empty payload", nil},
		{"bad header", []byte("coign-state v9\nbytes 1\n")},
		{"bad size", []byte("coign-state v1\nbytes -4\n")},
		{"unknown directive", []byte("coign-state v1\nbytes 1\nzap Get\n")},
	}
	for _, c := range corrupt {
		img := binimg.BuildImage(app)
		img.Sections = append(img.Sections, binimg.Section{Name: binimg.StatePrefix + "CLSID_X", Data: c.data})
		if _, err := Scan(img, app, testGraph()); err == nil {
			t.Errorf("%s: Scan accepted a corrupt state section", c.name)
		}
	}

	// Stale records for unregistered classes are reported, not rejected.
	img := binimg.BuildImage(app)
	img.Sections = append(img.Sections, binimg.Section{
		Name: binimg.StatePrefix + "CLSID_Stale",
		Data: binimg.EncodeState(&com.StateDesc{Bytes: 8}),
	})
	r, err := Scan(img, app, testGraph())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.UnknownClasses) != 1 || r.UnknownClasses[0] != "CLSID_Stale" {
		t.Fatalf("UnknownClasses = %v, want [CLSID_Stale]", r.UnknownClasses)
	}
}

func TestWriteJSONByteStable(t *testing.T) {
	t.Parallel()
	app, rg := testApp(), testGraph()
	var first bytes.Buffer
	if err := mustScan(t, app, rg).WriteJSON(&first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		var again bytes.Buffer
		if err := mustScan(t, testApp(), testGraph()).WriteJSON(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), again.Bytes()) {
			t.Fatalf("encoding %d differs from the first:\n%s\nvs\n%s", i, first.String(), again.String())
		}
	}
	if !bytes.Contains(first.Bytes(), []byte("sharedState")) {
		t.Fatal("canonical encoding misses the sharedState report")
	}
}

// FuzzAliasScan feeds arbitrary bytes through a state section: Scan must
// either parse or error, never panic, and accepted stale records must
// surface in UnknownClasses.
func FuzzAliasScan(f *testing.F) {
	f.Add([]byte("coign-state v1\nbytes 64\nread Get\nwrite Put\n"))
	f.Add([]byte("coign-state v1\nbytes 0\n"))
	f.Add([]byte("coign-state v1\nbytes 9999999999999999999\n"))
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		app := testApp()
		img := binimg.BuildImage(app)
		img.Sections = append(img.Sections, binimg.Section{Name: binimg.StatePrefix + "CLSID_Fuzz", Data: data})
		r, err := Scan(img, app, testGraph())
		if err != nil {
			return
		}
		if len(r.UnknownClasses) != 1 {
			t.Fatalf("accepted record for unregistered class not reported: %v", r.UnknownClasses)
		}
	})
}
