package alias

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON writes the result as indented canonical JSON. Every slice is
// sorted at construction, so output is byte-stable across runs.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText writes the human-readable shared-state report.
func (r *Result) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "alias analysis: %s\n", r.App); err != nil {
		return err
	}
	fmt.Fprintf(w, "  abstract locations: %d   classes holding pointers: %d   shared pairs: %d (%d mutable)\n",
		len(r.Locations), len(r.Classes), len(r.Pairs), len(r.mutablePairs))
	for _, u := range r.UnknownClasses {
		fmt.Fprintf(w, "  warning: state record for unregistered class %s\n", u)
	}
	if len(r.Locations) > 0 {
		fmt.Fprintf(w, "\nlocations:\n")
		for i := range r.Locations {
			l := &r.Locations[i]
			mut := "immutable"
			if l.Mutable {
				mut = "MUTABLE"
			}
			fmt.Fprintf(w, "  %-24s %-9s %s\n", l.Key, mut, l.Reason)
		}
	}
	if len(r.Pairs) > 0 {
		fmt.Fprintf(w, "\nshared state:\n")
		for i := range r.Pairs {
			p := &r.Pairs[i]
			verdict := "immutable payloads only — no co-location needed"
			if p.Mutable {
				verdict = "shared MUTABLE state — must co-locate"
			}
			fmt.Fprintf(w, "  %s <-> %s: %s\n", p.A, p.B, verdict)
			fmt.Fprintf(w, "    via %s", p.Location)
			if len(p.Locations) > 1 {
				fmt.Fprintf(w, " (%d shared locations)", len(p.Locations))
			}
			fmt.Fprintf(w, "\n")
			for _, step := range p.ChainA {
				fmt.Fprintf(w, "      %s\n", step)
			}
			for _, step := range p.ChainB {
				fmt.Fprintf(w, "      %s\n", step)
			}
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
