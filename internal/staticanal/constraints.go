package staticanal

import (
	"fmt"
	"sort"

	"repro/internal/com"
	"repro/internal/graph"
	"repro/internal/profile"
)

// The paper's static location rules: a component whose binary imports
// known GUI APIs must execute beside the user's display; a component that
// reaches storage or database services belongs with the data. GUI usage
// dominates storage usage — a component that paints stays on the client no
// matter what it reads.
var (
	// GUIAPIs pin their importers to the client.
	GUIAPIs = map[string]bool{
		com.APIGdiPaint:   true,
		com.APIUserWindow: true,
		com.APIUserInput:  true,
		com.APIClipboard:  true,
		com.APIPrintSpool: true,
	}
	// StorageAPIs pin their importers to the server.
	StorageAPIs = map[string]bool{
		com.APIFileRead:    true,
		com.APIFileWrite:   true,
		com.APIFileOpen:    true,
		com.APIODBCConnect: true,
		com.APIODBCExec:    true,
	}
)

// InferPin applies the per-class location rules and reports the machine
// the class is pinned to, with the rule that fired. It is the single
// source of truth consumed by both the static analyzer and the profile
// analysis engine.
func InferPin(class *com.Class) (com.Machine, string, bool) {
	if class == nil {
		return 0, "", false
	}
	if class.Infrastructure {
		return class.Home, "infrastructure component fixed at its home machine", true
	}
	gui, storage := false, false
	var guiAPI, storageAPI string
	for _, api := range class.APIs {
		if GUIAPIs[api] && !gui {
			gui, guiAPI = true, api
		}
		if StorageAPIs[api] && !storage {
			storage, storageAPI = true, api
		}
	}
	switch {
	case gui:
		return com.Client, "imports GUI system service " + guiAPI, true
	case storage:
		return com.Server, "imports storage system service " + storageAPI, true
	default:
		return 0, "", false
	}
}

// Pin is an absolute location constraint on a component class.
type Pin struct {
	Class   string      `json:"class"`
	Machine com.Machine `json:"machine"`
	Reason  string      `json:"reason"`
}

// Pair is a pair-wise co-location constraint between two component
// classes: whenever instances of the two communicate, they must share a
// machine.
type Pair struct {
	A      string `json:"a"`
	B      string `json:"b"`
	IID    string `json:"iid"`
	Reason string `json:"reason"`
}

// ConstraintSet is the static analyzer's output: everything the
// graph-cutting algorithms must honor, as first-class inspectable
// metadata.
type ConstraintSet struct {
	App string `json:"app"`
	// Pins maps class names to absolute location constraints.
	Pins map[string]Pin `json:"pins"`
	// Pairs lists class-level pair-wise co-location constraints.
	Pairs []Pair `json:"pairs"`
	// Interfaces holds the remotability classification of every
	// interface, keyed by IID.
	Interfaces map[string]*InterfaceReport `json:"interfaces"`
	// CoveragePairs lists conservative co-location pairs derived from the
	// reachability coverage diff: statically possible ICC edges the
	// training scenarios never exercised. Unlike Pairs they do not reflect
	// remotability — crossing them is legal, just unpriced — so they weld
	// graph edges but are not enforced by CheckCut.
	CoveragePairs []Pair `json:"coveragePairs,omitempty"`
	// AliasPairs lists co-location pairs added by the points-to
	// refinement (see Refined): class pairs that share mutable state
	// without a common non-remotable interface — the payload travelled
	// through an intermediary — and therefore must co-locate even though
	// the clique rule never saw them.
	AliasPairs []Pair `json:"aliasPairs,omitempty"`

	model *Model
	// fullyNonRemotable marks classes whose entire interface surface is
	// non-remotable: any call into such a class welds caller to callee.
	fullyNonRemotable map[string]bool
	// pairIndex indexes Pairs for O(1) lookups.
	pairIndex map[[2]string]string
	// coverageIndex indexes CoveragePairs (unordered class pairs).
	coverageIndex map[[2]string]bool

	// refiner, conditional, and aliasIndex are set by Refined: the
	// points-to refinement that replaces opaque-payload cliques with
	// truly-aliasing pairs.
	refiner OpaqueRefiner
	// conditional marks classes whose fullyNonRemotable verdict is
	// attributable entirely to opaque payloads: calls into them weld only
	// when caller and callee truly share mutable state.
	conditional map[string]bool
	// aliasIndex indexes AliasPairs (ordered class pairs -> reason).
	aliasIndex map[[2]string]string
}

// Derive runs the constraint-derivation pass over the scanned model and
// the interface classification.
func Derive(m *Model, reports map[string]*InterfaceReport) *ConstraintSet {
	cs := &ConstraintSet{
		App:               m.App,
		Pins:              make(map[string]Pin),
		Interfaces:        reports,
		model:             m,
		fullyNonRemotable: make(map[string]bool),
		pairIndex:         make(map[[2]string]string),
	}

	nonRemotable := func(iid string) bool {
		r := reports[iid]
		return r != nil && r.Remotability == NonRemotable
	}

	// Location pins from the API-import rules.
	for _, cm := range m.Components {
		class := &com.Class{
			Name:           cm.Name,
			APIs:           cm.APIs,
			Home:           cm.Home,
			Infrastructure: cm.Infrastructure,
		}
		if machine, reason, ok := InferPin(class); ok {
			cs.Pins[cm.Name] = Pin{Class: cm.Name, Machine: machine, Reason: reason}
		}
		// A class every one of whose interfaces is non-remotable cannot be
		// called across a machine boundary at all.
		if len(cm.Interfaces) > 0 {
			all := true
			for _, iid := range cm.Interfaces {
				if !nonRemotable(iid) {
					all = false
					break
				}
			}
			cs.fullyNonRemotable[cm.Name] = all
		}
	}

	// Pair-wise constraints: implementors of a common non-remotable
	// interface exchange its opaque payloads among themselves (the sprite
	// meshes and widget trees of the paper's figures); each pair must
	// co-locate whenever it communicates.
	implementors := make(map[string][]string) // non-remotable IID -> class names
	for _, cm := range m.Components {
		for _, iid := range cm.Interfaces {
			if nonRemotable(iid) {
				implementors[iid] = append(implementors[iid], cm.Name)
			}
		}
	}
	iids := make([]string, 0, len(implementors))
	for iid := range implementors {
		iids = append(iids, iid)
	}
	sort.Strings(iids)
	// A pair is redundant when both classes are already pinned to the same
	// machine: the location constraints subsume the co-location.
	coPinned := func(a, b string) bool {
		pa, oka := cs.Pins[a]
		pb, okb := cs.Pins[b]
		return oka && okb && pa.Machine == pb.Machine
	}
	for _, iid := range iids {
		classes := implementors[iid]
		sort.Strings(classes)
		for i := 0; i < len(classes); i++ {
			for j := i + 1; j < len(classes); j++ {
				if coPinned(classes[i], classes[j]) {
					continue
				}
				cs.addPair(classes[i], classes[j], iid,
					fmt.Sprintf("both implement non-remotable interface %s", iid))
			}
		}
	}
	return cs
}

func (cs *ConstraintSet) addPair(a, b, iid, reason string) {
	key := [2]string{a, b}
	if a > b {
		key = [2]string{b, a}
	}
	if _, dup := cs.pairIndex[key]; dup {
		return
	}
	cs.pairIndex[key] = iid
	cs.Pairs = append(cs.Pairs, Pair{A: key[0], B: key[1], IID: iid, Reason: reason})
}

// AddCoveragePair records a conservative co-location pair between two
// classes, typically from the reachability coverage diff (see package
// reach). Pairs already covered by a remotability constraint or a
// previous coverage pair are not duplicated. Reports whether the pair was
// added.
func (cs *ConstraintSet) AddCoveragePair(a, b, iid, reason string) bool {
	if a == b || a == "" || b == "" {
		return false
	}
	key := [2]string{a, b}
	if a > b {
		key = [2]string{b, a}
	}
	if _, dup := cs.pairIndex[key]; dup {
		return false
	}
	if cs.coverageIndex == nil {
		cs.coverageIndex = make(map[[2]string]bool)
	}
	if cs.coverageIndex[key] {
		return false
	}
	cs.coverageIndex[key] = true
	cs.CoveragePairs = append(cs.CoveragePairs, Pair{A: key[0], B: key[1], IID: iid, Reason: reason})
	return true
}

// Empty reports whether the set constrains nothing.
func (cs *ConstraintSet) Empty() bool {
	return cs == nil || (len(cs.Pins) == 0 && len(cs.Pairs) == 0 &&
		len(cs.CoveragePairs) == 0 && len(cs.AliasPairs) == 0)
}

// NonRemotableInterfaces returns the sorted IIDs classified non-remotable.
func (cs *ConstraintSet) NonRemotableInterfaces() []string {
	var out []string
	for iid, r := range cs.Interfaces {
		if r.Remotability == NonRemotable {
			out = append(out, iid)
		}
	}
	sort.Strings(out)
	return out
}

// PinFor returns the location constraint for a class name, if any.
func (cs *ConstraintSet) PinFor(class string) (Pin, bool) {
	p, ok := cs.Pins[class]
	return p, ok
}

// MustCoLocate reports whether instances of the two classes are forbidden
// from communicating across machines, with the reason. It fires when the
// callee's entire interface surface is non-remotable (every call into it
// is unmarshalable) or when the pair shares a non-remotable interface.
func (cs *ConstraintSet) MustCoLocate(src, dst string) (string, bool) {
	// Only the callee's surface matters: remotability is a property of the
	// interface a call goes through, and src -> dst edges go through dst's
	// interfaces. (A welded component may still hold proxies and call out.)
	if cs.fullyNonRemotable[dst] {
		return fmt.Sprintf("every interface of %s is non-remotable", dst), true
	}
	// A conditional callee's non-remotability is attributable entirely to
	// its opaque payloads: the refiner decides whether this caller truly
	// shares mutable state with it.
	if cs.conditional[dst] {
		if reason, ok := cs.refiner.SharedMutable(src, dst); ok {
			return reason, true
		}
	}
	key := [2]string{src, dst}
	if src > dst {
		key = [2]string{dst, src}
	}
	if iid, ok := cs.pairIndex[key]; ok {
		return fmt.Sprintf("pair-wise constraint over non-remotable interface %s", iid), true
	}
	if reason, ok := cs.aliasIndex[key]; ok {
		return reason, true
	}
	return "", false
}

// ClassImplementsNonRemotable reports whether the named class implements
// at least one non-remotable interface.
func (cs *ConstraintSet) ClassImplementsNonRemotable(class string) bool {
	cm := cs.model.Component(class)
	if cm == nil {
		return false
	}
	for _, iid := range cm.Interfaces {
		if r := cs.Interfaces[iid]; r != nil && r.Remotability == NonRemotable {
			return true
		}
	}
	return false
}

// ClassMayPassOpaque reports whether the named class implements an
// interface that can carry unmarshalable calls: non-remotable outright, or
// conditionally remotable with at least one opaque method. Dynamic
// non-remotable evidence at such a class is statically anticipated.
func (cs *ConstraintSet) ClassMayPassOpaque(class string) bool {
	cm := cs.model.Component(class)
	if cm == nil {
		return false
	}
	for _, iid := range cm.Interfaces {
		if r := cs.Interfaces[iid]; r != nil && (r.Remotability == NonRemotable || r.Opaque) {
			return true
		}
	}
	return false
}

// ApplyStats summarizes what applying a constraint set did to a graph.
type ApplyStats struct {
	Pins                int // classifications pinned to a terminal
	CoLocations         int // profile edges welded by static constraints
	CoverageCoLocations int // classification pairs welded by coverage pairs
	CoverageUnsatisfied int // coverage pairs skipped: endpoints pinned apart
	AliasCoLocations    int // classification pairs welded by alias pairs
	AliasUnsatisfied    int // alias pairs skipped: endpoints pinned apart
}

// ApplyToGraph installs the constraint set into a communication graph
// built from a profile: classification-level pins become terminal pins
// and statically welded communicating pairs become infinite-weight edges,
// before mincut/multiway runs. The main program's permanent client pin is
// the graph builder's responsibility, not this set's.
func (cs *ConstraintSet) ApplyToGraph(g *graph.Graph, p *profile.Profile) ApplyStats {
	var st ApplyStats
	if cs == nil || g == nil || p == nil {
		return st
	}
	for id, ci := range p.Classifications {
		pin, ok := cs.Pins[ci.Class]
		if !ok {
			continue
		}
		st.Pins++
		if pin.Machine == com.Client {
			g.Pin(id, graph.SourceSide)
		} else {
			g.Pin(id, graph.SinkSide)
		}
	}
	for k := range p.Edges {
		srcClass := cs.classOf(p, k.Src)
		dstClass := cs.classOf(p, k.Dst)
		if srcClass == "" || dstClass == "" {
			continue
		}
		if _, weld := cs.MustCoLocate(srcClass, dstClass); weld {
			g.CoLocate(k.Src, k.Dst)
			st.CoLocations++
		}
	}

	// Coverage pairs weld classes the scenarios produced no traffic
	// evidence for, so there need not be a profile edge between them: weld
	// the cross-product of the two classes' classifications. A pair whose
	// endpoints the location rules pin to different machines cannot be
	// honored without making the graph infeasible; it is counted and
	// skipped (the cut then relies on the pins, as before).
	if len(cs.CoveragePairs) > 0 {
		byClass := make(map[string][]string)
		for id, ci := range p.Classifications {
			byClass[ci.Class] = append(byClass[ci.Class], id)
		}
		for _, cls := range byClass {
			sort.Strings(cls)
		}
		for _, pair := range cs.CoveragePairs {
			pa, oka := cs.Pins[pair.A]
			pb, okb := cs.Pins[pair.B]
			if oka && okb && pa.Machine != pb.Machine {
				st.CoverageUnsatisfied++
				continue
			}
			for _, a := range byClass[pair.A] {
				for _, b := range byClass[pair.B] {
					g.CoLocate(a, b)
					st.CoverageCoLocations++
				}
			}
		}
	}

	// Alias pairs weld classes that share mutable state even when no
	// profile edge connects them directly (the payload travelled through
	// an intermediary): weld the cross-product of their classifications,
	// with the same pinned-apart escape hatch as coverage pairs.
	if len(cs.AliasPairs) > 0 {
		byClass := make(map[string][]string)
		for id, ci := range p.Classifications {
			byClass[ci.Class] = append(byClass[ci.Class], id)
		}
		for _, cls := range byClass {
			sort.Strings(cls)
		}
		for _, pair := range cs.AliasPairs {
			pa, oka := cs.Pins[pair.A]
			pb, okb := cs.Pins[pair.B]
			if oka && okb && pa.Machine != pb.Machine {
				st.AliasUnsatisfied++
				continue
			}
			for _, a := range byClass[pair.A] {
				for _, b := range byClass[pair.B] {
					g.CoLocate(a, b)
					st.AliasCoLocations++
				}
			}
		}
	}
	return st
}

// classOf maps a classification id to its class name ("" when unknown;
// the main program has no class).
func (cs *ConstraintSet) classOf(p *profile.Profile, id string) string {
	if ci := p.Classifications[id]; ci != nil {
		return ci.Class
	}
	return ""
}
