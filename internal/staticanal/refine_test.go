package staticanal_test

import (
	"strings"
	"testing"

	"repro/internal/com"
	"repro/internal/idl"
	"repro/internal/profile"
	"repro/internal/staticanal"
)

func refineNullObject() com.Object {
	return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) { return nil, nil })
}

// refineApp builds a six-class application covering every refinement
// verdict:
//
//	CondOnly  ICond: conditional via an untyped interface pointer, no opaque
//	OpqBox    IOpq: fully non-remotable, attributable to opaque payloads
//	PartnerA  IOpq+IOpq2: ditto, pair-constrained with PartnerB twice over
//	PartnerB  IOpq+IOpq2
//	LocalBox  ILoc: bare [local] with clean signatures — unrefinable
//	Mixed     IMix: conditionally remotable with one opaque method
func refineApp() *com.App {
	ifaces := idl.NewRegistry()
	ifaces.Register(&idl.InterfaceDesc{
		IID: "ICond", Name: "ICond", Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Hook", Params: []idl.ParamDesc{{Name: "sink", Dir: idl.In, Type: &idl.TypeDesc{Kind: idl.KindInterface}}}, Result: idl.TInt32},
		},
	})
	ifaces.Register(&idl.InterfaceDesc{
		IID: "IOpq", Name: "IOpq", Remotable: true,
		Methods: []idl.MethodDesc{{Name: "Work", Result: idl.TOpaque}},
	})
	ifaces.Register(&idl.InterfaceDesc{
		IID: "IOpq2", Name: "IOpq2", Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Swap", Params: []idl.ParamDesc{{Name: "p", Dir: idl.In, Type: idl.TOpaque}}, Result: idl.TVoid},
		},
	})
	ifaces.Register(&idl.InterfaceDesc{
		IID: "ILoc", Name: "ILoc", Remotable: false,
		Methods: []idl.MethodDesc{{Name: "Pump", Result: idl.TInt32}},
	})
	ifaces.Register(&idl.InterfaceDesc{
		IID: "IMix", Name: "IMix", Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Draw", Params: []idl.ParamDesc{{Name: "dc", Dir: idl.In, Type: idl.TOpaque}}, Result: idl.TVoid},
			{Name: "Stat", Result: idl.TInt32},
		},
	})

	classes := com.NewClassRegistry()
	for _, c := range []struct {
		name   string
		ifaces []string
	}{
		{"CondOnly", []string{"ICond"}},
		{"OpqBox", []string{"IOpq"}},
		{"PartnerA", []string{"IOpq", "IOpq2"}},
		{"PartnerB", []string{"IOpq", "IOpq2"}},
		{"LocalBox", []string{"ILoc"}},
		{"Mixed", []string{"IMix"}},
	} {
		classes.Register(&com.Class{
			ID: com.CLSID("CLSID_" + c.name), Name: c.name, Interfaces: c.ifaces,
			New: refineNullObject,
		})
	}
	return &com.App{
		Name:       "refinetest",
		Classes:    classes,
		Interfaces: ifaces,
		Main:       func(env *com.Env, scenario string, seed int64) error { return nil },
	}
}

func mustConstraints(t *testing.T) *staticanal.ConstraintSet {
	t.Helper()
	rep, err := staticanal.Analyze(refineApp(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return rep.Constraints
}

// fakeRefiner answers from fixed tables; pair lookups are unordered.
type fakeRefiner struct {
	predicts map[[2]string]bool
	shared   map[[2]string]string
	pairs    [][2]string
}

func (f *fakeRefiner) PredictsTransfer(src, dst string) bool {
	return f.predicts[[2]string{src, dst}]
}

func (f *fakeRefiner) SharedMutable(a, b string) (string, bool) {
	key := [2]string{a, b}
	if a > b {
		key = [2]string{b, a}
	}
	reason, ok := f.shared[key]
	return reason, ok
}

func (f *fakeRefiner) MutablePairs() [][2]string { return f.pairs }

func (f *fakeRefiner) Verify(p *profile.Profile) []staticanal.Finding { return nil }

func TestClassMayPassOpaque(t *testing.T) {
	t.Parallel()
	cs := mustConstraints(t)
	cases := []struct {
		class string
		want  bool
	}{
		// The conditional-remotable-without-opaque edge: CondOnly's only
		// interface is demoted for an untyped interface pointer, not a
		// payload, so dynamic non-remotable evidence there is NOT
		// statically anticipated.
		{"CondOnly", false},
		{"OpqBox", true},   // non-remotable outright
		{"LocalBox", true}, // declared [local]
		{"Mixed", true},    // conditional with an opaque method
		{"Nobody", false},  // unknown class
	}
	for _, c := range cases {
		if got := cs.ClassMayPassOpaque(c.class); got != c.want {
			t.Errorf("ClassMayPassOpaque(%s) = %v, want %v", c.class, got, c.want)
		}
	}
}

func TestPairProvenanceMerging(t *testing.T) {
	t.Parallel()
	cs := mustConstraints(t)

	// PartnerA and PartnerB share two non-remotable interfaces; the pair
	// must appear once, attributed to the first interface derived.
	var partners []staticanal.Pair
	for _, p := range cs.Pairs {
		if p.A == "PartnerA" && p.B == "PartnerB" {
			partners = append(partners, p)
		}
	}
	if len(partners) != 1 {
		t.Fatalf("PartnerA/PartnerB derived %d times, want once: %+v", len(partners), partners)
	}
	if partners[0].IID != "IOpq" || !strings.Contains(partners[0].Reason, "IOpq") {
		t.Errorf("merged pair attributed to %s (%q), want first-derived IOpq", partners[0].IID, partners[0].Reason)
	}

	// Coverage pairs defer to remotability pairs and to themselves.
	if cs.AddCoveragePair("PartnerA", "PartnerB", "IOpq", "uncovered") {
		t.Error("coverage pair duplicated an existing remotability pair")
	}
	if !cs.AddCoveragePair("CondOnly", "Mixed", "IMix", "uncovered edge") {
		t.Error("fresh coverage pair rejected")
	}
	if cs.AddCoveragePair("Mixed", "CondOnly", "IMix", "uncovered edge again") {
		t.Error("coverage pair duplicated across operand order")
	}
}

func TestRefinedConstraints(t *testing.T) {
	t.Parallel()
	cs := mustConstraints(t)
	r := &fakeRefiner{
		predicts: map[[2]string]bool{},
		shared: map[[2]string]string{
			{"OpqBox", "PartnerA"}: "both hold pointers into OpqBox's mutable mesh",
			{"CondOnly", "Mixed"}:  "alias through an intermediary courier",
		},
		pairs: [][2]string{{"CondOnly", "Mixed"}, {"OpqBox", "PartnerA"}},
	}
	ref := cs.Refined(r)

	// Pairs over the opaque-attributable IOpq survive only when the
	// refiner confirms shared mutable state, and inherit its reason.
	if reason, weld := ref.MustCoLocate("OpqBox", "PartnerA"); !weld || !strings.Contains(reason, "mesh") {
		t.Errorf("MustCoLocate(OpqBox, PartnerA) = %q, %v; want the refiner's reason", reason, weld)
	}
	for _, p := range ref.Pairs {
		if p.A == "PartnerA" && p.B == "PartnerB" {
			t.Error("non-aliasing PartnerA/PartnerB pair survived refinement")
		}
	}

	// OpqBox's clique is conditional now: a caller with no shared mutable
	// state welds under the base set but not the refined one.
	if _, weld := cs.MustCoLocate("CondOnly", "OpqBox"); !weld {
		t.Error("base set does not weld calls into fully non-remotable OpqBox")
	}
	if _, weld := ref.MustCoLocate("CondOnly", "OpqBox"); weld {
		t.Error("refined set welds a caller sharing no mutable state with OpqBox")
	}

	// Unrefinable [local] surfaces keep their cliques.
	if _, weld := ref.MustCoLocate("CondOnly", "LocalBox"); !weld {
		t.Error("refinement cleared the weld of a bare [local] interface")
	}

	// Mutable pairs outside the remotability constraints become alias
	// pairs exactly once (OpqBox/PartnerA is already pair-indexed).
	if len(ref.AliasPairs) != 1 || ref.AliasPairs[0].A != "CondOnly" || ref.AliasPairs[0].B != "Mixed" {
		t.Fatalf("AliasPairs = %+v, want exactly CondOnly/Mixed", ref.AliasPairs)
	}
	if reason, weld := ref.MustCoLocate("Mixed", "CondOnly"); !weld || !strings.Contains(reason, "courier") {
		t.Errorf("MustCoLocate over alias pair = %q, %v", reason, weld)
	}
}

func TestObservedNonRemotableWeld(t *testing.T) {
	t.Parallel()
	cs := mustConstraints(t)

	// Unrefined sets always weld observed non-remotable calls.
	if !cs.ObservedNonRemotableWeld("CondOnly", "OpqBox") {
		t.Error("unrefined set cleared a dynamic weld")
	}

	r := &fakeRefiner{
		predicts: map[[2]string]bool{
			{"PartnerA", "OpqBox"}:   true,
			{"CondOnly", "OpqBox"}:   true,
			{"CondOnly", "LocalBox"}: true,
		},
		shared: map[[2]string]string{
			{"OpqBox", "PartnerA"}: "shared mesh",
		},
	}
	ref := cs.Refined(r)

	cases := []struct {
		src, dst string
		want     bool
		why      string
	}{
		{"PartnerA", "OpqBox", true, "truly shares mutable state"},
		{"CondOnly", "OpqBox", false, "predicted, opaque-attributable, not shared"},
		{"Mixed", "OpqBox", true, "transfer not predicted: conservatism wins"},
		{"CondOnly", "LocalBox", true, "callee has an unrefinable [local] surface"},
		{"", "OpqBox", true, "unclassified caller"},
		{"CondOnly", "", true, "unclassified callee"},
	}
	for _, c := range cases {
		if got := ref.ObservedNonRemotableWeld(c.src, c.dst); got != c.want {
			t.Errorf("ObservedNonRemotableWeld(%q, %q) = %v, want %v (%s)", c.src, c.dst, got, c.want, c.why)
		}
	}
}
