package staticanal

import (
	"fmt"
	"sort"

	"repro/internal/com"
	"repro/internal/profile"
)

// Finding severities.
const (
	// SeverityError marks constraint violations: a chosen partition the
	// runtime could not execute.
	SeverityError = "error"
	// SeverityWarning marks divergences between the static prediction and
	// the dynamic observation (a static pass that misses a dynamic
	// opaque-pointer transfer is a finding, not a crash).
	SeverityWarning = "warning"
)

// Finding kinds.
const (
	// KindStaticMiss: the profile observed a non-remotable call on an
	// edge the static analysis did not predict could carry one.
	KindStaticMiss = "static-miss"
	// KindUnknownClass: the profile references a class absent from the
	// static metadata model.
	KindUnknownClass = "unknown-class"
	// KindPinViolation: a partition places a pinned classification on the
	// wrong machine.
	KindPinViolation = "pin-violation"
	// KindCoLocationViolation: a partition separates two classifications
	// that a static or dynamic co-location constraint welds together.
	KindCoLocationViolation = "colocation-violation"
)

// Finding is one discrepancy reported by the verifier.
type Finding struct {
	Kind     string `json:"kind"`
	Severity string `json:"severity"`
	Detail   string `json:"detail"`
}

func (f Finding) String() string {
	return fmt.Sprintf("[%s] %s: %s", f.Severity, f.Kind, f.Detail)
}

// ErrorCount returns how many findings are errors (not warnings).
func ErrorCount(fs []Finding) int {
	n := 0
	for _, f := range fs {
		if f.Severity == SeverityError {
			n++
		}
	}
	return n
}

// CrossCheck compares the static constraint set against observed dynamic
// ICC: every profile edge that carried a non-remotable call must be
// explicable statically — at least one endpoint class implements a
// statically non-remotable interface. Discrepancies are warnings: the
// static pass missed metadata the execution revealed.
func (cs *ConstraintSet) CrossCheck(p *profile.Profile) []Finding {
	var out []Finding
	if cs == nil || p == nil {
		return out
	}
	keys := make([]profile.PairKey, 0, len(p.Edges))
	for k := range p.Edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Src != keys[j].Src {
			return keys[i].Src < keys[j].Src
		}
		return keys[i].Dst < keys[j].Dst
	})
	for _, k := range keys {
		e := p.Edges[k]
		srcClass := cs.classOf(p, k.Src)
		dstClass := cs.classOf(p, k.Dst)
		// The main program has no class and no static metadata; every
		// other classification must resolve.
		for _, end := range []struct{ id, class string }{{k.Src, srcClass}, {k.Dst, dstClass}} {
			if end.class == "" && end.id != profile.MainProgram {
				out = append(out, Finding{
					Kind: KindUnknownClass, Severity: SeverityWarning,
					Detail: fmt.Sprintf("classification %s has no class in the static model", end.id),
				})
			}
		}
		if !e.NonRemotable {
			continue
		}
		predicted := (dstClass != "" && cs.ClassMayPassOpaque(dstClass)) ||
			(srcClass != "" && cs.ClassMayPassOpaque(srcClass))
		if !predicted {
			out = append(out, Finding{
				Kind: KindStaticMiss, Severity: SeverityWarning,
				Detail: fmt.Sprintf(
					"profile observed a non-remotable call on %s -> %s, but neither %q nor %q implements an interface that passes opaque pointers",
					k.Src, k.Dst, srcClass, dstClass),
			})
		}
	}
	return out
}

// CheckCut verifies a chosen distribution against the constraint set and
// the profile's dynamic co-location evidence: every pin must be honored
// and no welded pair may be split. Violations are errors — such a
// partition could not execute.
func (cs *ConstraintSet) CheckCut(p *profile.Profile, distribution map[string]com.Machine) []Finding {
	var out []Finding
	if cs == nil || p == nil {
		return out
	}
	machineOf := func(id string) com.Machine {
		if id == profile.MainProgram {
			return com.Client // the main program is permanently client-side
		}
		return distribution[id]
	}

	ids := make([]string, 0, len(p.Classifications))
	for id := range p.Classifications {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ci := p.Classifications[id]
		pin, ok := cs.Pins[ci.Class]
		if !ok {
			continue
		}
		if got := machineOf(id); got != pin.Machine {
			out = append(out, Finding{
				Kind: KindPinViolation, Severity: SeverityError,
				Detail: fmt.Sprintf("classification %s (class %s) placed on %s, pinned to %s (%s)",
					id, ci.Class, got, pin.Machine, pin.Reason),
			})
		}
	}

	keys := make([]profile.PairKey, 0, len(p.Edges))
	for k := range p.Edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Src != keys[j].Src {
			return keys[i].Src < keys[j].Src
		}
		return keys[i].Dst < keys[j].Dst
	})
	for _, k := range keys {
		e := p.Edges[k]
		srcClass, dstClass := cs.classOf(p, k.Src), cs.classOf(p, k.Dst)
		reason, weld := "", false
		if srcClass != "" && dstClass != "" {
			reason, weld = cs.MustCoLocate(srcClass, dstClass)
		}
		// Dynamic non-remotable evidence welds the edge unless a points-to
		// refinement (see Refined) fully explains it away as an immutable
		// payload exchange.
		if !weld && e.NonRemotable && cs.ObservedNonRemotableWeld(srcClass, dstClass) {
			reason, weld = "profile observed a non-remotable call on the edge", true
		}
		if weld && machineOf(k.Src) != machineOf(k.Dst) {
			out = append(out, Finding{
				Kind: KindCoLocationViolation, Severity: SeverityError,
				Detail: fmt.Sprintf("%s on %s and %s on %s must be co-located: %s",
					k.Src, machineOf(k.Src), k.Dst, machineOf(k.Dst), reason),
			})
		}
	}
	return out
}
